// vstream_sim — run a simulated measurement campaign from the command line
// and optionally export the raw telemetry as CSV for offline analysis
// (see vstream_analyze).
//
//   vstream_sim [--sessions N] [--seed S] [--shards N] [--threads N]
//               [--abr fixed|rate|buffer|hybrid]
//               [--routing cache|partitioned] [--cache lru|lfu|gdsize]
//               [--prefetch N] [--pacing] [--universal-head]
//               [--abr-outlier-filter] [--out DIR]
//               [--telemetry-spill DIR]
//               [--checkpoint DIR] [--resume] [--checkpoint-interval N]
//               [--fault-profile none|eventful|overload]
//               [--attribute-worst N] [--attribution-out FILE]
//
// --attribute-worst N replays the N worst-QoE sessions once per idealized
// subsystem (cache, network, backend, overload, ABR — see
// cdn/idealization.h) and writes a blame breakdown to
// BENCH_attribution.json (or --attribution-out FILE).
//
// Runs on the layered sharded engine (deterministic for any --shards /
// VSTREAM_SHARDS value) and prints a QoE and CDN summary either way.
//
// --threads N (or VSTREAM_THREADS) sets the physical worker count of the
// work-stealing runtime: the logical shard partition — and therefore
// every output bit — is unchanged; only wall-clock time moves.  The
// thread count also drives the incremental spill analysis and CSV
// export.
//
// --telemetry-spill DIR streams telemetry to per-shard binary spill files
// in DIR instead of holding every record in memory; the summary and any
// --out CSV export are then produced incrementally from the spill set and
// are byte-identical to the in-memory run.
//
// --checkpoint DIR makes the run crash-safe: per-shard checkpoint
// sidecars land in DIR (which doubles as the spill directory unless
// --telemetry-spill is also given), and --resume restarts from the last
// committed checkpoint after a crash — the final output is byte-identical
// to a run that was never interrupted.  See tools/vstream_chaos.cpp for
// the kill-and-resume harness that proves it.
//
// Errors surface as a one-line diagnostic and a documented exit status
// (core/exit_codes.h): 2 usage/config, 3 host I/O failure (disk full,
// unwritable directory, injected VSTREAM_FAILPOINTS fault — typically
// resumable with --resume), 4 when analysis completed but spill
// corruption limited it to the salvaged subset.  Never a raw terminate,
// never a truncated CSV with exit 0.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/attribution.h"
#include "analysis/qoe.h"
#include "core/exit_codes.h"
#include "engine/attribution.h"
#include "core/report.h"
#include "core/streaming.h"
#include "engine/engine.h"
#include "failpoints/failpoint.h"
#include "faults/fault_schedule.h"
#include "runtime/executor.h"
#include "sim/host_error.h"
#include "telemetry/export.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"

using namespace vstream;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--sessions N] [--seed S] [--shards N] [--threads N]\n"
      "          [--abr fixed|rate|buffer|hybrid]\n"
      "          [--routing cache|partitioned] [--cache lru|lfu|gdsize]\n"
      "          [--prefetch N] [--pacing] [--universal-head]\n"
      "          [--abr-outlier-filter] [--out DIR]\n"
      "          [--telemetry-spill DIR] [--spill-format 2|3]\n"
      "          [--checkpoint DIR] [--resume] [--checkpoint-interval N]\n"
      "          [--fault-profile none|eventful|overload]\n"
      "          [--breaker-threshold MS] [--retry-budget PCT]\n"
      "          [--shed-watermark PCT]\n"
      "          [--attribute-worst N] [--attribution-out FILE]\n",
      argv0);
  std::exit(2);
}

/// Named fault schedules (faults/fault_schedule.h) so scripted-fault runs
/// are reproducible from the command line, and so `vstream-analyze
/// --attribution` can rebuild the same fault world by name.
faults::FaultSchedule parse_fault_profile(const std::string& s,
                                          const char* argv0) {
  const std::optional<faults::FaultSchedule> schedule =
      faults::FaultSchedule::named(s);
  if (!schedule.has_value()) usage(argv0);
  return *schedule;
}

/// Strict positive-number parse for the overload knobs (same contract as
/// the VSTREAM_* environment variables: zero/negative/non-numeric exit 2).
double positive_double_arg(const char* flag, const std::string& raw) {
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(raw.c_str(), &end);
  if (end == raw.c_str() || *end != '\0' || errno == ERANGE ||
      !(parsed > 0.0)) {
    std::fprintf(stderr, "%s must be a positive number, got \"%s\"\n", flag,
                 raw.c_str());
    std::exit(2);
  }
  return parsed;
}

/// Strict positive-integer parse (--checkpoint-interval).
std::size_t positive_size_arg(const char* flag, const std::string& raw) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw.c_str(), &end, 10);
  if (end == raw.c_str() || *end != '\0' || errno == ERANGE || parsed == 0) {
    std::fprintf(stderr, "%s must be a positive integer, got \"%s\"\n", flag,
                 raw.c_str());
    std::exit(2);
  }
  return static_cast<std::size_t>(parsed);
}

client::AbrKind parse_abr(const std::string& s, const char* argv0) {
  if (s == "fixed") return client::AbrKind::kFixed;
  if (s == "rate") return client::AbrKind::kRateBased;
  if (s == "buffer") return client::AbrKind::kBufferBased;
  if (s == "hybrid") return client::AbrKind::kHybrid;
  usage(argv0);
}

cdn::RoutingPolicy parse_routing(const std::string& s, const char* argv0) {
  if (s == "cache") return cdn::RoutingPolicy::kCacheFocused;
  if (s == "partitioned") return cdn::RoutingPolicy::kPopularityPartitioned;
  usage(argv0);
}

cdn::PolicyKind parse_cache(const std::string& s, const char* argv0) {
  if (s == "lru") return cdn::PolicyKind::kLru;
  if (s == "lfu") return cdn::PolicyKind::kPerfectLfu;
  if (s == "gdsize") return cdn::PolicyKind::kGdSize;
  usage(argv0);
}

int run_tool(int argc, char** argv) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = 2'000;
  engine::RunOptions options;
  std::string out_dir;
  std::size_t attribute_worst_n = 0;
  std::string attribution_out = "BENCH_attribution.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--sessions") {
      scenario.session_count = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (arg == "--seed") {
      scenario.seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--shards") {
      options.shards = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (arg == "--threads") {
      options.threads = positive_size_arg("--threads", next());
    } else if (arg == "--abr") {
      scenario.abr = parse_abr(next(), argv[0]);
    } else if (arg == "--routing") {
      scenario.routing = parse_routing(next(), argv[0]);
    } else if (arg == "--cache") {
      scenario.fleet.server.policy = parse_cache(next(), argv[0]);
    } else if (arg == "--prefetch") {
      scenario.fleet.server.prefetch_on_miss =
          static_cast<std::uint32_t>(std::atoi(next().c_str()));
    } else if (arg == "--pacing") {
      scenario.tcp.pacing = true;
    } else if (arg == "--universal-head") {
      options.universal_head = true;
    } else if (arg == "--abr-outlier-filter") {
      scenario.abr_filters_throughput_outliers = true;
    } else if (arg == "--breaker-threshold") {
      scenario.fleet.server.overload.breaker_latency_threshold_ms =
          positive_double_arg("--breaker-threshold", next());
    } else if (arg == "--retry-budget") {
      scenario.fleet.server.overload.retry_budget_ratio =
          positive_double_arg("--retry-budget", next()) / 100.0;
    } else if (arg == "--shed-watermark") {
      scenario.fleet.server.overload.shed_watermark =
          positive_double_arg("--shed-watermark", next()) / 100.0;
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--telemetry-spill") {
      options.telemetry_spill_dir = next();
    } else if (arg == "--spill-format") {
      options.spill_format =
          static_cast<std::uint32_t>(positive_size_arg("--spill-format",
                                                       next()));
    } else if (arg == "--checkpoint") {
      options.checkpoint_dir = next();
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--checkpoint-interval") {
      options.checkpoint_interval =
          positive_size_arg("--checkpoint-interval", next());
    } else if (arg == "--fault-profile") {
      options.faults = parse_fault_profile(next(), argv[0]);
    } else if (arg == "--attribute-worst") {
      attribute_worst_n = positive_size_arg("--attribute-worst", next());
    } else if (arg == "--attribution-out") {
      attribution_out = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }

  core::print_header("vstream_sim");
  core::print_metric("sessions", static_cast<double>(scenario.session_count));
  core::print_metric("seed", static_cast<double>(scenario.seed));
  core::print_metric("abr", client::to_string(scenario.abr));
  core::print_metric("routing", cdn::to_string(scenario.routing));
  core::print_metric("cache_policy", cdn::to_string(scenario.fleet.server.policy));

  // The attribution pass rebuilds the run's world from the same scenario
  // and world-shaping options; keep a copy before the move.
  const engine::RunOptions replay_options = options;
  engine::RunResult run = engine::run_simulation(scenario, std::move(options));
  core::print_metric("shards", static_cast<double>(run.shard_count));
  core::print_metric("threads", static_cast<double>(run.thread_count));
  if (!run.completed) {
    std::printf("run stopped at a checkpoint; resume with --resume to "
                "finish (partial committed state below)\n");
  }
  if (run.checkpoints_degraded) {
    core::print_metric("checkpoints_degraded", 1.0);
  }
  int exit_code = core::kExitOk;

  // Spilled runs analyze incrementally from disk; in-memory runs use the
  // classic batch join.  Both yield the same numbers (see
  // tests/engine/determinism_test.cc).
  analysis::QoeAggregate qoe;
  std::size_t dropped_as_proxy = 0;
  if (run.spilled()) {
    const core::StreamingAnalysis streamed = core::analyze_spill(
        run.spill, run.catalog->chunk_duration_s(), {}, run.thread_count);
    qoe = streamed.qoe;
    dropped_as_proxy = streamed.dropped_as_proxy;
    if (streamed.spill.corrupted()) {
      // Damaged spill data is salvaged, not fatal — but say so out loud
      // and exit with the documented salvage-incomplete status so a
      // script knows the numbers cover a subset.
      exit_code = core::kExitSalvageIncomplete;
      core::print_header("spill recovery (corruption detected)");
      core::print_metric("blocks_ok",
                         static_cast<double>(streamed.spill.blocks_ok));
      core::print_metric("blocks_skipped",
                         static_cast<double>(streamed.spill.blocks_skipped));
      core::print_metric("bytes_salvaged",
                         static_cast<double>(streamed.spill.bytes_salvaged));
      core::print_metric("bytes_skipped",
                         static_cast<double>(streamed.spill.bytes_skipped));
      core::print_metric("torn_tail_bytes",
                         static_cast<double>(streamed.spill.torn_tail_bytes));
    }
  } else {
    const telemetry::ProxyFilterResult proxies =
        telemetry::detect_proxies(run.dataset);
    const telemetry::JoinedDataset joined =
        telemetry::JoinedDataset::build(run.dataset, &proxies);
    qoe = analysis::aggregate_qoe(joined);
    dropped_as_proxy = joined.dropped_as_proxy();
  }

  core::print_header("QoE summary (proxy-filtered sessions)");
  core::Table table({"metric", "median", "mean", "p95"});
  table.add_row({"startup ms", core::fmt(qoe.startup_ms.median, 0),
                 core::fmt(qoe.startup_ms.mean, 0),
                 core::fmt(qoe.startup_ms.p95, 0)});
  table.add_row({"rebuffer %", core::fmt(qoe.rebuffer_rate_pct.median, 2),
                 core::fmt(qoe.rebuffer_rate_pct.mean, 2),
                 core::fmt(qoe.rebuffer_rate_pct.p95, 2)});
  table.add_row({"avg bitrate kbps", core::fmt(qoe.avg_bitrate_kbps.median, 0),
                 core::fmt(qoe.avg_bitrate_kbps.mean, 0),
                 core::fmt(qoe.avg_bitrate_kbps.p95, 0)});
  table.add_row({"dropped %", core::fmt(qoe.dropped_frame_pct.median, 2),
                 core::fmt(qoe.dropped_frame_pct.mean, 2),
                 core::fmt(qoe.dropped_frame_pct.p95, 2)});
  table.print();
  core::print_metric("sessions_joined", static_cast<double>(qoe.sessions));
  core::print_metric("sessions_dropped_as_proxy",
                     static_cast<double>(dropped_as_proxy));
  core::print_metric("share_with_rebuffering", qoe.share_with_rebuffering);

  core::print_header("CDN summary");
  std::uint64_t ram = 0, disk = 0, miss = 0, total = 0, backend = 0;
  std::uint64_t shed = 0, hedged = 0, swr = 0;
  for (const cdn::ServerStats& s : run.server_stats) {
    ram += s.ram_hits;
    disk += s.disk_hits;
    miss += s.misses;
    total += s.requests_served;
    backend += s.backend_requests();
    shed += s.shed_requests;
    hedged += s.hedged_fetches;
    swr += s.swr_serves;
  }
  const double n = static_cast<double>(total);
  core::print_metric("ram_hit_share", static_cast<double>(ram) / n);
  core::print_metric("disk_hit_share", static_cast<double>(disk) / n);
  core::print_metric("miss_share", static_cast<double>(miss) / n);
  core::print_metric("backend_requests", static_cast<double>(backend));
  core::print_metric("shed_requests", static_cast<double>(shed));
  core::print_metric("hedged_fetches", static_cast<double>(hedged));
  core::print_metric("swr_serves", static_cast<double>(swr));

  if (attribute_worst_n > 0) {
    // Counterfactual attribution: replay the worst-N sessions once per
    // idealized subsystem and report who is to blame.  Spilled runs
    // materialize the dataset first (the worst-N selection needs it).
    const telemetry::Dataset& baseline =
        run.spilled() ? (run.dataset = run.spill.load(), run.dataset)
                      : run.dataset;
    const engine::ReplayContext replay_ctx(scenario, replay_options);
    engine::AttributionOptions attr_options;
    attr_options.worst_n = attribute_worst_n;
    attr_options.threads = run.thread_count;
    const analysis::AttributionReport report =
        engine::attribute_worst(replay_ctx, baseline, attr_options);

    core::print_header("worst-session attribution (counterfactual replay)");
    core::print_metric("sessions_attributed",
                       static_cast<double>(report.sessions.size()));
    core::Table blame({"subsystem", "mean blame"});
    for (std::size_t i = 0; i < cdn::kIdealizedSubsystemCount; ++i) {
      blame.add_row({cdn::idealization_name(cdn::kIdealizedSubsystems[i]),
                     core::fmt(report.mean_blame(i), 3)});
    }
    blame.add_row({"(residual)", core::fmt(report.mean_residual(), 3)});
    blame.print();
    std::size_t replay_mismatches = 0;
    for (const analysis::SessionAttribution& s : report.sessions) {
      if (!s.baseline_matches) ++replay_mismatches;
    }
    if (replay_mismatches > 0) {
      std::fprintf(stderr,
                   "warning: %zu factual replays diverged from the measured "
                   "run; blame numbers are suspect\n",
                   replay_mismatches);
    }

    std::ofstream json_out(attribution_out);
    if (!json_out) {
      throw sim::HostIoError("attribution: cannot open " + attribution_out +
                             " for writing");
    }
    analysis::write_attribution_json(json_out, report);
    std::printf("\nwrote attribution report to %s\n", attribution_out.c_str());
  }

  if (!out_dir.empty()) {
    runtime::Executor exporter(run.thread_count);
    runtime::Executor* pool = exporter.workers() > 1 ? &exporter : nullptr;
    if (run.spilled()) {
      const auto stream = run.spill.open();
      telemetry::export_stream(*stream, out_dir, pool);
    } else {
      telemetry::export_dataset(run.dataset, out_dir, pool);
    }
    std::printf("\nexported raw telemetry to %s "
                "(player_sessions/cdn_sessions/player_chunks/cdn_chunks/"
                "tcp_snapshots .csv)\n",
                out_dir.c_str());
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  // Any failure — bad flag, bad resume sidecar, unwritable directory,
  // disk full, injected failpoint — is one diagnostic line and the
  // documented exit code for its class (core/exit_codes.h), never an
  // unhandled exception.
  try {
    failpoints::Registry::instance().arm_from_env();
    return run_tool(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vstream-sim: error: %s\n", error.what());
    return core::exit_code_for(error);
  }
}
