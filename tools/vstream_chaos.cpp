// vstream_chaos — kill-and-resume crash-safety harness for vstream-sim.
//
//   vstream_chaos [--sim PATH] [--sessions N] [--seed S]
//                 [--shards LIST] [--threads LIST] [--profiles LIST]
//                 [--kills N] [--interval N] [--chaos-seed S]
//                 [--scratch DIR]
//
// For every (shard count, thread count, fault profile) configuration it:
//
//   1. runs vstream-sim once, uninterrupted and single-threaded,
//      exporting the reference CSVs;
//   2. runs the same scenario with --checkpoint --resume at the case's
//      --threads value, delivering SIGKILL at randomized (seeded, hence
//      reproducible) points and resuming after each kill until the run
//      completes; and
//   3. byte-compares all five exported CSV files against the reference.
//
// Threaded cases are the threaded-resume scenario: the reference runs on
// one thread, the killed-and-resumed runs on several, so a pass proves
// the physical thread count changes nothing — not even across a chain of
// SIGKILLs and resumes.
//
// A kill can land anywhere — mid-batch, mid-spill-write, mid-checkpoint
// rename — so a pass demonstrates the whole durability chain: CRC-framed
// spill blocks, flush-before-commit ordering, atomic sidecar replacement,
// and truncate-to-committed on resume.  Defaults cover shards {1,2,4,8}
// fault-free and under the scripted "eventful" fault profile.
//
// Exit status: 0 when every configuration byte-matches, 1 on any mismatch
// or unexpected simulator failure, 2 on usage/setup errors.

#include <sys/types.h>
#include <sys/wait.h>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

constexpr const char* kCsvFiles[] = {
    "player_sessions.csv", "cdn_sessions.csv", "player_chunks.csv",
    "cdn_chunks.csv", "tcp_snapshots.csv"};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--sim PATH] [--sessions N] [--seed S]\n"
      "          [--shards LIST] [--threads LIST] [--profiles LIST]\n"
      "          [--kills N] [--interval N] [--chaos-seed S]\n"
      "          [--scratch DIR]\n"
      "defaults: --shards 1,2,4,8 --threads 1 --profiles none,eventful\n"
      "          --kills 3 --sessions 600 --interval 50 (per case)\n",
      argv0);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& raw) {
  std::vector<std::string> out;
  std::stringstream ss(raw);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Spawn `args` (args[0] = binary) with stdout discarded; returns the pid.
pid_t spawn(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      ::close(null_fd);
    }
    ::execv(argv[0], argv.data());
    std::perror("execv");  // only reached on failure
    ::_exit(127);
  }
  return pid;
}

struct ChildExit {
  bool exited = false;   ///< child finished on its own
  int status = 0;        ///< exit status when `exited`
  bool killed = false;   ///< we delivered SIGKILL
};

/// Wait up to `deadline_ms`; if the child is still running then, SIGKILL
/// it.  SIGKILL is the point: the child gets no chance to flush, close or
/// clean up — exactly what a power cut or OOM kill looks like.
ChildExit wait_or_kill(pid_t pid, long deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    int status = 0;
    const pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) {
      ChildExit r;
      r.exited = true;
      r.status = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
      return r;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (deadline_ms >= 0 && elapsed >= deadline_ms) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      ChildExit r;
      r.killed = true;
      return r;
    }
    ::usleep(2'000);
  }
}

int wait_for(pid_t pid) {
  return wait_or_kill(pid, -1).status;
}

bool files_identical(const fs::path& a, const fs::path& b) {
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  if (!fa || !fb) return false;
  std::stringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  return sa.str() == sb.str();
}

struct Config {
  std::string sim;
  std::size_t sessions = 600;
  std::uint64_t seed = 20160516;
  std::size_t kills = 3;
  std::size_t interval = 50;
  std::uint64_t chaos_seed = 1234;
  fs::path scratch = "chaos-scratch";
};

struct CaseResult {
  std::size_t shards = 0;
  std::size_t threads = 1;
  std::string profile;
  std::size_t kills_delivered = 0;
  std::size_t attempts = 0;
  bool ok = false;
};

std::vector<std::string> sim_args(const Config& cfg, std::size_t shards,
                                  std::size_t threads,
                                  const std::string& profile) {
  std::vector<std::string> args = {cfg.sim,
                                   "--sessions", std::to_string(cfg.sessions),
                                   "--seed", std::to_string(cfg.seed),
                                   "--shards", std::to_string(shards),
                                   "--threads", std::to_string(threads)};
  if (profile != "none") {
    args.push_back("--fault-profile");
    args.push_back(profile);
  }
  return args;
}

CaseResult run_case(const Config& cfg, std::size_t shards,
                    std::size_t threads, const std::string& profile,
                    std::mt19937_64& rng) {
  CaseResult result;
  result.shards = shards;
  result.threads = threads;
  result.profile = profile;

  const fs::path dir =
      cfg.scratch / ("s" + std::to_string(shards) + "-t" +
                     std::to_string(threads) + "-" + profile);
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path clean_csv = dir / "clean";
  const fs::path chaos_csv = dir / "chaos";
  const fs::path ckpt = dir / "ckpt";

  // 1. Uninterrupted reference run (plain in-memory telemetry on ONE
  // thread: the chaos run's CSVs must match it even across the
  // spill/export pipeline and a different physical thread count).
  std::vector<std::string> ref = sim_args(cfg, shards, 1, profile);
  ref.insert(ref.end(), {"--out", clean_csv.string()});
  const auto ref_start = std::chrono::steady_clock::now();
  if (const int status = wait_for(spawn(ref)); status != 0) {
    std::fprintf(stderr, "  reference run failed (exit %d)\n", status);
    return result;
  }
  const long clean_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - ref_start)
          .count();

  // Kill window scaled to the measured clean runtime so kills land while
  // the simulator is genuinely mid-run (early bias: resumed attempts are
  // shorter than the first).
  const long kill_min = std::max<long>(5, clean_ms / 20);
  const long kill_max = std::max<long>(kill_min + 1, clean_ms / 2);
  std::uniform_int_distribution<long> delay(kill_min, kill_max);

  // 2. Kill-and-resume loop.  --resume on the very first attempt is safe:
  // no sidecars means a fresh start.
  std::vector<std::string> chaos = sim_args(cfg, shards, threads, profile);
  chaos.insert(chaos.end(),
               {"--checkpoint", ckpt.string(), "--resume",
                "--checkpoint-interval", std::to_string(cfg.interval),
                "--out", chaos_csv.string()});
  for (;;) {
    ++result.attempts;
    const pid_t pid = spawn(chaos);
    if (result.kills_delivered < cfg.kills) {
      const ChildExit ended = wait_or_kill(pid, delay(rng));
      if (ended.killed) {
        ++result.kills_delivered;
        continue;  // resume on the next attempt
      }
      if (ended.status != 0) {
        std::fprintf(stderr, "  chaos attempt failed (exit %d)\n",
                     ended.status);
        return result;
      }
      break;  // finished before the kill timer — that's a completion
    }
    if (const int status = wait_for(pid); status != 0) {
      std::fprintf(stderr, "  final attempt failed (exit %d)\n", status);
      return result;
    }
    break;
  }

  // 3. Byte-compare every exported CSV against the reference.
  result.ok = true;
  for (const char* file : kCsvFiles) {
    if (!files_identical(clean_csv / file, chaos_csv / file)) {
      std::fprintf(stderr, "  MISMATCH: %s differs from the clean run\n",
                   (chaos_csv / file).string().c_str());
      result.ok = false;
    }
  }
  return result;
}

int run_tool(int argc, char** argv) {
  Config cfg;
  std::vector<std::string> shard_list = {"1", "2", "4", "8"};
  std::vector<std::string> thread_list = {"1"};
  std::vector<std::string> profiles = {"none", "eventful"};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--sim") {
      cfg.sim = next();
    } else if (arg == "--sessions") {
      cfg.sessions = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--shards") {
      shard_list = split_csv(next());
    } else if (arg == "--threads") {
      thread_list = split_csv(next());
    } else if (arg == "--profiles") {
      profiles = split_csv(next());
    } else if (arg == "--kills") {
      cfg.kills = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (arg == "--interval") {
      cfg.interval = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (arg == "--chaos-seed") {
      cfg.chaos_seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--scratch") {
      cfg.scratch = next();
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (cfg.sim.empty()) {
    // Default: the vstream-sim that was built next to this binary.
    cfg.sim = (fs::path(argv[0]).parent_path() / "vstream-sim").string();
  }
  if (!fs::exists(cfg.sim)) {
    std::fprintf(stderr, "simulator binary not found: %s (use --sim)\n",
                 cfg.sim.c_str());
    return 2;
  }

  std::mt19937_64 rng(cfg.chaos_seed);
  std::vector<CaseResult> results;
  std::size_t total_kills = 0;
  bool all_ok = true;
  for (const std::string& profile : profiles) {
    for (const std::string& shards : shard_list) {
      for (const std::string& threads : thread_list) {
        std::printf("chaos: shards=%s threads=%s profile=%s ...\n",
                    shards.c_str(), threads.c_str(), profile.c_str());
        std::fflush(stdout);
        const CaseResult r = run_case(
            cfg, static_cast<std::size_t>(std::atol(shards.c_str())),
            static_cast<std::size_t>(std::atol(threads.c_str())), profile,
            rng);
        std::printf("  %s  (attempts=%zu kills=%zu)\n",
                    r.ok ? "identical to clean run" : "FAILED", r.attempts,
                    r.kills_delivered);
        std::fflush(stdout);
        total_kills += r.kills_delivered;
        all_ok = all_ok && r.ok;
        results.push_back(r);
      }
    }
  }

  std::printf("chaos summary: %zu configurations, %zu SIGKILLs delivered, "
              "%s\n",
              results.size(), total_kills, all_ok ? "all identical" : "FAILED");
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_tool(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vstream-chaos: error: %s\n", error.what());
    return 2;
  }
}
