// vstream_chaos — crash-safety and host-fault harness for vstream-sim.
//
//   vstream_chaos [--sim PATH] [--sessions N] [--seed S]
//                 [--shards LIST] [--threads LIST] [--profiles LIST]
//                 [--kills N] [--interval N] [--chaos-seed S]
//                 [--failpoints default|LIST] [--fp-rounds N]
//                 [--scratch DIR]
//
// Two campaign modes share one invariant — every run either completes
// with CSVs byte-identical to a clean run, or exits with a documented
// status and a one-line diagnostic.  Never a silently corrupt export,
// never a hang.
//
// Kill campaign (default).  For every (shard count, thread count, fault
// profile) configuration it:
//
//   1. runs vstream-sim once, uninterrupted and single-threaded,
//      exporting the reference CSVs;
//   2. runs the same scenario with --checkpoint --resume at the case's
//      --threads value, delivering SIGKILL at randomized (seeded, hence
//      reproducible) points and resuming after each kill until the run
//      completes; and
//   3. byte-compares all five exported CSV files against the reference.
//
// A kill can land anywhere — mid-batch, mid-spill-write, mid-checkpoint
// rename — so a pass demonstrates the whole durability chain: CRC-framed
// spill blocks, flush-before-commit ordering, atomic sidecar replacement,
// and truncate-to-committed on resume.  Threaded cases are the
// threaded-resume scenario: the reference runs on one thread, the
// killed-and-resumed runs on several, so a pass proves the physical
// thread count changes nothing — not even across a chain of SIGKILLs.
//
// Failpoint campaign (--failpoints).  Host faults are injected
// deterministically through the VSTREAM_FAILPOINTS registry
// (src/failpoints/failpoint.h) at a rotating set of fire points, and
// each armed run must land in its site's documented failure class:
//
//   degrade (checkpoint.*)   exit 0, warn once on stderr, CSVs
//                            byte-identical — a failed sidecar write
//                            never aborts or corrupts the run;
//   abort (spill.*, export.*, runtime.task_stall=error)
//                            exit 3 with a one-line diagnostic; a resume
//                            WITHOUT the failpoint then completes
//                            byte-identical (committed blocks survive);
//   stall (runtime.task_stall=stall:MS)
//                            exit 0 and byte-identical; with
//                            VSTREAM_WATCHDOG_MS below the stall the
//                            watchdog names the stuck task on stderr.
//
// A fire point past the site's evaluation count never fires — the run
// must then complete cleanly and byte-identical (the armed-but-idle
// contract).  --kills N > 0 additionally SIGKILLs armed attempts at
// random points, overlapping a crash with the host fault.  Any other
// exit status, a missing diagnostic, or an attempt outliving the hang
// deadline fails the campaign.
//
// Exit status: 0 when every configuration passes, 1 on any invariant
// violation (mismatch, undocumented exit, silent failure, hang), 2 on
// usage/setup errors.

#include <sys/types.h>
#include <sys/wait.h>

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

constexpr const char* kCsvFiles[] = {
    "player_sessions.csv", "cdn_sessions.csv", "player_chunks.csv",
    "cdn_chunks.csv", "tcp_snapshots.csv"};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--sim PATH] [--sessions N] [--seed S]\n"
      "          [--shards LIST] [--threads LIST] [--profiles LIST]\n"
      "          [--kills N] [--interval N] [--chaos-seed S]\n"
      "          [--failpoints default|LIST] [--fp-rounds N]\n"
      "          [--scratch DIR] [--spill-format 2|3]\n"
      "defaults: --shards 1,2,4,8 --threads 1 --profiles none,eventful\n"
      "          --kills 3 --sessions 600 --interval 50 (per case)\n"
      "--failpoints switches to the failpoint campaign; LIST holds\n"
      "trigger-free specs (spill.write=error,runtime.task_stall=stall:200)\n"
      "and 'default' expands to every registered site.  --fp-rounds N runs\n"
      "each spec at N rotating fire points (default 1); --kills > 0 mixes\n"
      "SIGKILLs into armed attempts.\n",
      argv0);
  std::exit(2);
}

std::vector<std::string> split_csv(const std::string& raw) {
  std::vector<std::string> out;
  std::stringstream ss(raw);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Spawn `args` (args[0] = binary) with stdout discarded; returns the pid.
/// The failpoint/watchdog variables are scrubbed in the child before
/// `extra_env` entries ("NAME=VALUE") are applied, so each attempt sees
/// exactly the injection state the campaign chose — never a stale
/// inherited one.  A non-empty `stderr_path` captures the child's stderr
/// for diagnostic assertions.
pid_t spawn(const std::vector<std::string>& args,
            const std::vector<std::string>& extra_env = {},
            const fs::path& stderr_path = {}) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("fork failed");
  if (pid == 0) {
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
      ::dup2(null_fd, STDOUT_FILENO);
      ::close(null_fd);
    }
    if (!stderr_path.empty()) {
      const int err_fd =
          ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (err_fd >= 0) {
        ::dup2(err_fd, STDERR_FILENO);
        ::close(err_fd);
      }
    }
    ::unsetenv("VSTREAM_FAILPOINTS");
    ::unsetenv("VSTREAM_WATCHDOG_MS");
    ::unsetenv("VSTREAM_WATCHDOG_FATAL");
    for (const std::string& kv : extra_env) {
      const std::size_t eq = kv.find('=');
      if (eq != std::string::npos) {
        ::setenv(kv.substr(0, eq).c_str(), kv.c_str() + eq + 1, 1);
      }
    }
    ::execv(argv[0], argv.data());
    std::perror("execv");  // only reached on failure
    ::_exit(127);
  }
  return pid;
}

struct ChildExit {
  bool exited = false;   ///< child finished on its own
  int status = 0;        ///< exit status when `exited`
  bool killed = false;   ///< we delivered SIGKILL
};

/// Wait up to `deadline_ms`; if the child is still running then, SIGKILL
/// it.  SIGKILL is the point: the child gets no chance to flush, close or
/// clean up — exactly what a power cut or OOM kill looks like.
ChildExit wait_or_kill(pid_t pid, long deadline_ms) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    int status = 0;
    const pid_t done = ::waitpid(pid, &status, WNOHANG);
    if (done == pid) {
      ChildExit r;
      r.exited = true;
      r.status = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
      return r;
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (deadline_ms >= 0 && elapsed >= deadline_ms) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      ChildExit r;
      r.killed = true;
      return r;
    }
    ::usleep(2'000);
  }
}

int wait_for(pid_t pid) {
  return wait_or_kill(pid, -1).status;
}

bool files_identical(const fs::path& a, const fs::path& b) {
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  if (!fa || !fb) return false;
  std::stringstream sa, sb;
  sa << fa.rdbuf();
  sb << fb.rdbuf();
  return sa.str() == sb.str();
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Byte-compare every exported CSV against the reference set.
bool compare_csvs(const fs::path& clean_csv, const fs::path& chaos_csv) {
  bool ok = true;
  for (const char* file : kCsvFiles) {
    if (!files_identical(clean_csv / file, chaos_csv / file)) {
      std::fprintf(stderr, "  MISMATCH: %s differs from the clean run\n",
                   (chaos_csv / file).string().c_str());
      ok = false;
    }
  }
  return ok;
}

struct Config {
  std::string sim;
  std::size_t sessions = 600;
  std::uint64_t seed = 20160516;
  std::size_t kills = 3;
  std::size_t interval = 50;
  std::uint64_t chaos_seed = 1234;
  /// Trigger-free failpoint specs; non-empty selects the failpoint
  /// campaign instead of the kill campaign.
  std::vector<std::string> failpoints;
  std::size_t fp_rounds = 1;
  fs::path scratch = "chaos-scratch";
};

struct CaseResult {
  std::size_t shards = 0;
  std::size_t threads = 1;
  std::string profile;
  std::size_t kills_delivered = 0;
  std::size_t attempts = 0;
  bool ok = false;
};

std::vector<std::string> sim_args(const Config& cfg, std::size_t shards,
                                  std::size_t threads,
                                  const std::string& profile) {
  std::vector<std::string> args = {cfg.sim,
                                   "--sessions", std::to_string(cfg.sessions),
                                   "--seed", std::to_string(cfg.seed),
                                   "--shards", std::to_string(shards),
                                   "--threads", std::to_string(threads)};
  if (profile != "none") {
    args.push_back("--fault-profile");
    args.push_back(profile);
  }
  return args;
}

CaseResult run_case(const Config& cfg, std::size_t shards,
                    std::size_t threads, const std::string& profile,
                    std::mt19937_64& rng) {
  CaseResult result;
  result.shards = shards;
  result.threads = threads;
  result.profile = profile;

  const fs::path dir =
      cfg.scratch / ("s" + std::to_string(shards) + "-t" +
                     std::to_string(threads) + "-" + profile);
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path clean_csv = dir / "clean";
  const fs::path chaos_csv = dir / "chaos";
  const fs::path ckpt = dir / "ckpt";

  // 1. Uninterrupted reference run (plain in-memory telemetry on ONE
  // thread: the chaos run's CSVs must match it even across the
  // spill/export pipeline and a different physical thread count).
  std::vector<std::string> ref = sim_args(cfg, shards, 1, profile);
  ref.insert(ref.end(), {"--out", clean_csv.string()});
  const auto ref_start = std::chrono::steady_clock::now();
  if (const int status = wait_for(spawn(ref)); status != 0) {
    std::fprintf(stderr, "  reference run failed (exit %d)\n", status);
    return result;
  }
  const long clean_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - ref_start)
          .count();

  // Kill window scaled to the measured clean runtime so kills land while
  // the simulator is genuinely mid-run (early bias: resumed attempts are
  // shorter than the first).
  const long kill_min = std::max<long>(5, clean_ms / 20);
  const long kill_max = std::max<long>(kill_min + 1, clean_ms / 2);
  std::uniform_int_distribution<long> delay(kill_min, kill_max);

  // 2. Kill-and-resume loop.  --resume on the very first attempt is safe:
  // no sidecars means a fresh start.
  std::vector<std::string> chaos = sim_args(cfg, shards, threads, profile);
  chaos.insert(chaos.end(),
               {"--checkpoint", ckpt.string(), "--resume",
                "--checkpoint-interval", std::to_string(cfg.interval),
                "--out", chaos_csv.string()});
  for (;;) {
    ++result.attempts;
    const pid_t pid = spawn(chaos);
    if (result.kills_delivered < cfg.kills) {
      const ChildExit ended = wait_or_kill(pid, delay(rng));
      if (ended.killed) {
        ++result.kills_delivered;
        continue;  // resume on the next attempt
      }
      if (ended.status != 0) {
        std::fprintf(stderr, "  chaos attempt failed (exit %d)\n",
                     ended.status);
        return result;
      }
      break;  // finished before the kill timer — that's a completion
    }
    if (const int status = wait_for(pid); status != 0) {
      std::fprintf(stderr, "  final attempt failed (exit %d)\n", status);
      return result;
    }
    break;
  }

  // 3. Byte-compare every exported CSV against the reference.
  result.ok = compare_csvs(clean_csv, chaos_csv);
  return result;
}

// ---------------------------------------------------------------------------
// Failpoint campaign
// ---------------------------------------------------------------------------

enum class FpClass { kDegrade, kAbort, kStall };

/// Classify a trigger-free spec ("site=mode") into its documented failure
/// class: checkpoint.* sites degrade (the run must still complete and
/// export), stall modes only delay, everything else aborts with the
/// host-I/O status.
FpClass classify_spec(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  const std::string site = spec.substr(0, eq);
  const std::string mode =
      eq == std::string::npos ? std::string() : spec.substr(eq + 1);
  if (site.rfind("checkpoint.", 0) == 0) return FpClass::kDegrade;
  if (mode.rfind("stall", 0) == 0) return FpClass::kStall;
  return FpClass::kAbort;
}

const char* class_name(FpClass cls) {
  switch (cls) {
    case FpClass::kDegrade: return "degrade";
    case FpClass::kAbort: return "abort";
    case FpClass::kStall: return "stall";
  }
  return "?";
}

/// The default campaign: every registered site in error mode, plus the
/// stall flavor of the task site (exercised under a 50 ms watchdog).
std::vector<std::string> default_failpoint_specs() {
  return {"spill.write=error",        "spill.flush=error",
          "checkpoint.write=error",   "checkpoint.rename=error",
          "export.open=error",        "export.write=error",
          "runtime.task_stall=error", "runtime.task_stall=stall:200"};
}

/// Fire points rotated across (spec index + round): the small indices hit
/// early and mid-run evaluations; the 2^20 entry deliberately never fires,
/// proving an armed-but-idle site leaves the run untouched.
constexpr std::size_t kFirePoints[] = {0, 2, 1, 4, 9, std::size_t{1} << 20};
constexpr std::size_t kFirePointCount =
    sizeof(kFirePoints) / sizeof(kFirePoints[0]);

struct FpRoundResult {
  std::size_t attempts = 0;
  std::size_t kills_delivered = 0;
  bool aborted = false;  ///< saw the documented exit-3 abort
  bool ok = false;
};

/// One armed round: arm `spec@once:fire_n`, require the documented
/// outcome for the spec's class, resume WITHOUT the failpoint after a
/// documented abort, and byte-compare the final CSVs against `clean_csv`.
FpRoundResult run_fp_round(const Config& cfg, std::size_t shards,
                           std::size_t threads, const std::string& spec,
                           FpClass cls, std::size_t fire_n, long clean_ms,
                           const fs::path& dir, const fs::path& clean_csv,
                           std::mt19937_64& rng) {
  FpRoundResult result;
  const fs::path chaos_csv = dir / "chaos";
  const fs::path ckpt = dir / "ckpt";
  const fs::path errfile = dir / "stderr.txt";
  fs::remove_all(chaos_csv);
  fs::remove_all(ckpt);

  std::vector<std::string> env = {"VSTREAM_FAILPOINTS=" + spec +
                                  "@once:" + std::to_string(fire_n)};
  if (cls == FpClass::kStall) env.push_back("VSTREAM_WATCHDOG_MS=50");

  // Hang deadline: a generous multiple of the measured clean runtime.
  // An attempt that outlives it is killed and fails the campaign — the
  // invariant bans hangs as firmly as it bans corruption.
  const long hang_ms = std::max<long>(15'000, 20 * clean_ms + 2'000);
  const long kill_min = std::max<long>(5, clean_ms / 20);
  const long kill_max = std::max<long>(kill_min + 1, clean_ms / 2);
  std::uniform_int_distribution<long> delay(kill_min, kill_max);
  std::uniform_int_distribution<int> coin(0, 1);

  std::vector<std::string> args = sim_args(cfg, shards, threads, "none");
  args.insert(args.end(),
              {"--checkpoint", ckpt.string(), "--resume",
               "--checkpoint-interval", std::to_string(cfg.interval),
               "--out", chaos_csv.string()});

  // The stall watchdog only reports when the stalled task runs on a
  // watched pool: >= 2 workers and >= 2 tasks in the parallel_for (the
  // inline path still stalls but nothing watches the calling thread).
  // Fire point 0 is always a shard task, so the report is guaranteed
  // exactly when the grid cell is genuinely parallel.
  const bool expect_watchdog =
      cls == FpClass::kStall && fire_n == 0 && threads >= 2 && shards >= 2;
  const bool expect_degrade_warn = cls == FpClass::kDegrade && fire_n == 0;

  bool armed = true;
  constexpr std::size_t kMaxAttempts = 12;
  for (;;) {
    if (++result.attempts > kMaxAttempts) {
      std::fprintf(stderr, "  FAIL %s@once:%zu: no completion after %zu attempts\n",
                   spec.c_str(), fire_n, kMaxAttempts);
      return result;
    }
    const pid_t pid =
        spawn(args, armed ? env : std::vector<std::string>{}, errfile);

    ChildExit ended;
    if (armed && result.kills_delivered < cfg.kills && coin(rng) == 1) {
      // Overlap a crash with the host fault: SIGKILL the armed attempt at
      // a random mid-run point, then retry still armed (a fresh process
      // re-evaluates the trigger from zero).
      ended = wait_or_kill(pid, delay(rng));
      if (ended.killed) {
        ++result.kills_delivered;
        continue;
      }
    } else {
      ended = wait_or_kill(pid, hang_ms);
      if (ended.killed) {
        std::fprintf(stderr, "  FAIL %s@once:%zu: HANG — no exit within %ld ms\n",
                     spec.c_str(), fire_n, hang_ms);
        return result;
      }
    }

    const std::string err = read_file(errfile);
    if (ended.status == 0) {
      if (armed && expect_degrade_warn &&
          err.find("checkpoint") == std::string::npos) {
        std::fprintf(stderr,
                     "  FAIL %s@once:%zu: degraded silently (no checkpoint "
                     "warning on stderr)\n",
                     spec.c_str(), fire_n);
        return result;
      }
      if (armed && expect_watchdog &&
          err.find("watchdog") == std::string::npos) {
        std::fprintf(stderr,
                     "  FAIL %s@once:%zu: stalled task drew no watchdog "
                     "report\n",
                     spec.c_str(), fire_n);
        return result;
      }
      result.ok = compare_csvs(clean_csv, chaos_csv);
      if (!result.ok) {
        std::fprintf(stderr, "  FAIL %s@once:%zu: output differs\n",
                     spec.c_str(), fire_n);
      }
      return result;
    }
    if (ended.status == 3 && armed && cls != FpClass::kDegrade) {
      // The documented host-I/O abort.  Silence here is a violation: the
      // contract is one diagnostic line naming the fault.
      if (err.empty()) {
        std::fprintf(stderr,
                     "  FAIL %s@once:%zu: exit 3 with EMPTY stderr (silent "
                     "failure)\n",
                     spec.c_str(), fire_n);
        return result;
      }
      result.aborted = true;
      armed = false;  // resume without the failpoint; must now complete
      continue;
    }
    std::fprintf(stderr,
                 "  FAIL %s@once:%zu: undocumented exit %d (%s, armed=%d)\n"
                 "    stderr: %s\n",
                 spec.c_str(), fire_n, ended.status, class_name(cls),
                 armed ? 1 : 0, err.empty() ? "<empty>" : err.c_str());
    return result;
  }
}

/// Run every spec x fire-point round on one (shards, threads) grid cell.
bool run_fp_cell(const Config& cfg, std::size_t shards, std::size_t threads,
                 std::mt19937_64& rng, std::size_t* total_kills,
                 std::size_t* total_aborts, std::size_t* total_rounds) {
  const fs::path dir = cfg.scratch / ("fp-s" + std::to_string(shards) + "-t" +
                                      std::to_string(threads));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const fs::path clean_csv = dir / "clean";

  std::vector<std::string> ref = sim_args(cfg, shards, 1, "none");
  ref.insert(ref.end(), {"--out", clean_csv.string()});
  const auto ref_start = std::chrono::steady_clock::now();
  if (const int status = wait_for(spawn(ref)); status != 0) {
    std::fprintf(stderr, "  reference run failed (exit %d)\n", status);
    return false;
  }
  const long clean_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - ref_start)
          .count();

  bool cell_ok = true;
  for (std::size_t s = 0; s < cfg.failpoints.size(); ++s) {
    const std::string& spec = cfg.failpoints[s];
    const FpClass cls = classify_spec(spec);
    for (std::size_t round = 0; round < cfg.fp_rounds; ++round) {
      const std::size_t fire_n = kFirePoints[(s + round) % kFirePointCount];
      const FpRoundResult r = run_fp_round(cfg, shards, threads, spec, cls,
                                           fire_n, clean_ms, dir, clean_csv,
                                           rng);
      std::printf("  %-34s once:%-8zu %-8s %s  (attempts=%zu kills=%zu%s)\n",
                  spec.c_str(), fire_n, class_name(cls),
                  r.ok ? "ok" : "FAILED", r.attempts, r.kills_delivered,
                  r.aborted ? " aborted+resumed" : "");
      std::fflush(stdout);
      *total_kills += r.kills_delivered;
      *total_aborts += r.aborted ? 1 : 0;
      ++*total_rounds;
      cell_ok = cell_ok && r.ok;
    }
  }
  return cell_ok;
}

int run_failpoint_campaign(const Config& cfg,
                           const std::vector<std::string>& shard_list,
                           const std::vector<std::string>& thread_list) {
  std::mt19937_64 rng(cfg.chaos_seed);
  bool all_ok = true;
  std::size_t cells = 0, total_kills = 0, total_aborts = 0, total_rounds = 0;
  for (const std::string& shards : shard_list) {
    for (const std::string& threads : thread_list) {
      std::printf("chaos failpoints: shards=%s threads=%s kills=%s ...\n",
                  shards.c_str(), threads.c_str(),
                  cfg.kills > 0 ? "on" : "off");
      std::fflush(stdout);
      const bool ok = run_fp_cell(
          cfg, static_cast<std::size_t>(std::atol(shards.c_str())),
          static_cast<std::size_t>(std::atol(threads.c_str())), rng,
          &total_kills, &total_aborts, &total_rounds);
      all_ok = all_ok && ok;
      ++cells;
    }
  }
  std::printf("chaos failpoint summary: %zu cells, %zu rounds, %zu documented "
              "aborts resumed, %zu SIGKILLs, %s\n",
              cells, total_rounds, total_aborts, total_kills,
              all_ok ? "no silent corruption" : "FAILED");
  return all_ok ? 0 : 1;
}

int run_tool(int argc, char** argv) {
  Config cfg;
  std::vector<std::string> shard_list = {"1", "2", "4", "8"};
  std::vector<std::string> thread_list = {"1"};
  std::vector<std::string> profiles = {"none", "eventful"};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--sim") {
      cfg.sim = next();
    } else if (arg == "--sessions") {
      cfg.sessions = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (arg == "--seed") {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--shards") {
      shard_list = split_csv(next());
    } else if (arg == "--threads") {
      thread_list = split_csv(next());
    } else if (arg == "--profiles") {
      profiles = split_csv(next());
    } else if (arg == "--kills") {
      cfg.kills = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (arg == "--interval") {
      cfg.interval = static_cast<std::size_t>(std::atol(next().c_str()));
    } else if (arg == "--chaos-seed") {
      cfg.chaos_seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--failpoints") {
      const std::string list = next();
      cfg.failpoints =
          list == "default" ? default_failpoint_specs() : split_csv(list);
      if (cfg.failpoints.empty()) usage(argv[0]);
    } else if (arg == "--fp-rounds") {
      cfg.fp_rounds = static_cast<std::size_t>(std::atol(next().c_str()));
      if (cfg.fp_rounds == 0) usage(argv[0]);
    } else if (arg == "--scratch") {
      cfg.scratch = next();
    } else if (arg == "--spill-format") {
      const std::string v = next();
      if (v != "2" && v != "3") {
        std::fprintf(stderr, "--spill-format must be 2 or 3 (got %s)\n",
                     v.c_str());
        return 2;
      }
      // Children inherit the environment, so setting it here pins every
      // spawned sim/analyze attempt to the requested format.
      ::setenv("VSTREAM_SPILL_FORMAT", v.c_str(), 1);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }
  if (cfg.sim.empty()) {
    // Default: the vstream-sim that was built next to this binary.
    cfg.sim = (fs::path(argv[0]).parent_path() / "vstream-sim").string();
  }
  if (!fs::exists(cfg.sim)) {
    std::fprintf(stderr, "simulator binary not found: %s (use --sim)\n",
                 cfg.sim.c_str());
    return 2;
  }

  if (!cfg.failpoints.empty()) {
    return run_failpoint_campaign(cfg, shard_list, thread_list);
  }

  std::mt19937_64 rng(cfg.chaos_seed);
  std::vector<CaseResult> results;
  std::size_t total_kills = 0;
  bool all_ok = true;
  for (const std::string& profile : profiles) {
    for (const std::string& shards : shard_list) {
      for (const std::string& threads : thread_list) {
        std::printf("chaos: shards=%s threads=%s profile=%s ...\n",
                    shards.c_str(), threads.c_str(), profile.c_str());
        std::fflush(stdout);
        const CaseResult r = run_case(
            cfg, static_cast<std::size_t>(std::atol(shards.c_str())),
            static_cast<std::size_t>(std::atol(threads.c_str())), profile,
            rng);
        std::printf("  %s  (attempts=%zu kills=%zu)\n",
                    r.ok ? "identical to clean run" : "FAILED", r.attempts,
                    r.kills_delivered);
        std::fflush(stdout);
        total_kills += r.kills_delivered;
        all_ok = all_ok && r.ok;
        results.push_back(r);
      }
    }
  }

  std::printf("chaos summary: %zu configurations, %zu SIGKILLs delivered, "
              "%s\n",
              results.size(), total_kills, all_ok ? "all identical" : "FAILED");
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_tool(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vstream-chaos: error: %s\n", error.what());
    return 2;
  }
}
