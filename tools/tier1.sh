#!/usr/bin/env bash
# Tier-1 verification: full build + ctest, then the sim/cdn/core/faults/
# engine suites again under AddressSanitizer (VSTREAM_SANITIZE=address),
# the engine/core suites under UBSan (VSTREAM_SANITIZE=undefined), and the
# work-stealing executor + sharded engine suites under TSan
# (VSTREAM_SANITIZE=thread) at >= 4 physical workers.  The engine
# ASan/TSan passes exercise the overload-protection layer (breakers,
# shedding, hedges) via the determinism suite's overload scenario; the
# TSan pass additionally runs the steal-heavy executor stress tests and
# an oversubscribed (threads > cores) determinism run.
#
# Usage: tools/tier1.sh [build-dir] [asan-build-dir] [ubsan-build-dir] \
#                       [tsan-build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
asan_dir="${2:-$repo_root/build-asan}"
ubsan_dir="${3:-$repo_root/build-ubsan}"
tsan_dir="${4:-$repo_root/build-tsan}"

echo "==> tier-1: configure + build ($build_dir)"
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j

echo "==> tier-1: ctest"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "==> tier-1: ASan build ($asan_dir)"
cmake -B "$asan_dir" -S "$repo_root" -DVSTREAM_SANITIZE=address
cmake --build "$asan_dir" -j --target test_runtime test_sim test_cdn test_core test_faults test_engine test_telemetry test_failpoints

echo "==> tier-1: ASan suites (runtime, sim, cdn, core, faults, engine, telemetry, failpoints)"
# test_telemetry includes the spill corruption fuzz (flip every byte,
# truncate at every offset) — under ASan it proves the recovery scan never
# reads out of bounds on damaged input.
for suite in test_runtime test_sim test_cdn test_core test_faults test_engine test_telemetry test_failpoints; do
  echo "--> $suite"
  "$asan_dir/tests/$suite"
done

echo "==> tier-1: ASan serve-unification equivalence (explicit)"
# Runs inside test_engine above too; the explicit pass guards against the
# filter drifting if the suite is ever split.  Golden-hash proof that the
# unified serve pipeline reproduces both pre-refactor serve paths over all
# five CSV streams, with ASan watching the Env overlays.
"$asan_dir/tests/test_engine" --gtest_filter='ServeUnificationGolden.*'

echo "==> tier-1: UBSan build ($ubsan_dir)"
cmake -B "$ubsan_dir" -S "$repo_root" -DVSTREAM_SANITIZE=undefined
cmake --build "$ubsan_dir" -j --target test_engine test_core test_telemetry test_failpoints

echo "==> tier-1: UBSan suites (engine, core, telemetry, failpoints)"
for suite in test_engine test_core test_telemetry test_failpoints; do
  echo "--> $suite"
  UBSAN_OPTIONS=halt_on_error=1 "$ubsan_dir/tests/$suite"
done

echo "==> tier-1: TSan build ($tsan_dir)"
cmake -B "$tsan_dir" -S "$repo_root" -DVSTREAM_SANITIZE=thread
cmake --build "$tsan_dir" -j --target test_runtime test_engine

echo "==> tier-1: TSan executor suite (steal-heavy stress included)"
TSAN_OPTIONS=halt_on_error=1 "$tsan_dir/tests/test_runtime"

echo "==> tier-1: TSan sharded engine suite (VSTREAM_SHARDS=4, 4 workers)"
# Covers the parallel shard/batch execution, parallel merge, parallel
# analyze_spill and the checkpoint/resume paths on real worker threads.
VSTREAM_SHARDS=4 VSTREAM_THREADS=4 TSAN_OPTIONS=halt_on_error=1 \
  "$tsan_dir/tests/test_engine"

echo "==> tier-1: oversubscribed determinism (threads > cores)"
# More workers than the machine has cores forces preemption mid-steal.
# EngineDeterminismTest leaves options.threads unset, so VSTREAM_THREADS
# drives the pool: every shard-count/fault/overload/spill/resume check
# must still be bit-identical at the oversubscribed width.
oversub=$(( $(nproc) * 2 + 3 ))
VSTREAM_THREADS=$oversub "$build_dir/tests/test_engine" \
  --gtest_filter='EngineDeterminismTest.*'
echo "    determinism holds at $oversub workers on $(nproc) cores"

echo "==> tier-1: perf smoke (hotpath suite -> BENCH_hotpaths.json)"
cmake --build "$build_dir" -j --target bench_micro_hotpaths
# Small workload: this checks the harness end to end (benchmarks run, the
# JSON is written and well-formed), not absolute performance.
(cd "$build_dir" && VSTREAM_BENCH_SESSIONS=50 \
  ./bench/bench_micro_hotpaths --benchmark_min_time=0.01 >/dev/null)
python3 -m json.tool "$build_dir/BENCH_hotpaths.json" >/dev/null
metric_count=$(python3 -c "
import json, sys
with open('$build_dir/BENCH_hotpaths.json') as f:
    doc = json.load(f)
print(len(doc['metrics']))
")
if [ "$metric_count" -lt 5 ]; then
  echo "tier-1: BENCH_hotpaths.json has only $metric_count metrics (< 5)" >&2
  exit 1
fi
echo "    BENCH_hotpaths.json OK ($metric_count metrics)"

echo "==> tier-1: telemetry spill smoke (bounded memory, byte-identical CSV)"
spill_work="$build_dir/tier1-spill-smoke"
rm -rf "$spill_work"
mkdir -p "$spill_work"
"$build_dir/tools/vstream-sim" --sessions 200 --seed 11 --shards 4 \
  --out "$spill_work/mem" >/dev/null
# Both on-disk formats (v2 row, v3 columnar) must reproduce the in-memory
# CSVs byte for byte; v3 must be the smaller encoding of the same run.
for fmt in 2 3; do
  "$build_dir/tools/vstream-sim" --sessions 200 --seed 11 --shards 4 \
    --spill-format "$fmt" \
    --telemetry-spill "$spill_work/spill-dir-v$fmt" \
    --out "$spill_work/spill-v$fmt" >/dev/null
  spill_files=$(ls "$spill_work/spill-dir-v$fmt"/*.vspill 2>/dev/null | wc -l)
  if [ "$spill_files" -lt 1 ]; then
    echo "tier-1: spill run left no .vspill files (format $fmt)" >&2
    exit 1
  fi
  for f in player_sessions cdn_sessions player_chunks cdn_chunks tcp_snapshots; do
    cmp "$spill_work/mem/$f.csv" "$spill_work/spill-v$fmt/$f.csv"
  done
done
v2_bytes=$(du -sb "$spill_work/spill-dir-v2" | cut -f1)
v3_bytes=$(du -sb "$spill_work/spill-dir-v3" | cut -f1)
if [ "$v3_bytes" -ge "$v2_bytes" ]; then
  echo "tier-1: v3 spill ($v3_bytes B) not smaller than v2 ($v2_bytes B)" >&2
  exit 1
fi
"$build_dir/tools/vstream-analyze" "$spill_work/spill-dir-v3" --spill-stats \
  >/dev/null
echo "    spill CSVs byte-identical to in-memory for v2 and v3" \
  "(v2 $v2_bytes B, v3 $v3_bytes B)"

echo "==> tier-1: attribution smoke (counterfactual replay, worst-5 blame)"
attr_work="$build_dir/tier1-attr-smoke"
rm -rf "$attr_work"
mkdir -p "$attr_work"
# In-run attribution: the factual replays must reproduce the measured
# QoE, every session's blame fractions must sum to <= 1, and the report
# must cover all five idealized subsystems.
"$build_dir/tools/vstream-sim" --sessions 200 --seed 11 \
  --fault-profile overload --attribute-worst 5 \
  --attribution-out "$attr_work/BENCH_attribution.json" \
  --out "$attr_work/telemetry" >/dev/null
python3 -c "
import json
with open('$attr_work/BENCH_attribution.json') as f:
    doc = json.load(f)
assert doc['schema'] == 'vstream-attribution-v1', doc.get('schema')
assert doc['sessions_analyzed'] >= 190, doc['sessions_analyzed']
sessions = doc['sessions']
assert len(sessions) == 5, len(sessions)
subsystems = {'cache', 'network', 'backend', 'overload', 'abr'}
for s in sessions:
    assert set(s['blame']) == subsystems, s['blame']
    assert set(s['ideal_penalty']) == subsystems
    total = sum(s['blame'].values())
    assert 0.0 <= total <= 1.0 + 1e-9, (s['session_id'], total)
    # The JSON rounds to 6 significant digits, so the complement check
    # needs slack beyond the per-field rounding noise.
    assert abs(total + s['residual'] - 1.0) <= 1e-5 or s['baseline_penalty'] == 0
    assert s['replay_matches_baseline'] is True, s['session_id']
print('    BENCH_attribution.json OK (5 sessions, blame sums <= 1)')
"
# Offline attribution over the exported CSVs must agree with the in-run
# pass (same world rebuilt from the same flags).
"$build_dir/tools/vstream-analyze" "$attr_work/telemetry" --attribution \
  --sessions 200 --seed 11 --fault-profile overload --worst 5 \
  --attribution-out "$attr_work/BENCH_attribution_offline.json" >/dev/null
python3 -c "
import json
a = json.load(open('$attr_work/BENCH_attribution.json'))
b = json.load(open('$attr_work/BENCH_attribution_offline.json'))
assert [s['session_id'] for s in a['sessions']] == \
       [s['session_id'] for s in b['sessions']]
for sa, sb in zip(a['sessions'], b['sessions']):
    assert sb['replay_matches_baseline'] is True, sb['session_id']
    for k in sa['blame']:
        assert abs(sa['blame'][k] - sb['blame'][k]) < 1e-6, (sa, sb)
print('    offline --attribution agrees with the in-run pass')
"

echo "==> tier-1: chaos smoke (kill-and-resume, byte-identical CSVs)"
cmake --build "$build_dir" -j --target vstream-chaos
# Small config: one SIGKILL per (shards, threads, profile) cell still
# walks the whole durability chain — spill CRC framing,
# flush-before-commit, atomic sidecar replace, truncate-to-committed on
# resume.  --threads 1,4 adds the threaded-resume scenario: the chaos
# run executes on 4 workers while its reference is single-threaded, so
# each cell also proves thread-count invariance across a crash.  The
# full matrix (shards 1,2,4,8, >= 5 kills) runs via the tool's defaults.
"$build_dir/tools/vstream-chaos" --sessions 200 --shards 1,2 \
  --threads 1,4 --profiles none,eventful --kills 1 --interval 25 \
  --scratch "$build_dir/tier1-chaos"

echo "==> tier-1: chaos failpoint smoke (no silent corruption)"
# Every registered failpoint site, one rotating fire point each, with one
# SIGKILL mixed into armed attempts: each run must either complete
# byte-identical to the clean reference or abort with the documented exit
# code and a one-line diagnostic (tools/vstream_chaos.cpp header).  The
# acceptance-scale campaign (shards 1,4,64 x threads 1,4, with and
# without kills) is recorded in EXPERIMENTS.md.
"$build_dir/tools/vstream-chaos" --sessions 150 --shards 2 --threads 1,4 \
  --kills 1 --interval 25 --failpoints default --fp-rounds 1 \
  --scratch "$build_dir/tier1-chaos-fp"

echo "==> tier-1: telemetry bench smoke (-> BENCH_telemetry.json)"
cmake --build "$build_dir" -j --target bench_telemetry_pipeline
(cd "$build_dir" && VSTREAM_BENCH_SESSIONS=60 \
  ./bench/bench_telemetry_pipeline >/dev/null)
python3 -m json.tool "$build_dir/BENCH_telemetry.json" >/dev/null
telemetry_metrics=$(python3 -c "
import json
with open('$build_dir/BENCH_telemetry.json') as f:
    doc = json.load(f)
print(len(doc['metrics']))
")
if [ "$telemetry_metrics" -lt 5 ]; then
  echo "tier-1: BENCH_telemetry.json has only $telemetry_metrics metrics (< 5)" >&2
  exit 1
fi
echo "    BENCH_telemetry.json OK ($telemetry_metrics metrics)"

echo "==> tier-1: scaling bench smoke (-> BENCH_scaling.json)"
cmake --build "$build_dir" -j --target bench_scaling
# Small workload, one rep: validates the harness (sweep runs, outputs
# stay bit-identical across thread counts, JSON well-formed), not the
# shape of the curve — that needs a multi-core host and real sessions.
(cd "$build_dir" && VSTREAM_BENCH_SESSIONS=60 \
  ./bench/bench_scaling --reps 1 >/dev/null)
python3 -m json.tool "$build_dir/BENCH_scaling.json" >/dev/null
scaling_metrics=$(python3 -c "
import json
with open('$build_dir/BENCH_scaling.json') as f:
    doc = json.load(f)
metrics = doc['metrics']
assert doc['suite'] == 'scaling', doc['suite']
for t in (1, 2, 4, 8):
    assert f'sim_sessions_per_s_t{t}' in metrics, f'missing t{t} rate'
    assert metrics[f'sim_sessions_per_s_t{t}']['value'] > 0
    assert f'analyze_spill_ms_t{t}' in metrics, f'missing t{t} analyze'
print(len(metrics))
")
if [ "$scaling_metrics" -lt 10 ]; then
  echo "tier-1: BENCH_scaling.json has only $scaling_metrics metrics (< 10)" >&2
  exit 1
fi
echo "    BENCH_scaling.json OK ($scaling_metrics metrics)"

echo "==> tier-1: OK"
