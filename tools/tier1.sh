#!/usr/bin/env bash
# Tier-1 verification: full build + ctest, then the sim/cdn/core/faults
# suites again under AddressSanitizer (VSTREAM_SANITIZE=address).
#
# Usage: tools/tier1.sh [build-dir] [asan-build-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
asan_dir="${2:-$repo_root/build-asan}"

echo "==> tier-1: configure + build ($build_dir)"
cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j

echo "==> tier-1: ctest"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "==> tier-1: ASan build ($asan_dir)"
cmake -B "$asan_dir" -S "$repo_root" -DVSTREAM_SANITIZE=address
cmake --build "$asan_dir" -j --target test_sim test_cdn test_core test_faults

echo "==> tier-1: ASan suites (sim, cdn, core, faults)"
for suite in test_sim test_cdn test_core test_faults; do
  echo "--> $suite"
  "$asan_dir/tests/$suite"
done

echo "==> tier-1: OK"
