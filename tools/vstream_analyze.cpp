// vstream_analyze — run the paper's offline analyses over a telemetry
// directory previously written by `vstream_sim --out DIR` (or any system
// emitting the same CSV schema).
//
//   vstream_analyze DIR [--tail-threshold MS] [--epochs N] [--spill-stats]
//                       [--attribution] [--sessions N] [--seed S]
//                       [--fault-profile none|eventful|overload]
//                       [--worst N] [--attribution-out FILE]
//
// --spill-stats prints a per-file byte-level report for a spill
// directory instead of running the analyses: format version, block and
// salvage counts, file bytes, and the realized compression ratio
// (v2-equivalent logical bytes over the intact payload bytes on disk).
//
// --attribution replays the worst `--worst N` (default 20) sessions of
// the dataset in DIR under each subsystem idealization
// (cdn/idealization.h) and prints the blame breakdown, writing the full
// report to --attribution-out (default BENCH_attribution.json).  The
// replay rebuilds the run's world from scratch, so --sessions, --seed
// and --fault-profile must match the flags of the `vstream-sim` run that
// produced DIR; a mismatch is detected (the factual replays diverge from
// the measured records) and reported as a warning with
// `replay_matches_baseline: false` in the JSON.
//
// DIR may hold either the CSV export (player_sessions.csv, ...) or a set
// of binary shard-*.vspill spill files written by `vstream_sim
// --telemetry-spill DIR` / `--checkpoint DIR`; spill directories are
// detected automatically.  Damaged spill data is salvaged block by block
// (a "spill recovery" section reports what was skipped) rather than
// aborting the analysis — but the tool then exits with the documented
// salvage-incomplete status (4, core/exit_codes.h) so scripts learn the
// results cover a subset.  Other errors print one diagnostic line and
// exit 2 (usage/config) or 3 (host I/O).
//
// Performs the §3 preprocessing (proxy filter + join), then prints:
//   * the QoE summary,
//   * the CDN latency breakdown (Fig. 5 headline numbers),
//   * the org CV table (Table 4),
//   * the persistent tail-prefix study (Fig. 9), and
//   * the Eq. 4 download-stack screen counts (§4.3-1).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/aggregate.h"
#include "analysis/attribution.h"
#include "analysis/detectors.h"
#include "analysis/qoe.h"
#include "core/exit_codes.h"
#include "core/report.h"
#include "engine/attribution.h"
#include "engine/replay.h"
#include "faults/fault_schedule.h"
#include "sim/host_error.h"
#include "telemetry/export.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"
#include "telemetry/spill_format.h"
#include "workload/scenario.h"

using namespace vstream;

namespace {

/// Every *.vspill file in `dir`, sorted by name so the set is stable no
/// matter the directory iteration order (the canonical merge is
/// order-insensitive anyway; sorting keeps the salvage accounting
/// reproducible too).
std::vector<std::filesystem::path> spill_files_in(const std::string& dir) {
  std::vector<std::filesystem::path> files;
  if (!std::filesystem::is_directory(dir)) return files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".vspill") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// --spill-stats: byte-level inspection of each spill file.  A full
/// sequential read per file (so payload CRCs are actually verified and
/// the salvage/ratio numbers are real, not header-scan estimates).
int run_spill_stats(const std::vector<std::filesystem::path>& files) {
  telemetry::SpillReadStats total;
  std::uint64_t total_file_bytes = 0;
  for (const std::filesystem::path& file : files) {
    telemetry::SpillReader reader(file);
    while (reader.next().has_value()) {
    }
    const telemetry::SpillReadStats& s = reader.stats();
    core::print_header(file.filename().string());
    core::print_metric("format_version",
                       static_cast<double>(reader.format_version()));
    core::print_metric("file_bytes", static_cast<double>(reader.file_bytes()));
    core::print_metric("blocks_ok", static_cast<double>(s.blocks_ok));
    core::print_metric("blocks_skipped", static_cast<double>(s.blocks_skipped));
    core::print_metric("commit_frames", static_cast<double>(s.commit_frames));
    core::print_metric("bytes_salvaged", static_cast<double>(s.bytes_salvaged));
    core::print_metric("bytes_skipped", static_cast<double>(s.bytes_skipped));
    core::print_metric("torn_tail_bytes",
                       static_cast<double>(s.torn_tail_bytes));
    core::print_metric("logical_bytes", static_cast<double>(s.logical_bytes));
    if (s.bytes_salvaged > 0) {
      core::print_metric("compression_ratio",
                         static_cast<double>(s.logical_bytes) /
                             static_cast<double>(s.bytes_salvaged));
    }
    total += s;
    total_file_bytes += reader.file_bytes();
  }
  core::print_header("total");
  core::print_metric("spill_files", static_cast<double>(files.size()));
  core::print_metric("file_bytes", static_cast<double>(total_file_bytes));
  core::print_metric("blocks_ok", static_cast<double>(total.blocks_ok));
  core::print_metric("blocks_skipped",
                     static_cast<double>(total.blocks_skipped));
  core::print_metric("bytes_salvaged",
                     static_cast<double>(total.bytes_salvaged));
  core::print_metric("logical_bytes",
                     static_cast<double>(total.logical_bytes));
  if (total.bytes_salvaged > 0) {
    core::print_metric("compression_ratio",
                       static_cast<double>(total.logical_bytes) /
                           static_cast<double>(total.bytes_salvaged));
  }
  return total.corrupted() ? core::kExitSalvageIncomplete : core::kExitOk;
}

/// --attribution: counterfactual replay of the worst sessions in `data`.
/// The scenario must describe the run that produced the dataset; the
/// engine detects divergence (factual replay != measured records) rather
/// than silently attributing a different world.
int run_attribution(const telemetry::Dataset& data,
                    const workload::Scenario& scenario,
                    faults::FaultSchedule faults, std::size_t worst_n,
                    const std::string& out_path) {
  engine::RunOptions world;
  world.faults = std::move(faults);
  const engine::ReplayContext replay_ctx(scenario, std::move(world));
  engine::AttributionOptions attr_options;
  attr_options.worst_n = worst_n;
  const analysis::AttributionReport report =
      engine::attribute_worst(replay_ctx, data, attr_options);

  core::print_header("worst-session attribution (counterfactual replay)");
  core::print_metric("sessions_attributed",
                     static_cast<double>(report.sessions.size()));
  core::Table blame({"subsystem", "mean blame"});
  for (std::size_t i = 0; i < cdn::kIdealizedSubsystemCount; ++i) {
    blame.add_row({cdn::idealization_name(cdn::kIdealizedSubsystems[i]),
                   core::fmt(report.mean_blame(i), 3)});
  }
  blame.add_row({"(residual)", core::fmt(report.mean_residual(), 3)});
  blame.print();
  std::size_t replay_mismatches = 0;
  for (const analysis::SessionAttribution& s : report.sessions) {
    if (!s.baseline_matches) ++replay_mismatches;
  }
  if (replay_mismatches > 0) {
    std::fprintf(stderr,
                 "warning: %zu factual replays diverged from the measured "
                 "dataset; do --sessions/--seed/--fault-profile match the "
                 "run that produced it?\n",
                 replay_mismatches);
  }

  std::ofstream json_out(out_path);
  if (!json_out) {
    throw sim::HostIoError("attribution: cannot open " + out_path +
                           " for writing");
  }
  analysis::write_attribution_json(json_out, report);
  std::printf("\nwrote attribution report to %s\n", out_path.c_str());
  return core::kExitOk;
}

int run_tool(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s DIR [--tail-threshold MS] [--epochs N] "
                 "[--spill-stats]\n"
                 "          [--attribution] [--sessions N] [--seed S]\n"
                 "          [--fault-profile none|eventful|overload]\n"
                 "          [--worst N] [--attribution-out FILE]\n",
                 argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  double tail_threshold_ms = 100.0;
  std::size_t epochs = 4;
  bool spill_stats_only = false;
  bool attribution = false;
  // Replay-world knobs: defaults mirror vstream-sim's so a default run
  // attributes with no extra flags.
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = 2'000;
  faults::FaultSchedule faults;
  std::size_t worst_n = 20;
  std::string attribution_out = "BENCH_attribution.json";
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tail-threshold" && i + 1 < argc) {
      tail_threshold_ms = std::atof(argv[++i]);
    } else if (arg == "--epochs" && i + 1 < argc) {
      epochs = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--spill-stats") {
      spill_stats_only = true;
    } else if (arg == "--attribution") {
      attribution = true;
    } else if (arg == "--sessions" && i + 1 < argc) {
      scenario.session_count = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--seed" && i + 1 < argc) {
      scenario.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (arg == "--fault-profile" && i + 1 < argc) {
      const std::optional<faults::FaultSchedule> named =
          faults::FaultSchedule::named(argv[++i]);
      if (!named.has_value()) {
        std::fprintf(stderr, "unknown fault profile: %s\n", argv[i]);
        return 2;
      }
      faults = *named;
    } else if (arg == "--worst" && i + 1 < argc) {
      worst_n = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--attribution-out" && i + 1 < argc) {
      attribution_out = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (spill_stats_only) {
    const std::vector<std::filesystem::path> files = spill_files_in(dir);
    if (files.empty()) {
      std::fprintf(stderr, "--spill-stats: no *.vspill files in %s\n",
                   dir.c_str());
      return 2;
    }
    return run_spill_stats(files);
  }

  // Spill directories analyze from the binary files directly; corrupt
  // blocks degrade to salvage accounting instead of a failed import.
  telemetry::Dataset data;
  telemetry::SpillReadStats spill_stats;
  const std::vector<std::filesystem::path> spill_files = spill_files_in(dir);
  if (!spill_files.empty()) {
    telemetry::SpillSet spill;
    for (const std::filesystem::path& file : spill_files) {
      spill.add_file(file);
    }
    data = spill.load(&spill_stats);
  } else {
    data = telemetry::import_dataset(dir);
  }
  core::print_header("Dataset");
  if (!spill_files.empty()) {
    core::print_metric("spill_files", static_cast<double>(spill_files.size()));
  }
  core::print_metric("player_sessions", static_cast<double>(data.player_sessions.size()));
  core::print_metric("player_chunks", static_cast<double>(data.player_chunks.size()));
  core::print_metric("tcp_snapshots", static_cast<double>(data.tcp_snapshots.size()));
  if (spill_stats.corrupted()) {
    core::print_header("spill recovery (corruption detected)");
    core::print_metric("blocks_ok", static_cast<double>(spill_stats.blocks_ok));
    core::print_metric("blocks_skipped",
                       static_cast<double>(spill_stats.blocks_skipped));
    core::print_metric("bytes_salvaged",
                       static_cast<double>(spill_stats.bytes_salvaged));
    core::print_metric("bytes_skipped",
                       static_cast<double>(spill_stats.bytes_skipped));
    core::print_metric("torn_tail_bytes",
                       static_cast<double>(spill_stats.torn_tail_bytes));
  }

  if (attribution) {
    const int status = run_attribution(data, scenario, std::move(faults),
                                       worst_n, attribution_out);
    return spill_stats.corrupted() ? core::kExitSalvageIncomplete : status;
  }

  const auto proxies = telemetry::detect_proxies(data);
  const auto joined = telemetry::JoinedDataset::build(data, &proxies);
  core::print_metric("proxy_sessions_filtered",
                     static_cast<double>(proxies.proxy_sessions.size()));
  core::print_metric("sessions_after_join",
                     static_cast<double>(joined.sessions().size()));

  core::print_header("QoE");
  const analysis::QoeAggregate qoe = analysis::aggregate_qoe(joined);
  core::print_metric("startup_median_ms", qoe.startup_ms.median);
  core::print_metric("rebuffer_rate_mean_pct", qoe.rebuffer_rate_pct.mean);
  core::print_metric("avg_bitrate_median_kbps", qoe.avg_bitrate_kbps.median);
  core::print_metric("share_with_rebuffering", qoe.share_with_rebuffering);

  core::print_header("CDN latency (Fig. 5 headlines)");
  std::vector<double> hit, miss;
  for (const auto& c : data.cdn_chunks) {
    (c.cache_hit() ? hit : miss).push_back(c.server_total_ms());
  }
  core::print_metric("hit_median_ms", analysis::summarize(hit).median);
  if (!miss.empty()) {
    core::print_metric("miss_median_ms", analysis::summarize(miss).median);
    core::print_metric("miss_share", static_cast<double>(miss.size()) /
                                         static_cast<double>(hit.size() +
                                                             miss.size()));
  }

  core::print_header("Table 4: orgs by share of CV(SRTT) > 1 sessions");
  core::Table table({"org", "access", "CV>1", "sessions", "share"});
  for (const analysis::OrgCvRow& row : analysis::org_cv_table(joined, 50)) {
    table.add_row({row.org, net::to_string(row.access),
                   std::to_string(row.high_cv_sessions),
                   std::to_string(row.total_sessions),
                   core::fmt(row.percent(), 1) + "%"});
  }
  table.print();

  core::print_header("Fig. 9: persistent tail-latency prefixes");
  const analysis::TailPrefixStudy study = analysis::persistent_tail_prefixes(
      joined, tail_threshold_ms, epochs, 0.10);
  core::print_metric("prefixes", static_cast<double>(study.total_prefix_count));
  core::print_metric("ever_in_tail", static_cast<double>(study.tail_prefix_count));
  core::print_metric("persistent", static_cast<double>(study.persistent_tail.size()));
  core::print_metric("non_us_share", study.non_us_share);

  core::print_header("Fig. 8: per-session latency CDFs");
  std::vector<double> srtt_min, sigma_srtt;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    const analysis::SessionNetMetrics m = analysis::session_net_metrics(s);
    if (!m.valid) continue;
    srtt_min.push_back(m.srtt_min_ms);
    sigma_srtt.push_back(m.srtt_stddev_ms);
  }
  core::print_cdf("analyze_srtt_min", analysis::make_cdf(srtt_min, 25));
  core::print_cdf("analyze_sigma_srtt", analysis::make_cdf(sigma_srtt, 25));

  core::print_header("Eq. 4 download-stack screen (§4.3-1)");
  std::size_t flagged = 0, sessions_with_flag = 0, chunks = 0;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    chunks += s.chunks.size();
    const analysis::DsOutlierResult r = analysis::detect_ds_outliers(s);
    flagged += r.flagged_count;
    if (r.flagged_count > 0) ++sessions_with_flag;
  }
  core::print_metric("flagged_chunk_share",
                     chunks == 0 ? 0.0
                                 : static_cast<double>(flagged) /
                                       static_cast<double>(chunks));
  core::print_metric("flagged_session_share",
                     joined.sessions().empty()
                         ? 0.0
                         : static_cast<double>(sessions_with_flag) /
                               static_cast<double>(joined.sessions().size()));
  // Salvaged-but-incomplete data: everything above was printed, but the
  // exit status records that corruption trimmed the dataset.
  return spill_stats.corrupted() ? core::kExitSalvageIncomplete
                                 : core::kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_tool(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "vstream-analyze: error: %s\n", error.what());
    return core::exit_code_for(error);
  }
}
