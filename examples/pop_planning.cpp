// PoP planning: the §4.2-1 take-away says finding persistently distant
// clients "helps video content providers in better placement of new CDN
// servers".  This example sweeps the PoP count and shows how client
// distance, baseline latency and startup delay respond — and where the
// returns diminish (the same reasoning that tells a provider NOT to
// over-provision near already-fast clients).
//
// Usage: ./build/examples/pop_planning [sessions]

#include <cstdio>
#include <cstdlib>

#include "analysis/aggregate.h"
#include "analysis/qoe.h"
#include "core/report.h"
#include "engine/engine.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"

using namespace vstream;

namespace {

struct PlanResult {
  double mean_distance_km = 0.0;
  double srtt_min_median_ms = 0.0;
  double startup_median_ms = 0.0;
  double rebuffer_mean_pct = 0.0;
};

PlanResult evaluate(std::uint32_t pop_count, std::size_t sessions) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = sessions;
  scenario.fleet.pop_count = pop_count;
  const engine::AnalyzedRun analyzed = engine::run_and_analyze(scenario);
  const telemetry::JoinedDataset& joined = analyzed.joined;

  PlanResult result;
  std::vector<double> distance, srtt_min;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    distance.push_back(s.cdn->client_distance_km);
    const analysis::SessionNetMetrics m = analysis::session_net_metrics(s);
    if (m.valid) srtt_min.push_back(m.srtt_min_ms);
  }
  result.mean_distance_km = analysis::mean_of(distance);
  result.srtt_min_median_ms = analysis::summarize(srtt_min).median;
  const analysis::QoeAggregate qoe = analysis::aggregate_qoe(joined);
  result.startup_median_ms = qoe.startup_ms.median;
  result.rebuffer_mean_pct = qoe.rebuffer_rate_pct.mean;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t sessions =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 1'000;

  core::print_header("PoP planning sweep (same workload, growing footprint)");
  core::Table table({"PoPs", "mean client distance km", "srtt_min median ms",
                     "startup median ms", "rebuffer mean %"});
  for (const std::uint32_t pops : {1u, 2u, 4u, 8u, 16u}) {
    const PlanResult r = evaluate(pops, sessions);
    table.add_row({std::to_string(pops), core::fmt(r.mean_distance_km, 0),
                   core::fmt(r.srtt_min_median_ms, 1),
                   core::fmt(r.startup_median_ms, 0),
                   core::fmt(r.rebuffer_mean_pct, 3)});
  }
  table.print();
  std::printf(
      "\nDistance (and with it baseline latency) collapses over the first "
      "few PoPs and then flattens: past that point the residual tail is "
      "enterprise paths and international clients, which more servers in "
      "the US cannot fix (§4.2-1).\n");
  return 0;
}
