// Quickstart: stream one video session through the full end-to-end path
// and print the two-sided, per-chunk instrumentation the library collects
// (the paper's Table 2), followed by the session QoE summary.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "core/report.h"
#include "telemetry/join.h"

using namespace vstream;

int main() {
  // A scenario is the complete configuration of a simulated deployment:
  // video catalog, client population, CDN fleet, transport and player.
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 0;  // we will drive one scripted session

  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();  // emulate servers that have been running a while

  // Stream one 12-chunk session with the hybrid ABR.
  core::SessionOverrides overrides;
  overrides.chunk_count = 12;
  overrides.abr = client::AbrKind::kHybrid;
  const std::uint64_t session_id = pipeline.run_session(overrides);

  // Join the player-side and CDN-side logs by (sessionID, chunkID) —
  // the paper's §2.2 tracing methodology.
  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  const telemetry::JoinedSession& session = joined.sessions().front();

  std::printf("session %llu: video length %.0f s, startup %.0f ms\n\n",
              static_cast<unsigned long long>(session_id),
              session.player->video_duration_s, session.player->startup_ms);

  core::Table table({"chunk", "bitrate", "D_FB ms", "D_LB ms", "server ms",
                     "cache", "SRTT ms", "retx", "rebuf ms", "drop%"});
  for (const telemetry::JoinedChunk& chunk : session.chunks) {
    const double drop_pct =
        chunk.player->total_frames == 0
            ? 0.0
            : 100.0 * chunk.player->dropped_frames / chunk.player->total_frames;
    table.add_row({
        std::to_string(chunk.player->chunk_id),
        std::to_string(chunk.player->bitrate_kbps),
        core::fmt(chunk.player->dfb_ms, 1),
        core::fmt(chunk.player->dlb_ms, 1),
        core::fmt(chunk.cdn->server_total_ms(), 2),
        cdn::to_string(chunk.cdn->cache_level),
        chunk.last_snapshot != nullptr
            ? core::fmt(chunk.last_snapshot->info.srtt_ms, 1)
            : "-",
        std::to_string(chunk.retransmissions),
        core::fmt(chunk.player->rebuffer_ms, 0),
        core::fmt(drop_pct, 1),
    });
  }
  table.print();

  std::printf(
      "\nQoE: avg bitrate %.0f kbps, rebuffer rate %.2f%%, "
      "session retx rate %.3f%%\n",
      session.avg_bitrate_kbps(), session.rebuffer_rate_percent(),
      100.0 * session.retx_rate());
  return 0;
}
