// CDN cache study: drive a single ATS-like edge server with a Zipf chunk
// workload and compare eviction policies and RAM sizes — the experiment
// behind the paper's §4.1-1 take-away ("the default LRU cache eviction
// policy in ATS could be changed to better suited policies for
// popular-heavy workloads such as GD-size or perfect-LFU").
//
// Usage: ./build/examples/cdn_cache_study [requests]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "cdn/ats_server.h"
#include "core/report.h"
#include "sim/zipf.h"
#include "workload/catalog.h"

using namespace vstream;

namespace {

struct StudyResult {
  double ram_hit = 0.0;
  double disk_hit = 0.0;
  double miss = 0.0;
  double median_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
};

StudyResult drive(cdn::PolicyKind policy, std::uint64_t ram_bytes,
                  std::size_t requests) {
  cdn::AtsConfig config;
  config.policy = policy;
  config.ram_bytes = ram_bytes;
  config.disk_bytes = 24ull << 30;

  cdn::AtsServer server(config, cdn::BackendConfig{});
  sim::Rng rng(7);

  workload::CatalogConfig catalog_config;
  catalog_config.video_count = 2'000;
  const workload::VideoCatalog catalog(catalog_config, rng);

  std::vector<double> latencies;
  latencies.reserve(requests);
  double now_ms = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    now_ms += rng.exponential(12.0);  // ~80 requests/s
    const std::uint32_t video = catalog.sample_video(rng);
    const workload::VideoMeta& meta = catalog.video(video);
    const std::uint32_t chunk =
        static_cast<std::uint32_t>(rng.uniform_int(0, meta.chunk_count - 1));
    const std::uint32_t bitrate = 1'500;
    const cdn::ServeResult r = server.serve(
        cdn::ChunkKey{video, chunk, bitrate},
        cdn::chunk_bytes(bitrate, catalog.chunk_duration_s()), now_ms, rng);
    latencies.push_back(r.total_ms());
  }

  StudyResult result;
  const double n = static_cast<double>(server.requests_served());
  result.ram_hit = server.ram_hits() / n;
  result.disk_hit = server.disk_hits() / n;
  result.miss = server.misses() / n;
  const analysis::SummaryStats stats = analysis::summarize(std::move(latencies));
  result.median_latency_ms = stats.median;
  result.p95_latency_ms = stats.p95;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t requests =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 150'000;

  core::print_header("Cache policy comparison (one edge server)");
  core::Table table({"policy", "ram GiB", "ram-hit", "disk-hit", "miss",
                     "median ms", "p95 ms"});
  for (const cdn::PolicyKind policy :
       {cdn::PolicyKind::kLru, cdn::PolicyKind::kPerfectLfu,
        cdn::PolicyKind::kGdSize}) {
    for (const std::uint64_t ram : {1ull << 30, 4ull << 30}) {
      const StudyResult r = drive(policy, ram, requests);
      table.add_row({cdn::to_string(policy),
                     core::fmt(static_cast<double>(ram) / (1ull << 30), 0),
                     core::fmt(100.0 * r.ram_hit, 1) + "%",
                     core::fmt(100.0 * r.disk_hit, 1) + "%",
                     core::fmt(100.0 * r.miss, 1) + "%",
                     core::fmt(r.median_latency_ms, 2),
                     core::fmt(r.p95_latency_ms, 2)});
    }
  }
  table.print();
  core::print_paper_reference(
      "§4.1-1: LRU could be replaced by GD-size or perfect-LFU for "
      "popularity-heavy workloads; hit median ~2 ms, miss median ~80 ms");
  return 0;
}
