// ABR comparison: run the same workload under each adaptation algorithm
// and compare the QoE metrics the paper identifies as the ones that matter
// (§4: startup delay, re-buffering ratio, average bitrate, rendering
// quality).

#include <cstdio>

#include "core/report.h"
#include "engine/engine.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"

using namespace vstream;

namespace {

struct QoeSummary {
  double startup_ms = 0.0;
  double rebuffer_pct = 0.0;
  double avg_bitrate_kbps = 0.0;
  double dropped_pct = 0.0;
};

QoeSummary evaluate(client::AbrKind abr) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 400;
  scenario.abr = abr;

  const engine::AnalyzedRun analyzed = engine::run_and_analyze(scenario);
  const telemetry::JoinedDataset& joined = analyzed.joined;

  QoeSummary summary;
  double startup_sum = 0.0, rebuf_sum = 0.0, bitrate_sum = 0.0;
  double frames = 0.0, dropped = 0.0;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    startup_sum += s.player->startup_ms;
    rebuf_sum += s.rebuffer_rate_percent();
    bitrate_sum += s.avg_bitrate_kbps();
    for (const telemetry::JoinedChunk& c : s.chunks) {
      frames += c.player->total_frames;
      dropped += c.player->dropped_frames;
    }
  }
  const double n = static_cast<double>(joined.sessions().size());
  summary.startup_ms = startup_sum / n;
  summary.rebuffer_pct = rebuf_sum / n;
  summary.avg_bitrate_kbps = bitrate_sum / n;
  summary.dropped_pct = frames == 0.0 ? 0.0 : 100.0 * dropped / frames;
  return summary;
}

}  // namespace

int main() {
  core::print_header("ABR algorithm comparison (same workload, same seed)");
  core::Table table({"ABR", "startup ms", "rebuffer %", "avg kbps", "drop %"});
  for (const client::AbrKind abr :
       {client::AbrKind::kFixed, client::AbrKind::kRateBased,
        client::AbrKind::kBufferBased, client::AbrKind::kHybrid,
        client::AbrKind::kMpc}) {
    const QoeSummary q = evaluate(abr);
    table.add_row({client::to_string(abr), core::fmt(q.startup_ms, 0),
                   core::fmt(q.rebuffer_pct, 2),
                   core::fmt(q.avg_bitrate_kbps, 0),
                   core::fmt(q.dropped_pct, 2)});
  }
  table.print();
  std::printf(
      "\nNote: the paper treats the production ABR as given and shows where "
      "adaptation alone cannot fix problems (persistent network/CDN/client "
      "issues); this example shows the trade-off space the algorithms span.\n");
  return 0;
}
