// Diagnosis walkthrough: localize a performance problem the way the paper
// does (§4.3) — with two-sided per-chunk instrumentation rather than
// client-side guessing.
//
// The script streams a session whose download stack buffers one chunk
// (the Fig. 17 case study), then runs:
//   * the Eq. 4 transient detector (D_FB and TP_inst spike while SRTT,
//     server latency and CWND stay normal), and
//   * the Eq. 5 RTO-based lower bound on persistent stack latency,
// and prints where the blame lands.

#include <cstdio>

#include "analysis/detectors.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "telemetry/join.h"

using namespace vstream;

int main() {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 0;

  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();

  // A download stack that reliably buffers chunks now and then — an
  // exaggerated version of the paper's 0.32%-of-chunks behaviour so the
  // walkthrough always has something to find.
  client::DownloadStackProfile stack;
  stack.anomaly_probability = 0.12;
  stack.anomaly_hold_median_ms = 1'800.0;

  core::SessionOverrides overrides;
  overrides.chunk_count = 16;
  overrides.ds_profile = stack;
  overrides.abr = client::AbrKind::kFixed;
  overrides.fixed_bitrate_kbps = 2'500;
  pipeline.run_session(overrides);

  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  const telemetry::JoinedSession& session = joined.sessions().front();

  core::print_header("Per-chunk evidence (player + CDN + tcp_info)");
  core::Table table({"chunk", "D_FB ms", "D_LB ms", "TP_inst kbps",
                     "conn TP kbps", "SRTT ms", "server ms", "DS bound ms"});
  for (const telemetry::JoinedChunk& chunk : session.chunks) {
    const double tp_inst = analysis::instantaneous_throughput_kbps(
        chunk.cdn->chunk_bytes, chunk.player->dlb_ms);
    const double tp_conn =
        chunk.last_snapshot != nullptr
            ? chunk.last_snapshot->info.throughput_estimate_kbps()
            : 0.0;
    table.add_row({std::to_string(chunk.player->chunk_id),
                   core::fmt(chunk.player->dfb_ms, 0),
                   core::fmt(chunk.player->dlb_ms, 0),
                   core::fmt(tp_inst, 0), core::fmt(tp_conn, 0),
                   chunk.last_snapshot != nullptr
                       ? core::fmt(chunk.last_snapshot->info.srtt_ms, 1)
                       : "-",
                   core::fmt(chunk.cdn->server_total_ms(), 2),
                   core::fmt(analysis::dds_lower_bound_ms(chunk), 0)});
  }
  table.print();

  core::print_header("Eq. 4 transient download-stack screen");
  const analysis::DsOutlierResult verdict =
      analysis::detect_ds_outliers(session);
  if (verdict.flagged_count == 0) {
    std::printf("no stack-buffered chunks detected\n");
  }
  for (std::size_t i = 0; i < verdict.flagged.size(); ++i) {
    if (!verdict.flagged[i]) continue;
    std::printf(
        "chunk %zu: D_FB and instantaneous throughput are outliers while "
        "SRTT/server/CWND are normal -> the client download stack buffered "
        "this chunk (do NOT re-route this client, §4.3 take-away)\n",
        i);
  }

  // Cross-check against simulator ground truth — the validation the paper
  // could not run in production.
  const auto& truth = pipeline.ground_truth().ds_anomalies;
  std::size_t injected = 0;
  for (const auto& [sid, chunks] : truth) injected += chunks.size();
  std::printf("\nground truth: %zu chunk(s) were really stack-buffered; "
              "detector flagged %zu\n",
              injected, verdict.flagged_count);
  return 0;
}
