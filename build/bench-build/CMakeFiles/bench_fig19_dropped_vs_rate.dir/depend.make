# Empty dependencies file for bench_fig19_dropped_vs_rate.
# This may be replaced when dependencies are built.
