file(REMOVE_RECURSE
  "../bench/bench_fig19_dropped_vs_rate"
  "../bench/bench_fig19_dropped_vs_rate.pdb"
  "CMakeFiles/bench_fig19_dropped_vs_rate.dir/bench_fig19_dropped_vs_rate.cpp.o"
  "CMakeFiles/bench_fig19_dropped_vs_rate.dir/bench_fig19_dropped_vs_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_dropped_vs_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
