# Empty compiler generated dependencies file for bench_fig05_cdn_breakdown.
# This may be replaced when dependencies are built.
