file(REMOVE_RECURSE
  "libvstream_bench_common.a"
)
