# Empty compiler generated dependencies file for vstream_bench_common.
# This may be replaced when dependencies are built.
