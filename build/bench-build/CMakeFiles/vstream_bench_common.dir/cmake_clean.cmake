file(REMOVE_RECURSE
  "CMakeFiles/vstream_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/vstream_bench_common.dir/bench_common.cc.o.d"
  "libvstream_bench_common.a"
  "libvstream_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
