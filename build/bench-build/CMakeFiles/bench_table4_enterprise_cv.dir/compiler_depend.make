# Empty compiler generated dependencies file for bench_table4_enterprise_cv.
# This may be replaced when dependencies are built.
