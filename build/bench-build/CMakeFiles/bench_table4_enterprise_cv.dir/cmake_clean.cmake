file(REMOVE_RECURSE
  "../bench/bench_table4_enterprise_cv"
  "../bench/bench_table4_enterprise_cv.pdb"
  "CMakeFiles/bench_table4_enterprise_cv.dir/bench_table4_enterprise_cv.cpp.o"
  "CMakeFiles/bench_table4_enterprise_cv.dir/bench_table4_enterprise_cv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_enterprise_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
