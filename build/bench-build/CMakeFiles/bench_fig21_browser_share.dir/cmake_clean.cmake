file(REMOVE_RECURSE
  "../bench/bench_fig21_browser_share"
  "../bench/bench_fig21_browser_share.pdb"
  "CMakeFiles/bench_fig21_browser_share.dir/bench_fig21_browser_share.cpp.o"
  "CMakeFiles/bench_fig21_browser_share.dir/bench_fig21_browser_share.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig21_browser_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
