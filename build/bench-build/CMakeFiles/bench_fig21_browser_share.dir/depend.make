# Empty dependencies file for bench_fig21_browser_share.
# This may be replaced when dependencies are built.
