file(REMOVE_RECURSE
  "../bench/bench_fig18_first_chunk"
  "../bench/bench_fig18_first_chunk.pdb"
  "CMakeFiles/bench_fig18_first_chunk.dir/bench_fig18_first_chunk.cpp.o"
  "CMakeFiles/bench_fig18_first_chunk.dir/bench_fig18_first_chunk.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_first_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
