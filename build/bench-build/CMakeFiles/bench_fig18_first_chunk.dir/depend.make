# Empty dependencies file for bench_fig18_first_chunk.
# This may be replaced when dependencies are built.
