file(REMOVE_RECURSE
  "../bench/bench_fig10_path_cv"
  "../bench/bench_fig10_path_cv.pdb"
  "CMakeFiles/bench_fig10_path_cv.dir/bench_fig10_path_cv.cpp.o"
  "CMakeFiles/bench_fig10_path_cv.dir/bench_fig10_path_cv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_path_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
