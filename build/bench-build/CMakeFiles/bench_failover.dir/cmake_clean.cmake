file(REMOVE_RECURSE
  "../bench/bench_failover"
  "../bench/bench_failover.pdb"
  "CMakeFiles/bench_failover.dir/bench_failover.cpp.o"
  "CMakeFiles/bench_failover.dir/bench_failover.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
