# Empty dependencies file for bench_persistence_cdn.
# This may be replaced when dependencies are built.
