file(REMOVE_RECURSE
  "../bench/bench_persistence_cdn"
  "../bench/bench_persistence_cdn.pdb"
  "CMakeFiles/bench_persistence_cdn.dir/bench_persistence_cdn.cpp.o"
  "CMakeFiles/bench_persistence_cdn.dir/bench_persistence_cdn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_persistence_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
