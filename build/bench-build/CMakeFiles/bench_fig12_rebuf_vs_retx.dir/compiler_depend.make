# Empty compiler generated dependencies file for bench_fig12_rebuf_vs_retx.
# This may be replaced when dependencies are built.
