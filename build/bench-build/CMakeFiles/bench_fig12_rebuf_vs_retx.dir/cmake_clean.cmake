file(REMOVE_RECURSE
  "../bench/bench_fig12_rebuf_vs_retx"
  "../bench/bench_fig12_rebuf_vs_retx.pdb"
  "CMakeFiles/bench_fig12_rebuf_vs_retx.dir/bench_fig12_rebuf_vs_retx.cpp.o"
  "CMakeFiles/bench_fig12_rebuf_vs_retx.dir/bench_fig12_rebuf_vs_retx.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_rebuf_vs_retx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
