file(REMOVE_RECURSE
  "../bench/bench_fig11_loss_vs_qoe"
  "../bench/bench_fig11_loss_vs_qoe.pdb"
  "CMakeFiles/bench_fig11_loss_vs_qoe.dir/bench_fig11_loss_vs_qoe.cpp.o"
  "CMakeFiles/bench_fig11_loss_vs_qoe.dir/bench_fig11_loss_vs_qoe.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_loss_vs_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
