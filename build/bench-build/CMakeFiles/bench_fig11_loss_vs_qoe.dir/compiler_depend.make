# Empty compiler generated dependencies file for bench_fig11_loss_vs_qoe.
# This may be replaced when dependencies are built.
