# Empty compiler generated dependencies file for bench_fig17_ds_case_study.
# This may be replaced when dependencies are built.
