# Empty compiler generated dependencies file for bench_fig08_latency_cdfs.
# This may be replaced when dependencies are built.
