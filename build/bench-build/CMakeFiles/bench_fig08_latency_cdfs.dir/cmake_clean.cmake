file(REMOVE_RECURSE
  "../bench/bench_fig08_latency_cdfs"
  "../bench/bench_fig08_latency_cdfs.pdb"
  "CMakeFiles/bench_fig08_latency_cdfs.dir/bench_fig08_latency_cdfs.cpp.o"
  "CMakeFiles/bench_fig08_latency_cdfs.dir/bench_fig08_latency_cdfs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_latency_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
