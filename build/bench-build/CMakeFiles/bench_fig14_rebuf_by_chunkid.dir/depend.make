# Empty dependencies file for bench_fig14_rebuf_by_chunkid.
# This may be replaced when dependencies are built.
