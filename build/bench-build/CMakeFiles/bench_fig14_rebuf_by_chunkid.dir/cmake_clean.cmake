file(REMOVE_RECURSE
  "../bench/bench_fig14_rebuf_by_chunkid"
  "../bench/bench_fig14_rebuf_by_chunkid.pdb"
  "CMakeFiles/bench_fig14_rebuf_by_chunkid.dir/bench_fig14_rebuf_by_chunkid.cpp.o"
  "CMakeFiles/bench_fig14_rebuf_by_chunkid.dir/bench_fig14_rebuf_by_chunkid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_rebuf_by_chunkid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
