
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14_rebuf_by_chunkid.cpp" "bench-build/CMakeFiles/bench_fig14_rebuf_by_chunkid.dir/bench_fig14_rebuf_by_chunkid.cpp.o" "gcc" "bench-build/CMakeFiles/bench_fig14_rebuf_by_chunkid.dir/bench_fig14_rebuf_by_chunkid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/vstream_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vstream_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/vstream_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/vstream_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vstream_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/vstream_client.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/vstream_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vstream_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
