file(REMOVE_RECURSE
  "../bench/bench_fig06_popularity"
  "../bench/bench_fig06_popularity.pdb"
  "CMakeFiles/bench_fig06_popularity.dir/bench_fig06_popularity.cpp.o"
  "CMakeFiles/bench_fig06_popularity.dir/bench_fig06_popularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
