file(REMOVE_RECURSE
  "../bench/bench_fig07_startup_vs_srtt"
  "../bench/bench_fig07_startup_vs_srtt.pdb"
  "CMakeFiles/bench_fig07_startup_vs_srtt.dir/bench_fig07_startup_vs_srtt.cpp.o"
  "CMakeFiles/bench_fig07_startup_vs_srtt.dir/bench_fig07_startup_vs_srtt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_startup_vs_srtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
