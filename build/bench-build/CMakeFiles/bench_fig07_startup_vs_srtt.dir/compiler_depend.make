# Empty compiler generated dependencies file for bench_fig07_startup_vs_srtt.
# This may be replaced when dependencies are built.
