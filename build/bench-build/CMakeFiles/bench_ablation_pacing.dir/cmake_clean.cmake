file(REMOVE_RECURSE
  "../bench/bench_ablation_pacing"
  "../bench/bench_ablation_pacing.pdb"
  "CMakeFiles/bench_ablation_pacing.dir/bench_ablation_pacing.cpp.o"
  "CMakeFiles/bench_ablation_pacing.dir/bench_ablation_pacing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
