# Empty compiler generated dependencies file for bench_ablation_pacing.
# This may be replaced when dependencies are built.
