# Empty compiler generated dependencies file for bench_engagement.
# This may be replaced when dependencies are built.
