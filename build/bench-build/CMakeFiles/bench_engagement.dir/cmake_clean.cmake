file(REMOVE_RECURSE
  "../bench/bench_engagement"
  "../bench/bench_engagement.pdb"
  "CMakeFiles/bench_engagement.dir/bench_engagement.cpp.o"
  "CMakeFiles/bench_engagement.dir/bench_engagement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engagement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
