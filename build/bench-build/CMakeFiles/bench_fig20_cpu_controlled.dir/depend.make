# Empty dependencies file for bench_fig20_cpu_controlled.
# This may be replaced when dependencies are built.
