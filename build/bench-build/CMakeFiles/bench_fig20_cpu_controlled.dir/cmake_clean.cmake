file(REMOVE_RECURSE
  "../bench/bench_fig20_cpu_controlled"
  "../bench/bench_fig20_cpu_controlled.pdb"
  "CMakeFiles/bench_fig20_cpu_controlled.dir/bench_fig20_cpu_controlled.cpp.o"
  "CMakeFiles/bench_fig20_cpu_controlled.dir/bench_fig20_cpu_controlled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_cpu_controlled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
