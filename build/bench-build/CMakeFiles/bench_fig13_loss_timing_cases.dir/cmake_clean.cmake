file(REMOVE_RECURSE
  "../bench/bench_fig13_loss_timing_cases"
  "../bench/bench_fig13_loss_timing_cases.pdb"
  "CMakeFiles/bench_fig13_loss_timing_cases.dir/bench_fig13_loss_timing_cases.cpp.o"
  "CMakeFiles/bench_fig13_loss_timing_cases.dir/bench_fig13_loss_timing_cases.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_loss_timing_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
