# Empty compiler generated dependencies file for bench_fig13_loss_timing_cases.
# This may be replaced when dependencies are built.
