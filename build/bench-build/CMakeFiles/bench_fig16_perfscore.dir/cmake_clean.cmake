file(REMOVE_RECURSE
  "../bench/bench_fig16_perfscore"
  "../bench/bench_fig16_perfscore.pdb"
  "CMakeFiles/bench_fig16_perfscore.dir/bench_fig16_perfscore.cpp.o"
  "CMakeFiles/bench_fig16_perfscore.dir/bench_fig16_perfscore.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_perfscore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
