file(REMOVE_RECURSE
  "../bench/bench_ablation_congestion"
  "../bench/bench_ablation_congestion.pdb"
  "CMakeFiles/bench_ablation_congestion.dir/bench_ablation_congestion.cpp.o"
  "CMakeFiles/bench_ablation_congestion.dir/bench_ablation_congestion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
