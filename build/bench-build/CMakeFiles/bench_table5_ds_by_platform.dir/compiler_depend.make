# Empty compiler generated dependencies file for bench_table5_ds_by_platform.
# This may be replaced when dependencies are built.
