file(REMOVE_RECURSE
  "../bench/bench_table5_ds_by_platform"
  "../bench/bench_table5_ds_by_platform.pdb"
  "CMakeFiles/bench_table5_ds_by_platform.dir/bench_table5_ds_by_platform.cpp.o"
  "CMakeFiles/bench_table5_ds_by_platform.dir/bench_table5_ds_by_platform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_ds_by_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
