file(REMOVE_RECURSE
  "../bench/bench_fig03_dataset"
  "../bench/bench_fig03_dataset.pdb"
  "CMakeFiles/bench_fig03_dataset.dir/bench_fig03_dataset.cpp.o"
  "CMakeFiles/bench_fig03_dataset.dir/bench_fig03_dataset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
