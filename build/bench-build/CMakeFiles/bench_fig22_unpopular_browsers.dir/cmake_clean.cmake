file(REMOVE_RECURSE
  "../bench/bench_fig22_unpopular_browsers"
  "../bench/bench_fig22_unpopular_browsers.pdb"
  "CMakeFiles/bench_fig22_unpopular_browsers.dir/bench_fig22_unpopular_browsers.cpp.o"
  "CMakeFiles/bench_fig22_unpopular_browsers.dir/bench_fig22_unpopular_browsers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_unpopular_browsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
