# Empty compiler generated dependencies file for bench_fig22_unpopular_browsers.
# This may be replaced when dependencies are built.
