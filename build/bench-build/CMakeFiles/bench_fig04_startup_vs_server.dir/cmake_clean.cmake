file(REMOVE_RECURSE
  "../bench/bench_fig04_startup_vs_server"
  "../bench/bench_fig04_startup_vs_server.pdb"
  "CMakeFiles/bench_fig04_startup_vs_server.dir/bench_fig04_startup_vs_server.cpp.o"
  "CMakeFiles/bench_fig04_startup_vs_server.dir/bench_fig04_startup_vs_server.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_startup_vs_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
