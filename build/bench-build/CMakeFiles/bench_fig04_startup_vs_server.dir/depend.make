# Empty dependencies file for bench_fig04_startup_vs_server.
# This may be replaced when dependencies are built.
