# Empty compiler generated dependencies file for bench_ds_detector.
# This may be replaced when dependencies are built.
