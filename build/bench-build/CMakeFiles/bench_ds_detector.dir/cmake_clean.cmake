file(REMOVE_RECURSE
  "../bench/bench_ds_detector"
  "../bench/bench_ds_detector.pdb"
  "CMakeFiles/bench_ds_detector.dir/bench_ds_detector.cpp.o"
  "CMakeFiles/bench_ds_detector.dir/bench_ds_detector.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ds_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
