# Empty compiler generated dependencies file for bench_fig15_retx_by_chunkid.
# This may be replaced when dependencies are built.
