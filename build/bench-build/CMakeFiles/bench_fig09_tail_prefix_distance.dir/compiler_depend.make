# Empty compiler generated dependencies file for bench_fig09_tail_prefix_distance.
# This may be replaced when dependencies are built.
