file(REMOVE_RECURSE
  "../bench/bench_fig09_tail_prefix_distance"
  "../bench/bench_fig09_tail_prefix_distance.pdb"
  "CMakeFiles/bench_fig09_tail_prefix_distance.dir/bench_fig09_tail_prefix_distance.cpp.o"
  "CMakeFiles/bench_fig09_tail_prefix_distance.dir/bench_fig09_tail_prefix_distance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_tail_prefix_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
