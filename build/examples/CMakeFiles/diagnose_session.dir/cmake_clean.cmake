file(REMOVE_RECURSE
  "CMakeFiles/diagnose_session.dir/diagnose_session.cpp.o"
  "CMakeFiles/diagnose_session.dir/diagnose_session.cpp.o.d"
  "diagnose_session"
  "diagnose_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
