# Empty compiler generated dependencies file for diagnose_session.
# This may be replaced when dependencies are built.
