# Empty dependencies file for cdn_cache_study.
# This may be replaced when dependencies are built.
