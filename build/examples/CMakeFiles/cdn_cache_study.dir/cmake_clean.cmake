file(REMOVE_RECURSE
  "CMakeFiles/cdn_cache_study.dir/cdn_cache_study.cpp.o"
  "CMakeFiles/cdn_cache_study.dir/cdn_cache_study.cpp.o.d"
  "cdn_cache_study"
  "cdn_cache_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_cache_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
