file(REMOVE_RECURSE
  "CMakeFiles/abr_comparison.dir/abr_comparison.cpp.o"
  "CMakeFiles/abr_comparison.dir/abr_comparison.cpp.o.d"
  "abr_comparison"
  "abr_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abr_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
