# Empty dependencies file for pop_planning.
# This may be replaced when dependencies are built.
