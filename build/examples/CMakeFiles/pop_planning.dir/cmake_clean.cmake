file(REMOVE_RECURSE
  "CMakeFiles/pop_planning.dir/pop_planning.cpp.o"
  "CMakeFiles/pop_planning.dir/pop_planning.cpp.o.d"
  "pop_planning"
  "pop_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
