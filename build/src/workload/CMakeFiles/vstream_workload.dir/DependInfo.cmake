
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/catalog.cc" "src/workload/CMakeFiles/vstream_workload.dir/catalog.cc.o" "gcc" "src/workload/CMakeFiles/vstream_workload.dir/catalog.cc.o.d"
  "/root/repo/src/workload/population.cc" "src/workload/CMakeFiles/vstream_workload.dir/population.cc.o" "gcc" "src/workload/CMakeFiles/vstream_workload.dir/population.cc.o.d"
  "/root/repo/src/workload/scenario.cc" "src/workload/CMakeFiles/vstream_workload.dir/scenario.cc.o" "gcc" "src/workload/CMakeFiles/vstream_workload.dir/scenario.cc.o.d"
  "/root/repo/src/workload/session_generator.cc" "src/workload/CMakeFiles/vstream_workload.dir/session_generator.cc.o" "gcc" "src/workload/CMakeFiles/vstream_workload.dir/session_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vstream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/vstream_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/vstream_client.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
