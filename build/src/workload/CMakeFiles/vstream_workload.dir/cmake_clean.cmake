file(REMOVE_RECURSE
  "CMakeFiles/vstream_workload.dir/catalog.cc.o"
  "CMakeFiles/vstream_workload.dir/catalog.cc.o.d"
  "CMakeFiles/vstream_workload.dir/population.cc.o"
  "CMakeFiles/vstream_workload.dir/population.cc.o.d"
  "CMakeFiles/vstream_workload.dir/scenario.cc.o"
  "CMakeFiles/vstream_workload.dir/scenario.cc.o.d"
  "CMakeFiles/vstream_workload.dir/session_generator.cc.o"
  "CMakeFiles/vstream_workload.dir/session_generator.cc.o.d"
  "libvstream_workload.a"
  "libvstream_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
