# Empty compiler generated dependencies file for vstream_workload.
# This may be replaced when dependencies are built.
