file(REMOVE_RECURSE
  "libvstream_workload.a"
)
