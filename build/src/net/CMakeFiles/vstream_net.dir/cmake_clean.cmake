file(REMOVE_RECURSE
  "CMakeFiles/vstream_net.dir/geo.cc.o"
  "CMakeFiles/vstream_net.dir/geo.cc.o.d"
  "CMakeFiles/vstream_net.dir/packet_sim.cc.o"
  "CMakeFiles/vstream_net.dir/packet_sim.cc.o.d"
  "CMakeFiles/vstream_net.dir/path_model.cc.o"
  "CMakeFiles/vstream_net.dir/path_model.cc.o.d"
  "CMakeFiles/vstream_net.dir/prefix.cc.o"
  "CMakeFiles/vstream_net.dir/prefix.cc.o.d"
  "CMakeFiles/vstream_net.dir/tcp_model.cc.o"
  "CMakeFiles/vstream_net.dir/tcp_model.cc.o.d"
  "libvstream_net.a"
  "libvstream_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
