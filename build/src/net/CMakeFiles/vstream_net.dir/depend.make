# Empty dependencies file for vstream_net.
# This may be replaced when dependencies are built.
