file(REMOVE_RECURSE
  "libvstream_net.a"
)
