
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/geo.cc" "src/net/CMakeFiles/vstream_net.dir/geo.cc.o" "gcc" "src/net/CMakeFiles/vstream_net.dir/geo.cc.o.d"
  "/root/repo/src/net/packet_sim.cc" "src/net/CMakeFiles/vstream_net.dir/packet_sim.cc.o" "gcc" "src/net/CMakeFiles/vstream_net.dir/packet_sim.cc.o.d"
  "/root/repo/src/net/path_model.cc" "src/net/CMakeFiles/vstream_net.dir/path_model.cc.o" "gcc" "src/net/CMakeFiles/vstream_net.dir/path_model.cc.o.d"
  "/root/repo/src/net/prefix.cc" "src/net/CMakeFiles/vstream_net.dir/prefix.cc.o" "gcc" "src/net/CMakeFiles/vstream_net.dir/prefix.cc.o.d"
  "/root/repo/src/net/tcp_model.cc" "src/net/CMakeFiles/vstream_net.dir/tcp_model.cc.o" "gcc" "src/net/CMakeFiles/vstream_net.dir/tcp_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vstream_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
