# Empty dependencies file for vstream_client.
# This may be replaced when dependencies are built.
