file(REMOVE_RECURSE
  "libvstream_client.a"
)
