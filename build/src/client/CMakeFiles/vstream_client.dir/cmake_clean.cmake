file(REMOVE_RECURSE
  "CMakeFiles/vstream_client.dir/abr.cc.o"
  "CMakeFiles/vstream_client.dir/abr.cc.o.d"
  "CMakeFiles/vstream_client.dir/download_stack.cc.o"
  "CMakeFiles/vstream_client.dir/download_stack.cc.o.d"
  "CMakeFiles/vstream_client.dir/playback_buffer.cc.o"
  "CMakeFiles/vstream_client.dir/playback_buffer.cc.o.d"
  "CMakeFiles/vstream_client.dir/rendering.cc.o"
  "CMakeFiles/vstream_client.dir/rendering.cc.o.d"
  "CMakeFiles/vstream_client.dir/user_agent.cc.o"
  "CMakeFiles/vstream_client.dir/user_agent.cc.o.d"
  "libvstream_client.a"
  "libvstream_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
