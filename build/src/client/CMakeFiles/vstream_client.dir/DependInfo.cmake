
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/abr.cc" "src/client/CMakeFiles/vstream_client.dir/abr.cc.o" "gcc" "src/client/CMakeFiles/vstream_client.dir/abr.cc.o.d"
  "/root/repo/src/client/download_stack.cc" "src/client/CMakeFiles/vstream_client.dir/download_stack.cc.o" "gcc" "src/client/CMakeFiles/vstream_client.dir/download_stack.cc.o.d"
  "/root/repo/src/client/playback_buffer.cc" "src/client/CMakeFiles/vstream_client.dir/playback_buffer.cc.o" "gcc" "src/client/CMakeFiles/vstream_client.dir/playback_buffer.cc.o.d"
  "/root/repo/src/client/rendering.cc" "src/client/CMakeFiles/vstream_client.dir/rendering.cc.o" "gcc" "src/client/CMakeFiles/vstream_client.dir/rendering.cc.o.d"
  "/root/repo/src/client/user_agent.cc" "src/client/CMakeFiles/vstream_client.dir/user_agent.cc.o" "gcc" "src/client/CMakeFiles/vstream_client.dir/user_agent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vstream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vstream_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
