file(REMOVE_RECURSE
  "libvstream_telemetry.a"
)
