file(REMOVE_RECURSE
  "CMakeFiles/vstream_telemetry.dir/collector.cc.o"
  "CMakeFiles/vstream_telemetry.dir/collector.cc.o.d"
  "CMakeFiles/vstream_telemetry.dir/export.cc.o"
  "CMakeFiles/vstream_telemetry.dir/export.cc.o.d"
  "CMakeFiles/vstream_telemetry.dir/join.cc.o"
  "CMakeFiles/vstream_telemetry.dir/join.cc.o.d"
  "CMakeFiles/vstream_telemetry.dir/proxy_filter.cc.o"
  "CMakeFiles/vstream_telemetry.dir/proxy_filter.cc.o.d"
  "libvstream_telemetry.a"
  "libvstream_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
