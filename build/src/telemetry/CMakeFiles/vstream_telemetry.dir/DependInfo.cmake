
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/collector.cc" "src/telemetry/CMakeFiles/vstream_telemetry.dir/collector.cc.o" "gcc" "src/telemetry/CMakeFiles/vstream_telemetry.dir/collector.cc.o.d"
  "/root/repo/src/telemetry/export.cc" "src/telemetry/CMakeFiles/vstream_telemetry.dir/export.cc.o" "gcc" "src/telemetry/CMakeFiles/vstream_telemetry.dir/export.cc.o.d"
  "/root/repo/src/telemetry/join.cc" "src/telemetry/CMakeFiles/vstream_telemetry.dir/join.cc.o" "gcc" "src/telemetry/CMakeFiles/vstream_telemetry.dir/join.cc.o.d"
  "/root/repo/src/telemetry/proxy_filter.cc" "src/telemetry/CMakeFiles/vstream_telemetry.dir/proxy_filter.cc.o" "gcc" "src/telemetry/CMakeFiles/vstream_telemetry.dir/proxy_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vstream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/vstream_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/vstream_client.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
