# Empty dependencies file for vstream_telemetry.
# This may be replaced when dependencies are built.
