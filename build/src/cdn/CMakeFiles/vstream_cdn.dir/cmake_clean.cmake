file(REMOVE_RECURSE
  "CMakeFiles/vstream_cdn.dir/ats_server.cc.o"
  "CMakeFiles/vstream_cdn.dir/ats_server.cc.o.d"
  "CMakeFiles/vstream_cdn.dir/backend.cc.o"
  "CMakeFiles/vstream_cdn.dir/backend.cc.o.d"
  "CMakeFiles/vstream_cdn.dir/cache.cc.o"
  "CMakeFiles/vstream_cdn.dir/cache.cc.o.d"
  "CMakeFiles/vstream_cdn.dir/cache_policy.cc.o"
  "CMakeFiles/vstream_cdn.dir/cache_policy.cc.o.d"
  "CMakeFiles/vstream_cdn.dir/chunk.cc.o"
  "CMakeFiles/vstream_cdn.dir/chunk.cc.o.d"
  "CMakeFiles/vstream_cdn.dir/fleet.cc.o"
  "CMakeFiles/vstream_cdn.dir/fleet.cc.o.d"
  "libvstream_cdn.a"
  "libvstream_cdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
