file(REMOVE_RECURSE
  "libvstream_cdn.a"
)
