# Empty dependencies file for vstream_cdn.
# This may be replaced when dependencies are built.
