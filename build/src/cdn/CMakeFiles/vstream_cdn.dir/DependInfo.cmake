
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdn/ats_server.cc" "src/cdn/CMakeFiles/vstream_cdn.dir/ats_server.cc.o" "gcc" "src/cdn/CMakeFiles/vstream_cdn.dir/ats_server.cc.o.d"
  "/root/repo/src/cdn/backend.cc" "src/cdn/CMakeFiles/vstream_cdn.dir/backend.cc.o" "gcc" "src/cdn/CMakeFiles/vstream_cdn.dir/backend.cc.o.d"
  "/root/repo/src/cdn/cache.cc" "src/cdn/CMakeFiles/vstream_cdn.dir/cache.cc.o" "gcc" "src/cdn/CMakeFiles/vstream_cdn.dir/cache.cc.o.d"
  "/root/repo/src/cdn/cache_policy.cc" "src/cdn/CMakeFiles/vstream_cdn.dir/cache_policy.cc.o" "gcc" "src/cdn/CMakeFiles/vstream_cdn.dir/cache_policy.cc.o.d"
  "/root/repo/src/cdn/chunk.cc" "src/cdn/CMakeFiles/vstream_cdn.dir/chunk.cc.o" "gcc" "src/cdn/CMakeFiles/vstream_cdn.dir/chunk.cc.o.d"
  "/root/repo/src/cdn/fleet.cc" "src/cdn/CMakeFiles/vstream_cdn.dir/fleet.cc.o" "gcc" "src/cdn/CMakeFiles/vstream_cdn.dir/fleet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vstream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vstream_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
