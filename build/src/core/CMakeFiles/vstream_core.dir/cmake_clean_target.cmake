file(REMOVE_RECURSE
  "libvstream_core.a"
)
