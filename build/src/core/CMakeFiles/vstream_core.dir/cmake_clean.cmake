file(REMOVE_RECURSE
  "CMakeFiles/vstream_core.dir/pipeline.cc.o"
  "CMakeFiles/vstream_core.dir/pipeline.cc.o.d"
  "CMakeFiles/vstream_core.dir/report.cc.o"
  "CMakeFiles/vstream_core.dir/report.cc.o.d"
  "libvstream_core.a"
  "libvstream_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
