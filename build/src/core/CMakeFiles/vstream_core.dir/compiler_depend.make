# Empty compiler generated dependencies file for vstream_core.
# This may be replaced when dependencies are built.
