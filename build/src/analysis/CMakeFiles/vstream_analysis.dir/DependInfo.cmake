
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/aggregate.cc" "src/analysis/CMakeFiles/vstream_analysis.dir/aggregate.cc.o" "gcc" "src/analysis/CMakeFiles/vstream_analysis.dir/aggregate.cc.o.d"
  "/root/repo/src/analysis/detectors.cc" "src/analysis/CMakeFiles/vstream_analysis.dir/detectors.cc.o" "gcc" "src/analysis/CMakeFiles/vstream_analysis.dir/detectors.cc.o.d"
  "/root/repo/src/analysis/qoe.cc" "src/analysis/CMakeFiles/vstream_analysis.dir/qoe.cc.o" "gcc" "src/analysis/CMakeFiles/vstream_analysis.dir/qoe.cc.o.d"
  "/root/repo/src/analysis/stats.cc" "src/analysis/CMakeFiles/vstream_analysis.dir/stats.cc.o" "gcc" "src/analysis/CMakeFiles/vstream_analysis.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vstream_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vstream_net.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/vstream_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/vstream_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/vstream_client.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
