file(REMOVE_RECURSE
  "libvstream_analysis.a"
)
