# Empty compiler generated dependencies file for vstream_analysis.
# This may be replaced when dependencies are built.
