file(REMOVE_RECURSE
  "CMakeFiles/vstream_analysis.dir/aggregate.cc.o"
  "CMakeFiles/vstream_analysis.dir/aggregate.cc.o.d"
  "CMakeFiles/vstream_analysis.dir/detectors.cc.o"
  "CMakeFiles/vstream_analysis.dir/detectors.cc.o.d"
  "CMakeFiles/vstream_analysis.dir/qoe.cc.o"
  "CMakeFiles/vstream_analysis.dir/qoe.cc.o.d"
  "CMakeFiles/vstream_analysis.dir/stats.cc.o"
  "CMakeFiles/vstream_analysis.dir/stats.cc.o.d"
  "libvstream_analysis.a"
  "libvstream_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
