# Empty compiler generated dependencies file for vstream_sim.
# This may be replaced when dependencies are built.
