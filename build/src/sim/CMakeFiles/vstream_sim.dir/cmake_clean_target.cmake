file(REMOVE_RECURSE
  "libvstream_sim.a"
)
