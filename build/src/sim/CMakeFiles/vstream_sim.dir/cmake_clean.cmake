file(REMOVE_RECURSE
  "CMakeFiles/vstream_sim.dir/event_queue.cc.o"
  "CMakeFiles/vstream_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/vstream_sim.dir/rng.cc.o"
  "CMakeFiles/vstream_sim.dir/rng.cc.o.d"
  "CMakeFiles/vstream_sim.dir/zipf.cc.o"
  "CMakeFiles/vstream_sim.dir/zipf.cc.o.d"
  "libvstream_sim.a"
  "libvstream_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
