# Empty dependencies file for vstream-sim.
# This may be replaced when dependencies are built.
