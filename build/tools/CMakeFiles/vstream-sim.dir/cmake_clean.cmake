file(REMOVE_RECURSE
  "CMakeFiles/vstream-sim.dir/vstream_sim.cpp.o"
  "CMakeFiles/vstream-sim.dir/vstream_sim.cpp.o.d"
  "vstream-sim"
  "vstream-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream-sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
