file(REMOVE_RECURSE
  "CMakeFiles/vstream-analyze.dir/vstream_analyze.cpp.o"
  "CMakeFiles/vstream-analyze.dir/vstream_analyze.cpp.o.d"
  "vstream-analyze"
  "vstream-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstream-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
