# Empty dependencies file for vstream-analyze.
# This may be replaced when dependencies are built.
