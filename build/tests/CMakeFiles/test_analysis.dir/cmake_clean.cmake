file(REMOVE_RECURSE
  "CMakeFiles/test_analysis.dir/analysis/aggregate_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/aggregate_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/detectors_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/detectors_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/qoe_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/qoe_test.cc.o.d"
  "CMakeFiles/test_analysis.dir/analysis/stats_test.cc.o"
  "CMakeFiles/test_analysis.dir/analysis/stats_test.cc.o.d"
  "test_analysis"
  "test_analysis.pdb"
  "test_analysis[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
