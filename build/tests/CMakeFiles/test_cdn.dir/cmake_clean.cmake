file(REMOVE_RECURSE
  "CMakeFiles/test_cdn.dir/cdn/ats_server_test.cc.o"
  "CMakeFiles/test_cdn.dir/cdn/ats_server_test.cc.o.d"
  "CMakeFiles/test_cdn.dir/cdn/cache_model_test.cc.o"
  "CMakeFiles/test_cdn.dir/cdn/cache_model_test.cc.o.d"
  "CMakeFiles/test_cdn.dir/cdn/cache_policy_test.cc.o"
  "CMakeFiles/test_cdn.dir/cdn/cache_policy_test.cc.o.d"
  "CMakeFiles/test_cdn.dir/cdn/cache_test.cc.o"
  "CMakeFiles/test_cdn.dir/cdn/cache_test.cc.o.d"
  "CMakeFiles/test_cdn.dir/cdn/fleet_test.cc.o"
  "CMakeFiles/test_cdn.dir/cdn/fleet_test.cc.o.d"
  "CMakeFiles/test_cdn.dir/cdn/prefetch_test.cc.o"
  "CMakeFiles/test_cdn.dir/cdn/prefetch_test.cc.o.d"
  "test_cdn"
  "test_cdn.pdb"
  "test_cdn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
