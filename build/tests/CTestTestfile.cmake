# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_cdn[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_telemetry[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
add_test(tool_sim_smoke "/root/repo/build/tools/vstream-sim" "--sessions" "20" "--seed" "7")
set_tests_properties(tool_sim_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;65;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_roundtrip_smoke "sh" "-c" "/root/repo/build/tools/vstream-sim --sessions 20 --out /root/repo/build/tool_smoke_data    && /root/repo/build/tools/vstream-analyze /root/repo/build/tool_smoke_data")
set_tests_properties(tool_roundtrip_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;67;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_suite "/root/repo/build/tests/test_integration")
set_tests_properties(integration_suite PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;83;add_test;/root/repo/tests/CMakeLists.txt;0;")
