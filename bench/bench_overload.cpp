// Overload sweep: push the fleet past nominal capacity (flash crowd) and
// chart what the server-side protection layer — priority load shedding,
// circuit breakers, retry budgets and hedged fetches — preserves.  The
// paper measures the healthy regime ("latency is NOT correlated with load",
// §4.1); this bench measures the unhealthy one the protection exists for:
// goodput should plateau near the shed watermark instead of collapsing,
// first-chunk latency should stay bounded (first chunks are never shed),
// and the shed ratio should grow monotonically with the overload factor.
#include "bench_common.h"

#include "analysis/qoe.h"
#include "faults/fault_schedule.h"

using namespace vstream;

namespace {

struct Row {
  double offered = 0.0;         ///< arrivals incl. shed turn-aways
  double admitted = 0.0;        ///< requests actually served
  double shed_pct = 0.0;
  double startup_p95_ms = 0.0;
  double rebuffer_pct = 0.0;
  std::uint64_t hedges = 0;
  std::uint64_t swr = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t budget_denied = 0;
};

/// A fleet-wide flash crowd: every server runs at `factor` times nominal
/// capacity for the whole campaign (the isolated serve path sheds purely
/// off this fault-driven factor, so the epoch must cover the run).
faults::FaultSchedule flash_crowd(const workload::Scenario& scenario,
                                  double factor) {
  std::vector<faults::FaultEvent> events;
  for (std::uint32_t pop = 0; pop < scenario.fleet.pop_count; ++pop) {
    for (std::uint32_t server = 0; server < scenario.fleet.servers_per_pop;
         ++server) {
      events.push_back({faults::FaultKind::kOverload, 0.0,
                        sim::seconds(24.0 * 3'600.0), pop, server, factor});
    }
  }
  return faults::FaultSchedule::scripted(std::move(events));
}

Row run_point(std::size_t sessions, std::uint64_t seed, double factor) {
  workload::Scenario scenario = workload::paper_scenario();
  // A flash crowd is more clients: scale the population by the same factor
  // the epochs advertise, and compress interarrivals to keep the campaign
  // window fixed — so offered load per wall-clock second rises with the
  // factor and "goodput plateau" is visible in absolute admitted requests.
  scenario.session_count =
      static_cast<std::size_t>(static_cast<double>(sessions) * factor);
  scenario.seed = seed;
  scenario.sessions.mean_interarrival_ms /= factor;

  engine::RunOptions options;
  if (factor > 1.0) options.faults = flash_crowd(scenario, factor);
  const engine::AnalyzedRun analyzed =
      engine::run_and_analyze(scenario, std::move(options));

  Row row;
  for (const cdn::ServerStats& s : analyzed.run.server_stats) {
    row.admitted += static_cast<double>(s.requests_served);
    row.offered +=
        static_cast<double>(s.requests_served + s.shed_requests);
    row.hedges += s.hedged_fetches;
    row.swr += s.swr_serves;
    row.breaker_trips += s.breaker_open_transitions;
    row.budget_denied += s.retry_budget_exhausted;
  }
  if (row.offered > 0.0) {
    row.shed_pct = 100.0 * (row.offered - row.admitted) / row.offered;
  }
  const analysis::QoeAggregate qoe = analysis::aggregate_qoe(analyzed.joined);
  row.startup_p95_ms = qoe.startup_ms.p95;
  row.rebuffer_pct = qoe.rebuffer_rate_pct.mean;
  return row;
}

}  // namespace

int main() {
  const std::size_t sessions = bench::bench_session_count(800);
  const std::uint64_t seed = bench::bench_seed();
  core::print_header("Overload protection: flash-crowd sweep");

  const std::vector<double> factors = {1.0, 2.0, 4.0, 8.0};
  std::vector<Row> rows;
  core::Table out({"overload x", "offered req", "admitted req", "shed %",
                   "startup p95 ms", "rebuffer %", "hedges", "swr",
                   "breaker trips", "budget denials"});
  for (const double factor : factors) {
    const Row row = run_point(sessions, seed, factor);
    out.add_row({core::fmt(factor, 0), core::fmt(row.offered, 0),
                 core::fmt(row.admitted, 0), core::fmt(row.shed_pct, 1),
                 core::fmt(row.startup_p95_ms, 0),
                 core::fmt(row.rebuffer_pct, 2), std::to_string(row.hedges),
                 std::to_string(row.swr), std::to_string(row.breaker_trips),
                 std::to_string(row.budget_denied)});
    rows.push_back(row);
  }
  out.print();

  // Graceful-degradation checks the driver greps for: (1) past the
  // watermark the shed ratio grows monotonically with the overload factor;
  // (2) admitted work (goodput) keeps growing sublinearly instead of
  // collapsing below the baseline; (3) first-chunk p95 stays bounded — the
  // shed policy never touches first chunks, so startup cannot blow up with
  // the overload factor.
  bool shed_monotone = true;
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].shed_pct < rows[i - 1].shed_pct) shed_monotone = false;
  }
  double worst_startup_p95 = 0.0;
  for (const Row& row : rows) {
    worst_startup_p95 = std::max(worst_startup_p95, row.startup_p95_ms);
  }
  core::print_metric("shed_ratio_monotone", shed_monotone ? 1.0 : 0.0);
  core::print_metric("goodput_vs_baseline_at_8x",
                     rows.back().admitted / rows.front().admitted);
  core::print_metric("worst_startup_p95_ms", worst_startup_p95);
  core::print_metric("startup_p95_ratio_8x_vs_1x",
                     rows.back().startup_p95_ms / rows.front().startup_p95_ms);
  core::print_paper_reference(
      "§4.1: the paper only observes the well-provisioned regime; the sweep "
      "shows the protection layer holding startup latency (Fig. 4's QoE "
      "anchor) while shedding the excess past the watermark");
  return 0;
}
