// §4.3-1: population-level download-stack screening — how many chunks and
// sessions the Eq. 4 detector flags, scored against simulator ground truth
// (a validation the paper could not run in production).
#include <algorithm>

#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  const auto& truth = run.ground_truth().ds_anomalies;
  std::size_t flagged_chunks = 0, sessions_with_flag = 0;
  std::size_t true_positives = 0, false_positives = 0;
  std::size_t total_chunks = 0;

  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    total_chunks += s.chunks.size();
    const analysis::DsOutlierResult verdict = analysis::detect_ds_outliers(s);
    flagged_chunks += verdict.flagged_count;
    if (verdict.flagged_count > 0) ++sessions_with_flag;
    const auto it = truth.find(s.session_id);
    for (std::size_t i = 0; i < verdict.flagged.size(); ++i) {
      if (!verdict.flagged[i]) continue;
      const std::uint32_t chunk_id = s.chunks[i].player->chunk_id;
      const bool real = it != truth.end() &&
                        std::find(it->second.begin(), it->second.end(),
                                  chunk_id) != it->second.end();
      real ? ++true_positives : ++false_positives;
    }
  }

  std::size_t injected = 0;
  for (const auto& [sid, chunks] : truth) injected += chunks.size();

  core::print_header("§4.3-1: Eq. 4 download-stack screen at population scale");
  core::print_metric("chunks_total", static_cast<double>(total_chunks));
  core::print_metric("flagged_chunk_share",
                     static_cast<double>(flagged_chunks) /
                         static_cast<double>(total_chunks));
  core::print_metric("flagged_session_share",
                     static_cast<double>(sessions_with_flag) /
                         static_cast<double>(run.joined.sessions().size()));
  core::print_metric("injected_anomalies", static_cast<double>(injected));
  core::print_metric("detector_precision",
                     flagged_chunks == 0
                         ? 0.0
                         : static_cast<double>(true_positives) /
                               static_cast<double>(flagged_chunks));
  core::print_metric("detector_recall",
                     injected == 0 ? 0.0
                                   : static_cast<double>(true_positives) /
                                         static_cast<double>(injected));
  core::print_metric("false_positives", static_cast<double>(false_positives));
  core::print_paper_reference(
      "§4.3-1: 0.32% of chunks (1.7m) show stack buffering; 3.1% of "
      "sessions have at least one such chunk");
  return 0;
}
