// bench_telemetry_pipeline — throughput and peak memory of the telemetry
// pipeline, in-memory vs spill-to-disk, emitted as BENCH_telemetry.json.
//
//   bench_telemetry_pipeline [--sessions N] [--seed S]
//
// Peak RSS is a process high-water mark, so running both modes in one
// process would let whichever runs first contaminate the other's reading.
// The parent instead forks one child per mode (re-exec'ing itself with
// --child) and reads ru_maxrss from wait4(); the child reports record
// count and elapsed time through a small key=value metrics file.
//
// Environment knobs: VSTREAM_BENCH_SESSIONS / VSTREAM_BENCH_SEED override
// the defaults, VSTREAM_SHARDS picks the engine worker count as usual.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/qoe.h"
#include "bench_common.h"
#include "bench_json.h"
#include "core/streaming.h"
#include "engine/engine.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"
#include "telemetry/spill_io.h"

using namespace vstream;

namespace {

std::size_t dataset_records(const telemetry::Dataset& d) {
  return d.player_sessions.size() + d.cdn_sessions.size() +
         d.player_chunks.size() + d.cdn_chunks.size() +
         d.tcp_snapshots.size();
}

/// One end-to-end run (simulate + analyze) in the requested telemetry
/// mode; writes `records=`, `elapsed_ms=` and `sessions_joined=` to
/// `metrics_path` for the parent.
int run_child(const std::string& mode, std::size_t sessions,
              std::uint64_t seed, const std::filesystem::path& metrics_path,
              const std::filesystem::path& spill_dir) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = sessions;
  scenario.seed = seed;

  const auto start = std::chrono::steady_clock::now();
  const auto ms_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  std::size_t records = 0;
  std::size_t joined_sessions = 0;
  double sim_ms = 0.0;
  double analyze_ms = 0.0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t spill_logical_bytes = 0;

  if (mode == "spill" || mode == "ckpt") {
    engine::RunOptions options;
    options.telemetry_spill_dir = spill_dir.string();
    if (mode == "ckpt") {
      // Crash-safe variant: same spill pipeline plus batch boundaries,
      // per-batch flushes and checkpoint sidecars at the default interval.
      // The delta against plain spill is the durability tax.
      options.checkpoint_dir = (spill_dir / "ckpt").string();
    }
    const engine::RunResult run = engine::run_simulation(scenario, options);
    sim_ms = ms_since(start);
    for (const std::filesystem::path& file : run.spill.files()) {
      std::error_code ec;
      spill_bytes += std::filesystem::file_size(file, ec);
    }
    // One read pass to count records (also exercises the reader and
    // collects the logical/compressed byte accounting), then the
    // incremental two-pass analysis.
    {
      telemetry::SpillReadStats stats;
      const auto stream = run.spill.open(&stats);
      while (auto group = stream->next()) records += group->record_count();
      spill_logical_bytes = stats.logical_bytes;
    }
    const auto analyze_start = std::chrono::steady_clock::now();
    const core::StreamingAnalysis streamed =
        core::analyze_spill(run.spill, run.catalog->chunk_duration_s());
    analyze_ms = ms_since(analyze_start);
    joined_sessions = streamed.sessions_joined;
  } else {
    const engine::RunResult run = engine::run_simulation(scenario, {});
    sim_ms = ms_since(start);
    records = dataset_records(run.dataset);
    const auto analyze_start = std::chrono::steady_clock::now();
    const telemetry::ProxyFilterResult proxies =
        telemetry::detect_proxies(run.dataset);
    const telemetry::JoinedDataset joined =
        telemetry::JoinedDataset::build(run.dataset, &proxies);
    joined_sessions = analysis::aggregate_qoe(joined).sessions;
    analyze_ms = ms_since(analyze_start);
  }

  const double elapsed_ms = ms_since(start);

  std::ofstream out(metrics_path, std::ios::trunc);
  out << "records=" << records << "\n"
      << "elapsed_ms=" << elapsed_ms << "\n"
      << "sim_ms=" << sim_ms << "\n"
      << "analyze_ms=" << analyze_ms << "\n"
      << "sessions_joined=" << joined_sessions << "\n"
      << "spill_bytes=" << spill_bytes << "\n"
      << "spill_logical_bytes=" << spill_logical_bytes << "\n"
      << "spill_stall_us=" << telemetry::spill_write_stall_us() << "\n";
  out.flush();
  return out ? 0 : 1;
}

struct ChildResult {
  std::size_t records = 0;
  double elapsed_ms = 0.0;
  double sim_ms = 0.0;
  double analyze_ms = 0.0;
  std::size_t sessions_joined = 0;
  double peak_rss_mb = 0.0;
  std::uint64_t spill_bytes = 0;
  std::uint64_t spill_logical_bytes = 0;
  std::uint64_t spill_stall_us = 0;
};

/// Fork + re-exec this binary in `mode`, harvest ru_maxrss via wait4 and
/// the child's metrics file.  Exits the bench on any child failure.
ChildResult run_mode(const char* self, const std::string& mode,
                     std::size_t sessions, std::uint64_t seed,
                     const std::filesystem::path& work_dir) {
  const std::filesystem::path metrics_path =
      work_dir / ("child-" + mode + ".txt");
  const std::filesystem::path spill_dir = work_dir / ("spill-" + mode);

  const std::string sessions_s = std::to_string(sessions);
  const std::string seed_s = std::to_string(seed);
  const std::string metrics_s = metrics_path.string();
  const std::string spill_s = spill_dir.string();

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("bench_telemetry_pipeline: fork");
    std::exit(1);
  }
  if (pid == 0) {
    const char* argv[] = {self,
                          "--child",
                          mode.c_str(),
                          "--sessions",
                          sessions_s.c_str(),
                          "--seed",
                          seed_s.c_str(),
                          "--metrics",
                          metrics_s.c_str(),
                          "--spill-dir",
                          spill_s.c_str(),
                          nullptr};
    execv(self, const_cast<char* const*>(argv));
    std::perror("bench_telemetry_pipeline: execv");
    _exit(127);
  }

  int status = 0;
  struct rusage usage {};
  if (wait4(pid, &status, 0, &usage) != pid) {
    std::perror("bench_telemetry_pipeline: wait4");
    std::exit(1);
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "bench_telemetry_pipeline: %s child failed\n",
                 mode.c_str());
    std::exit(1);
  }

  ChildResult result;
  // Linux reports ru_maxrss in kilobytes.
  result.peak_rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;

  std::ifstream in(metrics_path);
  std::string line;
  std::map<std::string, std::string> kv;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq != std::string::npos) kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  if (kv.count("records") == 0 || kv.count("elapsed_ms") == 0) {
    std::fprintf(stderr,
                 "bench_telemetry_pipeline: %s child wrote no metrics\n",
                 mode.c_str());
    std::exit(1);
  }
  result.records = static_cast<std::size_t>(std::stoull(kv["records"]));
  result.elapsed_ms = std::stod(kv["elapsed_ms"]);
  result.sim_ms = std::stod(kv["sim_ms"]);
  result.analyze_ms = std::stod(kv["analyze_ms"]);
  result.sessions_joined =
      static_cast<std::size_t>(std::stoull(kv["sessions_joined"]));
  result.spill_bytes = std::stoull(kv["spill_bytes"]);
  result.spill_logical_bytes = std::stoull(kv["spill_logical_bytes"]);
  result.spill_stall_us = std::stoull(kv["spill_stall_us"]);
  return result;
}

double records_per_sec(const ChildResult& r) {
  return r.elapsed_ms > 0.0 ? static_cast<double>(r.records) /
                                  (r.elapsed_ms / 1000.0)
                            : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = 0;
  std::uint64_t seed = 0;
  std::string child_mode;
  std::filesystem::path metrics_path;
  std::filesystem::path spill_dir;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--sessions") {
      sessions = static_cast<std::size_t>(std::stoull(next()));
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::stoull(next()));
    } else if (arg == "--child") {
      child_mode = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--spill-dir") {
      spill_dir = next();
    } else {
      std::fprintf(stderr, "usage: %s [--sessions N] [--seed S]\n", argv[0]);
      return 2;
    }
  }
  if (sessions == 0) sessions = bench::bench_session_count(5'000);
  if (seed == 0) seed = bench::bench_seed();

  if (!child_mode.empty()) {
    return run_child(child_mode, sessions, seed, metrics_path, spill_dir);
  }

  const std::filesystem::path work_dir = "bench_telemetry_work";
  std::filesystem::create_directories(work_dir);

  std::printf("bench_telemetry_pipeline: %zu sessions, seed %llu\n", sessions,
              static_cast<unsigned long long>(seed));

  const ChildResult memory =
      run_mode(argv[0], "memory", sessions, seed, work_dir);
  const ChildResult spill =
      run_mode(argv[0], "spill", sessions, seed, work_dir);
  const ChildResult ckpt = run_mode(argv[0], "ckpt", sessions, seed, work_dir);

  if (memory.records != spill.records ||
      memory.sessions_joined != spill.sessions_joined ||
      memory.records != ckpt.records ||
      memory.sessions_joined != ckpt.sessions_joined) {
    std::fprintf(stderr,
                 "bench_telemetry_pipeline: mode mismatch "
                 "(memory %zu records / %zu joined, spill %zu / %zu, "
                 "ckpt %zu / %zu)\n",
                 memory.records, memory.sessions_joined, spill.records,
                 spill.sessions_joined, ckpt.records, ckpt.sessions_joined);
    return 1;
  }

  std::printf("  memory: %zu records, %.0f ms, %.0f records/s, %.1f MB peak\n",
              memory.records, memory.elapsed_ms, records_per_sec(memory),
              memory.peak_rss_mb);
  std::printf("  spill:  %zu records, %.0f ms, %.0f records/s, %.1f MB peak\n",
              spill.records, spill.elapsed_ms, records_per_sec(spill),
              spill.peak_rss_mb);
  std::printf("  ckpt:   %zu records, %.0f ms, %.0f records/s, %.1f MB peak\n",
              ckpt.records, ckpt.elapsed_ms, records_per_sec(ckpt),
              ckpt.peak_rss_mb);

  const double rss_ratio =
      spill.peak_rss_mb > 0.0 ? memory.peak_rss_mb / spill.peak_rss_mb : 0.0;
  // Throughput cost of crash safety: checkpointed vs plain spill (same
  // telemetry path, the delta is batching + flushes + sidecar writes).
  const double ckpt_overhead_pct =
      spill.elapsed_ms > 0.0
          ? (ckpt.elapsed_ms - spill.elapsed_ms) / spill.elapsed_ms * 100.0
          : 0.0;
  // Simulation-phase cost of spilling telemetry vs keeping it in memory:
  // the spill byte path (encode + buffered async writes) is the delta.
  const double spill_sim_overhead_pct =
      memory.sim_ms > 0.0
          ? (spill.sim_ms - memory.sim_ms) / memory.sim_ms * 100.0
          : 0.0;
  const double spill_bytes_per_session =
      sessions > 0 ? static_cast<double>(spill.spill_bytes) /
                         static_cast<double>(sessions)
                   : 0.0;
  const double spill_compression_ratio =
      spill.spill_bytes > 0 ? static_cast<double>(spill.spill_logical_bytes) /
                                  static_cast<double>(spill.spill_bytes)
                            : 0.0;

  bench::emit_json(
      "BENCH_telemetry.json", "telemetry",
      {
          {"sessions", static_cast<double>(sessions), "sessions"},
          {"records", static_cast<double>(memory.records), "records"},
          {"memory_elapsed_ms", memory.elapsed_ms, "ms"},
          {"memory_records_per_sec", records_per_sec(memory), "records/s"},
          {"memory_peak_rss_mb", memory.peak_rss_mb, "MB"},
          {"memory_sim_ms", memory.sim_ms, "ms"},
          {"spill_elapsed_ms", spill.elapsed_ms, "ms"},
          {"spill_records_per_sec", records_per_sec(spill), "records/s"},
          {"spill_peak_rss_mb", spill.peak_rss_mb, "MB"},
          {"spill_sim_ms", spill.sim_ms, "ms"},
          {"spill_sim_overhead_pct", spill_sim_overhead_pct, "%"},
          {"analyze_spill_ms", spill.analyze_ms, "ms"},
          {"spill_bytes_per_session", spill_bytes_per_session, "B/session"},
          {"spill_compression_ratio", spill_compression_ratio, "x"},
          {"spill_write_stall_ms",
           static_cast<double>(spill.spill_stall_us) / 1000.0, "ms"},
          {"peak_rss_ratio", rss_ratio, "x"},
          {"ckpt_elapsed_ms", ckpt.elapsed_ms, "ms"},
          {"ckpt_records_per_sec", records_per_sec(ckpt), "records/s"},
          {"ckpt_peak_rss_mb", ckpt.peak_rss_mb, "MB"},
          {"checkpoint_overhead_pct", ckpt_overhead_pct, "%"},
      });
  std::printf("  wrote BENCH_telemetry.json (peak RSS ratio %.2fx, "
              "spill sim overhead %.1f%%, %.0f B/session, ratio %.2fx, "
              "checkpoint overhead %.1f%%)\n",
              rss_ratio, spill_sim_overhead_pct, spill_bytes_per_session,
              spill_compression_ratio, ckpt_overhead_pct);

  std::error_code ec;
  std::filesystem::remove_all(work_dir, ec);
  return 0;
}
