#include "bench_json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace vstream::bench {

namespace {

/// JSON string escaping for the identifiers we emit (no control chars
/// expected, but stay correct if one sneaks in).
std::string escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void emit_json(const std::filesystem::path& path, const std::string& suite,
               const std::vector<JsonMetric>& metrics) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("emit_json: cannot open " + path.string());
  }
  out << "{\n  \"suite\": \"" << escaped(suite) << "\",\n  \"metrics\": {";
  bool first = true;
  for (const JsonMetric& m : metrics) {
    const double value = std::isfinite(m.value) ? m.value : 0.0;
    char number[64];
    std::snprintf(number, sizeof(number), "%.6g", value);
    out << (first ? "\n" : ",\n") << "    \"" << escaped(m.name)
        << "\": {\"value\": " << number << ", \"unit\": \""
        << escaped(m.unit) << "\"}";
    first = false;
  }
  out << "\n  }\n}\n";
  if (!out.flush()) {
    throw std::runtime_error("emit_json: write failed for " + path.string());
  }
}

}  // namespace vstream::bench
