// Figure 20: the controlled rendering experiment — one player (Firefox on
// an 8-core Mac, GigE path) streaming a 10-chunk video; first with GPU
// rendering, then software rendering with 1..8 cores loaded.
#include "bench_common.h"
#include "client/rendering.h"

using namespace vstream;

namespace {

double run_once(bool gpu, double cpu_load) {
  const client::UserAgent ua{client::Os::kMacOs, client::Browser::kFirefox};
  const client::RenderingPath rendering(
      client::RenderConfig{.gpu = gpu, .cpu_load = cpu_load, .visible = true},
      ua);
  sim::Rng rng(20'000 + static_cast<std::uint64_t>(cpu_load * 100));

  // GigE path: chunks arrive far faster than real time.
  double dropped = 0.0, frames = 0.0;
  for (int chunk = 0; chunk < 10; ++chunk) {
    const client::RenderResult r =
        rendering.render_chunk(6.0, 1'500, 5.0, 30.0, rng);
    dropped += r.dropped_frames;
    frames += r.total_frames;
  }
  return 100.0 * dropped / frames;
}

}  // namespace

int main() {
  core::print_header("Figure 20: dropped frames (%) vs CPU load (8 cores)");
  std::printf("series fig20: load=gpu dropped_pct=%.2f\n", run_once(true, 0.9));
  for (int cores = 1; cores <= 8; ++cores) {
    const double load = static_cast<double>(cores) / 8.0;
    std::printf("series fig20: load=%d/8 dropped_pct=%.2f\n", cores,
                run_once(false, load));
  }
  core::print_paper_reference(
      "Fig 20: GPU rendering drops ~0%; software rendering stays low until "
      "~6 loaded cores, then climbs steeply (~8-10% at 8/8)");
  return 0;
}
