// Figure 18: D_FB of first vs other chunks among a performance-equivalent
// set — no loss, CWND past IW, no queueing, narrow SRTT band, fast cache
// hit.  The residual gap is the client stack's first-chunk setup cost.
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  // The paper's equivalence filter (§4.3-3), adapted to our SRTT band.
  std::vector<double> first, other;
  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    for (const telemetry::JoinedChunk& c : s.chunks) {
      if (c.retransmissions > 0) continue;                       // no loss
      if (c.last_snapshot == nullptr) continue;
      const net::TcpInfo& info = c.last_snapshot->info;
      if (info.cwnd_segments <= 10) continue;                    // CWND > IW
      const double srtt = info.srtt_ms;
      if (srtt < 20.0 || srtt > 45.0) continue;                  // narrow band
      if (c.cdn->server_total_ms() >= 5.0 || !c.cdn->cache_hit()) continue;
      (c.player->chunk_id == 0 ? first : other).push_back(c.player->dfb_ms);
    }
  }

  core::print_header(
      "Figure 18: D_FB (ms) CDF, first vs other chunks (equivalent set)");
  core::print_cdf("fig18_first", analysis::make_cdf(first, 30));
  core::print_cdf("fig18_other", analysis::make_cdf(other, 30));
  if (!first.empty() && !other.empty()) {
    const double median_first = analysis::summarize(first).median;
    const double median_other = analysis::summarize(other).median;
    core::print_metric("median_first_ms", median_first);
    core::print_metric("median_other_ms", median_other);
    core::print_metric("median_gap_ms", median_first - median_other);
  }
  core::print_paper_reference(
      "Fig 18 / §4.3-3: under equivalent conditions the first chunk's "
      "median D_FB is ~300 ms higher (progress-event/data-path setup)");
  return 0;
}
