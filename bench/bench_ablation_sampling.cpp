// Ablation (§2.1 / §5): the paper samples tcp_info every 500 ms "to keep
// overhead low in production" and notes that coarser instrumentation
// misses sub-chunk events.  Sweep the sampling interval and measure what
// the analyses lose: per-session SRTT-variability estimates flatten and
// snapshot volume (the overhead proxy) shrinks.
#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

struct SamplingStats {
  double snapshots_per_chunk = 0.0;
  double median_sigma_srtt_ms = 0.0;
  double high_cv_session_share = 0.0;
};

SamplingStats run_with(double interval_ms) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count(1'500);
  scenario.tcp_sample_interval_ms = interval_ms;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();
  const auto proxies = telemetry::detect_proxies(pipeline.dataset());
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);

  SamplingStats stats;
  stats.snapshots_per_chunk =
      static_cast<double>(pipeline.dataset().tcp_snapshots.size()) /
      static_cast<double>(pipeline.dataset().cdn_chunks.size());

  std::vector<double> sigmas;
  std::size_t high_cv = 0, valid = 0;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    const analysis::SessionNetMetrics m = analysis::session_net_metrics(s);
    if (!m.valid) continue;
    ++valid;
    sigmas.push_back(m.srtt_stddev_ms);
    if (m.srtt_cv > 1.0) ++high_cv;
  }
  stats.median_sigma_srtt_ms = analysis::summarize(sigmas).median;
  stats.high_cv_session_share =
      valid == 0 ? 0.0 : static_cast<double>(high_cv) / static_cast<double>(valid);
  return stats;
}

}  // namespace

int main() {
  core::print_header("Ablation: tcp_info sampling interval");
  core::Table out({"interval ms", "snapshots / chunk", "median sigma_srtt ms",
                   "CV>1 session share"});
  for (const double interval : {100.0, 250.0, 500.0, 1'000.0, 2'000.0}) {
    const SamplingStats s = run_with(interval);
    out.add_row({core::fmt(interval, 0), core::fmt(s.snapshots_per_chunk, 2),
                 core::fmt(s.median_sigma_srtt_ms, 2),
                 core::fmt(100.0 * s.high_cv_session_share, 2) + "%"});
  }
  out.print();
  core::print_paper_reference(
      "§2.1: 500 ms sampling keeps overhead low; §5: coarser sampling "
      "misses sub-chunk latency events — variability estimates shrink with "
      "the interval while overhead (snapshots) falls");
  return 0;
}
