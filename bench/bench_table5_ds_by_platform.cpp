// Table 5: mean download-stack latency lower bound (Eq. 5) by
// (OS, browser), plus the §4.3-2 aggregate findings.
#include <map>

#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  struct Tally {
    double sum_ms = 0.0;
    std::size_t nonzero = 0;
    std::size_t chunks = 0;
  };
  std::map<std::string, Tally> by_platform;
  std::size_t chunks_with_ds = 0, chunks_total = 0, ds_dominant = 0;

  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    Tally& t = by_platform[s.player->user_agent];
    for (const telemetry::JoinedChunk& c : s.chunks) {
      const double bound = analysis::dds_lower_bound_ms(c);
      ++t.chunks;
      ++chunks_total;
      if (bound > 0.0) {
        t.sum_ms += bound;
        ++t.nonzero;
        ++chunks_with_ds;
        // Is the stack the dominant share of D_FB?
        const double server = c.cdn->server_total_ms();
        const double srtt =
            c.last_snapshot != nullptr ? c.last_snapshot->info.srtt_ms : 0.0;
        if (bound > server && bound > srtt) ++ds_dominant;
      }
    }
  }

  core::print_header("Table 5: mean D_DS (ms, Eq. 5, chunks with D_DS > 0)");
  core::Table out({"platform", "mean DS ms", "nonzero chunks", "all chunks"});
  std::vector<std::pair<double, std::string>> rows;
  for (const auto& [platform, t] : by_platform) {
    if (t.nonzero < 30) continue;
    rows.emplace_back(t.sum_ms / static_cast<double>(t.nonzero), platform);
  }
  std::sort(rows.rbegin(), rows.rend());
  for (const auto& [mean_ms, platform] : rows) {
    const Tally& t = by_platform[platform];
    out.add_row({platform, core::fmt(mean_ms, 0), std::to_string(t.nonzero),
                 std::to_string(t.chunks)});
  }
  out.print();

  core::print_metric("share_chunks_with_nonzero_ds",
                     static_cast<double>(chunks_with_ds) /
                         static_cast<double>(chunks_total));
  core::print_metric("ds_dominant_share_among_nonzero",
                     chunks_with_ds == 0
                         ? 0.0
                         : static_cast<double>(ds_dominant) /
                               static_cast<double>(chunks_with_ds));
  core::print_paper_reference(
      "Table 5 / §4.3-2: Safari off-Mac ~1030-1040 ms mean DS; mainstream "
      "pairs ~275-285 ms; 17.6% of chunks have nonzero DS and in 84% of "
      "those the stack is the dominant share of D_FB");
  return 0;
}
