// Engagement experiment: the paper's QoE framing rests on prior findings
// that "video stream quality impacts viewer behavior" (Krishnan &
// Sitaraman [25]) and that re-buffering depresses engagement (Dobrian et
// al. [14]).  With QoE-sensitive abandonment enabled, the simulated
// viewers reproduce that relationship: sessions that stall watch less of
// their video.
#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

struct EngagementStats {
  double watched_fraction_stalled = 0.0;
  double watched_fraction_clean = 0.0;
  std::size_t stalled_sessions = 0;
  std::uint64_t abandonments = 0;
};

EngagementStats run_with(double abandonment_probability) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count(1'500);
  scenario.sessions.abandon_probability = 0.0;  // isolate the QoE effect
  scenario.stall_abandonment_probability = abandonment_probability;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();
  const auto proxies = telemetry::detect_proxies(pipeline.dataset());
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);

  EngagementStats stats;
  stats.abandonments = pipeline.ground_truth().stall_abandonments;
  std::vector<double> stalled, clean;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    if (s.player->video_duration_s <= 0.0) continue;
    const double tau = pipeline.catalog().chunk_duration_s();
    const double watched = std::min(
        1.0, static_cast<double>(s.chunks.size()) * tau /
                 s.player->video_duration_s);
    (s.total_rebuffer_ms() > 0.0 ? stalled : clean).push_back(watched);
  }
  stats.stalled_sessions = stalled.size();
  stats.watched_fraction_stalled = analysis::mean_of(stalled);
  stats.watched_fraction_clean = analysis::mean_of(clean);
  return stats;
}

}  // namespace

int main() {
  core::print_header("Engagement: stalls vs watched fraction of the video");
  core::Table out({"P(abandon | stall)", "stalled sessions",
                   "watched (stalled)", "watched (clean)", "abandonments"});
  for (const double p : {0.0, 0.15, 0.35, 0.60}) {
    const EngagementStats s = run_with(p);
    out.add_row({core::fmt(p, 2), std::to_string(s.stalled_sessions),
                 core::fmt(s.watched_fraction_stalled, 3),
                 core::fmt(s.watched_fraction_clean, 3),
                 std::to_string(s.abandonments)});
  }
  out.print();
  core::print_paper_reference(
      "[25] (cited in §4): viewers who experience re-buffering watch less "
      "of the video; the gap widens with QoE sensitivity");
  return 0;
}
