// Fault matrix: sweep fault type x injection rate and measure what the
// recovery machinery (timeouts, capped backoff, mid-session failover,
// graceful degradation) salvages.  The paper only *observes* incident
// fallout ("directing client requests to different servers", §1/§4.1);
// here the incidents are controlled, so availability and QoE cost can be
// charted against failure intensity.
#include "bench_common.h"
#include "core/pipeline.h"
#include "faults/fault_schedule.h"

using namespace vstream;

namespace {

struct Cell {
  double completion_pct = 0.0;
  double rebuffer_pct = 0.0;
  double mean_recovery_ms = 0.0;
  std::uint64_t retries = 0;
  std::size_t failover_sessions = 0;
  std::uint64_t stale_chunks = 0;
};

faults::StochasticFaultConfig config_for(const std::string& kind, double rate) {
  faults::StochasticFaultConfig config;
  config.horizon_ms = sim::seconds(3'600.0);
  if (kind == "server crash") {
    config.server_crashes_per_hour = rate;
  } else if (kind == "pop blackout") {
    config.pop_blackouts_per_hour = rate;
  } else if (kind == "backend outage") {
    config.backend_outages_per_hour = rate;
  } else if (kind == "backend slowdown") {
    config.backend_slowdowns_per_hour = rate;
  } else if (kind == "disk degradation") {
    config.disk_degradations_per_hour = rate;
  } else if (kind == "loss burst") {
    config.loss_bursts_per_hour = rate;
  }
  return config;
}

Cell run_cell(const std::string& kind, double rate, std::size_t sessions) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = sessions;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  if (rate > 0.0) {
    // The schedule draws from its own generator so every cell streams the
    // identical session population; only the faults differ.
    sim::Rng fault_rng(scenario.seed ^ 0xFA0175ULL);
    pipeline.inject_faults(faults::FaultSchedule::stochastic(
        config_for(kind, rate), pipeline.fleet().pop_count(),
        pipeline.fleet().servers_per_pop(), fault_rng));
  }
  pipeline.run();
  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  const analysis::RecoveryImpact impact = analysis::recovery_impact(joined);

  Cell cell;
  cell.completion_pct = 100.0 * impact.completion_rate();
  cell.rebuffer_pct = impact.rebuffer_rate_percent;
  cell.mean_recovery_ms = impact.mean_recovery_ms;
  cell.retries = impact.retries;
  cell.failover_sessions = impact.failover_sessions;
  cell.stale_chunks = impact.stale_chunks;
  return cell;
}

}  // namespace

int main() {
  const std::size_t sessions = bench::bench_session_count(800);
  core::print_header("Fault matrix: type x rate vs availability and QoE");

  const std::vector<std::string> kinds = {
      "server crash",   "pop blackout",     "backend outage",
      "backend slowdown", "disk degradation", "loss burst"};
  const std::vector<double> rates = {0.0, 2.0, 8.0};

  core::Table out({"fault kind", "rate/h", "completed %", "rebuffer %",
                   "mean recovery ms", "retries", "failover sessions",
                   "stale chunks"});
  double worst_completion = 100.0;
  for (const std::string& kind : kinds) {
    for (const double rate : rates) {
      if (rate == 0.0 && kind != kinds.front()) continue;  // one baseline row
      const Cell cell = run_cell(kind, rate, sessions);
      worst_completion = std::min(worst_completion, cell.completion_pct);
      out.add_row({rate == 0.0 ? "none (baseline)" : kind, core::fmt(rate, 0),
                   core::fmt(cell.completion_pct, 1),
                   core::fmt(cell.rebuffer_pct, 3),
                   core::fmt(cell.mean_recovery_ms, 0),
                   std::to_string(cell.retries),
                   std::to_string(cell.failover_sessions),
                   std::to_string(cell.stale_chunks)});
    }
  }
  out.print();
  core::print_metric("worst_completion_pct", worst_completion);
  core::print_paper_reference(
      "§1/§4.1: the service recovers from incidents by re-directing clients; "
      "the matrix quantifies what each failure class costs when recovery is "
      "timeouts + backoff + failover instead of operator action");
  return 0;
}
