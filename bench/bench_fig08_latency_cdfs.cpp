// Figure 8: CDFs of per-session baseline latency (srtt_min) and latency
// variation (sigma_srtt).
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  std::vector<double> srtt_min, sigma_srtt;
  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    const analysis::SessionNetMetrics m = analysis::session_net_metrics(s);
    if (!m.valid) continue;
    srtt_min.push_back(m.srtt_min_ms);
    sigma_srtt.push_back(m.srtt_stddev_ms);
  }

  core::print_header("Figure 8: CDF of srtt_min and sigma_srtt across sessions (ms)");
  core::print_cdf("fig8_srtt_min", analysis::make_cdf(srtt_min, 40));
  core::print_cdf("fig8_sigma_srtt", analysis::make_cdf(sigma_srtt, 40));

  core::print_metric("srtt_min_median_ms", analysis::summarize(srtt_min).median);
  core::print_metric("srtt_min_p90_ms",
                     analysis::quantile_sorted(
                         [&] {
                           std::sort(srtt_min.begin(), srtt_min.end());
                           return srtt_min;
                         }(),
                         0.90));
  core::print_metric("sigma_median_ms", analysis::summarize(sigma_srtt).median);
  core::print_paper_reference(
      "Fig 8: both baseline and variation spread over ~1-1000 ms; the 90th "
      "percentile of srtt_min is ~100 ms (the tail-latency threshold used "
      "for Fig 9)");
  return 0;
}
