// Figure 15: average per-chunk retransmission rate vs chunk id — the
// bursty end-of-slow-start loss concentrates on the first chunk.
#include <map>

#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  std::map<std::uint32_t, std::pair<double, std::size_t>> by_id;
  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    for (const telemetry::JoinedChunk& c : s.chunks) {
      if (c.segments == 0) continue;
      auto& [sum, n] = by_id[c.player->chunk_id];
      sum += 100.0 * c.retx_rate();
      ++n;
    }
  }

  core::print_header("Figure 15: average retransmission rate (%) per chunk id");
  for (const auto& [id, entry] : by_id) {
    if (id > 20 || entry.second < 100) continue;
    std::printf("series fig15: chunk=%u avg_retx_pct=%.3f n=%zu\n", id,
                entry.first / static_cast<double>(entry.second), entry.second);
  }
  core::print_paper_reference(
      "Fig 15: chunk 0 averages ~8% retransmissions; later chunks settle "
      "near ~2% — slow start's exponential growth ends in a loss burst");
  return 0;
}
