// Ablation (§4.1-3 take-away): pure cache-focused routing vs explicitly
// partitioning the popular head across servers — load balance vs hit rate.
#include <cmath>

#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

struct FleetStats {
  double load_cv = 0.0;     ///< CV of per-server request counts within PoPs
  double miss_pct = 0.0;
  double ram_hit_pct = 0.0;
};

FleetStats run_with(cdn::RoutingPolicy routing) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count(1'500);
  scenario.routing = routing;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();

  FleetStats stats;
  auto& fleet = pipeline.fleet();
  std::vector<double> cvs;
  std::uint64_t ram = 0, miss = 0, total = 0;
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    std::vector<double> counts;
    for (std::uint32_t idx = 0; idx < fleet.servers_per_pop(); ++idx) {
      const cdn::AtsServer& s = fleet.server({pop, idx});
      counts.push_back(static_cast<double>(s.requests_served()));
      ram += s.ram_hits();
      miss += s.misses();
      total += s.requests_served();
    }
    if (analysis::mean_of(counts) > 0.0) cvs.push_back(analysis::cv_of(counts));
  }
  stats.load_cv = analysis::mean_of(cvs);
  stats.miss_pct = 100.0 * static_cast<double>(miss) / static_cast<double>(total);
  stats.ram_hit_pct =
      100.0 * static_cast<double>(ram) / static_cast<double>(total);
  return stats;
}

}  // namespace

int main() {
  core::print_header("Ablation: client->server routing policy");
  core::Table out({"routing", "per-PoP load CV", "miss %", "ram-hit %"});
  for (const cdn::RoutingPolicy routing :
       {cdn::RoutingPolicy::kCacheFocused,
        cdn::RoutingPolicy::kPopularityPartitioned}) {
    const FleetStats s = run_with(routing);
    out.add_row({cdn::to_string(routing), core::fmt(s.load_cv, 3),
                 core::fmt(s.miss_pct, 2), core::fmt(s.ram_hit_pct, 2)});
  }
  out.print();
  core::print_paper_reference(
      "§4.1-3 take-away: distributing the top-10% head across servers "
      "balances load (lower load CV) at a modest cache cost — the head is "
      "small enough to replicate");
  return 0;
}
