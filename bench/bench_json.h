// Minimal machine-readable bench output: a flat named-metric JSON file
// (BENCH_<suite>.json) that the tier-1 perf smoke validates and CI-style
// tooling can diff across commits.  No external JSON dependency — the
// emitter writes the tiny fixed shape itself.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace vstream::bench {

struct JsonMetric {
  std::string name;   ///< snake_case identifier, unique within the suite
  double value = 0.0; ///< non-finite values are clamped to 0
  std::string unit;   ///< e.g. "ops/s", "sessions/s"
};

/// Write `{"suite": <suite>, "metrics": {name: {"value": v, "unit": u}}}`
/// to `path`.  Throws std::runtime_error if the file cannot be written.
void emit_json(const std::filesystem::path& path, const std::string& suite,
               const std::vector<JsonMetric>& metrics);

}  // namespace vstream::bench
