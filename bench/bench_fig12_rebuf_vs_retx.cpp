// Figure 12: re-buffering rate vs session retransmission rate (binned).
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  std::vector<double> retx_pct, rebuf_pct;
  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    retx_pct.push_back(100.0 * s.retx_rate());
    rebuf_pct.push_back(s.rebuffer_rate_percent());
  }

  core::print_header("Figure 12: re-buffering rate vs retransmission rate (%)");
  core::print_bins("fig12_rebuf_vs_retx",
                   analysis::bin_series(retx_pct, rebuf_pct, 0.0, 10.0, 1.0));
  core::print_metric("correlation", analysis::pearson(retx_pct, rebuf_pct));
  core::print_paper_reference(
      "Fig 12: re-buffering grows with loss rate (from ~0.3% at no loss "
      "toward ~2-3% at 8-10% retx), though the relation is noisy");
  return 0;
}
