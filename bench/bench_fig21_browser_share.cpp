// Figure 21: per-platform browser share of chunks and average dropped-frame
// percentage, Windows vs Mac.
#include <map>

#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  struct Tally {
    std::size_t chunks = 0;
    double dropped = 0.0;
    double frames = 0.0;
  };
  std::map<std::string, Tally> by_platform;  // "Browser/OS" labels
  std::map<std::string, std::size_t> per_os_chunks;

  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    const std::string& ua = s.player->user_agent;  // "Browser/OS"
    const std::string os = ua.substr(ua.find('/') + 1);
    for (const telemetry::JoinedChunk& c : s.chunks) {
      if (c.player->total_frames == 0) continue;
      Tally& t = by_platform[ua];
      ++t.chunks;
      t.dropped += c.player->dropped_frames;
      t.frames += c.player->total_frames;
      ++per_os_chunks[os];
    }
  }

  core::print_header(
      "Figure 21: browser share of chunks and dropped-frame % per platform");
  core::Table out({"platform", "share of OS chunks", "dropped %"});
  for (const auto& [ua, t] : by_platform) {
    if (t.chunks < 200) continue;
    const std::string os = ua.substr(ua.find('/') + 1);
    out.add_row({ua,
                 core::fmt(100.0 * static_cast<double>(t.chunks) /
                               static_cast<double>(per_os_chunks[os]),
                           1) + "%",
                 core::fmt(100.0 * t.dropped / t.frames, 2)});
  }
  out.print();
  core::print_paper_reference(
      "Fig 21: Chrome (in-process Flash) and Safari-on-Mac (native HLS) "
      "outperform Firefox (protected mode); the 'Other' group drops the "
      "most frames on both platforms");
  return 0;
}
