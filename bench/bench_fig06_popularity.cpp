// Figure 6: performance vs popularity — (a) cache-miss percentage vs video
// rank, (b) median server latency (hits only) vs rank.
//
// The joined telemetry does not carry video ids (neither did the paper's
// beacons), so this bench drives the CDN fleet directly with the same
// workload generator and keys metrics by the catalog rank.
#include <map>

#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

int main() {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count();
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();

  sim::Rng rng(scenario.seed + 6);
  const workload::VideoCatalog& catalog = pipeline.catalog();
  cdn::Fleet& fleet = pipeline.fleet();

  // Rank buckets (the paper plots "Rank >= x" aggregates).
  struct Bucket {
    std::size_t requests = 0;
    std::size_t misses = 0;
    std::vector<double> hit_latency_ms;
  };
  std::map<std::size_t, Bucket> buckets;  // keyed by bucket floor rank

  const auto bucket_floor = [&](std::size_t rank) {
    const std::size_t width = catalog.size() / 8;
    return (rank - 1) / width * width + 1;
  };

  workload::SessionGeneratorConfig gen_config;
  workload::Population population(scenario.population, rng);
  workload::SessionGenerator generator(gen_config, catalog, population);
  for (std::size_t i = 0; i < scenario.session_count; ++i) {
    const workload::SessionSpec spec = generator.next(rng);
    const cdn::ServerRef ref = fleet.route(
        spec.client.prefix->location, spec.video_id, spec.video_rank,
        spec.session_id, scenario.routing);
    Bucket& bucket = buckets[bucket_floor(spec.video_rank)];
    for (std::uint32_t c = 0; c < spec.chunk_count; ++c) {
      const std::uint32_t bitrate = 1'500;
      const cdn::ServeResult r = fleet.server(ref).serve(
          cdn::ChunkKey{spec.video_id, c, bitrate},
          cdn::chunk_bytes(bitrate, catalog.chunk_duration_s()),
          spec.start_time_ms, rng);
      ++bucket.requests;
      if (!r.cache_hit()) {
        ++bucket.misses;
      } else {
        bucket.hit_latency_ms.push_back(r.total_ms());
      }
    }
  }

  core::print_header("Figure 6a: cache miss percentage vs video rank");
  for (const auto& [floor, bucket] : buckets) {
    if (bucket.requests == 0) continue;
    std::printf("series fig6a: rank>=%zu miss_pct=%.2f n=%zu\n", floor,
                100.0 * static_cast<double>(bucket.misses) /
                    static_cast<double>(bucket.requests),
                bucket.requests);
  }
  core::print_paper_reference(
      "Fig 6a: miss ratio rises steeply for unpopular videos (up to ~25% "
      "for the deep tail; ~2% on average)");

  core::print_header(
      "Figure 6b: median server latency vs rank (cache hits only)");
  for (auto& [floor, bucket] : buckets) {
    if (bucket.hit_latency_ms.size() < 20) continue;
    std::printf("series fig6b: rank>=%zu median_ms=%.2f n=%zu\n", floor,
                analysis::summarize(bucket.hit_latency_ms).median,
                bucket.hit_latency_ms.size());
  }
  core::print_paper_reference(
      "Fig 6b: median server delay grows from ~5 ms (popular) to ~25-30 ms "
      "(unpopular) even on hits, due to cold disk reads");
  return 0;
}
