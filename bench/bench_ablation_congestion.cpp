// Ablation: congestion-control flavour on the CDN servers.  The paper's
// fleet ran Linux CUBIC; Reno is the classical baseline.  CUBIC's gentler
// backoff (beta 0.7) and curve-shaped recovery keep the window near the
// path's capacity between losses, which shows up in session QoE.
#include "analysis/qoe.h"
#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

struct CcStats {
  double no_loss_share = 0.0;
  double session_retx_pct_mean = 0.0;
  double rebuffer_pct_mean = 0.0;
  double avg_bitrate_kbps = 0.0;
};

CcStats run_with(net::CongestionControl cc) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count(1'500);
  scenario.tcp.congestion_control = cc;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();
  const auto proxies = telemetry::detect_proxies(pipeline.dataset());
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);

  CcStats stats;
  std::size_t clean = 0;
  double retx = 0.0, rebuf = 0.0, bitrate = 0.0;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    if (!s.has_loss()) ++clean;
    retx += 100.0 * s.retx_rate();
    rebuf += s.rebuffer_rate_percent();
    bitrate += s.avg_bitrate_kbps();
  }
  const double n = static_cast<double>(joined.sessions().size());
  stats.no_loss_share = static_cast<double>(clean) / n;
  stats.session_retx_pct_mean = retx / n;
  stats.rebuffer_pct_mean = rebuf / n;
  stats.avg_bitrate_kbps = bitrate / n;
  return stats;
}

}  // namespace

int main() {
  core::print_header("Ablation: congestion control (server side)");
  core::Table out({"cc", "no-loss sessions", "mean retx %", "mean rebuffer %",
                   "mean bitrate kbps"});
  for (const net::CongestionControl cc :
       {net::CongestionControl::kReno, net::CongestionControl::kCubic}) {
    const CcStats s = run_with(cc);
    out.add_row({net::to_string(cc),
                 core::fmt(100.0 * s.no_loss_share, 1) + "%",
                 core::fmt(s.session_retx_pct_mean, 3),
                 core::fmt(s.rebuffer_pct_mean, 3),
                 core::fmt(s.avg_bitrate_kbps, 0)});
  }
  out.print();
  core::print_paper_reference(
      "context: the paper's CDN ran Linux (CUBIC default since 2.6.19); "
      "its slow-start and loss behaviours underlie §4.2-3");
  return 0;
}
