// bench_scaling — sessions/s versus physical worker count at a fixed
// logical partition, emitted as BENCH_scaling.json.
//
//   bench_scaling [--sessions N] [--seed S] [--reps R]
//
// The point of the logical-shards/physical-threads split is that the
// thread count is a pure throughput knob: this bench pins the partition
// at 64 logical shards (the engine default) and sweeps the worker pool
// over {1, 2, 4, 8}, reporting the best-of-reps simulation rate per
// thread count plus the analyze_spill wall time over a 64-file spill
// set at the same thread counts.  Every timed run is also checked
// byte-identical against the single-threaded reference — a scaling
// number for a run that changed its output would be meaningless.
//
// Environment knobs: VSTREAM_BENCH_SESSIONS / VSTREAM_BENCH_SEED
// override the defaults; VSTREAM_THREADS is deliberately ignored (the
// sweep sets threads explicitly).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "core/streaming.h"
#include "engine/engine.h"
#include "telemetry/export.h"

using namespace vstream;

namespace {

constexpr std::size_t kLogicalShards = 64;
constexpr std::size_t kThreadSweep[] = {1, 2, 4, 8};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string export_string(const telemetry::Dataset& data) {
  std::ostringstream out;
  telemetry::write_player_sessions_csv(out, data.player_sessions);
  telemetry::write_cdn_sessions_csv(out, data.cdn_sessions);
  telemetry::write_player_chunks_csv(out, data.player_chunks);
  telemetry::write_cdn_chunks_csv(out, data.cdn_chunks);
  telemetry::write_tcp_snapshots_csv(out, data.tcp_snapshots);
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t sessions = bench::bench_session_count(800);
  std::uint64_t seed = bench::bench_seed();
  std::size_t reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_scaling [--sessions N] [--seed S] [--reps R]\n");
      return 2;
    }
  }
  if (reps == 0) reps = 1;

  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = sessions;
  scenario.seed = seed;

  std::printf("bench_scaling: %zu sessions, %zu logical shards, reps=%zu\n",
              sessions, kLogicalShards, reps);

  std::vector<bench::JsonMetric> metrics;
  metrics.push_back({"sessions", static_cast<double>(sessions), "count"});
  metrics.push_back(
      {"logical_shards", static_cast<double>(kLogicalShards), "count"});

  // --- simulation throughput sweep (in-memory telemetry) ----------------
  std::string reference_csv;
  for (const std::size_t threads : kThreadSweep) {
    double best_ms = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      engine::RunOptions options;
      options.shards = kLogicalShards;
      options.threads = threads;
      const double start = now_ms();
      const engine::RunResult run = engine::run_simulation(scenario, options);
      const double elapsed = now_ms() - start;
      if (rep == 0 || elapsed < best_ms) best_ms = elapsed;
      if (rep == 0) {
        const std::string csv = export_string(run.dataset);
        if (reference_csv.empty()) {
          reference_csv = csv;
        } else if (csv != reference_csv) {
          std::fprintf(stderr,
                       "bench_scaling: output at threads=%zu differs from "
                       "the single-threaded reference — determinism broken\n",
                       threads);
          return 1;
        }
      }
    }
    const double rate = sessions / (best_ms / 1000.0);
    core::print_metric("sim_sessions_per_s_t" + std::to_string(threads),
                       rate);
    metrics.push_back({"sim_sessions_per_s_t" + std::to_string(threads),
                       rate, "sessions/s"});
    metrics.push_back({"sim_wall_ms_t" + std::to_string(threads), best_ms,
                       "ms"});
  }

  // --- analyze_spill sweep over a 64-file spill set ---------------------
  const std::filesystem::path spill_dir =
      std::filesystem::temp_directory_path() / "vstream_bench_scaling";
  std::filesystem::remove_all(spill_dir);
  std::filesystem::create_directories(spill_dir);
  engine::RunOptions spill_options;
  spill_options.shards = kLogicalShards;
  spill_options.threads = 0;  // resolved from the host
  spill_options.telemetry_spill_dir = spill_dir.string();
  const engine::RunResult spilled =
      engine::run_simulation(scenario, spill_options);
  const double tau = spilled.catalog->chunk_duration_s();

  std::size_t reference_joined = 0;
  for (const std::size_t threads : kThreadSweep) {
    double best_ms = 0.0;
    std::size_t joined = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const double start = now_ms();
      const core::StreamingAnalysis analysis =
          core::analyze_spill(spilled.spill, tau, {}, threads);
      const double elapsed = now_ms() - start;
      if (rep == 0 || elapsed < best_ms) best_ms = elapsed;
      joined = analysis.sessions_joined;
    }
    if (reference_joined == 0) {
      reference_joined = joined;
    } else if (joined != reference_joined) {
      std::fprintf(stderr,
                   "bench_scaling: analyze_spill at threads=%zu joined %zu "
                   "sessions, expected %zu\n",
                   threads, joined, reference_joined);
      return 1;
    }
    core::print_metric("analyze_spill_ms_t" + std::to_string(threads),
                       best_ms);
    metrics.push_back({"analyze_spill_ms_t" + std::to_string(threads),
                       best_ms, "ms"});
  }
  std::filesystem::remove_all(spill_dir);

  bench::emit_json("BENCH_scaling.json", "scaling", metrics);
  std::printf("wrote BENCH_scaling.json (%zu metrics)\n", metrics.size());
  return 0;
}
