// Model validation: the round-granularity TCP model (what every experiment
// runs on) against the event-driven packet-level reference, across a
// (bandwidth, RTT, buffer, transfer-size) grid.  The reproduction's
// transport claims are only as good as this agreement.
#include "bench_common.h"
#include "net/packet_sim.h"

using namespace vstream;

int main() {
  core::print_header(
      "Round-based TCP model vs packet-level reference (clean paths)");
  core::Table out({"bw kbps", "RTT ms", "buffer ms", "KB", "packet ms",
                   "round ms", "ratio", "pkt retx", "round retx"});

  std::vector<double> ratios;
  for (const double bw : {3'000.0, 8'000.0, 12'000.0, 50'000.0}) {
    for (const double rtt : {20.0, 60.0, 120.0}) {
      for (const double queue : {50.0, 150.0}) {
        for (const std::uint64_t bytes : {450'000ull, 1'875'000ull, 4'500'000ull}) {
          net::PacketSimConfig packet;
          packet.bottleneck_kbps = bw;
          packet.one_way_prop_ms = rtt / 2.0;
          packet.max_queue_ms = queue;
          const net::PacketSimResult reference =
              net::simulate_packet_transfer(bytes, packet);

          net::PathConfig path;
          path.bottleneck_kbps = bw;
          path.base_rtt_ms = rtt;
          path.max_queue_ms = queue;
          path.jitter_median_ms = 0.01;
          path.jitter_sigma = 0.01;
          path.random_loss = 0.0;
          path.spike_prob_per_round = 0.0;
          net::TcpConfig tcp;
          tcp.hystart_success_prob = 0.0;
          net::TcpConnection conn(tcp, path, sim::Rng(1));
          const net::TransferResult model = conn.transfer(bytes);

          const double ratio = model.duration_ms / reference.duration_ms;
          ratios.push_back(ratio);
          out.add_row({core::fmt(bw, 0), core::fmt(rtt, 0),
                       core::fmt(queue, 0),
                       core::fmt(static_cast<double>(bytes) / 1'000.0, 0),
                       core::fmt(reference.duration_ms, 0),
                       core::fmt(model.duration_ms, 0), core::fmt(ratio, 2),
                       std::to_string(reference.retransmissions),
                       std::to_string(model.retransmissions)});
        }
      }
    }
  }
  out.print();

  const analysis::SummaryStats stats = analysis::summarize(ratios);
  core::print_metric("ratio_median", stats.median);
  core::print_metric("ratio_p5", analysis::quantile_sorted(
                                     [&] {
                                       std::sort(ratios.begin(), ratios.end());
                                       return ratios;
                                     }(),
                                     0.05));
  core::print_metric("ratio_p95", stats.p95);
  core::print_paper_reference(
      "methodological: the round model must track packet-level transfer "
      "times within a small factor for the reproduction's network results "
      "to carry weight");
  return 0;
}
