// Shared preamble for the figure/table benches: run the paper-calibrated
// workload once and hand out the joined dataset.
//
// Every bench prints greppable `series`/`bins`/`metric` lines (see
// core/report.h) plus `PAPER:` reference lines recording what the original
// figure/table reports, so EXPERIMENTS.md can track paper-vs-measured.
#pragma once

#include <cstddef>
#include <memory>

#include "analysis/aggregate.h"
#include "analysis/detectors.h"
#include "analysis/stats.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"

namespace vstream::bench {

/// One fully simulated and joined run.  The pipeline owns the raw dataset;
/// `joined` holds pointers into it, so keep the struct alive while using it.
struct BenchRun {
  workload::Scenario scenario;
  std::unique_ptr<core::Pipeline> pipeline;
  telemetry::ProxyFilterResult proxies;
  telemetry::JoinedDataset joined;
};

/// Session count for the default workload; override with the
/// VSTREAM_BENCH_SESSIONS environment variable.
std::size_t bench_session_count(std::size_t fallback = 2'500);

/// Run the paper-calibrated scenario end to end (warm caches, all
/// sessions, proxy filtering, join).
BenchRun run_paper_workload(std::size_t sessions = bench_session_count(),
                            std::uint64_t seed = 20160516);

}  // namespace vstream::bench
