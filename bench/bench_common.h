// Shared preamble for the figure/table benches: run the paper-calibrated
// workload once through the layered engine and hand out the joined dataset.
//
// Every bench prints greppable `series`/`bins`/`metric` lines (see
// core/report.h) plus `PAPER:` reference lines recording what the original
// figure/table reports, so EXPERIMENTS.md can track paper-vs-measured.
//
// Environment knobs (validated strictly; invalid values abort the bench
// with a message rather than silently falling back):
//   VSTREAM_BENCH_SESSIONS  session count for the default workload
//   VSTREAM_BENCH_SEED      master seed for the default workload
//   VSTREAM_SHARDS          engine worker count (see engine/engine.h)
#pragma once

#include <cstddef>
#include <cstdint>

#include "analysis/aggregate.h"
#include "analysis/detectors.h"
#include "analysis/stats.h"
#include "core/report.h"
#include "engine/engine.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"

namespace vstream::bench {

/// One fully simulated and joined run.  `joined` holds pointers into
/// `result.dataset`, so keep the struct alive while using it.
struct BenchRun {
  workload::Scenario scenario;
  engine::RunResult result;
  telemetry::ProxyFilterResult proxies;
  telemetry::JoinedDataset joined;

  const telemetry::Dataset& dataset() const { return result.dataset; }
  const workload::VideoCatalog& catalog() const { return *result.catalog; }
  const engine::GroundTruth& ground_truth() const {
    return result.ground_truth;
  }
  /// Merged per-server serve counters, indexed pop * servers_per_pop +
  /// server (the engine's replacement for reading live fleet counters).
  const std::vector<cdn::ServerStats>& server_stats() const {
    return result.server_stats;
  }
};

/// Session count for the default workload; override with the
/// VSTREAM_BENCH_SESSIONS environment variable.  An unparsable or
/// non-positive value prints a diagnostic and exits with status 2.
std::size_t bench_session_count(std::size_t fallback = 2'500);

/// Master seed for the default workload; override with VSTREAM_BENCH_SEED
/// (same strict validation).
std::uint64_t bench_seed(std::uint64_t fallback = 20160516);

/// Run the paper-calibrated scenario end to end (warm caches, all
/// sessions, proxy filtering, join) on the sharded engine.
BenchRun run_paper_workload(std::size_t sessions = bench_session_count(),
                            std::uint64_t seed = bench_seed());

}  // namespace vstream::bench
