// Ablation (§4.1-2 take-away): "the persistence of cache misses could be
// addressed by pre-fetching the subsequent chunks of a video session after
// the first miss."  Compare prefetch depths on the same workload: session
// miss persistence collapses, at the cost of extra backend requests.
#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

struct PrefetchStats {
  double overall_miss_pct = 0.0;
  double conditional_miss_ratio = 0.0;  ///< mean miss ratio | >= 1 miss
  double backend_per_1k_chunks = 0.0;
  double mean_rebuffer_pct = 0.0;
};

PrefetchStats run_with(std::uint32_t prefetch_depth) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count(1'500);
  scenario.fleet.server.prefetch_on_miss = prefetch_depth;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();
  const auto proxies = telemetry::detect_proxies(pipeline.dataset());
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);

  PrefetchStats stats;
  double chunks = 0.0, misses = 0.0, rebuf = 0.0;
  std::vector<double> conditional;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    std::size_t session_misses = 0;
    for (const telemetry::JoinedChunk& c : s.chunks) {
      if (c.cdn != nullptr && !c.cdn->cache_hit()) ++session_misses;
    }
    chunks += static_cast<double>(s.chunks.size());
    misses += static_cast<double>(session_misses);
    rebuf += s.rebuffer_rate_percent();
    if (session_misses > 0) {
      conditional.push_back(static_cast<double>(session_misses) /
                            static_cast<double>(s.chunks.size()));
    }
  }
  stats.overall_miss_pct = 100.0 * misses / chunks;
  stats.conditional_miss_ratio = analysis::mean_of(conditional);
  stats.mean_rebuffer_pct =
      rebuf / static_cast<double>(joined.sessions().size());

  std::uint64_t backend = 0;
  auto& fleet = pipeline.fleet();
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    for (std::uint32_t idx = 0; idx < fleet.servers_per_pop(); ++idx) {
      backend += fleet.server({pop, idx}).backend_requests();
    }
  }
  stats.backend_per_1k_chunks = 1'000.0 * static_cast<double>(backend) / chunks;
  return stats;
}

}  // namespace

int main() {
  core::print_header("Ablation: prefetch-on-miss depth");
  core::Table out({"prefetch", "miss %", "miss ratio | >=1 miss",
                   "backend req / 1k chunks", "mean rebuffer %"});
  for (const std::uint32_t depth : {0u, 2u, 4u, 8u}) {
    const PrefetchStats s = run_with(depth);
    out.add_row({std::to_string(depth), core::fmt(s.overall_miss_pct, 2),
                 core::fmt(s.conditional_miss_ratio, 3),
                 core::fmt(s.backend_per_1k_chunks, 1),
                 core::fmt(s.mean_rebuffer_pct, 3)});
  }
  out.print();
  core::print_paper_reference(
      "§4.1-2 take-away: after the first miss, later misses are likely "
      "(~60% conditional miss ratio); prefetching the following chunks "
      "breaks the persistence at the cost of backend load");
  return 0;
}
