// Figure 13: the loss-timing case study.  Two 10-chunk sessions with
// matched bitrate/cache/path conditions:
//   case #1 — a small loss burst on the FIRST chunk (0.75% session rate),
//   case #2 — a much larger loss burst after the buffer has built up
//             (22% session rate).
// The paper's point: case #1 re-buffers despite 30x less loss, because the
// playback buffer was empty when the loss hit.
#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

struct CaseResult {
  std::vector<double> per_chunk_loss_pct;
  double session_retx_pct = 0.0;
  double rebuffer_ms = 0.0;
  std::uint32_t rebuffer_events = 0;
};

CaseResult run_case(bool loss_on_first_chunk) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 0;
  scenario.seed = 1313;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();

  core::SessionOverrides overrides;
  overrides.chunk_count = 10;
  overrides.abr = client::AbrKind::kFixed;
  overrides.fixed_bitrate_kbps = 2'500;
  overrides.disable_ds_anomalies = true;
  // A pipe with headroom, so the buffer builds between loss events.
  overrides.bottleneck_kbps = 5'000.0;
  overrides.per_chunk_loss.assign(10, std::optional<double>(0.0));
  if (loss_on_first_chunk) {
    overrides.per_chunk_loss[0] = 0.08;  // early, small in absolute terms
    overrides.per_chunk_loss[1] = 0.04;
  } else {
    overrides.per_chunk_loss[5] = 0.10;  // late, heavier: buffer absorbs it
    overrides.per_chunk_loss[6] = 0.10;
  }
  pipeline.run_session(overrides);

  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  const telemetry::JoinedSession& s = joined.sessions().front();

  CaseResult result;
  for (const telemetry::JoinedChunk& c : s.chunks) {
    result.per_chunk_loss_pct.push_back(100.0 * c.retx_rate());
    result.rebuffer_ms += c.player->rebuffer_ms;
    result.rebuffer_events += c.player->rebuffer_count;
  }
  result.session_retx_pct = 100.0 * s.retx_rate();
  return result;
}

}  // namespace

int main() {
  const CaseResult early = run_case(true);
  const CaseResult late = run_case(false);

  core::print_header("Figure 13: per-chunk loss rate (%) for the two cases");
  for (std::size_t c = 0; c < early.per_chunk_loss_pct.size(); ++c) {
    std::printf("series fig13: chunk=%zu case1_early=%.2f case2_late=%.2f\n",
                c, early.per_chunk_loss_pct[c], late.per_chunk_loss_pct[c]);
  }
  core::print_metric("case1_session_retx_pct", early.session_retx_pct);
  core::print_metric("case1_rebuffer_ms", early.rebuffer_ms);
  core::print_metric("case1_rebuffer_events",
                     static_cast<double>(early.rebuffer_events));
  core::print_metric("case2_session_retx_pct", late.session_retx_pct);
  core::print_metric("case2_rebuffer_ms", late.rebuffer_ms);
  core::print_metric("case2_rebuffer_events",
                     static_cast<double>(late.rebuffer_events));
  core::print_paper_reference(
      "Fig 13: case #1 (0.75% loss, on chunk 0) re-buffers; case #2 (22% "
      "loss after the buffer built to ~30 s) does not — loss timing matters "
      "more than loss rate");
  return 0;
}
