// Figure 4: impact of first-chunk server latency on startup time, with
// average, median and IQR per latency bin.
#include <unordered_map>

#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  std::unordered_map<std::uint64_t, double> startup;
  for (const auto& s : run.dataset().player_sessions) {
    startup[s.session_id] = s.startup_ms;
  }

  std::vector<double> server_ms, startup_ms;
  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    if (s.chunks.empty() || s.chunks[0].cdn == nullptr) continue;
    server_ms.push_back(s.chunks[0].cdn->server_total_ms());
    startup_ms.push_back(startup[s.session_id] / 1'000.0);  // seconds
  }

  core::print_header("Figure 4: startup time (s) vs first-chunk server latency (ms)");
  core::print_bins("fig4_startup_vs_server",
                   analysis::bin_series(server_ms, startup_ms, 0.0, 600.0, 50.0));
  core::print_metric("correlation", analysis::pearson(server_ms, startup_ms));
  core::print_paper_reference(
      "Fig 4: startup grows from ~0.6 s at ~0 ms server latency to ~2.5 s+ "
      "at 500 ms; ~5% of sessions have a server-induced QoE problem");
  return 0;
}
