// Failover experiment: §1 lists "directing client requests to different
// servers" as a corrective action.  Under cache-focused routing that
// correction has a price — the failover target's cache was warmed for a
// different video set, so the rescued sessions land on cold content.
#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

struct FleetQoe {
  double miss_pct = 0.0;
  double startup_mean_ms = 0.0;
  double rebuffer_mean_pct = 0.0;
};

FleetQoe run_with(bool kill_one_server_per_pop) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count(1'500);
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();  // warmed for the healthy assignment
  auto& fleet = pipeline.fleet();
  if (kill_one_server_per_pop) {
    for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
      fleet.set_server_down({pop, 0});
    }
  }
  pipeline.run();
  const auto proxies = telemetry::detect_proxies(pipeline.dataset());
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);

  FleetQoe qoe;
  double misses = 0.0, chunks = 0.0, startup = 0.0, rebuf = 0.0;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    for (const telemetry::JoinedChunk& c : s.chunks) {
      chunks += 1.0;
      if (!c.cdn->cache_hit()) misses += 1.0;
    }
    startup += s.player->startup_ms;
    rebuf += s.rebuffer_rate_percent();
  }
  const double n = static_cast<double>(joined.sessions().size());
  qoe.miss_pct = 100.0 * misses / chunks;
  qoe.startup_mean_ms = startup / n;
  qoe.rebuffer_mean_pct = rebuf / n;
  return qoe;
}

}  // namespace

int main() {
  core::print_header(
      "Failover: one server down per PoP (cache-focused routing)");
  core::Table out({"fleet", "chunk miss %", "mean startup ms",
                   "mean rebuffer %"});
  const FleetQoe healthy = run_with(false);
  out.add_row({"all servers up", core::fmt(healthy.miss_pct, 2),
               core::fmt(healthy.startup_mean_ms, 0),
               core::fmt(healthy.rebuffer_mean_pct, 3)});
  const FleetQoe degraded = run_with(true);
  out.add_row({"1 of 4 down per PoP", core::fmt(degraded.miss_pct, 2),
               core::fmt(degraded.startup_mean_ms, 0),
               core::fmt(degraded.rebuffer_mean_pct, 3)});
  out.print();
  core::print_metric("miss_pct_multiplier",
                     degraded.miss_pct / std::max(0.01, healthy.miss_pct));
  core::print_paper_reference(
      "§1/§4.1-3: re-directing clients rescues availability but lands ~25% "
      "of sessions on servers whose caches never held their videos — the "
      "cold-cache cost of cache-focused mapping");
  return 0;
}
