#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace vstream::bench {

namespace {

/// Strict env parse; misconfiguration kills the bench with a message
/// instead of silently benchmarking the wrong workload.
std::size_t checked_env(const char* name, std::size_t fallback) {
  try {
    return engine::positive_env(name, fallback);
  } catch (const std::runtime_error& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    std::exit(2);
  }
}

}  // namespace

std::size_t bench_session_count(std::size_t fallback) {
  return checked_env("VSTREAM_BENCH_SESSIONS", fallback);
}

std::uint64_t bench_seed(std::uint64_t fallback) {
  return checked_env("VSTREAM_BENCH_SEED",
                     static_cast<std::size_t>(fallback));
}

BenchRun run_paper_workload(std::size_t sessions, std::uint64_t seed) {
  BenchRun run;
  run.scenario = workload::paper_scenario();
  run.scenario.session_count = sessions;
  run.scenario.seed = seed;
  engine::AnalyzedRun analyzed = engine::run_and_analyze(run.scenario);
  run.result = std::move(analyzed.run);
  run.proxies = std::move(analyzed.proxies);
  run.joined = std::move(analyzed.joined);
  return run;
}

}  // namespace vstream::bench
