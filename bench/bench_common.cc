#include "bench_common.h"

#include <cstdlib>

namespace vstream::bench {

std::size_t bench_session_count(std::size_t fallback) {
  const char* env = std::getenv("VSTREAM_BENCH_SESSIONS");
  if (env != nullptr) {
    const long parsed = std::atol(env);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

BenchRun run_paper_workload(std::size_t sessions, std::uint64_t seed) {
  BenchRun run;
  run.scenario = workload::paper_scenario();
  run.scenario.session_count = sessions;
  run.scenario.seed = seed;
  run.pipeline = std::make_unique<core::Pipeline>(run.scenario);
  run.pipeline->warm_caches();
  run.pipeline->run();
  run.proxies = telemetry::detect_proxies(run.pipeline->dataset());
  run.joined =
      telemetry::JoinedDataset::build(run.pipeline->dataset(), &run.proxies);
  return run;
}

}  // namespace vstream::bench
