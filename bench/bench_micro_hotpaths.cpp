// google-benchmark microbenchmarks of the simulator's hot paths: cache
// operations per eviction policy, TCP chunk transfers, Zipf sampling and
// the statistical kernels.
#include <benchmark/benchmark.h>

#include "analysis/detectors.h"
#include "analysis/stats.h"
#include "cdn/cache.h"
#include "net/packet_sim.h"
#include "net/tcp_model.h"
#include "sim/zipf.h"
#include "telemetry/join.h"

using namespace vstream;

namespace {

void BM_CacheInsertLookup(benchmark::State& state) {
  const auto policy = static_cast<cdn::PolicyKind>(state.range(0));
  cdn::CacheStore store(64ull << 20, cdn::make_policy(policy));
  std::uint64_t key = 0;
  for (auto _ : state) {
    const cdn::ChunkKey k{static_cast<std::uint32_t>(key % 4'096),
                          static_cast<std::uint32_t>(key % 64), 1'500};
    store.insert(k, 1 << 20);
    benchmark::DoNotOptimize(store.contains(k));
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup)
    ->Arg(static_cast<int>(cdn::PolicyKind::kLru))
    ->Arg(static_cast<int>(cdn::PolicyKind::kPerfectLfu))
    ->Arg(static_cast<int>(cdn::PolicyKind::kGdSize));

void BM_TwoLevelLookup(benchmark::State& state) {
  cdn::TwoLevelCache cache(32ull << 20, 512ull << 20, cdn::PolicyKind::kLru);
  for (std::uint32_t v = 0; v < 512; ++v) {
    cache.admit(cdn::ChunkKey{v, 0, 1'500}, 1 << 20);
  }
  std::uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.lookup(cdn::ChunkKey{v++ % 1'024, 0, 1'500}, 1 << 20));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLevelLookup);

void BM_TcpChunkTransfer(benchmark::State& state) {
  net::PathConfig path;
  path.base_rtt_ms = 30.0;
  path.bottleneck_kbps = 12'000.0;
  path.random_loss = 1e-4;
  net::TcpConnection conn(net::TcpConfig{}, path, sim::Rng(1));
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conn.transfer(bytes));
    conn.idle(6'000.0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_TcpChunkTransfer)->Arg(225'000)->Arg(1'875'000)->Arg(4'500'000);

void BM_ZipfSample(benchmark::State& state) {
  const sim::Zipf zipf(static_cast<std::size_t>(state.range(0)), 0.8);
  sim::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1'000)->Arg(100'000);

void BM_PacketLevelTransfer(benchmark::State& state) {
  net::PacketSimConfig config;
  config.bottleneck_kbps = 12'000.0;
  config.one_way_prop_ms = 15.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::simulate_packet_transfer(
        static_cast<std::uint64_t>(state.range(0)), config));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PacketLevelTransfer)->Arg(225'000)->Arg(1'875'000);

void BM_DsOutlierDetector(benchmark::State& state) {
  // One joined session of N chunks through the Eq. 4 screen.
  const auto n = static_cast<std::size_t>(state.range(0));
  telemetry::Dataset data;
  telemetry::PlayerSessionRecord ps;
  ps.session_id = 1;
  data.player_sessions.push_back(ps);
  telemetry::CdnSessionRecord cs;
  cs.session_id = 1;
  data.cdn_sessions.push_back(cs);
  sim::Rng rng(4);
  for (std::size_t c = 0; c < n; ++c) {
    telemetry::PlayerChunkRecord pc;
    pc.session_id = 1;
    pc.chunk_id = static_cast<std::uint32_t>(c);
    pc.dfb_ms = rng.lognormal_median(80.0, 0.4);
    pc.dlb_ms = rng.lognormal_median(2'500.0, 0.3);
    data.player_chunks.push_back(pc);
    telemetry::CdnChunkRecord cc;
    cc.session_id = 1;
    cc.chunk_id = static_cast<std::uint32_t>(c);
    cc.dread_ms = 1.5;
    cc.cache_level = cdn::CacheLevel::kRam;
    cc.chunk_bytes = 1'125'000;
    data.cdn_chunks.push_back(cc);
    telemetry::TcpSnapshotRecord snap;
    snap.session_id = 1;
    snap.chunk_id = static_cast<std::uint32_t>(c);
    snap.at_ms = 1'000.0 * static_cast<double>(c);
    snap.info.srtt_ms = 50.0;
    snap.info.cwnd_segments = 40;
    snap.info.mss_bytes = 1'460;
    snap.info.segments_out = 800 * (c + 1);
    data.tcp_snapshots.push_back(snap);
  }
  const auto joined = telemetry::JoinedDataset::build(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::detect_ds_outliers(joined.sessions()[0]));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DsOutlierDetector)->Arg(16)->Arg(128);

void BM_SummarizeStats(benchmark::State& state) {
  sim::Rng rng(3);
  std::vector<double> values(static_cast<std::size_t>(state.range(0)));
  for (double& v : values) v = rng.lognormal_median(50.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::summarize(values));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SummarizeStats)->Arg(1'000)->Arg(100'000);

}  // namespace

BENCHMARK_MAIN();
