// google-benchmark microbenchmarks of the simulator's hot paths: the event
// loop, the isolated serve path, tcp_info sampling, the offline join, CSV
// export, cache operations per eviction policy, TCP chunk transfers, Zipf
// sampling and the statistical kernels.
//
// The custom main() additionally times one end-to-end paper workload and
// writes every measured rate to BENCH_hotpaths.json (bench_json.h) so the
// tier-1 perf smoke and cross-commit tooling get machine-readable numbers.
#include <benchmark/benchmark.h>

#include <chrono>
#include <sstream>

#include "analysis/detectors.h"
#include "analysis/stats.h"
#include "bench_common.h"
#include "bench_json.h"
#include "cdn/ats_server.h"
#include "cdn/cache.h"
#include "failpoints/failpoint.h"
#include "net/packet_sim.h"
#include "net/tcp_model.h"
#include "sim/event_queue.h"
#include "sim/zipf.h"
#include "telemetry/collector.h"
#include "telemetry/export.h"
#include "telemetry/join.h"

using namespace vstream;

namespace {

void BM_CacheInsertLookup(benchmark::State& state) {
  const auto policy = static_cast<cdn::PolicyKind>(state.range(0));
  cdn::CacheStore store(64ull << 20, cdn::make_policy(policy));
  std::uint64_t key = 0;
  for (auto _ : state) {
    const cdn::ChunkKey k{static_cast<std::uint32_t>(key % 4'096),
                          static_cast<std::uint32_t>(key % 64), 1'500};
    store.insert(k, 1 << 20);
    benchmark::DoNotOptimize(store.contains(k));
    ++key;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheInsertLookup)
    ->Arg(static_cast<int>(cdn::PolicyKind::kLru))
    ->Arg(static_cast<int>(cdn::PolicyKind::kPerfectLfu))
    ->Arg(static_cast<int>(cdn::PolicyKind::kGdSize));

void BM_TwoLevelLookup(benchmark::State& state) {
  cdn::TwoLevelCache cache(32ull << 20, 512ull << 20, cdn::PolicyKind::kLru);
  for (std::uint32_t v = 0; v < 512; ++v) {
    cache.admit(cdn::ChunkKey{v, 0, 1'500}, 1 << 20);
  }
  std::uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.lookup(cdn::ChunkKey{v++ % 1'024, 0, 1'500}, 1 << 20));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoLevelLookup);

void BM_TcpChunkTransfer(benchmark::State& state) {
  net::PathConfig path;
  path.base_rtt_ms = 30.0;
  path.bottleneck_kbps = 12'000.0;
  path.random_loss = 1e-4;
  net::TcpConnection conn(net::TcpConfig{}, path, sim::Rng(1));
  const std::uint64_t bytes = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(conn.transfer(bytes));
    conn.idle(6'000.0);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_TcpChunkTransfer)->Arg(225'000)->Arg(1'875'000)->Arg(4'500'000);

void BM_ZipfSample(benchmark::State& state) {
  const sim::Zipf zipf(static_cast<std::size_t>(state.range(0)), 0.8);
  sim::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample)->Arg(1'000)->Arg(100'000);

void BM_PacketLevelTransfer(benchmark::State& state) {
  net::PacketSimConfig config;
  config.bottleneck_kbps = 12'000.0;
  config.one_way_prop_ms = 15.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::simulate_packet_transfer(
        static_cast<std::uint64_t>(state.range(0)), config));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_PacketLevelTransfer)->Arg(225'000)->Arg(1'875'000);

void BM_DsOutlierDetector(benchmark::State& state) {
  // One joined session of N chunks through the Eq. 4 screen.
  const auto n = static_cast<std::size_t>(state.range(0));
  telemetry::Dataset data;
  telemetry::PlayerSessionRecord ps;
  ps.session_id = 1;
  data.player_sessions.push_back(ps);
  telemetry::CdnSessionRecord cs;
  cs.session_id = 1;
  data.cdn_sessions.push_back(cs);
  sim::Rng rng(4);
  for (std::size_t c = 0; c < n; ++c) {
    telemetry::PlayerChunkRecord pc;
    pc.session_id = 1;
    pc.chunk_id = static_cast<std::uint32_t>(c);
    pc.dfb_ms = rng.lognormal_median(80.0, 0.4);
    pc.dlb_ms = rng.lognormal_median(2'500.0, 0.3);
    data.player_chunks.push_back(pc);
    telemetry::CdnChunkRecord cc;
    cc.session_id = 1;
    cc.chunk_id = static_cast<std::uint32_t>(c);
    cc.dread_ms = 1.5;
    cc.cache_level = cdn::CacheLevel::kRam;
    cc.chunk_bytes = 1'125'000;
    data.cdn_chunks.push_back(cc);
    telemetry::TcpSnapshotRecord snap;
    snap.session_id = 1;
    snap.chunk_id = static_cast<std::uint32_t>(c);
    snap.at_ms = 1'000.0 * static_cast<double>(c);
    snap.info.srtt_ms = 50.0;
    snap.info.cwnd_segments = 40;
    snap.info.mss_bytes = 1'460;
    snap.info.segments_out = 800 * (c + 1);
    data.tcp_snapshots.push_back(snap);
  }
  const auto joined = telemetry::JoinedDataset::build(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::detect_ds_outliers(joined.sessions()[0]));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DsOutlierDetector)->Arg(16)->Arg(128);

void BM_SummarizeStats(benchmark::State& state) {
  sim::Rng rng(3);
  std::vector<double> values(static_cast<std::size_t>(state.range(0)));
  for (double& v : values) v = rng.lognormal_median(50.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::summarize(values));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SummarizeStats)->Arg(1'000)->Arg(100'000);

void BM_EventLoopScheduleRun(benchmark::State& state) {
  sim::EventQueue queue;
  std::uint64_t fired = 0;
  constexpr int kEvents = 64;
  for (auto _ : state) {
    queue.reset();
    for (int i = 0; i < kEvents; ++i) {
      queue.schedule_at(static_cast<sim::Ms>(i % 16), [&fired] { ++fired; });
    }
    queue.run_all();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_EventLoopScheduleRun);

void BM_ServeIsolatedRamHit(benchmark::State& state) {
  // The sharded engine's per-chunk serve: warm-archive RAM hit with a
  // session overlay, the path nearly every steady-state chunk takes.
  cdn::AtsServer server(cdn::AtsConfig{}, cdn::BackendConfig{});
  cdn::TwoLevelCache warm(8ull << 30, 64ull << 30, cdn::PolicyKind::kLru);
  constexpr std::uint32_t kVideos = 256;
  for (std::uint32_t v = 0; v < kVideos; ++v) {
    warm.admit(cdn::ChunkKey{v, 0, 1'500}, 1 << 20);
  }
  cdn::SessionServerState session;
  cdn::ServerStats stats;
  sim::Rng rng(9);
  std::uint32_t v = 0;
  sim::Ms now = 0.0;
  for (auto _ : state) {
    const cdn::ChunkKey key{v++ % kVideos, 0, 1'500};
    now += 4.0;
    benchmark::DoNotOptimize(
        server.serve_isolated(key, 1 << 20, now, rng, warm, session, stats));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeIsolatedRamHit);

void BM_CollectorSampleTransfer(benchmark::State& state) {
  telemetry::Collector collector(500.0);
  collector.reserve(4, 1 << 16);
  std::vector<net::RoundSample> rounds(24);
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    rounds[i].at_ms = 40.0 * static_cast<double>(i + 1);
    rounds[i].info.srtt_ms = 42.0;
    rounds[i].info.cwnd_segments = 64;
  }
  sim::Ms at = 0.0;
  std::uint32_t chunk = 0;
  for (auto _ : state) {
    collector.sample_transfer(1, chunk++, at, rounds);
    at += 1'000.0;
    if (collector.data().tcp_snapshots.size() > (1u << 16) - 8) {
      state.PauseTiming();
      (void)collector.take();
      collector.reserve(4, 1 << 16);
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CollectorSampleTransfer);

/// Synthetic N-session dataset shared by the join and export benches.
telemetry::Dataset make_bench_dataset(std::size_t sessions,
                                      std::size_t chunks_per_session) {
  telemetry::Dataset data;
  sim::Rng rng(5);
  for (std::size_t s = 1; s <= sessions; ++s) {
    telemetry::PlayerSessionRecord ps;
    ps.session_id = s;
    ps.client_ip = static_cast<std::uint32_t>(0x0A000000 + s);
    ps.user_agent = "Mozilla/5.0 (bench)";
    ps.video_duration_s = 600.0;
    data.player_sessions.push_back(ps);
    telemetry::CdnSessionRecord cs;
    cs.session_id = s;
    cs.observed_ip = ps.client_ip;
    cs.observed_user_agent = ps.user_agent;
    cs.org = "bench-isp";
    cs.city = "bench-city";
    cs.country = "BC";
    data.cdn_sessions.push_back(cs);
    for (std::size_t c = 0; c < chunks_per_session; ++c) {
      telemetry::PlayerChunkRecord pc;
      pc.session_id = s;
      pc.chunk_id = static_cast<std::uint32_t>(c);
      pc.request_sent_ms = 4'000.0 * static_cast<double>(c);
      pc.dfb_ms = rng.lognormal_median(80.0, 0.4);
      pc.dlb_ms = rng.lognormal_median(2'500.0, 0.3);
      pc.bitrate_kbps = 3'000;
      pc.avg_fps = 59.94;
      data.player_chunks.push_back(pc);
      telemetry::CdnChunkRecord cc;
      cc.session_id = s;
      cc.chunk_id = pc.chunk_id;
      cc.dread_ms = 1.5;
      cc.cache_level = cdn::CacheLevel::kRam;
      cc.chunk_bytes = 1'125'000;
      data.cdn_chunks.push_back(cc);
      telemetry::TcpSnapshotRecord snap;
      snap.session_id = s;
      snap.chunk_id = pc.chunk_id;
      snap.at_ms = pc.request_sent_ms + pc.dfb_ms;
      snap.info.srtt_ms = 50.0;
      snap.info.cwnd_segments = 40;
      snap.info.mss_bytes = 1'460;
      snap.info.segments_out = 800 * (c + 1);
      data.tcp_snapshots.push_back(snap);
    }
  }
  return data;
}

void BM_FailpointDisarmedEvaluate(benchmark::State& state) {
  // The production cost of the failpoint instrumentation: one relaxed
  // atomic load per disarmed site evaluation (failpoints/failpoint.h).
  failpoints::Registry::instance().disarm_all();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        failpoints::should_fail(failpoints::Site::kSpillWrite));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FailpointDisarmedEvaluate);

void BM_JoinDataset(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));
  const telemetry::Dataset data = make_bench_dataset(sessions, 32);
  for (auto _ : state) {
    const auto joined = telemetry::JoinedDataset::build(data);
    benchmark::DoNotOptimize(joined.sessions().size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(sessions));
}
BENCHMARK(BM_JoinDataset)->Arg(64);

void BM_ExportCsv(benchmark::State& state) {
  const auto sessions = static_cast<std::size_t>(state.range(0));
  const telemetry::Dataset data = make_bench_dataset(sessions, 32);
  const std::size_t rows = data.player_sessions.size() +
                           data.cdn_sessions.size() +
                           data.player_chunks.size() + data.cdn_chunks.size() +
                           data.tcp_snapshots.size();
  std::ostringstream out;
  for (auto _ : state) {
    out.str(std::string());
    telemetry::write_player_sessions_csv(out, data.player_sessions);
    telemetry::write_cdn_sessions_csv(out, data.cdn_sessions);
    telemetry::write_player_chunks_csv(out, data.player_chunks);
    telemetry::write_cdn_chunks_csv(out, data.cdn_chunks);
    telemetry::write_tcp_snapshots_csv(out, data.tcp_snapshots);
    benchmark::DoNotOptimize(out.tellp());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(rows));
}
BENCHMARK(BM_ExportCsv)->Arg(64);

/// Console reporter that also captures every run for the JSON emitter.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) captured_.push_back(run);
  }

  /// Per-benchmark rate metrics: items/s where SetItemsProcessed was
  /// called, plain iterations/s otherwise.
  std::vector<bench::JsonMetric> metrics() const {
    std::vector<bench::JsonMetric> out;
    for (const Run& run : captured_) {
      if (run.iterations == 0 || run.real_accumulated_time <= 0.0) continue;
      bench::JsonMetric metric;
      metric.name = sanitized(run.benchmark_name());
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        metric.value = items->second;
        metric.unit = "items/s";
      } else {
        metric.value = static_cast<double>(run.iterations) /
                       run.real_accumulated_time;
        metric.unit = "iterations/s";
      }
      out.push_back(std::move(metric));
    }
    return out;
  }

 private:
  static std::string sanitized(std::string name) {
    for (char& c : name) {
      if (c == '/' || c == ':' || c == '.') c = '_';
    }
    return name;
  }

  std::vector<Run> captured_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  // End-to-end throughput: the paper workload through the sharded engine
  // (single shard unless VSTREAM_SHARDS overrides), wall-clock timed.
  // VSTREAM_BENCH_SESSIONS overrides the session count as usual.
  const std::size_t sessions = bench::bench_session_count(300);
  const auto start = std::chrono::steady_clock::now();
  {
    const bench::BenchRun run = bench::run_paper_workload(sessions);
    benchmark::DoNotOptimize(run.result.dataset.player_chunks.size());
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Armed-but-never-firing rerun: every site armed with a fire point the
  // run cannot reach, so each evaluation takes the full armed path (site
  // lock + trigger check) instead of the disarmed relaxed load.  The
  // relative slowdown is therefore an *upper bound* on the disarmed
  // instrumentation overhead — negative values are measurement noise.
  {
    failpoints::Registry::instance().arm(
        "spill.write=error@once:1099511627776,"
        "spill.flush=error@once:1099511627776,"
        "checkpoint.write=error@once:1099511627776,"
        "checkpoint.rename=error@once:1099511627776,"
        "export.open=error@once:1099511627776,"
        "export.write=error@once:1099511627776,"
        "runtime.task_stall=error@once:1099511627776");
  }
  const auto armed_start = std::chrono::steady_clock::now();
  {
    const bench::BenchRun run = bench::run_paper_workload(sessions);
    benchmark::DoNotOptimize(run.result.dataset.player_chunks.size());
  }
  const double armed_elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    armed_start)
          .count();
  failpoints::Registry::instance().disarm_all();
  const double overhead_pct = (armed_elapsed_s / elapsed_s - 1.0) * 100.0;

  std::vector<bench::JsonMetric> metrics = reporter.metrics();
  metrics.push_back({"end_to_end_sessions_per_s",
                     static_cast<double>(sessions) / elapsed_s, "sessions/s"});
  metrics.push_back({"failpoint_overhead_pct", overhead_pct, "pct"});
  bench::emit_json("BENCH_hotpaths.json", "hotpaths", metrics);
  std::printf("failpoint_overhead_pct: %.3f (armed-never-fire vs disarmed)\n",
              overhead_pct);
  std::printf("end_to_end: %zu sessions in %.3f s (%.1f sessions/s)\n",
              sessions, elapsed_s,
              static_cast<double>(sessions) / elapsed_s);
  std::printf("wrote BENCH_hotpaths.json (%zu metrics)\n",
              metrics.size());

  benchmark::Shutdown();
  return 0;
}
