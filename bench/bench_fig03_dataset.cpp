// Figure 3: dataset shape — (a) CCDF of video durations, (b) normalized
// rank vs normalized playback frequency (Zipf popularity).
#include "bench_common.h"

using namespace vstream;

int main() {
  sim::Rng rng(3);
  workload::CatalogConfig config = workload::paper_scenario().catalog;
  const workload::VideoCatalog catalog(config, rng);

  core::print_header("Figure 3a: CCDF of video durations (s)");
  std::vector<double> durations;
  durations.reserve(catalog.size());
  for (std::uint32_t id = 0; id < catalog.size(); ++id) {
    durations.push_back(catalog.video(id).duration_s);
  }
  core::print_cdf("fig3a_duration_ccdf", analysis::make_ccdf(durations, 40));
  core::print_paper_reference(
      "Fig 3a: durations span ~10 s to ~10^4 s with a heavy tail");

  core::print_header("Figure 3b: normalized rank vs normalized frequency");
  // One simulated "day" of playbacks.
  std::vector<std::uint64_t> plays(catalog.size(), 0);
  const std::size_t draws = 200'000;
  for (std::size_t i = 0; i < draws; ++i) ++plays[catalog.sample_video(rng)];
  const double n = static_cast<double>(catalog.size());
  for (std::size_t rank = 1; rank <= catalog.size(); rank *= 2) {
    std::printf("series fig3b: norm_rank=%.6f norm_freq=%.6f\n",
                static_cast<double>(rank) / n,
                static_cast<double>(plays[rank - 1]) / draws);
  }

  const double top10_share = catalog.popularity().share_of_top(
      static_cast<std::size_t>(0.10 * n));
  core::print_metric("top_10pct_playback_share", top10_share);
  core::print_paper_reference(
      "§3: top 10% of videos receive ~66% of all playbacks");
  return 0;
}
