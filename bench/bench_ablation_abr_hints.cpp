// Ablation (§4.2-1 and §4.3-1 take-aways): feed the ABR the paper's two
// a-priori hints and measure the QoE change.
//
//   1. Bad-prefix hint: a first measurement round identifies persistently
//      slow /24 prefixes; a second round starts those sessions at the
//      lowest rung ("start the streaming with a more conservative initial
//      bitrate").
//   2. Throughput-outlier exclusion: stack-buffered chunks report an
//      impossibly high instantaneous throughput; filtering them out of the
//      ABR's EWMA avoids over-shooting.
#include "analysis/qoe.h"
#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

std::unordered_set<net::Prefix24> discover_bad_prefixes(std::size_t sessions) {
  // Measurement round: plain run, then the Fig. 9 methodology.
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = sessions;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();
  const auto proxies = telemetry::detect_proxies(pipeline.dataset());
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);
  const analysis::TailPrefixStudy study =
      analysis::persistent_tail_prefixes(joined, 100.0, 4, 0.10);
  std::unordered_set<net::Prefix24> bad;
  for (const analysis::PrefixRollup& p : study.persistent_tail) {
    bad.insert(p.prefix);
  }
  return bad;
}

struct HintResult {
  double rebuffer_pct_bad_prefix = 0.0;
  double startup_ms_bad_prefix = 0.0;
  std::size_t bad_prefix_sessions = 0;
};

HintResult run_serving_round(const std::unordered_set<net::Prefix24>& bad,
                             bool use_hint) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count(1'500);
  scenario.seed += 1;  // serving round, different traffic
  scenario.abr = client::AbrKind::kRateBased;
  core::Pipeline pipeline(scenario);
  if (use_hint) pipeline.set_bad_prefixes(bad);
  pipeline.warm_caches();
  pipeline.run();
  const auto proxies = telemetry::detect_proxies(pipeline.dataset());
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);

  HintResult result;
  double rebuf = 0.0, startup = 0.0;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    const net::Prefix24 prefix = net::prefix24_of(s.player->client_ip);
    if (!bad.contains(prefix)) continue;
    ++result.bad_prefix_sessions;
    rebuf += s.rebuffer_rate_percent();
    startup += s.player->startup_ms;
  }
  if (result.bad_prefix_sessions > 0) {
    result.rebuffer_pct_bad_prefix =
        rebuf / static_cast<double>(result.bad_prefix_sessions);
    result.startup_ms_bad_prefix =
        startup / static_cast<double>(result.bad_prefix_sessions);
  }
  return result;
}

struct OutlierFilterResult {
  double overshoot_chunk_share = 0.0;  ///< chunks picked above sustainable rate
  double mean_rebuffer_pct = 0.0;
};

OutlierFilterResult run_outlier_round(bool filter) {
  // A population whose download stacks buffer often, so the ABR's
  // throughput signal is frequently corrupted.
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count(1'500);
  scenario.abr = client::AbrKind::kRateBased;
  scenario.abr_filters_throughput_outliers = filter;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();

  client::DownloadStackProfile noisy;
  noisy.anomaly_probability = 0.08;  // exaggerated for signal
  std::size_t overshoot = 0, chunks = 0;
  double rebuf = 0.0;
  const std::size_t sessions = 250;
  for (std::size_t i = 0; i < sessions; ++i) {
    core::SessionOverrides overrides;
    overrides.ds_profile = noisy;
    overrides.chunk_count = 20;
    overrides.bottleneck_kbps = 5'000.0;
    pipeline.run_session(overrides);
  }
  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    rebuf += s.rebuffer_rate_percent();
    for (const telemetry::JoinedChunk& c : s.chunks) {
      ++chunks;
      // Over-shoot: the ABR picked a rung the 5 Mbps pipe cannot sustain.
      if (c.player->bitrate_kbps > 5'000) ++overshoot;
    }
  }
  OutlierFilterResult result;
  result.overshoot_chunk_share =
      static_cast<double>(overshoot) / static_cast<double>(chunks);
  result.mean_rebuffer_pct = rebuf / static_cast<double>(joined.sessions().size());
  return result;
}

}  // namespace

int main() {
  core::print_header("Ablation 1: conservative start on known-bad prefixes");
  const auto bad = discover_bad_prefixes(bench::bench_session_count(1'500));
  core::print_metric("bad_prefixes_discovered", static_cast<double>(bad.size()));
  if (bad.empty()) {
    std::printf("no persistent-tail prefixes at this scale; rerun with "
                "VSTREAM_BENCH_SESSIONS=5000+\n");
  } else {
    core::Table out({"ABR start", "bad-prefix sessions", "startup ms",
                     "rebuffer %"});
    for (const bool hint : {false, true}) {
      const HintResult r = run_serving_round(bad, hint);
      out.add_row({hint ? "floor rung (hinted)" : "default",
                   std::to_string(r.bad_prefix_sessions),
                   core::fmt(r.startup_ms_bad_prefix, 0),
                   core::fmt(r.rebuffer_pct_bad_prefix, 3)});
    }
    out.print();
  }
  core::print_paper_reference(
      "§4.2-1 take-away: start known-problem prefixes at a conservative "
      "initial bitrate");

  core::print_header("Ablation 2: excluding stack-buffered throughput samples");
  core::Table out2({"EWMA policy", "overshoot chunk share", "mean rebuffer %"});
  for (const bool filter : {false, true}) {
    const OutlierFilterResult r = run_outlier_round(filter);
    out2.add_row({filter ? "outliers excluded" : "naive",
                  core::fmt(r.overshoot_chunk_share, 4),
                  core::fmt(r.mean_rebuffer_pct, 3)});
  }
  out2.print();
  core::print_paper_reference(
      "§4.3-1 take-away: rate-based ABRs should exclude DS-buffered "
      "outliers from their throughput estimates (over-shooting)");
  return 0;
}
