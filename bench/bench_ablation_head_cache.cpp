// Ablation (§4.3-3 / §4.1-2 take-aways): "cache the first chunk of every
// video ... to reduce the startup delay."  Compare startup-time tails with
// and without universally pinned video heads.
#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

struct HeadCacheStats {
  double startup_median_ms = 0.0;
  double startup_p95_ms = 0.0;
  double first_chunk_miss_pct = 0.0;
};

HeadCacheStats run_with(bool universal_head) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count(1'500);
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches(0.92, universal_head);
  pipeline.run();
  const auto proxies = telemetry::detect_proxies(pipeline.dataset());
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);

  std::vector<double> startup;
  std::size_t first_chunks = 0, first_misses = 0;
  std::unordered_map<std::uint64_t, double> startup_by_session;
  for (const auto& ps : pipeline.dataset().player_sessions) {
    startup_by_session[ps.session_id] = ps.startup_ms;
  }
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    startup.push_back(startup_by_session[s.session_id]);
    if (!s.chunks.empty() && s.chunks[0].cdn != nullptr) {
      ++first_chunks;
      if (!s.chunks[0].cdn->cache_hit()) ++first_misses;
    }
  }

  HeadCacheStats stats;
  const analysis::SummaryStats summary = analysis::summarize(std::move(startup));
  stats.startup_median_ms = summary.median;
  stats.startup_p95_ms = summary.p95;
  stats.first_chunk_miss_pct =
      first_chunks == 0 ? 0.0
                        : 100.0 * static_cast<double>(first_misses) /
                              static_cast<double>(first_chunks);
  return stats;
}

}  // namespace

int main() {
  core::print_header("Ablation: universally cached video heads");
  core::Table out({"warm policy", "first-chunk miss %", "startup median ms",
                   "startup p95 ms"});
  for (const bool universal : {false, true}) {
    const HeadCacheStats s = run_with(universal);
    out.add_row({universal ? "heads of ALL videos" : "steady-state LRU",
                 core::fmt(s.first_chunk_miss_pct, 2),
                 core::fmt(s.startup_median_ms, 0),
                 core::fmt(s.startup_p95_ms, 0)});
  }
  out.print();
  core::print_paper_reference(
      "§4.3-3 take-away: caching the first chunk of every video removes "
      "the server-side component from the startup tail");
  return 0;
}
