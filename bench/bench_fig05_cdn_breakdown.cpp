// Figure 5: CDF of the CDN latency components across chunks — D_wait,
// D_open, D_read — plus total server latency split by cache hit/miss.
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  std::vector<double> wait, open, read, total_hit, total_miss;
  for (const auto& c : run.dataset().cdn_chunks) {
    wait.push_back(c.dwait_ms);
    open.push_back(c.dopen_ms);
    read.push_back(c.dread_ms);
    (c.cache_hit() ? total_hit : total_miss).push_back(c.server_total_ms());
  }

  core::print_header("Figure 5: CDN latency breakdown (ms, CDFs)");
  core::print_cdf("fig5_wait", analysis::make_cdf(wait, 40));
  core::print_cdf("fig5_open", analysis::make_cdf(open, 40));
  core::print_cdf("fig5_read", analysis::make_cdf(read, 40));
  core::print_cdf("fig5_total_hit", analysis::make_cdf(total_hit, 40));
  core::print_cdf("fig5_total_miss", analysis::make_cdf(total_miss, 40));

  core::print_metric("wait_below_1ms_share", analysis::cdf_at(wait, 1.0));
  core::print_metric("read_below_10ms_share", analysis::cdf_at(read, 10.0));
  core::print_metric("hit_median_ms", analysis::summarize(total_hit).median);
  if (!total_miss.empty()) {
    const analysis::SummaryStats miss = analysis::summarize(total_miss);
    core::print_metric("miss_median_ms", miss.median);
    core::print_metric("miss_p95_ms", miss.p95);
    core::print_metric("miss_over_hit_median_ratio",
                       miss.median / analysis::summarize(total_hit).median);
  }
  core::print_paper_reference(
      "Fig 5 / §4.1-1: D_wait < 1 ms for most chunks; D_read bimodal with a "
      "~10 ms step (ATS open-read-retry); hit median ~2 ms, miss median "
      "~80 ms (~40x); retry timer affects ~35% of chunks");
  const double retry_share =
      1.0 - analysis::cdf_at(read, 10.0);  // reads behind the retry timer
  core::print_metric("retry_timer_share", retry_share);
  return 0;
}
