// Figure 10: CDF of latency variability per (prefix, PoP) path — the
// coefficient of variation of session-average SRTT.
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  const std::vector<double> cvs = analysis::path_cv_values(run.joined, 3);

  core::print_header("Figure 10: CV of latency per (prefix, PoP) path");
  core::print_cdf("fig10_path_cv", analysis::make_cdf(cvs, 40));
  core::print_metric("paths", static_cast<double>(cvs.size()));
  std::size_t high = 0;
  for (const double cv : cvs) {
    if (cv > 1.0) ++high;
  }
  core::print_metric("share_cv_above_1",
                     cvs.empty() ? 0.0
                                 : static_cast<double>(high) /
                                       static_cast<double>(cvs.size()));
  core::print_paper_reference(
      "Fig 10: ~40% of (prefix, PoP) paths have CV(srtt) > 1 across their "
      "sessions");
  return 0;
}
