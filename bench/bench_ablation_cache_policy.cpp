// Ablation (§4.1-1 take-away): replace ATS's LRU with perfect-LFU or
// GD-Size and measure steady-state hit rates on the same session workload.
//
// One edge server under sustained churn: caches far smaller than the
// working set, a long warm-up phase (not measured) so compulsory misses
// wash out, then a measured phase where every retained byte is a choice
// the eviction policy made.
#include "bench_common.h"

using namespace vstream;

namespace {

struct PolicyResult {
  double ram_hit = 0.0;
  double disk_hit = 0.0;
  double miss = 0.0;
  double hit_median_ms = 0.0;
  double p95_total_ms = 0.0;
};

PolicyResult drive(cdn::PolicyKind policy, std::size_t sessions) {
  cdn::AtsConfig config;
  config.policy = policy;
  config.ram_bytes = 1ull << 30;
  config.disk_bytes = 12ull << 30;
  cdn::AtsServer server(config, cdn::BackendConfig{});

  sim::Rng rng(41);
  workload::CatalogConfig catalog_config;
  catalog_config.video_count = 2'500;
  const workload::VideoCatalog catalog(catalog_config, rng);
  workload::PopulationConfig pop_config;
  pop_config.prefix_count = 100;
  const workload::Population population(pop_config, rng);
  workload::SessionGenerator generator({}, catalog, population);

  const std::size_t warmup = sessions / 2;
  std::uint64_t ram0 = 0, disk0 = 0, miss0 = 0, req0 = 0;
  std::vector<double> hit_latency, all_latency;

  for (std::size_t i = 0; i < sessions; ++i) {
    const workload::SessionSpec spec = generator.next(rng);
    if (i == warmup) {
      ram0 = server.ram_hits();
      disk0 = server.disk_hits();
      miss0 = server.misses();
      req0 = server.requests_served();
    }
    // Mixed bitrates (clients differ): object sizes vary 20x, which is
    // exactly the regime where GD-Size's size-awareness matters.
    const auto ladder = client::default_bitrate_ladder();
    const std::uint32_t bitrate =
        ladder[spec.session_id % ladder.size()];
    for (std::uint32_t c = 0; c < spec.chunk_count; ++c) {
      const cdn::ServeResult r = server.serve(
          cdn::ChunkKey{spec.video_id, c, bitrate},
          cdn::chunk_bytes(bitrate, catalog.chunk_duration_s()),
          spec.start_time_ms, rng);
      if (i >= warmup) {
        all_latency.push_back(r.total_ms());
        if (r.cache_hit()) hit_latency.push_back(r.total_ms());
      }
    }
  }

  PolicyResult result;
  const double n = static_cast<double>(server.requests_served() - req0);
  result.ram_hit = static_cast<double>(server.ram_hits() - ram0) / n;
  result.disk_hit = static_cast<double>(server.disk_hits() - disk0) / n;
  result.miss = static_cast<double>(server.misses() - miss0) / n;
  result.hit_median_ms = analysis::summarize(hit_latency).median;
  result.p95_total_ms = analysis::summarize(all_latency).p95;
  return result;
}

}  // namespace

int main() {
  const std::size_t sessions = bench::bench_session_count(6'000);

  core::print_header(
      "Ablation: cache eviction policy (one server, steady-state phase)");
  core::Table out({"policy", "ram-hit", "disk-hit", "miss", "hit median ms",
                   "p95 total ms"});
  for (const cdn::PolicyKind policy :
       {cdn::PolicyKind::kLru, cdn::PolicyKind::kPerfectLfu,
        cdn::PolicyKind::kGdSize}) {
    const PolicyResult r = drive(policy, sessions);
    out.add_row({cdn::to_string(policy),
                 core::fmt(100.0 * r.ram_hit, 2) + "%",
                 core::fmt(100.0 * r.disk_hit, 2) + "%",
                 core::fmt(100.0 * r.miss, 2) + "%",
                 core::fmt(r.hit_median_ms, 2),
                 core::fmt(r.p95_total_ms, 2)});
  }
  out.print();
  core::print_paper_reference(
      "§4.1-1 take-away: GD-size or perfect-LFU should beat LRU's hit rate "
      "on popularity-heavy workloads (Breslau et al.)");
  return 0;
}
