// Figure 7: startup delay vs the SRTT context of the first chunk, binned
// with average/median/IQR.
#include <unordered_map>

#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  std::unordered_map<std::uint64_t, double> startup;
  for (const auto& s : run.dataset().player_sessions) {
    startup[s.session_id] = s.startup_ms;
  }

  std::vector<double> srtt_ms, startup_s;
  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    const analysis::SessionNetMetrics m = analysis::session_net_metrics(s);
    if (!m.valid || m.first_chunk_srtt_ms <= 0.0) continue;
    srtt_ms.push_back(m.first_chunk_srtt_ms);
    startup_s.push_back(startup[s.session_id] / 1'000.0);
  }

  core::print_header("Figure 7: startup time (s) vs first-chunk SRTT (ms)");
  core::print_bins("fig7_startup_vs_srtt",
                   analysis::bin_series(srtt_ms, startup_s, 0.0, 600.0, 50.0));
  core::print_metric("correlation", analysis::pearson(srtt_ms, startup_s));
  core::print_paper_reference(
      "Fig 7: startup grows roughly linearly with first-chunk SRTT, from "
      "~0.7 s near 0 ms to ~2.5 s at 500+ ms");
  return 0;
}
