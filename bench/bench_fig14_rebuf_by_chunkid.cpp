// Figure 14: P(re-buffering at chunk X) and P(re-buffering at chunk X |
// loss at chunk X) — losses on early chunks hurt far more.
#include <map>

#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  struct Tally {
    std::size_t chunks = 0;
    std::size_t rebuf = 0;
    std::size_t with_loss = 0;
    std::size_t rebuf_given_loss = 0;
  };
  std::map<std::uint32_t, Tally> by_id;

  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    for (const telemetry::JoinedChunk& c : s.chunks) {
      Tally& t = by_id[c.player->chunk_id];
      ++t.chunks;
      const bool rebuf = c.player->rebuffer_count > 0;
      const bool loss = c.retransmissions > 0;
      if (rebuf) ++t.rebuf;
      if (loss) {
        ++t.with_loss;
        if (rebuf) ++t.rebuf_given_loss;
      }
    }
  }

  core::print_header(
      "Figure 14: re-buffering probability per chunk id, unconditional and "
      "conditioned on loss");
  for (const auto& [id, t] : by_id) {
    if (id > 20 || t.chunks < 100) continue;
    const double p = 100.0 * static_cast<double>(t.rebuf) /
                     static_cast<double>(t.chunks);
    const double p_given_loss =
        t.with_loss == 0 ? 0.0
                         : 100.0 * static_cast<double>(t.rebuf_given_loss) /
                               static_cast<double>(t.with_loss);
    std::printf(
        "series fig14: chunk=%u p_rebuf=%.2f p_rebuf_given_loss=%.2f n=%zu "
        "n_loss=%zu\n",
        id, p, p_given_loss, t.chunks, t.with_loss);
  }
  core::print_paper_reference(
      "Fig 14: loss at a chunk raises its re-buffering probability at every "
      "position, most dramatically at chunk 0 (~4-5% vs ~1% baseline)");
  return 0;
}
