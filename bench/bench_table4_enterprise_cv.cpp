// Table 4: organizations with the highest share of sessions whose
// CV(SRTT) > 1 — enterprises dominate; residential ISPs sit near 1%.
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  const std::vector<analysis::OrgCvRow> table =
      analysis::org_cv_table(run.joined, /*min_sessions=*/50);

  core::print_header("Table 4: orgs by share of sessions with CV(SRTT) > 1");
  core::Table out({"org", "access", "CV>1 sessions", "all sessions", "share"});
  for (const analysis::OrgCvRow& row : table) {
    out.add_row({row.org, net::to_string(row.access),
                 std::to_string(row.high_cv_sessions),
                 std::to_string(row.total_sessions),
                 core::fmt(row.percent(), 1) + "%"});
  }
  out.print();

  double enterprise_best = 0.0, residential_sum = 0.0;
  std::size_t residential_rows = 0;
  for (const analysis::OrgCvRow& row : table) {
    if (row.access == net::AccessType::kEnterprise) {
      enterprise_best = std::max(enterprise_best, row.percent());
    } else if (row.access == net::AccessType::kResidential) {
      residential_sum += row.percent();
      ++residential_rows;
    }
  }
  core::print_metric("top_enterprise_share_pct", enterprise_best);
  if (residential_rows > 0) {
    core::print_metric("mean_residential_share_pct",
                       residential_sum / static_cast<double>(residential_rows));
  }
  core::print_paper_reference(
      "Table 4: top organizations are enterprises at ~40-43% of sessions "
      "with CV > 1; major residential ISPs sit near ~1%");
  return 0;
}
