// Figure 19: percentage of dropped frames vs the chunk's download rate in
// seconds-of-video per second, with the 1.5 s/s rule-of-thumb, plus the
// §4.4-1 hypothesis accounting.
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();
  const double tau = run.catalog().chunk_duration_s();

  std::vector<double> rate, dropped_pct;
  std::size_t confirm = 0, hidden_by_buffer = 0, cpu_limited = 0, total = 0;
  for (const auto& c : run.dataset().player_chunks) {
    if (!c.visible || c.total_frames == 0) continue;
    const double r = c.download_rate(tau);
    const double d = 100.0 * c.dropped_frames / c.total_frames;
    rate.push_back(std::min(r, 4.999));
    dropped_pct.push_back(d);
    // §4.4-1 accounting: does the 1.5 s/s rule explain this chunk?
    ++total;
    const bool bad_rate = r < 1.5;
    const bool bad_frames = d > 30.0;
    if (bad_rate == bad_frames) {
      ++confirm;
    } else if (bad_rate) {
      ++hidden_by_buffer;  // low rate, good rendering
    } else {
      ++cpu_limited;  // good rate, bad rendering
    }
  }

  core::print_header("Figure 19: dropped frames (%) vs download rate (s/s)");
  core::print_bins("fig19_dropped_vs_rate",
                   analysis::bin_series(rate, dropped_pct, 0.0, 5.0, 0.5));
  core::print_metric("hypothesis_confirmed_share",
                     static_cast<double>(confirm) / static_cast<double>(total));
  core::print_metric("low_rate_good_rendering_share",
                     static_cast<double>(hidden_by_buffer) /
                         static_cast<double>(total));
  core::print_metric("good_rate_bad_rendering_share",
                     static_cast<double>(cpu_limited) /
                         static_cast<double>(total));
  core::print_paper_reference(
      "Fig 19 / §4.4-1: drops fall steeply up to ~1.5 s/s and flatten "
      "beyond; 85.5% of chunks confirm the rule, 5.7% are saved by the "
      "buffer, 6.9% drop frames despite fast arrival (CPU)");
  return 0;
}
