// Ablation (§4.2-3 take-away): server-side pacing [19] vs unpaced slow
// start — first-chunk retransmissions and re-buffering.
#include <map>

#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

struct PacingStats {
  double chunk0_retx_pct = 0.0;
  double later_retx_pct = 0.0;
  double no_loss_session_share = 0.0;
  double mean_rebuffer_pct = 0.0;
};

PacingStats run_with(bool pacing) {
  workload::Scenario scenario = workload::paper_scenario();
  scenario.session_count = bench::bench_session_count(1'500);
  scenario.tcp.pacing = pacing;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();
  const auto proxies = telemetry::detect_proxies(pipeline.dataset());
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);

  PacingStats stats;
  double c0_sum = 0.0, later_sum = 0.0, rebuf_sum = 0.0;
  std::size_t c0_n = 0, later_n = 0, clean = 0;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    if (!s.has_loss()) ++clean;
    rebuf_sum += s.rebuffer_rate_percent();
    for (const telemetry::JoinedChunk& c : s.chunks) {
      if (c.segments == 0) continue;
      if (c.player->chunk_id == 0) {
        c0_sum += 100.0 * c.retx_rate();
        ++c0_n;
      } else if (c.player->chunk_id <= 10) {
        later_sum += 100.0 * c.retx_rate();
        ++later_n;
      }
    }
  }
  const double sessions = static_cast<double>(joined.sessions().size());
  stats.chunk0_retx_pct = c0_sum / static_cast<double>(c0_n);
  stats.later_retx_pct = later_sum / static_cast<double>(later_n);
  stats.no_loss_session_share = static_cast<double>(clean) / sessions;
  stats.mean_rebuffer_pct = rebuf_sum / sessions;
  return stats;
}

}  // namespace

int main() {
  core::print_header("Ablation: server-side pacing (Trickle-style)");
  core::Table out({"sender", "chunk-0 retx %", "chunks 1-10 retx %",
                   "no-loss sessions", "mean rebuffer %"});
  for (const bool pacing : {false, true}) {
    const PacingStats s = run_with(pacing);
    out.add_row({pacing ? "paced" : "unpaced",
                 core::fmt(s.chunk0_retx_pct, 3),
                 core::fmt(s.later_retx_pct, 3),
                 core::fmt(100.0 * s.no_loss_session_share, 1) + "%",
                 core::fmt(s.mean_rebuffer_pct, 3)});
  }
  out.print();
  core::print_paper_reference(
      "§4.2-3 take-away: pacing removes the slow-start burst, collapsing "
      "first-chunk retransmissions and improving early-session QoE");
  return 0;
}
