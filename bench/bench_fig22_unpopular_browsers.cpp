// Figure 22: dropped-frame percentage of the unpopular browsers (plus
// Safari on Windows) among well-downloaded, visible chunks (rate >= 1.5 s/s,
// vis = true), compared with the mainstream average.
#include <map>

#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();
  const double tau = run.catalog().chunk_duration_s();

  std::map<std::string, std::pair<double, double>> tallies;  // dropped, frames
  double rest_dropped = 0.0, rest_frames = 0.0;

  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    const std::string& ua = s.player->user_agent;
    const bool spotlight = ua.find("Yandex") != std::string::npos ||
                           ua.find("Vivaldi") != std::string::npos ||
                           ua.find("Opera") != std::string::npos ||
                           ua.find("SeaMonkey") != std::string::npos ||
                           ua == "Safari/Windows";
    for (const telemetry::JoinedChunk& c : s.chunks) {
      if (!c.player->visible || c.player->total_frames == 0) continue;
      if (c.player->download_rate(tau) < 1.5) continue;  // the paper's filter
      if (spotlight) {
        auto& [dropped, frames] = tallies[ua];
        dropped += c.player->dropped_frames;
        frames += c.player->total_frames;
      } else {
        rest_dropped += c.player->dropped_frames;
        rest_frames += c.player->total_frames;
      }
    }
  }

  core::print_header(
      "Figure 22: dropped % of unpopular (browser, OS), rate >= 1.5, visible");
  core::Table out({"platform", "dropped %", "frames"});
  for (const auto& [ua, tally] : tallies) {
    if (tally.second < 5'000) continue;  // paper: >= 500 chunks processed
    out.add_row({ua, core::fmt(100.0 * tally.first / tally.second, 2),
                 core::fmt(tally.second, 0)});
  }
  out.add_row({"Average in the rest",
               core::fmt(100.0 * rest_dropped / rest_frames, 2),
               core::fmt(rest_frames, 0)});
  out.print();
  core::print_paper_reference(
      "Fig 22: Yandex/Vivaldi/Opera/Safari-on-Windows drop ~15-40% of "
      "frames vs a low single-digit average for the rest");
  return 0;
}
