// Figure 9: mean geographic distance of persistently tail-latency US /24
// prefixes from their CDN servers, plus the US/non-US split of the
// persistent-tail population (§4.2-1).
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  const analysis::TailPrefixStudy study = analysis::persistent_tail_prefixes(
      run.joined, /*threshold_ms=*/100.0, /*epochs=*/4,
      /*persistence_fraction=*/0.10);

  core::print_header("Figure 9: persistent tail-latency prefixes");
  core::print_metric("total_prefixes",
                     static_cast<double>(study.total_prefix_count));
  core::print_metric("ever_in_tail",
                     static_cast<double>(study.tail_prefix_count));
  core::print_metric("persistent_tail",
                     static_cast<double>(study.persistent_tail.size()));
  core::print_metric("non_us_share", study.non_us_share);

  std::vector<double> us_distances;
  std::size_t us_enterprise = 0, us_total = 0;
  for (const analysis::PrefixRollup& p : study.persistent_tail) {
    if (p.country != "US") continue;
    ++us_total;
    us_distances.push_back(p.distance_km);
    if (p.access == net::AccessType::kEnterprise) ++us_enterprise;
  }
  if (!us_distances.empty()) {
    core::print_cdf("fig9_us_tail_distance_km",
                    analysis::make_cdf(us_distances, 30));
    core::print_metric("us_tail_enterprise_share",
                       static_cast<double>(us_enterprise) /
                           static_cast<double>(us_total));
  }
  core::print_paper_reference(
      "§4.2-1 / Fig 9: ~75% of persistent-tail prefixes are outside the US; "
      "among US tail prefixes close to CDN nodes, ~90% are enterprises, not "
      "residential ISPs");
  return 0;
}
