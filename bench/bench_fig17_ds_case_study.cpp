// Figure 17: the download-stack case study — one session where the stack
// holds a chunk: (a) D_FB and its server/network constituents per chunk,
// (b) the connection's Eq. 3 throughput vs the player-observed
// instantaneous throughput.  The detector (Eq. 4) must point at the chunk.
#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

int main() {
  // The paper shows one clean example session (chunk 7 held by the stack);
  // we pick ours the same way — retry seeds until the injection process
  // produced exactly one mid-session anomaly.
  std::unique_ptr<core::Pipeline> pipeline;
  for (std::uint64_t seed = 1717;; ++seed) {
    workload::Scenario scenario = workload::test_scenario();
    scenario.session_count = 0;
    scenario.seed = seed;
    pipeline = std::make_unique<core::Pipeline>(scenario);
    pipeline->warm_caches();

    client::DownloadStackProfile profile;
    profile.anomaly_probability = 0.05;
    core::SessionOverrides overrides;
    overrides.chunk_count = 22;
    overrides.abr = client::AbrKind::kFixed;
    overrides.fixed_bitrate_kbps = 2'500;
    overrides.ds_profile = profile;
    const std::uint64_t id = pipeline->run_session(overrides);

    const auto& truth = pipeline->ground_truth().ds_anomalies;
    const auto it = truth.find(id);
    if (it != truth.end() && it->second.size() == 1 && it->second[0] >= 2 &&
        it->second[0] <= 19) {
      break;
    }
  }

  const auto joined = telemetry::JoinedDataset::build(pipeline->dataset());
  const telemetry::JoinedSession& s = joined.sessions().front();

  core::print_header("Figure 17a: D_FB and constituents per chunk (ms)");
  for (const telemetry::JoinedChunk& c : s.chunks) {
    std::printf(
        "series fig17a: chunk=%u dfb=%.0f server=%.1f srtt=%.1f\n",
        c.player->chunk_id, c.player->dfb_ms, c.cdn->server_total_ms(),
        c.last_snapshot != nullptr ? c.last_snapshot->info.srtt_ms : 0.0);
  }

  core::print_header(
      "Figure 17b: connection TP (Eq. 3) vs instantaneous download TP (Mbps)");
  for (const telemetry::JoinedChunk& c : s.chunks) {
    const double tp_inst = analysis::instantaneous_throughput_kbps(
        c.cdn->chunk_bytes, c.player->dlb_ms);
    const double tp_conn =
        c.last_snapshot != nullptr
            ? c.last_snapshot->info.throughput_estimate_kbps()
            : 0.0;
    std::printf("series fig17b: chunk=%u conn_tp=%.2f download_tp=%.2f\n",
                c.player->chunk_id, tp_conn / 1'000.0, tp_inst / 1'000.0);
  }

  const analysis::DsOutlierResult verdict = analysis::detect_ds_outliers(s);
  std::printf("\n");
  core::print_metric("detector_flagged", static_cast<double>(verdict.flagged_count));
  for (std::size_t i = 0; i < verdict.flagged.size(); ++i) {
    if (verdict.flagged[i]) {
      core::print_metric("flagged_chunk", static_cast<double>(i));
    }
  }
  for (const auto& [sid, chunks] : pipeline->ground_truth().ds_anomalies) {
    for (const std::uint32_t c : chunks) {
      core::print_metric("ground_truth_chunk", static_cast<double>(c));
    }
  }
  core::print_paper_reference(
      "Fig 17: the held chunk shows a D_FB spike not explained by server or "
      "SRTT, and an instantaneous throughput far above the connection's "
      "Eq. 3 estimate; Eq. 4 localizes it to the client stack");
  return 0;
}
