// Figure 11: sessions with vs without loss — (a) CDF of session length in
// chunks, (b) CDF of average bitrate, (c) CCDF of re-buffering rate.
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  std::vector<double> len_loss, len_clean, rate_loss, rate_clean,
      rebuf_loss, rebuf_clean;
  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    const bool loss = s.has_loss();
    (loss ? len_loss : len_clean).push_back(static_cast<double>(s.chunks.size()));
    (loss ? rate_loss : rate_clean).push_back(s.avg_bitrate_kbps());
    (loss ? rebuf_loss : rebuf_clean).push_back(s.rebuffer_rate_percent());
  }

  const double total =
      static_cast<double>(len_loss.size() + len_clean.size());
  core::print_metric("share_without_loss",
                     static_cast<double>(len_clean.size()) / total);
  core::print_paper_reference("§4.2-3: ~40% of sessions experience no loss; "
                              ">90% have retx rate below 10%");

  core::print_header("Figure 11a: session length CDF (chunks)");
  core::print_cdf("fig11a_len_loss", analysis::make_cdf(len_loss, 25));
  core::print_cdf("fig11a_len_noloss", analysis::make_cdf(len_clean, 25));

  core::print_header("Figure 11b: average bitrate CDF (kbps)");
  core::print_cdf("fig11b_rate_loss", analysis::make_cdf(rate_loss, 25));
  core::print_cdf("fig11b_rate_noloss", analysis::make_cdf(rate_clean, 25));

  core::print_header("Figure 11c: re-buffering rate CCDF (%)");
  core::print_cdf("fig11c_rebuf_loss", analysis::make_ccdf(rebuf_loss, 25));
  core::print_cdf("fig11c_rebuf_noloss", analysis::make_ccdf(rebuf_clean, 25));

  core::print_metric("mean_rebuf_loss_pct", analysis::mean_of(rebuf_loss));
  core::print_metric("mean_rebuf_noloss_pct", analysis::mean_of(rebuf_clean));
  core::print_paper_reference(
      "Fig 11: length and bitrate distributions are similar between the two "
      "groups, but sessions with loss re-buffer significantly more");
  return 0;
}
