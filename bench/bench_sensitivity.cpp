// Sensitivity analysis: how robust are the headline findings to the
// workload parameters we had to assume?  The paper measured one service at
// one point in time; a reproduction should show which conclusions survive
// when the assumed knobs move.
#include "bench_common.h"
#include "core/pipeline.h"

using namespace vstream;

namespace {

struct Headlines {
  double miss_pct = 0.0;
  double conditional_miss = 0.0;
  double hit_median_ms = 0.0;
  double no_loss_share = 0.0;
  double chunk0_retx_pct = 0.0;
  double first_chunk_dfb_gap_ms = 0.0;
};

Headlines measure(const workload::Scenario& scenario) {
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();
  const auto proxies = telemetry::detect_proxies(pipeline.dataset());
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);

  Headlines h;
  double chunks = 0.0, misses = 0.0;
  std::vector<double> conditional, hit_latency, dfb_first, dfb_other;
  std::size_t clean = 0;
  double c0_retx = 0.0;
  std::size_t c0_n = 0;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    std::size_t session_misses = 0;
    if (!s.has_loss()) ++clean;
    for (const telemetry::JoinedChunk& c : s.chunks) {
      chunks += 1.0;
      if (!c.cdn->cache_hit()) {
        misses += 1.0;
        ++session_misses;
      } else {
        hit_latency.push_back(c.cdn->server_total_ms());
      }
      (c.player->chunk_id == 0 ? dfb_first : dfb_other)
          .push_back(c.player->dfb_ms);
      if (c.player->chunk_id == 0 && c.segments > 0) {
        c0_retx += 100.0 * c.retx_rate();
        ++c0_n;
      }
    }
    if (session_misses > 0) {
      conditional.push_back(static_cast<double>(session_misses) /
                            static_cast<double>(s.chunks.size()));
    }
  }
  h.miss_pct = 100.0 * misses / chunks;
  h.conditional_miss = analysis::mean_of(conditional);
  h.hit_median_ms = analysis::summarize(hit_latency).median;
  h.no_loss_share =
      static_cast<double>(clean) / static_cast<double>(joined.sessions().size());
  h.chunk0_retx_pct = c0_n == 0 ? 0.0 : c0_retx / static_cast<double>(c0_n);
  h.first_chunk_dfb_gap_ms = analysis::summarize(dfb_first).median -
                             analysis::summarize(dfb_other).median;
  return h;
}

void add_row(core::Table& out, const std::string& label, const Headlines& h) {
  out.add_row({label, core::fmt(h.miss_pct, 2),
               core::fmt(h.conditional_miss, 2),
               core::fmt(h.hit_median_ms, 2),
               core::fmt(100.0 * h.no_loss_share, 1) + "%",
               core::fmt(h.chunk0_retx_pct, 2),
               core::fmt(h.first_chunk_dfb_gap_ms, 0)});
}

}  // namespace

int main() {
  const std::size_t sessions = bench::bench_session_count(1'200);
  core::print_header("Sensitivity of the headline findings to workload knobs");
  core::Table out({"variant", "miss %", "cond. miss", "hit med ms",
                   "no-loss", "c0 retx %", "fig18 gap ms"});

  {
    workload::Scenario s = workload::paper_scenario();
    s.session_count = sessions;
    add_row(out, "baseline", measure(s));
  }
  for (const double alpha : {0.6, 1.0}) {
    workload::Scenario s = workload::paper_scenario();
    s.session_count = sessions;
    s.catalog.zipf_alpha = alpha;
    add_row(out, "zipf alpha " + core::fmt(alpha, 1), measure(s));
  }
  for (const double bw : {6'000.0, 25'000.0}) {
    workload::Scenario s = workload::paper_scenario();
    s.session_count = sessions;
    s.population.bandwidth_median_kbps = bw;
    add_row(out, "bw median " + core::fmt(bw / 1'000.0, 0) + " Mbps",
            measure(s));
  }
  {
    workload::Scenario s = workload::paper_scenario();
    s.session_count = sessions;
    s.catalog.video_count = 7'000;  // double the catalog, same disks
    add_row(out, "2x catalog", measure(s));
  }
  {
    workload::Scenario s = workload::paper_scenario();
    s.session_count = sessions;
    s.seed += 99;  // pure seed change
    add_row(out, "different seed", measure(s));
  }
  out.print();
  core::print_paper_reference(
      "robustness: the qualitative findings (conditional miss persistence, "
      "~2 ms hit latency, loss-free population, chunk-0 retx peak, the "
      "~300 ms first-chunk gap) should survive every variant; only the "
      "absolute miss rate tracks catalog-vs-disk sizing");
  return 0;
}
