// Figure 16: chunks split by performance score (Eq. 2, tau / (D_FB+D_LB)):
// (a) CDF of the latency share D_FB/(D_FB+D_LB), (b) CDF of D_FB,
// (c) CDF of D_LB — bad chunks are throughput-limited, not latency-limited.
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();
  const double tau = run.catalog().chunk_duration_s();

  std::vector<double> share_good, share_bad, dfb_good, dfb_bad, dlb_good,
      dlb_bad;
  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    for (const telemetry::JoinedChunk& c : s.chunks) {
      const double score =
          analysis::perf_score(tau, c.player->dfb_ms, c.player->dlb_ms);
      const bool good = score >= 1.0;
      const double share =
          c.player->dfb_ms / (c.player->dfb_ms + c.player->dlb_ms);
      (good ? share_good : share_bad).push_back(share);
      (good ? dfb_good : dfb_bad).push_back(c.player->dfb_ms);
      (good ? dlb_good : dlb_bad).push_back(c.player->dlb_ms);
    }
  }

  const double total = static_cast<double>(share_good.size() + share_bad.size());
  core::print_metric("bad_chunk_share",
                     static_cast<double>(share_bad.size()) / total);

  core::print_header("Figure 16a: latency share CDF by perfscore");
  core::print_cdf("fig16a_share_good", analysis::make_cdf(share_good, 30));
  core::print_cdf("fig16a_share_bad", analysis::make_cdf(share_bad, 30));

  core::print_header("Figure 16b: D_FB (ms) CDF by perfscore");
  core::print_cdf("fig16b_dfb_good", analysis::make_cdf(dfb_good, 30));
  core::print_cdf("fig16b_dfb_bad", analysis::make_cdf(dfb_bad, 30));

  core::print_header("Figure 16c: D_LB (ms) CDF by perfscore");
  core::print_cdf("fig16c_dlb_good", analysis::make_cdf(dlb_good, 30));
  core::print_cdf("fig16c_dlb_bad", analysis::make_cdf(dlb_bad, 30));

  core::print_metric("median_share_good", analysis::summarize(share_good).median);
  if (!share_bad.empty()) {
    core::print_metric("median_share_bad", analysis::summarize(share_bad).median);
    core::print_metric("median_dlb_bad_ms", analysis::summarize(dlb_bad).median);
    core::print_metric("median_dlb_good_ms", analysis::summarize(dlb_good).median);
  }
  core::print_paper_reference(
      "Fig 16: bad chunks have a lower latency share (throughput-dominated); "
      "their D_FB differs little from good chunks while D_LB differs by an "
      "order of magnitude — throughput, not latency, is the bottleneck");
  return 0;
}
