// §4.1-2/3: persistence of CDN problems within sessions and the
// load-performance paradox of cache-focused routing.
#include "bench_common.h"

using namespace vstream;

int main() {
  const bench::BenchRun run = bench::run_paper_workload();

  // --- persistence of cache misses and slow reads within sessions ---
  double all_chunks = 0.0, all_misses = 0.0;
  std::vector<double> miss_ratio_given_miss, slow_ratio_given_slow;
  for (const telemetry::JoinedSession& s : run.joined.sessions()) {
    std::size_t misses = 0, slow = 0;
    for (const telemetry::JoinedChunk& c : s.chunks) {
      if (c.cdn == nullptr) continue;
      if (!c.cdn->cache_hit()) ++misses;
      if (c.cdn->dread_ms > 10.0) ++slow;
    }
    all_chunks += static_cast<double>(s.chunks.size());
    all_misses += static_cast<double>(misses);
    if (misses > 0) {
      miss_ratio_given_miss.push_back(
          static_cast<double>(misses) / static_cast<double>(s.chunks.size()));
    }
    if (slow > 0) {
      slow_ratio_given_slow.push_back(
          static_cast<double>(slow) / static_cast<double>(s.chunks.size()));
    }
  }

  core::print_header("§4.1-2: persistence of server-side problems");
  core::print_metric("overall_miss_ratio", all_misses / all_chunks);
  core::print_metric("mean_miss_ratio_given_one_miss",
                     analysis::mean_of(miss_ratio_given_miss));
  core::print_metric("median_miss_ratio_given_one_miss",
                     analysis::summarize(miss_ratio_given_miss).median);
  core::print_metric("mean_slow_read_ratio_given_one_slow",
                     analysis::mean_of(slow_ratio_given_slow));
  core::print_paper_reference(
      "§4.1-2: average miss rate ~2%; sessions with >= 1 miss average ~60% "
      "misses (median 67%); sessions with one >10 ms read average ~60% slow "
      "reads");

  // --- load vs performance paradox (§4.1-3) ---
  core::print_header("§4.1-3: load vs performance across servers");
  const std::uint32_t servers_per_pop = run.scenario.fleet.servers_per_pop;
  std::vector<double> load, latency_proxy;
  for (std::uint32_t pop = 0; pop < run.scenario.fleet.pop_count; ++pop) {
    for (std::uint32_t idx = 0; idx < servers_per_pop; ++idx) {
      const cdn::ServerStats& server =
          run.server_stats()[pop * servers_per_pop + idx];
      if (server.requests_served < 100) continue;
      const double requests = static_cast<double>(server.requests_served);
      const double miss = server.miss_ratio();
      const double retry_share =
          static_cast<double>(server.disk_hits + server.misses) / requests;
      std::printf(
          "series paradox: pop=%u server=%u requests=%.0f miss_pct=%.2f "
          "retry_share=%.3f\n",
          pop, idx, requests, 100.0 * miss, retry_share);
      load.push_back(requests);
      latency_proxy.push_back(retry_share);
    }
  }
  core::print_metric("load_vs_slowread_correlation",
                     analysis::pearson(load, latency_proxy));
  core::print_paper_reference(
      "§4.1-3: busier servers serve the popular head from RAM, so load "
      "correlates NEGATIVELY with slow reads (cache-focused routing)");
  return 0;
}
