#include "cdn/cache.h"

#include <gtest/gtest.h>

namespace vstream::cdn {
namespace {

ChunkKey key(std::uint32_t v, std::uint32_t c = 0) { return ChunkKey{v, c, 1500}; }

TEST(CacheStoreTest, InsertAndContains) {
  CacheStore store(1'000, make_policy(PolicyKind::kLru));
  EXPECT_TRUE(store.insert(key(1), 400));
  EXPECT_TRUE(store.contains(key(1)));
  EXPECT_FALSE(store.contains(key(2)));
  EXPECT_EQ(store.used_bytes(), 400u);
  EXPECT_EQ(store.object_count(), 1u);
}

TEST(CacheStoreTest, EvictsWhenFull) {
  CacheStore store(1'000, make_policy(PolicyKind::kLru));
  store.insert(key(1), 400);
  store.insert(key(2), 400);
  store.insert(key(3), 400);  // evicts key(1)
  EXPECT_FALSE(store.contains(key(1)));
  EXPECT_TRUE(store.contains(key(2)));
  EXPECT_TRUE(store.contains(key(3)));
  EXPECT_LE(store.used_bytes(), 1'000u);
  EXPECT_EQ(store.eviction_count(), 1u);
}

TEST(CacheStoreTest, TouchProtectsFromEviction) {
  CacheStore store(1'000, make_policy(PolicyKind::kLru));
  store.insert(key(1), 400);
  store.insert(key(2), 400);
  store.touch(key(1));
  store.insert(key(3), 400);  // LRU victim is now key(2)
  EXPECT_TRUE(store.contains(key(1)));
  EXPECT_FALSE(store.contains(key(2)));
}

TEST(CacheStoreTest, OversizedObjectRejected) {
  CacheStore store(1'000, make_policy(PolicyKind::kLru));
  EXPECT_FALSE(store.insert(key(1), 2'000));
  EXPECT_FALSE(store.contains(key(1)));
  EXPECT_EQ(store.used_bytes(), 0u);
}

TEST(CacheStoreTest, DuplicateInsertIsAccess) {
  CacheStore store(1'000, make_policy(PolicyKind::kLru));
  store.insert(key(1), 400);
  store.insert(key(2), 400);
  EXPECT_TRUE(store.insert(key(1), 400));  // refresh, no size change
  EXPECT_EQ(store.used_bytes(), 800u);
  store.insert(key(3), 400);  // victim should be key(2)
  EXPECT_TRUE(store.contains(key(1)));
  EXPECT_FALSE(store.contains(key(2)));
}

TEST(CacheStoreTest, EraseFreesSpace) {
  CacheStore store(1'000, make_policy(PolicyKind::kLru));
  store.insert(key(1), 600);
  store.erase(key(1));
  EXPECT_FALSE(store.contains(key(1)));
  EXPECT_EQ(store.used_bytes(), 0u);
  store.erase(key(1));  // idempotent
}

TEST(CacheStoreTest, NullPolicyRejected) {
  EXPECT_THROW(CacheStore(100, nullptr), std::invalid_argument);
}

TEST(TwoLevelCacheTest, MissThenAdmitThenRamHit) {
  TwoLevelCache cache(10'000, 100'000, PolicyKind::kLru);
  EXPECT_EQ(cache.lookup(key(1), 500), CacheLevel::kMiss);
  cache.admit(key(1), 500);
  EXPECT_EQ(cache.lookup(key(1), 500), CacheLevel::kRam);
}

TEST(TwoLevelCacheTest, RamEvictionFallsBackToDisk) {
  // RAM holds 2 objects, disk holds everything: evicted-from-RAM objects
  // must still disk-hit and get promoted back.
  TwoLevelCache cache(1'000, 100'000, PolicyKind::kLru);
  cache.admit(key(1), 500);
  cache.admit(key(2), 500);
  cache.admit(key(3), 500);  // RAM evicts key(1)
  EXPECT_EQ(cache.lookup(key(1), 500), CacheLevel::kDisk);
  // Promotion: the second lookup is a RAM hit.
  EXPECT_EQ(cache.lookup(key(1), 500), CacheLevel::kRam);
}

TEST(TwoLevelCacheTest, DiskEvictionLosesObject) {
  TwoLevelCache cache(500, 1'000, PolicyKind::kLru);
  cache.admit(key(1), 500);
  cache.admit(key(2), 500);
  cache.admit(key(3), 500);  // disk evicts key(1)
  EXPECT_EQ(cache.lookup(key(1), 500), CacheLevel::kMiss);
}

TEST(TwoLevelCacheTest, LevelNames) {
  EXPECT_STREQ(to_string(CacheLevel::kRam), "ram-hit");
  EXPECT_STREQ(to_string(CacheLevel::kDisk), "disk-hit");
  EXPECT_STREQ(to_string(CacheLevel::kMiss), "miss");
}

// Property: used_bytes never exceeds capacity under random workloads, for
// every policy.
class CacheInvariantTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(CacheInvariantTest, CapacityNeverExceeded) {
  CacheStore store(10'000, make_policy(GetParam()));
  std::uint64_t state = 12345;
  for (int i = 0; i < 2'000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const std::uint32_t video = static_cast<std::uint32_t>(state >> 33) % 100;
    const std::uint64_t size = 100 + (state >> 20) % 2'000;
    store.insert(key(video), size);
    ASSERT_LE(store.used_bytes(), store.capacity_bytes());
  }
}

TEST_P(CacheInvariantTest, HotObjectSurvives) {
  // A small object touched on every step should never be evicted: it is
  // the most recent (LRU), the most frequent (LFU) and the highest
  // priority per byte (GD-Size).
  CacheStore store(10'000, make_policy(GetParam()));
  store.insert(key(999), 100);
  for (std::uint32_t i = 0; i < 500; ++i) {
    store.touch(key(999));
    store.insert(key(i), 2'000);
    ASSERT_TRUE(store.contains(key(999))) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CacheInvariantTest,
                         ::testing::Values(PolicyKind::kLru,
                                           PolicyKind::kPerfectLfu,
                                           PolicyKind::kGdSize));

}  // namespace
}  // namespace vstream::cdn
