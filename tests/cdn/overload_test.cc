// Overload-protection layer: shed-probability policy, circuit-breaker state
// machine, retry budget, and their wiring into AtsServer (coupled and
// session-isolated paths).
#include "cdn/overload.h"

#include <gtest/gtest.h>

#include "cdn/ats_server.h"
#include "cdn/cache.h"

namespace vstream::cdn {
namespace {

ChunkKey key(std::uint32_t v, std::uint32_t c = 0) { return ChunkKey{v, c, 1500}; }

AtsConfig small_config() {
  AtsConfig config;
  config.ram_bytes = 10ull << 20;
  config.disk_bytes = 100ull << 20;
  return config;
}

// ---------------------------------------------------------------- shedding

TEST(ShedProbabilityTest, ZeroAtOrBelowWatermark) {
  const OverloadConfig cfg;  // watermark 1.25
  for (const double load : {0.0, 0.5, 1.0, 1.25}) {
    for (const RequestPriority p :
         {RequestPriority::kFirstChunk, RequestPriority::kLowBuffer,
          RequestPriority::kSteady, RequestPriority::kPrefetch}) {
      EXPECT_DOUBLE_EQ(shed_probability(cfg, load, p), 0.0)
          << "load=" << load << " priority=" << to_string(p);
    }
  }
}

TEST(ShedProbabilityTest, FirstChunksAreNeverShed) {
  const OverloadConfig cfg;
  for (const double load : {1.5, 2.0, 10.0, 100.0}) {
    EXPECT_DOUBLE_EQ(
        shed_probability(cfg, load, RequestPriority::kFirstChunk), 0.0)
        << "load=" << load;
  }
}

TEST(ShedProbabilityTest, PriorityOrderingAboveWatermark) {
  const OverloadConfig cfg;
  for (const double load : {1.5, 2.0, 3.0, 5.0, 20.0}) {
    const double prefetch =
        shed_probability(cfg, load, RequestPriority::kPrefetch);
    const double steady = shed_probability(cfg, load, RequestPriority::kSteady);
    const double low = shed_probability(cfg, load, RequestPriority::kLowBuffer);
    const double first =
        shed_probability(cfg, load, RequestPriority::kFirstChunk);
    EXPECT_DOUBLE_EQ(prefetch, 1.0) << "load=" << load;
    EXPECT_GE(prefetch, steady) << "load=" << load;
    EXPECT_GE(steady, low) << "load=" << load;
    EXPECT_GE(low, first) << "load=" << load;
    EXPECT_GT(steady, 0.0) << "load=" << load;
  }
}

TEST(ShedProbabilityTest, MonotoneInLoadFactor) {
  const OverloadConfig cfg;
  for (const RequestPriority p :
       {RequestPriority::kFirstChunk, RequestPriority::kLowBuffer,
        RequestPriority::kSteady, RequestPriority::kPrefetch}) {
    double previous = 0.0;
    for (double load = 1.0; load <= 8.0; load += 0.25) {
      const double prob = shed_probability(cfg, load, p);
      EXPECT_GE(prob, previous) << "load=" << load << " priority=" << to_string(p);
      previous = prob;
    }
  }
}

TEST(ShedProbabilityTest, LowBufferProtectedUntilTwiceWatermark) {
  const OverloadConfig cfg;
  // excess = 1 - watermark/load reaches 0.5 at load == 2 * watermark.
  EXPECT_DOUBLE_EQ(
      shed_probability(cfg, 2.0 * cfg.shed_watermark, RequestPriority::kLowBuffer),
      0.0);
  EXPECT_GT(shed_probability(cfg, 2.5 * cfg.shed_watermark,
                             RequestPriority::kLowBuffer),
            0.0);
}

// ---------------------------------------------------------- circuit breaker

TEST(CircuitBreakerTest, StaysClosedOnSuccesses) {
  const OverloadConfig cfg;
  CircuitBreaker breaker;
  for (int i = 0; i < 100; ++i) breaker.record(cfg, i * 10.0, true);
  EXPECT_EQ(breaker.state(cfg, 1'000.0), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow_fetch(cfg, 1'000.0));
  EXPECT_EQ(breaker.open_transitions(), 0u);
}

TEST(CircuitBreakerTest, TripsOnlyWithMinSamples) {
  const OverloadConfig cfg;  // min_samples 4, failure_ratio 0.5
  CircuitBreaker breaker;
  breaker.record(cfg, 0.0, false);
  breaker.record(cfg, 1.0, false);
  breaker.record(cfg, 2.0, false);
  EXPECT_EQ(breaker.state(cfg, 3.0), BreakerState::kClosed)
      << "three failures are below the evidence floor";
  breaker.record(cfg, 3.0, false);
  EXPECT_EQ(breaker.state(cfg, 4.0), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow_fetch(cfg, 4.0));
  EXPECT_EQ(breaker.open_transitions(), 1u);
}

TEST(CircuitBreakerTest, RecoversThroughHalfOpenProbes) {
  const OverloadConfig cfg;  // open dwell 5000 ms, 2 probe successes
  CircuitBreaker breaker;
  for (int i = 0; i < 4; ++i) breaker.record(cfg, 0.0, false);
  ASSERT_EQ(breaker.state(cfg, 100.0), BreakerState::kOpen);
  EXPECT_EQ(breaker.state(cfg, cfg.breaker_open_ms), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow_fetch(cfg, cfg.breaker_open_ms));
  breaker.record(cfg, cfg.breaker_open_ms + 1.0, true);
  EXPECT_EQ(breaker.state(cfg, cfg.breaker_open_ms + 2.0),
            BreakerState::kHalfOpen)
      << "one probe success is not yet recovery";
  breaker.record(cfg, cfg.breaker_open_ms + 3.0, true);
  EXPECT_EQ(breaker.state(cfg, cfg.breaker_open_ms + 4.0),
            BreakerState::kClosed);
  EXPECT_EQ(breaker.open_transitions(), 1u);
}

TEST(CircuitBreakerTest, FailedProbeReopensForAnotherDwell) {
  const OverloadConfig cfg;
  CircuitBreaker breaker;
  for (int i = 0; i < 4; ++i) breaker.record(cfg, 0.0, false);
  breaker.record(cfg, cfg.breaker_open_ms + 1.0, false);  // probe fails
  EXPECT_EQ(breaker.open_transitions(), 2u);
  EXPECT_EQ(breaker.state(cfg, cfg.breaker_open_ms + 2.0), BreakerState::kOpen);
  // The second dwell is counted from the failed probe, not the first trip.
  EXPECT_EQ(breaker.state(cfg, 2.0 * cfg.breaker_open_ms + 0.5),
            BreakerState::kOpen);
  EXPECT_EQ(breaker.state(cfg, 2.0 * cfg.breaker_open_ms + 1.0),
            BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, PeekStateDoesNotAdvance) {
  const OverloadConfig cfg;
  CircuitBreaker breaker;
  for (int i = 0; i < 4; ++i) breaker.record(cfg, 0.0, false);
  const CircuitBreaker& observer = breaker;
  EXPECT_EQ(observer.peek_state(cfg, cfg.breaker_open_ms + 1.0),
            BreakerState::kHalfOpen);
  // Had peek mutated, the breaker would now report half-open even before
  // the dwell has passed; the mutating state() still says open.
  EXPECT_EQ(breaker.state(cfg, 100.0), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, DisabledBreakerNeverTrips) {
  OverloadConfig cfg;
  cfg.breaker_enabled = false;
  CircuitBreaker breaker;
  for (int i = 0; i < 20; ++i) breaker.record(cfg, i * 1.0, false);
  EXPECT_EQ(breaker.state(cfg, 100.0), BreakerState::kClosed);
  EXPECT_EQ(breaker.open_transitions(), 0u);
}

TEST(CircuitBreakerTest, OversizedWindowClampsTo64Outcomes) {
  OverloadConfig cfg;
  cfg.breaker_window = 200;  // clamps to the 64-bit ring
  cfg.breaker_min_samples = 64;
  CircuitBreaker breaker;
  for (int i = 0; i < 64; ++i) breaker.record(cfg, i * 1.0, true);
  EXPECT_EQ(breaker.state(cfg, 64.0), BreakerState::kClosed);
  // 32 failures over a full 64-wide ring reach the 0.5 failure ratio.
  for (int i = 0; i < 31; ++i) breaker.record(cfg, 100.0 + i, false);
  EXPECT_EQ(breaker.state(cfg, 200.0), BreakerState::kClosed);
  breaker.record(cfg, 150.0, false);
  EXPECT_EQ(breaker.state(cfg, 200.0), BreakerState::kOpen);
}

// ------------------------------------------------------------ retry budget

TEST(RetryBudgetTest, ColdStartHoldsInitialTokens) {
  const OverloadConfig cfg;  // initial 4.0
  RetryBudget budget;
  EXPECT_DOUBLE_EQ(budget.tokens(cfg), cfg.retry_budget_initial);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(budget.spend(cfg)) << "spend " << i;
  EXPECT_FALSE(budget.spend(cfg)) << "bucket must be dry after the initial 4";
}

TEST(RetryBudgetTest, EarnAccruesFractionOfAToken) {
  OverloadConfig cfg;
  cfg.retry_budget_ratio = 0.10;
  cfg.retry_budget_initial = 0.5;
  RetryBudget budget;
  EXPECT_FALSE(budget.spend(cfg));
  for (int i = 0; i < 4; ++i) budget.earn(cfg);  // ~0.9: still short
  EXPECT_FALSE(budget.spend(cfg));
  for (int i = 0; i < 2; ++i) budget.earn(cfg);  // ~1.1: one whole token
  EXPECT_TRUE(budget.spend(cfg));
  EXPECT_FALSE(budget.spend(cfg));
}

TEST(RetryBudgetTest, BucketDepthIsCapped) {
  const OverloadConfig cfg;  // cap 8.0
  RetryBudget budget;
  for (int i = 0; i < 10'000; ++i) budget.earn(cfg);
  EXPECT_DOUBLE_EQ(budget.tokens(cfg), cfg.retry_budget_cap);
}

// ----------------------------------------------------- server integration

TEST(OverloadServerTest, FlashCrowdShedsSteadyWorkButNeverFirstChunks) {
  AtsServer server(small_config(), BackendConfig{});
  server.warm(key(1), 500'000);
  server.set_overload(8.0);  // excess 0.84: steady shed probability is 1.0
  sim::Rng rng(21);

  ServeOptions steady;  // default priority kSteady
  for (int i = 0; i < 50; ++i) {
    const ServeResult r = server.serve(key(1), 500'000, i * 10.0, rng, steady);
    EXPECT_TRUE(r.shed);
    EXPECT_TRUE(r.failed);
  }
  ServeOptions first;
  first.priority = RequestPriority::kFirstChunk;
  for (int i = 0; i < 50; ++i) {
    const ServeResult r =
        server.serve(key(1), 500'000, 1'000.0 + i * 10.0, rng, first);
    EXPECT_FALSE(r.shed);
    EXPECT_FALSE(r.failed);
  }
  EXPECT_EQ(server.shed_requests(), 50u);
  // Shed requests are turned away before counting as served.
  EXPECT_EQ(server.requests_served(), 50u);
}

TEST(OverloadServerTest, OpenBreakerServesCachedStaleWhileRevalidate) {
  AtsConfig config = small_config();
  config.overload.hedge_enabled = false;
  AtsServer server(config, BackendConfig{});
  server.warm(key(1), 500'000);
  server.set_backend_slowdown(10'000.0);  // every fetch blows the threshold
  sim::Rng rng(22);

  for (std::uint32_t i = 0; i < 4; ++i) {
    server.serve(key(100 + i), 500'000, i * 1.0, rng);
  }
  ASSERT_EQ(server.breaker_state(10.0), BreakerState::kOpen);
  ASSERT_EQ(server.breaker_open_transitions(), 1u);

  // Cached object: served without an origin consult, flagged SWR.
  const ServeResult hit = server.serve(key(1), 500'000, 20.0, rng);
  EXPECT_TRUE(hit.cache_hit());
  EXPECT_TRUE(hit.swr);
  EXPECT_FALSE(hit.failed);
  EXPECT_EQ(server.swr_serves(), 1u);

  // Uncached object: fast-fail instead of queueing on the melted origin.
  const ServeResult miss = server.serve(key(200), 500'000, 21.0, rng);
  EXPECT_TRUE(miss.failed);
  EXPECT_FALSE(miss.shed);
  EXPECT_DOUBLE_EQ(miss.dbe_ms, 0.0);
  EXPECT_FALSE(miss.retry_timer_fired);
}

TEST(OverloadServerTest, BackendOutageTripsBreakerAndStaleWins) {
  AtsServer server(small_config(), BackendConfig{});
  server.warm(key(1), 500'000);
  server.set_backend_down(true);
  sim::Rng rng(23);

  for (std::uint32_t i = 0; i < 4; ++i) {
    const ServeResult r = server.serve(key(100 + i), 500'000, i * 1.0, rng);
    EXPECT_TRUE(r.failed);
  }
  EXPECT_EQ(server.breaker_open_transitions(), 1u);
  // During an outage the hit path reports stale (outage), not SWR (breaker).
  const ServeResult hit = server.serve(key(1), 500'000, 10.0, rng);
  EXPECT_TRUE(hit.stale);
  EXPECT_FALSE(hit.swr);
}

TEST(OverloadServerTest, HedgedFetchCountsTowardBackendLoad) {
  // Regression: backend_requests() must include hedges — they reach a real
  // origin replica even when the primary response ends up winning.
  AtsConfig config = small_config();
  config.overload.hedge_after_ms = 0.001;  // hedge on effectively every miss
  AtsServer server(config, BackendConfig{});
  sim::Rng rng(24);

  const ServeResult r = server.serve(key(1), 500'000, 0.0, rng);
  EXPECT_TRUE(r.hedged);
  EXPECT_EQ(server.hedged_fetches(), 1u);
  EXPECT_EQ(server.backend_requests(), 2u) << "primary fetch + hedge";
}

TEST(OverloadServerTest, HedgeWinsTakeTheFasterFirstByte) {
  AtsConfig config = small_config();
  config.overload.hedge_after_ms = 0.001;
  AtsServer server(config, BackendConfig{});
  sim::Rng rng(25);

  std::uint64_t wins_seen = 0;
  for (std::uint32_t i = 0; i < 200; ++i) {
    const ServeResult r =
        server.serve(key(1'000 + i), 500'000, i * 1'000.0, rng);
    if (r.hedge_won) {
      ++wins_seen;
      EXPECT_TRUE(r.hedged);
    }
  }
  EXPECT_GT(server.hedge_wins(), 0u);
  EXPECT_LE(server.hedge_wins(), server.hedged_fetches());
  EXPECT_EQ(server.hedge_wins(), wins_seen);
  // The budget caps hedging near retry_budget_ratio of traffic (plus the
  // initial bucket), so most of the 200 misses went unhedged.
  EXPECT_LT(server.hedged_fetches(), 50u);
}

TEST(OverloadServerTest, DryRetryBudgetFastFailsRetries) {
  AtsConfig config = small_config();
  config.overload.hedge_enabled = false;
  config.overload.retry_budget_initial = 1.0;
  config.overload.retry_budget_ratio = 1e-6;  // effectively no refill
  AtsServer server(config, BackendConfig{});
  sim::Rng rng(26);

  ServeOptions retry;
  retry.retry = true;
  const ServeResult first = server.serve(key(1), 500'000, 0.0, rng, retry);
  EXPECT_FALSE(first.failed) << "one token: the first retry re-fetches";
  const ServeResult second = server.serve(key(2), 500'000, 10.0, rng, retry);
  EXPECT_TRUE(second.budget_denied);
  EXPECT_TRUE(second.failed);
  EXPECT_EQ(server.retry_budget_exhausted(), 1u);
  // Fresh (non-retry) requests never draw on the budget.
  const ServeResult fresh = server.serve(key(3), 500'000, 20.0, rng);
  EXPECT_FALSE(fresh.failed);
}

TEST(OverloadServerTest, IsolatedPathMirrorsSheddingAndBreaker) {
  AtsConfig config = small_config();
  config.overload.hedge_enabled = false;
  AtsServer server(config, BackendConfig{});
  const TwoLevelCache warm(10ull << 20, 100ull << 20, PolicyKind::kLru);
  sim::Rng rng(27);

  // Shedding: driven purely by the fault-driven overload factor.
  server.set_overload(8.0);
  SessionServerState session;
  ServerStats stats;
  const ServeResult shed =
      server.serve_isolated(key(1), 500'000, 0.0, rng, warm, session, stats);
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(stats.shed_requests, 1u);
  EXPECT_EQ(stats.requests_served, 0u);
  server.set_overload(1.0);

  // Breaker: fed only by this session's own observed outcomes.
  server.set_backend_down(true);
  for (std::uint32_t i = 0; i < 4; ++i) {
    server.serve_isolated(key(100 + i), 500'000, 10.0 + i, rng, warm, session,
                          stats);
  }
  EXPECT_EQ(stats.breaker_open_transitions, 1u);
  EXPECT_EQ(stats.backend_errors, 4u);
  server.set_backend_down(false);
  const ServeResult miss = server.serve_isolated(key(200), 500'000, 20.0, rng,
                                                 warm, session, stats);
  EXPECT_EQ(miss.breaker, BreakerState::kOpen);
  EXPECT_TRUE(miss.failed);
  EXPECT_DOUBLE_EQ(miss.dbe_ms, 0.0);
  // The server's own coupled-mode breaker never saw any of it.
  EXPECT_EQ(server.breaker_open_transitions(), 0u);
}

}  // namespace
}  // namespace vstream::cdn
