#include "cdn/cache_policy.h"

#include <gtest/gtest.h>

namespace vstream::cdn {
namespace {

ChunkKey key(std::uint32_t v, std::uint32_t c = 0, std::uint32_t b = 1500) {
  return ChunkKey{v, c, b};
}

TEST(LruPolicyTest, EvictsLeastRecentlyUsed) {
  LruPolicy lru;
  lru.on_insert(key(1), 100);
  lru.on_insert(key(2), 100);
  lru.on_insert(key(3), 100);
  EXPECT_EQ(lru.choose_victim(), key(1));
  lru.on_access(key(1));  // 2 is now the oldest
  EXPECT_EQ(lru.choose_victim(), key(2));
}

TEST(LruPolicyTest, EvictRemovesFromOrder) {
  LruPolicy lru;
  lru.on_insert(key(1), 100);
  lru.on_insert(key(2), 100);
  lru.on_evict(key(1));
  EXPECT_EQ(lru.choose_victim(), key(2));
}

TEST(LruPolicyTest, ThrowsOnEmptyVictim) {
  LruPolicy lru;
  EXPECT_THROW(lru.choose_victim(), std::logic_error);
}

TEST(LruPolicyTest, ToleratesSpuriousNotifications) {
  LruPolicy lru;
  lru.on_access(key(9));  // never inserted
  lru.on_evict(key(9));
  lru.on_insert(key(1), 10);
  EXPECT_EQ(lru.choose_victim(), key(1));
}

TEST(PerfectLfuPolicyTest, EvictsLeastFrequent) {
  PerfectLfuPolicy lfu;
  lfu.on_insert(key(1), 100);
  lfu.on_insert(key(2), 100);
  lfu.on_access(key(1));
  lfu.on_access(key(1));
  EXPECT_EQ(lfu.choose_victim(), key(2));
}

TEST(PerfectLfuPolicyTest, FrequencySurvivesEviction) {
  // "Perfect" LFU: history persists.  A hot object that was evicted
  // re-enters with its old count and immediately outranks cold ones.
  PerfectLfuPolicy lfu;
  lfu.on_insert(key(1), 100);
  for (int i = 0; i < 10; ++i) lfu.on_access(key(1));
  lfu.on_evict(key(1));
  lfu.on_insert(key(2), 100);  // freq 1
  lfu.on_insert(key(1), 100);  // re-inserted with freq 12
  EXPECT_EQ(lfu.choose_victim(), key(2));
}

TEST(PerfectLfuPolicyTest, TieBrokenByAge) {
  PerfectLfuPolicy lfu;
  lfu.on_insert(key(1), 100);
  lfu.on_insert(key(2), 100);
  // Equal frequency: the earlier-inserted object is evicted first.
  EXPECT_EQ(lfu.choose_victim(), key(1));
}

TEST(GdSizePolicyTest, PrefersEvictingLargeObjects) {
  GdSizePolicy gd;
  gd.on_insert(key(1), 1'000'000);  // big -> low priority
  gd.on_insert(key(2), 1'000);      // small -> high priority
  EXPECT_EQ(gd.choose_victim(), key(1));
}

TEST(GdSizePolicyTest, AccessRefreshesPriority) {
  GdSizePolicy gd;
  gd.on_insert(key(1), 1'000);
  gd.on_insert(key(2), 1'000);
  // Force ageing: evicting raises the inflation term.
  EXPECT_EQ(gd.choose_victim(), key(1));
  gd.on_evict(key(1));
  gd.on_insert(key(3), 1'000);
  // key(2) was never re-accessed; its priority predates the inflation.
  EXPECT_EQ(gd.choose_victim(), key(2));
  gd.on_access(key(2));
  EXPECT_EQ(gd.choose_victim(), key(3));
}

TEST(GdSizePolicyTest, ThrowsOnEmptyVictim) {
  GdSizePolicy gd;
  EXPECT_THROW(gd.choose_victim(), std::logic_error);
}

TEST(PolicyFactoryTest, MakesAllKinds) {
  EXPECT_EQ(make_policy(PolicyKind::kLru)->name(), "lru");
  EXPECT_EQ(make_policy(PolicyKind::kPerfectLfu)->name(), "perfect-lfu");
  EXPECT_EQ(make_policy(PolicyKind::kGdSize)->name(), "gd-size");
}

TEST(ChunkKeyTest, HashDistinguishesFields) {
  const ChunkKeyHash h;
  EXPECT_NE(h(key(1, 0, 1500)), h(key(2, 0, 1500)));
  EXPECT_NE(h(key(1, 0, 1500)), h(key(1, 1, 1500)));
  EXPECT_NE(h(key(1, 0, 1500)), h(key(1, 0, 2500)));
  EXPECT_EQ(h(key(1, 2, 3)), h(key(1, 2, 3)));
}

TEST(ChunkKeyTest, ChunkBytesFormula) {
  // 2,500 kbps * 6 s = 15,000 kbit = 1,875,000 bytes.
  EXPECT_EQ(chunk_bytes(2'500, 6.0), 1'875'000ull);
  EXPECT_EQ(chunk_bytes(0, 6.0), 0ull);
}

TEST(ChunkKeyTest, VbrFactorDeterministicAndBounded) {
  double sum = 0.0;
  int distinct = 0;
  double prev = -1.0;
  for (std::uint32_t v = 0; v < 50; ++v) {
    for (std::uint32_t c = 0; c < 40; ++c) {
      const double f = vbr_factor(v, c);
      EXPECT_GE(f, 0.75);
      EXPECT_LE(f, 1.25);
      EXPECT_DOUBLE_EQ(f, vbr_factor(v, c));  // pure function
      if (f != prev) ++distinct;
      prev = f;
      sum += f;
    }
  }
  EXPECT_GT(distinct, 1'900);              // factors genuinely vary
  EXPECT_NEAR(sum / 2'000.0, 1.0, 0.02);   // mean ~= nominal
}

TEST(ChunkKeyTest, VbrBytesConsistentEverywhere) {
  // Every component must agree on the same object's size.
  const std::uint64_t a = chunk_bytes_vbr(2'500, 6.0, 7, 3);
  const std::uint64_t b = chunk_bytes_vbr(2'500, 6.0, 7, 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, chunk_bytes_vbr(2'500, 6.0, 7, 4));
  EXPECT_GE(a, chunk_bytes(2'500, 6.0) * 3 / 4);
  EXPECT_LE(a, chunk_bytes(2'500, 6.0) * 5 / 4 + 1);
}

// Property: with a uniform access stream, every policy keeps the store
// functional (victims are always resident objects).
class PolicyPropertyTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyPropertyTest, VictimsAreResident) {
  auto policy = make_policy(GetParam());
  std::vector<ChunkKey> resident;
  for (std::uint32_t i = 0; i < 50; ++i) {
    policy->on_insert(key(i), 100 + i);
    resident.push_back(key(i));
    if (resident.size() > 10) {
      const ChunkKey victim = policy->choose_victim();
      const auto it = std::find(resident.begin(), resident.end(), victim);
      ASSERT_NE(it, resident.end()) << "victim not resident";
      policy->on_evict(victim);
      resident.erase(it);
    }
  }
  EXPECT_EQ(resident.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyPropertyTest,
                         ::testing::Values(PolicyKind::kLru,
                                           PolicyKind::kPerfectLfu,
                                           PolicyKind::kGdSize));

}  // namespace
}  // namespace vstream::cdn
