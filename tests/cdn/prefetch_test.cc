#include <gtest/gtest.h>

#include "cdn/ats_server.h"

namespace vstream::cdn {
namespace {

AtsConfig config_with_prefetch(std::uint32_t depth) {
  AtsConfig config;
  config.ram_bytes = 64ull << 20;
  config.disk_bytes = 512ull << 20;
  config.prefetch_on_miss = depth;
  return config;
}

ChunkKey key(std::uint32_t video, std::uint32_t chunk) {
  return ChunkKey{video, chunk, 1'500};
}

TEST(PrefetchTest, DisabledByDefault) {
  AtsServer server(AtsConfig{}, BackendConfig{});
  sim::Rng rng(1);
  server.serve(key(1, 0), 1'000'000, 0.0, rng);
  EXPECT_EQ(server.prefetched_chunks(), 0u);
  // The next chunk was not prefetched: it misses.
  EXPECT_EQ(server.serve(key(1, 1), 1'000'000, 10.0, rng).level,
            CacheLevel::kMiss);
}

TEST(PrefetchTest, MissTriggersPrefetchOfFollowingChunks) {
  AtsServer server(config_with_prefetch(3), BackendConfig{});
  sim::Rng rng(2);
  const ServeResult first = server.serve(key(7, 0), 1'000'000, 0.0, rng);
  EXPECT_EQ(first.level, CacheLevel::kMiss);
  EXPECT_EQ(server.prefetched_chunks(), 3u);

  // Chunks 1..3 now hit; chunk 4 is beyond the prefetch window.
  for (std::uint32_t c = 1; c <= 3; ++c) {
    EXPECT_TRUE(server.serve(key(7, c), 1'000'000, c * 10.0, rng).cache_hit())
        << "chunk " << c;
  }
  EXPECT_EQ(server.serve(key(7, 4), 1'000'000, 40.0, rng).level,
            CacheLevel::kMiss);
}

TEST(PrefetchTest, PrefetchedChunksServeFromRam) {
  AtsServer server(config_with_prefetch(2), BackendConfig{});
  sim::Rng rng(3);
  server.serve(key(7, 0), 1'000'000, 0.0, rng);
  // Freshly admitted -> RAM-resident: no retry timer, fast read.
  const ServeResult r = server.serve(key(7, 1), 1'000'000, 10.0, rng);
  EXPECT_EQ(r.level, CacheLevel::kRam);
  EXPECT_FALSE(r.retry_timer_fired);
}

TEST(PrefetchTest, NoDoubleFetchOfCachedChunks) {
  AtsServer server(config_with_prefetch(4), BackendConfig{});
  sim::Rng rng(4);
  server.warm(key(9, 2), 1'000'000);  // chunk 2 already cached
  server.serve(key(9, 0), 1'000'000, 0.0, rng);
  // Chunks 1, 3, 4 prefetched; chunk 2 skipped (already resident).
  EXPECT_EQ(server.prefetched_chunks(), 3u);
}

TEST(PrefetchTest, BackendRequestsIncludePrefetches) {
  AtsServer server(config_with_prefetch(2), BackendConfig{});
  sim::Rng rng(5);
  server.serve(key(1, 0), 1'000'000, 0.0, rng);   // miss + 2 prefetches
  server.serve(key(2, 0), 1'000'000, 10.0, rng);  // miss + 2 prefetches
  EXPECT_EQ(server.misses(), 2u);
  EXPECT_EQ(server.prefetched_chunks(), 4u);
  EXPECT_EQ(server.backend_requests(), 6u);
}

TEST(PrefetchTest, HitsNeverPrefetch) {
  AtsServer server(config_with_prefetch(4), BackendConfig{});
  sim::Rng rng(6);
  server.serve(key(1, 0), 1'000'000, 0.0, rng);
  const std::uint64_t after_miss = server.prefetched_chunks();
  server.serve(key(1, 0), 1'000'000, 10.0, rng);  // hit
  EXPECT_EQ(server.prefetched_chunks(), after_miss);
}

TEST(CollapsedForwardingTest, ConcurrentRequestsShareOneBackendFetch) {
  AtsServer server(AtsConfig{}, BackendConfig{});
  sim::Rng rng(9);
  // First request misses and issues the backend fetch.
  const ServeResult first = server.serve(key(5, 0), 1'000'000, 0.0, rng);
  ASSERT_EQ(first.level, CacheLevel::kMiss);
  EXPECT_EQ(server.backend_requests(), 1u);

  // A near-simultaneous request for the same object hits the just-admitted
  // entry but must wait out the in-flight fetch (read-while-writer) — and
  // must NOT issue a second backend request.
  const ServeResult second = server.serve(key(5, 0), 1'000'000, 1.0, rng);
  EXPECT_TRUE(second.cache_hit());
  EXPECT_EQ(server.backend_requests(), 1u);
  EXPECT_EQ(server.collapsed_misses(), 1u);
  // Its first byte cannot beat the backend's by more than the 1 ms skew.
  EXPECT_GE(second.dread_ms, first.dbe_ms - 1.0);

  // Long after the fetch completed, the same object is a plain fast hit.
  const ServeResult later = server.serve(key(5, 0), 1'000'000, 10'000.0, rng);
  EXPECT_LT(later.dread_ms, 10.0);
  EXPECT_EQ(server.collapsed_misses(), 1u);
}

TEST(CollapsedForwardingTest, DistinctObjectsFetchIndependently) {
  AtsServer server(AtsConfig{}, BackendConfig{});
  sim::Rng rng(10);
  server.serve(key(5, 0), 1'000'000, 0.0, rng);
  server.serve(key(5, 1), 1'000'000, 1.0, rng);
  EXPECT_EQ(server.backend_requests(), 2u);
  EXPECT_EQ(server.collapsed_misses(), 0u);
}

// Property: with prefetch depth >= session length, a sequential session has
// exactly one miss regardless of where it starts.
class PrefetchDepthTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrefetchDepthTest, SequentialSessionMissesOnce) {
  const std::uint32_t chunks = GetParam();
  AtsServer server(config_with_prefetch(chunks), BackendConfig{});
  sim::Rng rng(7);
  std::size_t misses = 0;
  for (std::uint32_t c = 0; c < chunks; ++c) {
    if (!server.serve(key(3, c), 500'000, c * 10.0, rng).cache_hit()) ++misses;
  }
  EXPECT_EQ(misses, 1u);
}

INSTANTIATE_TEST_SUITE_P(Depths, PrefetchDepthTest,
                         ::testing::Values(2u, 5u, 17u, 40u));

}  // namespace
}  // namespace vstream::cdn
