#include "cdn/ats_server.h"

#include <gtest/gtest.h>

#include <vector>

namespace vstream::cdn {
namespace {

AtsConfig small_config() {
  AtsConfig config;
  config.ram_bytes = 10ull << 20;   // 10 MiB
  config.disk_bytes = 100ull << 20; // 100 MiB
  return config;
}

ChunkKey key(std::uint32_t v, std::uint32_t c = 0) { return ChunkKey{v, c, 1500}; }

TEST(AtsServerTest, ColdRequestIsMissWithBackendLatency) {
  AtsServer server(small_config(), BackendConfig{});
  sim::Rng rng(1);
  const ServeResult r = server.serve(key(1), 1'000'000, 0.0, rng);
  EXPECT_EQ(r.level, CacheLevel::kMiss);
  EXPECT_FALSE(r.cache_hit());
  EXPECT_GT(r.dbe_ms, 0.0);
  EXPECT_TRUE(r.retry_timer_fired);
  // Miss D_read includes the retry timer plus backend first byte.
  EXPECT_GE(r.dread_ms, server.config().open_retry_ms + r.dbe_ms - 1e-9);
  EXPECT_EQ(server.misses(), 1u);
}

TEST(AtsServerTest, SecondRequestIsRamHit) {
  AtsServer server(small_config(), BackendConfig{});
  sim::Rng rng(1);
  server.serve(key(1), 1'000'000, 0.0, rng);
  const ServeResult r = server.serve(key(1), 1'000'000, 100.0, rng);
  EXPECT_EQ(r.level, CacheLevel::kRam);
  EXPECT_DOUBLE_EQ(r.dbe_ms, 0.0);
  EXPECT_FALSE(r.retry_timer_fired);
  EXPECT_EQ(server.ram_hits(), 1u);
}

TEST(AtsServerTest, RamHitLatencyCalibratedToPaper) {
  // Fig. 5 / §4.1-1: median server latency on a cache hit is ~2 ms.
  AtsServer server(small_config(), BackendConfig{});
  sim::Rng rng(2);
  server.serve(key(1), 500'000, 0.0, rng);
  std::vector<double> totals;
  for (int i = 0; i < 2'001; ++i) {
    totals.push_back(server.serve(key(1), 500'000, i * 10.0, rng).total_ms());
  }
  std::nth_element(totals.begin(), totals.begin() + totals.size() / 2,
                   totals.end());
  const double median = totals[totals.size() / 2];
  EXPECT_GT(median, 1.0);
  EXPECT_LT(median, 4.0);
}

TEST(AtsServerTest, MissLatencyRoughly40xHitLatency) {
  // §4.1-1: median miss latency (~80 ms) is ~40x the hit median (~2 ms).
  AtsServer hit_server(small_config(), BackendConfig{});
  sim::Rng rng(3);
  hit_server.serve(key(1), 500'000, 0.0, rng);

  std::vector<double> hits, misses;
  for (int i = 0; i < 1'500; ++i) {
    hits.push_back(hit_server.serve(key(1), 500'000, i * 10.0, rng).total_ms());
    // A fresh key every time: always a miss.
    AtsServer miss_server(small_config(), BackendConfig{});
    misses.push_back(
        miss_server.serve(key(100 + i), 500'000, 0.0, rng).total_ms());
  }
  const auto median = [](std::vector<double>& v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  const double hit_median = median(hits);
  const double miss_median = median(misses);
  EXPECT_GT(miss_median / hit_median, 15.0);
  EXPECT_LT(miss_median / hit_median, 90.0);
}

TEST(AtsServerTest, DiskHitPaysRetryTimer) {
  // Force a disk hit: object admitted, then evicted from RAM by other
  // admissions, then requested again.
  AtsConfig config = small_config();
  config.ram_bytes = 1'200'000;  // barely one object
  AtsServer server(config, BackendConfig{});
  sim::Rng rng(4);
  server.serve(key(1), 1'000'000, 0.0, rng);      // miss -> admitted
  server.serve(key(2), 1'000'000, 10.0, rng);     // miss -> evicts 1 from RAM
  const ServeResult r = server.serve(key(1), 1'000'000, 20.0, rng);
  EXPECT_EQ(r.level, CacheLevel::kDisk);
  EXPECT_TRUE(r.retry_timer_fired);
  EXPECT_GE(r.dread_ms, config.open_retry_ms);
  EXPECT_DOUBLE_EQ(r.dbe_ms, 0.0);
}

TEST(AtsServerTest, ColdContentPaysSeekPenalty) {
  // Fig. 6b: unpopular (cold) videos see higher read latency even on hits.
  AtsConfig config = small_config();
  config.ram_bytes = 1'200'000;
  AtsServer server(config, BackendConfig{});
  sim::Rng rng(5);

  // Warm a video, displace it from RAM, and read it again quickly (warm
  // disk) vs after a long gap (cold disk).
  server.serve(key(1), 1'000'000, 0.0, rng);
  server.serve(key(2), 1'000'000, 1.0, rng);
  double warm_sum = 0.0, cold_sum = 0.0;
  const int trials = 300;
  for (int i = 0; i < trials; ++i) {
    // Re-displace from RAM each time, then read soon after.
    server.serve(key(2), 1'000'000, 100.0 * i + 2.0, rng);
    warm_sum += server.serve(key(1), 1'000'000, 100.0 * i + 50.0, rng).dread_ms;
  }
  AtsServer cold_server(config, BackendConfig{});
  cold_server.serve(key(1), 1'000'000, 0.0, rng);
  cold_server.serve(key(2), 1'000'000, 1.0, rng);
  for (int i = 0; i < trials; ++i) {
    cold_server.serve(key(2), 1'000'000, 200'000.0 * i + 2.0, rng);
    cold_sum += cold_server
                    .serve(key(1), 1'000'000, 200'000.0 * (i + 1), rng)
                    .dread_ms;
  }
  EXPECT_GT(cold_sum / trials, warm_sum / trials + 5.0);
}

TEST(AtsServerTest, DcdnExcludesBackendShare) {
  AtsServer server(small_config(), BackendConfig{});
  sim::Rng rng(6);
  const ServeResult r = server.serve(key(1), 500'000, 0.0, rng);
  EXPECT_NEAR(r.dcdn_ms() + r.dbe_ms, r.total_ms(), 1e-9);
}

TEST(AtsServerTest, CountersAddUp) {
  AtsServer server(small_config(), BackendConfig{});
  sim::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    server.serve(key(static_cast<std::uint32_t>(i % 7)), 400'000, i * 5.0, rng);
  }
  EXPECT_EQ(server.requests_served(), 200u);
  EXPECT_EQ(server.ram_hits() + server.disk_hits() + server.misses(), 200u);
  EXPECT_GT(server.miss_ratio(), 0.0);
  EXPECT_LT(server.miss_ratio(), 1.0);
}

TEST(AtsServerTest, WarmPreloadsWithoutCountingRequests) {
  AtsServer server(small_config(), BackendConfig{});
  server.warm(key(1), 500'000);
  EXPECT_EQ(server.requests_served(), 0u);
  sim::Rng rng(8);
  const ServeResult r = server.serve(key(1), 500'000, 0.0, rng);
  EXPECT_EQ(r.level, CacheLevel::kRam);
}

TEST(AtsServerTest, WaitDelayStaysSmallAtLowLoad) {
  // §4.1: servers are well provisioned; D_wait < 1 ms for most chunks.
  AtsServer server(small_config(), BackendConfig{});
  sim::Rng rng(9);
  int below_1ms = 0;
  const int n = 2'000;
  for (int i = 0; i < n; ++i) {
    // 10 req/s: far below capacity.
    const ServeResult r = server.serve(key(1), 400'000, i * 100.0, rng);
    if (r.dwait_ms < 1.0) ++below_1ms;
  }
  EXPECT_GT(static_cast<double>(below_1ms) / n, 0.75);
}

TEST(AtsServerTest, ThreadPoolSaturationGrowsWait) {
  // One slow thread pool: every backend fetch pins a thread for ~100 ms;
  // a burst of simultaneous misses beyond the pool size must queue.
  AtsConfig config = small_config();
  config.threads = 4;
  config.disk_bytes = 4ull << 20;  // too small to hold anything -> misses
  config.ram_bytes = 2ull << 20;
  AtsServer server(config, BackendConfig{});
  sim::Rng rng(11);

  double max_wait = 0.0;
  for (int i = 0; i < 32; ++i) {
    // All requests arrive at the same instant; distinct keys -> misses.
    const ServeResult r = server.serve(key(1'000 + i), 3ull << 20, 0.0, rng);
    max_wait = std::max(max_wait, r.dwait_ms);
  }
  // The 5th+ request had to wait for a thread held by a backend fetch.
  EXPECT_GT(max_wait, 50.0);
  EXPECT_GT(server.earliest_thread_free_ms(), 0.0);
}

TEST(AtsServerTest, ThreadPoolDrainsBetweenArrivals) {
  AtsConfig config = small_config();
  config.threads = 2;
  AtsServer server(config, BackendConfig{});
  sim::Rng rng(12);
  server.serve(key(1), 400'000, 0.0, rng);
  // Long after the burst, a new request sees an idle pool.
  const ServeResult r = server.serve(key(1), 400'000, 10'000.0, rng);
  EXPECT_LT(r.dwait_ms, 5.0);
}

}  // namespace
}  // namespace vstream::cdn
