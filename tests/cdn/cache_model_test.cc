// Model-based testing: CacheStore with the LRU policy is checked against a
// trivially correct reference implementation under long random operation
// sequences.  Any divergence in membership, usage accounting or eviction
// order is a bug in the optimized structures.
#include <gtest/gtest.h>

#include <list>
#include <map>

#include "cdn/cache.h"
#include "sim/rng.h"

namespace vstream::cdn {
namespace {

/// Reference LRU cache: O(n) everywhere, obviously correct.
class ReferenceLru {
 public:
  explicit ReferenceLru(std::uint64_t capacity) : capacity_(capacity) {}

  bool contains(const ChunkKey& key) const {
    for (const auto& [k, s] : entries_) {
      if (k == key) return true;
    }
    return false;
  }

  void touch(const ChunkKey& key) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        entries_.splice(entries_.begin(), entries_, it);
        return;
      }
    }
  }

  bool insert(const ChunkKey& key, std::uint64_t size) {
    if (size > capacity_) return false;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        entries_.splice(entries_.begin(), entries_, it);
        return true;
      }
    }
    while (used_ + size > capacity_) {
      used_ -= entries_.back().second;
      entries_.pop_back();
    }
    entries_.emplace_front(key, size);
    used_ += size;
    return true;
  }

  void erase(const ChunkKey& key) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == key) {
        used_ -= it->second;
        entries_.erase(it);
        return;
      }
    }
  }

  std::uint64_t used() const { return used_; }
  std::size_t count() const { return entries_.size(); }

 private:
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<std::pair<ChunkKey, std::uint64_t>> entries_;  // front = MRU
};

ChunkKey random_key(sim::Rng& rng, std::uint32_t key_space) {
  return ChunkKey{
      static_cast<std::uint32_t>(rng.uniform_int(0, key_space - 1)),
      static_cast<std::uint32_t>(rng.uniform_int(0, 3)), 1'500};
}

class CacheModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheModelTest, MatchesReferenceUnderRandomOps) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(seed);
  const std::uint64_t capacity = 10'000;
  CacheStore store(capacity, make_policy(PolicyKind::kLru));
  ReferenceLru reference(capacity);

  for (int op = 0; op < 5'000; ++op) {
    const ChunkKey key = random_key(rng, 40);
    const double action = rng.uniform01();
    if (action < 0.55) {
      const std::uint64_t size = 200 + static_cast<std::uint64_t>(
                                           rng.uniform_int(0, 1'800));
      const bool a = store.insert(key, size);
      const bool b = reference.insert(key, size);
      ASSERT_EQ(a, b) << "insert disagreement at op " << op;
    } else if (action < 0.85) {
      store.touch(key);
      reference.touch(key);
    } else {
      store.erase(key);
      reference.erase(key);
    }
    ASSERT_EQ(store.used_bytes(), reference.used()) << "op " << op;
    ASSERT_EQ(store.object_count(), reference.count()) << "op " << op;
    // Membership spot check on a handful of keys.
    for (int probe = 0; probe < 5; ++probe) {
      const ChunkKey p = random_key(rng, 40);
      ASSERT_EQ(store.contains(p), reference.contains(p))
          << "membership disagreement at op " << op;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheModelTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

TEST(CacheModelTest, InsertWithDuplicateKeepsOriginalSizeAccounting) {
  // Duplicate insert refreshes recency; size accounting must not change
  // even if the caller passes a different size (the object is the object).
  CacheStore store(5'000, make_policy(PolicyKind::kLru));
  const ChunkKey key{1, 2, 1'500};
  store.insert(key, 1'000);
  store.insert(key, 2'000);  // duplicate with different size
  EXPECT_EQ(store.used_bytes(), 1'000u);
  EXPECT_EQ(store.object_count(), 1u);
}

}  // namespace
}  // namespace vstream::cdn
