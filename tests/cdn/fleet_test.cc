#include "cdn/fleet.h"

#include <gtest/gtest.h>

#include <set>

#include "net/geo.h"

namespace vstream::cdn {
namespace {

FleetConfig small_fleet() {
  FleetConfig config;
  config.pop_count = 3;
  config.servers_per_pop = 4;
  config.server.ram_bytes = 1ull << 20;
  config.server.disk_bytes = 8ull << 20;
  return config;
}

TEST(FleetTest, RejectsDegenerateConfigs) {
  FleetConfig config = small_fleet();
  config.pop_count = 0;
  EXPECT_THROW(Fleet(config, 1'000), std::invalid_argument);
  config = small_fleet();
  config.servers_per_pop = 0;
  EXPECT_THROW(Fleet(config, 1'000), std::invalid_argument);
  config = small_fleet();
  config.pop_count = 10'000;  // more than the city table
  EXPECT_THROW(Fleet(config, 1'000), std::invalid_argument);
}

TEST(FleetTest, NearestPopIsGeographicallyNearest) {
  const Fleet fleet(small_fleet(), 1'000);
  // A client sitting exactly on a PoP city must be routed to it.
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    EXPECT_EQ(fleet.nearest_pop(fleet.pop_city(pop).location), pop);
  }
}

TEST(FleetTest, CacheFocusedRoutingIsStablePerVideo) {
  const Fleet fleet(small_fleet(), 1'000);
  const net::GeoPoint client{40.7, -74.0};
  const ServerRef a =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  for (std::uint64_t session = 2; session < 50; ++session) {
    const ServerRef b =
        fleet.route(client, 42, 500, session, RoutingPolicy::kCacheFocused);
    EXPECT_EQ(a, b) << "cache-focused routing must ignore the session";
  }
}

TEST(FleetTest, PartitionedRoutingSpreadsPopularHead) {
  const Fleet fleet(small_fleet(), 1'000);
  const net::GeoPoint client{40.7, -74.0};
  std::set<std::uint32_t> servers;
  // Rank 5 of 1000 is inside the top-10% head: sessions spread.
  for (std::uint64_t session = 0; session < 100; ++session) {
    servers.insert(fleet
                       .route(client, 42, 5, session,
                              RoutingPolicy::kPopularityPartitioned)
                       .server);
  }
  EXPECT_EQ(servers.size(), fleet.servers_per_pop());
}

TEST(FleetTest, PartitionedRoutingKeepsTailConcentrated) {
  const Fleet fleet(small_fleet(), 1'000);
  const net::GeoPoint client{40.7, -74.0};
  std::set<std::uint32_t> servers;
  // Rank 900 is in the tail: cache-focused behaviour even when partitioned.
  for (std::uint64_t session = 0; session < 100; ++session) {
    servers.insert(fleet
                       .route(client, 42, 900, session,
                              RoutingPolicy::kPopularityPartitioned)
                       .server);
  }
  EXPECT_EQ(servers.size(), 1u);
}

TEST(FleetTest, ServerIndexForVideoMatchesRouting) {
  const Fleet fleet(small_fleet(), 1'000);
  const net::GeoPoint client{41.9, -87.6};
  for (std::uint32_t video = 0; video < 200; ++video) {
    const ServerRef ref =
        fleet.route(client, video, 999, 7, RoutingPolicy::kCacheFocused);
    EXPECT_EQ(ref.server, fleet.server_index_for_video(video));
  }
}

TEST(FleetTest, VideosSpreadAcrossServers) {
  const Fleet fleet(small_fleet(), 1'000);
  std::set<std::uint32_t> indexes;
  for (std::uint32_t video = 0; video < 100; ++video) {
    indexes.insert(fleet.server_index_for_video(video));
  }
  EXPECT_EQ(indexes.size(), fleet.servers_per_pop());
}

TEST(FleetTest, ServersAreIndependentInstances) {
  Fleet fleet(small_fleet(), 1'000);
  sim::Rng rng(1);
  fleet.server({0, 0}).serve(ChunkKey{1, 0, 1500}, 1'000, 0.0, rng);
  EXPECT_EQ(fleet.server({0, 0}).requests_served(), 1u);
  EXPECT_EQ(fleet.server({0, 1}).requests_served(), 0u);
  EXPECT_EQ(fleet.server({1, 0}).requests_served(), 0u);
}

TEST(FleetTest, FailoverRoutesAroundDownServer) {
  Fleet fleet(small_fleet(), 1'000);
  const net::GeoPoint client{40.7, -74.0};
  const ServerRef original =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  fleet.set_server_down(original);
  const ServerRef rerouted =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  EXPECT_EQ(rerouted.pop, original.pop);
  EXPECT_NE(rerouted.server, original.server);
  EXPECT_FALSE(fleet.is_down(rerouted));

  // Recovery restores the cache-focused assignment.
  fleet.set_server_down(original, false);
  EXPECT_EQ(fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused),
            original);
}

TEST(FleetTest, FailoverSkipsMultipleDownServers) {
  Fleet fleet(small_fleet(), 1'000);  // 4 servers per PoP
  const net::GeoPoint client{40.7, -74.0};
  const ServerRef original =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  fleet.set_server_down(original);
  fleet.set_server_down(
      {original.pop, (original.server + 1) % fleet.servers_per_pop()});
  const ServerRef rerouted =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  EXPECT_FALSE(fleet.is_down(rerouted));
}

TEST(FleetTest, WholePopDownFailsOverToNearestLivePop) {
  Fleet fleet(small_fleet(), 1'000);
  const net::GeoPoint client{40.7, -74.0};
  const ServerRef original =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  for (std::uint32_t s = 0; s < fleet.servers_per_pop(); ++s) {
    fleet.set_server_down({original.pop, s});
  }
  const ServerRef rerouted =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  EXPECT_NE(rerouted.pop, original.pop);
  EXPECT_FALSE(fleet.is_down(rerouted));
  // Cross-PoP rescue lands on the video's cache-focused server there: the
  // warm cache, paying only the extra propagation RTT (§4.1).
  EXPECT_EQ(rerouted.server, fleet.server_index_for_video(42));

  // Recovery routes back to the original warm assignment.
  for (std::uint32_t s = 0; s < fleet.servers_per_pop(); ++s) {
    fleet.set_server_down({original.pop, s}, false);
  }
  EXPECT_EQ(fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused),
            original);
}

TEST(FleetTest, PopBlackoutIsIndependentOfServerFlags) {
  Fleet fleet(small_fleet(), 1'000);
  const net::GeoPoint client{40.7, -74.0};
  const ServerRef original =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  fleet.set_pop_down(original.pop);
  EXPECT_TRUE(fleet.is_pop_down(original.pop));
  EXPECT_FALSE(fleet.pop_live(original.pop));
  EXPECT_TRUE(fleet.is_down(original));
  const ServerRef rerouted =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  EXPECT_NE(rerouted.pop, original.pop);

  // Lifting the blackout restores every server that was not itself crashed.
  fleet.set_pop_down(original.pop, false);
  EXPECT_FALSE(fleet.is_down(original));
  EXPECT_EQ(fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused),
            original);
}

TEST(FleetTest, WholeFleetDownKeepsAssignment) {
  Fleet fleet(small_fleet(), 1'000);
  const net::GeoPoint client{40.7, -74.0};
  const ServerRef original =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    fleet.set_pop_down(pop);
  }
  EXPECT_TRUE(fleet.all_down());
  // Degenerate case: nothing better exists, the nominal assignment comes
  // back with is_down() still true — the caller owns the error model.
  const ServerRef rerouted =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);
  EXPECT_EQ(rerouted, original);
  EXPECT_TRUE(fleet.is_down(rerouted));
}

TEST(FleetTest, FailoverPrefersSamePopThenWarmCrossPop) {
  Fleet fleet(small_fleet(), 1'000);
  const net::GeoPoint client{40.7, -74.0};
  const ServerRef original =
      fleet.route(client, 42, 500, 1, RoutingPolicy::kCacheFocused);

  // Same PoP first: the neighbour server (cold for this video).
  const ServerRef next = fleet.failover(original, client, 42);
  EXPECT_EQ(next.pop, original.pop);
  EXPECT_NE(next.server, original.server);
  EXPECT_FALSE(fleet.is_down(next));

  // With the PoP dark, the rescue is the warm server of the nearest live
  // other PoP.
  fleet.set_pop_down(original.pop);
  const ServerRef cross = fleet.failover(original, client, 42);
  EXPECT_NE(cross.pop, original.pop);
  EXPECT_EQ(cross.server, fleet.server_index_for_video(42));
  EXPECT_FALSE(fleet.is_down(cross));

  // Whole fleet dead: failover has nowhere to go and reports `from`.
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    fleet.set_pop_down(pop);
  }
  EXPECT_EQ(fleet.failover(original, client, 42), original);
}

TEST(FleetTest, RoutingPolicyNames) {
  EXPECT_STREQ(to_string(RoutingPolicy::kCacheFocused), "cache-focused");
  EXPECT_STREQ(to_string(RoutingPolicy::kPopularityPartitioned),
               "popularity-partitioned");
}

}  // namespace
}  // namespace vstream::cdn
