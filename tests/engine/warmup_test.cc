// The warm-archive LRU bulk build must be indistinguishable from the
// reference write-through replay: identical per-level resident sets (and
// therefore identical peek() results for every probe the sharded engine
// could make).
#include "engine/warmup.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "cdn/fleet.h"
#include "client/abr.h"
#include "workload/catalog.h"
#include "workload/scenario.h"

namespace vstream {
namespace {

struct WarmFixture {
  workload::Scenario scenario = workload::test_scenario();
  sim::Rng rng{scenario.seed};
  workload::VideoCatalog catalog{scenario.catalog, rng};
  cdn::Fleet fleet{scenario.fleet, catalog.size()};
};

void expect_identical_archives(const engine::WarmArchive& bulk,
                               const engine::WarmArchive& reference,
                               const WarmFixture& fx) {
  ASSERT_EQ(bulk.server_count(), reference.server_count());
  const auto ladder = client::default_bitrate_ladder();
  for (std::uint32_t sidx = 0; sidx < bulk.server_count(); ++sidx) {
    const cdn::TwoLevelCache& b = bulk.for_server(sidx);
    const cdn::TwoLevelCache& r = reference.for_server(sidx);
    EXPECT_EQ(b.ram().object_count(), r.ram().object_count()) << "s" << sidx;
    EXPECT_EQ(b.ram().used_bytes(), r.ram().used_bytes()) << "s" << sidx;
    EXPECT_EQ(b.disk().object_count(), r.disk().object_count()) << "s" << sidx;
    EXPECT_EQ(b.disk().used_bytes(), r.disk().used_bytes()) << "s" << sidx;
    // Probe every chunk the engine could ever request from this server.
    for (std::uint32_t video = 0; video < fx.catalog.size(); ++video) {
      const std::uint32_t chunks = fx.catalog.video(video).chunk_count;
      for (std::uint32_t c = 0; c < chunks; ++c) {
        for (const std::uint32_t rung : ladder) {
          const cdn::ChunkKey key{video, c, rung};
          ASSERT_EQ(b.peek(key), r.peek(key))
              << "server " << sidx << " video " << video << " chunk " << c
              << " rung " << rung;
        }
      }
    }
  }
}

TEST(WarmupTest, BulkLruBuildMatchesWriteThroughReplay) {
  WarmFixture fx;
  ASSERT_EQ(fx.scenario.fleet.server.policy, cdn::PolicyKind::kLru);
  const engine::WarmArchive bulk = engine::build_warm_archive(
      fx.fleet, fx.catalog, /*disk_fill=*/0.92, /*universal_head=*/false);
  const engine::WarmArchive reference = engine::build_warm_archive(
      fx.fleet, fx.catalog, 0.92, false, engine::WarmBuildMode::kWriteThrough);
  expect_identical_archives(bulk, reference, fx);
}

TEST(WarmupTest, BulkBuildMatchesWithUniversalHeadAndOtherFills) {
  WarmFixture fx;
  for (const double fill : {0.5, 0.92}) {
    for (const bool head : {false, true}) {
      const engine::WarmArchive bulk =
          engine::build_warm_archive(fx.fleet, fx.catalog, fill, head);
      const engine::WarmArchive reference = engine::build_warm_archive(
          fx.fleet, fx.catalog, fill, head,
          engine::WarmBuildMode::kWriteThrough);
      SCOPED_TRACE(testing::Message() << "fill=" << fill << " head=" << head);
      expect_identical_archives(bulk, reference, fx);
    }
  }
}

}  // namespace
}  // namespace vstream
