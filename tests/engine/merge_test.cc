// merge_shard_results edge cases and partition-skew behavior.
//
// The canonical merge is the one place every shard's (or batch's) output
// flows through, so its edge cases — empty parts, parts with no records,
// parts that disagree on server-stats shape — decide whether odd
// partitions stay bit-identical.  The skew tests document the worst case
// of the id-modulo partition (it is canonical, not balanced) and prove
// the executor's batch granularity absorbs it.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/admission.h"
#include "engine/engine.h"
#include "engine/sharded_runner.h"
#include "engine/warmup.h"
#include "runtime/executor.h"
#include "telemetry/export.h"
#include "workload/population.h"
#include "workload/scenario.h"
#include "workload/session_generator.h"

namespace vstream {
namespace {

std::string export_string(const telemetry::Dataset& data) {
  std::ostringstream out;
  telemetry::write_player_sessions_csv(out, data.player_sessions);
  telemetry::write_cdn_sessions_csv(out, data.cdn_sessions);
  telemetry::write_player_chunks_csv(out, data.player_chunks);
  telemetry::write_cdn_chunks_csv(out, data.cdn_chunks);
  telemetry::write_tcp_snapshots_csv(out, data.tcp_snapshots);
  return out.str();
}

std::filesystem::path merge_scratch(const char* tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("vstream_merge_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ------------------------------------------------------- synthetic parts

engine::ShardResult part_with_sessions(std::initializer_list<std::uint64_t> ids) {
  engine::ShardResult part;
  for (const std::uint64_t id : ids) {
    telemetry::PlayerSessionRecord player;
    player.session_id = id;
    part.dataset.player_sessions.push_back(player);
    telemetry::CdnSessionRecord cdn;
    cdn.session_id = id;
    part.dataset.cdn_sessions.push_back(cdn);
    telemetry::PlayerChunkRecord chunk;
    chunk.session_id = id;
    part.dataset.player_chunks.push_back(chunk);
  }
  return part;
}

TEST(MergeShardResultsTest, NoPartsYieldsEmptyCompletedResult) {
  const engine::ShardResult merged = engine::merge_shard_results({});
  EXPECT_TRUE(merged.dataset.player_sessions.empty());
  EXPECT_TRUE(merged.server_stats.empty());
  EXPECT_TRUE(merged.spill_files.empty());
  EXPECT_TRUE(merged.completed);
}

TEST(MergeShardResultsTest, AllEmptyPartsMergeToEmpty) {
  std::vector<engine::ShardResult> parts(5);
  const engine::ShardResult merged =
      engine::merge_shard_results(std::move(parts));
  EXPECT_TRUE(merged.dataset.player_sessions.empty());
  EXPECT_TRUE(merged.completed);
}

TEST(MergeShardResultsTest, ServerStatsSizedToLargestPart) {
  // Regression: a leading part with empty server stats (an empty shard,
  // or a stopped batch) must not truncate the fleet counters to zero
  // servers — the merge sizes to the largest part seen.
  std::vector<engine::ShardResult> parts(3);
  parts[1].server_stats.resize(4);
  parts[1].server_stats[2].requests_served = 7;
  parts[2].server_stats.resize(4);
  parts[2].server_stats[2].requests_served = 5;
  parts[2].server_stats[3].ram_hits = 11;
  const engine::ShardResult merged =
      engine::merge_shard_results(std::move(parts));
  ASSERT_EQ(merged.server_stats.size(), 4u);
  EXPECT_EQ(merged.server_stats[2].requests_served, 12u);
  EXPECT_EQ(merged.server_stats[3].ram_hits, 11u);
}

TEST(MergeShardResultsTest, CompletedIsConjunctionOverParts) {
  std::vector<engine::ShardResult> parts(3);
  parts[1].completed = false;  // one stopped-early shard taints the run
  EXPECT_FALSE(engine::merge_shard_results(std::move(parts)).completed);
}

TEST(MergeShardResultsTest, SingleSessionPartsInterleaveCanonically) {
  // Shard order deliberately scrambles session order; the merge must
  // re-establish ascending session id regardless.
  std::vector<engine::ShardResult> parts;
  parts.push_back(part_with_sessions({3}));
  parts.push_back(part_with_sessions({}));  // zero completed sessions
  parts.push_back(part_with_sessions({1}));
  parts.push_back(part_with_sessions({2, 5}));
  parts.push_back(part_with_sessions({0, 4}));
  const engine::ShardResult merged =
      engine::merge_shard_results(std::move(parts));
  ASSERT_EQ(merged.dataset.player_sessions.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(merged.dataset.player_sessions[i].session_id, i);
    EXPECT_EQ(merged.dataset.cdn_sessions[i].session_id, i);
    EXPECT_EQ(merged.dataset.player_chunks[i].session_id, i);
  }
}

TEST(MergeShardResultsTest, ParallelMergeIsByteIdenticalToSerial) {
  const auto build_parts = [] {
    std::vector<engine::ShardResult> parts;
    parts.push_back(part_with_sessions({2, 9, 11}));
    parts.push_back(part_with_sessions({}));
    parts.push_back(part_with_sessions({0, 7}));
    parts.push_back(part_with_sessions({1, 3, 5, 8}));
    return parts;
  };
  const engine::ShardResult serial =
      engine::merge_shard_results(build_parts(), nullptr);
  runtime::Executor executor(4);
  const engine::ShardResult parallel =
      engine::merge_shard_results(build_parts(), &executor);
  EXPECT_EQ(export_string(serial.dataset), export_string(parallel.dataset));
}

// --------------------------------------------------- partition skew

engine::AdmittedSession admitted_with_id(std::uint64_t id) {
  engine::AdmittedSession session;
  session.spec.session_id = id;
  return session;
}

TEST(PartitionSkewTest, StridedIdsCollapseIntoOneShard) {
  // Documented worst case: ids strided by a multiple of the shard count
  // all land in one residue class — id-modulo is the *canonical*
  // partition (any shard count, same outputs), not a balanced one.
  std::vector<engine::AdmittedSession> admitted;
  for (std::uint64_t i = 0; i < 40; ++i) {
    admitted.push_back(admitted_with_id(i * 4));
  }
  const auto parts = engine::partition_sessions(admitted, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].size(), 40u);
  EXPECT_TRUE(parts[1].empty());
  EXPECT_TRUE(parts[2].empty());
  EXPECT_TRUE(parts[3].empty());
}

TEST(PartitionSkewTest, TenToOneSkewStillSpreadsAcrossWorkers) {
  // One shard holding 10x the sessions must not serialize the run: the
  // memory-mode batch granularity turns the heavy shard into many
  // steal-able tasks.  Build a real world, then remap session ids so
  // shard 0 of 4 holds ~10x what shard 1 holds (the other two are
  // empty), run with 4 workers and small batches, and require (a) more
  // than one worker executed tasks — or at least one steal happened —
  // and (b) the output is bit-identical to the single-threaded run.
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 110;

  sim::Rng rng(scenario.seed);
  const workload::VideoCatalog catalog(scenario.catalog, rng);
  workload::Population population(scenario.population, rng);
  workload::SessionGenerator generator(scenario.sessions, catalog, population);
  const cdn::Fleet prototype(scenario.fleet, catalog.size());
  const engine::WarmArchive warm =
      engine::build_warm_archive(prototype, catalog, 0.92, false);
  std::vector<engine::AdmittedSession> admitted =
      engine::admit_sessions(scenario, generator, rng);
  ASSERT_EQ(admitted.size(), 110u);
  // 100 sessions into residue 0, 10 into residue 1 (ids stay unique).
  for (std::size_t i = 0; i < admitted.size(); ++i) {
    admitted[i].spec.session_id =
        i < 100 ? i * 4 : (i - 100) * 4 + 1;
  }

  const auto run = [&](std::size_t threads, std::size_t batch,
                       runtime::ParallelStats* stats) {
    engine::ExecOptions exec;
    exec.threads = threads;
    exec.memory_batch = batch;
    return engine::run_sharded(scenario, catalog, warm, nullptr, nullptr,
                               admitted, 4, nullptr, nullptr, &exec, stats);
  };

  const engine::ShardResult reference = run(1, 0, nullptr);
  runtime::ParallelStats stats;
  const engine::ShardResult skewed = run(4, 8, &stats);

  // 100 sessions / batch 8 = 13 tasks for the heavy shard, 2 for the
  // light one, 2 empty-shard tasks.
  EXPECT_EQ(stats.tasks, 17u);
  EXPECT_TRUE(stats.workers_used() >= 2 || stats.steals >= 1)
      << "heavy shard was executed by a single worker with no steals";
  EXPECT_EQ(export_string(reference.dataset), export_string(skewed.dataset));
}

// ------------------------------------- engine-level merge edge cases

TEST(MergeEdgeCaseTest, MostlyEmptyShardsMatchSingleShardBothPaths) {
  // 3 sessions over 8 shards: at least five shards run zero sessions.
  // Memory and spill paths must both reproduce the 1-shard output.
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 3;

  engine::RunOptions one;
  one.shards = 1;
  const engine::RunResult reference = engine::run_simulation(scenario, one);
  const std::string reference_csv = export_string(reference.dataset);

  engine::RunOptions memory;
  memory.shards = 8;
  memory.threads = 4;
  EXPECT_EQ(export_string(engine::run_simulation(scenario, memory).dataset),
            reference_csv);

  engine::RunOptions spill;
  spill.shards = 8;
  spill.threads = 4;
  const std::filesystem::path dir = merge_scratch("empty_shards");
  spill.telemetry_spill_dir = dir.string();
  const engine::RunResult spilled = engine::run_simulation(scenario, spill);
  ASSERT_TRUE(spilled.spilled());
  EXPECT_EQ(spilled.spill.files().size(), 8u);  // empty shards spill too
  EXPECT_EQ(export_string(spilled.spill.load()), reference_csv);
  std::filesystem::remove_all(dir);
}

TEST(MergeEdgeCaseTest, SingleSessionShardsMatchSingleShardBothPaths) {
  // Exactly one session per shard — every per-shard stream is length 1,
  // so the merge is pure interleaving.
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 4;

  engine::RunOptions one;
  one.shards = 1;
  const engine::RunResult reference = engine::run_simulation(scenario, one);
  const std::string reference_csv = export_string(reference.dataset);

  engine::RunOptions four;
  four.shards = 4;
  four.threads = 4;
  EXPECT_EQ(export_string(engine::run_simulation(scenario, four).dataset),
            reference_csv);

  engine::RunOptions spill;
  spill.shards = 4;
  spill.threads = 2;
  const std::filesystem::path dir = merge_scratch("single_session");
  spill.telemetry_spill_dir = dir.string();
  const engine::RunResult spilled = engine::run_simulation(scenario, spill);
  ASSERT_TRUE(spilled.spilled());
  EXPECT_EQ(export_string(spilled.spill.load()), reference_csv);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace vstream
