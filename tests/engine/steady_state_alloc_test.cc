// The perf contract behind the arena/reserve work: once a session is past
// its warmup chunks and serving RAM-resident content, stepping it performs
// ZERO heap allocations — the event/transfer/telemetry machinery runs
// entirely out of reused buffers.
//
// Enforced with replacement counting operator new/delete (they forward to
// malloc/free, so ASan still sees every allocation).  The counters are
// atomic because other tests in this binary run shard worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <unordered_set>
#include <vector>

#include "client/abr.h"
#include "engine/ground_truth.h"
#include "engine/overrides.h"
#include "engine/run_context.h"
#include "engine/session_runtime.h"
#include "telemetry/collector.h"
#include "workload/scenario.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace vstream {
namespace {

TEST(SteadyStateAllocTest, ChunkServingAllocatesNothingAfterWarmup) {
  workload::Scenario scenario = workload::test_scenario();
  // Plenty of RAM: every chunk the warm pass admits stays RAM-resident, so
  // the probe pass below is a pure hit path.
  scenario.fleet.server.ram_bytes = 64ull << 30;

  sim::Rng rng(scenario.seed);
  workload::VideoCatalog catalog(scenario.catalog, rng);
  workload::Population population(scenario.population, rng);
  workload::SessionGenerator generator(scenario.sessions, catalog, population);
  cdn::Fleet fleet(scenario.fleet, catalog.size());
  telemetry::Collector collector(scenario.tcp_sample_interval_ms);
  collector.reserve(/*expected_sessions=*/8, /*expected_chunks=*/4096);
  engine::GroundTruth ground_truth;
  std::unordered_set<net::Prefix24> bad_prefixes;
  std::vector<net::RoundSample> round_scratch;

  engine::RunContext ctx;
  ctx.scenario = &scenario;
  ctx.catalog = &catalog;
  ctx.fleet = &fleet;
  ctx.collector = &collector;
  ctx.ground_truth = &ground_truth;
  ctx.bad_prefixes = &bad_prefixes;
  ctx.round_scratch = &round_scratch;

  constexpr std::uint32_t kChunks = 48;
  workload::SessionSpec spec = generator.next(rng);
  spec.chunk_count = kChunks;
  // Pin every stochastic knob that could divert the probe from the warm
  // pass's chunk keys or into a recovery/anomaly path.
  engine::SessionOverrides overrides;
  overrides.disable_ds_anomalies = true;
  overrides.abr = client::AbrKind::kFixed;
  overrides.fixed_bitrate_kbps = client::default_bitrate_ladder()[1];
  overrides.per_chunk_loss.assign(kChunks, 0.0);
  overrides.bottleneck_kbps = 20'000.0;
  overrides.gpu = true;
  overrides.cpu_load = 0.1;

  // Warm pass: every chunk misses and is admitted write-through.
  {
    engine::SessionRuntime warm(ctx, spec, rng.fork(), &overrides);
    sim::Ms now = 0.0;
    while (warm.has_more()) now += warm.step(now);
    warm.finish();
  }

  // Probe pass: identical keys (same video, fixed rung), now all RAM hits.
  workload::SessionSpec probe_spec = spec;
  probe_spec.session_id += 1000;
  engine::SessionRuntime probe(ctx, probe_spec, rng.fork(), &overrides);
  sim::Ms now = 1e6;
  // Its own warmup: manifest + connection ramp + per-session collector
  // state (tcp sample clock) all happen in the first few chunks.
  for (int i = 0; i < 4 && probe.has_more(); ++i) now += probe.step(now);
  ASSERT_TRUE(probe.has_more());

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  int steps = 0;
  while (probe.has_more()) {
    now += probe.step(now);
    ++steps;
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GE(steps, 40) << "probe session ended early (stall/abandon?)";
  EXPECT_EQ(after - before, 0u)
      << "heap allocations during " << steps << " steady-state chunk steps";
  probe.finish();
}

}  // namespace
}  // namespace vstream
