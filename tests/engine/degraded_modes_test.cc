// Graceful-degradation policies under host faults: a failed checkpoint
// write degrades (the run completes, correct and flagged) while spill and
// export failures abort through sim::HostIoError with committed state
// intact — and each maps onto the documented exit code.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/exit_codes.h"
#include "engine/engine.h"
#include "failpoints/failpoint.h"
#include "sim/host_error.h"
#include "telemetry/export.h"
#include "telemetry/spill_format.h"
#include "workload/scenario.h"

namespace vstream {
namespace {

namespace fs = std::filesystem;

std::string export_string(const telemetry::Dataset& data) {
  std::ostringstream out;
  telemetry::write_player_sessions_csv(out, data.player_sessions);
  telemetry::write_cdn_sessions_csv(out, data.cdn_sessions);
  telemetry::write_player_chunks_csv(out, data.player_chunks);
  telemetry::write_cdn_chunks_csv(out, data.cdn_chunks);
  telemetry::write_tcp_snapshots_csv(out, data.tcp_snapshots);
  return out.str();
}

workload::Scenario small_scenario() {
  workload::Scenario s = workload::test_scenario();
  s.session_count = 80;
  return s;
}

class DegradedModesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoints::Registry::instance().disarm_all();
    dir_ = fs::temp_directory_path() /
           (std::string("vstream_degraded_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    failpoints::Registry::instance().disarm_all();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
};

TEST_F(DegradedModesTest, CheckpointWriteFailureDegradesButCompletes) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions clean;
  clean.shards = 3;
  engine::RunResult reference = engine::run_simulation(scenario, clean);

  failpoints::Registry::instance().arm("checkpoint.write=error@once:0");
  engine::RunOptions options;
  options.shards = 3;
  options.checkpoint_dir = (dir_ / "ckpt").string();
  options.checkpoint_interval = 10;
  engine::RunResult degraded = engine::run_simulation(scenario, options);

  EXPECT_TRUE(degraded.completed);
  EXPECT_TRUE(degraded.checkpoints_degraded);
  EXPECT_FALSE(reference.checkpoints_degraded);
  // Degraded means "no more sidecars", never "different results".
  telemetry::SpillReadStats stats;
  const telemetry::Dataset salvaged = degraded.spill.load(&stats);
  EXPECT_FALSE(stats.corrupted());
  EXPECT_EQ(export_string(salvaged), export_string(reference.dataset));
}

TEST_F(DegradedModesTest, CheckpointRenameFailureAlsoDegrades) {
  failpoints::Registry::instance().arm("checkpoint.rename=error@once:1");
  engine::RunOptions options;
  options.shards = 2;
  options.checkpoint_dir = (dir_ / "ckpt").string();
  options.checkpoint_interval = 10;
  const engine::RunResult result =
      engine::run_simulation(small_scenario(), options);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.checkpoints_degraded);
  // The torn tmp never survives; whatever sidecars committed before the
  // fault are still readable (a crash would resume from them).
  for (const auto& entry : fs::directory_iterator(dir_ / "ckpt")) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }
}

TEST_F(DegradedModesTest, SpillWriteFailureAbortsWithHostIoError) {
  failpoints::Registry::instance().arm("spill.write=error@once:2");
  engine::RunOptions options;
  options.shards = 2;
  options.telemetry_spill_dir = (dir_ / "spill").string();
  EXPECT_THROW(engine::run_simulation(small_scenario(), options),
               sim::HostIoError);
}

TEST_F(DegradedModesTest, SpillFileRemovedBeforeResumeAbortsWithHostIoError) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions options;
  options.shards = 2;
  options.checkpoint_dir = (dir_ / "ckpt").string();
  options.checkpoint_interval = 10;
  options.stop_after_checkpoints = 1;
  const engine::RunResult partial = engine::run_simulation(scenario, options);
  ASSERT_FALSE(partial.completed);

  // The host loses a spill file between the stop and the resume: the
  // sidecar promises committed bytes the file no longer has.
  std::vector<fs::path> spills;
  for (const auto& entry : fs::directory_iterator(dir_ / "ckpt")) {
    if (entry.path().extension() == ".vspill") spills.push_back(entry.path());
  }
  ASSERT_FALSE(spills.empty());
  for (const fs::path& spill : spills) fs::remove(spill);

  engine::RunOptions resume = options;
  resume.stop_after_checkpoints = 0;
  resume.resume = true;
  EXPECT_THROW(engine::run_simulation(scenario, resume), sim::HostIoError);
}

TEST_F(DegradedModesTest, ExportIntoPathUnderAFileMapsToHostIoExit) {
  // Running as root makes permission bits toothless, so the unwritable
  // directory is simulated the portable way: the export target's parent
  // is a regular file, which no process may mkdir through.
  const fs::path blocker = dir_ / "blocker";
  std::ofstream(blocker) << "not a directory\n";
  telemetry::Dataset empty;
  try {
    telemetry::export_dataset(empty, blocker / "out");
    FAIL() << "export into a path under a regular file must throw";
  } catch (const std::exception& error) {
    EXPECT_EQ(core::exit_code_for(error), core::kExitHostIo) << error.what();
  }
}

TEST_F(DegradedModesTest, ExportWriteFailpointThrowsHostIoError) {
  failpoints::Registry::instance().arm("export.write=error@once:0");
  telemetry::Dataset empty;
  EXPECT_THROW(telemetry::export_dataset(empty, dir_ / "out"),
               sim::HostIoError);
}

}  // namespace
}  // namespace vstream
