// Checkpoint sidecar format and resume semantics: round trips, corruption
// tolerance (a damaged sidecar reads as "no checkpoint", never crashes),
// fingerprint sensitivity, and the engine-level refusal to mix runs.
#include "engine/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "engine/engine.h"
#include "workload/scenario.h"

namespace vstream::engine {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("vstream_ckpt_test_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path file(const char* name) const { return dir_ / name; }

  std::filesystem::path dir_;
};

ShardCheckpoint sample_checkpoint() {
  ShardCheckpoint cp;
  cp.fingerprint = 0xDEADBEEFCAFEF00Dull;
  cp.shard_index = 2;
  cp.shard_count = 4;
  cp.next_index = 1'500;
  cp.spill_committed_bytes = 123'456;
  cp.spill_blocks_written = 789;
  cp.ground_truth.ds_anomalies[42] = {1, 2, 7};
  cp.ground_truth.ds_anomalies[7] = {0};
  cp.ground_truth.proxied[42] = true;
  cp.ground_truth.proxied[9] = false;
  cp.ground_truth.total_chunks = 10'000;
  cp.ground_truth.total_ds_anomalies = 4;
  cp.ground_truth.stall_abandonments = 3;
  cp.ground_truth.request_timeouts = 17;
  cp.ground_truth.chunk_retries = 31;
  cp.ground_truth.failover_events = 2;
  cp.ground_truth.failed_sessions = 1;
  cdn::ServerStats stats;
  stats.requests_served = 5'000;
  stats.ram_hits = 3'000;
  stats.disk_hits = 1'200;
  stats.misses = 800;
  stats.prefetched_chunks = 55;
  stats.collapsed_misses = 11;
  stats.backend_fetches = 790;
  stats.stale_serves = 6;
  stats.backend_errors = 4;
  stats.shed_requests = 21;
  stats.hedged_fetches = 9;
  stats.hedge_wins = 5;
  stats.breaker_open_transitions = 2;
  stats.retry_budget_exhausted = 3;
  stats.swr_serves = 8;
  cp.server_stats.push_back(stats);
  cp.server_stats.push_back(cdn::ServerStats{});
  return cp;
}

TEST_F(CheckpointTest, RoundTripsEveryField) {
  const ShardCheckpoint cp = sample_checkpoint();
  write_checkpoint(file("shard-2.vckpt"), cp);
  const auto read = read_checkpoint(file("shard-2.vckpt"));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->fingerprint, cp.fingerprint);
  EXPECT_EQ(read->shard_index, cp.shard_index);
  EXPECT_EQ(read->shard_count, cp.shard_count);
  EXPECT_EQ(read->next_index, cp.next_index);
  EXPECT_EQ(read->spill_committed_bytes, cp.spill_committed_bytes);
  EXPECT_EQ(read->spill_blocks_written, cp.spill_blocks_written);
  EXPECT_EQ(read->ground_truth.ds_anomalies, cp.ground_truth.ds_anomalies);
  EXPECT_EQ(read->ground_truth.proxied, cp.ground_truth.proxied);
  EXPECT_EQ(read->ground_truth.total_chunks, cp.ground_truth.total_chunks);
  EXPECT_EQ(read->ground_truth.failed_sessions,
            cp.ground_truth.failed_sessions);
  ASSERT_EQ(read->server_stats.size(), 2u);
  EXPECT_EQ(read->server_stats[0].requests_served, 5'000u);
  EXPECT_EQ(read->server_stats[0].swr_serves, 8u);
  EXPECT_EQ(read->server_stats[1].requests_served, 0u);
}

TEST_F(CheckpointTest, RewriteReplacesAtomically) {
  ShardCheckpoint cp = sample_checkpoint();
  write_checkpoint(file("s.vckpt"), cp);
  cp.next_index = 9'999;
  write_checkpoint(file("s.vckpt"), cp);
  const auto read = read_checkpoint(file("s.vckpt"));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->next_index, 9'999u);
  // The tmp staging file never survives a successful write.
  EXPECT_FALSE(std::filesystem::exists(file("s.vckpt.tmp")));
}

TEST_F(CheckpointTest, MissingSidecarReadsAsNone) {
  EXPECT_FALSE(read_checkpoint(file("absent.vckpt")).has_value());
}

TEST_F(CheckpointTest, EveryByteFlipReadsAsNoneOrValid) {
  write_checkpoint(file("flip.vckpt"), sample_checkpoint());
  std::string clean;
  {
    std::ifstream in(file("flip.vckpt"), std::ios::binary);
    clean.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] = static_cast<char>(bytes[i] ^ 0x5A);
    {
      std::ofstream out(file("mut.vckpt"), std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    // Any damage must read as "no checkpoint" — a fresh start is always
    // safe — and must never throw or crash.
    EXPECT_FALSE(read_checkpoint(file("mut.vckpt")).has_value())
        << "byte " << i;
  }
}

TEST_F(CheckpointTest, EveryTruncationReadsAsNone) {
  write_checkpoint(file("trunc.vckpt"), sample_checkpoint());
  std::string clean;
  {
    std::ifstream in(file("trunc.vckpt"), std::ios::binary);
    clean.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  for (std::size_t len = 0; len < clean.size(); ++len) {
    {
      std::ofstream out(file("mut.vckpt"), std::ios::binary | std::ios::trunc);
      out.write(clean.data(), static_cast<std::streamsize>(len));
    }
    EXPECT_FALSE(read_checkpoint(file("mut.vckpt")).has_value())
        << "len " << len;
  }
}

TEST_F(CheckpointTest, FingerprintSeparatesRunConfigurations) {
  std::vector<AdmittedSession> admitted(3);
  admitted[0].spec.session_id = 1;
  admitted[0].spec.start_time_ms = 10.0;
  admitted[0].rng_seed = 111;
  admitted[1].spec.session_id = 2;
  admitted[1].spec.start_time_ms = 20.0;
  admitted[1].rng_seed = 222;
  admitted[2].spec.session_id = 3;
  admitted[2].spec.start_time_ms = 30.0;
  admitted[2].rng_seed = 333;

  const std::uint64_t base = run_fingerprint(admitted, 4, nullptr);
  EXPECT_EQ(run_fingerprint(admitted, 4, nullptr), base);  // deterministic

  EXPECT_NE(run_fingerprint(admitted, 2, nullptr), base);  // shard count

  std::vector<AdmittedSession> reseeded = admitted;
  reseeded[1].rng_seed = 223;  // different session substream
  EXPECT_NE(run_fingerprint(reseeded, 4, nullptr), base);

  std::vector<AdmittedSession> shifted = admitted;
  shifted[2].spec.start_time_ms = 31.0;  // different arrival schedule
  EXPECT_NE(run_fingerprint(shifted, 4, nullptr), base);

  const faults::FaultSchedule faults = faults::FaultSchedule::scripted(
      {{faults::FaultKind::kServerCrash, 5'000.0, 1'000.0, 0, 0, 1.0}});
  EXPECT_NE(run_fingerprint(admitted, 4, &faults), base);  // fault schedule
}

TEST_F(CheckpointTest, ResumeWithDifferentConfigurationThrows) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 40;

  RunOptions options;
  options.shards = 2;
  options.checkpoint_dir = (dir_ / "run").string();
  options.checkpoint_interval = 10;
  options.stop_after_checkpoints = 1;
  const RunResult partial = run_simulation(scenario, options);
  EXPECT_FALSE(partial.completed);

  // Same directory, different seed: the sidecar fingerprint cannot match.
  scenario.seed += 1;
  options.resume = true;
  options.stop_after_checkpoints = 0;
  EXPECT_THROW(run_simulation(scenario, options), std::runtime_error);
}

TEST_F(CheckpointTest, ResumeWithoutCheckpointDirThrows) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 5;
  RunOptions options;
  options.shards = 1;
  options.resume = true;
  EXPECT_THROW(run_simulation(scenario, options), std::runtime_error);
}

}  // namespace
}  // namespace vstream::engine
