// Serve-path unification proof: the golden hashes below were captured from
// the pre-refactor implementation (the one with two hand-mirrored serve
// bodies, AtsServer::serve / serve_isolated) and pin every byte of all five
// exported CSV streams for both execution modes:
//
//   * coupled   — core::Pipeline, one live fleet, mutable caches/queues;
//   * sharded   — engine::run_simulation, session-isolated serving against
//                 the immutable warm archive.
//
// The unified cdn::serve_pipeline<Env> must reproduce the exact RNG draw
// order and state transitions of both originals, so these hashes must never
// change.  If a deliberate behaviour change is ever made to the serve path,
// regenerate with:
//
//   VSTREAM_SERVE_GOLDEN=print build/tests/test_engine
//       --gtest_filter='ServeUnificationGolden.*'      (one command line)
//
// and update the constants — in the same commit that changes behaviour,
// with the determinism suite still green.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "faults/fault_schedule.h"
#include "telemetry/export.h"
#include "workload/scenario.h"

namespace vstream {
namespace {

std::uint64_t fnv1a64(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

struct StreamHashes {
  std::uint64_t player_sessions = 0;
  std::uint64_t cdn_sessions = 0;
  std::uint64_t player_chunks = 0;
  std::uint64_t cdn_chunks = 0;
  std::uint64_t tcp_snapshots = 0;
};

StreamHashes hash_streams(const telemetry::Dataset& data) {
  StreamHashes hashes;
  const auto hash_of = [](const auto& writer, const auto& records) {
    std::ostringstream out;
    writer(out, records);
    return fnv1a64(out.str());
  };
  hashes.player_sessions = hash_of(
      [](std::ostream& o, const auto& r) {
        telemetry::write_player_sessions_csv(o, r);
      },
      data.player_sessions);
  hashes.cdn_sessions = hash_of(
      [](std::ostream& o, const auto& r) {
        telemetry::write_cdn_sessions_csv(o, r);
      },
      data.cdn_sessions);
  hashes.player_chunks = hash_of(
      [](std::ostream& o, const auto& r) {
        telemetry::write_player_chunks_csv(o, r);
      },
      data.player_chunks);
  hashes.cdn_chunks = hash_of(
      [](std::ostream& o, const auto& r) {
        telemetry::write_cdn_chunks_csv(o, r);
      },
      data.cdn_chunks);
  hashes.tcp_snapshots = hash_of(
      [](std::ostream& o, const auto& r) {
        telemetry::write_tcp_snapshots_csv(o, r);
      },
      data.tcp_snapshots);
  return hashes;
}

bool print_mode() {
  const char* mode = std::getenv("VSTREAM_SERVE_GOLDEN");
  return mode != nullptr && std::string(mode) == "print";
}

void check_or_print(const char* label, const StreamHashes& got,
                    const StreamHashes& want) {
  if (print_mode()) {
    std::fprintf(stderr,
                 "GOLDEN %s: {0x%016llxull, 0x%016llxull, 0x%016llxull, "
                 "0x%016llxull, 0x%016llxull}\n",
                 label,
                 static_cast<unsigned long long>(got.player_sessions),
                 static_cast<unsigned long long>(got.cdn_sessions),
                 static_cast<unsigned long long>(got.player_chunks),
                 static_cast<unsigned long long>(got.cdn_chunks),
                 static_cast<unsigned long long>(got.tcp_snapshots));
    return;
  }
  EXPECT_EQ(got.player_sessions, want.player_sessions)
      << label << ": player_sessions.csv changed";
  EXPECT_EQ(got.cdn_sessions, want.cdn_sessions)
      << label << ": cdn_sessions.csv changed";
  EXPECT_EQ(got.player_chunks, want.player_chunks)
      << label << ": player_chunks.csv changed";
  EXPECT_EQ(got.cdn_chunks, want.cdn_chunks)
      << label << ": cdn_chunks.csv changed";
  EXPECT_EQ(got.tcp_snapshots, want.tcp_snapshots)
      << label << ": tcp_snapshots.csv changed";
}

/// The schedule mixes every serve-path regime the pipeline has to
/// reproduce: overload shedding, breaker trips + hedges (brownout), a
/// backend outage (stale serves, miss errors), a server crash (failover)
/// and a degraded disk (seek/retry-timer path).
faults::FaultSchedule serve_path_schedule() {
  return faults::FaultSchedule::scripted({
      {faults::FaultKind::kOverload, 2'000.0, 90'000.0, 0, 0, 3.0},
      {faults::FaultKind::kOverload, 2'000.0, 90'000.0, 0, 1, 3.0},
      {faults::FaultKind::kBackendSlowdown, 10'000.0, 60'000.0, 0, 0, 8.0},
      {faults::FaultKind::kServerCrash, 5'000.0, 60'000.0, 0, 2, 1.0},
      {faults::FaultKind::kBackendOutage, 70'000.0, 20'000.0, 0, 0, 1.0},
      {faults::FaultKind::kDiskDegradation, 40'000.0, 40'000.0, 1, 0, 8.0},
  });
}

TEST(ServeUnificationGolden, ShardedIsolatedPathMatchesPreRefactorBytes) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 150;
  engine::RunOptions options;
  options.shards = 2;
  options.faults = serve_path_schedule();
  const engine::RunResult run = engine::run_simulation(scenario, options);
  ASSERT_FALSE(run.dataset.player_chunks.empty());

  const StreamHashes want = {0xe0aa452bbbc7a79dull, 0x50009f55718719b1ull,
                             0x97a1f7d087ca4024ull, 0x45009d5925adb762ull,
                             0x43e934073858d517ull};
  check_or_print("sharded", hash_streams(run.dataset), want);
}

TEST(ServeUnificationGolden, CoupledFleetPathMatchesPreRefactorBytes) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 150;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.inject_faults(serve_path_schedule());
  pipeline.run();
  ASSERT_FALSE(pipeline.dataset().player_chunks.empty());

  const StreamHashes want = {0x216972979293581eull, 0x427687ba8e1e2c6bull,
                             0xec57e561827fd1dfull, 0x717617c3700527eaull,
                             0xcfe5cbb7ba4432e5ull};
  check_or_print("coupled", hash_streams(pipeline.dataset()), want);
}

}  // namespace
}  // namespace vstream
