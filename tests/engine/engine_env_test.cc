// Environment-knob validation: misconfigured VSTREAM_* variables must fail
// loudly (a silent fallback would quietly benchmark the wrong workload).
#include <gtest/gtest.h>

#include <cstdlib>

#include "engine/engine.h"
#include "runtime/executor.h"

namespace vstream {
namespace {

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) { unsetenv(name); }
  ~EnvGuard() { unsetenv(name_); }
  void set(const char* value) { setenv(name_, value, /*overwrite=*/1); }

 private:
  const char* name_;
};

TEST(PositiveEnvTest, UnsetReturnsFallback) {
  EnvGuard guard("VSTREAM_TEST_KNOB");
  EXPECT_EQ(engine::positive_env("VSTREAM_TEST_KNOB", 42u), 42u);
}

TEST(PositiveEnvTest, ValidValueParses) {
  EnvGuard guard("VSTREAM_TEST_KNOB");
  guard.set("17");
  EXPECT_EQ(engine::positive_env("VSTREAM_TEST_KNOB", 42u), 17u);
}

TEST(PositiveEnvTest, RejectsZero) {
  EnvGuard guard("VSTREAM_TEST_KNOB");
  guard.set("0");
  EXPECT_THROW(engine::positive_env("VSTREAM_TEST_KNOB", 42u),
               std::runtime_error);
}

TEST(PositiveEnvTest, RejectsNegative) {
  EnvGuard guard("VSTREAM_TEST_KNOB");
  guard.set("-3");
  EXPECT_THROW(engine::positive_env("VSTREAM_TEST_KNOB", 42u),
               std::runtime_error);
}

TEST(PositiveEnvTest, RejectsNonNumeric) {
  EnvGuard guard("VSTREAM_TEST_KNOB");
  guard.set("many");
  EXPECT_THROW(engine::positive_env("VSTREAM_TEST_KNOB", 42u),
               std::runtime_error);
}

TEST(PositiveEnvTest, RejectsTrailingGarbage) {
  EnvGuard guard("VSTREAM_TEST_KNOB");
  guard.set("12abc");
  EXPECT_THROW(engine::positive_env("VSTREAM_TEST_KNOB", 42u),
               std::runtime_error);
}

TEST(PositiveEnvTest, RejectsEmpty) {
  EnvGuard guard("VSTREAM_TEST_KNOB");
  guard.set("");
  EXPECT_THROW(engine::positive_env("VSTREAM_TEST_KNOB", 42u),
               std::runtime_error);
}

TEST(ResolveShardCountTest, ExplicitRequestWins) {
  EnvGuard guard("VSTREAM_SHARDS");
  guard.set("16");
  EXPECT_EQ(engine::resolve_shard_count(3), 3u);
}

TEST(ResolveShardCountTest, EnvVariableUsedWhenUnspecified) {
  EnvGuard guard("VSTREAM_SHARDS");
  guard.set("6");
  EXPECT_EQ(engine::resolve_shard_count(0), 6u);
}

TEST(ResolveShardCountTest, DefaultsToFixedLogicalShardCount) {
  // The logical partition is a fixed constant, not hardware concurrency:
  // the physical pool (resolve_thread_count) tracks the machine, the
  // partition defines determinism and batch granularity.
  EnvGuard guard("VSTREAM_SHARDS");
  EXPECT_EQ(engine::resolve_shard_count(0), runtime::kDefaultLogicalShards);
}

TEST(ResolveThreadCountTest, ExplicitRequestWins) {
  EnvGuard guard("VSTREAM_THREADS");
  guard.set("16");
  EXPECT_EQ(runtime::resolve_thread_count(3), 3u);
}

TEST(ResolveThreadCountTest, EnvVariableUsedWhenUnspecified) {
  EnvGuard guard("VSTREAM_THREADS");
  guard.set("6");
  EXPECT_EQ(runtime::resolve_thread_count(0), 6u);
}

TEST(ResolveThreadCountTest, DefaultsToHardwareConcurrency) {
  EnvGuard guard("VSTREAM_THREADS");
  EXPECT_GE(runtime::resolve_thread_count(0), 1u);
}

TEST(ResolveThreadCountTest, InvalidEnvThrows) {
  EnvGuard guard("VSTREAM_THREADS");
  guard.set("0");
  EXPECT_THROW(runtime::resolve_thread_count(0), std::runtime_error);
  guard.set("turbo");
  EXPECT_THROW(runtime::resolve_thread_count(0), std::runtime_error);
}

TEST(ResolveShardCountTest, InvalidEnvThrows) {
  EnvGuard guard("VSTREAM_SHARDS");
  guard.set("0");
  EXPECT_THROW(engine::resolve_shard_count(0), std::runtime_error);
  guard.set("fast");
  EXPECT_THROW(engine::resolve_shard_count(0), std::runtime_error);
}

}  // namespace
}  // namespace vstream
