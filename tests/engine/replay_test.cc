// Counterfactual replay and attribution: the idealization hooks do what
// they claim, the blame math stays normalized, and the worst-N
// orchestration is deterministic for any thread count.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "analysis/attribution.h"
#include "engine/attribution.h"
#include "engine/engine.h"
#include "engine/replay.h"
#include "faults/fault_schedule.h"
#include "workload/scenario.h"

namespace vstream {
namespace {

workload::Scenario replay_scenario() {
  workload::Scenario s = workload::test_scenario();
  s.session_count = 120;
  return s;
}

/// Every degraded regime at once: overload (shedding, breaker), backend
/// brownout + outage, a crash, a loss burst and a slow disk.
faults::FaultSchedule stress_schedule() {
  return faults::FaultSchedule::scripted({
      {faults::FaultKind::kOverload, 2'000.0, 90'000.0, 0, 0, 3.0},
      {faults::FaultKind::kOverload, 2'000.0, 90'000.0, 0, 1, 3.0},
      {faults::FaultKind::kBackendSlowdown, 10'000.0, 60'000.0, 0, 0, 8.0},
      {faults::FaultKind::kServerCrash, 5'000.0, 60'000.0, 0, 2, 1.0},
      {faults::FaultKind::kBackendOutage, 70'000.0, 20'000.0, 0, 0, 1.0},
      {faults::FaultKind::kLossBurst, 30'000.0, 30'000.0, 0, 0, 0.05},
      {faults::FaultKind::kDiskDegradation, 40'000.0, 40'000.0, 1, 0, 8.0},
  });
}

engine::RunOptions stress_options() {
  engine::RunOptions options;
  options.shards = 4;
  options.faults = stress_schedule();
  return options;
}

class IdealizationReplayTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario_ = new workload::Scenario(replay_scenario());
    ctx_ = new engine::ReplayContext(*scenario_, stress_options());
  }
  static void TearDownTestSuite() {
    delete ctx_;
    delete scenario_;
    ctx_ = nullptr;
    scenario_ = nullptr;
  }

  static engine::ReplayedSession replay(std::uint64_t id,
                                        cdn::IdealizedSubsystem target) {
    cdn::IdealizationPolicy policy;
    policy.target = target;
    const auto result = ctx_->replay_session(id, policy);
    EXPECT_TRUE(result.has_value());
    return *result;
  }

  static workload::Scenario* scenario_;
  static engine::ReplayContext* ctx_;
};

workload::Scenario* IdealizationReplayTest::scenario_ = nullptr;
engine::ReplayContext* IdealizationReplayTest::ctx_ = nullptr;

TEST_F(IdealizationReplayTest, IdealCacheServesEverythingFromRam) {
  for (const auto& session : ctx_->admitted()) {
    const engine::ReplayedSession ideal =
        replay(session.spec.session_id, cdn::IdealizedSubsystem::kCache);
    for (const auto& chunk : ideal.dataset.cdn_chunks) {
      EXPECT_EQ(chunk.cache_level, cdn::CacheLevel::kRam)
          << "session " << session.spec.session_id << " chunk "
          << chunk.chunk_id;
      EXPECT_EQ(chunk.dbe_ms, 0.0) << "RAM hits never touch the backend";
    }
    if (session.spec.session_id > 40) break;  // a prefix is plenty
  }
}

TEST_F(IdealizationReplayTest, InstantBackendHasZeroBackendLatency) {
  for (const auto& session : ctx_->admitted()) {
    const engine::ReplayedSession ideal =
        replay(session.spec.session_id, cdn::IdealizedSubsystem::kBackend);
    for (const auto& chunk : ideal.dataset.cdn_chunks) {
      EXPECT_EQ(chunk.dbe_ms, 0.0)
          << "session " << session.spec.session_id << " chunk "
          << chunk.chunk_id;
      EXPECT_FALSE(chunk.served_stale) << "an instant backend is never down";
    }
    if (session.spec.session_id > 40) break;
  }
}

TEST_F(IdealizationReplayTest, NoOverloadNeverShedsOrDenies) {
  for (const auto& session : ctx_->admitted()) {
    const engine::ReplayedSession ideal =
        replay(session.spec.session_id, cdn::IdealizedSubsystem::kOverload);
    for (const auto& chunk : ideal.dataset.cdn_chunks) {
      EXPECT_FALSE(chunk.shed);
      EXPECT_FALSE(chunk.budget_denied);
      EXPECT_EQ(chunk.breaker, cdn::BreakerState::kClosed);
    }
    if (session.spec.session_id > 40) break;
  }
}

TEST_F(IdealizationReplayTest, OracleAbrPicksTheSustainableRung) {
  // The oracle picks one rung per session — the highest with 15% delivery
  // headroom at the true bottleneck — and never switches mid-session.
  std::size_t sessions_checked = 0;
  for (const auto& session : ctx_->admitted()) {
    const engine::ReplayedSession ideal =
        replay(session.spec.session_id, cdn::IdealizedSubsystem::kAbr);
    std::set<std::uint32_t> rates;
    for (const auto& chunk : ideal.dataset.player_chunks) {
      rates.insert(chunk.bitrate_kbps);
    }
    if (!rates.empty()) {
      EXPECT_EQ(rates.size(), 1u)
          << "session " << session.spec.session_id
          << ": the oracle never switches";
      ++sessions_checked;
    }
    if (session.spec.session_id > 40) break;
  }
  EXPECT_GT(sessions_checked, 0u);
}

TEST_F(IdealizationReplayTest, LosslessNetworkReplaysAndDiffersFromFactual) {
  // Structural zero-loss assertions live in the transport tests; here the
  // counterfactual must at least run every session to completion and, in
  // aggregate, move the needle somewhere (the stress schedule includes a
  // loss burst).
  bool any_difference = false;
  for (const auto& session : ctx_->admitted()) {
    const std::uint64_t id = session.spec.session_id;
    const auto factual = ctx_->replay_session(id);
    const engine::ReplayedSession ideal =
        replay(id, cdn::IdealizedSubsystem::kNetwork);
    ASSERT_TRUE(factual.has_value());
    any_difference |= ideal.qoe.rebuffer_rate_pct !=
                          factual->qoe.rebuffer_rate_pct ||
                      ideal.qoe.avg_bitrate_kbps !=
                          factual->qoe.avg_bitrate_kbps ||
                      ideal.qoe.startup_ms != factual->qoe.startup_ms;
    if (id > 40) break;
  }
  EXPECT_TRUE(any_difference);
}

// -------------------------------------------------------------------
// Blame math (analysis/attribution.h) is pure arithmetic; pin it.

TEST(AttributionMathTest, PenaltyWeighsAllThreeComponents) {
  analysis::SessionQoe qoe;
  qoe.startup_ms = 2'000.0;        // 2 penalty
  qoe.rebuffer_rate_pct = 3.0;     // 3 penalty
  qoe.avg_bitrate_kbps = 4'000.0;  // deficit 2 Mbps -> 2 penalty
  EXPECT_DOUBLE_EQ(analysis::qoe_penalty(qoe), 7.0);

  qoe.avg_bitrate_kbps = 9'000.0;  // above the top rung: no deficit
  EXPECT_DOUBLE_EQ(analysis::qoe_penalty(qoe), 5.0);
}

TEST(AttributionMathTest, WorstSessionsSortsByPenaltyDescending) {
  std::vector<analysis::SessionQoe> qoes(4);
  qoes[0].startup_ms = 1'000.0;
  qoes[1].startup_ms = 9'000.0;
  qoes[2].startup_ms = 5'000.0;
  qoes[3].startup_ms = 9'000.0;  // tie with 1 -> lower index first
  const auto worst = analysis::worst_sessions(qoes, 3);
  ASSERT_EQ(worst.size(), 3u);
  EXPECT_EQ(worst[0], 1u);
  EXPECT_EQ(worst[1], 3u);
  EXPECT_EQ(worst[2], 2u);
  EXPECT_EQ(analysis::worst_sessions(qoes, 10).size(), 4u);
}

TEST(AttributionMathTest, BlameFractionsSumToAtMostOne) {
  // Heavily overlapping improvements: every subsystem claims nearly the
  // whole penalty.  Normalization must cap the total at 1.
  const double ideals[cdn::kIdealizedSubsystemCount] = {1.0, 1.0, 1.0, 1.0,
                                                        1.0};
  const auto a = analysis::attribute_session(7, 10.0, ideals);
  EXPECT_EQ(a.session_id, 7u);
  double sum = 0.0;
  for (std::size_t i = 0; i < cdn::kIdealizedSubsystemCount; ++i) {
    EXPECT_GE(a.blame[i], 0.0);
    EXPECT_LE(a.blame[i], 1.0);
    sum += a.blame[i];
  }
  EXPECT_LE(sum, 1.0 + 1e-12);
  EXPECT_NEAR(sum + a.residual, 1.0, 1e-12);
}

TEST(AttributionMathTest, DisjointBlameLeavesResidual) {
  // One subsystem explains 4 of 10 penalty points, another 2; the missing
  // 4 are residual.
  const double ideals[cdn::kIdealizedSubsystemCount] = {6.0, 8.0, 10.0, 10.0,
                                                        12.0};
  const auto a = analysis::attribute_session(1, 10.0, ideals);
  EXPECT_DOUBLE_EQ(a.blame[0], 0.4);
  EXPECT_DOUBLE_EQ(a.blame[1], 0.2);
  EXPECT_DOUBLE_EQ(a.blame[2], 0.0);
  EXPECT_DOUBLE_EQ(a.blame[4], 0.0);  // a worse ideal never earns blame
  EXPECT_DOUBLE_EQ(a.residual, 0.4);
}

TEST(AttributionMathTest, ZeroPenaltySessionHasNoBlame) {
  const double ideals[cdn::kIdealizedSubsystemCount] = {0.0, 0.0, 0.0, 0.0,
                                                        0.0};
  const auto a = analysis::attribute_session(2, 0.0, ideals);
  for (std::size_t i = 0; i < cdn::kIdealizedSubsystemCount; ++i) {
    EXPECT_EQ(a.blame[i], 0.0);
  }
  EXPECT_EQ(a.residual, 0.0);
}

// -------------------------------------------------------------------
// The full worst-N pass.

TEST(AttributeWorstTest, ReportIsWellFormedAndBaselineExact) {
  const workload::Scenario scenario = replay_scenario();
  const engine::RunResult run =
      engine::run_simulation(scenario, stress_options());
  const engine::ReplayContext ctx(scenario, stress_options());

  engine::AttributionOptions options;
  options.worst_n = 8;
  const analysis::AttributionReport report =
      engine::attribute_worst(ctx, run.dataset, options);

  ASSERT_EQ(report.sessions.size(), 8u);
  EXPECT_GT(report.sessions_analyzed, 8u);
  double previous = report.sessions.front().baseline_penalty;
  for (const analysis::SessionAttribution& s : report.sessions) {
    // The factual replay must reproduce the measured QoE bit-exactly.
    EXPECT_TRUE(s.baseline_matches) << "session " << s.session_id;
    EXPECT_LE(s.baseline_penalty, previous) << "worst first";
    previous = s.baseline_penalty;
    double sum = 0.0;
    for (std::size_t i = 0; i < cdn::kIdealizedSubsystemCount; ++i) {
      EXPECT_GE(s.blame[i], 0.0);
      sum += s.blame[i];
    }
    EXPECT_LE(sum, 1.0 + 1e-12) << "session " << s.session_id;
  }

  // Thread-count invariance: the replay matrix writes indexed slots, so
  // the report is identical for any pool size.
  engine::AttributionOptions serial = options;
  serial.threads = 1;
  const analysis::AttributionReport again =
      engine::attribute_worst(ctx, run.dataset, serial);
  ASSERT_EQ(again.sessions.size(), report.sessions.size());
  for (std::size_t i = 0; i < report.sessions.size(); ++i) {
    EXPECT_EQ(again.sessions[i].session_id, report.sessions[i].session_id);
    EXPECT_EQ(again.sessions[i].baseline_penalty,
              report.sessions[i].baseline_penalty);
    for (std::size_t k = 0; k < cdn::kIdealizedSubsystemCount; ++k) {
      EXPECT_EQ(again.sessions[i].blame[k], report.sessions[i].blame[k]);
    }
  }

  // The JSON document carries the schema tag and every subsystem key.
  std::ostringstream json;
  analysis::write_attribution_json(json, report);
  const std::string doc = json.str();
  EXPECT_NE(doc.find("\"vstream-attribution-v1\""), std::string::npos);
  for (const auto subsystem : cdn::kIdealizedSubsystems) {
    EXPECT_NE(doc.find(cdn::idealization_name(subsystem)), std::string::npos);
  }
  EXPECT_NE(doc.find("\"mean_blame\""), std::string::npos);
  EXPECT_NE(doc.find("\"residual\""), std::string::npos);
}

}  // namespace
}  // namespace vstream
