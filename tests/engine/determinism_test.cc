// The engine's headline guarantee: for a fixed (scenario, options), the
// merged output is bit-identical for ANY shard count — with and without
// injected faults — and repeated runs reproduce it byte for byte.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/streaming.h"
#include "engine/engine.h"
#include "engine/replay.h"
#include "telemetry/export.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"
#include "workload/scenario.h"

namespace vstream {
namespace {

/// Serialize every record stream exactly as export_dataset would write the
/// files; byte-equality of this string is byte-equality of the exports.
std::string export_string(const telemetry::Dataset& data) {
  std::ostringstream out;
  telemetry::write_player_sessions_csv(out, data.player_sessions);
  telemetry::write_cdn_sessions_csv(out, data.cdn_sessions);
  telemetry::write_player_chunks_csv(out, data.player_chunks);
  telemetry::write_cdn_chunks_csv(out, data.cdn_chunks);
  telemetry::write_tcp_snapshots_csv(out, data.tcp_snapshots);
  return out.str();
}

workload::Scenario small_scenario() {
  workload::Scenario s = workload::test_scenario();
  s.session_count = 120;
  return s;
}

void expect_equal_ground_truth(const engine::GroundTruth& a,
                               const engine::GroundTruth& b) {
  EXPECT_EQ(a.total_chunks, b.total_chunks);
  EXPECT_EQ(a.total_ds_anomalies, b.total_ds_anomalies);
  EXPECT_EQ(a.stall_abandonments, b.stall_abandonments);
  EXPECT_EQ(a.request_timeouts, b.request_timeouts);
  EXPECT_EQ(a.chunk_retries, b.chunk_retries);
  EXPECT_EQ(a.failover_events, b.failover_events);
  EXPECT_EQ(a.failed_sessions, b.failed_sessions);
  EXPECT_EQ(a.ds_anomalies, b.ds_anomalies);
  EXPECT_EQ(a.proxied, b.proxied);
  EXPECT_EQ(a.injected_faults.size(), b.injected_faults.size());
}

void expect_equal_server_stats(const std::vector<cdn::ServerStats>& a,
                               const std::vector<cdn::ServerStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].requests_served, b[i].requests_served) << "server " << i;
    EXPECT_EQ(a[i].ram_hits, b[i].ram_hits) << "server " << i;
    EXPECT_EQ(a[i].disk_hits, b[i].disk_hits) << "server " << i;
    EXPECT_EQ(a[i].misses, b[i].misses) << "server " << i;
    EXPECT_EQ(a[i].backend_fetches, b[i].backend_fetches) << "server " << i;
    EXPECT_EQ(a[i].stale_serves, b[i].stale_serves) << "server " << i;
    EXPECT_EQ(a[i].shed_requests, b[i].shed_requests) << "server " << i;
    EXPECT_EQ(a[i].hedged_fetches, b[i].hedged_fetches) << "server " << i;
    EXPECT_EQ(a[i].hedge_wins, b[i].hedge_wins) << "server " << i;
    EXPECT_EQ(a[i].breaker_open_transitions, b[i].breaker_open_transitions)
        << "server " << i;
    EXPECT_EQ(a[i].retry_budget_exhausted, b[i].retry_budget_exhausted)
        << "server " << i;
    EXPECT_EQ(a[i].swr_serves, b[i].swr_serves) << "server " << i;
  }
}

/// A schedule exercising every recovery path: a server crash (failover), a
/// backend outage (miss errors), a loss burst (client-path loss), and a
/// disk degradation (slow reads / timeouts).
faults::FaultSchedule eventful_schedule() {
  return faults::FaultSchedule::scripted({
      {faults::FaultKind::kServerCrash, 5'000.0, 60'000.0, 0, 1, 1.0},
      {faults::FaultKind::kBackendOutage, 20'000.0, 30'000.0, 0, 0, 1.0},
      {faults::FaultKind::kLossBurst, 40'000.0, 25'000.0, 0, 0, 0.05},
      {faults::FaultKind::kDiskDegradation, 70'000.0, 40'000.0, 1, 0, 8.0},
  });
}

TEST(EngineDeterminismTest, SameSeedTwiceIsByteIdentical) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions options;
  options.shards = 2;
  engine::RunResult first = engine::run_simulation(scenario, options);
  engine::RunResult second = engine::run_simulation(scenario, options);
  EXPECT_FALSE(first.dataset.player_chunks.empty());
  EXPECT_EQ(export_string(first.dataset), export_string(second.dataset));
  expect_equal_ground_truth(first.ground_truth, second.ground_truth);
  expect_equal_server_stats(first.server_stats, second.server_stats);
}

TEST(EngineDeterminismTest, DifferentSeedsDiffer) {
  workload::Scenario scenario = small_scenario();
  const engine::RunResult first = engine::run_simulation(scenario);
  scenario.seed += 1;
  const engine::RunResult second = engine::run_simulation(scenario);
  EXPECT_NE(export_string(first.dataset), export_string(second.dataset));
}

TEST(EngineDeterminismTest, ShardCountInvariantFaultFree) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);
  ASSERT_FALSE(reference.dataset.player_chunks.empty());

  for (const std::size_t shards : {2, 4, 8}) {
    engine::RunOptions options;
    options.shards = shards;
    const engine::RunResult run = engine::run_simulation(scenario, options);
    EXPECT_EQ(run.shard_count, shards);
    EXPECT_EQ(export_string(run.dataset), reference_csv)
        << "shards=" << shards;
    expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
    expect_equal_server_stats(run.server_stats, reference.server_stats);
  }
}

TEST(EngineDeterminismTest, ShardCountInvariantUnderFaults) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  base.faults = eventful_schedule();
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);

  // The schedule must actually bite, or the test proves nothing.
  EXPECT_GT(reference.ground_truth.chunk_retries +
                reference.ground_truth.request_timeouts +
                reference.ground_truth.failover_events,
            0u);
  EXPECT_EQ(reference.ground_truth.injected_faults.size(), 4u);

  for (const std::size_t shards : {2, 4, 8}) {
    engine::RunOptions options;
    options.shards = shards;
    options.faults = eventful_schedule();
    const engine::RunResult run = engine::run_simulation(scenario, options);
    EXPECT_EQ(export_string(run.dataset), reference_csv)
        << "shards=" << shards;
    expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
    expect_equal_server_stats(run.server_stats, reference.server_stats);
  }
}

/// Overload-protection scenario: a flash crowd on every server of PoP 0
/// (shedding active) plus a severe origin brownout (breakers trip, hedges
/// race the slow primary) — the new state machines all engage.
faults::FaultSchedule overload_schedule() {
  return faults::FaultSchedule::scripted({
      {faults::FaultKind::kOverload, 2'000.0, 90'000.0, 0, 0, 3.0},
      {faults::FaultKind::kOverload, 2'000.0, 90'000.0, 0, 1, 3.0},
      {faults::FaultKind::kOverload, 2'000.0, 90'000.0, 0, 2, 2.0},
      {faults::FaultKind::kBackendSlowdown, 10'000.0, 60'000.0, 0, 0, 8.0},
      {faults::FaultKind::kBackendOutage, 80'000.0, 15'000.0, 0, 0, 1.0},
  });
}

TEST(EngineDeterminismTest, ShardCountInvariantUnderOverloadProtection) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  base.faults = overload_schedule();
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);

  // The protection layer must actually engage, or the test proves nothing:
  // the flash crowd sheds low-priority work and the brownout trips
  // per-session breakers.
  std::uint64_t shed = 0, trips = 0;
  for (const cdn::ServerStats& s : reference.server_stats) {
    shed += s.shed_requests;
    trips += s.breaker_open_transitions;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(trips, 0u);

  for (const std::size_t shards : {2, 4, 8}) {
    engine::RunOptions options;
    options.shards = shards;
    options.faults = overload_schedule();
    const engine::RunResult run = engine::run_simulation(scenario, options);
    EXPECT_EQ(export_string(run.dataset), reference_csv)
        << "shards=" << shards;
    expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
    expect_equal_server_stats(run.server_stats, reference.server_stats);
  }
}

TEST(EngineDeterminismTest, ShardCountLargerThanSessionsStillMatches) {
  workload::Scenario scenario = small_scenario();
  scenario.session_count = 5;
  engine::RunOptions one;
  one.shards = 1;
  engine::RunOptions many;
  many.shards = 8;  // most shards run empty
  EXPECT_EQ(export_string(engine::run_simulation(scenario, one).dataset),
            export_string(engine::run_simulation(scenario, many).dataset));
}

/// Fresh per-test scratch directory for spill files.
std::filesystem::path spill_scratch(const char* tag) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (std::string("vstream_determinism_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(EngineDeterminismTest, SpillRunMatchesInMemoryForEveryShardCount) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);
  ASSERT_FALSE(reference.dataset.player_chunks.empty());

  const std::filesystem::path dir = spill_scratch("shards");
  for (const std::size_t shards : {1, 2, 4, 8}) {
    engine::RunOptions options;
    options.shards = shards;
    options.telemetry_spill_dir =
        (dir / ("s" + std::to_string(shards))).string();
    const engine::RunResult run = engine::run_simulation(scenario, options);

    ASSERT_TRUE(run.spilled()) << "shards=" << shards;
    EXPECT_TRUE(run.dataset.player_chunks.empty()) << "shards=" << shards;
    EXPECT_EQ(run.spill.files().size(), shards) << "shards=" << shards;

    // Materializing the spill set reproduces the canonical in-memory
    // dataset byte for byte — CSV export is the oracle.
    EXPECT_EQ(export_string(run.spill.load()), reference_csv)
        << "shards=" << shards;
    expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
    expect_equal_server_stats(run.server_stats, reference.server_stats);
  }
  std::filesystem::remove_all(dir);
}

TEST(EngineDeterminismTest, SpillFormatNeverChangesTheDataset) {
  // v2 (row) and v3 (columnar) files must materialize byte-identical
  // datasets — the on-disk encoding is invisible to every consumer.
  const workload::Scenario scenario = small_scenario();
  const std::filesystem::path dir = spill_scratch("format");
  std::string v2_csv;
  std::uint64_t v2_bytes = 0;
  std::uint64_t v3_bytes = 0;
  for (const std::uint32_t format : {2u, 3u}) {
    engine::RunOptions options;
    options.shards = 4;
    options.spill_format = format;
    options.telemetry_spill_dir =
        (dir / ("v" + std::to_string(format))).string();
    const engine::RunResult run = engine::run_simulation(scenario, options);
    ASSERT_TRUE(run.spilled());
    std::uint64_t bytes = 0;
    for (const std::filesystem::path& file : run.spill.files()) {
      bytes += std::filesystem::file_size(file);
    }
    const std::string csv = export_string(run.spill.load());
    if (format == 2) {
      v2_csv = csv;
      v2_bytes = bytes;
    } else {
      EXPECT_EQ(csv, v2_csv);
      v3_bytes = bytes;
    }
  }
  // The columnar format must actually pay for itself on real telemetry.
  EXPECT_LT(v3_bytes, v2_bytes * 3 / 4)
      << "v3 " << v3_bytes << " vs v2 " << v2_bytes;
  std::filesystem::remove_all(dir);
}

TEST(EngineDeterminismTest, SpillAnalysisMatchesBatchAnalysis) {
  const workload::Scenario scenario = small_scenario();

  engine::RunOptions memory_options;
  memory_options.shards = 4;
  const engine::AnalyzedRun batch =
      engine::run_and_analyze(scenario, memory_options);
  const analysis::QoeAggregate batch_qoe =
      analysis::aggregate_qoe(batch.joined);
  const double tau = batch.run.catalog->chunk_duration_s();

  const std::filesystem::path dir = spill_scratch("analysis");
  engine::RunOptions spill_options;
  spill_options.shards = 4;
  spill_options.telemetry_spill_dir = dir.string();
  const engine::RunResult spilled =
      engine::run_simulation(scenario, spill_options);
  ASSERT_TRUE(spilled.spilled());

  const core::StreamingAnalysis streamed =
      core::analyze_spill(spilled.spill, tau);

  // Proxy detection and join accounting agree exactly.
  EXPECT_EQ(streamed.proxies.proxy_sessions, batch.proxies.proxy_sessions);
  EXPECT_EQ(streamed.sessions_joined, batch.joined.sessions().size());
  EXPECT_EQ(streamed.dropped_as_proxy, batch.joined.dropped_as_proxy());
  EXPECT_EQ(streamed.dropped_incomplete, batch.joined.dropped_incomplete());

  // The QoE aggregate is bit-identical to the batch fold.
  EXPECT_EQ(streamed.qoe.sessions, batch_qoe.sessions);
  EXPECT_EQ(streamed.qoe.startup_ms.mean, batch_qoe.startup_ms.mean);
  EXPECT_EQ(streamed.qoe.startup_ms.median, batch_qoe.startup_ms.median);
  EXPECT_EQ(streamed.qoe.rebuffer_rate_pct.p95,
            batch_qoe.rebuffer_rate_pct.p95);
  EXPECT_EQ(streamed.qoe.avg_bitrate_kbps.mean,
            batch_qoe.avg_bitrate_kbps.mean);
  EXPECT_EQ(streamed.qoe.share_with_rebuffering,
            batch_qoe.share_with_rebuffering);

  // And so is the prefix roll-up.
  const std::vector<analysis::PrefixRollup> batch_prefixes =
      analysis::rollup_prefixes(batch.joined);
  ASSERT_EQ(streamed.prefixes.size(), batch_prefixes.size());
  for (std::size_t i = 0; i < batch_prefixes.size(); ++i) {
    EXPECT_EQ(streamed.prefixes[i].prefix, batch_prefixes[i].prefix);
    EXPECT_EQ(streamed.prefixes[i].session_count,
              batch_prefixes[i].session_count);
    EXPECT_EQ(streamed.prefixes[i].mean_srtt_ms,
              batch_prefixes[i].mean_srtt_ms);
  }

  // analyze_dataset over the in-memory run agrees with analyze_spill over
  // the spilled run on everything, including the recovery counts.
  const core::StreamingAnalysis in_memory =
      core::analyze_dataset(batch.run.dataset, tau);
  EXPECT_EQ(in_memory.sessions_joined, streamed.sessions_joined);
  EXPECT_EQ(in_memory.qoe.startup_ms.mean, streamed.qoe.startup_ms.mean);
  EXPECT_EQ(in_memory.perf.chunks, streamed.perf.chunks);
  EXPECT_EQ(in_memory.perf.scored_chunks, streamed.perf.scored_chunks);
  EXPECT_EQ(in_memory.perf.mean_score, streamed.perf.mean_score);
  EXPECT_EQ(in_memory.recovery.retries, streamed.recovery.retries);
  EXPECT_EQ(in_memory.recovery.mean_recovery_ms,
            streamed.recovery.mean_recovery_ms);
  std::filesystem::remove_all(dir);
}

TEST(EngineDeterminismTest, CheckpointedRunMatchesUninterrupted) {
  // Batching a shard's partition into checkpoint intervals must not change
  // a single byte of output: batches are just a finer sharding.
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);

  const std::filesystem::path dir = spill_scratch("ckpt");
  for (const std::size_t shards : {1, 2, 4}) {
    engine::RunOptions options;
    options.shards = shards;
    options.checkpoint_dir = (dir / ("s" + std::to_string(shards))).string();
    options.checkpoint_interval = 13;  // deliberately awkward batch size
    const engine::RunResult run = engine::run_simulation(scenario, options);

    EXPECT_TRUE(run.completed) << "shards=" << shards;
    ASSERT_TRUE(run.spilled()) << "shards=" << shards;
    EXPECT_EQ(export_string(run.spill.load()), reference_csv)
        << "shards=" << shards;
    expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
    expect_equal_server_stats(run.server_stats, reference.server_stats);
    // Every shard left a sidecar behind.
    for (std::size_t i = 0; i < shards; ++i) {
      EXPECT_TRUE(std::filesystem::exists(
          std::filesystem::path(options.checkpoint_dir) /
          ("shard-" + std::to_string(i) + ".vckpt")))
          << "shards=" << shards << " sidecar " << i;
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(EngineDeterminismTest, ResumedRunIsBitIdenticalToUninterrupted) {
  // The resume scenario the crash-safety work exists for: checkpoint
  // mid-run, stop, restart with resume — analysis bit-identical and CSVs
  // byte-identical to a run that never stopped.  Faults included so the
  // recovery paths cross the checkpoint boundary too.
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  base.faults = eventful_schedule();
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);
  const double tau = reference.catalog->chunk_duration_s();
  const core::StreamingAnalysis reference_analysis =
      core::analyze_dataset(reference.dataset, tau);

  const std::filesystem::path dir = spill_scratch("resume");
  for (const std::size_t shards : {1, 2, 4}) {
    engine::RunOptions options;
    options.shards = shards;
    options.faults = eventful_schedule();
    options.checkpoint_dir = (dir / ("s" + std::to_string(shards))).string();
    options.checkpoint_interval = 20;

    // Phase 1: run until the first checkpoint, then stop mid-run.
    options.stop_after_checkpoints = 1;
    const engine::RunResult partial =
        engine::run_simulation(scenario, options);
    EXPECT_FALSE(partial.completed) << "shards=" << shards;

    // Phase 2: a fresh engine invocation resumes and finishes.
    options.stop_after_checkpoints = 0;
    options.resume = true;
    const engine::RunResult resumed =
        engine::run_simulation(scenario, options);
    EXPECT_TRUE(resumed.completed) << "shards=" << shards;
    ASSERT_TRUE(resumed.spilled()) << "shards=" << shards;

    // Byte-identical CSV export, bit-identical accounting and analysis.
    telemetry::SpillReadStats stats;
    EXPECT_EQ(export_string(resumed.spill.load(&stats)), reference_csv)
        << "shards=" << shards;
    EXPECT_FALSE(stats.corrupted()) << "shards=" << shards;
    expect_equal_ground_truth(resumed.ground_truth, reference.ground_truth);
    expect_equal_server_stats(resumed.server_stats, reference.server_stats);

    const core::StreamingAnalysis resumed_analysis =
        core::analyze_spill(resumed.spill, tau);
    EXPECT_EQ(resumed_analysis.sessions_joined,
              reference_analysis.sessions_joined);
    EXPECT_EQ(resumed_analysis.qoe.startup_ms.mean,
              reference_analysis.qoe.startup_ms.mean);
    EXPECT_EQ(resumed_analysis.perf.mean_score,
              reference_analysis.perf.mean_score);
    EXPECT_EQ(resumed_analysis.recovery.retries,
              reference_analysis.recovery.retries);
    EXPECT_FALSE(resumed_analysis.spill.corrupted()) << "shards=" << shards;
  }
  std::filesystem::remove_all(dir);
}

TEST(EngineDeterminismTest, ResumeOfCompletedRunIsANoOp) {
  const workload::Scenario scenario = small_scenario();
  const std::filesystem::path dir = spill_scratch("noop");
  engine::RunOptions options;
  options.shards = 2;
  options.checkpoint_dir = dir.string();
  options.checkpoint_interval = 50;
  const engine::RunResult first = engine::run_simulation(scenario, options);
  EXPECT_TRUE(first.completed);
  const std::string first_csv = export_string(first.spill.load());

  options.resume = true;
  const engine::RunResult again = engine::run_simulation(scenario, options);
  EXPECT_TRUE(again.completed);
  EXPECT_EQ(export_string(again.spill.load()), first_csv);
  std::filesystem::remove_all(dir);
}

TEST(EngineDeterminismTest, RunAndAnalyzeRefusesSpilledRuns) {
  workload::Scenario scenario = small_scenario();
  scenario.session_count = 10;
  const std::filesystem::path dir = spill_scratch("refuse");
  engine::RunOptions options;
  options.shards = 2;
  options.telemetry_spill_dir = dir.string();
  EXPECT_THROW(engine::run_and_analyze(scenario, options),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

// ===================================================================
// Thread-count invariance: the physical worker pool decides only WHERE
// tasks execute, never what they produce.  Every cell of the
// threads x shards matrix must reproduce the single-threaded,
// single-shard run byte for byte — fault-free, faulted, overloaded,
// spilled, and across a kill/resume boundary.

TEST(ThreadDeterminismTest, ThreadsTimesShardsMatrixFaultFree) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  base.threads = 1;
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);
  ASSERT_FALSE(reference.dataset.player_chunks.empty());

  for (const std::size_t shards : {1, 4, 64}) {
    for (const std::size_t threads : {1, 2, 4, 8}) {
      engine::RunOptions options;
      options.shards = shards;
      options.threads = threads;
      const engine::RunResult run = engine::run_simulation(scenario, options);
      EXPECT_EQ(run.thread_count, threads);
      EXPECT_EQ(export_string(run.dataset), reference_csv)
          << "shards=" << shards << " threads=" << threads;
      expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
      expect_equal_server_stats(run.server_stats, reference.server_stats);
    }
  }
}

TEST(ThreadDeterminismTest, ThreadCountInvariantUnderFaults) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  base.threads = 1;
  base.faults = eventful_schedule();
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);
  EXPECT_GT(reference.ground_truth.chunk_retries +
                reference.ground_truth.request_timeouts +
                reference.ground_truth.failover_events,
            0u);

  for (const std::size_t shards : {4, 64}) {
    for (const std::size_t threads : {2, 8}) {
      engine::RunOptions options;
      options.shards = shards;
      options.threads = threads;
      options.faults = eventful_schedule();
      const engine::RunResult run = engine::run_simulation(scenario, options);
      EXPECT_EQ(export_string(run.dataset), reference_csv)
          << "shards=" << shards << " threads=" << threads;
      expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
      expect_equal_server_stats(run.server_stats, reference.server_stats);
    }
  }
}

TEST(ThreadDeterminismTest, ThreadCountInvariantUnderOverloadProtection) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  base.threads = 1;
  base.faults = overload_schedule();
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);
  std::uint64_t shed = 0;
  for (const cdn::ServerStats& s : reference.server_stats) {
    shed += s.shed_requests;
  }
  EXPECT_GT(shed, 0u);

  for (const std::size_t shards : {1, 4, 64}) {
    engine::RunOptions options;
    options.shards = shards;
    options.threads = 8;
    options.faults = overload_schedule();
    const engine::RunResult run = engine::run_simulation(scenario, options);
    EXPECT_EQ(export_string(run.dataset), reference_csv)
        << "shards=" << shards;
    expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
    expect_equal_server_stats(run.server_stats, reference.server_stats);
  }
}

TEST(ThreadDeterminismTest, SpilledRunsAreThreadCountInvariant) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  base.threads = 1;
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);

  const std::filesystem::path dir = spill_scratch("threads_spill");
  for (const std::size_t threads : {1, 2, 4, 8}) {
    engine::RunOptions options;
    options.shards = 4;
    options.threads = threads;
    options.telemetry_spill_dir =
        (dir / ("t" + std::to_string(threads))).string();
    const engine::RunResult run = engine::run_simulation(scenario, options);
    ASSERT_TRUE(run.spilled()) << "threads=" << threads;
    EXPECT_EQ(run.spill.files().size(), 4u) << "threads=" << threads;
    EXPECT_EQ(export_string(run.spill.load()), reference_csv)
        << "threads=" << threads;
    expect_equal_server_stats(run.server_stats, reference.server_stats);
  }

  // The wide-partition cell: 64 spill files written by 4 workers.
  engine::RunOptions wide;
  wide.shards = 64;
  wide.threads = 4;
  wide.telemetry_spill_dir = (dir / "wide").string();
  const engine::RunResult run = engine::run_simulation(scenario, wide);
  ASSERT_TRUE(run.spilled());
  EXPECT_EQ(run.spill.files().size(), 64u);
  EXPECT_EQ(export_string(run.spill.load()), reference_csv);
  std::filesystem::remove_all(dir);
}

TEST(ThreadDeterminismTest, ResumedRunIsThreadCountInvariant) {
  // Kill/resume under a faulted schedule, interrupted run and resume both
  // multi-threaded — output must match a single-threaded run that never
  // stopped.
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  base.threads = 1;
  base.faults = eventful_schedule();
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);

  const std::filesystem::path dir = spill_scratch("threads_resume");
  for (const std::size_t threads : {4, 8}) {
    engine::RunOptions options;
    options.shards = 4;
    options.threads = threads;
    options.faults = eventful_schedule();
    options.checkpoint_dir = (dir / ("t" + std::to_string(threads))).string();
    options.checkpoint_interval = 20;

    options.stop_after_checkpoints = 1;
    const engine::RunResult partial =
        engine::run_simulation(scenario, options);
    EXPECT_FALSE(partial.completed) << "threads=" << threads;

    options.stop_after_checkpoints = 0;
    options.resume = true;
    const engine::RunResult resumed =
        engine::run_simulation(scenario, options);
    EXPECT_TRUE(resumed.completed) << "threads=" << threads;
    ASSERT_TRUE(resumed.spilled()) << "threads=" << threads;
    EXPECT_EQ(export_string(resumed.spill.load()), reference_csv)
        << "threads=" << threads;
    expect_equal_ground_truth(resumed.ground_truth, reference.ground_truth);
    expect_equal_server_stats(resumed.server_stats, reference.server_stats);
  }
  std::filesystem::remove_all(dir);
}

TEST(ThreadDeterminismTest, ParallelSpillAnalysisMatchesSerial) {
  // analyze_spill folds per-file accumulators as parallel tasks; every
  // thread count must produce the bit-identical analysis the serial
  // merged-stream fold produces.  64 shards → 64 spill files gives the
  // pool real work to steal.
  const workload::Scenario scenario = small_scenario();
  const std::filesystem::path dir = spill_scratch("threads_analysis");
  engine::RunOptions options;
  options.shards = 64;
  options.threads = 4;
  options.telemetry_spill_dir = dir.string();
  const engine::RunResult run = engine::run_simulation(scenario, options);
  ASSERT_TRUE(run.spilled());
  const double tau = run.catalog->chunk_duration_s();

  const core::StreamingAnalysis serial =
      core::analyze_spill(run.spill, tau, {}, 1);
  ASSERT_GT(serial.sessions_joined, 0u);

  for (const std::size_t threads : {2, 4, 8}) {
    const core::StreamingAnalysis parallel =
        core::analyze_spill(run.spill, tau, {}, threads);
    EXPECT_EQ(parallel.proxies.proxy_sessions, serial.proxies.proxy_sessions);
    EXPECT_EQ(parallel.sessions_joined, serial.sessions_joined);
    EXPECT_EQ(parallel.dropped_as_proxy, serial.dropped_as_proxy);
    EXPECT_EQ(parallel.dropped_incomplete, serial.dropped_incomplete);
    EXPECT_EQ(parallel.qoe.sessions, serial.qoe.sessions);
    EXPECT_EQ(parallel.qoe.startup_ms.mean, serial.qoe.startup_ms.mean);
    EXPECT_EQ(parallel.qoe.startup_ms.median, serial.qoe.startup_ms.median);
    EXPECT_EQ(parallel.qoe.rebuffer_rate_pct.p95,
              serial.qoe.rebuffer_rate_pct.p95);
    EXPECT_EQ(parallel.qoe.avg_bitrate_kbps.mean,
              serial.qoe.avg_bitrate_kbps.mean);
    EXPECT_EQ(parallel.qoe.share_with_rebuffering,
              serial.qoe.share_with_rebuffering);
    EXPECT_EQ(parallel.perf.chunks, serial.perf.chunks);
    EXPECT_EQ(parallel.perf.scored_chunks, serial.perf.scored_chunks);
    EXPECT_EQ(parallel.perf.mean_score, serial.perf.mean_score);
    EXPECT_EQ(parallel.recovery.retries, serial.recovery.retries);
    EXPECT_EQ(parallel.recovery.mean_recovery_ms,
              serial.recovery.mean_recovery_ms);
    ASSERT_EQ(parallel.prefixes.size(), serial.prefixes.size());
    for (std::size_t i = 0; i < serial.prefixes.size(); ++i) {
      EXPECT_EQ(parallel.prefixes[i].prefix, serial.prefixes[i].prefix);
      EXPECT_EQ(parallel.prefixes[i].session_count,
                serial.prefixes[i].session_count);
      EXPECT_EQ(parallel.prefixes[i].mean_srtt_ms,
                serial.prefixes[i].mean_srtt_ms);
    }
    // Salvage accounting sums to the serial totals exactly.
    EXPECT_EQ(parallel.spill.blocks_ok, serial.spill.blocks_ok);
    EXPECT_EQ(parallel.spill.bytes_salvaged, serial.spill.bytes_salvaged);
    EXPECT_EQ(parallel.spill.commit_frames, serial.spill.commit_frames);
    EXPECT_FALSE(parallel.spill.corrupted());
  }
  std::filesystem::remove_all(dir);
}

// ===================================================================
// Replay determinism: re-running any single session through
// engine::ReplayContext with a null idealization must reproduce that
// session's slice of the full run — records byte-identical, QoE
// bit-identical — no matter how many shards or threads the full run
// used.  This is the property the attribution pass stands on.

/// The records of one session, in the full dataset's stream order.
telemetry::Dataset session_slice(const telemetry::Dataset& data,
                                 std::uint64_t id) {
  telemetry::Dataset out;
  for (const auto& r : data.player_sessions) {
    if (r.session_id == id) out.player_sessions.push_back(r);
  }
  for (const auto& r : data.cdn_sessions) {
    if (r.session_id == id) out.cdn_sessions.push_back(r);
  }
  for (const auto& r : data.player_chunks) {
    if (r.session_id == id) out.player_chunks.push_back(r);
  }
  for (const auto& r : data.cdn_chunks) {
    if (r.session_id == id) out.cdn_chunks.push_back(r);
  }
  for (const auto& r : data.tcp_snapshots) {
    if (r.session_id == id) out.tcp_snapshots.push_back(r);
  }
  return out;
}

/// A spread of admitted session ids: first, last, and three in between.
std::vector<std::uint64_t> probe_ids(const engine::ReplayContext& ctx) {
  const auto& admitted = ctx.admitted();
  std::vector<std::uint64_t> ids;
  for (const std::size_t at :
       {std::size_t{0}, admitted.size() / 4, admitted.size() / 2,
        3 * admitted.size() / 4, admitted.size() - 1}) {
    ids.push_back(admitted[at].spec.session_id);
  }
  return ids;
}

void expect_replay_matches_cells(const faults::FaultSchedule& schedule,
                                 const char* tag) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions replay_options;
  replay_options.faults = schedule;
  const engine::ReplayContext ctx(scenario, replay_options);
  const std::vector<std::uint64_t> ids = probe_ids(ctx);

  for (const std::size_t shards : {1, 4, 64}) {
    for (const std::size_t threads : {1, 4}) {
      engine::RunOptions options;
      options.shards = shards;
      options.threads = threads;
      options.faults = schedule;
      const engine::RunResult run = engine::run_simulation(scenario, options);

      for (const std::uint64_t id : ids) {
        const auto replayed = ctx.replay_session(id);
        ASSERT_TRUE(replayed.has_value())
            << tag << " session " << id << " not admitted";
        const telemetry::Dataset original = session_slice(run.dataset, id);
        EXPECT_EQ(export_string(replayed->dataset), export_string(original))
            << tag << " session " << id << " shards=" << shards
            << " threads=" << threads;

        // QoE through the same join the analysis tools use must be
        // bit-identical too.
        const telemetry::JoinedDataset joined =
            telemetry::JoinedDataset::build(original);
        ASSERT_EQ(joined.sessions().size(), 1u) << tag << " session " << id;
        const analysis::SessionQoe original_qoe =
            analysis::session_qoe(joined.sessions().front());
        EXPECT_EQ(replayed->qoe.startup_ms, original_qoe.startup_ms);
        EXPECT_EQ(replayed->qoe.rebuffer_rate_pct,
                  original_qoe.rebuffer_rate_pct);
        EXPECT_EQ(replayed->qoe.rebuffer_events, original_qoe.rebuffer_events);
        EXPECT_EQ(replayed->qoe.avg_bitrate_kbps,
                  original_qoe.avg_bitrate_kbps);
        EXPECT_EQ(replayed->qoe.dropped_frame_pct,
                  original_qoe.dropped_frame_pct);
        EXPECT_EQ(replayed->qoe.chunks, original_qoe.chunks);
      }
    }
  }
}

TEST(ReplayDeterminismTest, FactualReplayMatchesFullRunFaultFree) {
  expect_replay_matches_cells(faults::FaultSchedule(), "fault-free");
}

TEST(ReplayDeterminismTest, FactualReplayMatchesFullRunUnderFaults) {
  expect_replay_matches_cells(eventful_schedule(), "faulted");
}

TEST(ReplayDeterminismTest, UnknownSessionIdIsRejected) {
  const engine::ReplayContext ctx(small_scenario());
  EXPECT_FALSE(ctx.replay_session(~std::uint64_t{0}).has_value());
}

TEST(EngineDeterminismTest, RunAndAnalyzeJoinsMergedDataset) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions options;
  options.shards = 4;
  const engine::AnalyzedRun analyzed =
      engine::run_and_analyze(scenario, options);
  EXPECT_FALSE(analyzed.joined.sessions().empty());
  // Every joined session's records must point into the run's own dataset
  // (the join is built after the merge, not per shard).
  EXPECT_LE(analyzed.joined.sessions().size(),
            analyzed.run.dataset.player_sessions.size());
}

}  // namespace
}  // namespace vstream
