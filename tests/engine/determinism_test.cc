// The engine's headline guarantee: for a fixed (scenario, options), the
// merged output is bit-identical for ANY shard count — with and without
// injected faults — and repeated runs reproduce it byte for byte.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "engine/engine.h"
#include "telemetry/export.h"
#include "workload/scenario.h"

namespace vstream {
namespace {

/// Serialize every record stream exactly as export_dataset would write the
/// files; byte-equality of this string is byte-equality of the exports.
std::string export_string(const telemetry::Dataset& data) {
  std::ostringstream out;
  telemetry::write_player_sessions_csv(out, data.player_sessions);
  telemetry::write_cdn_sessions_csv(out, data.cdn_sessions);
  telemetry::write_player_chunks_csv(out, data.player_chunks);
  telemetry::write_cdn_chunks_csv(out, data.cdn_chunks);
  telemetry::write_tcp_snapshots_csv(out, data.tcp_snapshots);
  return out.str();
}

workload::Scenario small_scenario() {
  workload::Scenario s = workload::test_scenario();
  s.session_count = 120;
  return s;
}

void expect_equal_ground_truth(const engine::GroundTruth& a,
                               const engine::GroundTruth& b) {
  EXPECT_EQ(a.total_chunks, b.total_chunks);
  EXPECT_EQ(a.total_ds_anomalies, b.total_ds_anomalies);
  EXPECT_EQ(a.stall_abandonments, b.stall_abandonments);
  EXPECT_EQ(a.request_timeouts, b.request_timeouts);
  EXPECT_EQ(a.chunk_retries, b.chunk_retries);
  EXPECT_EQ(a.failover_events, b.failover_events);
  EXPECT_EQ(a.failed_sessions, b.failed_sessions);
  EXPECT_EQ(a.ds_anomalies, b.ds_anomalies);
  EXPECT_EQ(a.proxied, b.proxied);
  EXPECT_EQ(a.injected_faults.size(), b.injected_faults.size());
}

void expect_equal_server_stats(const std::vector<cdn::ServerStats>& a,
                               const std::vector<cdn::ServerStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].requests_served, b[i].requests_served) << "server " << i;
    EXPECT_EQ(a[i].ram_hits, b[i].ram_hits) << "server " << i;
    EXPECT_EQ(a[i].disk_hits, b[i].disk_hits) << "server " << i;
    EXPECT_EQ(a[i].misses, b[i].misses) << "server " << i;
    EXPECT_EQ(a[i].backend_fetches, b[i].backend_fetches) << "server " << i;
    EXPECT_EQ(a[i].stale_serves, b[i].stale_serves) << "server " << i;
    EXPECT_EQ(a[i].shed_requests, b[i].shed_requests) << "server " << i;
    EXPECT_EQ(a[i].hedged_fetches, b[i].hedged_fetches) << "server " << i;
    EXPECT_EQ(a[i].hedge_wins, b[i].hedge_wins) << "server " << i;
    EXPECT_EQ(a[i].breaker_open_transitions, b[i].breaker_open_transitions)
        << "server " << i;
    EXPECT_EQ(a[i].retry_budget_exhausted, b[i].retry_budget_exhausted)
        << "server " << i;
    EXPECT_EQ(a[i].swr_serves, b[i].swr_serves) << "server " << i;
  }
}

/// A schedule exercising every recovery path: a server crash (failover), a
/// backend outage (miss errors), a loss burst (client-path loss), and a
/// disk degradation (slow reads / timeouts).
faults::FaultSchedule eventful_schedule() {
  return faults::FaultSchedule::scripted({
      {faults::FaultKind::kServerCrash, 5'000.0, 60'000.0, 0, 1, 1.0},
      {faults::FaultKind::kBackendOutage, 20'000.0, 30'000.0, 0, 0, 1.0},
      {faults::FaultKind::kLossBurst, 40'000.0, 25'000.0, 0, 0, 0.05},
      {faults::FaultKind::kDiskDegradation, 70'000.0, 40'000.0, 1, 0, 8.0},
  });
}

TEST(EngineDeterminismTest, SameSeedTwiceIsByteIdentical) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions options;
  options.shards = 2;
  engine::RunResult first = engine::run_simulation(scenario, options);
  engine::RunResult second = engine::run_simulation(scenario, options);
  EXPECT_FALSE(first.dataset.player_chunks.empty());
  EXPECT_EQ(export_string(first.dataset), export_string(second.dataset));
  expect_equal_ground_truth(first.ground_truth, second.ground_truth);
  expect_equal_server_stats(first.server_stats, second.server_stats);
}

TEST(EngineDeterminismTest, DifferentSeedsDiffer) {
  workload::Scenario scenario = small_scenario();
  const engine::RunResult first = engine::run_simulation(scenario);
  scenario.seed += 1;
  const engine::RunResult second = engine::run_simulation(scenario);
  EXPECT_NE(export_string(first.dataset), export_string(second.dataset));
}

TEST(EngineDeterminismTest, ShardCountInvariantFaultFree) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);
  ASSERT_FALSE(reference.dataset.player_chunks.empty());

  for (const std::size_t shards : {2, 4, 8}) {
    engine::RunOptions options;
    options.shards = shards;
    const engine::RunResult run = engine::run_simulation(scenario, options);
    EXPECT_EQ(run.shard_count, shards);
    EXPECT_EQ(export_string(run.dataset), reference_csv)
        << "shards=" << shards;
    expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
    expect_equal_server_stats(run.server_stats, reference.server_stats);
  }
}

TEST(EngineDeterminismTest, ShardCountInvariantUnderFaults) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  base.faults = eventful_schedule();
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);

  // The schedule must actually bite, or the test proves nothing.
  EXPECT_GT(reference.ground_truth.chunk_retries +
                reference.ground_truth.request_timeouts +
                reference.ground_truth.failover_events,
            0u);
  EXPECT_EQ(reference.ground_truth.injected_faults.size(), 4u);

  for (const std::size_t shards : {2, 4, 8}) {
    engine::RunOptions options;
    options.shards = shards;
    options.faults = eventful_schedule();
    const engine::RunResult run = engine::run_simulation(scenario, options);
    EXPECT_EQ(export_string(run.dataset), reference_csv)
        << "shards=" << shards;
    expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
    expect_equal_server_stats(run.server_stats, reference.server_stats);
  }
}

/// Overload-protection scenario: a flash crowd on every server of PoP 0
/// (shedding active) plus a severe origin brownout (breakers trip, hedges
/// race the slow primary) — the new state machines all engage.
faults::FaultSchedule overload_schedule() {
  return faults::FaultSchedule::scripted({
      {faults::FaultKind::kOverload, 2'000.0, 90'000.0, 0, 0, 3.0},
      {faults::FaultKind::kOverload, 2'000.0, 90'000.0, 0, 1, 3.0},
      {faults::FaultKind::kOverload, 2'000.0, 90'000.0, 0, 2, 2.0},
      {faults::FaultKind::kBackendSlowdown, 10'000.0, 60'000.0, 0, 0, 8.0},
      {faults::FaultKind::kBackendOutage, 80'000.0, 15'000.0, 0, 0, 1.0},
  });
}

TEST(EngineDeterminismTest, ShardCountInvariantUnderOverloadProtection) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions base;
  base.shards = 1;
  base.faults = overload_schedule();
  const engine::RunResult reference = engine::run_simulation(scenario, base);
  const std::string reference_csv = export_string(reference.dataset);

  // The protection layer must actually engage, or the test proves nothing:
  // the flash crowd sheds low-priority work and the brownout trips
  // per-session breakers.
  std::uint64_t shed = 0, trips = 0;
  for (const cdn::ServerStats& s : reference.server_stats) {
    shed += s.shed_requests;
    trips += s.breaker_open_transitions;
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(trips, 0u);

  for (const std::size_t shards : {2, 4, 8}) {
    engine::RunOptions options;
    options.shards = shards;
    options.faults = overload_schedule();
    const engine::RunResult run = engine::run_simulation(scenario, options);
    EXPECT_EQ(export_string(run.dataset), reference_csv)
        << "shards=" << shards;
    expect_equal_ground_truth(run.ground_truth, reference.ground_truth);
    expect_equal_server_stats(run.server_stats, reference.server_stats);
  }
}

TEST(EngineDeterminismTest, ShardCountLargerThanSessionsStillMatches) {
  workload::Scenario scenario = small_scenario();
  scenario.session_count = 5;
  engine::RunOptions one;
  one.shards = 1;
  engine::RunOptions many;
  many.shards = 8;  // most shards run empty
  EXPECT_EQ(export_string(engine::run_simulation(scenario, one).dataset),
            export_string(engine::run_simulation(scenario, many).dataset));
}

TEST(EngineDeterminismTest, RunAndAnalyzeJoinsMergedDataset) {
  const workload::Scenario scenario = small_scenario();
  engine::RunOptions options;
  options.shards = 4;
  const engine::AnalyzedRun analyzed =
      engine::run_and_analyze(scenario, options);
  EXPECT_FALSE(analyzed.joined.sessions().empty());
  // Every joined session's records must point into the run's own dataset
  // (the join is built after the merge, not per shard).
  EXPECT_LE(analyzed.joined.sessions().size(),
            analyzed.run.dataset.player_sessions.size());
}

}  // namespace
}  // namespace vstream
