#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <set>

#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"

namespace vstream::core {
namespace {

workload::Scenario tiny_scenario(std::size_t sessions = 60) {
  workload::Scenario s = workload::test_scenario();
  s.session_count = sessions;
  return s;
}

TEST(PipelineTest, ProducesBothTelemetrySides) {
  Pipeline pipeline(tiny_scenario());
  pipeline.warm_caches();
  pipeline.run();
  const telemetry::Dataset& d = pipeline.dataset();
  EXPECT_EQ(d.player_sessions.size(), 60u);
  EXPECT_EQ(d.cdn_sessions.size(), 60u);
  EXPECT_EQ(d.player_chunks.size(), d.cdn_chunks.size());
  EXPECT_GT(d.player_chunks.size(), 60u);
  EXPECT_GE(d.tcp_snapshots.size(), d.player_chunks.size());  // >= 1 per chunk
}

TEST(PipelineTest, DeterministicForSeed) {
  workload::Scenario s = tiny_scenario(30);
  Pipeline a(s), b(s);
  a.warm_caches();
  b.warm_caches();
  a.run();
  b.run();
  const auto& da = a.dataset();
  const auto& db = b.dataset();
  ASSERT_EQ(da.player_chunks.size(), db.player_chunks.size());
  for (std::size_t i = 0; i < da.player_chunks.size(); ++i) {
    EXPECT_DOUBLE_EQ(da.player_chunks[i].dfb_ms, db.player_chunks[i].dfb_ms);
    EXPECT_DOUBLE_EQ(da.player_chunks[i].dlb_ms, db.player_chunks[i].dlb_ms);
    EXPECT_EQ(da.player_chunks[i].bitrate_kbps, db.player_chunks[i].bitrate_kbps);
  }
}

TEST(PipelineTest, DifferentSeedsDiffer) {
  workload::Scenario s1 = tiny_scenario(30);
  workload::Scenario s2 = tiny_scenario(30);
  s2.seed = s1.seed + 1;
  Pipeline a(s1), b(s2);
  a.run();
  b.run();
  // At least some chunk timings must differ.
  const auto& da = a.dataset();
  const auto& db = b.dataset();
  bool any_diff = da.player_chunks.size() != db.player_chunks.size();
  for (std::size_t i = 0;
       !any_diff && i < std::min(da.player_chunks.size(), db.player_chunks.size());
       ++i) {
    any_diff = da.player_chunks[i].dfb_ms != db.player_chunks[i].dfb_ms;
  }
  EXPECT_TRUE(any_diff);
}

TEST(PipelineTest, JoinedDatasetIsComplete) {
  Pipeline pipeline(tiny_scenario());
  pipeline.warm_caches();
  pipeline.run();
  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  EXPECT_EQ(joined.sessions().size(), 60u);
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    EXPECT_NE(s.player, nullptr);
    EXPECT_NE(s.cdn, nullptr);
    ASSERT_FALSE(s.chunks.empty());
    for (const telemetry::JoinedChunk& c : s.chunks) {
      ASSERT_NE(c.player, nullptr);
      ASSERT_NE(c.cdn, nullptr);
      EXPECT_NE(c.last_snapshot, nullptr);
      EXPECT_GT(c.player->dfb_ms, 0.0);
      EXPECT_GE(c.player->dlb_ms, 0.0);
      EXPECT_GT(c.player->bitrate_kbps, 0u);
      EXPECT_GT(c.cdn->chunk_bytes, 0u);
    }
  }
}

TEST(PipelineTest, ChunkIdsAreDenseAndOrdered) {
  Pipeline pipeline(tiny_scenario());
  pipeline.run();
  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    for (std::size_t i = 0; i < s.chunks.size(); ++i) {
      EXPECT_EQ(s.chunks[i].player->chunk_id, i);
    }
  }
}

TEST(PipelineTest, WarmCachesRaisesHitRate) {
  workload::Scenario s = tiny_scenario(120);
  Pipeline cold(s), warm(s);
  warm.warm_caches();
  cold.run();
  warm.run();
  const auto miss_ratio = [](const telemetry::Dataset& d) {
    std::size_t misses = 0;
    for (const auto& c : d.cdn_chunks) {
      if (!c.cache_hit()) ++misses;
    }
    return static_cast<double>(misses) / static_cast<double>(d.cdn_chunks.size());
  };
  EXPECT_LT(miss_ratio(warm.dataset()), miss_ratio(cold.dataset()));
}

TEST(PipelineTest, GroundTruthProxiesMatchFilterTargets) {
  workload::Scenario s = tiny_scenario(300);
  s.population.proxy_fraction = 0.15;
  Pipeline pipeline(s);
  pipeline.run();
  const auto& truth = pipeline.ground_truth();
  ASSERT_GT(truth.proxied.size(), 10u);

  telemetry::ProxyFilterConfig config;
  config.max_sessions_per_ip = 8;
  const auto detected = telemetry::detect_proxies(pipeline.dataset(), config);
  // Every mismatch-detected session is truly proxied (rule (i) has no false
  // positives by construction).
  std::size_t truly_proxied = 0;
  for (const std::uint64_t id : detected.proxy_sessions) {
    if (truth.proxied.contains(id)) ++truly_proxied;
  }
  EXPECT_EQ(truly_proxied, detected.proxy_sessions.size());
  // And the filter catches a decent share of the truth.
  EXPECT_GT(static_cast<double>(detected.proxy_sessions.size()),
            0.4 * static_cast<double>(truth.proxied.size()));
}

TEST(PipelineTest, ScriptedSessionOverridesApply) {
  Pipeline pipeline(tiny_scenario(0));
  pipeline.warm_caches();

  SessionOverrides overrides;
  overrides.abr = client::AbrKind::kFixed;
  overrides.fixed_bitrate_kbps = 1'500;
  overrides.disable_ds_anomalies = true;
  overrides.gpu = true;
  const std::uint64_t id = pipeline.run_session(overrides);

  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  ASSERT_EQ(joined.sessions().size(), 1u);
  const telemetry::JoinedSession& session = joined.sessions()[0];
  EXPECT_EQ(session.session_id, id);
  for (const telemetry::JoinedChunk& c : session.chunks) {
    EXPECT_EQ(c.player->bitrate_kbps, 1'500u);
  }
  EXPECT_TRUE(pipeline.ground_truth().ds_anomalies.empty());
}

TEST(PipelineTest, PerChunkLossOverrideDrivesRetransmissions) {
  Pipeline pipeline(tiny_scenario(0));
  pipeline.warm_caches();

  SessionOverrides overrides;
  overrides.abr = client::AbrKind::kFixed;
  overrides.fixed_bitrate_kbps = 2'500;
  overrides.chunk_count = 10;
  overrides.bottleneck_kbps = 20'000.0;  // wide pipe: no drop-tail noise
  overrides.per_chunk_loss.assign(10, std::optional<double>(0.0));
  overrides.per_chunk_loss[4] = 0.25;  // heavy loss on chunk 4 only
  overrides.disable_ds_anomalies = true;
  pipeline.run_session(overrides);

  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  ASSERT_EQ(joined.sessions().size(), 1u);
  const auto& chunks = joined.sessions()[0].chunks;
  ASSERT_GE(chunks.size(), 6u);
  EXPECT_GT(chunks[4].retransmissions, 0u);
  // Chunks after the overridden one keep the new loss rate only until the
  // next override entry resets it (entry 5 = 0.0): no retransmissions.
  EXPECT_EQ(chunks[5].retransmissions, 0u);
}

TEST(PipelineTest, StartupDelayRecorded) {
  Pipeline pipeline(tiny_scenario());
  pipeline.warm_caches();
  pipeline.run();
  for (const auto& s : pipeline.dataset().player_sessions) {
    EXPECT_GT(s.startup_ms, 0.0);
    EXPECT_LT(s.startup_ms, 60'000.0);  // sane upper bound
  }
}

TEST(PipelineTest, DsAnomalyGroundTruthConsistent) {
  workload::Scenario s = tiny_scenario(400);
  Pipeline pipeline(s);
  pipeline.warm_caches();
  pipeline.run();
  const auto& truth = pipeline.ground_truth();
  EXPECT_GT(truth.total_chunks, 0u);
  std::size_t listed = 0;
  for (const auto& [session, chunks] : truth.ds_anomalies) {
    listed += chunks.size();
  }
  EXPECT_EQ(listed, truth.total_ds_anomalies);
  // Anomalies are rare (paper: 0.32% of chunks) but nonzero at this size.
  EXPECT_LT(static_cast<double>(truth.total_ds_anomalies) /
                static_cast<double>(truth.total_chunks),
            0.05);
}

TEST(PipelineTest, WarmTiersFollowPopularity) {
  workload::Scenario s = tiny_scenario(0);
  Pipeline pipeline(s);
  pipeline.warm_caches();

  // The hottest video of each server is fully resident; a deep-tail video
  // (bottom 10% of the assigned list) holds nothing.
  auto& fleet = pipeline.fleet();
  const auto& catalog = pipeline.catalog();
  const auto ladder = client::default_bitrate_ladder();
  for (std::uint32_t sidx = 0; sidx < fleet.servers_per_pop(); ++sidx) {
    // Find this server's hottest and coldest assigned videos.
    std::uint32_t hottest = 0;
    std::uint32_t coldest = 0;
    bool found = false;
    for (std::uint32_t v = 0; v < catalog.size(); ++v) {
      if (fleet.server_index_for_video(v) != sidx) continue;
      if (!found) hottest = v;
      coldest = v;
      found = true;
    }
    ASSERT_TRUE(found);
    const cdn::AtsServer& server = fleet.server({0, sidx});
    const auto resident = [&](std::uint32_t video, std::uint32_t chunk) {
      // Peek via a const-safe path: both cache levels' contains().
      const cdn::ChunkKey key{video, chunk, ladder[2]};
      return server.cache().ram().contains(key) ||
             server.cache().disk().contains(key);
    };
    EXPECT_TRUE(resident(hottest, 0));
    EXPECT_TRUE(resident(hottest, catalog.video(hottest).chunk_count - 1));
    EXPECT_FALSE(resident(coldest, 0)) << "deep tail should be cold";
  }
}

TEST(RunScenarioTest, ConvenienceWrapperWorks) {
  const telemetry::Dataset d = run_scenario(tiny_scenario(10));
  EXPECT_EQ(d.player_sessions.size(), 10u);
  EXPECT_FALSE(d.player_chunks.empty());
}

}  // namespace
}  // namespace vstream::core
