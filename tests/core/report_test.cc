#include "core/report.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace vstream::core {
namespace {

TEST(ReportTest, FmtFixedDecimals) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
  EXPECT_EQ(fmt(0.0), "0.00");
}

TEST(ReportTest, TableHandlesRaggedRows) {
  Table t({"a", "bb", "ccc"});
  t.add_row({"1", "2", "3"});
  t.add_row({"only-one"});
  t.print();  // must not crash on short rows
  SUCCEED();
}

TEST(ReportTest, PrintersDoNotCrash) {
  print_header("Test section");
  print_metric("answer", 42.0);
  print_metric("label", std::string("value"));
  print_paper_reference("top 10% of videos receive 66% of playbacks");
  const std::vector<analysis::CdfPoint> cdf = {{1.0, 0.5}, {2.0, 1.0}};
  print_cdf("demo", cdf);
  const std::vector<analysis::Bin> bins = {
      {5.0, analysis::summarize({1.0, 2.0, 3.0})}};
  print_bins("demo", bins);
  SUCCEED();
}

TEST(ReportTest, SeriesExportWritesDatFiles) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "vstream_series_test";
  std::filesystem::remove_all(dir);
  ASSERT_EQ(setenv("VSTREAM_SERIES_DIR", dir.c_str(), 1), 0);

  const std::vector<analysis::CdfPoint> cdf = {{1.0, 0.5}, {2.0, 1.0}};
  print_cdf("export_demo", cdf);
  const std::vector<analysis::Bin> bins = {
      {5.0, analysis::summarize({1.0, 2.0, 3.0})}};
  print_bins("export_bins", bins);

  unsetenv("VSTREAM_SERIES_DIR");

  std::ifstream in(dir / "export_demo.dat");
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "# x p");
  double x = 0.0, p = 0.0;
  in >> x >> p;
  EXPECT_DOUBLE_EQ(x, 1.0);
  EXPECT_DOUBLE_EQ(p, 0.5);

  EXPECT_TRUE(std::filesystem::exists(dir / "export_bins.dat"));
  std::filesystem::remove_all(dir);
}

TEST(ReportTest, SeriesExportDisabledByDefault) {
  unsetenv("VSTREAM_SERIES_DIR");
  EXPECT_TRUE(series_export_dir().empty());
  // Printing without the env var must not create stray files.
  const std::vector<analysis::CdfPoint> cdf = {{1.0, 1.0}};
  print_cdf("no_export_demo", cdf);
  SUCCEED();
}

}  // namespace
}  // namespace vstream::core
