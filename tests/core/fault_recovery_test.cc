// End-to-end failure recovery: faults strike mid-run, sessions retry, back
// off, fail over and (when nothing is left) abandon — and every run is a
// pure function of (scenario, schedule, seed).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "analysis/detectors.h"
#include "core/pipeline.h"
#include "faults/fault_schedule.h"
#include "telemetry/export.h"
#include "telemetry/join.h"
#include "workload/scenario.h"

namespace vstream::core {
namespace {

/// Serialize all five telemetry streams; equal strings == equal datasets.
std::string dataset_fingerprint(const telemetry::Dataset& data) {
  std::ostringstream out;
  telemetry::write_player_sessions_csv(out, data.player_sessions);
  telemetry::write_cdn_sessions_csv(out, data.cdn_sessions);
  telemetry::write_player_chunks_csv(out, data.player_chunks);
  telemetry::write_cdn_chunks_csv(out, data.cdn_chunks);
  telemetry::write_tcp_snapshots_csv(out, data.tcp_snapshots);
  return out.str();
}

faults::FaultSchedule crash_and_outage_schedule() {
  return faults::FaultSchedule::scripted({
      // One server dies 3 s in and stays dead for 30 s...
      {faults::FaultKind::kServerCrash, 3'000.0, 30'000.0, 0, 0, 1.0},
      // ...and the origin becomes unreachable for 30 s while sessions are
      // still arriving (cache hits keep serving stale, misses fail fast).
      {faults::FaultKind::kBackendOutage, 8'000.0, 30'000.0, 0, 0, 1.0},
  });
}

TEST(FaultRecoveryTest, MidRunCrashAndOutageEndToEnd) {
  const workload::Scenario scenario = workload::test_scenario();
  Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.inject_faults(crash_and_outage_schedule());
  pipeline.run();

  // Every session terminated — abandoned ones included — never hung.
  const telemetry::Dataset& data = pipeline.dataset();
  ASSERT_EQ(data.player_sessions.size(), scenario.session_count);
  ASSERT_EQ(data.cdn_sessions.size(), scenario.session_count);

  // The injected epochs really fired (2 epochs = 2 applies).
  ASSERT_NE(pipeline.injector(), nullptr);
  EXPECT_EQ(pipeline.injector()->applied_count(), 2u);
  EXPECT_EQ(pipeline.ground_truth().injected_faults.size(), 2u);

  // Recovery machinery is visible in the player-side telemetry...
  std::uint64_t retries = 0, timeouts = 0, failover_chunks = 0;
  for (const telemetry::PlayerChunkRecord& r : data.player_chunks) {
    retries += r.retries;
    timeouts += r.timeouts;
    if (r.failed_over) ++failover_chunks;
  }
  EXPECT_GT(retries, 0u);
  EXPECT_GT(timeouts, 0u);
  EXPECT_GT(failover_chunks, 0u);

  // ...and is bounded by the simulator's ground truth.  (Abandoned chunks
  // retry and time out too but never emit a telemetry record, so ground
  // truth is a superset of what the player logs.)
  const GroundTruth& truth = pipeline.ground_truth();
  EXPECT_GE(truth.chunk_retries, retries);
  EXPECT_GE(truth.request_timeouts, timeouts);
  EXPECT_GE(truth.failover_events, failover_chunks);
  EXPECT_GT(truth.failed_sessions, 0u);

  // Failover chunks paid for their recovery: measurably worse first-byte
  // delay than clean chunks (timeout + backoff + cold connection).
  const auto joined = telemetry::JoinedDataset::build(data);
  const analysis::RecoveryImpact impact = analysis::recovery_impact(joined);
  EXPECT_GT(impact.failover_sessions, 0u);
  EXPECT_GT(impact.mean_dfb_clean_ms, 0.0);
  EXPECT_GT(impact.mean_dfb_failover_ms, impact.mean_dfb_clean_ms + 100.0);
  EXPECT_GT(impact.mean_recovery_ms, 0.0);

  // Graceful degradation during the outage: cache hits kept serving and
  // were marked stale in the CDN logs.
  EXPECT_GT(impact.stale_chunks, 0u);

  // The same seed and schedule reproduce the dataset exactly.
  Pipeline again(scenario);
  again.warm_caches();
  again.inject_faults(crash_and_outage_schedule());
  again.run();
  EXPECT_EQ(dataset_fingerprint(data), dataset_fingerprint(again.dataset()));
}

TEST(FaultRecoveryTest, PopBlackoutFailsOverCrossPopAndRecovers) {
  workload::Scenario scenario = workload::test_scenario();
  Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.inject_faults(faults::FaultSchedule::scripted({
      {faults::FaultKind::kPopBlackout, 2'000.0, 6'000.0, 0, 0, 1.0},
  }));
  pipeline.run();

  const telemetry::Dataset& data = pipeline.dataset();
  ASSERT_EQ(data.player_sessions.size(), scenario.session_count);

  const auto joined = telemetry::JoinedDataset::build(data);
  // During the blackout, sessions assigned to PoP 0 were rescued by the
  // other PoP: their CDN chunk logs show a serving PoP different from the
  // session's original assignment.
  std::size_t cross_pop_sessions = 0;
  // After recovery (blackout ends at 8 s), late sessions stream from their
  // warm nominal assignment again: no failover, chunks on the session's own
  // server.
  std::size_t late_sessions = 0;
  for (const telemetry::JoinedSession& session : joined.sessions()) {
    bool crossed = false;
    for (const telemetry::JoinedChunk& chunk : session.chunks) {
      if (chunk.cdn->pop != session.cdn->pop) crossed = true;
    }
    if (crossed) ++cross_pop_sessions;
    if (session.player->start_time_ms > 9'000.0) {
      ++late_sessions;
      for (const telemetry::JoinedChunk& chunk : session.chunks) {
        EXPECT_FALSE(chunk.player->failed_over);
        EXPECT_EQ(chunk.cdn->pop, session.cdn->pop);
        EXPECT_EQ(chunk.cdn->server, session.cdn->server);
      }
    }
  }
  EXPECT_GT(cross_pop_sessions, 0u);
  EXPECT_GT(late_sessions, 0u);
}

TEST(FaultRecoveryTest, WholeFleetDarkSessionsAbandonButTerminate) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 60;  // all arrive within the dark window
  Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.inject_faults(faults::FaultSchedule::scripted({
      {faults::FaultKind::kPopBlackout, 0.0, 120'000.0, 0, 0, 1.0},
      {faults::FaultKind::kPopBlackout, 0.0, 120'000.0, 1, 0, 1.0},
  }));
  pipeline.run();

  const telemetry::Dataset& data = pipeline.dataset();
  ASSERT_EQ(data.player_sessions.size(), scenario.session_count);
  // With nowhere to fail over, every session exhausts its retries and ends
  // incomplete — but *ends*.
  for (const telemetry::PlayerSessionRecord& session : data.player_sessions) {
    EXPECT_FALSE(session.completed);
    EXPECT_EQ(session.chunks_requested, 0u);
  }
  EXPECT_EQ(pipeline.ground_truth().failed_sessions, scenario.session_count);
}

TEST(FaultRecoveryTest, StochasticScheduleIsBitForBitReproducible) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 150;

  faults::StochasticFaultConfig config;
  config.horizon_ms = sim::seconds(120.0);
  config.server_crashes_per_hour = 30.0;
  config.backend_outages_per_hour = 20.0;
  config.loss_bursts_per_hour = 60.0;

  const auto run_once = [&](std::uint64_t fault_seed) {
    Pipeline pipeline(scenario);
    pipeline.warm_caches();
    sim::Rng fault_rng(fault_seed);
    pipeline.inject_faults(faults::FaultSchedule::stochastic(
        config, pipeline.fleet().pop_count(), pipeline.fleet().servers_per_pop(),
        fault_rng));
    pipeline.run();
    return dataset_fingerprint(pipeline.dataset());
  };

  const std::string first = run_once(2016);
  const std::string second = run_once(2016);
  EXPECT_EQ(first, second) << "same seed must reproduce the dataset exactly";

  const std::string other = run_once(2017);
  EXPECT_NE(first, other) << "a different fault seed must perturb the run";
}

}  // namespace
}  // namespace vstream::core
