// Cross-seed property sweep: invariants that must hold for ANY simulated
// run, regardless of the random draw.
#include <gtest/gtest.h>

#include "analysis/detectors.h"
#include "core/pipeline.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"

namespace vstream::core {
namespace {

class PipelinePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    workload::Scenario scenario = workload::test_scenario();
    scenario.session_count = 120;
    scenario.seed = GetParam();
    pipeline_ = std::make_unique<Pipeline>(scenario);
    pipeline_->warm_caches();
    pipeline_->run();
    joined_ = std::make_unique<telemetry::JoinedDataset>(
        telemetry::JoinedDataset::build(pipeline_->dataset()));
  }

  std::unique_ptr<Pipeline> pipeline_;
  std::unique_ptr<telemetry::JoinedDataset> joined_;
};

TEST_P(PipelinePropertyTest, TimingDecompositionAlwaysConsistent) {
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    for (const telemetry::JoinedChunk& c : s.chunks) {
      ASSERT_NE(c.player, nullptr);
      ASSERT_NE(c.cdn, nullptr);
      // Eq. 1: D_FB covers the server's share with a positive remainder
      // (rtt0 + D_DS).
      EXPECT_GT(c.player->dfb_ms, c.cdn->server_total_ms());
      EXPECT_GE(c.player->dlb_ms, 0.0);
      // Server components are individually non-negative and consistent.
      EXPECT_GE(c.cdn->dwait_ms, 0.0);
      EXPECT_GE(c.cdn->dopen_ms, 0.0);
      EXPECT_GE(c.cdn->dread_ms, c.cdn->dbe_ms);
    }
  }
}

TEST_P(PipelinePropertyTest, TcpCountersMonotonePerSession) {
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    std::uint64_t prev_retrans = 0, prev_segments = 0;
    for (const telemetry::TcpSnapshotRecord* snap : s.snapshots) {
      EXPECT_GE(snap->info.total_retrans, prev_retrans);
      EXPECT_GE(snap->info.segments_out, prev_segments);
      prev_retrans = snap->info.total_retrans;
      prev_segments = snap->info.segments_out;
      EXPECT_GT(snap->info.srtt_ms, 0.0);
      EXPECT_GE(snap->info.rttvar_ms, 0.0);
      EXPECT_GE(snap->info.cwnd_segments, 1u);
    }
  }
}

TEST_P(PipelinePropertyTest, RetransmissionsNeverExceedSegments) {
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    for (const telemetry::JoinedChunk& c : s.chunks) {
      EXPECT_LE(c.retransmissions, c.segments + 1)
          << "session " << s.session_id << " chunk " << c.player->chunk_id;
      EXPECT_LE(c.retx_rate(), 1.0 + 1e-9);
    }
  }
}

TEST_P(PipelinePropertyTest, RequestTimelineMonotone) {
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    double prev_end = -1.0;
    for (const telemetry::JoinedChunk& c : s.chunks) {
      EXPECT_GE(c.player->request_sent_ms, prev_end - 1e-6)
          << "chunks overlap in session " << s.session_id;
      prev_end = c.player->request_sent_ms + c.player->dfb_ms +
                 c.player->dlb_ms;
    }
  }
}

TEST_P(PipelinePropertyTest, RebufferingNeverExceedsWallTime) {
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    for (const telemetry::JoinedChunk& c : s.chunks) {
      EXPECT_LE(c.player->rebuffer_ms,
                c.player->dfb_ms + c.player->dlb_ms + 1e-6);
    }
    EXPECT_LE(s.rebuffer_rate_percent(), 100.0 + 1e-9);
  }
}

TEST_P(PipelinePropertyTest, CacheAccountingMatchesAcrossLayers) {
  std::size_t telemetry_misses = 0;
  for (const auto& c : pipeline_->dataset().cdn_chunks) {
    if (!c.cache_hit()) ++telemetry_misses;
  }
  std::uint64_t server_misses = 0;
  auto& fleet = pipeline_->fleet();
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    for (std::uint32_t idx = 0; idx < fleet.servers_per_pop(); ++idx) {
      server_misses += fleet.server({pop, idx}).misses();
      // Cache level usage never exceeds capacity.
      const cdn::TwoLevelCache& cache = fleet.server({pop, idx}).cache();
      EXPECT_LE(cache.ram().used_bytes(), cache.ram().capacity_bytes());
      EXPECT_LE(cache.disk().used_bytes(), cache.disk().capacity_bytes());
    }
  }
  EXPECT_EQ(server_misses, telemetry_misses);
}

TEST_P(PipelinePropertyTest, DetectorNeverCrashesAndStaysBounded) {
  std::size_t flagged = 0, chunks = 0;
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    const analysis::DsOutlierResult r = analysis::detect_ds_outliers(s);
    flagged += r.flagged_count;
    chunks += s.chunks.size();
  }
  // The Eq. 4 screen flags a small minority at any seed.
  EXPECT_LT(static_cast<double>(flagged), 0.05 * static_cast<double>(chunks));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest,
                         ::testing::Values(11u, 222u, 3333u, 44444u, 555555u));

}  // namespace
}  // namespace vstream::core
