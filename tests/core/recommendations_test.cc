// Tests for the paper's take-away recommendations wired through the
// pipeline: bad-prefix ABR hints, throughput-outlier exclusion, universal
// head caching and prefetch-on-miss at fleet scale.
#include <gtest/gtest.h>

#include "analysis/qoe.h"
#include "client/abr.h"
#include "core/pipeline.h"
#include "telemetry/join.h"

namespace vstream::core {
namespace {

TEST(BadPrefixHintTest, RateBasedStartsAtFloorWhenHinted) {
  client::RateBasedAbr abr;
  client::AbrContext ctx;
  ctx.known_bad_prefix = true;
  EXPECT_EQ(abr.choose(ctx, client::default_bitrate_ladder()),
            client::default_bitrate_ladder()[0]);
  ctx.known_bad_prefix = false;
  EXPECT_EQ(abr.choose(ctx, client::default_bitrate_ladder()),
            client::default_bitrate_ladder()[1]);
}

TEST(BadPrefixHintTest, HintOnlyAffectsTheColdStart) {
  client::RateBasedAbr abr;
  client::AbrContext ctx;
  ctx.known_bad_prefix = true;
  ctx.smoothed_throughput_kbps = 10'000.0;
  // With throughput evidence the hint no longer constrains the choice.
  EXPECT_GT(abr.choose(ctx, client::default_bitrate_ladder()), 1'500u);
}

TEST(BadPrefixHintTest, PipelineAppliesHintToFlaggedPrefixSessions) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 0;
  scenario.abr = client::AbrKind::kRateBased;
  Pipeline pipeline(scenario);
  pipeline.warm_caches();

  // Flag every prefix: the next session must start at the floor rung.
  std::unordered_set<net::Prefix24> all;
  for (const auto& p : pipeline.population().prefixes()) all.insert(p.prefix);
  pipeline.set_bad_prefixes(std::move(all));

  SessionOverrides overrides;
  overrides.chunk_count = 5;
  overrides.disable_ds_anomalies = true;
  pipeline.run_session(overrides);

  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  ASSERT_EQ(joined.sessions().size(), 1u);
  EXPECT_EQ(joined.sessions()[0].chunks[0].player->bitrate_kbps,
            client::default_bitrate_ladder()[0]);
}

TEST(BadPrefixHintTest, UnflaggedSessionsUnaffected) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 0;
  scenario.abr = client::AbrKind::kRateBased;
  Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.set_bad_prefixes({});  // nothing flagged

  SessionOverrides overrides;
  overrides.chunk_count = 5;
  overrides.disable_ds_anomalies = true;
  pipeline.run_session(overrides);

  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  EXPECT_EQ(joined.sessions()[0].chunks[0].player->bitrate_kbps,
            client::default_bitrate_ladder()[1]);
}

TEST(OutlierFilterTest, FilterPreventsOvershootAfterBufferedChunk) {
  // Download stacks that frequently hold chunks corrupt the client-side
  // throughput signal; the §4.3-1 filter keeps the rate-based ABR honest.
  const auto run_overshoot_share = [](bool filter) {
    workload::Scenario scenario = workload::test_scenario();
    scenario.session_count = 0;
    scenario.abr = client::AbrKind::kRateBased;
    scenario.abr_filters_throughput_outliers = filter;
    Pipeline pipeline(scenario);
    pipeline.warm_caches();

    client::DownloadStackProfile noisy;
    noisy.anomaly_probability = 0.15;
    std::size_t overshoot = 0, chunks = 0;
    for (int i = 0; i < 40; ++i) {
      SessionOverrides overrides;
      overrides.chunk_count = 15;
      overrides.ds_profile = noisy;
      overrides.bottleneck_kbps = 4'000.0;
      pipeline.run_session(overrides);
    }
    for (const auto& c : pipeline.dataset().player_chunks) {
      ++chunks;
      if (c.bitrate_kbps > 4'000) ++overshoot;
    }
    return static_cast<double>(overshoot) / static_cast<double>(chunks);
  };

  const double naive = run_overshoot_share(false);
  const double filtered = run_overshoot_share(true);
  EXPECT_LT(filtered, naive);
  EXPECT_LT(filtered, 0.05);
}

TEST(UniversalHeadCacheTest, RemovesFirstChunkMisses) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 250;

  const auto first_chunk_miss_count = [&](bool universal) {
    Pipeline pipeline(scenario);
    pipeline.warm_caches(0.92, universal);
    pipeline.run();
    std::size_t misses = 0;
    for (const auto& c : pipeline.dataset().cdn_chunks) {
      if (c.chunk_id == 0 && !c.cache_hit()) ++misses;
    }
    return misses;
  };

  EXPECT_EQ(first_chunk_miss_count(true), 0u);
  EXPECT_GE(first_chunk_miss_count(false), first_chunk_miss_count(true));
}

TEST(PrefetchFleetTest, ReducesMissesEndToEnd) {
  const auto miss_ratio = [](std::uint32_t depth) {
    workload::Scenario scenario = workload::test_scenario();
    scenario.session_count = 250;
    scenario.fleet.server.prefetch_on_miss = depth;
    Pipeline pipeline(scenario);
    pipeline.warm_caches();
    pipeline.run();
    std::size_t misses = 0;
    for (const auto& c : pipeline.dataset().cdn_chunks) {
      if (!c.cache_hit()) ++misses;
    }
    return static_cast<double>(misses) /
           static_cast<double>(pipeline.dataset().cdn_chunks.size());
  };
  const double without = miss_ratio(0);
  const double with = miss_ratio(6);
  EXPECT_LT(with, without);
}

TEST(StallAbandonmentTest, StallsShortenSessionsWhenEnabled) {
  const auto mean_chunks_and_abandons = [](double p) {
    workload::Scenario scenario = workload::test_scenario();
    scenario.session_count = 250;
    scenario.sessions.abandon_probability = 0.0;
    scenario.stall_abandonment_probability = p;
    Pipeline pipeline(scenario);
    pipeline.warm_caches();
    pipeline.run();
    double chunks = 0.0;
    for (const auto& s : pipeline.dataset().player_sessions) {
      chunks += s.chunks_requested;
    }
    return std::pair<double, std::uint64_t>(
        chunks / 250.0, pipeline.ground_truth().stall_abandonments);
  };
  const auto [chunks_off, abandons_off] = mean_chunks_and_abandons(0.0);
  const auto [chunks_on, abandons_on] = mean_chunks_and_abandons(1.0);
  EXPECT_EQ(abandons_off, 0u);
  // With certain abandonment on every stall, stalled sessions truncate.
  EXPECT_GT(abandons_on, 0u);
  EXPECT_LT(chunks_on, chunks_off);
}

TEST(StallAbandonmentTest, TruncatedCountMatchesTelemetry) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 200;
  scenario.stall_abandonment_probability = 1.0;
  Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();
  // chunks_requested must equal the number of chunk records per session.
  std::unordered_map<std::uint64_t, std::uint32_t> counts;
  for (const auto& c : pipeline.dataset().player_chunks) {
    ++counts[c.session_id];
  }
  for (const auto& s : pipeline.dataset().player_sessions) {
    EXPECT_EQ(counts[s.session_id], s.chunks_requested)
        << "session " << s.session_id;
  }
}

TEST(QoeIntegrationTest, AggregateFromPipelineIsSane) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 120;
  Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();
  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  const analysis::QoeAggregate agg = analysis::aggregate_qoe(joined);
  EXPECT_EQ(agg.sessions, 120u);
  EXPECT_GT(agg.startup_ms.median, 0.0);
  EXPECT_LT(agg.startup_ms.median, 30'000.0);
  EXPECT_GE(agg.share_with_rebuffering, 0.0);
  EXPECT_LE(agg.share_with_rebuffering, 1.0);
  EXPECT_GE(agg.avg_bitrate_kbps.min, 300.0);
  EXPECT_LE(agg.avg_bitrate_kbps.max, 6'000.0);
}

}  // namespace
}  // namespace vstream::core
