// End-to-end integration: run a full scenario through the pipeline and
// check structural invariants that span modules (Eq. 1 composition, cache
// accounting vs telemetry, QoE bookkeeping).
#include <gtest/gtest.h>

#include "analysis/aggregate.h"
#include "analysis/detectors.h"
#include "core/pipeline.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"

namespace vstream {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::Scenario s = workload::test_scenario();
    s.session_count = 500;
    pipeline_ = new core::Pipeline(s);
    pipeline_->warm_caches();
    pipeline_->run();
    proxies_ = new telemetry::ProxyFilterResult(
        telemetry::detect_proxies(pipeline_->dataset()));
    joined_ = new telemetry::JoinedDataset(
        telemetry::JoinedDataset::build(pipeline_->dataset(), proxies_));
  }
  static void TearDownTestSuite() {
    delete joined_;
    delete proxies_;
    delete pipeline_;
    joined_ = nullptr;
    proxies_ = nullptr;
    pipeline_ = nullptr;
  }

  static core::Pipeline* pipeline_;
  static telemetry::ProxyFilterResult* proxies_;
  static telemetry::JoinedDataset* joined_;
};

core::Pipeline* EndToEndTest::pipeline_ = nullptr;
telemetry::ProxyFilterResult* EndToEndTest::proxies_ = nullptr;
telemetry::JoinedDataset* EndToEndTest::joined_ = nullptr;

TEST_F(EndToEndTest, SessionsSurviveJoin) {
  EXPECT_GT(joined_->sessions().size(), 400u);
  EXPECT_EQ(joined_->sessions().size() + joined_->dropped_as_proxy(),
            pipeline_->dataset().player_sessions.size());
}

TEST_F(EndToEndTest, Equation1Composition) {
  // D_FB = D_CDN + D_BE + D_DS + rtt0 (Eq. 1): the player-side D_FB must
  // always exceed the server-side share, and the residual (network + DS)
  // must be positive and sane.
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    for (const telemetry::JoinedChunk& c : s.chunks) {
      const double residual =
          c.player->dfb_ms - c.cdn->dcdn_ms() - c.cdn->dbe_ms;
      EXPECT_GT(residual, 0.0) << "rtt0 + D_DS must be positive";
      EXPECT_LT(residual, 60'000.0);
    }
  }
}

TEST_F(EndToEndTest, ServerLatencyComponentsNonNegative) {
  for (const auto& c : pipeline_->dataset().cdn_chunks) {
    EXPECT_GE(c.dwait_ms, 0.0);
    EXPECT_GE(c.dopen_ms, 0.0);
    EXPECT_GE(c.dread_ms, 0.0);
    EXPECT_GE(c.dbe_ms, 0.0);
    if (c.cache_hit()) {
      EXPECT_DOUBLE_EQ(c.dbe_ms, 0.0);
    } else {
      EXPECT_GT(c.dbe_ms, 0.0);
    }
  }
}

TEST_F(EndToEndTest, FleetCountersMatchTelemetry) {
  std::size_t telemetry_misses = 0;
  for (const auto& c : pipeline_->dataset().cdn_chunks) {
    if (!c.cache_hit()) ++telemetry_misses;
  }
  std::uint64_t server_misses = 0, server_requests = 0;
  auto& fleet = pipeline_->fleet();
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    for (std::uint32_t idx = 0; idx < fleet.servers_per_pop(); ++idx) {
      server_misses += fleet.server({pop, idx}).misses();
      server_requests += fleet.server({pop, idx}).requests_served();
    }
  }
  EXPECT_EQ(server_misses, telemetry_misses);
  EXPECT_EQ(server_requests, pipeline_->dataset().cdn_chunks.size());
}

TEST_F(EndToEndTest, TcpSnapshotsBelongToSessions) {
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    EXPECT_FALSE(s.snapshots.empty());
    double prev = -1.0;
    for (const auto* snap : s.snapshots) {
      EXPECT_EQ(snap->session_id, s.session_id);
      EXPECT_GE(snap->at_ms, prev);
      prev = snap->at_ms;
      EXPECT_GT(snap->info.srtt_ms, 0.0);
      EXPECT_GT(snap->info.cwnd_segments, 0u);
    }
  }
}

TEST_F(EndToEndTest, SessionNetMetricsValidEverywhere) {
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    const analysis::SessionNetMetrics m = analysis::session_net_metrics(s);
    ASSERT_TRUE(m.valid);
    EXPECT_GT(m.srtt_min_ms, 0.0);
    // The baseline is an estimate built from per-chunk minima; on short
    // noisy sessions it can exceed the sample mean, but never wildly.
    EXPECT_LE(m.srtt_min_ms, 3.0 * m.srtt_mean_ms + 50.0);
    EXPECT_GE(m.srtt_cv, 0.0);
  }
}

TEST_F(EndToEndTest, RebufferingImpliesSlowChunks) {
  // Sessions that stalled must contain at least one chunk whose download
  // was slower than real time (perfscore < 1).
  const double tau = pipeline_->catalog().chunk_duration_s();
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    if (s.total_rebuffer_ms() <= 0.0) continue;
    bool any_slow = false;
    for (const telemetry::JoinedChunk& c : s.chunks) {
      if (analysis::perf_score(tau, c.player->dfb_ms, c.player->dlb_ms) < 1.0) {
        any_slow = true;
        break;
      }
    }
    EXPECT_TRUE(any_slow) << "session " << s.session_id;
  }
}

TEST_F(EndToEndTest, RenderingBookkeepingConsistent) {
  for (const auto& c : pipeline_->dataset().player_chunks) {
    EXPECT_LE(c.dropped_frames, c.total_frames);
    EXPECT_GE(c.avg_fps, 0.0);
    EXPECT_LE(c.avg_fps, 30.0 + 1e-9);
  }
}

TEST_F(EndToEndTest, DsDetectorFindsTruthWithoutWildFalsePositives) {
  // Score the Eq. 4 detector against simulator ground truth — the
  // validation the paper could not run.
  const auto& truth = pipeline_->ground_truth().ds_anomalies;
  std::size_t true_positives = 0, false_positives = 0, flagged = 0;
  for (const telemetry::JoinedSession& s : joined_->sessions()) {
    const analysis::DsOutlierResult r = analysis::detect_ds_outliers(s);
    flagged += r.flagged_count;
    const auto it = truth.find(s.session_id);
    for (std::size_t i = 0; i < r.flagged.size(); ++i) {
      if (!r.flagged[i]) continue;
      const std::uint32_t chunk_id = s.chunks[i].player->chunk_id;
      const bool is_true =
          it != truth.end() &&
          std::find(it->second.begin(), it->second.end(), chunk_id) !=
              it->second.end();
      if (is_true) {
        ++true_positives;
      } else {
        ++false_positives;
      }
    }
  }
  if (flagged > 0) {
    // Precision should dominate: the Eq. 4 screen is conservative.
    EXPECT_GT(true_positives, false_positives);
  }
}

}  // namespace
}  // namespace vstream
