// Failure injection and extreme-configuration stress: the pipeline must
// stay invariant-clean when pushed far outside the calibrated regime.
#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "telemetry/join.h"
#include "telemetry/proxy_filter.h"

namespace vstream {
namespace {

void check_invariants(core::Pipeline& pipeline) {
  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    for (const telemetry::JoinedChunk& c : s.chunks) {
      ASSERT_NE(c.player, nullptr);
      ASSERT_NE(c.cdn, nullptr);
      EXPECT_GT(c.player->dfb_ms, 0.0);
      EXPECT_GE(c.player->dlb_ms, 0.0);
      EXPECT_LE(c.player->rebuffer_ms,
                c.player->dfb_ms + c.player->dlb_ms + 1e-6);
      EXPECT_LE(c.player->dropped_frames, c.player->total_frames);
      EXPECT_GE(c.cdn->dread_ms, c.cdn->dbe_ms);
    }
  }
}

workload::Scenario stress_base() {
  workload::Scenario s = workload::test_scenario();
  s.session_count = 80;
  return s;
}

TEST(StressTest, DialUpBottlenecks) {
  // 56 kbps modems: every chunk takes minutes; nothing may stall forever
  // or divide by zero.
  workload::Scenario s = stress_base();
  s.population.bandwidth_median_kbps = 56.0;
  s.population.min_bandwidth_kbps = 56.0;
  s.population.bandwidth_sigma = 0.01;
  core::Pipeline pipeline(s);
  pipeline.warm_caches();
  pipeline.run();
  check_invariants(pipeline);
  // Everyone is throughput-starved: rebuffering must be rampant.
  const auto joined = telemetry::JoinedDataset::build(pipeline.dataset());
  std::size_t stalled = 0;
  for (const auto& session : joined.sessions()) {
    if (session.total_rebuffer_ms() > 0.0) ++stalled;
  }
  EXPECT_GT(stalled, joined.sessions().size() / 2);
}

TEST(StressTest, ZeroRamCache) {
  workload::Scenario s = stress_base();
  s.fleet.server.ram_bytes = 0;  // every hit is a disk hit
  core::Pipeline pipeline(s);
  pipeline.warm_caches();
  pipeline.run();
  check_invariants(pipeline);
  auto& fleet = pipeline.fleet();
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    for (std::uint32_t idx = 0; idx < fleet.servers_per_pop(); ++idx) {
      EXPECT_EQ(fleet.server({pop, idx}).ram_hits(), 0u);
    }
  }
}

TEST(StressTest, TinyDiskChurnsConstantly) {
  workload::Scenario s = stress_base();
  s.fleet.server.ram_bytes = 8ull << 20;
  s.fleet.server.disk_bytes = 64ull << 20;  // a handful of chunks
  core::Pipeline pipeline(s);
  pipeline.warm_caches();
  pipeline.run();
  check_invariants(pipeline);
}

TEST(StressTest, BackendMeltdown) {
  // Every backend fetch is a multi-second hiccup.
  workload::Scenario s = stress_base();
  s.fleet.backend.hiccup_probability = 1.0;
  s.fleet.backend.hiccup_multiplier = 50.0;
  s.fleet.server.disk_bytes = 256ull << 20;  // force misses
  core::Pipeline pipeline(s);
  pipeline.run();  // cold caches: lots of backend traffic
  check_invariants(pipeline);
}

TEST(StressTest, EveryoneBehindProxies) {
  workload::Scenario s = stress_base();
  s.population.proxy_fraction = 1.0;
  core::Pipeline pipeline(s);
  pipeline.warm_caches();
  pipeline.run();
  telemetry::ProxyFilterConfig config;
  config.max_sessions_per_ip = 5;
  const auto proxies = telemetry::detect_proxies(pipeline.dataset(), config);
  const auto joined =
      telemetry::JoinedDataset::build(pipeline.dataset(), &proxies);
  // Most sessions are filtered; whatever survives still joins cleanly.
  EXPECT_LT(joined.sessions().size(), 40u);
  EXPECT_EQ(joined.sessions().size() + joined.dropped_as_proxy(), 80u);
}

TEST(StressTest, AllEnterpriseHighSpikePopulation) {
  workload::Scenario s = stress_base();
  s.population.enterprise_fraction = 1.0;
  s.population.us_fraction = 1.0;
  s.population.congestion_prone_fraction = 1.0;
  s.congestion_epoch_probability = 1.0;
  core::Pipeline pipeline(s);
  pipeline.warm_caches();
  pipeline.run();
  check_invariants(pipeline);
}

TEST(StressTest, ImmediateAbandonmentEverywhere) {
  workload::Scenario s = stress_base();
  s.stall_abandonment_probability = 1.0;
  s.population.bandwidth_median_kbps = 900.0;  // guarantees stalls
  s.population.min_bandwidth_kbps = 700.0;
  core::Pipeline pipeline(s);
  pipeline.warm_caches();
  pipeline.run();
  check_invariants(pipeline);
}

TEST(StressTest, SingleChunkVideos) {
  workload::Scenario s = stress_base();
  s.catalog.duration_median_s = 5.0;
  s.catalog.duration_sigma = 0.05;
  s.catalog.min_duration_s = 4.0;
  s.catalog.max_duration_s = 6.0;
  core::Pipeline pipeline(s);
  pipeline.warm_caches();
  pipeline.run();
  check_invariants(pipeline);
  for (const auto& session : pipeline.dataset().player_sessions) {
    EXPECT_GE(session.chunks_requested, 1u);
    EXPECT_GT(session.startup_ms, 0.0);
  }
}

TEST(StressTest, HugeSessionCountSmokesThrough) {
  workload::Scenario s = workload::test_scenario();
  s.session_count = 2'000;
  core::Pipeline pipeline(s);
  pipeline.warm_caches();
  pipeline.run();
  EXPECT_EQ(pipeline.dataset().player_sessions.size(), 2'000u);
}

TEST(StressTest, PathologicalTcpConfigs) {
  workload::Scenario s = stress_base();
  s.tcp.initial_window = 1;
  s.tcp.max_cwnd = 4;
  s.rwnd_median_segments = 64.0;
  core::Pipeline pipeline(s);
  pipeline.warm_caches();
  pipeline.run();
  check_invariants(pipeline);
}

}  // namespace
}  // namespace vstream
