// Failpoint registry semantics: spec parsing (every valid and invalid
// form), deterministic once/after triggers, seeded prob reproducibility,
// the count-free disarmed fast path, and the exit-code mapping the tools
// build their contract on.
#include "failpoints/failpoint.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "core/exit_codes.h"
#include "sim/host_error.h"

namespace vstream::failpoints {
namespace {

/// The registry is process-wide; every test starts and ends disarmed so
/// suites can run in any order.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().disarm_all(); }
  void TearDown() override { Registry::instance().disarm_all(); }

  Registry& reg() { return Registry::instance(); }
};

TEST_F(FailpointTest, SiteNamesRoundTrip) {
  const Site all[] = {Site::kSpillWrite,       Site::kSpillFlush,
                      Site::kCheckpointWrite,  Site::kCheckpointRename,
                      Site::kExportOpen,       Site::kExportWrite,
                      Site::kRuntimeTaskStall};
  ASSERT_EQ(sizeof(all) / sizeof(all[0]), kSiteCount);
  for (const Site site : all) {
    const auto parsed = parse_site(site_name(site));
    ASSERT_TRUE(parsed.has_value()) << site_name(site);
    EXPECT_EQ(*parsed, site);
  }
  EXPECT_FALSE(parse_site("bogus.site").has_value());
  EXPECT_FALSE(parse_site("").has_value());
  EXPECT_FALSE(parse_site("spill.write ").has_value());
}

TEST_F(FailpointTest, DisarmedPathCountsNothing) {
  EXPECT_FALSE(reg().any_armed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(should_fail(Site::kSpillWrite));
  }
  const SiteCounters c = reg().counters(Site::kSpillWrite);
  EXPECT_EQ(c.evaluated, 0u);
  EXPECT_EQ(c.fired, 0u);
}

TEST_F(FailpointTest, OnceFiresExactlyOnTheNthEvaluation) {
  reg().arm("spill.write=error@once:3");
  EXPECT_TRUE(reg().any_armed());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(should_fail(Site::kSpillWrite), i == 3) << "evaluation " << i;
  }
  const SiteCounters c = reg().counters(Site::kSpillWrite);
  EXPECT_EQ(c.evaluated, 10u);
  EXPECT_EQ(c.fired, 1u);
}

TEST_F(FailpointTest, AfterFiresFromTheNthEvaluationOn) {
  reg().arm("checkpoint.write=error@after:4");
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(should_fail(Site::kCheckpointWrite), i >= 4)
        << "evaluation " << i;
  }
  const SiteCounters c = reg().counters(Site::kCheckpointWrite);
  EXPECT_EQ(c.evaluated, 10u);
  EXPECT_EQ(c.fired, 6u);
}

TEST_F(FailpointTest, BareModeFiresEveryEvaluation) {
  reg().arm("export.write=error");
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(should_fail(Site::kExportWrite));
  }
  EXPECT_EQ(reg().counters(Site::kExportWrite).fired, 5u);
}

TEST_F(FailpointTest, ProbIsReproducibleForASeed) {
  const auto fire_count = [&] {
    reg().disarm_all();
    reg().arm("spill.flush=error@prob:0.3:12345");
    std::uint64_t fired = 0;
    for (int i = 0; i < 2'000; ++i) {
      if (should_fail(Site::kSpillFlush)) ++fired;
    }
    return fired;
  };
  const std::uint64_t first = fire_count();
  const std::uint64_t second = fire_count();
  EXPECT_EQ(first, second);
  // p = 0.3 over 2000 draws: a run landing outside [400, 800] would be a
  // broken generator, not bad luck.
  EXPECT_GT(first, 400u);
  EXPECT_LT(first, 800u);
}

TEST_F(FailpointTest, StallSleepsAndReturnsFalse) {
  reg().arm("runtime.task_stall=stall:30@once:0");
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(should_fail(Site::kRuntimeTaskStall));
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_GE(elapsed, 25);
  EXPECT_EQ(reg().counters(Site::kRuntimeTaskStall).fired, 1u);
  // The trigger spent itself: later evaluations neither fire nor stall.
  EXPECT_FALSE(should_fail(Site::kRuntimeTaskStall));
}

TEST_F(FailpointTest, MultipleSpecsArmIndependently) {
  reg().arm("spill.write=error@once:0,checkpoint.rename=error@once:1");
  EXPECT_TRUE(should_fail(Site::kSpillWrite));
  EXPECT_FALSE(should_fail(Site::kCheckpointRename));
  EXPECT_TRUE(should_fail(Site::kCheckpointRename));
  // Unarmed sites stay on the fast path.
  EXPECT_FALSE(should_fail(Site::kExportOpen));
  EXPECT_EQ(reg().counters(Site::kExportOpen).evaluated, 0u);
}

TEST_F(FailpointTest, DisarmAllResetsCountersAndState) {
  reg().arm("spill.write=error");
  EXPECT_TRUE(should_fail(Site::kSpillWrite));
  reg().disarm_all();
  EXPECT_FALSE(reg().any_armed());
  EXPECT_FALSE(should_fail(Site::kSpillWrite));
  const SiteCounters c = reg().counters(Site::kSpillWrite);
  EXPECT_EQ(c.evaluated, 0u);
  EXPECT_EQ(c.fired, 0u);
}

TEST_F(FailpointTest, TrailingCommaIsTolerated) {
  reg().arm("spill.write=error@once:0,");
  EXPECT_TRUE(should_fail(Site::kSpillWrite));
}

TEST_F(FailpointTest, BadSpecsThrowNamingTheSpec) {
  const char* bad[] = {
      "bogus.site=error",           // unknown site
      "spill.write",                // missing mode
      "spill.write=explode",        // unknown mode
      "spill.write=error@soon",     // unknown trigger
      "spill.write=error@once:",    // missing count
      "spill.write=error@once:x9",  // non-numeric count
      "spill.write=stall:",         // missing stall duration
      "spill.write=error@prob:0",   // probability out of (0, 1]
      "spill.write=error@prob:1.5",
      "spill.write=error@prob:0.5:zz",  // non-numeric seed
      "spill.write=error,,export.open=error",  // empty spec in list
  };
  for (const char* spec : bad) {
    reg().disarm_all();
    EXPECT_THROW(reg().arm(spec), std::runtime_error) << spec;
  }
}

TEST_F(FailpointTest, ExitCodeMappingMatchesTheContract) {
  EXPECT_EQ(core::exit_code_for(sim::HostIoError("disk gone")),
            core::kExitHostIo);
  EXPECT_EQ(core::exit_code_for(std::filesystem::filesystem_error(
                "mkdir", std::make_error_code(std::errc::io_error))),
            core::kExitHostIo);
  EXPECT_EQ(core::exit_code_for(std::runtime_error("bad flag")),
            core::kExitConfig);
}

}  // namespace
}  // namespace vstream::failpoints
