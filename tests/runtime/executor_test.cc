// Work-stealing executor: correctness of the task substrate everything
// else (engine shards, spill analysis, merge, export) now runs on.
//
// The steal-heavy stress tests are deliberately allocation-light and
// tiny-task-dense — they are the TSan targets wired into tools/tier1.sh
// (VSTREAM_SANITIZE=thread), where any unlocked deque access or Run
// lifetime race turns into a hard failure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/executor.h"

namespace vstream {
namespace {

using runtime::Executor;
using runtime::ParallelStats;

TEST(ExecutorTest, RunsEveryIndexExactlyOnce) {
  for (const std::size_t workers : {1u, 2u, 3u, 4u, 8u}) {
    Executor executor(workers);
    for (const std::size_t count : {0u, 1u, 2u, 5u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(count);
      executor.parallel_for(count,
                            [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "index " << i << " with " << workers << " workers";
      }
    }
  }
}

TEST(ExecutorTest, ZeroWorkersClampsToOne) {
  Executor executor(0);
  EXPECT_EQ(executor.workers(), 1u);
  std::size_t ran = 0;
  executor.parallel_for(3, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 3u);
}

TEST(ExecutorTest, SingleWorkerRunsInlineOnCallingThread) {
  Executor executor(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(4);
  executor.parallel_for(seen.size(), [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ExecutorTest, CallerParticipatesAsWorkerZero) {
  Executor executor(4);
  ParallelStats stats;
  executor.parallel_for(
      256, [](std::size_t) { std::this_thread::yield(); }, &stats);
  ASSERT_EQ(stats.tasks_per_worker.size(), 4u);
  // The calling thread always drains its own block before waiting.
  EXPECT_GT(stats.tasks_per_worker[0], 0u);
}

TEST(ExecutorTest, StatsAccountForEveryTask) {
  Executor executor(3);
  ParallelStats stats;
  executor.parallel_for(100, [](std::size_t) {}, &stats);
  EXPECT_EQ(stats.tasks, 100u);
  ASSERT_EQ(stats.tasks_per_worker.size(), 3u);
  const std::size_t executed =
      std::accumulate(stats.tasks_per_worker.begin(),
                      stats.tasks_per_worker.end(), std::size_t{0});
  EXPECT_EQ(executed, 100u);
  EXPECT_GE(stats.workers_used(), 1u);
}

TEST(ExecutorTest, StatsResetBetweenRuns) {
  Executor executor(2);
  ParallelStats stats;
  executor.parallel_for(50, [](std::size_t) {}, &stats);
  executor.parallel_for(7, [](std::size_t) {}, &stats);
  EXPECT_EQ(stats.tasks, 7u);
  const std::size_t executed =
      std::accumulate(stats.tasks_per_worker.begin(),
                      stats.tasks_per_worker.end(), std::size_t{0});
  EXPECT_EQ(executed, 7u);
}

TEST(ExecutorTest, FirstExceptionPropagatesAfterAllTasksRan) {
  Executor executor(4);
  std::atomic<std::size_t> ran{0};
  try {
    executor.parallel_for(64, [&](std::size_t i) {
      ran.fetch_add(1);
      if (i == 13) throw std::runtime_error("task 13 failed");
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "task 13 failed");
  }
  // Independent tasks keep running after one fails — a parallel run is
  // all-or-nothing only in its *reporting*, not its side effects.
  EXPECT_EQ(ran.load(), 64u);
}

TEST(ExecutorTest, ExceptionDoesNotPoisonLaterRuns) {
  Executor executor(2);
  EXPECT_THROW(executor.parallel_for(
                   4, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  std::atomic<std::size_t> ran{0};
  executor.parallel_for(10, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10u);
}

TEST(ExecutorTest, TrueConcurrencyRendezvous) {
  // Two tasks that each wait for the other to arrive: only possible when
  // the pool genuinely runs them on two OS threads at once (a serialized
  // executor would spin one task forever).  Timeboxed so a regression
  // fails instead of hanging.
  Executor executor(2);
  std::atomic<int> arrived{0};
  std::atomic<bool> ok{true};
  executor.parallel_for(2, [&](std::size_t) {
    arrived.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (arrived.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) {
        ok.store(false);
        return;
      }
      std::this_thread::yield();
    }
  });
  EXPECT_TRUE(ok.load()) << "tasks never met — pool is not concurrent";
}

TEST(ExecutorTest, ReentrantParallelForFallsBackInline) {
  // A task calling parallel_for on its own executor must not deadlock:
  // the inner call degrades to inline serial execution.
  Executor executor(2);
  std::atomic<std::size_t> inner_ran{0};
  executor.parallel_for(4, [&](std::size_t) {
    executor.parallel_for(8,
                          [&](std::size_t) { inner_ran.fetch_add(1); });
  });
  EXPECT_EQ(inner_ran.load(), 32u);
}

TEST(ExecutorWatchdogTest, StuckTaskIsReportedAndResultsUnchanged) {
  // One task outlives the 20 ms deadline by an order of magnitude: the
  // watchdog must name it (>= 1 report) without perturbing the results —
  // it observes, it never cancels.
  Executor executor(4, /*watchdog_ms=*/20);
  ParallelStats stats;
  std::vector<int> out(16, 0);
  executor.parallel_for(
      16,
      [&](std::size_t i) {
        if (i == 5) {
          std::this_thread::sleep_for(std::chrono::milliseconds(200));
        }
        out[i] = static_cast<int>(i) + 1;
      },
      &stats);
  EXPECT_GE(stats.watchdog_reports, 1u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

TEST(ExecutorWatchdogTest, FastTasksDrawNoReports) {
  Executor executor(4, /*watchdog_ms=*/250);
  ParallelStats stats;
  std::atomic<std::size_t> ran{0};
  executor.parallel_for(
      64, [&](std::size_t) { ran.fetch_add(1); }, &stats);
  EXPECT_EQ(ran.load(), 64u);
  EXPECT_EQ(stats.watchdog_reports, 0u);
}

TEST(ExecutorWatchdogTest, DisabledByDefault) {
  // watchdog_ms 0 (and no VSTREAM_WATCHDOG_MS) means no monitor thread:
  // even a slow task draws no report.
  Executor executor(2);
  ParallelStats stats;
  executor.parallel_for(
      4,
      [&](std::size_t i) {
        if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(30));
      },
      &stats);
  EXPECT_EQ(stats.watchdog_reports, 0u);
}

TEST(ExecutorStressTest, ManyTinyTasksStealHeavy) {
  // The TSan centerpiece: thousands of near-empty tasks per run force
  // constant deque churn and steals; repeated runs cycle the generation
  // handshake.  Any missing lock or stale Run pointer races here.
  Executor executor(4);
  ParallelStats stats;
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    executor.parallel_for(
        2000, [&](std::size_t i) { sum.fetch_add(i); }, &stats);
    EXPECT_EQ(sum.load(), 2000u * 1999u / 2);
    EXPECT_EQ(stats.tasks, 2000u);
  }
}

TEST(ExecutorStressTest, SkewedBlocksAreStolen) {
  // All the work hides behind index 0 (one long task), the rest are
  // trivial: the long task pins worker 0's successor... regardless of
  // where it lands, idle workers must steal the remaining tiny tasks
  // rather than idle — over many rounds at least one steal must occur.
  Executor executor(4);
  std::size_t steals = 0;
  for (int round = 0; round < 20; ++round) {
    ParallelStats stats;
    std::atomic<std::size_t> ran{0};
    executor.parallel_for(
        64,
        [&](std::size_t i) {
          ran.fetch_add(1);
          if (i == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
          }
        },
        &stats);
    EXPECT_EQ(ran.load(), 64u);
    steals += stats.steals;
  }
  EXPECT_GT(steals, 0u);
}

}  // namespace
}  // namespace vstream
