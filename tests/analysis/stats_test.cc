#include "analysis/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.h"

namespace vstream::analysis {
namespace {

TEST(StatsTest, QuantileSortedBasics) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 2.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.125), 1.5);  // interpolation
}

TEST(StatsTest, QuantileEdgeCases) {
  EXPECT_DOUBLE_EQ(quantile_sorted({}, 0.5), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(one, 0.9), 7.0);
  const std::vector<double> two = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(two, 1.5), 3.0);  // q clamped
  EXPECT_DOUBLE_EQ(quantile_sorted(two, -1.0), 1.0);
}

TEST(StatsTest, MeanAndStddev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean_of(v), 5.0);
  EXPECT_DOUBLE_EQ(stddev_of(v), 2.0);  // classic population-sd example
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of({}), 0.0);
  const std::vector<double> single = {3.0};
  EXPECT_DOUBLE_EQ(stddev_of(single), 0.0);
}

TEST(StatsTest, CoefficientOfVariation) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(cv_of(v), 0.4);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(cv_of(zeros), 0.0);  // guarded
}

TEST(StatsTest, SummarizeConsistent) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const SummaryStats s = summarize(v);
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p25, 25.75, 1e-9);
  EXPECT_NEAR(s.p75, 75.25, 1e-9);
  EXPECT_NEAR(s.iqr(), 49.5, 1e-9);
  EXPECT_GT(s.p95, s.p75);
  EXPECT_NEAR(s.cv(), s.stddev / s.mean, 1e-12);
}

TEST(StatsTest, SummarizeEmpty) {
  const SummaryStats s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(StatsTest, CdfMonotoneAndBounded) {
  std::vector<double> v;
  for (int i = 0; i < 1'000; ++i) v.push_back(std::sin(i) * 100.0);
  const auto cdf = make_cdf(v, 50);
  ASSERT_GE(cdf.size(), 2u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].x, cdf[i - 1].x);
    EXPECT_GE(cdf[i].p, cdf[i - 1].p);
  }
  EXPECT_GT(cdf.front().p, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().p, 1.0);
}

TEST(StatsTest, CcdfComplementsCdf) {
  std::vector<double> v = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto ccdf = make_ccdf(v, 100);
  EXPECT_DOUBLE_EQ(ccdf.back().p, 0.0);
  for (std::size_t i = 1; i < ccdf.size(); ++i) {
    EXPECT_LE(ccdf[i].p, ccdf[i - 1].p);
  }
}

TEST(StatsTest, CdfAtExactFractions) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(cdf_at(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf_at(v, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(v, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf_at({}, 1.0), 0.0);
}

TEST(StatsTest, BinSeriesAssignsAndSummarizes) {
  const std::vector<double> x = {5, 15, 15, 25, 95, 150};
  const std::vector<double> y = {1, 2, 4, 8, 16, 32};
  const auto bins = bin_series(x, y, 0.0, 100.0, 10.0);
  // 150 is out of range; bins at 5 (y=1), 15 (y=2,4), 25 (y=8), 95 (y=16).
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_DOUBLE_EQ(bins[0].center, 5.0);
  EXPECT_EQ(bins[0].stats.n, 1u);
  EXPECT_DOUBLE_EQ(bins[1].center, 15.0);
  EXPECT_EQ(bins[1].stats.n, 2u);
  EXPECT_DOUBLE_EQ(bins[1].stats.mean, 3.0);
  EXPECT_DOUBLE_EQ(bins[3].center, 95.0);
}

TEST(StatsTest, BinSeriesRejectsDegenerateInput) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1};
  EXPECT_TRUE(bin_series(x, y, 0, 10, 1).empty());      // size mismatch
  EXPECT_TRUE(bin_series(x, x, 0, 10, 0).empty());      // zero width
  EXPECT_TRUE(bin_series(x, x, 10, 0, 1).empty());      // inverted range
  EXPECT_TRUE(bin_series({}, {}, 0, 10, 1).empty());    // empty
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerate) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> flat = {5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, flat), 0.0);
  EXPECT_DOUBLE_EQ(pearson(x, {}), 0.0);
  const std::vector<double> one = {1.0};
  EXPECT_DOUBLE_EQ(pearson(one, one), 0.0);
}

TEST(BootstrapTest, CoversTrueMeanOfTightSample) {
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(10.0 + (i % 3));  // mean 11.0-ish
  const ConfidenceInterval ci = bootstrap_mean_ci(v);
  EXPECT_NEAR(ci.point, mean_of(v), 1e-12);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_TRUE(ci.contains(ci.point));
  // A tight sample gives a tight interval.
  EXPECT_LT(ci.hi - ci.lo, 0.5);
}

TEST(BootstrapTest, WiderIntervalForWiderSpread) {
  vstream::sim::Rng rng(5);
  std::vector<double> tight, wide;
  for (int i = 0; i < 200; ++i) {
    tight.push_back(rng.normal(50.0, 1.0));
    wide.push_back(rng.normal(50.0, 25.0));
  }
  const ConfidenceInterval a = bootstrap_mean_ci(tight);
  const ConfidenceInterval b = bootstrap_mean_ci(wide);
  EXPECT_LT(a.hi - a.lo, b.hi - b.lo);
}

TEST(BootstrapTest, DeterministicForSeed) {
  std::vector<double> v = {1, 5, 9, 2, 8, 3, 7};
  const ConfidenceInterval a = bootstrap_mean_ci(v, 0.05, 500, 42);
  const ConfidenceInterval b = bootstrap_mean_ci(v, 0.05, 500, 42);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(bootstrap_mean_ci({}).point, 0.0);
  const std::vector<double> one = {7.0};
  const ConfidenceInterval ci = bootstrap_mean_ci(one);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

// Property: CDF of n distinct values hits p = k/n at the k-th value.
class CdfSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CdfSizeTest, FullResolutionCdfExact) {
  const std::size_t n = GetParam();
  std::vector<double> v;
  for (std::size_t i = 0; i < n; ++i) v.push_back(static_cast<double>(i));
  const auto cdf = make_cdf(v, n * 2);  // no downsampling
  ASSERT_GE(cdf.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(cdf[i].x, static_cast<double>(i));
    EXPECT_NEAR(cdf[i].p, static_cast<double>(i + 1) / n, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CdfSizeTest, ::testing::Values(1u, 2u, 17u, 256u));

}  // namespace
}  // namespace vstream::analysis
