#include "analysis/aggregate.h"

#include <gtest/gtest.h>

#include "telemetry/join.h"

namespace vstream::analysis {
namespace {

using telemetry::Dataset;
using telemetry::JoinedDataset;

/// Append one session with constant SRTT samples plus one configurable
/// chunk-baseline; enough structure for the §4.2 aggregations.
void add_session(Dataset& d, std::uint64_t id, net::IpV4 ip,
                 const std::string& org, net::AccessType access,
                 const std::string& country, double srtt_base_ms,
                 double srtt_wiggle_ms, std::uint32_t pop = 0,
                 double distance_km = 100.0, double start_ms = 0.0,
                 std::size_t chunks = 4, double srtt_spike_ms = 0.0) {
  telemetry::PlayerSessionRecord ps;
  ps.session_id = id;
  ps.client_ip = ip;
  ps.user_agent = "Chrome/Windows";
  ps.start_time_ms = start_ms;
  d.player_sessions.push_back(ps);

  telemetry::CdnSessionRecord cs;
  cs.session_id = id;
  cs.observed_ip = ip;
  cs.observed_user_agent = ps.user_agent;
  cs.pop = pop;
  cs.org = org;
  cs.access = access;
  cs.country = country;
  cs.client_distance_km = distance_km;
  d.cdn_sessions.push_back(cs);

  for (std::size_t c = 0; c < chunks; ++c) {
    telemetry::PlayerChunkRecord pc;
    pc.session_id = id;
    pc.chunk_id = static_cast<std::uint32_t>(c);
    pc.request_sent_ms = 3'000.0 * static_cast<double>(c);
    // D_FB = server (2.0) + rtt0 (srtt_base): the rtt0 bound is tight here.
    pc.dfb_ms = 2.0 + srtt_base_ms;
    pc.dlb_ms = 2'000.0;
    pc.bitrate_kbps = 1'500;
    d.player_chunks.push_back(pc);

    telemetry::CdnChunkRecord cc;
    cc.session_id = id;
    cc.chunk_id = static_cast<std::uint32_t>(c);
    cc.dwait_ms = 0.3;
    cc.dopen_ms = 0.4;
    cc.dread_ms = 1.3;
    cc.cache_level = cdn::CacheLevel::kRam;
    cc.chunk_bytes = 1'125'000;
    d.cdn_chunks.push_back(cc);

    telemetry::TcpSnapshotRecord snap;
    snap.session_id = id;
    snap.chunk_id = static_cast<std::uint32_t>(c);
    snap.at_ms = 1'000.0 * static_cast<double>(c);
    // SRTT alternates base +/- wiggle (mean = base, stddev = wiggle) and
    // optionally spikes on the last chunk (for CV > 1 cases — alternating
    // positive samples alone cannot push CV past 1).
    snap.info.srtt_ms =
        srtt_base_ms + (c % 2 == 0 ? srtt_wiggle_ms : -srtt_wiggle_ms);
    if (c + 1 == chunks) snap.info.srtt_ms += srtt_spike_ms;
    snap.info.rttvar_ms = 5.0;
    snap.info.cwnd_segments = 30;
    snap.info.mss_bytes = 1'460;
    snap.info.segments_out = 800 * (c + 1);
    d.tcp_snapshots.push_back(snap);
  }
}

TEST(SessionNetMetricsTest, ComputesSrttStatistics) {
  Dataset d;
  add_session(d, 1, net::make_ip(10, 0, 0, 1), "Org", net::AccessType::kResidential,
              "US", 50.0, 10.0);
  const JoinedDataset joined = JoinedDataset::build(d);
  const SessionNetMetrics m = session_net_metrics(joined.sessions()[0]);
  ASSERT_TRUE(m.valid);
  EXPECT_NEAR(m.srtt_mean_ms, 50.0, 1e-9);
  EXPECT_NEAR(m.srtt_stddev_ms, 10.0, 1e-9);
  EXPECT_NEAR(m.srtt_cv, 0.2, 1e-9);
  // Baseline: min over chunks of min(SRTT, D_FB - D_CDN) = min(40, 50) = 40.
  EXPECT_NEAR(m.srtt_min_ms, 40.0, 1e-9);
  EXPECT_NEAR(m.first_chunk_srtt_ms, 60.0, 1e-9);
}

TEST(SessionNetMetricsTest, InvalidWithoutSnapshots) {
  Dataset d;
  add_session(d, 1, net::make_ip(10, 0, 0, 1), "Org", net::AccessType::kResidential,
              "US", 50.0, 0.0);
  d.tcp_snapshots.clear();
  const JoinedDataset joined = JoinedDataset::build(d);
  EXPECT_FALSE(session_net_metrics(joined.sessions()[0]).valid);
}

TEST(RollupPrefixesTest, GroupsByPrefix) {
  Dataset d;
  // Two sessions in the same /24, one in another.
  add_session(d, 1, net::make_ip(10, 0, 0, 1), "OrgA", net::AccessType::kResidential,
              "US", 50.0, 5.0, 0, 120.0);
  add_session(d, 2, net::make_ip(10, 0, 0, 99), "OrgA", net::AccessType::kResidential,
              "US", 70.0, 5.0, 0, 140.0);
  add_session(d, 3, net::make_ip(10, 0, 1, 1), "OrgB", net::AccessType::kEnterprise,
              "US", 90.0, 5.0, 0, 300.0);
  const JoinedDataset joined = JoinedDataset::build(d);
  const auto rollups = rollup_prefixes(joined);
  ASSERT_EQ(rollups.size(), 2u);
  const PrefixRollup& first = rollups[0];
  EXPECT_EQ(first.prefix, net::prefix24_of(net::make_ip(10, 0, 0, 1)));
  EXPECT_EQ(first.session_count, 2u);
  EXPECT_NEAR(first.srtt_min_ms, 45.0, 1e-9);  // min of 45 and 65 baselines
  EXPECT_NEAR(first.distance_km, 130.0, 1e-9);
  EXPECT_EQ(first.org, "OrgA");
  EXPECT_EQ(rollups[1].session_count, 1u);
  EXPECT_EQ(rollups[1].access, net::AccessType::kEnterprise);
}

TEST(OrgCvTableTest, RanksEnterprisesAboveResidential) {
  // Table 4's shape: enterprise orgs have far more CV > 1 sessions.
  Dataset d;
  std::uint64_t id = 1;
  for (int i = 0; i < 60; ++i) {
    // Enterprise: most sessions spike hard on one chunk -> CV > 1.
    add_session(d, id++, net::make_ip(10, 1, static_cast<std::uint8_t>(i), 1),
                "Enterprise#1", net::AccessType::kEnterprise, "US", 40.0, 2.0,
                0, 100.0, 0.0, 4, i % 5 == 0 ? 0.0 : 500.0);
    // Residential: tiny wiggle, no spikes.
    add_session(d, id++, net::make_ip(10, 2, static_cast<std::uint8_t>(i), 1),
                "ComNet", net::AccessType::kResidential, "US", 40.0, 2.0);
  }
  const JoinedDataset joined = JoinedDataset::build(d);
  const auto table = org_cv_table(joined, 50);
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table[0].org, "Enterprise#1");
  EXPECT_GT(table[0].percent(), 70.0);
  EXPECT_EQ(table[1].org, "ComNet");
  EXPECT_NEAR(table[1].percent(), 0.0, 1e-9);
}

TEST(OrgCvTableTest, MinSessionThresholdApplied) {
  Dataset d;
  for (std::uint64_t id = 1; id <= 10; ++id) {
    add_session(d, id, net::make_ip(10, 3, static_cast<std::uint8_t>(id), 1),
                "SmallOrg", net::AccessType::kEnterprise, "US", 40.0, 60.0);
  }
  const JoinedDataset joined = JoinedDataset::build(d);
  EXPECT_TRUE(org_cv_table(joined, 50).empty());
  EXPECT_EQ(org_cv_table(joined, 10).size(), 1u);
}

TEST(PathCvTest, ComputesPerPathVariation) {
  Dataset d;
  std::uint64_t id = 1;
  // Path A (prefix 10.5.1.0/24, pop 0): stable session means.
  for (int i = 0; i < 5; ++i) {
    add_session(d, id++, net::make_ip(10, 5, 1, static_cast<std::uint8_t>(i + 1)),
                "OrgA", net::AccessType::kResidential, "US", 50.0, 0.0, 0);
  }
  // Path B (prefix 10.5.2.0/24, pop 0): wildly varying session means.
  const double bases[] = {20.0, 200.0, 20.0, 200.0, 20.0};
  for (int i = 0; i < 5; ++i) {
    add_session(d, id++, net::make_ip(10, 5, 2, static_cast<std::uint8_t>(i + 1)),
                "OrgA", net::AccessType::kResidential, "US", bases[i], 0.0, 0);
  }
  const JoinedDataset joined = JoinedDataset::build(d);
  const auto cvs = path_cv_values(joined, 3);
  ASSERT_EQ(cvs.size(), 2u);
  const double low = std::min(cvs[0], cvs[1]);
  const double high = std::max(cvs[0], cvs[1]);
  EXPECT_NEAR(low, 0.0, 1e-9);
  EXPECT_GT(high, 0.5);
}

TEST(PathCvTest, MinSessionsFilter) {
  Dataset d;
  add_session(d, 1, net::make_ip(10, 6, 1, 1), "OrgA",
              net::AccessType::kResidential, "US", 50.0, 0.0);
  const JoinedDataset joined = JoinedDataset::build(d);
  EXPECT_TRUE(path_cv_values(joined, 3).empty());
  EXPECT_EQ(path_cv_values(joined, 1).size(), 1u);
}

TEST(TailPrefixTest, FindsPersistentlySlowPrefixes) {
  Dataset d;
  std::uint64_t id = 1;
  // A persistently slow international prefix: slow in every epoch.
  for (int epoch = 0; epoch < 6; ++epoch) {
    add_session(d, id++, net::make_ip(20, 1, 1, static_cast<std::uint8_t>(epoch + 1)),
                "GlobalTransit", net::AccessType::kInternational, "DE", 150.0,
                5.0, 0, 6'000.0, epoch * 10'000.0);
  }
  // A fast US prefix, present in every epoch.
  for (int epoch = 0; epoch < 6; ++epoch) {
    add_session(d, id++, net::make_ip(20, 2, 2, static_cast<std::uint8_t>(epoch + 1)),
                "ComNet", net::AccessType::kResidential, "US", 30.0, 2.0, 0,
                100.0, epoch * 10'000.0);
  }
  // A once-slow US prefix (transient congestion in one epoch only).
  for (int epoch = 0; epoch < 6; ++epoch) {
    add_session(d, id++, net::make_ip(20, 3, 3, static_cast<std::uint8_t>(epoch + 1)),
                "ComNet", net::AccessType::kResidential, "US",
                epoch == 2 ? 150.0 : 30.0, 2.0, 0, 100.0, epoch * 10'000.0);
  }
  const JoinedDataset joined = JoinedDataset::build(d);
  const TailPrefixStudy study =
      persistent_tail_prefixes(joined, 100.0, 6, 0.5);
  EXPECT_EQ(study.total_prefix_count, 3u);
  EXPECT_EQ(study.tail_prefix_count, 2u);  // persistent + transient
  ASSERT_EQ(study.persistent_tail.size(), 1u);
  EXPECT_EQ(study.persistent_tail[0].prefix,
            net::prefix24_of(net::make_ip(20, 1, 1, 0)));
  EXPECT_DOUBLE_EQ(study.non_us_share, 1.0);
}

TEST(TailPrefixTest, EmptyDataset) {
  const Dataset d;
  const JoinedDataset joined = JoinedDataset::build(d);
  const TailPrefixStudy study = persistent_tail_prefixes(joined);
  EXPECT_TRUE(study.persistent_tail.empty());
  EXPECT_EQ(study.total_prefix_count, 0u);
}

}  // namespace
}  // namespace vstream::analysis
