#include "analysis/detectors.h"

#include <gtest/gtest.h>

#include "telemetry/join.h"

namespace vstream::analysis {
namespace {

using telemetry::Dataset;
using telemetry::JoinedDataset;

TEST(PerfScoreTest, Equation2) {
  // tau = 6 s; D_FB + D_LB = 3 s -> score 2 (good).
  EXPECT_DOUBLE_EQ(perf_score(6.0, 1'000.0, 2'000.0), 2.0);
  // 12 s to move 6 s of video -> score 0.5 (bad).
  EXPECT_DOUBLE_EQ(perf_score(6.0, 2'000.0, 10'000.0), 0.5);
  EXPECT_DOUBLE_EQ(perf_score(6.0, 0.0, 0.0), 0.0);  // guarded
}

TEST(InstantaneousThroughputTest, Formula) {
  // 1,125,000 bytes in 3000 ms = 3,000 kbps.
  EXPECT_NEAR(instantaneous_throughput_kbps(1'125'000, 3'000.0), 3'000.0, 1e-9);
  EXPECT_DOUBLE_EQ(instantaneous_throughput_kbps(1'000, 0.0), 0.0);
}

TEST(RtoConservativeTest, PaperFootnoteFormula) {
  net::TcpInfo info;
  info.srtt_ms = 60.0;
  info.rttvar_ms = 10.0;
  // RTO = 200 + srtt + 4 * srttvar.
  EXPECT_DOUBLE_EQ(rto_conservative_ms(info), 300.0);
}

/// Build a synthetic session of `n` well-behaved chunks; optionally plant a
/// stack-buffered chunk (high D_FB + instantaneous delivery) at index
/// `anomaly_at`, and/or a *network*-caused slow chunk at `slow_net_at`
/// (which Eq. 4 must NOT flag because SRTT explains it).
Dataset make_session(std::size_t n, int anomaly_at = -1, int slow_net_at = -1,
                     double ds_extra_ms = 0.0) {
  Dataset d;
  telemetry::PlayerSessionRecord ps;
  ps.session_id = 1;
  ps.user_agent = "Chrome/Windows";
  d.player_sessions.push_back(ps);
  telemetry::CdnSessionRecord cs;
  cs.session_id = 1;
  d.cdn_sessions.push_back(cs);

  for (std::size_t c = 0; c < n; ++c) {
    const bool anomaly = static_cast<int>(c) == anomaly_at;
    const bool slow_net = static_cast<int>(c) == slow_net_at;

    telemetry::CdnChunkRecord cc;
    cc.session_id = 1;
    cc.chunk_id = static_cast<std::uint32_t>(c);
    cc.dwait_ms = 0.3;
    cc.dopen_ms = 0.5;
    cc.dread_ms = 1.5;
    cc.cache_level = cdn::CacheLevel::kRam;
    cc.chunk_bytes = 1'125'000;
    d.cdn_chunks.push_back(cc);

    telemetry::TcpSnapshotRecord snap;
    snap.session_id = 1;
    snap.chunk_id = static_cast<std::uint32_t>(c);
    snap.at_ms = 1'000.0 * static_cast<double>(c);
    snap.info.srtt_ms = slow_net ? 400.0 : 50.0;
    snap.info.rttvar_ms = 10.0;
    snap.info.cwnd_segments = 40;
    snap.info.mss_bytes = 1'460;
    snap.info.segments_out = 800 * (c + 1);
    snap.info.total_retrans = 0;
    d.tcp_snapshots.push_back(snap);

    telemetry::PlayerChunkRecord pc;
    pc.session_id = 1;
    pc.chunk_id = static_cast<std::uint32_t>(c);
    pc.request_sent_ms = 3'000.0 * static_cast<double>(c);
    pc.bitrate_kbps = 1'500;
    if (anomaly) {
      // Whole chunk held in the stack, then delivered at once.
      pc.dfb_ms = 3'000.0;
      pc.dlb_ms = 5.0;
    } else if (slow_net) {
      pc.dfb_ms = 400.0 + 2.3;
      pc.dlb_ms = 6'000.0;
    } else {
      pc.dfb_ms = 50.0 + 2.3 + ds_extra_ms;
      pc.dlb_ms = 2'500.0;
    }
    d.player_chunks.push_back(pc);
  }
  return d;
}

TEST(DsOutlierTest, DetectsPlantedAnomaly) {
  const Dataset d = make_session(12, /*anomaly_at=*/7);
  const JoinedDataset joined = JoinedDataset::build(d);
  ASSERT_EQ(joined.sessions().size(), 1u);
  const DsOutlierResult r = detect_ds_outliers(joined.sessions()[0]);
  ASSERT_EQ(r.flagged.size(), 12u);
  EXPECT_EQ(r.flagged_count, 1u);
  EXPECT_TRUE(r.flagged[7]);
}

TEST(DsOutlierTest, CleanSessionHasNoFlags) {
  const Dataset d = make_session(12);
  const JoinedDataset joined = JoinedDataset::build(d);
  const DsOutlierResult r = detect_ds_outliers(joined.sessions()[0]);
  EXPECT_EQ(r.flagged_count, 0u);
}

TEST(DsOutlierTest, NetworkSlownessNotBlamedOnStack) {
  // A chunk slowed by the *network* (high SRTT, low TP_inst) must not be
  // flagged: Eq. 4 requires normal SRTT and an abnormally HIGH TP_inst.
  const Dataset d = make_session(12, /*anomaly_at=*/-1, /*slow_net_at=*/5);
  const JoinedDataset joined = JoinedDataset::build(d);
  const DsOutlierResult r = detect_ds_outliers(joined.sessions()[0]);
  EXPECT_FALSE(r.flagged[5]);
}

TEST(DsOutlierTest, ShortSessionsSkipped) {
  const Dataset d = make_session(3, /*anomaly_at=*/1);
  const JoinedDataset joined = JoinedDataset::build(d);
  DsOutlierConfig config;
  config.min_chunks = 5;
  const DsOutlierResult r = detect_ds_outliers(joined.sessions()[0], config);
  EXPECT_EQ(r.flagged_count, 0u);
}

TEST(DdsLowerBoundTest, ZeroForNormalChunks) {
  // Eq. 5 is conservative: an ordinary chunk's D_FB is far below
  // D_CDN + RTO, so the bound clamps to zero.
  const Dataset d = make_session(8);
  const JoinedDataset joined = JoinedDataset::build(d);
  for (const telemetry::JoinedChunk& chunk : joined.sessions()[0].chunks) {
    EXPECT_DOUBLE_EQ(dds_lower_bound_ms(chunk), 0.0);
  }
}

TEST(DdsLowerBoundTest, PositiveForPersistentStackLatency) {
  // Give every chunk 1.5 s of stack latency (a Table 5 Safari-on-Windows
  // host): D_FB - D_CDN - RTO is comfortably positive.
  const Dataset d = make_session(8, -1, -1, /*ds_extra_ms=*/1'500.0);
  const JoinedDataset joined = JoinedDataset::build(d);
  for (const telemetry::JoinedChunk& chunk : joined.sessions()[0].chunks) {
    const double bound = dds_lower_bound_ms(chunk);
    EXPECT_GT(bound, 1'000.0);
    // RTO = 200 + 50 + 40 = 290; D_FB = 1552.3; D_CDN = 2.3 -> bound 1260.
    EXPECT_NEAR(bound, 1'260.0, 1.0);
  }
}

TEST(DdsLowerBoundTest, MissingSidesYieldZero) {
  telemetry::JoinedChunk chunk;  // all null
  EXPECT_DOUBLE_EQ(dds_lower_bound_ms(chunk), 0.0);
}

// Property sweep: detector precision under different anomaly positions.
class DsPositionTest : public ::testing::TestWithParam<int> {};

TEST_P(DsPositionTest, FlagsExactlyThePlantedChunk) {
  const int position = GetParam();
  const Dataset d = make_session(15, position);
  const JoinedDataset joined = JoinedDataset::build(d);
  const DsOutlierResult r = detect_ds_outliers(joined.sessions()[0]);
  EXPECT_EQ(r.flagged_count, 1u);
  EXPECT_TRUE(r.flagged[static_cast<std::size_t>(position)]);
}

INSTANTIATE_TEST_SUITE_P(Positions, DsPositionTest,
                         ::testing::Values(0, 1, 7, 13, 14));

}  // namespace
}  // namespace vstream::analysis
