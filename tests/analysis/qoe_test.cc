#include "analysis/qoe.h"

#include <gtest/gtest.h>

namespace vstream::analysis {
namespace {

using telemetry::Dataset;
using telemetry::JoinedDataset;

Dataset make_dataset() {
  Dataset d;
  telemetry::PlayerSessionRecord ps;
  ps.session_id = 1;
  ps.startup_ms = 900.0;
  d.player_sessions.push_back(ps);
  telemetry::CdnSessionRecord cs;
  cs.session_id = 1;
  d.cdn_sessions.push_back(cs);

  const std::uint32_t bitrates[] = {700, 1'500, 1'500, 2'500};
  for (std::uint32_t c = 0; c < 4; ++c) {
    telemetry::PlayerChunkRecord pc;
    pc.session_id = 1;
    pc.chunk_id = c;
    pc.request_sent_ms = 6'000.0 * c;
    pc.dfb_ms = 100.0;
    pc.dlb_ms = 1'900.0;
    pc.bitrate_kbps = bitrates[c];
    pc.rebuffer_ms = c == 2 ? 600.0 : 0.0;
    pc.rebuffer_count = c == 2 ? 1 : 0;
    pc.visible = c != 3;  // last chunk hidden
    pc.total_frames = 180;
    pc.dropped_frames = c == 1 ? 18 : 0;
    d.player_chunks.push_back(pc);

    telemetry::CdnChunkRecord cc;
    cc.session_id = 1;
    cc.chunk_id = c;
    cc.cache_level = cdn::CacheLevel::kRam;
    cc.chunk_bytes = 1'000'000;
    d.cdn_chunks.push_back(cc);
  }
  return d;
}

TEST(QoeTest, SessionMetrics) {
  const Dataset d = make_dataset();
  const JoinedDataset joined = JoinedDataset::build(d);
  const SessionQoe qoe = session_qoe(joined.sessions()[0]);

  EXPECT_DOUBLE_EQ(qoe.startup_ms, 900.0);
  EXPECT_EQ(qoe.rebuffer_events, 1u);
  EXPECT_EQ(qoe.chunks, 4u);
  EXPECT_NEAR(qoe.avg_bitrate_kbps, (700 + 1'500 + 1'500 + 2'500) / 4.0, 1e-9);
  // Two bitrate changes: 700->1500 and 1500->2500.
  EXPECT_EQ(qoe.bitrate_switches, 2u);
  // Dropped % over visible chunks only: 18 / (3 * 180).
  EXPECT_NEAR(qoe.dropped_frame_pct, 100.0 * 18.0 / 540.0, 1e-9);
}

TEST(QoeTest, AggregateAcrossSessions) {
  Dataset d = make_dataset();
  // Add a second, stall-free session.
  telemetry::PlayerSessionRecord ps;
  ps.session_id = 2;
  ps.startup_ms = 500.0;
  d.player_sessions.push_back(ps);
  telemetry::CdnSessionRecord cs;
  cs.session_id = 2;
  d.cdn_sessions.push_back(cs);
  telemetry::PlayerChunkRecord pc;
  pc.session_id = 2;
  pc.chunk_id = 0;
  pc.dfb_ms = 50.0;
  pc.dlb_ms = 1'000.0;
  pc.bitrate_kbps = 4'000;
  pc.visible = true;
  pc.total_frames = 180;
  d.player_chunks.push_back(pc);
  telemetry::CdnChunkRecord cc;
  cc.session_id = 2;
  cc.chunk_id = 0;
  cc.cache_level = cdn::CacheLevel::kRam;
  d.cdn_chunks.push_back(cc);

  const JoinedDataset joined = JoinedDataset::build(d);
  const QoeAggregate agg = aggregate_qoe(joined);
  EXPECT_EQ(agg.sessions, 2u);
  EXPECT_DOUBLE_EQ(agg.startup_ms.min, 500.0);
  EXPECT_DOUBLE_EQ(agg.startup_ms.max, 900.0);
  EXPECT_DOUBLE_EQ(agg.share_with_rebuffering, 0.5);
  EXPECT_DOUBLE_EQ(agg.avg_bitrate_kbps.max, 4'000.0);
}

TEST(QoeTest, EmptyDataset) {
  const JoinedDataset joined = JoinedDataset::build(Dataset{});
  const QoeAggregate agg = aggregate_qoe(joined);
  EXPECT_EQ(agg.sessions, 0u);
  EXPECT_DOUBLE_EQ(agg.share_with_rebuffering, 0.0);
}

}  // namespace
}  // namespace vstream::analysis
