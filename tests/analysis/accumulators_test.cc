#include "analysis/accumulators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "analysis/aggregate.h"
#include "analysis/detectors.h"
#include "analysis/qoe.h"
#include "net/prefix.h"
#include "telemetry/join.h"
#include "telemetry/record_sink.h"

namespace vstream::analysis {
namespace {

constexpr double kTau = 6.0;  // chunk duration (s) for Eq. 2

/// Six sessions over three /24 prefixes with enough variety to make every
/// accumulator path non-trivial: varied SRTT, rebuffering, retries,
/// failovers, stale/shed/hedged chunks and one unscoreable chunk.
telemetry::Dataset rich_dataset() {
  telemetry::Dataset d;
  for (std::uint64_t s = 1; s <= 6; ++s) {
    telemetry::PlayerSessionRecord ps;
    ps.session_id = s;
    // Two sessions per /24.
    ps.client_ip = net::make_ip(10, 0, static_cast<std::uint8_t>((s + 1) / 2),
                                static_cast<std::uint8_t>(s));
    ps.user_agent = "Chrome/Windows";
    ps.start_time_ms = 500.0 * static_cast<double>(s);
    ps.startup_ms = 400.0 + 37.5 * static_cast<double>(s);
    ps.chunks_requested = 3;
    ps.completed = s != 4;  // one abandoned session
    d.player_sessions.push_back(ps);

    telemetry::CdnSessionRecord cs;
    cs.session_id = s;
    cs.observed_ip = ps.client_ip;
    cs.pop = static_cast<std::uint32_t>(s % 2);
    cs.org = s <= 2 ? "AlphaNet" : "BetaNet";
    cs.access = s % 3 == 0 ? net::AccessType::kEnterprise
                           : net::AccessType::kResidential;
    cs.country = s <= 4 ? "US" : "DE";
    cs.client_distance_km = 100.0 * static_cast<double>(s) + 0.25;
    d.cdn_sessions.push_back(cs);

    for (std::uint32_t c = 0; c < 3; ++c) {
      telemetry::PlayerChunkRecord pc;
      pc.session_id = s;
      pc.chunk_id = c;
      pc.request_sent_ms = c * 2'000.0;
      pc.dfb_ms = 80.0 + 10.0 * static_cast<double>(s) + c;
      pc.dlb_ms = 900.0 + static_cast<double>(c);
      pc.bitrate_kbps = 1'500 + 250 * c;
      pc.rebuffer_ms = (s % 2 == 1 && c == 1) ? 400.0 : 0.0;
      pc.rebuffer_count = (s % 2 == 1 && c == 1) ? 1 : 0;
      pc.avg_fps = 60.0;
      pc.dropped_frames = c;
      pc.total_frames = 360;
      if (s == 2 && c == 1) {
        pc.retries = 1;
        pc.recovery_ms = 300.0;
      }
      if (s == 3 && c == 2) {
        pc.failed_over = true;
        pc.recovery_ms = 450.0;
        pc.timeouts = 1;
      }
      if (s == 6 && c == 2) {
        // Unscoreable chunk for Eq. 2 (no delivery measured).
        pc.dfb_ms = 0.0;
        pc.dlb_ms = 0.0;
      }
      if (s == 5 && c == 1) {
        // Slower than real time: D_FB + D_LB > tau, so Eq. 2 flags it.
        pc.dfb_ms = 6'500.0;
      }
      d.player_chunks.push_back(pc);

      telemetry::CdnChunkRecord cc;
      cc.session_id = s;
      cc.chunk_id = c;
      cc.dread_ms = 1.5;
      cc.cache_level = cdn::CacheLevel::kRam;
      cc.served_stale = s == 5 && c == 0;
      cc.shed = s == 1 && c == 0;
      cc.hedged = s == 4 && c == 1;
      cc.hedge_won = s == 4 && c == 1;
      cc.served_swr = s == 5 && c == 2;
      cc.budget_denied = s == 2 && c == 1;
      d.cdn_chunks.push_back(cc);

      telemetry::TcpSnapshotRecord snap;
      snap.session_id = s;
      snap.chunk_id = c;
      snap.at_ms = c * 2'000.0 + 500.0;
      snap.info.srtt_ms = 40.0 + 5.0 * static_cast<double>(s) + c;
      snap.info.total_retrans = 2 * (c + 1);
      snap.info.segments_out = 100 * (c + 1);
      d.tcp_snapshots.push_back(snap);
    }
  }
  return d;
}

void expect_stats_equal(const SummaryStats& a, const SummaryStats& b) {
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.stddev, b.stddev);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.median, b.median);
  EXPECT_EQ(a.p25, b.p25);
  EXPECT_EQ(a.p75, b.p75);
  EXPECT_EQ(a.p95, b.p95);
}

TEST(QoeAccumulatorTest, BitIdenticalToBatchAggregate) {
  const telemetry::Dataset d = rich_dataset();
  const telemetry::JoinedDataset joined = telemetry::JoinedDataset::build(d);
  const QoeAggregate batch = aggregate_qoe(joined);

  QoeAccumulator acc;
  for (const telemetry::JoinedSession& s : joined.sessions()) acc.add(s);
  const QoeAggregate streamed = std::move(acc).finalize();

  EXPECT_EQ(streamed.sessions, batch.sessions);
  EXPECT_EQ(streamed.share_with_rebuffering, batch.share_with_rebuffering);
  expect_stats_equal(streamed.startup_ms, batch.startup_ms);
  expect_stats_equal(streamed.rebuffer_rate_pct, batch.rebuffer_rate_pct);
  expect_stats_equal(streamed.avg_bitrate_kbps, batch.avg_bitrate_kbps);
  expect_stats_equal(streamed.dropped_frame_pct, batch.dropped_frame_pct);
}

TEST(QoeAccumulatorTest, FeedOrderAndMergeDoNotChangeTheResult) {
  const telemetry::Dataset d = rich_dataset();
  const telemetry::JoinedDataset joined = telemetry::JoinedDataset::build(d);
  const QoeAggregate batch = aggregate_qoe(joined);

  // Reverse feed order.
  QoeAccumulator reversed;
  for (auto it = joined.sessions().rbegin(); it != joined.sessions().rend();
       ++it) {
    reversed.add(*it);
  }
  const QoeAggregate from_reversed = std::move(reversed).finalize();
  expect_stats_equal(from_reversed.startup_ms, batch.startup_ms);

  // Split across two accumulators (odd/even sessions, like two shards)
  // and merge.
  QoeAccumulator left, right;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    (s.session_id % 2 == 0 ? left : right).add(s);
  }
  left.merge(std::move(right));
  const QoeAggregate merged = std::move(left).finalize();
  EXPECT_EQ(merged.sessions, batch.sessions);
  expect_stats_equal(merged.startup_ms, batch.startup_ms);
  expect_stats_equal(merged.rebuffer_rate_pct, batch.rebuffer_rate_pct);
}

TEST(PrefixRollupAccumulatorTest, BitIdenticalToBatchRollup) {
  const telemetry::Dataset d = rich_dataset();
  const telemetry::JoinedDataset joined = telemetry::JoinedDataset::build(d);
  const std::vector<PrefixRollup> batch = rollup_prefixes(joined);
  ASSERT_EQ(batch.size(), 3u);

  PrefixRollupAccumulator acc;
  // Reverse order on purpose: finalize must re-sort before folding.
  for (auto it = joined.sessions().rbegin(); it != joined.sessions().rend();
       ++it) {
    acc.add(*it);
  }
  const std::vector<PrefixRollup> streamed = std::move(acc).finalize();

  ASSERT_EQ(streamed.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(streamed[i].prefix, batch[i].prefix);
    EXPECT_EQ(streamed[i].session_count, batch[i].session_count);
    EXPECT_EQ(streamed[i].srtt_min_ms, batch[i].srtt_min_ms);
    EXPECT_EQ(streamed[i].mean_srtt_ms, batch[i].mean_srtt_ms);
    EXPECT_EQ(streamed[i].distance_km, batch[i].distance_km);
    EXPECT_EQ(streamed[i].country, batch[i].country);
    EXPECT_EQ(streamed[i].org, batch[i].org);
    EXPECT_EQ(streamed[i].access, batch[i].access);
  }
}

TEST(PerfScoreAccumulatorTest, MatchesFlatChunkOrderFold) {
  const telemetry::Dataset d = rich_dataset();
  const telemetry::JoinedDataset joined = telemetry::JoinedDataset::build(d);

  PerfScoreAccumulator acc(kTau);
  for (const telemetry::JoinedSession& s : joined.sessions()) acc.add(s);
  const PerfScoreSummary streamed = std::move(acc).finalize();

  // Reference: the straightforward fold over all joined chunks in dataset
  // order, which the accumulator's per-session grouping must reproduce.
  std::size_t chunks = 0, scored = 0, bad = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    for (const telemetry::JoinedChunk& chunk : s.chunks) {
      if (chunk.player == nullptr) continue;
      ++chunks;
      if (chunk.player->dfb_ms + chunk.player->dlb_ms <= 0.0) continue;
      const double score =
          perf_score(kTau, chunk.player->dfb_ms, chunk.player->dlb_ms);
      ++scored;
      if (score < 1.0) ++bad;
      sum += score;
      min = std::min(min, score);
    }
  }
  EXPECT_EQ(streamed.chunks, chunks);
  EXPECT_EQ(streamed.scored_chunks, scored);
  EXPECT_EQ(streamed.bad_chunks, bad);
  ASSERT_GT(scored, 0u);
  // One chunk (session 6, chunk 2) is unscoreable.
  EXPECT_EQ(chunks, scored + 1);
  EXPECT_DOUBLE_EQ(streamed.mean_score, sum / static_cast<double>(scored));
  EXPECT_DOUBLE_EQ(streamed.min_score, min);
  EXPECT_GT(streamed.bad_share(), 0.0);
}

TEST(PerfScoreAccumulatorTest, MergePreservesTheFold) {
  const telemetry::Dataset d = rich_dataset();
  const telemetry::JoinedDataset joined = telemetry::JoinedDataset::build(d);

  PerfScoreAccumulator whole(kTau);
  PerfScoreAccumulator left(kTau), right(kTau);
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    whole.add(s);
    (s.session_id % 2 == 0 ? left : right).add(s);
  }
  left.merge(std::move(right));
  const PerfScoreSummary a = std::move(whole).finalize();
  const PerfScoreSummary b = std::move(left).finalize();
  EXPECT_EQ(a.chunks, b.chunks);
  EXPECT_EQ(a.scored_chunks, b.scored_chunks);
  EXPECT_EQ(a.bad_chunks, b.bad_chunks);
  EXPECT_EQ(a.mean_score, b.mean_score);
  EXPECT_EQ(a.min_score, b.min_score);
}

TEST(RecoveryImpactAccumulatorTest, CountsExactMeansToRounding) {
  const telemetry::Dataset d = rich_dataset();
  const telemetry::JoinedDataset joined = telemetry::JoinedDataset::build(d);
  const RecoveryImpact batch = recovery_impact(joined);

  RecoveryImpactAccumulator acc;
  for (const telemetry::JoinedSession& s : joined.sessions()) acc.add(s);
  const RecoveryImpact streamed = std::move(acc).finalize();

  // Integer tallies are exact.
  EXPECT_EQ(streamed.sessions, batch.sessions);
  EXPECT_EQ(streamed.completed_sessions, batch.completed_sessions);
  EXPECT_EQ(streamed.failover_sessions, batch.failover_sessions);
  EXPECT_EQ(streamed.affected_sessions, batch.affected_sessions);
  EXPECT_EQ(streamed.retries, batch.retries);
  EXPECT_EQ(streamed.timeouts, batch.timeouts);
  EXPECT_EQ(streamed.stale_chunks, batch.stale_chunks);
  EXPECT_EQ(streamed.shed_chunks, batch.shed_chunks);
  EXPECT_EQ(streamed.hedged_chunks, batch.hedged_chunks);
  EXPECT_EQ(streamed.hedge_wins, batch.hedge_wins);
  EXPECT_EQ(streamed.swr_chunks, batch.swr_chunks);
  EXPECT_EQ(streamed.budget_denied_chunks, batch.budget_denied_chunks);

  // The sanity of the fixture: recovery actually happened.
  EXPECT_GT(streamed.affected_sessions, 0u);
  EXPECT_GT(streamed.stale_chunks, 0u);

  // The accumulator regroups the batch fold's sums per session, so the FP
  // means agree to rounding, not necessarily to the bit (header contract).
  EXPECT_NEAR(streamed.mean_recovery_ms, batch.mean_recovery_ms, 1e-9);
  EXPECT_NEAR(streamed.mean_dfb_failover_ms, batch.mean_dfb_failover_ms,
              1e-9);
  EXPECT_NEAR(streamed.mean_dfb_clean_ms, batch.mean_dfb_clean_ms, 1e-9);
  EXPECT_NEAR(streamed.rebuffer_rate_percent, batch.rebuffer_rate_percent,
              1e-9);
}

TEST(RecoveryImpactAccumulatorTest, MergeMatchesSingleAccumulator) {
  const telemetry::Dataset d = rich_dataset();
  const telemetry::JoinedDataset joined = telemetry::JoinedDataset::build(d);

  RecoveryImpactAccumulator whole;
  RecoveryImpactAccumulator left, right;
  for (const telemetry::JoinedSession& s : joined.sessions()) {
    whole.add(s);
    (s.session_id % 2 == 0 ? left : right).add(s);
  }
  left.merge(std::move(right));
  const RecoveryImpact a = std::move(whole).finalize();
  const RecoveryImpact b = std::move(left).finalize();
  EXPECT_EQ(a.affected_sessions, b.affected_sessions);
  EXPECT_EQ(a.retries, b.retries);
  // Both folds sort entries by session id first, so even the FP means are
  // identical between the merged and the single accumulator.
  EXPECT_EQ(a.mean_recovery_ms, b.mean_recovery_ms);
  EXPECT_EQ(a.rebuffer_rate_percent, b.rebuffer_rate_percent);
}

}  // namespace
}  // namespace vstream::analysis
