#include "telemetry/spill_codec.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

namespace vstream::telemetry::codec {
namespace {

Reader reader_over(const std::string& buf) {
  return Reader{buf.data(), buf.data() + buf.size()};
}

// ------------------------------------------------------------------ varint

TEST(SpillCodecVarint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  0x7F,
                                  0x80,
                                  0x3FFF,
                                  0x4000,
                                  0xFFFFFFFFull,
                                  0x123456789ABCDEFull,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) {
    std::string buf;
    put_varint(buf, v);
    EXPECT_EQ(buf.size(), varint_size(v)) << v;
    Reader r = reader_over(buf);
    EXPECT_EQ(get_varint(r), v);
    EXPECT_EQ(r.p, r.end) << "trailing bytes for " << v;
  }
}

TEST(SpillCodecVarint, RejectsOverflowAndTruncation) {
  {
    // 10 continuation groups with a 10th byte > 1 would need 65+ bits.
    const std::string buf(10, static_cast<char>(0xFF));
    Reader r = reader_over(buf);
    EXPECT_THROW(get_varint(r), std::runtime_error);
  }
  {
    const std::string buf(3, static_cast<char>(0x80));  // never terminates
    Reader r = reader_over(buf);
    EXPECT_THROW(get_varint(r), std::runtime_error);
  }
}

// ------------------------------------------------------------------ zigzag

TEST(SpillCodecZigzag, SmallMagnitudesMapToSmallCodes) {
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(static_cast<std::uint64_t>(-1)), 1u);
  EXPECT_EQ(zigzag(1), 2u);
  EXPECT_EQ(zigzag(static_cast<std::uint64_t>(-2)), 3u);
  EXPECT_EQ(zigzag(2), 4u);
}

TEST(SpillCodecZigzag, RoundTripsEveryBitPattern) {
  std::mt19937_64 rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng();
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
  EXPECT_EQ(unzigzag(zigzag(std::numeric_limits<std::uint64_t>::max())),
            std::numeric_limits<std::uint64_t>::max());
}

// ------------------------------------------------------------- int columns

std::vector<std::uint64_t> int_round_trip(
    const std::vector<std::uint64_t>& v) {
  std::string buf;
  encode_int_column(buf, v);
  Reader r = reader_over(buf);
  std::vector<std::uint64_t> out;
  decode_int_column(r, v.size(), out);
  EXPECT_EQ(r.p, r.end) << "column left trailing bytes";
  return out;
}

TEST(SpillCodecIntColumn, ConstColumnIsTiny) {
  const std::vector<std::uint64_t> v(1000, 7);
  std::string buf;
  encode_int_column(buf, v);
  EXPECT_EQ(buf.size(), 2u);  // mode byte + varint(7)
  EXPECT_EQ(int_round_trip(v), v);
}

TEST(SpillCodecIntColumn, MonotoneIdsDeltaCompress) {
  std::vector<std::uint64_t> v;
  for (std::uint64_t i = 0; i < 500; ++i) v.push_back(1'000'000 + i * 2);
  std::string buf;
  encode_int_column(buf, v);
  // First delta is large, the rest are one byte each.
  EXPECT_LE(buf.size(), 1 + 4 + (v.size() - 1));
  EXPECT_EQ(int_round_trip(v), v);
}

TEST(SpillCodecIntColumn, RoundTripsRandomAndAdversarialValues) {
  std::mt19937_64 rng(7);
  std::vector<std::uint64_t> v;
  for (int i = 0; i < 997; ++i) v.push_back(rng());
  v.push_back(0);
  v.push_back(std::numeric_limits<std::uint64_t>::max());
  v.push_back(0);  // max -> 0 wraps: exercises wrapping delta arithmetic
  EXPECT_EQ(int_round_trip(v), v);
}

TEST(SpillCodecIntColumn, EmptyColumnWritesNothing) {
  std::string buf;
  encode_int_column(buf, {});
  EXPECT_TRUE(buf.empty());
  Reader r = reader_over(buf);
  std::vector<std::uint64_t> out{1, 2, 3};
  decode_int_column(r, 0, out);
  EXPECT_TRUE(out.empty());
}

TEST(SpillCodecIntColumn, RejectsUnknownModeAndTruncation) {
  {
    std::string buf;
    buf.push_back(9);  // no such mode
    Reader r = reader_over(buf);
    std::vector<std::uint64_t> out;
    EXPECT_THROW(decode_int_column(r, 3, out), std::runtime_error);
  }
  {
    std::string buf;
    encode_int_column(buf, {1, 1000, 5});
    buf.resize(buf.size() - 1);
    Reader r = reader_over(buf);
    std::vector<std::uint64_t> out;
    EXPECT_THROW(decode_int_column(r, 3, out), std::runtime_error);
  }
}

// ------------------------------------------------------------- f64 columns

std::vector<std::uint64_t> f64_round_trip(
    const std::vector<std::uint64_t>& bits) {
  std::string buf;
  encode_f64_column(buf, bits);
  Reader r = reader_over(buf);
  std::vector<std::uint64_t> out;
  decode_f64_column(r, bits.size(), out);
  EXPECT_EQ(r.p, r.end) << "column left trailing bytes";
  return out;
}

TEST(SpillCodecF64Column, ConstColumnIsNineBytes) {
  const std::vector<std::uint64_t> bits(256, 0x3FF0000000000000ull);  // 1.0
  std::string buf;
  encode_f64_column(buf, bits);
  EXPECT_EQ(buf.size(), 9u);
  EXPECT_EQ(f64_round_trip(bits), bits);
}

TEST(SpillCodecF64Column, RoundTripsExtremePatterns) {
  const std::vector<std::uint64_t> bits = {
      0x7FF8000000000000ull,  // quiet NaN
      0x7FF0000000000001ull,  // signaling NaN
      0xFFFFFFFFFFFFFFFFull,  // negative NaN, all-ones payload
      0x7FF0000000000000ull,  // +inf
      0xFFF0000000000000ull,  // -inf
      0x8000000000000000ull,  // -0.0
      0x0000000000000000ull,  // +0.0
      0x0000000000000001ull,  // min denormal
      0x000FFFFFFFFFFFFFull,  // max denormal
      0x7FEFFFFFFFFFFFFFull,  // max finite
      0x0000000000000000ull,  // repeat: zero xor-delta path
      0x0000000000000000ull,
  };
  EXPECT_EQ(f64_round_trip(bits), bits);
}

TEST(SpillCodecF64Column, RoundTripsFullEntropyMantissas) {
  std::mt19937_64 rng(11);
  std::vector<std::uint64_t> bits;
  for (int i = 0; i < 1'003; ++i) bits.push_back(rng());
  EXPECT_EQ(f64_round_trip(bits), bits);
}

TEST(SpillCodecF64Column, ExpModeBeatsXorOnFullEntropyMantissas) {
  // Same exponent, random mantissas: xor degrades toward 8-9 B/value, the
  // exponent-split stays near the 6.5 B/value mantissa floor.
  std::mt19937_64 rng(13);
  std::vector<std::uint64_t> bits;
  for (int i = 0; i < 512; ++i) {
    bits.push_back(0x4050000000000000ull |
                   (rng() & ((std::uint64_t{1} << 52) - 1)));
  }
  std::string buf;
  encode_f64_column(buf, bits);
  ASSERT_FALSE(buf.empty());
  EXPECT_EQ(static_cast<std::uint8_t>(buf[0]), kModeExp);
  // 52/8 = 6.5 B of mantissa + one exponent-delta byte = 7.5 B/value,
  // below both raw (8) and xor-on-noise (~9).
  EXPECT_LE(buf.size(), bits.size() * 15 / 2 + 16);
  EXPECT_EQ(f64_round_trip(bits), bits);
}

TEST(SpillCodecF64Column, XorModeWinsOnSlowlyChangingValues) {
  // Millisecond timestamps ticking upward: high bytes stable, xor deltas
  // short.
  std::vector<std::uint64_t> bits;
  double t = 14'000.0;
  for (int i = 0; i < 512; ++i) {
    bits.push_back(std::bit_cast<std::uint64_t>(t));
    t += 0.5;
  }
  std::string buf;
  encode_f64_column(buf, bits);
  ASSERT_FALSE(buf.empty());
  EXPECT_EQ(static_cast<std::uint8_t>(buf[0]), kModeXor);
  EXPECT_LT(buf.size(), bits.size() * 4);  // far below raw 8 B/value
  EXPECT_EQ(f64_round_trip(bits), bits);
}

TEST(SpillCodecF64Column, RejectsDamage) {
  {
    std::string buf;
    buf.push_back(7);  // no such mode
    Reader r = reader_over(buf);
    std::vector<std::uint64_t> out;
    EXPECT_THROW(decode_f64_column(r, 2, out), std::runtime_error);
  }
  {
    // xor ctrl byte claiming 8 trailing-zero bytes + 8 significant bytes.
    std::string buf;
    buf.push_back(static_cast<char>(kModeXor));
    buf.push_back(static_cast<char>(1 + 8 * 8 + 7));
    Reader r = reader_over(buf);
    std::vector<std::uint64_t> out;
    EXPECT_THROW(decode_f64_column(r, 1, out), std::runtime_error);
  }
  {
    // exp mode with an exponent delta escaping 12 bits.
    std::string buf;
    buf.push_back(static_cast<char>(kModeExp));
    put_varint(buf, zigzag(5000));
    Reader r = reader_over(buf);
    std::vector<std::uint64_t> out;
    EXPECT_THROW(decode_f64_column(r, 1, out), std::runtime_error);
  }
  {
    std::string buf;
    encode_f64_column(buf, {1, 2, 3});  // bit patterns, not doubles — fine
    buf.resize(buf.size() - 1);
    Reader r = reader_over(buf);
    std::vector<std::uint64_t> out;
    EXPECT_THROW(decode_f64_column(r, 3, out), std::runtime_error);
  }
}

// ------------------------------------------------------------ bool columns

TEST(SpillCodecBoolColumn, ConstAndPackedRoundTrip) {
  {
    const std::vector<std::uint8_t> v(77, 1);
    std::string buf;
    encode_bool_column(buf, v);
    EXPECT_EQ(buf.size(), 2u);
    Reader r = reader_over(buf);
    std::vector<std::uint8_t> out;
    decode_bool_column(r, v.size(), out);
    EXPECT_EQ(out, v);
  }
  {
    std::vector<std::uint8_t> v;
    std::mt19937_64 rng(3);
    for (int i = 0; i < 333; ++i) v.push_back(rng() & 1);
    v[0] = 0;
    v[1] = 1;  // force non-const
    std::string buf;
    encode_bool_column(buf, v);
    EXPECT_EQ(buf.size(), 1 + (v.size() + 7) / 8);
    Reader r = reader_over(buf);
    std::vector<std::uint8_t> out;
    decode_bool_column(r, v.size(), out);
    EXPECT_EQ(out, v);
    EXPECT_EQ(r.p, r.end);
  }
}

TEST(SpillCodecBoolColumn, RejectsUnknownMode) {
  std::string buf;
  buf.push_back(5);
  Reader r = reader_over(buf);
  std::vector<std::uint8_t> out;
  EXPECT_THROW(decode_bool_column(r, 1, out), std::runtime_error);
}

// ---------------------------------------------------------------- strings

TEST(SpillCodecString, RoundTripsIncludingEmbeddedNulAndTruncates) {
  const std::string s = std::string("Mozilla/5.0\0 (X11)", 18);
  std::string buf;
  put_string(buf, s);
  Reader r = reader_over(buf);
  EXPECT_EQ(get_string(r), s);
  EXPECT_EQ(r.p, r.end);

  // A length varint pointing past the buffer must throw, not over-read.
  std::string bad;
  put_varint(bad, 1'000'000);
  bad += "short";
  Reader rb = reader_over(bad);
  EXPECT_THROW(get_string(rb), std::runtime_error);
}

}  // namespace
}  // namespace vstream::telemetry::codec
