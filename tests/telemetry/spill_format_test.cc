#include "telemetry/spill_format.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace vstream::telemetry {
namespace {

class SpillDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string name = ::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name();
    // Parameterized test names carry a "/N" suffix; flatten it so the
    // scratch stays a single directory level.
    for (char& c : name) {
      if (c == '/') c = '_';
    }
    dir_ = std::filesystem::temp_directory_path() /
           ("vstream_spill_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + name);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path file(const char* name) const { return dir_ / name; }

  std::filesystem::path dir_;
};

/// Every structural/recovery test runs against both on-disk formats: the
/// framing, salvage and merge logic are version-blind and must stay so.
class SpillFormatTest : public SpillDirTest,
                        public ::testing::WithParamInterface<std::uint32_t> {
 protected:
  std::uint32_t format() const { return GetParam(); }
};

/// One session with every field of every record type set to a distinctive
/// value, so a lossy or reordered encoding shows up as a mismatch.
SessionRecordGroup full_group(std::uint64_t id) {
  SessionRecordGroup g;
  g.session_id = id;

  PlayerSessionRecord ps;
  ps.session_id = id;
  ps.client_ip = 0x0A00FF01 + static_cast<std::uint32_t>(id);
  ps.user_agent = "Safari/OSX " + std::to_string(id);
  ps.video_duration_s = 1'234.5 + static_cast<double>(id);
  ps.start_time_ms = 0.1 * static_cast<double>(id);
  ps.startup_ms = 789.25;
  ps.chunks_requested = 42;
  ps.completed = (id % 2) == 0;
  g.player_sessions.push_back(ps);

  CdnSessionRecord cs;
  cs.session_id = id;
  cs.observed_ip = 0xC0A80001;
  cs.observed_user_agent = "proxy-UA";
  cs.pop = 3;
  cs.server = 17;
  cs.org = "ExampleNet";
  cs.access = net::AccessType::kEnterprise;
  cs.city = "Springfield";
  cs.country = "US";
  cs.client_distance_km = 1'609.344;
  g.cdn_sessions.push_back(cs);

  PlayerChunkRecord pc;
  pc.session_id = id;
  pc.chunk_id = 7;
  pc.request_sent_ms = 14'000.125;
  pc.dfb_ms = 101.0078125;  // exact binary fraction: survives any rounding
  pc.dlb_ms = 900.5;
  pc.bitrate_kbps = 3'000;
  pc.rebuffer_ms = 250.75;
  pc.rebuffer_count = 2;
  pc.visible = false;
  pc.avg_fps = 59.94;
  pc.dropped_frames = 5;
  pc.total_frames = 360;
  pc.retries = 1;
  pc.timeouts = 1;
  pc.failed_over = true;
  pc.recovery_ms = 450.0;
  g.player_chunks.push_back(pc);

  CdnChunkRecord cc;
  cc.session_id = id;
  cc.chunk_id = 7;
  cc.dwait_ms = 0.3;
  cc.dopen_ms = 0.5;
  cc.dread_ms = 80.0;
  cc.dbe_ms = 65.0;
  cc.cache_level = cdn::CacheLevel::kDisk;
  cc.chunk_bytes = 1'125'000;
  cc.pop = 3;
  cc.server = 18;
  cc.served_stale = true;
  cc.shed = true;
  cc.hedged = true;
  cc.hedge_won = false;
  cc.budget_denied = true;
  cc.served_swr = true;
  cc.breaker = cdn::BreakerState::kHalfOpen;
  g.cdn_chunks.push_back(cc);

  TcpSnapshotRecord snap;
  snap.session_id = id;
  snap.chunk_id = 7;
  snap.at_ms = 14'500.0;
  snap.info.srtt_ms = 48.875;
  snap.info.rttvar_ms = 12.25;
  snap.info.cwnd_segments = 64;
  snap.info.ssthresh_segments = 32;
  snap.info.mss_bytes = 1'448;
  snap.info.total_retrans = 9;
  snap.info.segments_out = 4'096;
  snap.info.bytes_acked = 5'931'008;
  snap.info.in_slow_start = true;
  g.tcp_snapshots.push_back(snap);
  return g;
}

void expect_groups_equal(const SessionRecordGroup& a,
                         const SessionRecordGroup& b) {
  EXPECT_EQ(a.session_id, b.session_id);
  ASSERT_EQ(a.player_sessions.size(), b.player_sessions.size());
  ASSERT_EQ(a.cdn_sessions.size(), b.cdn_sessions.size());
  ASSERT_EQ(a.player_chunks.size(), b.player_chunks.size());
  ASSERT_EQ(a.cdn_chunks.size(), b.cdn_chunks.size());
  ASSERT_EQ(a.tcp_snapshots.size(), b.tcp_snapshots.size());
  for (std::size_t i = 0; i < a.player_sessions.size(); ++i) {
    const auto& x = a.player_sessions[i];
    const auto& y = b.player_sessions[i];
    EXPECT_EQ(x.session_id, y.session_id);
    EXPECT_EQ(x.client_ip, y.client_ip);
    EXPECT_EQ(x.user_agent, y.user_agent);
    // Bit-exact double round trips (raw IEEE-754 bits on disk).
    EXPECT_EQ(x.video_duration_s, y.video_duration_s);
    EXPECT_EQ(x.start_time_ms, y.start_time_ms);
    EXPECT_EQ(x.startup_ms, y.startup_ms);
    EXPECT_EQ(x.chunks_requested, y.chunks_requested);
    EXPECT_EQ(x.completed, y.completed);
  }
  for (std::size_t i = 0; i < a.cdn_sessions.size(); ++i) {
    const auto& x = a.cdn_sessions[i];
    const auto& y = b.cdn_sessions[i];
    EXPECT_EQ(x.session_id, y.session_id);
    EXPECT_EQ(x.observed_ip, y.observed_ip);
    EXPECT_EQ(x.observed_user_agent, y.observed_user_agent);
    EXPECT_EQ(x.pop, y.pop);
    EXPECT_EQ(x.server, y.server);
    EXPECT_EQ(x.org, y.org);
    EXPECT_EQ(x.access, y.access);
    EXPECT_EQ(x.city, y.city);
    EXPECT_EQ(x.country, y.country);
    EXPECT_EQ(x.client_distance_km, y.client_distance_km);
  }
  for (std::size_t i = 0; i < a.player_chunks.size(); ++i) {
    const auto& x = a.player_chunks[i];
    const auto& y = b.player_chunks[i];
    EXPECT_EQ(x.session_id, y.session_id);
    EXPECT_EQ(x.chunk_id, y.chunk_id);
    EXPECT_EQ(x.request_sent_ms, y.request_sent_ms);
    EXPECT_EQ(x.dfb_ms, y.dfb_ms);
    EXPECT_EQ(x.dlb_ms, y.dlb_ms);
    EXPECT_EQ(x.bitrate_kbps, y.bitrate_kbps);
    EXPECT_EQ(x.rebuffer_ms, y.rebuffer_ms);
    EXPECT_EQ(x.rebuffer_count, y.rebuffer_count);
    EXPECT_EQ(x.visible, y.visible);
    EXPECT_EQ(x.avg_fps, y.avg_fps);
    EXPECT_EQ(x.dropped_frames, y.dropped_frames);
    EXPECT_EQ(x.total_frames, y.total_frames);
    EXPECT_EQ(x.retries, y.retries);
    EXPECT_EQ(x.timeouts, y.timeouts);
    EXPECT_EQ(x.failed_over, y.failed_over);
    EXPECT_EQ(x.recovery_ms, y.recovery_ms);
  }
  for (std::size_t i = 0; i < a.cdn_chunks.size(); ++i) {
    const auto& x = a.cdn_chunks[i];
    const auto& y = b.cdn_chunks[i];
    EXPECT_EQ(x.session_id, y.session_id);
    EXPECT_EQ(x.chunk_id, y.chunk_id);
    EXPECT_EQ(x.dwait_ms, y.dwait_ms);
    EXPECT_EQ(x.dopen_ms, y.dopen_ms);
    EXPECT_EQ(x.dread_ms, y.dread_ms);
    EXPECT_EQ(x.dbe_ms, y.dbe_ms);
    EXPECT_EQ(x.cache_level, y.cache_level);
    EXPECT_EQ(x.chunk_bytes, y.chunk_bytes);
    EXPECT_EQ(x.pop, y.pop);
    EXPECT_EQ(x.server, y.server);
    EXPECT_EQ(x.served_stale, y.served_stale);
    EXPECT_EQ(x.shed, y.shed);
    EXPECT_EQ(x.hedged, y.hedged);
    EXPECT_EQ(x.hedge_won, y.hedge_won);
    EXPECT_EQ(x.budget_denied, y.budget_denied);
    EXPECT_EQ(x.served_swr, y.served_swr);
    EXPECT_EQ(x.breaker, y.breaker);
  }
  for (std::size_t i = 0; i < a.tcp_snapshots.size(); ++i) {
    const auto& x = a.tcp_snapshots[i];
    const auto& y = b.tcp_snapshots[i];
    EXPECT_EQ(x.session_id, y.session_id);
    EXPECT_EQ(x.chunk_id, y.chunk_id);
    EXPECT_EQ(x.at_ms, y.at_ms);
    EXPECT_EQ(x.info.srtt_ms, y.info.srtt_ms);
    EXPECT_EQ(x.info.rttvar_ms, y.info.rttvar_ms);
    EXPECT_EQ(x.info.cwnd_segments, y.info.cwnd_segments);
    EXPECT_EQ(x.info.ssthresh_segments, y.info.ssthresh_segments);
    EXPECT_EQ(x.info.mss_bytes, y.info.mss_bytes);
    EXPECT_EQ(x.info.total_retrans, y.info.total_retrans);
    EXPECT_EQ(x.info.segments_out, y.info.segments_out);
    EXPECT_EQ(x.info.bytes_acked, y.info.bytes_acked);
    EXPECT_EQ(x.info.in_slow_start, y.info.in_slow_start);
  }
}

TEST_P(SpillFormatTest, RoundTripsEveryFieldBitExact) {
  const auto path = file("roundtrip.vspill");
  {
    SpillWriter writer(path, format());
    writer.write(full_group(11));
    writer.close();
    EXPECT_EQ(writer.blocks_written(), 1u);
  }
  SpillReader reader(path);
  auto read = reader.next();
  ASSERT_TRUE(read.has_value());
  expect_groups_equal(full_group(11), *read);
  EXPECT_FALSE(reader.next().has_value());
}

TEST_P(SpillFormatTest, IndexAndRandomAccessRead) {
  const auto path = file("index.vspill");
  {
    SpillWriter writer(path, format());
    // Completion order is not id order — the index must not care.
    writer.write(full_group(30));
    writer.write(full_group(10));
    writer.write(full_group(20));
    writer.close();
  }
  SpillReader reader(path);
  const std::vector<SpillBlockRef> index = reader.index();
  ASSERT_EQ(index.size(), 3u);
  EXPECT_EQ(index[0].session_id, 30u);
  EXPECT_EQ(index[1].session_id, 10u);
  EXPECT_EQ(index[2].session_id, 20u);
  auto at1 = reader.read_at(index[1]);
  ASSERT_TRUE(at1.has_value());
  expect_groups_equal(full_group(10), *at1);
  auto at0 = reader.read_at(index[0]);
  ASSERT_TRUE(at0.has_value());
  expect_groups_equal(full_group(30), *at0);
}

TEST_P(SpillFormatTest, SpillSetStreamsAscendingAcrossFiles) {
  SpillSet set;
  {
    SpillWriter a(file("shard-0.vspill"), format());
    a.write(full_group(5));
    a.write(full_group(1));
    a.close();
    SpillWriter b(file("shard-1.vspill"), format());
    b.write(full_group(4));
    b.write(full_group(2));
    b.close();
  }
  set.add_file(file("shard-0.vspill"));
  set.add_file(file("shard-1.vspill"));

  const auto stream = set.open();
  std::vector<std::uint64_t> ids;
  while (auto group = stream->next()) ids.push_back(group->session_id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 4, 5}));
}

TEST_P(SpillFormatTest, SessionSplitAcrossFilesConcatenatesInFileOrder) {
  // The canonical in-memory merge tie-breaks equal session ids by shard
  // order; the spill stream must do the same when one session's blocks
  // land in several files.
  SessionRecordGroup first;
  first.session_id = 9;
  PlayerChunkRecord pc0;
  pc0.session_id = 9;
  pc0.chunk_id = 0;
  first.player_chunks.push_back(pc0);

  SessionRecordGroup second;
  second.session_id = 9;
  PlayerChunkRecord pc1;
  pc1.session_id = 9;
  pc1.chunk_id = 1;
  second.player_chunks.push_back(pc1);

  {
    SpillWriter a(file("shard-0.vspill"), format());
    a.write(first);
    a.close();
    SpillWriter b(file("shard-1.vspill"), format());
    b.write(second);
    b.close();
  }
  SpillSet set;
  set.add_file(file("shard-0.vspill"));
  set.add_file(file("shard-1.vspill"));

  const auto stream = set.open();
  auto group = stream->next();
  ASSERT_TRUE(group.has_value());
  EXPECT_EQ(group->session_id, 9u);
  ASSERT_EQ(group->player_chunks.size(), 2u);
  EXPECT_EQ(group->player_chunks[0].chunk_id, 0u);
  EXPECT_EQ(group->player_chunks[1].chunk_id, 1u);
  EXPECT_FALSE(stream->next().has_value());

  // load() materializes the same concatenation.
  const Dataset loaded = set.load();
  ASSERT_EQ(loaded.player_chunks.size(), 2u);
  EXPECT_EQ(loaded.player_chunks[0].chunk_id, 0u);
  EXPECT_EQ(loaded.player_chunks[1].chunk_id, 1u);
}

TEST_P(SpillFormatTest, DuplicateIdsWithinOneFileMergeInFileOrder) {
  SessionRecordGroup first;
  first.session_id = 3;
  PlayerChunkRecord pc0;
  pc0.session_id = 3;
  pc0.chunk_id = 0;
  first.player_chunks.push_back(pc0);
  SessionRecordGroup second;
  second.session_id = 3;
  PlayerChunkRecord pc1;
  pc1.session_id = 3;
  pc1.chunk_id = 1;
  second.player_chunks.push_back(pc1);

  {
    SpillWriter w(file("dup.vspill"), format());
    w.write(first);
    w.write(second);
    w.close();
  }
  SpillSet set;
  set.add_file(file("dup.vspill"));
  const auto stream = set.open();
  auto group = stream->next();
  ASSERT_TRUE(group.has_value());
  ASSERT_EQ(group->player_chunks.size(), 2u);
  EXPECT_EQ(group->player_chunks[0].chunk_id, 0u);
  EXPECT_EQ(group->player_chunks[1].chunk_id, 1u);
}

TEST_P(SpillFormatTest, RejectsBadMagic) {
  const auto path = file("bad.vspill");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a spill file";
  }
  EXPECT_THROW(SpillReader reader(path), std::runtime_error);
}

TEST_P(SpillFormatTest, RejectsMissingFile) {
  EXPECT_THROW(SpillReader reader(file("nope.vspill")), std::runtime_error);
}

TEST_P(SpillFormatTest, TruncatedTailIsDroppedNotFatal) {
  // A writer killed mid-frame leaves a torn tail; recovery keeps every
  // fully committed block and accounts the dropped bytes.
  const auto path = file("trunc.vspill");
  {
    SpillWriter writer(path, format());
    writer.write(full_group(1));
    writer.write(full_group(2));
    writer.close();
  }
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 25);  // into block 2's trailer
  SpillReader reader(path);
  auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  expect_groups_equal(full_group(1), *first);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.stats().corrupted());
  EXPECT_GT(reader.stats().torn_tail_bytes, 0u);
  EXPECT_EQ(reader.stats().blocks_ok, 1u);
}

TEST_P(SpillFormatTest, CorruptPayloadByteSkipsOnlyThatBlock) {
  const auto path = file("flip.vspill");
  {
    SpillWriter writer(path, format());
    writer.write(full_group(1));
    writer.write(full_group(2));
    writer.write(full_group(3));
    writer.close();
  }
  // Flip one byte in the middle of block 2's payload.
  SpillReader probe(path);
  const auto index = probe.index();
  ASSERT_EQ(index.size(), 3u);
  const std::uint64_t target = index[1].offset + 24 + 40;  // inside payload
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(target));
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(static_cast<std::streamoff>(target));
    f.write(&b, 1);
  }
  SpillReader reader(path);
  std::vector<std::uint64_t> ids;
  while (auto g = reader.next()) ids.push_back(g->session_id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(reader.stats().blocks_skipped, 1u);
  EXPECT_EQ(reader.stats().blocks_ok, 2u);
  EXPECT_TRUE(reader.stats().corrupted());
}

TEST_P(SpillFormatTest, ResumedWriterTruncatesUncommittedTail) {
  const auto path = file("resume.vspill");
  std::uint64_t committed = 0;
  std::uint64_t blocks = 0;
  {
    SpillWriter writer(path, format());
    writer.write(full_group(1));
    committed = writer.flush_committed();
    blocks = writer.blocks_written();
    // Simulate a crash after more (to-be-discarded) work: write another
    // block, then abandon the writer without recording its offset.
    writer.write(full_group(99));
    writer.flush_committed();
  }
  {
    SpillWriter writer(path, committed, blocks);
    EXPECT_EQ(writer.committed_bytes(), committed);
    EXPECT_EQ(writer.blocks_written(), blocks);
    writer.write(full_group(2));
    writer.close();
    EXPECT_EQ(writer.blocks_written(), 2u);
  }
  SpillReader reader(path);
  std::vector<std::uint64_t> ids;
  while (auto g = reader.next()) ids.push_back(g->session_id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_FALSE(reader.stats().corrupted());
  EXPECT_EQ(reader.stats().commit_frames, 2u);
}

TEST_P(SpillFormatTest, ResumeRejectsOffsetBeyondFile) {
  const auto path = file("resume_bad.vspill");
  {
    SpillWriter writer(path, format());
    writer.write(full_group(1));
    writer.close();
  }
  const auto size = std::filesystem::file_size(path);
  EXPECT_THROW(SpillWriter(path, size + 100, 1), std::runtime_error);
  EXPECT_THROW(SpillWriter(path, 3, 0), std::runtime_error);
  EXPECT_THROW(SpillWriter(file("gone.vspill"), 8, 0), std::runtime_error);
}

std::string read_all(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_all(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Drain a reader over a possibly damaged file; must terminate and never
/// throw (the fuzz contract: recover or account, never crash).
std::vector<std::uint64_t> drain_ids(const std::filesystem::path& path) {
  SpillReader reader(path);
  std::vector<std::uint64_t> ids;
  while (auto g = reader.next()) ids.push_back(g->session_id);
  return ids;
}

TEST_P(SpillFormatTest, FuzzFlipEveryByteNeverCrashes) {
  const auto path = file("fuzz_flip.vspill");
  {
    SpillWriter writer(path, format());
    writer.write(full_group(1));
    writer.write(full_group(2));
    writer.close();
  }
  const std::string clean = read_all(path);
  const auto mutant = file("fuzz_flip_mut.vspill");
  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::string bytes = clean;
    bytes[i] = static_cast<char>(bytes[i] ^ 0xA5);
    write_all(mutant, bytes);
    if (i < 8) {
      // Header damage is environmental (wrong magic/version): a structured
      // throw, never UB.
      EXPECT_THROW(drain_ids(mutant), std::runtime_error) << "byte " << i;
      continue;
    }
    std::vector<std::uint64_t> ids;
    EXPECT_NO_THROW(ids = drain_ids(mutant)) << "byte " << i;
    // Damage past the header loses at most the enclosing block.
    EXPECT_LE(ids.size(), 2u) << "byte " << i;
  }
}

TEST_P(SpillFormatTest, FuzzTruncateEveryOffsetNeverCrashes) {
  const auto path = file("fuzz_trunc.vspill");
  {
    SpillWriter writer(path, format());
    writer.write(full_group(1));
    writer.write(full_group(2));
    writer.close();
  }
  const std::string clean = read_all(path);
  const auto mutant = file("fuzz_trunc_mut.vspill");
  for (std::size_t len = 0; len <= clean.size(); ++len) {
    write_all(mutant, clean.substr(0, len));
    if (len < 8) {
      EXPECT_THROW(drain_ids(mutant), std::runtime_error) << "len " << len;
      continue;
    }
    std::vector<std::uint64_t> ids;
    EXPECT_NO_THROW(ids = drain_ids(mutant)) << "len " << len;
    // Truncation only ever drops a suffix of the committed blocks.
    ASSERT_LE(ids.size(), 2u) << "len " << len;
    if (!ids.empty()) {
      EXPECT_EQ(ids[0], 1u) << "len " << len;
    }
  }
}

TEST_P(SpillFormatTest, SpillSetAggregatesSalvageStats) {
  SpillSet set;
  {
    SpillWriter a(file("shard-0.vspill"), format());
    a.write(full_group(1));
    a.write(full_group(3));
    a.close();
    SpillWriter b(file("shard-1.vspill"), format());
    b.write(full_group(2));
    b.close();
  }
  // Tear shard-1's tail mid-block.
  const auto b_path = file("shard-1.vspill");
  std::filesystem::resize_file(b_path,
                               std::filesystem::file_size(b_path) - 30);
  set.add_file(file("shard-0.vspill"));
  set.add_file(b_path);

  SpillReadStats stats;
  const auto stream = set.open(&stats);
  std::vector<std::uint64_t> ids;
  while (auto g = stream->next()) ids.push_back(g->session_id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_TRUE(stats.corrupted());
  EXPECT_GT(stats.torn_tail_bytes, 0u);
  EXPECT_EQ(stats.blocks_ok, 2u);
}

TEST_P(SpillFormatTest, EmptySpillSet) {
  const SpillSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_FALSE(set.open()->next().has_value());
  const Dataset loaded = set.load();
  EXPECT_TRUE(loaded.player_sessions.empty());
}

TEST_P(SpillFormatTest, ExtremeDoublesRoundTripBitExact) {
  // NaN payloads, infinities, signed zero and denormals must survive both
  // encodings bit for bit.  Compared via bit patterns — EXPECT_EQ on the
  // values would pass -0.0 == 0.0 and fail NaN == NaN.
  const std::uint64_t patterns[] = {
      0x7FF8000000000000ull,  // quiet NaN
      0x7FF0000000000001ull,  // signaling NaN
      0xFFF8DEADBEEF1234ull,  // negative NaN with payload
      0x7FF0000000000000ull,  // +inf
      0xFFF0000000000000ull,  // -inf
      0x8000000000000000ull,  // -0.0
      0x0000000000000000ull,  // +0.0
      0x0000000000000001ull,  // smallest denormal
      0x000FFFFFFFFFFFFFull,  // largest denormal
      0x0010000000000000ull,  // smallest normal
      0x7FEFFFFFFFFFFFFFull,  // largest finite
  };
  const auto path = file("extreme.vspill");
  SessionRecordGroup g;
  g.session_id = 1;
  for (const std::uint64_t bits : patterns) {
    PlayerChunkRecord pc;
    pc.session_id = 1;
    pc.dfb_ms = std::bit_cast<double>(bits);
    pc.dlb_ms = std::bit_cast<double>(bits);
    g.player_chunks.push_back(pc);
  }
  {
    SpillWriter writer(path, format());
    writer.write(g);
    writer.close();
  }
  SpillReader reader(path);
  const auto read = reader.next();
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->player_chunks.size(), std::size(patterns));
  for (std::size_t i = 0; i < std::size(patterns); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(read->player_chunks[i].dfb_ms),
              patterns[i])
        << "record " << i;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(read->player_chunks[i].dlb_ms),
              patterns[i])
        << "record " << i;
  }
  EXPECT_FALSE(reader.stats().corrupted());
}

INSTANTIATE_TEST_SUITE_P(Formats, SpillFormatTest,
                         ::testing::Values(kSpillVersionV2, kSpillVersionV3),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

/// Restores an environment variable on scope exit.
class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) saved_ = v;
  }
  ~EnvGuard() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST_F(SpillDirTest, V3FilesAreSubstantiallySmallerThanV2) {
  const auto v2 = file("v2.vspill");
  const auto v3 = file("v3.vspill");
  {
    SpillWriter w2(v2, kSpillVersionV2);
    SpillWriter w3(v3, kSpillVersionV3);
    for (std::uint64_t id = 1; id <= 64; ++id) {
      SessionRecordGroup g = full_group(id);
      // Pad to a realistic chunk count so columns dominate the framing.
      for (int i = 1; i < 20; ++i) {
        g.player_chunks.push_back(g.player_chunks.front());
        g.player_chunks.back().chunk_id = static_cast<std::uint32_t>(i + 7);
        g.cdn_chunks.push_back(g.cdn_chunks.front());
        g.tcp_snapshots.push_back(g.tcp_snapshots.front());
      }
      w2.write(g);
      w3.write(g);
    }
    w2.close();
    w3.close();
  }
  const auto size2 = std::filesystem::file_size(v2);
  const auto size3 = std::filesystem::file_size(v3);
  // Repetitive test data compresses far better than real telemetry (the
  // realistic ratio is ~2x, see EXPERIMENTS.md); 2x is a safe floor here.
  EXPECT_LT(size3 * 2, size2) << "v3 " << size3 << " vs v2 " << size2;

  // Same records come back from both files.
  SpillReader r2(v2);
  SpillReader r3(v3);
  EXPECT_EQ(r2.format_version(), kSpillVersionV2);
  EXPECT_EQ(r3.format_version(), kSpillVersionV3);
  for (;;) {
    auto a = r2.next();
    auto b = r3.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    expect_groups_equal(*a, *b);
  }
}

TEST_F(SpillDirTest, EnvironmentSelectsFormatStrictly) {
  EnvGuard guard("VSTREAM_SPILL_FORMAT");
  ::setenv("VSTREAM_SPILL_FORMAT", "2", 1);
  EXPECT_EQ(resolve_spill_format(0), kSpillVersionV2);
  ::setenv("VSTREAM_SPILL_FORMAT", "3", 1);
  EXPECT_EQ(resolve_spill_format(0), kSpillVersionV3);
  ::unsetenv("VSTREAM_SPILL_FORMAT");
  EXPECT_EQ(resolve_spill_format(0), kSpillVersionDefault);
  ::setenv("VSTREAM_SPILL_FORMAT", "1", 1);
  EXPECT_THROW(resolve_spill_format(0), std::runtime_error);
  ::setenv("VSTREAM_SPILL_FORMAT", "banana", 1);
  EXPECT_THROW(resolve_spill_format(0), std::runtime_error);
  // An explicit request bypasses the environment entirely.
  EXPECT_EQ(resolve_spill_format(2), kSpillVersionV2);
  EXPECT_THROW(resolve_spill_format(4), std::runtime_error);
}

TEST_F(SpillDirTest, ResumedWriterKeepsTheFilesFormat) {
  // A run that started as v2 must stay v2 across a crash/resume even when
  // the environment now prefers v3.
  const auto path = file("resume_v2.vspill");
  std::uint64_t committed = 0;
  {
    SpillWriter writer(path, kSpillVersionV2);
    writer.write(full_group(1));
    committed = writer.flush_committed();
  }
  {
    SpillWriter writer(path, committed, 1);
    EXPECT_EQ(writer.format_version(), kSpillVersionV2);
    writer.write(full_group(2));
    writer.close();
  }
  SpillReader reader(path);
  EXPECT_EQ(reader.format_version(), kSpillVersionV2);
  std::vector<std::uint64_t> ids;
  while (auto g = reader.next()) ids.push_back(g->session_id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(SpillDirTest, AsyncAndSyncWritersProduceIdenticalFiles) {
  EnvGuard guard("VSTREAM_SPILL_ASYNC");
  const auto write_with = [&](const char* mode, const char* name) {
    ::setenv("VSTREAM_SPILL_ASYNC", mode, 1);
    const auto path = file(name);
    SpillWriter writer(path, kSpillVersionV3);
    for (std::uint64_t id = 1; id <= 40; ++id) writer.write(full_group(id));
    writer.flush_committed();
    writer.write(full_group(41));
    writer.close();
    return read_all(path);
  };
  const std::string sync_bytes = write_with("0", "sync.vspill");
  const std::string async_bytes = write_with("1", "async.vspill");
  EXPECT_EQ(sync_bytes, async_bytes);
}

TEST_F(SpillDirTest, MmapAndPreadReadersAgree) {
  EnvGuard guard("VSTREAM_SPILL_MMAP");
  const auto path = file("source.vspill");
  {
    SpillWriter writer(path, kSpillVersionV3);
    for (std::uint64_t id = 1; id <= 10; ++id) writer.write(full_group(id));
    writer.close();
  }
  // Tear the tail so the salvage accounting is exercised on both backends.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 21);

  const auto drain = [&](const char* mode) {
    ::setenv("VSTREAM_SPILL_MMAP", mode, 1);
    SpillReader reader(path);
    std::vector<SessionRecordGroup> groups;
    while (auto g = reader.next()) groups.push_back(std::move(*g));
    return std::make_pair(std::move(groups), reader.stats());
  };
  const auto [mmap_groups, mmap_stats] = drain("1");
  const auto [pread_groups, pread_stats] = drain("0");
  ASSERT_EQ(mmap_groups.size(), pread_groups.size());
  for (std::size_t i = 0; i < mmap_groups.size(); ++i) {
    expect_groups_equal(mmap_groups[i], pread_groups[i]);
  }
  EXPECT_EQ(mmap_stats.blocks_ok, pread_stats.blocks_ok);
  EXPECT_EQ(mmap_stats.torn_tail_bytes, pread_stats.torn_tail_bytes);
  EXPECT_EQ(mmap_stats.bytes_salvaged, pread_stats.bytes_salvaged);
  EXPECT_EQ(mmap_stats.logical_bytes, pread_stats.logical_bytes);
}

TEST_F(SpillDirTest, V2LogicalBytesEqualPayloadBytes) {
  // The logical-size model must match the actual v2 encoder, or the
  // compression ratio drifts from reality.
  const auto path = file("logical.vspill");
  {
    SpillWriter writer(path, kSpillVersionV2);
    for (std::uint64_t id = 1; id <= 8; ++id) writer.write(full_group(id));
    writer.close();
  }
  SpillReader reader(path);
  while (reader.next().has_value()) {
  }
  EXPECT_EQ(reader.stats().logical_bytes, reader.stats().bytes_salvaged);
}

}  // namespace
}  // namespace vstream::telemetry
