// CRC32C known-answer tests against the RFC 3720 §B.4 vectors, plus the
// classic "123456789" check value and incremental-extension properties.
// The spill format and checkpoint sidecars both stake their corruption
// detection on this helper, so it is validated against external ground
// truth, not just round trips.
#include "telemetry/crc32c.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace vstream::telemetry {
namespace {

TEST(Crc32cTest, Rfc3720ZeroBlock) {
  std::array<unsigned char, 32> bytes{};
  bytes.fill(0x00);
  EXPECT_EQ(crc32c(bytes.data(), bytes.size()), 0x8A9136AAu);
}

TEST(Crc32cTest, Rfc3720OnesBlock) {
  std::array<unsigned char, 32> bytes{};
  bytes.fill(0xFF);
  EXPECT_EQ(crc32c(bytes.data(), bytes.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, Rfc3720AscendingBlock) {
  std::array<unsigned char, 32> bytes{};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<unsigned char>(i);
  }
  EXPECT_EQ(crc32c(bytes.data(), bytes.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, Rfc3720DescendingBlock) {
  std::array<unsigned char, 32> bytes{};
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<unsigned char>(31 - i);
  }
  EXPECT_EQ(crc32c(bytes.data(), bytes.size()), 0x113FDB5Cu);
}

TEST(Crc32cTest, Rfc3720ScsiReadCommand) {
  const std::array<unsigned char, 48> pdu = {
      0x01, 0xC0, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  //
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  //
      0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,  //
      0x00, 0x00, 0x00, 0x14, 0x00, 0x00, 0x00, 0x18,  //
      0x28, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  //
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  //
  };
  EXPECT_EQ(crc32c(pdu.data(), pdu.size()), 0xD9963A56u);
}

TEST(Crc32cTest, ClassicCheckString) {
  // The standard CRC "check" input: every CRC catalogue lists 0xE3069283
  // for CRC-32C over the ASCII digits 1-9.
  EXPECT_EQ(crc32c(std::string_view("123456789")), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(crc32c(nullptr, 0), 0x00000000u);
}

TEST(Crc32cTest, ExtendMatchesOneShotAtEverySplitPoint) {
  const std::string data = "vstream spill frame payload \x00\x01\xFE test";
  const std::uint32_t whole = crc32c(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t state = kCrc32cInit;
    state = crc32c_extend(state, data.data(), split);
    state = crc32c_extend(state, data.data() + split, data.size() - split);
    EXPECT_EQ(crc32c_finalize(state), whole) << "split=" << split;
  }
}

TEST(Crc32cTest, EveryBitFlipChangesTheChecksum) {
  // Single-bit and single-byte errors must never alias: flip each byte of
  // a buffer and require a different CRC every time.
  std::vector<unsigned char> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<unsigned char>(i * 7 + 3);
  }
  const std::uint32_t clean = crc32c(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= static_cast<unsigned char>(1 << bit);
      EXPECT_NE(crc32c(data.data(), data.size()), clean)
          << "byte " << i << " bit " << bit;
      data[i] ^= static_cast<unsigned char>(1 << bit);
    }
  }
}

}  // namespace
}  // namespace vstream::telemetry
