#include "telemetry/proxy_filter.h"

#include <gtest/gtest.h>

namespace vstream::telemetry {
namespace {

void add_session(Dataset& d, std::uint64_t id, net::IpV4 beacon_ip,
                 net::IpV4 cdn_ip, const std::string& beacon_ua = "Chrome/Windows",
                 const std::string& cdn_ua = "Chrome/Windows") {
  PlayerSessionRecord ps;
  ps.session_id = id;
  ps.client_ip = beacon_ip;
  ps.user_agent = beacon_ua;
  d.player_sessions.push_back(ps);

  CdnSessionRecord cs;
  cs.session_id = id;
  cs.observed_ip = cdn_ip;
  cs.observed_user_agent = cdn_ua;
  d.cdn_sessions.push_back(cs);
}

TEST(ProxyFilterTest, CleanSessionsPass) {
  Dataset d;
  for (std::uint64_t s = 1; s <= 20; ++s) {
    add_session(d, s, net::make_ip(10, 0, 0, static_cast<std::uint8_t>(s)),
                net::make_ip(10, 0, 0, static_cast<std::uint8_t>(s)));
  }
  const ProxyFilterResult r = detect_proxies(d);
  EXPECT_TRUE(r.proxy_sessions.empty());
}

TEST(ProxyFilterTest, IpMismatchDetected) {
  // Rule (i): different client IPs between HTTP requests and beacons.
  Dataset d;
  add_session(d, 1, net::make_ip(10, 0, 0, 1), net::make_ip(198, 18, 0, 1));
  add_session(d, 2, net::make_ip(10, 0, 0, 2), net::make_ip(10, 0, 0, 2));
  const ProxyFilterResult r = detect_proxies(d);
  EXPECT_TRUE(r.is_proxy(1));
  EXPECT_FALSE(r.is_proxy(2));
  EXPECT_EQ(r.mismatch_detections, 1u);
}

TEST(ProxyFilterTest, UserAgentMismatchDetected) {
  Dataset d;
  add_session(d, 1, net::make_ip(10, 0, 0, 1), net::make_ip(10, 0, 0, 1),
              "Chrome/Windows", "ProxyBot/1.0");
  const ProxyFilterResult r = detect_proxies(d);
  EXPECT_TRUE(r.is_proxy(1));
}

TEST(ProxyFilterTest, VolumeRuleCatchesTransparentMegaProxy) {
  // Rule (ii): one IP in implausibly many sessions, even though beacon and
  // HTTP views agree (NAT-style transparency).
  Dataset d;
  const net::IpV4 shared = net::make_ip(198, 19, 0, 10);
  for (std::uint64_t s = 1; s <= 60; ++s) add_session(d, s, shared, shared);
  ProxyFilterConfig config;
  config.max_sessions_per_ip = 50;
  const ProxyFilterResult r = detect_proxies(d, config);
  EXPECT_EQ(r.proxy_sessions.size(), 60u);
  EXPECT_EQ(r.volume_detections, 60u);
  EXPECT_EQ(r.mismatch_detections, 0u);
}

TEST(ProxyFilterTest, VolumeThresholdBoundary) {
  Dataset d;
  const net::IpV4 shared = net::make_ip(198, 19, 0, 20);
  for (std::uint64_t s = 1; s <= 10; ++s) add_session(d, s, shared, shared);
  ProxyFilterConfig config;
  config.max_sessions_per_ip = 10;  // exactly at the threshold: allowed
  EXPECT_TRUE(detect_proxies(d, config).proxy_sessions.empty());
  config.max_sessions_per_ip = 9;
  EXPECT_EQ(detect_proxies(d, config).proxy_sessions.size(), 10u);
}

TEST(ProxyFilterTest, MissingBeaconFallsBackToVolumeRule) {
  Dataset d;
  CdnSessionRecord cs;
  cs.session_id = 1;
  cs.observed_ip = net::make_ip(10, 0, 0, 1);
  d.cdn_sessions.push_back(cs);  // no matching player session
  const ProxyFilterResult r = detect_proxies(d);
  EXPECT_FALSE(r.is_proxy(1));  // single session, low volume: kept
}

TEST(ProxyFilterTest, MixedDataset) {
  Dataset d;
  // 30 clean, 5 mismatch-proxied, 55 through one transparent proxy.
  for (std::uint64_t s = 1; s <= 30; ++s) {
    add_session(d, s, net::make_ip(10, 1, 0, static_cast<std::uint8_t>(s)),
                net::make_ip(10, 1, 0, static_cast<std::uint8_t>(s)));
  }
  for (std::uint64_t s = 31; s <= 35; ++s) {
    add_session(d, s, net::make_ip(10, 2, 0, static_cast<std::uint8_t>(s)),
                net::make_ip(198, 18, 5, 5));
  }
  const net::IpV4 mega = net::make_ip(198, 19, 0, 10);
  for (std::uint64_t s = 36; s <= 90; ++s) add_session(d, s, mega, mega);

  ProxyFilterConfig config;
  config.max_sessions_per_ip = 50;
  const ProxyFilterResult r = detect_proxies(d, config);
  EXPECT_EQ(r.proxy_sessions.size(), 60u);
  EXPECT_EQ(r.mismatch_detections, 5u);
  EXPECT_EQ(r.volume_detections, 55u);
  for (std::uint64_t s = 1; s <= 30; ++s) EXPECT_FALSE(r.is_proxy(s));
}

}  // namespace
}  // namespace vstream::telemetry
