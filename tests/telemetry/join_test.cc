#include "telemetry/join.h"

#include <gtest/gtest.h>

namespace vstream::telemetry {
namespace {

/// Build a minimal two-session dataset by hand.
Dataset tiny_dataset() {
  Dataset d;
  for (std::uint64_t s : {1ull, 2ull}) {
    PlayerSessionRecord ps;
    ps.session_id = s;
    ps.client_ip = net::make_ip(10, 0, static_cast<std::uint8_t>(s), 5);
    ps.user_agent = "Chrome/Windows";
    ps.start_time_ms = 1'000.0 * static_cast<double>(s);
    d.player_sessions.push_back(ps);

    CdnSessionRecord cs;
    cs.session_id = s;
    cs.observed_ip = ps.client_ip;
    cs.observed_user_agent = ps.user_agent;
    cs.pop = 0;
    cs.org = "TestNet";
    d.cdn_sessions.push_back(cs);

    for (std::uint32_t c = 0; c < 3; ++c) {
      PlayerChunkRecord pc;
      pc.session_id = s;
      pc.chunk_id = c;
      pc.request_sent_ms = c * 2'000.0;
      pc.dfb_ms = 100.0;
      pc.dlb_ms = 900.0;
      pc.bitrate_kbps = 1'500;
      pc.rebuffer_ms = c == 1 ? 500.0 : 0.0;
      d.player_chunks.push_back(pc);

      CdnChunkRecord cc;
      cc.session_id = s;
      cc.chunk_id = c;
      cc.dwait_ms = 0.3;
      cc.dopen_ms = 0.5;
      cc.dread_ms = c == 0 ? 80.0 : 1.5;
      cc.dbe_ms = c == 0 ? 65.0 : 0.0;
      cc.cache_level = c == 0 ? cdn::CacheLevel::kMiss : cdn::CacheLevel::kRam;
      cc.chunk_bytes = 1'125'000;
      d.cdn_chunks.push_back(cc);

      TcpSnapshotRecord snap;
      snap.session_id = s;
      snap.chunk_id = c;
      snap.at_ms = c * 2'000.0 + 500.0;
      snap.info.srtt_ms = 50.0;
      snap.info.total_retrans = 2 * (c + 1);  // cumulative
      snap.info.segments_out = 100 * (c + 1); // cumulative
      d.tcp_snapshots.push_back(snap);
    }
  }
  return d;
}

TEST(JoinTest, JoinsBothSidesBySessionAndChunk) {
  const Dataset d = tiny_dataset();
  const JoinedDataset joined = JoinedDataset::build(d);
  ASSERT_EQ(joined.sessions().size(), 2u);
  EXPECT_EQ(joined.chunk_count(), 6u);
  for (const JoinedSession& s : joined.sessions()) {
    ASSERT_EQ(s.chunks.size(), 3u);
    for (std::uint32_t c = 0; c < 3; ++c) {
      const JoinedChunk& chunk = s.chunks[c];
      ASSERT_NE(chunk.player, nullptr);
      ASSERT_NE(chunk.cdn, nullptr);
      EXPECT_EQ(chunk.player->chunk_id, c);
      EXPECT_EQ(chunk.cdn->chunk_id, c);
      ASSERT_NE(chunk.last_snapshot, nullptr);
      EXPECT_EQ(chunk.last_snapshot->chunk_id, c);
    }
  }
}

TEST(JoinTest, CounterDeltasComputedPerChunk) {
  const Dataset d = tiny_dataset();
  const JoinedDataset joined = JoinedDataset::build(d);
  const JoinedSession& s = joined.sessions()[0];
  // Cumulative 2,4,6 -> per-chunk 2,2,2; segments 100 each.
  for (const JoinedChunk& chunk : s.chunks) {
    EXPECT_EQ(chunk.retransmissions, 2u);
    EXPECT_EQ(chunk.segments, 100u);
    EXPECT_NEAR(chunk.retx_rate(), 0.02, 1e-9);
  }
  EXPECT_EQ(s.total_retransmissions(), 6u);
  EXPECT_EQ(s.total_segments(), 300u);
  EXPECT_NEAR(s.retx_rate(), 0.02, 1e-9);
  EXPECT_TRUE(s.has_loss());
}

TEST(JoinTest, SessionAggregates) {
  const Dataset d = tiny_dataset();
  const JoinedDataset joined = JoinedDataset::build(d);
  const JoinedSession& s = joined.sessions()[0];
  EXPECT_NEAR(s.total_rebuffer_ms(), 500.0, 1e-9);
  EXPECT_NEAR(s.avg_bitrate_kbps(), 1'500.0, 1e-9);
  // Last chunk: request at 4000 + 100 + 900 = 5000 ms.
  EXPECT_NEAR(s.duration_ms(), 5'000.0, 1e-9);
  EXPECT_NEAR(s.rebuffer_rate_percent(), 10.0, 1e-9);
}

TEST(JoinTest, DropsSessionsMissingEitherSide) {
  Dataset d = tiny_dataset();
  d.cdn_sessions.pop_back();  // session 2 loses its CDN record
  const JoinedDataset joined = JoinedDataset::build(d);
  EXPECT_EQ(joined.sessions().size(), 1u);
  EXPECT_EQ(joined.dropped_incomplete(), 1u);
}

TEST(JoinTest, DropsProxySessions) {
  const Dataset d = tiny_dataset();
  ProxyFilterResult proxies;
  proxies.proxy_sessions.insert(1);
  const JoinedDataset joined = JoinedDataset::build(d, &proxies);
  ASSERT_EQ(joined.sessions().size(), 1u);
  EXPECT_EQ(joined.sessions()[0].session_id, 2u);
  EXPECT_EQ(joined.dropped_as_proxy(), 1u);
}

TEST(JoinTest, ChunksSortedByChunkId) {
  Dataset d = tiny_dataset();
  // Shuffle the player chunk order.
  std::swap(d.player_chunks[0], d.player_chunks[2]);
  const JoinedDataset joined = JoinedDataset::build(d);
  for (const JoinedSession& s : joined.sessions()) {
    for (std::size_t i = 1; i < s.chunks.size(); ++i) {
      EXPECT_LT(s.chunks[i - 1].player->chunk_id, s.chunks[i].player->chunk_id);
    }
  }
}

TEST(JoinTest, MissingCdnChunkLeavesNullSide) {
  Dataset d = tiny_dataset();
  d.cdn_chunks.erase(d.cdn_chunks.begin());  // session 1, chunk 0
  const JoinedDataset joined = JoinedDataset::build(d);
  const JoinedSession& s = joined.sessions()[0];
  ASSERT_EQ(s.chunks.size(), 3u);
  EXPECT_EQ(s.chunks[0].cdn, nullptr);
  EXPECT_NE(s.chunks[1].cdn, nullptr);
}

TEST(JoinTest, EmptyDatasetYieldsEmptyJoin) {
  const Dataset d;
  const JoinedDataset joined = JoinedDataset::build(d);
  EXPECT_TRUE(joined.sessions().empty());
  EXPECT_EQ(joined.chunk_count(), 0u);
}

TEST(JoinTest, RecordHelpers) {
  CdnChunkRecord cc;
  cc.dwait_ms = 1.0;
  cc.dopen_ms = 2.0;
  cc.dread_ms = 75.0;
  cc.dbe_ms = 65.0;
  cc.cache_level = cdn::CacheLevel::kMiss;
  EXPECT_FALSE(cc.cache_hit());
  EXPECT_NEAR(cc.server_total_ms(), 78.0, 1e-9);
  EXPECT_NEAR(cc.dcdn_ms(), 13.0, 1e-9);

  PlayerChunkRecord pc;
  pc.dfb_ms = 1'000.0;
  pc.dlb_ms = 2'000.0;
  EXPECT_NEAR(pc.download_rate(6.0), 2.0, 1e-9);
}

}  // namespace
}  // namespace vstream::telemetry
