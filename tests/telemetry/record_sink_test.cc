#include "telemetry/record_sink.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "telemetry/collector.h"
#include "telemetry/record_group.h"

namespace vstream::telemetry {
namespace {

net::RoundSample round_at(sim::Ms at, double srtt = 50.0) {
  net::RoundSample r;
  r.at_ms = at;
  r.info.srtt_ms = srtt;
  return r;
}

PlayerChunkRecord chunk(std::uint64_t session, std::uint32_t id) {
  PlayerChunkRecord r;
  r.session_id = session;
  r.chunk_id = id;
  return r;
}

TEST(MemorySinkTest, AppendsInEmissionOrder) {
  MemorySink sink;
  sink.record(chunk(2, 0));
  sink.record(chunk(1, 0));
  sink.record(chunk(2, 1));
  PlayerSessionRecord ps;
  ps.session_id = 2;
  sink.record(ps);
  sink.session_complete(2);
  sink.session_complete(1);
  sink.finish();
  ASSERT_EQ(sink.data().player_chunks.size(), 3u);
  EXPECT_EQ(sink.data().player_chunks[0].session_id, 2u);
  EXPECT_EQ(sink.data().player_chunks[1].session_id, 1u);
  EXPECT_EQ(sink.data().player_sessions.size(), 1u);
}

TEST(MemorySinkTest, TakeLeavesSinkEmptyAndReusable) {
  MemorySink sink;
  sink.record(chunk(1, 0));
  const Dataset first = sink.take();
  EXPECT_EQ(first.player_chunks.size(), 1u);
  EXPECT_TRUE(sink.data().player_chunks.empty());
  sink.record(chunk(2, 0));
  const Dataset second = sink.take();
  ASSERT_EQ(second.player_chunks.size(), 1u);
  EXPECT_EQ(second.player_chunks[0].session_id, 2u);
}

TEST(CollectorSinkTest, RoutesEveryStreamToSink) {
  MemorySink sink;
  Collector collector(500.0, &sink);
  PlayerSessionRecord ps;
  ps.session_id = 1;
  collector.record(ps);
  CdnSessionRecord cs;
  cs.session_id = 1;
  collector.record(cs);
  collector.record(chunk(1, 0));
  CdnChunkRecord cc;
  cc.session_id = 1;
  collector.record(cc);
  TcpSnapshotRecord snap;
  snap.session_id = 1;
  collector.record(snap);
  collector.sample_transfer(1, 1, 0.0, {round_at(40.0)});

  // Everything must land in the sink, nothing in the collector.
  EXPECT_TRUE(collector.data().player_chunks.empty());
  EXPECT_TRUE(collector.data().tcp_snapshots.empty());
  EXPECT_EQ(sink.data().player_sessions.size(), 1u);
  EXPECT_EQ(sink.data().cdn_sessions.size(), 1u);
  EXPECT_EQ(sink.data().player_chunks.size(), 1u);
  EXPECT_EQ(sink.data().cdn_chunks.size(), 1u);
  // The explicit snapshot plus sample_transfer's per-chunk fallback sample.
  EXPECT_EQ(sink.data().tcp_snapshots.size(), 2u);
}

TEST(CollectorSinkTest, SinkAndSinklessRunsMatch) {
  const auto drive = [](Collector& collector) {
    for (std::uint64_t s : {1ull, 2ull}) {
      PlayerSessionRecord ps;
      ps.session_id = s;
      collector.record(ps);
      collector.sample_transfer(s, 0, 0.0, {round_at(300.0)});
      collector.sample_transfer(s, 1, 300.0,
                                {round_at(150.0), round_at(300.0)});
      collector.session_complete(s);
    }
  };
  Collector direct(500.0);
  drive(direct);
  MemorySink sink;
  Collector sinked(500.0, &sink);
  drive(sinked);

  const Dataset& a = direct.data();
  const Dataset& b = sink.data();
  ASSERT_EQ(a.tcp_snapshots.size(), b.tcp_snapshots.size());
  for (std::size_t i = 0; i < a.tcp_snapshots.size(); ++i) {
    EXPECT_EQ(a.tcp_snapshots[i].session_id, b.tcp_snapshots[i].session_id);
    EXPECT_EQ(a.tcp_snapshots[i].chunk_id, b.tcp_snapshots[i].chunk_id);
    EXPECT_DOUBLE_EQ(a.tcp_snapshots[i].at_ms, b.tcp_snapshots[i].at_ms);
  }
}

TEST(CollectorSinkTest, SessionCompleteForwardedOncePerSession) {
  class CountingSink final : public RecordSink {
   public:
    void record(PlayerSessionRecord) override {}
    void record(CdnSessionRecord) override {}
    void record(PlayerChunkRecord) override {}
    void record(CdnChunkRecord) override {}
    void record(TcpSnapshotRecord) override {}
    void session_complete(std::uint64_t id) override {
      completed.push_back(id);
    }
    void finish() override { finished = true; }
    std::vector<std::uint64_t> completed;
    bool finished = false;
  };
  CountingSink sink;
  Collector collector(500.0, &sink);
  collector.sample_transfer(7, 0, 0.0, {round_at(40.0)});
  collector.session_complete(7);
  EXPECT_EQ(sink.completed, std::vector<std::uint64_t>{7});
  EXPECT_FALSE(sink.finished);
}

TEST(DatasetGroupStreamTest, GroupsCanonicalDatasetBySession) {
  Dataset d;
  for (std::uint64_t s : {3ull, 5ull, 9ull}) {
    PlayerSessionRecord ps;
    ps.session_id = s;
    d.player_sessions.push_back(ps);
    for (std::uint32_t c = 0; c < 2; ++c) {
      d.player_chunks.push_back(chunk(s, c));
    }
  }
  DatasetGroupStream stream(d);
  std::vector<std::uint64_t> seen;
  while (auto group = stream.next()) {
    seen.push_back(group->session_id);
    EXPECT_EQ(group->player_sessions.size(), 1u);
    EXPECT_EQ(group->player_chunks.size(), 2u);
    EXPECT_TRUE(group->cdn_sessions.empty());
  }
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{3, 5, 9}));
}

TEST(DatasetGroupStreamTest, SessionsPresentInOnlySomeStreams) {
  // Session 1 has only a CDN-side chunk (an orphan); session 2 only a
  // player session record.  Both must still surface as groups.
  Dataset d;
  CdnChunkRecord cc;
  cc.session_id = 1;
  d.cdn_chunks.push_back(cc);
  PlayerSessionRecord ps;
  ps.session_id = 2;
  d.player_sessions.push_back(ps);

  DatasetGroupStream stream(d);
  auto first = stream.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->session_id, 1u);
  EXPECT_EQ(first->cdn_chunks.size(), 1u);
  EXPECT_TRUE(first->player_sessions.empty());
  auto second = stream.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->session_id, 2u);
  EXPECT_FALSE(stream.next().has_value());
}

TEST(SessionRecordGroupTest, AppendConcatenatesInSinkOrder) {
  SessionRecordGroup a;
  a.session_id = 4;
  a.player_chunks.push_back(chunk(4, 0));
  SessionRecordGroup b;
  b.session_id = 4;
  b.player_chunks.push_back(chunk(4, 1));
  a.append(std::move(b));
  ASSERT_EQ(a.player_chunks.size(), 2u);
  EXPECT_EQ(a.player_chunks[0].chunk_id, 0u);
  EXPECT_EQ(a.player_chunks[1].chunk_id, 1u);
  EXPECT_EQ(a.record_count(), 2u);
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace vstream::telemetry
