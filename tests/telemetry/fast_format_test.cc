// The fast CSV formatter must be byte-identical to what the writers used
// before: `ostream << double` at default precision (printf %.6g),
// `ostream << integer`, and net::format_ip.  Byte-identity is load-bearing
// — the determinism suite compares whole exported files.
#include "telemetry/fast_format.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <random>
#include <sstream>
#include <string>

#include "net/prefix.h"

namespace vstream::telemetry {
namespace {

std::string via_buffer_double(double v) {
  std::ostringstream out;
  {
    WriteBuffer buf(out);
    buf.append_double_g6(v);
  }
  return out.str();
}

std::string via_ostream(double v) {
  std::ostringstream out;
  out << v;  // default precision 6 — the reference the writers used
  return out.str();
}

void expect_double_matches(double v) {
  EXPECT_EQ(via_buffer_double(v), via_ostream(v)) << "value bits differ for "
                                                  << std::hexfloat << v;
  char ref[64];
  std::snprintf(ref, sizeof(ref), "%.6g", v);
  EXPECT_EQ(via_buffer_double(v), std::string(ref))
      << "vs printf for " << std::hexfloat << v;
}

TEST(FastFormatTest, DoubleMatchesOstreamOnSpecials) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0,
                          0.5,
                          123.456,
                          -123.456,
                          999999.0,
                          -999999.0,
                          1000000.0,
                          999999.5,
                          1e-4,
                          9.9999e-5,
                          1e6,
                          1e7,
                          1.5e300,
                          5e-324,
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          1234.5,
                          0.1,
                          0.125,
                          3.0 / 7.0,
                          100000.5,
                          99999.96,
                          500.0,
                          1536.25};
  for (const double v : cases) expect_double_matches(v);
}

TEST(FastFormatTest, DoubleMatchesOstreamOnRandomTelemetryRanges) {
  std::mt19937_64 gen(20160516);
  // The ranges telemetry actually emits: millisecond timestamps, rates,
  // distances, fps — plus raw uniform magnitudes for the fallback path.
  const double scales[] = {1.0, 10.0, 1e3, 1e5, 1e7, 1e-3};
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (const double scale : scales) {
    for (int i = 0; i < 20000; ++i) {
      const double v = unit(gen) * scale;
      expect_double_matches(v);
      expect_double_matches(-v);
      // Quantized values (the common case for simulated clocks).
      expect_double_matches(std::round(v * 16.0) / 16.0);
      expect_double_matches(std::round(v * 1000.0) / 1000.0);
    }
  }
}

TEST(FastFormatTest, DoubleMatchesOstreamOnRandomBitPatterns) {
  std::mt19937_64 gen(42);
  int tested = 0;
  while (tested < 50000) {
    double v;
    const std::uint64_t bits = gen();
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&v, &bits, sizeof(v));
    if (std::isnan(v)) continue;  // NaN text is platform-defined either way
    expect_double_matches(v);
    ++tested;
  }
}

TEST(FastFormatTest, U64MatchesToString) {
  std::ostringstream out;
  {
    WriteBuffer buf(out);
    std::mt19937_64 gen(7);
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t v = gen() >> (gen() % 64);
      buf.append_u64(v);
      buf.append('\n');
    }
    buf.append_u64(0);
    buf.append('\n');
    buf.append_u64(std::numeric_limits<std::uint64_t>::max());
  }
  std::istringstream in(out.str());
  std::mt19937_64 gen(7);
  std::string line;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, std::to_string(gen() >> (gen() % 64)));
  }
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "0");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "18446744073709551615");
}

TEST(FastFormatTest, IpMatchesFormatIp) {
  std::mt19937_64 gen(11);
  for (int i = 0; i < 2000; ++i) {
    const auto ip = static_cast<std::uint32_t>(gen());
    std::ostringstream out;
    {
      WriteBuffer buf(out);
      buf.append_ip(ip);
    }
    EXPECT_EQ(out.str(), net::format_ip(ip));
  }
  for (const std::uint32_t ip : {0u, 0xFFFFFFFFu, 0x01020304u, 0x7F000001u}) {
    std::ostringstream out;
    {
      WriteBuffer buf(out);
      buf.append_ip(ip);
    }
    EXPECT_EQ(out.str(), net::format_ip(ip));
  }
}

TEST(FastFormatTest, SmallBufferFlushesKeepBytesInOrder) {
  std::ostringstream out;
  std::string expected;
  {
    WriteBuffer buf(out, /*capacity=*/1);  // clamped to the minimum; forces
                                           // a flush on nearly every append
    for (int i = 0; i < 500; ++i) {
      buf.append_u64(static_cast<std::uint64_t>(i) * 977);
      buf.append(',');
      buf.append("field");
      buf.append('\n');
      expected += std::to_string(i * 977) + ",field\n";
    }
  }
  EXPECT_EQ(out.str(), expected);
}

}  // namespace
}  // namespace vstream::telemetry
