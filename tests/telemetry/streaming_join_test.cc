#include "telemetry/streaming_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "telemetry/join.h"
#include "telemetry/record_group.h"
#include "telemetry/record_sink.h"

namespace vstream::telemetry {
namespace {

/// Same synthetic two-session dataset as join_test.cc, so the streaming
/// joiner can be compared against the batch join on familiar ground.
Dataset tiny_dataset() {
  Dataset d;
  for (std::uint64_t s : {1ull, 2ull}) {
    PlayerSessionRecord ps;
    ps.session_id = s;
    ps.user_agent = "Chrome/Windows";
    ps.start_time_ms = 1'000.0 * static_cast<double>(s);
    d.player_sessions.push_back(ps);

    CdnSessionRecord cs;
    cs.session_id = s;
    cs.org = "TestNet";
    d.cdn_sessions.push_back(cs);

    for (std::uint32_t c = 0; c < 3; ++c) {
      PlayerChunkRecord pc;
      pc.session_id = s;
      pc.chunk_id = c;
      pc.request_sent_ms = c * 2'000.0;
      pc.dfb_ms = 100.0;
      pc.dlb_ms = 900.0;
      pc.bitrate_kbps = 1'500;
      pc.rebuffer_ms = c == 1 ? 500.0 : 0.0;
      d.player_chunks.push_back(pc);

      CdnChunkRecord cc;
      cc.session_id = s;
      cc.chunk_id = c;
      cc.dread_ms = 1.5;
      cc.cache_level = cdn::CacheLevel::kRam;
      d.cdn_chunks.push_back(cc);

      TcpSnapshotRecord snap;
      snap.session_id = s;
      snap.chunk_id = c;
      snap.at_ms = c * 2'000.0 + 500.0;
      snap.info.total_retrans = 2 * (c + 1);
      snap.info.segments_out = 100 * (c + 1);
      d.tcp_snapshots.push_back(snap);
    }
  }
  return d;
}

/// Feed every group of a canonical dataset through a StreamingJoiner.
struct StreamResult {
  std::vector<std::uint64_t> joined_ids;
  std::vector<std::size_t> chunk_counts;
  std::size_t joined = 0, proxied = 0, incomplete = 0;
};

StreamResult stream_join(const Dataset& d,
                         const ProxyFilterResult* proxies = nullptr) {
  StreamResult result;
  StreamingJoiner joiner(proxies);
  DatasetGroupStream stream(d);
  while (auto group = stream.next()) {
    if (const auto session = joiner.join(*group)) {
      result.joined_ids.push_back(session->session_id);
      result.chunk_counts.push_back(session->chunks.size());
    }
  }
  result.joined = joiner.sessions_joined();
  result.proxied = joiner.dropped_as_proxy();
  result.incomplete = joiner.dropped_incomplete();
  return result;
}

TEST(StreamingJoinTest, MatchesBatchJoinOnCleanDataset) {
  const Dataset d = tiny_dataset();
  const JoinedDataset batch = JoinedDataset::build(d);
  const StreamResult streamed = stream_join(d);

  ASSERT_EQ(streamed.joined, batch.sessions().size());
  for (std::size_t i = 0; i < batch.sessions().size(); ++i) {
    EXPECT_EQ(streamed.joined_ids[i], batch.sessions()[i].session_id);
    EXPECT_EQ(streamed.chunk_counts[i], batch.sessions()[i].chunks.size());
  }
  EXPECT_EQ(streamed.incomplete, batch.dropped_incomplete());
  EXPECT_EQ(streamed.proxied, batch.dropped_as_proxy());
}

TEST(StreamingJoinTest, JoinedSessionMatchesBatchAggregates) {
  const Dataset d = tiny_dataset();
  const JoinedDataset batch = JoinedDataset::build(d);
  StreamingJoiner joiner;
  DatasetGroupStream stream(d);
  std::size_t i = 0;
  while (auto group = stream.next()) {
    const auto session = joiner.join(*group);
    ASSERT_TRUE(session.has_value());
    const JoinedSession& ref = batch.sessions()[i++];
    EXPECT_EQ(session->total_retransmissions(), ref.total_retransmissions());
    EXPECT_EQ(session->total_segments(), ref.total_segments());
    EXPECT_DOUBLE_EQ(session->total_rebuffer_ms(), ref.total_rebuffer_ms());
    EXPECT_DOUBLE_EQ(session->duration_ms(), ref.duration_ms());
    EXPECT_DOUBLE_EQ(session->avg_bitrate_kbps(), ref.avg_bitrate_kbps());
    // Per-chunk snapshot attachment and counter deltas line up too.
    ASSERT_EQ(session->chunks.size(), ref.chunks.size());
    for (std::size_t c = 0; c < ref.chunks.size(); ++c) {
      EXPECT_EQ(session->chunks[c].retransmissions,
                ref.chunks[c].retransmissions);
      EXPECT_EQ(session->chunks[c].segments, ref.chunks[c].segments);
      ASSERT_NE(session->chunks[c].last_snapshot, nullptr);
      EXPECT_DOUBLE_EQ(session->chunks[c].last_snapshot->at_ms,
                       ref.chunks[c].last_snapshot->at_ms);
    }
  }
  EXPECT_EQ(i, batch.sessions().size());
}

TEST(StreamingJoinTest, DropsProxySessionsLikeBatch) {
  const Dataset d = tiny_dataset();
  ProxyFilterResult proxies;
  proxies.proxy_sessions.insert(1);
  const JoinedDataset batch = JoinedDataset::build(d, &proxies);
  const StreamResult streamed = stream_join(d, &proxies);
  EXPECT_EQ(streamed.joined, 1u);
  EXPECT_EQ(streamed.proxied, batch.dropped_as_proxy());
  EXPECT_EQ(streamed.joined_ids, (std::vector<std::uint64_t>{2}));
}

TEST(StreamingJoinTest, DropsIncompleteSessionsLikeBatch) {
  Dataset d = tiny_dataset();
  d.cdn_sessions.pop_back();  // session 2 loses its CDN side
  const JoinedDataset batch = JoinedDataset::build(d);
  const StreamResult streamed = stream_join(d);
  EXPECT_EQ(streamed.joined, batch.sessions().size());
  EXPECT_EQ(streamed.incomplete, 1u);
  EXPECT_EQ(streamed.incomplete, batch.dropped_incomplete());
}

TEST(StreamingJoinTest, OrphanCdnRecordsIgnoredSilentlyLikeBatch) {
  // A session with only chunk-level records (no session record on either
  // side) never enters the batch join's session table: not joined, not
  // counted.  The streaming joiner must mirror that.
  Dataset d = tiny_dataset();
  CdnChunkRecord orphan;
  orphan.session_id = 99;
  orphan.chunk_id = 0;
  d.cdn_chunks.push_back(orphan);
  TcpSnapshotRecord orphan_snap;
  orphan_snap.session_id = 99;
  d.tcp_snapshots.push_back(orphan_snap);

  const JoinedDataset batch = JoinedDataset::build(d);
  const StreamResult streamed = stream_join(d);
  EXPECT_EQ(streamed.joined, batch.sessions().size());
  EXPECT_EQ(streamed.incomplete, batch.dropped_incomplete());
  for (const std::uint64_t id : streamed.joined_ids) EXPECT_NE(id, 99u);
}

TEST(StreamingJoinTest, DuplicateCdnChunkFirstWinsLikeBatch) {
  Dataset d = tiny_dataset();
  // A duplicate (session 1, chunk 0) CDN record with a different payload;
  // the batch join's emplace keeps the first occurrence.
  CdnChunkRecord dup;
  dup.session_id = 1;
  dup.chunk_id = 0;
  dup.dread_ms = 999.0;
  d.cdn_chunks.push_back(dup);
  // Re-sort into canonical order (session id), duplicate after the original
  // — matching what the engine's stable merge would produce.
  std::stable_sort(d.cdn_chunks.begin(), d.cdn_chunks.end(),
                   [](const CdnChunkRecord& a, const CdnChunkRecord& b) {
                     return a.session_id < b.session_id;
                   });

  const JoinedDataset batch = JoinedDataset::build(d);
  StreamingJoiner joiner;
  DatasetGroupStream stream(d);
  auto group = stream.next();
  ASSERT_TRUE(group.has_value());
  const auto session = joiner.join(*group);
  ASSERT_TRUE(session.has_value());
  ASSERT_FALSE(session->chunks.empty());
  ASSERT_NE(session->chunks[0].cdn, nullptr);
  EXPECT_DOUBLE_EQ(session->chunks[0].cdn->dread_ms, 1.5);
  EXPECT_DOUBLE_EQ(batch.sessions()[0].chunks[0].cdn->dread_ms, 1.5);
}

TEST(StreamingJoinTest, DuplicateSessionRecordLastWinsLikeBatch) {
  Dataset d = tiny_dataset();
  PlayerSessionRecord dup;
  dup.session_id = 1;
  dup.user_agent = "Override/UA";
  d.player_sessions.push_back(dup);
  std::stable_sort(d.player_sessions.begin(), d.player_sessions.end(),
                   [](const PlayerSessionRecord& a,
                      const PlayerSessionRecord& b) {
                     return a.session_id < b.session_id;
                   });

  const JoinedDataset batch = JoinedDataset::build(d);
  StreamingJoiner joiner;
  DatasetGroupStream stream(d);
  auto group = stream.next();
  ASSERT_TRUE(group.has_value());
  const auto session = joiner.join(*group);
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(session->player->user_agent, "Override/UA");
  EXPECT_EQ(batch.sessions()[0].player->user_agent, "Override/UA");
}

}  // namespace
}  // namespace vstream::telemetry
