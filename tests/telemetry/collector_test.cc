#include "telemetry/collector.h"

#include <gtest/gtest.h>

namespace vstream::telemetry {
namespace {

net::RoundSample round_at(sim::Ms at, double srtt = 50.0,
                          std::uint64_t retrans = 0) {
  net::RoundSample r;
  r.at_ms = at;
  r.info.srtt_ms = srtt;
  r.info.total_retrans = retrans;
  return r;
}

TEST(CollectorTest, RecordsAllStreams) {
  Collector collector;
  PlayerSessionRecord ps;
  ps.session_id = 1;
  collector.record(ps);
  CdnSessionRecord cs;
  cs.session_id = 1;
  collector.record(cs);
  PlayerChunkRecord pc;
  pc.session_id = 1;
  collector.record(pc);
  CdnChunkRecord cc;
  cc.session_id = 1;
  collector.record(cc);
  TcpSnapshotRecord snap;
  snap.session_id = 1;
  collector.record(snap);
  const Dataset& d = collector.data();
  EXPECT_EQ(d.player_sessions.size(), 1u);
  EXPECT_EQ(d.cdn_sessions.size(), 1u);
  EXPECT_EQ(d.player_chunks.size(), 1u);
  EXPECT_EQ(d.cdn_chunks.size(), 1u);
  EXPECT_EQ(d.tcp_snapshots.size(), 1u);
}

TEST(CollectorTest, AtLeastOneSnapshotPerChunk) {
  // §2.1: "we snapshot TCP variables ... at least once per-chunk".
  Collector collector(500.0);
  // A 40 ms transfer never crosses a 500 ms boundary.
  collector.sample_transfer(7, 0, 0.0, {round_at(40.0)});
  ASSERT_EQ(collector.data().tcp_snapshots.size(), 1u);
  EXPECT_EQ(collector.data().tcp_snapshots[0].chunk_id, 0u);
  EXPECT_DOUBLE_EQ(collector.data().tcp_snapshots[0].at_ms, 40.0);
}

TEST(CollectorTest, SamplesEvery500MsWithinLongTransfer) {
  Collector collector(500.0);
  std::vector<net::RoundSample> rounds;
  for (int i = 1; i <= 30; ++i) rounds.push_back(round_at(i * 100.0));
  collector.sample_transfer(7, 0, 0.0, rounds);  // 3 s transfer
  // Boundaries at 500, 1000, ..., 3000 -> 6 samples.
  EXPECT_EQ(collector.data().tcp_snapshots.size(), 6u);
}

TEST(CollectorTest, CadenceSpansChunksOfSameSession) {
  Collector collector(500.0);
  // Chunk 0: 300 ms (no boundary), chunk 1 starts at 300 and runs 300 ms,
  // crossing the 500 ms session boundary.
  collector.sample_transfer(7, 0, 0.0, {round_at(300.0)});
  collector.sample_transfer(7, 1, 300.0, {round_at(150.0), round_at(300.0)});
  const auto& snaps = collector.data().tcp_snapshots;
  // chunk 0 fallback sample + chunk 1 boundary sample.
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].chunk_id, 0u);
  EXPECT_EQ(snaps[1].chunk_id, 1u);
  EXPECT_DOUBLE_EQ(snaps[1].at_ms, 600.0);
}

TEST(CollectorTest, NewSessionResetsCadence) {
  Collector collector(500.0);
  collector.sample_transfer(7, 0, 0.0, {round_at(300.0)});
  collector.sample_transfer(8, 0, 0.0, {round_at(300.0)});
  // Both sessions get their per-chunk fallback sample; neither crossed its
  // own 500 ms boundary.
  EXPECT_EQ(collector.data().tcp_snapshots.size(), 2u);
}

TEST(CollectorTest, EmptyRoundsIgnored) {
  Collector collector;
  collector.sample_transfer(7, 0, 0.0, {});
  EXPECT_TRUE(collector.data().tcp_snapshots.empty());
}

TEST(CollectorTest, TakeMovesData) {
  Collector collector;
  PlayerChunkRecord moved;
  moved.session_id = 1;
  collector.record(moved);
  const Dataset taken = collector.take();
  EXPECT_EQ(taken.player_chunks.size(), 1u);
}

TEST(CollectorTest, TakeResetsSamplingClocks) {
  // Regression: take() used to clear only the record vectors, leaving each
  // session's next-sample clock where the previous run advanced it.  A
  // reused collector then resumed mid-cadence and missed boundary samples.
  Collector reused(500.0);
  // Advance session 7's clock past 500 (boundary sample at 600).
  reused.sample_transfer(7, 0, 0.0, {round_at(300.0), round_at(600.0)});
  (void)reused.take();

  Collector fresh(500.0);
  // Same post-take sequence on both: boundaries at 550 and 1'100 only
  // fire if the clock restarted from 500.
  const std::vector<net::RoundSample> rounds = {round_at(550.0),
                                                round_at(1'100.0)};
  reused.sample_transfer(7, 0, 0.0, rounds);
  fresh.sample_transfer(7, 0, 0.0, rounds);

  const auto& a = reused.data().tcp_snapshots;
  const auto& b = fresh.data().tcp_snapshots;
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].at_ms, b[i].at_ms);
  }
}

TEST(CollectorTest, SessionCompleteRetiresSamplingClock) {
  // After session_complete the session's clock entry is gone; a session id
  // reuse (not expected in production, but the contract) restarts cadence.
  Collector collector(500.0);
  collector.sample_transfer(7, 0, 0.0, {round_at(300.0), round_at(600.0)});
  collector.session_complete(7);
  collector.sample_transfer(7, 0, 0.0, {round_at(550.0), round_at(700.0)});
  // Restarted clock (500): 550 crosses the first boundary again (plus the
  // end-of-transfer sample at 700) — a stale clock (1'000) would skip the
  // 550 boundary and leave only the end-of-transfer sample.
  ASSERT_EQ(collector.data().tcp_snapshots.size(), 3u);
  EXPECT_DOUBLE_EQ(collector.data().tcp_snapshots[1].at_ms, 550.0);
  EXPECT_DOUBLE_EQ(collector.data().tcp_snapshots[2].at_ms, 700.0);
}

}  // namespace
}  // namespace vstream::telemetry
