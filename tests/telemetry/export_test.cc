#include "telemetry/export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <utility>

#include "core/pipeline.h"
#include "engine/engine.h"
#include "faults/fault_schedule.h"
#include "telemetry/join.h"
#include "workload/scenario.h"

namespace vstream::telemetry {
namespace {

Dataset sample_dataset() {
  Dataset d;
  PlayerSessionRecord ps;
  ps.session_id = 42;
  ps.client_ip = net::make_ip(10, 1, 2, 3);
  ps.user_agent = "Chrome/Windows";
  ps.video_duration_s = 123.5;
  ps.start_time_ms = 1'000.25;
  ps.startup_ms = 812.5;
  ps.chunks_requested = 7;
  ps.completed = false;
  d.player_sessions.push_back(ps);

  CdnSessionRecord cs;
  cs.session_id = 42;
  cs.observed_ip = net::make_ip(198, 18, 0, 9);
  cs.observed_user_agent = "Chrome/Windows";
  cs.pop = 2;
  cs.server = 3;
  cs.org = "Enterprise#1";
  cs.access = net::AccessType::kEnterprise;
  cs.city = "New York";
  cs.country = "US";
  cs.client_distance_km = 812.75;
  d.cdn_sessions.push_back(cs);

  PlayerChunkRecord pc;
  pc.session_id = 42;
  pc.chunk_id = 3;
  pc.request_sent_ms = 18'000.5;
  pc.dfb_ms = 240.125;
  pc.dlb_ms = 1'900.5;
  pc.bitrate_kbps = 2'500;
  pc.rebuffer_ms = 35.5;
  pc.rebuffer_count = 1;
  pc.visible = false;
  pc.avg_fps = 27.5;
  pc.dropped_frames = 15;
  pc.total_frames = 180;
  pc.retries = 2;
  pc.timeouts = 1;
  pc.failed_over = true;
  pc.recovery_ms = 4'250.5;
  d.player_chunks.push_back(pc);

  CdnChunkRecord cc;
  cc.session_id = 42;
  cc.chunk_id = 3;
  cc.dwait_ms = 0.25;
  cc.dopen_ms = 0.5;
  cc.dread_ms = 76.25;
  cc.dbe_ms = 64.5;
  cc.cache_level = cdn::CacheLevel::kMiss;
  cc.chunk_bytes = 1'875'000;
  cc.pop = 1;
  cc.server = 3;
  cc.served_stale = true;
  cc.shed = true;
  cc.hedged = true;
  cc.hedge_won = true;
  cc.breaker = cdn::BreakerState::kHalfOpen;
  cc.budget_denied = true;
  cc.served_swr = true;
  d.cdn_chunks.push_back(cc);

  TcpSnapshotRecord ts;
  ts.session_id = 42;
  ts.chunk_id = 3;
  ts.at_ms = 18'500.0;
  ts.info.srtt_ms = 48.5;
  ts.info.rttvar_ms = 6.25;
  ts.info.cwnd_segments = 64;
  ts.info.ssthresh_segments = 48;
  ts.info.mss_bytes = 1'460;
  ts.info.total_retrans = 12;
  ts.info.segments_out = 4'096;
  ts.info.bytes_acked = 5'980'160;
  ts.info.in_slow_start = true;
  d.tcp_snapshots.push_back(ts);
  return d;
}

TEST(ExportTest, PlayerSessionRoundTrip) {
  const Dataset d = sample_dataset();
  std::stringstream buffer;
  write_player_sessions_csv(buffer, d.player_sessions);
  const auto loaded = read_player_sessions_csv(buffer);
  ASSERT_EQ(loaded.size(), 1u);
  const PlayerSessionRecord& r = loaded[0];
  EXPECT_EQ(r.session_id, 42u);
  EXPECT_EQ(r.client_ip, net::make_ip(10, 1, 2, 3));
  EXPECT_EQ(r.user_agent, "Chrome/Windows");
  EXPECT_DOUBLE_EQ(r.video_duration_s, 123.5);
  EXPECT_DOUBLE_EQ(r.startup_ms, 812.5);
  EXPECT_EQ(r.chunks_requested, 7u);
  EXPECT_FALSE(r.completed);
}

TEST(ExportTest, CdnSessionRoundTrip) {
  const Dataset d = sample_dataset();
  std::stringstream buffer;
  write_cdn_sessions_csv(buffer, d.cdn_sessions);
  const auto loaded = read_cdn_sessions_csv(buffer);
  ASSERT_EQ(loaded.size(), 1u);
  const CdnSessionRecord& r = loaded[0];
  EXPECT_EQ(r.org, "Enterprise#1");
  EXPECT_EQ(r.access, net::AccessType::kEnterprise);
  EXPECT_EQ(r.city, "New York");
  EXPECT_DOUBLE_EQ(r.client_distance_km, 812.75);
}

TEST(ExportTest, PlayerChunkRoundTrip) {
  const Dataset d = sample_dataset();
  std::stringstream buffer;
  write_player_chunks_csv(buffer, d.player_chunks);
  const auto loaded = read_player_chunks_csv(buffer);
  ASSERT_EQ(loaded.size(), 1u);
  const PlayerChunkRecord& r = loaded[0];
  EXPECT_DOUBLE_EQ(r.dfb_ms, 240.125);
  EXPECT_FALSE(r.visible);
  EXPECT_EQ(r.dropped_frames, 15u);
  EXPECT_EQ(r.retries, 2u);
  EXPECT_EQ(r.timeouts, 1u);
  EXPECT_TRUE(r.failed_over);
  EXPECT_DOUBLE_EQ(r.recovery_ms, 4'250.5);
}

TEST(ExportTest, CdnChunkRoundTrip) {
  const Dataset d = sample_dataset();
  std::stringstream buffer;
  write_cdn_chunks_csv(buffer, d.cdn_chunks);
  const auto loaded = read_cdn_chunks_csv(buffer);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].cache_level, cdn::CacheLevel::kMiss);
  EXPECT_EQ(loaded[0].chunk_bytes, 1'875'000u);
  EXPECT_DOUBLE_EQ(loaded[0].dbe_ms, 64.5);
  EXPECT_EQ(loaded[0].pop, 1u);
  EXPECT_EQ(loaded[0].server, 3u);
  EXPECT_TRUE(loaded[0].served_stale);
  EXPECT_TRUE(loaded[0].shed);
  EXPECT_TRUE(loaded[0].hedged);
  EXPECT_TRUE(loaded[0].hedge_won);
  EXPECT_EQ(loaded[0].breaker, cdn::BreakerState::kHalfOpen);
  EXPECT_TRUE(loaded[0].budget_denied);
  EXPECT_TRUE(loaded[0].served_swr);
}

// The six overload-protection columns (shed/hedged/hedge_won/breaker/
// budget_denied/served_swr) are flags and an enum: they must survive the
// export -> import -> re-export cycle exactly, byte for byte.
TEST(ExportTest, OverloadColumnsAreAFixedPoint) {
  std::stringstream first;
  const Dataset d = sample_dataset();
  write_cdn_chunks_csv(first, d.cdn_chunks);
  const std::string first_csv = first.str();
  const auto once = read_cdn_chunks_csv(first);

  std::stringstream second;
  write_cdn_chunks_csv(second, once);
  EXPECT_EQ(second.str(), first_csv);

  ASSERT_EQ(once.size(), 1u);
  EXPECT_TRUE(once[0].shed);
  EXPECT_TRUE(once[0].hedged);
  EXPECT_TRUE(once[0].hedge_won);
  EXPECT_EQ(once[0].breaker, cdn::BreakerState::kHalfOpen);
  EXPECT_TRUE(once[0].budget_denied);
  EXPECT_TRUE(once[0].served_swr);

  // Every breaker state names itself uniquely in the CSV.
  Dataset states = sample_dataset();
  states.cdn_chunks[0].breaker = cdn::BreakerState::kClosed;
  CdnChunkRecord open_chunk = states.cdn_chunks[0];
  open_chunk.breaker = cdn::BreakerState::kOpen;
  states.cdn_chunks.push_back(open_chunk);
  std::stringstream buffer;
  write_cdn_chunks_csv(buffer, states.cdn_chunks);
  const auto loaded = read_cdn_chunks_csv(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].breaker, cdn::BreakerState::kClosed);
  EXPECT_EQ(loaded[1].breaker, cdn::BreakerState::kOpen);
}

TEST(ExportTest, TcpSnapshotRoundTrip) {
  const Dataset d = sample_dataset();
  std::stringstream buffer;
  write_tcp_snapshots_csv(buffer, d.tcp_snapshots);
  const auto loaded = read_tcp_snapshots_csv(buffer);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0].info.srtt_ms, 48.5);
  EXPECT_EQ(loaded[0].info.total_retrans, 12u);
  EXPECT_TRUE(loaded[0].info.in_slow_start);
}

TEST(ExportTest, RejectsBadHeader) {
  std::stringstream buffer("not,a,header\n");
  EXPECT_THROW(read_player_chunks_csv(buffer), std::runtime_error);
}

TEST(ExportTest, RejectsShortRow) {
  std::stringstream buffer;
  write_cdn_chunks_csv(buffer, {});
  std::stringstream in(buffer.str() + "1,2,3\n");
  EXPECT_THROW(read_cdn_chunks_csv(in), std::runtime_error);
}

TEST(ExportTest, RejectsUnknownEnums) {
  std::stringstream buffer;
  write_cdn_chunks_csv(buffer, {});
  std::stringstream in(buffer.str() + "1,2,0.1,0.2,0.3,0,warp-hit,100,0,0,0\n");
  EXPECT_THROW(read_cdn_chunks_csv(in), std::runtime_error);
}

TEST(ExportTest, EmptyStreamsRoundTrip) {
  std::stringstream buffer;
  write_tcp_snapshots_csv(buffer, {});
  EXPECT_TRUE(read_tcp_snapshots_csv(buffer).empty());
}

/// Serialize all five streams to one string (byte-equality of the export).
std::string export_string(const Dataset& data) {
  std::ostringstream out;
  write_player_sessions_csv(out, data.player_sessions);
  write_cdn_sessions_csv(out, data.cdn_sessions);
  write_player_chunks_csv(out, data.player_chunks);
  write_cdn_chunks_csv(out, data.cdn_chunks);
  write_tcp_snapshots_csv(out, data.tcp_snapshots);
  return out.str();
}

// The CSV codec must be a fixed point: export -> import -> re-export is
// byte-identical.  Printed doubles may round relative to the in-memory
// values, but a value that survived one print/parse cycle must print the
// same way forever — otherwise archived datasets drift on every rewrite.
TEST(ExportTest, ReExportIsFixedPointOnSampleDataset) {
  std::stringstream first;
  const Dataset d = sample_dataset();
  write_player_chunks_csv(first, d.player_chunks);
  const auto once = read_player_chunks_csv(first);

  std::stringstream second;
  write_player_chunks_csv(second, once);
  const auto twice = read_player_chunks_csv(second);

  std::stringstream third;
  write_player_chunks_csv(third, twice);
  EXPECT_EQ(second.str(), third.str());

  // The PR-1 recovery fields survive the cycle exactly (they are integral
  // or carry few fractional digits).
  ASSERT_EQ(twice.size(), 1u);
  EXPECT_EQ(twice[0].retries, 2u);
  EXPECT_EQ(twice[0].timeouts, 1u);
  EXPECT_TRUE(twice[0].failed_over);
  EXPECT_DOUBLE_EQ(twice[0].recovery_ms, 4'250.5);
}

// Same fixed-point property on a full faulted engine run: every stream,
// including the recovery columns (retries/timeouts/failed_over/recovery_ms),
// the CDN placement columns (pop/server), served_stale and completed, is
// byte-stable after one import/export cycle.
TEST(ExportTest, ReExportIsFixedPointOnFaultedEngineRun) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 60;
  engine::RunOptions options;
  options.shards = 2;
  options.faults = faults::FaultSchedule::scripted({
      {faults::FaultKind::kServerCrash, 5'000.0, 60'000.0, 0, 0, 1.0},
      {faults::FaultKind::kBackendOutage, 30'000.0, 20'000.0, 0, 0, 1.0},
  });
  const engine::RunResult run =
      engine::run_simulation(scenario, std::move(options));
  ASSERT_FALSE(run.dataset.player_chunks.empty());

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "vstream_fixed_point_test";
  std::filesystem::remove_all(dir);
  export_dataset(run.dataset, dir);
  const Dataset loaded = import_dataset(dir);
  std::filesystem::remove_all(dir);

  // One cycle may round in-memory doubles to printed precision; a second
  // cycle must reproduce the first export byte for byte.
  const std::string first = export_string(loaded);
  Dataset reloaded;
  {
    std::stringstream s;
    write_player_sessions_csv(s, loaded.player_sessions);
    reloaded.player_sessions = read_player_sessions_csv(s);
  }
  {
    std::stringstream s;
    write_cdn_sessions_csv(s, loaded.cdn_sessions);
    reloaded.cdn_sessions = read_cdn_sessions_csv(s);
  }
  {
    std::stringstream s;
    write_player_chunks_csv(s, loaded.player_chunks);
    reloaded.player_chunks = read_player_chunks_csv(s);
  }
  {
    std::stringstream s;
    write_cdn_chunks_csv(s, loaded.cdn_chunks);
    reloaded.cdn_chunks = read_cdn_chunks_csv(s);
  }
  {
    std::stringstream s;
    write_tcp_snapshots_csv(s, loaded.tcp_snapshots);
    reloaded.tcp_snapshots = read_tcp_snapshots_csv(s);
  }
  EXPECT_EQ(export_string(reloaded), first);

  // The faulted run actually exercised the recovery columns.
  std::uint64_t retries = 0, failovers = 0, incomplete = 0;
  for (const PlayerChunkRecord& c : loaded.player_chunks) {
    retries += c.retries;
    failovers += c.failed_over ? 1 : 0;
  }
  for (const PlayerSessionRecord& s : loaded.player_sessions) {
    incomplete += s.completed ? 0 : 1;
  }
  EXPECT_GT(retries + failovers + incomplete, 0u);
}

TEST(ExportTest, DirectoryRoundTripFromPipeline) {
  workload::Scenario scenario = workload::test_scenario();
  scenario.session_count = 25;
  core::Pipeline pipeline(scenario);
  pipeline.warm_caches();
  pipeline.run();
  const Dataset& original = pipeline.dataset();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "vstream_export_test";
  std::filesystem::remove_all(dir);
  export_dataset(original, dir);
  const Dataset loaded = import_dataset(dir);
  std::filesystem::remove_all(dir);

  ASSERT_EQ(loaded.player_sessions.size(), original.player_sessions.size());
  ASSERT_EQ(loaded.cdn_sessions.size(), original.cdn_sessions.size());
  ASSERT_EQ(loaded.player_chunks.size(), original.player_chunks.size());
  ASSERT_EQ(loaded.cdn_chunks.size(), original.cdn_chunks.size());
  ASSERT_EQ(loaded.tcp_snapshots.size(), original.tcp_snapshots.size());

  for (std::size_t i = 0; i < original.player_chunks.size(); ++i) {
    EXPECT_EQ(loaded.player_chunks[i].session_id,
              original.player_chunks[i].session_id);
    EXPECT_EQ(loaded.player_chunks[i].chunk_id,
              original.player_chunks[i].chunk_id);
    EXPECT_EQ(loaded.player_chunks[i].bitrate_kbps,
              original.player_chunks[i].bitrate_kbps);
    // Doubles survive to printed precision; the join only needs ids.
    EXPECT_NEAR(loaded.player_chunks[i].dfb_ms, original.player_chunks[i].dfb_ms,
                std::abs(original.player_chunks[i].dfb_ms) * 1e-4 + 1e-3);
  }

  // The joined view built from the reloaded dataset matches structurally.
  const JoinedDataset joined_original = JoinedDataset::build(original);
  const JoinedDataset joined_loaded = JoinedDataset::build(loaded);
  EXPECT_EQ(joined_loaded.sessions().size(), joined_original.sessions().size());
  EXPECT_EQ(joined_loaded.chunk_count(), joined_original.chunk_count());
}

}  // namespace
}  // namespace vstream::telemetry
