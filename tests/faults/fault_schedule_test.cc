#include "faults/fault_schedule.h"

#include <gtest/gtest.h>

namespace vstream::faults {
namespace {

TEST(FaultScheduleTest, ScriptedSortsByStartTime) {
  const FaultSchedule schedule = FaultSchedule::scripted({
      {FaultKind::kServerCrash, 5'000.0, 1'000.0, 0, 0, 1.0},
      {FaultKind::kPopBlackout, 1'000.0, 1'000.0, 1, 0, 1.0},
      {FaultKind::kLossBurst, 3'000.0, 1'000.0, 0, 0, 0.05},
  });
  ASSERT_EQ(schedule.events().size(), 3u);
  EXPECT_EQ(schedule.events()[0].kind, FaultKind::kPopBlackout);
  EXPECT_EQ(schedule.events()[1].kind, FaultKind::kLossBurst);
  EXPECT_EQ(schedule.events()[2].kind, FaultKind::kServerCrash);
}

TEST(FaultScheduleTest, EpochsAreHalfOpen) {
  const FaultEvent event{FaultKind::kServerCrash, 100.0, 50.0, 0, 0, 1.0};
  EXPECT_FALSE(event.active_at(99.9));
  EXPECT_TRUE(event.active_at(100.0));
  EXPECT_TRUE(event.active_at(149.9));
  EXPECT_FALSE(event.active_at(150.0));
  EXPECT_DOUBLE_EQ(event.end_ms(), 150.0);
}

TEST(FaultScheduleTest, ExtraClientLossSumsOverlappingBursts) {
  const FaultSchedule schedule = FaultSchedule::scripted({
      {FaultKind::kLossBurst, 0.0, 100.0, 0, 0, 0.02},
      {FaultKind::kLossBurst, 50.0, 100.0, 0, 0, 0.03},
      // A crash epoch must not contribute to client loss.
      {FaultKind::kServerCrash, 0.0, 1'000.0, 0, 0, 1.0},
  });
  EXPECT_DOUBLE_EQ(schedule.extra_client_loss(25.0), 0.02);
  EXPECT_DOUBLE_EQ(schedule.extra_client_loss(75.0), 0.05);
  EXPECT_DOUBLE_EQ(schedule.extra_client_loss(125.0), 0.03);
  EXPECT_DOUBLE_EQ(schedule.extra_client_loss(200.0), 0.0);
}

TEST(FaultScheduleTest, AnyActiveCoversAllKinds) {
  const FaultSchedule schedule = FaultSchedule::scripted({
      {FaultKind::kBackendOutage, 1'000.0, 500.0, 0, 0, 1.0},
  });
  EXPECT_FALSE(schedule.any_active(500.0));
  EXPECT_TRUE(schedule.any_active(1'200.0));
  EXPECT_FALSE(schedule.any_active(2'000.0));
}

TEST(FaultScheduleTest, ZeroRatesYieldEmptySchedule) {
  sim::Rng rng(7);
  const FaultSchedule schedule =
      FaultSchedule::stochastic(StochasticFaultConfig{}, 2, 2, rng);
  EXPECT_TRUE(schedule.empty());
}

StochasticFaultConfig busy_config() {
  StochasticFaultConfig config;
  config.horizon_ms = sim::seconds(600.0);
  config.server_crashes_per_hour = 20.0;
  config.pop_blackouts_per_hour = 10.0;
  config.backend_outages_per_hour = 10.0;
  config.backend_slowdowns_per_hour = 10.0;
  config.disk_degradations_per_hour = 20.0;
  config.loss_bursts_per_hour = 30.0;
  return config;
}

TEST(FaultScheduleTest, StochasticRespectsHorizonAndTargets) {
  sim::Rng rng(42);
  const FaultSchedule schedule =
      FaultSchedule::stochastic(busy_config(), 2, 3, rng);
  ASSERT_FALSE(schedule.empty());
  sim::Ms previous = 0.0;
  for (const FaultEvent& event : schedule.events()) {
    EXPECT_GE(event.at_ms, previous);  // sorted
    previous = event.at_ms;
    EXPECT_LT(event.at_ms, sim::seconds(600.0));
    EXPECT_GT(event.duration_ms, 0.0);
    EXPECT_LT(event.pop, 2u);
    EXPECT_LT(event.server, 3u);
  }
}

TEST(FaultScheduleTest, StochasticIsDeterministicUnderSeed) {
  sim::Rng rng_a(123);
  sim::Rng rng_b(123);
  const FaultSchedule a = FaultSchedule::stochastic(busy_config(), 2, 3, rng_a);
  const FaultSchedule b = FaultSchedule::stochastic(busy_config(), 2, 3, rng_b);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const FaultEvent& ea = a.events()[i];
    const FaultEvent& eb = b.events()[i];
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.at_ms, eb.at_ms);  // bit-for-bit, not just approximate
    EXPECT_EQ(ea.duration_ms, eb.duration_ms);
    EXPECT_EQ(ea.pop, eb.pop);
    EXPECT_EQ(ea.server, eb.server);
    EXPECT_EQ(ea.magnitude, eb.magnitude);
  }

  sim::Rng rng_c(124);
  const FaultSchedule c = FaultSchedule::stochastic(busy_config(), 2, 3, rng_c);
  bool identical = a.events().size() == c.events().size();
  if (identical) {
    for (std::size_t i = 0; i < a.events().size(); ++i) {
      identical = identical && a.events()[i].at_ms == c.events()[i].at_ms;
    }
  }
  EXPECT_FALSE(identical) << "different seeds must differ";
}

TEST(FaultScheduleTest, KindNames) {
  EXPECT_STREQ(to_string(FaultKind::kServerCrash), "server-crash");
  EXPECT_STREQ(to_string(FaultKind::kPopBlackout), "pop-blackout");
  EXPECT_STREQ(to_string(FaultKind::kBackendOutage), "backend-outage");
  EXPECT_STREQ(to_string(FaultKind::kBackendSlowdown), "backend-slowdown");
  EXPECT_STREQ(to_string(FaultKind::kDiskDegradation), "disk-degradation");
  EXPECT_STREQ(to_string(FaultKind::kLossBurst), "loss-burst");
}

}  // namespace
}  // namespace vstream::faults
