#include "faults/fault_injector.h"

#include <gtest/gtest.h>

#include "cdn/fleet.h"
#include "sim/event_queue.h"

namespace vstream::faults {
namespace {

cdn::Fleet make_fleet() {
  cdn::FleetConfig config;
  config.pop_count = 2;
  config.servers_per_pop = 2;
  config.server.ram_bytes = 1ull << 20;
  config.server.disk_bytes = 8ull << 20;
  return cdn::Fleet(config, 100);
}

TEST(FaultInjectorTest, CrashAppliesAndRevertsThroughQueue) {
  cdn::Fleet fleet = make_fleet();
  sim::EventQueue queue;
  FaultInjector injector(
      fleet, queue,
      FaultSchedule::scripted(
          {{FaultKind::kServerCrash, 1'000.0, 2'000.0, 0, 1, 1.0}}));
  injector.arm();
  EXPECT_EQ(queue.pending(), 2u);  // one apply + one revert

  queue.run_until(500.0);
  EXPECT_FALSE(fleet.is_down({0, 1}));
  queue.run_until(1'500.0);
  EXPECT_TRUE(fleet.is_down({0, 1}));
  EXPECT_FALSE(fleet.is_down({0, 0}));  // only the target crashed
  EXPECT_EQ(injector.applied_count(), 1u);
  queue.run_until(3'500.0);
  EXPECT_FALSE(fleet.is_down({0, 1}));
}

TEST(FaultInjectorTest, OverlappingCrashesAreReferenceCounted) {
  cdn::Fleet fleet = make_fleet();
  sim::EventQueue queue;
  FaultInjector injector(
      fleet, queue,
      FaultSchedule::scripted({
          {FaultKind::kServerCrash, 1'000.0, 2'000.0, 0, 0, 1.0},
          {FaultKind::kServerCrash, 2'000.0, 3'000.0, 0, 0, 1.0},
      }));
  injector.arm();

  queue.run_until(2'500.0);
  EXPECT_TRUE(fleet.is_down({0, 0}));
  // First epoch ends at 3000, but the second still covers the server.
  queue.run_until(3'500.0);
  EXPECT_TRUE(fleet.is_down({0, 0}));
  // The last covering epoch ends at 5000: only then does it recover.
  queue.run_until(5'500.0);
  EXPECT_FALSE(fleet.is_down({0, 0}));
}

TEST(FaultInjectorTest, BlackoutDarkensWholePop) {
  cdn::Fleet fleet = make_fleet();
  sim::EventQueue queue;
  FaultInjector injector(
      fleet, queue,
      FaultSchedule::scripted(
          {{FaultKind::kPopBlackout, 100.0, 200.0, 1, 0, 1.0}}));
  injector.arm();

  queue.run_until(150.0);
  EXPECT_TRUE(fleet.is_pop_down(1));
  EXPECT_FALSE(fleet.pop_live(1));
  EXPECT_TRUE(fleet.pop_live(0));
  queue.run_until(400.0);
  EXPECT_TRUE(fleet.pop_live(1));
}

TEST(FaultInjectorTest, BackendOutageFlipsEveryServer) {
  cdn::Fleet fleet = make_fleet();
  sim::EventQueue queue;
  FaultInjector injector(
      fleet, queue,
      FaultSchedule::scripted(
          {{FaultKind::kBackendOutage, 100.0, 200.0, 0, 0, 1.0}}));
  injector.arm();

  queue.run_until(150.0);
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    for (std::uint32_t s = 0; s < fleet.servers_per_pop(); ++s) {
      EXPECT_TRUE(fleet.server({pop, s}).backend_down());
      // Servers stay routable: hits keep serving (stale), only misses fail.
      EXPECT_FALSE(fleet.is_down({pop, s}));
    }
  }
  queue.run_until(400.0);
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    for (std::uint32_t s = 0; s < fleet.servers_per_pop(); ++s) {
      EXPECT_FALSE(fleet.server({pop, s}).backend_down());
    }
  }
}

TEST(FaultInjectorTest, LossBurstIsQueryBased) {
  cdn::Fleet fleet = make_fleet();
  sim::EventQueue queue;
  FaultInjector injector(
      fleet, queue,
      FaultSchedule::scripted(
          {{FaultKind::kLossBurst, 100.0, 200.0, 0, 0, 0.04}}));
  injector.arm();
  queue.run_all();

  // No fleet-side switch flips...
  for (std::uint32_t pop = 0; pop < fleet.pop_count(); ++pop) {
    EXPECT_TRUE(fleet.pop_live(pop));
  }
  // ...sessions query the active extra loss by timestamp instead.
  EXPECT_DOUBLE_EQ(injector.extra_client_loss(50.0), 0.0);
  EXPECT_DOUBLE_EQ(injector.extra_client_loss(150.0), 0.04);
  EXPECT_DOUBLE_EQ(injector.extra_client_loss(350.0), 0.0);
}

}  // namespace
}  // namespace vstream::faults
