#include "sim/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <random>
#include <vector>

namespace vstream::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformIntInclusive) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(40.0);
  EXPECT_NEAR(sum / n, 40.0, 1.0);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(17);
  std::vector<double> samples;
  const int n = 50'001;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(rng.lognormal_median(10.0, 0.5));
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], 10.0, 0.3);
}

TEST(RngTest, LognormalRejectsNonPositiveMedian) {
  Rng rng(1);
  EXPECT_THROW(rng.lognormal_median(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.lognormal_median(-3.0, 1.0), std::invalid_argument);
}

TEST(RngTest, ParetoMinimum) {
  Rng rng(19);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, ParetoRejectsBadParams) {
  Rng rng(1);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(23);
  const std::array<double, 3> weights = {1.0, 2.0, 7.0};
  std::array<int, 3> counts = {0, 0, 0};
  const int n = 100'000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.01);
}

TEST(RngTest, DiscreteRejectsEmptyAndZeroWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.discrete({}), std::invalid_argument);
  const std::array<double, 2> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.discrete(zeros), std::invalid_argument);
}

// The fast draw paths must keep producing the same values the standard
// distributions produced when they sat on the hot path — every seeded run
// (and every statistical test in this suite) was recorded against that
// stream.  Pin bit-exact equivalence against the standard library on a
// shared engine state.
TEST(RngTest, Uniform01BitExactVsStdDistribution) {
  Rng rng(20160516);
  std::mt19937_64 reference(20160516);
  for (int i = 0; i < 200'000; ++i) {
    const double expected =
        std::uniform_real_distribution<double>(0.0, 1.0)(reference);
    ASSERT_EQ(rng.uniform01(), expected) << "draw " << i;
  }
}

TEST(RngTest, UniformBitExactVsStdDistribution) {
  Rng rng(7);
  std::mt19937_64 reference(7);
  for (int i = 0; i < 100'000; ++i) {
    const double expected =
        std::uniform_real_distribution<double>(-3.5, 17.25)(reference);
    ASSERT_EQ(rng.uniform(-3.5, 17.25), expected) << "draw " << i;
  }
}

TEST(RngTest, BernoulliBitExactVsStdDistribution) {
  Rng rng(777);
  std::mt19937_64 reference(777);
  const std::array<double, 7> ps = {1e-5, 8e-5, 2e-4, 0.02, 0.25, 0.5, 0.999};
  for (int i = 0; i < 200'000; ++i) {
    const double p = ps[static_cast<std::size_t>(i) % ps.size()];
    const bool expected = std::bernoulli_distribution(p)(reference);
    ASSERT_EQ(rng.bernoulli(p), expected) << "draw " << i << " p=" << p;
  }
}

// The custom engine (sim/mt64.h) must produce the standardized mt19937_64
// stream word for word: every seeded run depends on it.  Exercise several
// seeds, long enough streams to cross many refills, and reseeding.
TEST(RngTest, Mt64BitExactVsStdMt19937_64) {
  for (const std::uint64_t seed :
       {std::uint64_t{5489}, std::uint64_t{0}, std::uint64_t{20160516},
        std::uint64_t{0xdeadbeefcafe}}) {
    Mt64 ours(seed);
    std::mt19937_64 reference(seed);
    for (int i = 0; i < 1'000'000; ++i) {
      ASSERT_EQ(ours(), reference()) << "seed " << seed << " draw " << i;
    }
  }
  Mt64 reseeded(1);
  std::mt19937_64 reference(1);
  reseeded.seed(424242);
  reference.seed(424242);
  for (int i = 0; i < 1'000; ++i) ASSERT_EQ(reseeded(), reference());
}

// std's distribution templates must see the custom engine as an equivalent
// URBG — min/max drive generate_canonical's layout, so pin them too.
TEST(RngTest, Mt64UrbgTraitsMatchStd) {
  static_assert(Mt64::min() == std::mt19937_64::min());
  static_assert(Mt64::max() == std::mt19937_64::max());
  static_assert(Mt64::default_seed == std::mt19937_64::default_seed);
  Mt64 ours(123);
  std::mt19937_64 reference(123);
  std::normal_distribution<double> da(3.0, 1.5), db(3.0, 1.5);
  for (int i = 0; i < 10'000; ++i) ASSERT_EQ(da(ours), db(reference));
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(99);
  Rng child = parent.fork();
  // Child stream differs from the parent continuing stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.uniform01() == child.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NormalMeanAndStddev) {
  Rng rng(31);
  const int n = 100'000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

}  // namespace
}  // namespace vstream::sim
