#include "sim/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace vstream::sim {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  const Zipf z(100, 0.8);
  double sum = 0.0;
  for (std::size_t r = 1; r <= 100; ++r) sum += z.pmf(r);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotonicallyDecreasing) {
  const Zipf z(1'000, 1.0);
  for (std::size_t r = 2; r <= 1'000; ++r) {
    EXPECT_LE(z.pmf(r), z.pmf(r - 1)) << "rank " << r;
  }
}

TEST(ZipfTest, PmfOutOfRangeIsZero) {
  const Zipf z(10, 1.0);
  EXPECT_DOUBLE_EQ(z.pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(z.pmf(11), 0.0);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  const Zipf z(50, 0.0);
  for (std::size_t r = 1; r <= 50; ++r) {
    EXPECT_NEAR(z.pmf(r), 1.0 / 50.0, 1e-12);
  }
}

TEST(ZipfTest, ShareOfTopBoundaries) {
  const Zipf z(100, 0.9);
  EXPECT_DOUBLE_EQ(z.share_of_top(0), 0.0);
  EXPECT_NEAR(z.share_of_top(100), 1.0, 1e-12);
  EXPECT_NEAR(z.share_of_top(1'000), 1.0, 1e-12);  // clamped
}

TEST(ZipfTest, SampleMatchesPmf) {
  const Zipf z(20, 1.2);
  Rng rng(5);
  std::vector<int> counts(21, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t r = 1; r <= 20; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(n), z.pmf(r), 0.01)
        << "rank " << r;
  }
}

TEST(ZipfTest, SampleWithinRange) {
  const Zipf z(7, 0.5);
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const std::size_t r = z.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 7u);
  }
}

TEST(ZipfTest, RejectsDegenerateParams) {
  EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument);
  EXPECT_THROW(Zipf(10, -0.5), std::invalid_argument);
}

TEST(ZipfFitTest, ReproducesPaperPopularitySkew) {
  // Paper §3: top 10% of videos receive ~66% of playbacks (Fig. 3b).
  const std::size_t n = 10'000;
  const double alpha = fit_zipf_alpha(n, 0.10, 0.66);
  const Zipf z(n, alpha);
  EXPECT_NEAR(z.share_of_top(n / 10), 0.66, 0.01);
}

TEST(ZipfFitTest, AlphaIncreasesWithTargetShare) {
  const std::size_t n = 5'000;
  const double a1 = fit_zipf_alpha(n, 0.10, 0.50);
  const double a2 = fit_zipf_alpha(n, 0.10, 0.80);
  EXPECT_LT(a1, a2);
}

TEST(ZipfFitTest, RejectsInfeasibleTargets) {
  EXPECT_THROW(fit_zipf_alpha(0, 0.1, 0.6), std::invalid_argument);
  EXPECT_THROW(fit_zipf_alpha(100, 0.0, 0.6), std::invalid_argument);
  EXPECT_THROW(fit_zipf_alpha(100, 0.1, 1.0), std::invalid_argument);
  // target share below the top fraction itself is impossible for alpha >= 0
  EXPECT_THROW(fit_zipf_alpha(100, 0.5, 0.4), std::invalid_argument);
}

// Property sweep: share_of_top is monotone in k and in alpha.
class ZipfPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPropertyTest, ShareMonotoneInK) {
  const Zipf z(500, GetParam());
  double prev = 0.0;
  for (std::size_t k = 1; k <= 500; k += 7) {
    const double share = z.share_of_top(k);
    EXPECT_GE(share, prev);
    prev = share;
  }
}

TEST_P(ZipfPropertyTest, CdfSampleableAtExtremes) {
  const Zipf z(500, GetParam());
  Rng rng(77);
  std::size_t min_seen = 500, max_seen = 1;
  for (int i = 0; i < 50'000; ++i) {
    const std::size_t r = z.sample(rng);
    min_seen = std::min(min_seen, r);
    max_seen = std::max(max_seen, r);
  }
  EXPECT_EQ(min_seen, 1u);  // the head is always hit eventually
  EXPECT_GT(max_seen, 250u);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfPropertyTest,
                         ::testing::Values(0.0, 0.3, 0.6, 0.8, 1.0, 1.3));

}  // namespace
}  // namespace vstream::sim
