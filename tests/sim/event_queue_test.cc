#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

namespace vstream::sim {
namespace {

TEST(EventQueueTest, StartsAtZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30.0, [&] { order.push_back(3); });
  q.schedule_at(10.0, [&] { order.push_back(1); });
  q.schedule_at(20.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_all(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, FifoAmongEqualTimestampsSurvivesPoolReuse) {
  // Fill the pool, drain it (recycling every slot), then schedule a fresh
  // same-timestamp batch whose slots all come from the free list in some
  // recycled order: execution order must still be scheduling order.
  EventQueue q;
  int burn = 0;
  for (int i = 0; i < 1'000; ++i) {
    q.schedule_at(1.0, [&burn] { ++burn; });
  }
  EXPECT_EQ(q.run_all(), 1'000u);
  EXPECT_GT(q.pool_free(), 0u);

  std::vector<int> order;
  for (int i = 0; i < 1'000; ++i) {
    q.schedule_at(2.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  ASSERT_EQ(order.size(), 1'000u);
  for (int i = 0; i < 1'000; ++i) ASSERT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(100.0, [&] {
    q.schedule_in(50.0, [&] { fired_at = q.now(); });
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(100.0, [&] {
    q.schedule_at(10.0, [&] { fired_at = q.now(); });  // in the past
  });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 100.0);
}

TEST(EventQueueTest, PastSchedulingRunsAfterPendingEventsAtNow) {
  // A clamped event lands at now() with a fresh sequence number, so it
  // runs after events already pending at the current timestamp.
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(50.0, [&] {
    order.push_back(0);
    q.schedule_at(0.0, [&] { order.push_back(2); });  // clamped to 50.0
  });
  q.schedule_at(50.0, [&] { order.push_back(1); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, NegativeDelayClampsToZero) {
  EventQueue q;
  bool fired = false;
  q.schedule_in(-5.0, [&] { fired = true; });
  q.run_all();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueueTest, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10.0, [&] { ++fired; });
  q.schedule_at(20.0, [&] { ++fired; });
  q.schedule_at(30.0, [&] { ++fired; });
  EXPECT_EQ(q.run_until(20.0), 2u);  // event exactly at `until` runs
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 20.0);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run_all(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) q.schedule_in(1.0, chain);
  };
  q.schedule_in(1.0, chain);
  EXPECT_EQ(q.run_all(), 100u);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueueTest, ClearDropsPendingAndReturnsSlotsToPool) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10.0, [&] { ++fired; });
  q.schedule_at(20.0, [&] { ++fired; });
  const std::size_t free_before = q.pool_free();
  q.clear();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.pool_free(), free_before + 2);
  EXPECT_EQ(q.pool_slots(), q.pool_free());  // nothing leaked
  EXPECT_EQ(q.run_all(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, ClearRunsNonTrivialDestructors) {
  // Dropped events must destroy their captured state (shared_ptr refcount
  // back to 1), not merely be forgotten.
  EventQueue q;
  auto token = std::make_shared<int>(7);
  q.schedule_at(10.0, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  q.clear();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventQueueTest, ClearFromInsideCallbackIsSafe) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10.0, [&] {
    ++fired;
    q.clear();  // drops the events below without disturbing this one
  });
  q.schedule_at(20.0, [&] { ++fired; });
  q.schedule_at(30.0, [&] { ++fired; });
  EXPECT_EQ(q.run_all(), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pool_slots(), q.pool_free());
}

TEST(EventQueueTest, SteadyStateSchedulingReusesPooledSlots) {
  // A self-rescheduling event (the engine's per-session step pattern)
  // must reach a fixed pool size: one slab, no growth per event.
  EventQueue q;
  int steps = 0;
  std::function<void()> step = [&] {
    if (++steps < 10'000) q.schedule_in(1.0, step);
  };
  q.schedule_in(1.0, step);
  q.run_all();
  EXPECT_EQ(steps, 10'000);
  EXPECT_EQ(q.pool_slots(), 256u);  // a single slab covered the whole run
}

TEST(EventQueueTest, OversizedCallablesAreBoxedAndStillRun) {
  EventQueue q;
  std::array<double, 16> big{};  // 128 bytes of captured state > kInlineBytes
  big[0] = 1.0;
  big[15] = 2.0;
  double sum = 0.0;
  q.schedule_at(5.0, [big, &sum] { sum = big[0] + big[15]; });
  static_assert(sizeof(std::array<double, 16>) > EventQueue::kInlineBytes);
  EXPECT_EQ(q.run_all(), 1u);
  EXPECT_DOUBLE_EQ(sum, 3.0);
  EXPECT_EQ(q.pool_slots(), q.pool_free());
}

TEST(EventQueueTest, RunUntilWithEmptyQueueAdvancesClock) {
  EventQueue q;
  q.run_until(500.0);
  EXPECT_DOUBLE_EQ(q.now(), 500.0);
}

TEST(EventQueueTest, ResetRewindsClockAndSequence) {
  EventQueue q;
  q.schedule_at(10.0, [] {});
  q.run_all();
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
  q.schedule_at(20.0, [] {});
  q.reset();
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_EQ(q.pending(), 0u);
  // The rewound queue behaves like a fresh one (absolute times restart).
  double fired_at = -1.0;
  q.schedule_at(5.0, [&] { fired_at = q.now(); });
  q.run_all();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

}  // namespace
}  // namespace vstream::sim
