#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace vstream::sim {
namespace {

TEST(EventQueueTest, StartsAtZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30.0, [&] { order.push_back(3); });
  q.schedule_at(10.0, [&] { order.push_back(1); });
  q.schedule_at(20.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 30.0);
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleInIsRelative) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(100.0, [&] {
    q.schedule_in(50.0, [&] { fired_at = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 150.0);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  double fired_at = -1.0;
  q.schedule_at(100.0, [&] {
    q.schedule_at(10.0, [&] { fired_at = q.now(); });  // in the past
  });
  q.run();
  EXPECT_DOUBLE_EQ(fired_at, 100.0);
}

TEST(EventQueueTest, NegativeDelayClampsToZero) {
  EventQueue q;
  bool fired = false;
  q.schedule_in(-5.0, [&] { fired = true; });
  q.run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

TEST(EventQueueTest, RunUntilStopsAndAdvancesClock) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10.0, [&] { ++fired; });
  q.schedule_at(20.0, [&] { ++fired; });
  q.schedule_at(30.0, [&] { ++fired; });
  EXPECT_EQ(q.run(20.0), 2u);  // event exactly at `until` runs
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 20.0);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.run(), 1u);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) q.schedule_in(1.0, chain);
  };
  q.schedule_in(1.0, chain);
  EXPECT_EQ(q.run(), 100u);
  EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueueTest, ClearDropsPending) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10.0, [&] { ++fired; });
  q.schedule_at(20.0, [&] { ++fired; });
  q.clear();
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.run(), 0u);
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, RunUntilWithEmptyQueueAdvancesClock) {
  EventQueue q;
  q.run(500.0);
  EXPECT_DOUBLE_EQ(q.now(), 500.0);
}

}  // namespace
}  // namespace vstream::sim
