#include "net/prefix.h"

#include <gtest/gtest.h>

namespace vstream::net {
namespace {

TEST(PrefixTest, MakeIpRoundTrips) {
  const IpV4 ip = make_ip(192, 0, 2, 17);
  EXPECT_EQ(format_ip(ip), "192.0.2.17");
  EXPECT_EQ(parse_ip("192.0.2.17"), ip);
}

TEST(PrefixTest, Prefix24MasksHostBits) {
  const IpV4 ip = make_ip(10, 20, 30, 199);
  EXPECT_EQ(prefix24_of(ip), make_ip(10, 20, 30, 0));
}

TEST(PrefixTest, SamePrefixForSameSlash24) {
  EXPECT_EQ(prefix24_of(make_ip(10, 1, 2, 3)), prefix24_of(make_ip(10, 1, 2, 250)));
  EXPECT_NE(prefix24_of(make_ip(10, 1, 2, 3)), prefix24_of(make_ip(10, 1, 3, 3)));
}

TEST(PrefixTest, FormatPrefix24) {
  EXPECT_EQ(format_prefix24(prefix24_of(make_ip(203, 0, 113, 77))),
            "203.0.113.0/24");
}

TEST(PrefixTest, ParseRejectsMalformed) {
  EXPECT_THROW(parse_ip(""), std::invalid_argument);
  EXPECT_THROW(parse_ip("1.2.3"), std::invalid_argument);
  EXPECT_THROW(parse_ip("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(parse_ip("256.1.1.1"), std::invalid_argument);
  EXPECT_THROW(parse_ip("a.b.c.d"), std::invalid_argument);
}

TEST(PrefixTest, ExtremeValues) {
  EXPECT_EQ(format_ip(make_ip(0, 0, 0, 0)), "0.0.0.0");
  EXPECT_EQ(format_ip(make_ip(255, 255, 255, 255)), "255.255.255.255");
  EXPECT_EQ(parse_ip("255.255.255.255"), 0xFFFFFFFFu);
}

}  // namespace
}  // namespace vstream::net
