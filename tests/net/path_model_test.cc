#include "net/path_model.h"

#include <gtest/gtest.h>

#include "net/geo.h"

namespace vstream::net {
namespace {

TEST(PathConfigTest, EnterpriseHasMoreJitterThanResidential) {
  const PathConfig res = make_path_config(AccessType::kResidential, 500.0, 10'000);
  const PathConfig ent = make_path_config(AccessType::kEnterprise, 500.0, 10'000);
  EXPECT_GT(ent.jitter_median_ms, res.jitter_median_ms);
  EXPECT_GT(ent.jitter_sigma, res.jitter_sigma);
}

TEST(PathConfigTest, BaseRttGrowsWithDistance) {
  const PathConfig near = make_path_config(AccessType::kResidential, 100.0, 10'000);
  const PathConfig far = make_path_config(AccessType::kResidential, 8'000.0, 10'000);
  EXPECT_GT(far.base_rtt_ms, near.base_rtt_ms);
  EXPECT_NEAR(far.base_rtt_ms - near.base_rtt_ms,
              propagation_rtt_ms(8'000.0) - propagation_rtt_ms(100.0), 1e-9);
}

TEST(PathModelTest, RttAtLeastBase) {
  PathModel path(make_path_config(AccessType::kResidential, 1'000.0, 10'000));
  sim::Rng rng(1);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_GE(path.sample_rtt(1, 1460, rng), path.config().base_rtt_ms);
  }
}

TEST(PathModelTest, SerializationMsMatchesCapacity) {
  PathConfig config;
  config.bottleneck_kbps = 8'000.0;  // 8 kbit per ms -> 1000 bytes per ms
  PathModel path(config);
  // 10 segments * 1000 bytes * 8 bits = 80,000 bits / 8,000 kbps = 10 ms.
  EXPECT_NEAR(path.serialization_ms(10, 1'000), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(path.serialization_ms(0, 1'000), 0.0);
}

TEST(PathModelTest, SelfLoadingBuildsQueue) {
  PathConfig config;
  config.base_rtt_ms = 10.0;
  config.jitter_median_ms = 0.01;
  config.jitter_sigma = 0.01;
  config.bottleneck_kbps = 1'000.0;  // slow path
  config.max_queue_ms = 500.0;
  PathModel path(config);
  sim::Rng rng(2);
  // A 100-segment window serializes in 1168 ms >> 10 ms RTT: queue grows.
  path.sample_rtt(100, 1'460, rng);
  EXPECT_GT(path.queue_ms(), 0.0);
  const sim::Ms q1 = path.queue_ms();
  path.sample_rtt(100, 1'460, rng);
  EXPECT_GE(path.queue_ms(), q1);  // keeps growing (until the cap)
}

TEST(PathModelTest, QueueCapRespected) {
  PathConfig config;
  config.base_rtt_ms = 5.0;
  config.bottleneck_kbps = 500.0;
  config.max_queue_ms = 50.0;
  PathModel path(config);
  sim::Rng rng(3);
  for (int i = 0; i < 100; ++i) path.sample_rtt(200, 1'460, rng);
  EXPECT_LE(path.queue_ms(), 50.0);
}

TEST(PathModelTest, QueueDrainsWhenSendingSlowly) {
  PathConfig config;
  config.base_rtt_ms = 20.0;
  config.bottleneck_kbps = 1'000.0;
  PathModel path(config);
  sim::Rng rng(4);
  for (int i = 0; i < 20; ++i) path.sample_rtt(100, 1'460, rng);
  EXPECT_GT(path.queue_ms(), 0.0);
  for (int i = 0; i < 200; ++i) path.sample_rtt(1, 100, rng);
  EXPECT_DOUBLE_EQ(path.queue_ms(), 0.0);
}

TEST(PathModelTest, DrainClearsQueue) {
  PathConfig config;
  config.base_rtt_ms = 5.0;
  config.bottleneck_kbps = 800.0;
  PathModel path(config);
  sim::Rng rng(5);
  for (int i = 0; i < 10; ++i) path.sample_rtt(100, 1'460, rng);
  ASSERT_GT(path.queue_ms(), 0.0);
  path.drain(1e9);
  EXPECT_DOUBLE_EQ(path.queue_ms(), 0.0);
}

TEST(PathModelTest, LossProbabilityObeyed) {
  PathConfig config;
  config.random_loss = 0.05;
  config.tail_drop_prob = 0.30;
  PathModel path(config);
  sim::Rng rng(6);
  int random_losses = 0, tail_drops = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    if (path.segment_lost(rng)) ++random_losses;
    if (path.tail_dropped(rng)) ++tail_drops;
  }
  EXPECT_NEAR(random_losses / static_cast<double>(n), 0.05, 0.005);
  EXPECT_NEAR(tail_drops / static_cast<double>(n), 0.30, 0.01);
}

TEST(PathModelTest, SetRandomLossOverride) {
  PathConfig config;
  config.random_loss = 0.0;
  PathModel path(config);
  sim::Rng rng(7);
  for (int i = 0; i < 1'000; ++i) EXPECT_FALSE(path.segment_lost(rng));
  path.set_random_loss(1.0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(path.segment_lost(rng));
}

TEST(PathModelTest, PipeSegmentsIsBdpPlusBuffer) {
  PathConfig config;
  config.base_rtt_ms = 20.0;
  config.max_queue_ms = 60.0;
  config.bottleneck_kbps = 11'680.0;  // 1 segment (1460 B) per ms
  PathModel path(config);
  // BDP = 20 segments, buffer = 60 segments.
  EXPECT_NEAR(path.pipe_segments(1'460), 80.0, 1e-9);
}

TEST(PathModelTest, SpikesAddLatencyForManyRounds) {
  PathConfig config;
  config.base_rtt_ms = 20.0;
  config.jitter_median_ms = 0.1;
  config.jitter_sigma = 0.1;
  config.spike_prob_per_round = 1.0;  // spike immediately
  config.spike_median_ms = 300.0;
  config.spike_sigma = 0.1;
  config.spike_min_rounds = 10;
  config.spike_max_rounds = 10;
  config.bottleneck_kbps = 1e9;
  PathModel path(config);
  sim::Rng rng(8);
  // Rounds 1..10 are spiked; afterwards a new spike starts immediately
  // (prob 1), so every sample is elevated.
  for (int i = 0; i < 10; ++i) {
    EXPECT_GT(path.sample_rtt(1, 1'460, rng), 200.0) << "round " << i;
    EXPECT_TRUE(path.spiking() || i == 9);
  }
}

TEST(PathModelTest, NoSpikesWhenDisabled) {
  PathConfig config;
  config.base_rtt_ms = 20.0;
  config.jitter_median_ms = 0.1;
  config.jitter_sigma = 0.1;
  config.spike_prob_per_round = 0.0;
  config.bottleneck_kbps = 1e9;
  PathModel path(config);
  sim::Rng rng(9);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_LT(path.sample_rtt(1, 1'460, rng), 25.0);
    EXPECT_FALSE(path.spiking());
  }
}

TEST(PathConfigTest, EnterpriseSpikesDwarfResidential) {
  const PathConfig res = make_path_config(AccessType::kResidential, 500.0, 10'000);
  const PathConfig ent = make_path_config(AccessType::kEnterprise, 500.0, 10'000);
  EXPECT_GT(ent.spike_prob_per_round, 10.0 * res.spike_prob_per_round);
  EXPECT_GT(ent.spike_median_ms, res.spike_median_ms);
}

TEST(PathModelTest, AccessTypeNames) {
  EXPECT_STREQ(to_string(AccessType::kResidential), "residential");
  EXPECT_STREQ(to_string(AccessType::kEnterprise), "enterprise");
  EXPECT_STREQ(to_string(AccessType::kInternational), "international");
}

// Property sweep over distances: base RTT stays consistent with the
// propagation rule for every access type.
class PathDistanceTest
    : public ::testing::TestWithParam<std::tuple<AccessType, double>> {};

TEST_P(PathDistanceTest, BaseRttAtLeastPropagation) {
  const auto [access, km] = GetParam();
  const PathConfig config = make_path_config(access, km, 10'000);
  EXPECT_GE(config.base_rtt_ms, propagation_rtt_ms(km));
  EXPECT_LE(config.base_rtt_ms, propagation_rtt_ms(km) + 20.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PathDistanceTest,
    ::testing::Combine(::testing::Values(AccessType::kResidential,
                                         AccessType::kEnterprise,
                                         AccessType::kInternational),
                       ::testing::Values(10.0, 200.0, 1'500.0, 9'000.0)));

}  // namespace
}  // namespace vstream::net
