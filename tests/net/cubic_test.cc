#include <gtest/gtest.h>

#include "net/tcp_model.h"

namespace vstream::net {
namespace {

PathConfig clean_path() {
  PathConfig p;
  p.base_rtt_ms = 40.0;
  p.jitter_median_ms = 0.01;
  p.jitter_sigma = 0.01;
  p.random_loss = 0.0;
  p.spike_prob_per_round = 0.0;
  p.bottleneck_kbps = 1'000'000.0;
  return p;
}

TcpConfig cubic_config() {
  TcpConfig c;
  c.congestion_control = CongestionControl::kCubic;
  return c;
}

/// Drive the connection to a known CA state: grow to ~`w` then force one
/// loss round so cwnd = beta*w and the cubic epoch starts.
void establish_loss_at(TcpConnection& conn, std::uint32_t w) {
  while (conn.cwnd() < w) conn.transfer(conn.cwnd() * 1460ull);
  conn.mutable_path().set_random_loss(1.0);
  conn.transfer(1460);
  conn.mutable_path().set_random_loss(0.0);
}

TEST(CubicTest, ToStringNames) {
  EXPECT_STREQ(to_string(CongestionControl::kReno), "reno");
  EXPECT_STREQ(to_string(CongestionControl::kCubic), "cubic");
}

TEST(CubicTest, LossBacksOffByBeta) {
  TcpConnection conn(cubic_config(), clean_path(), sim::Rng(1));
  establish_loss_at(conn, 160);
  // cwnd after loss = beta * cwnd_at_loss (within rounding).
  EXPECT_NEAR(static_cast<double>(conn.cwnd()), 0.7 * 160.0, 160.0 * 0.05);
  EXPECT_FALSE(conn.in_slow_start());
}

TEST(CubicTest, ConcaveRecoveryTowardWmax) {
  TcpConnection conn(cubic_config(), clean_path(), sim::Rng(2));
  establish_loss_at(conn, 160);
  const std::uint32_t after_loss = conn.cwnd();
  // CA rounds: cwnd climbs back toward W_max = ~160 and slows near it.
  std::uint32_t prev = after_loss;
  std::uint32_t max_seen = after_loss;
  for (int round = 0; round < 200; ++round) {
    conn.transfer(conn.cwnd() * 1460ull);  // one clean CA round
    EXPECT_GE(conn.cwnd(), prev);          // monotone while clean
    prev = conn.cwnd();
    max_seen = std::max(max_seen, conn.cwnd());
  }
  EXPECT_GT(max_seen, after_loss);
  EXPECT_GE(max_seen + 5, 160u) << "should re-approach W_max";
}

TEST(CubicTest, GrowthBoundedPerRound) {
  TcpConnection conn(cubic_config(), clean_path(), sim::Rng(3));
  establish_loss_at(conn, 160);
  std::uint32_t prev = conn.cwnd();
  for (int round = 0; round < 400; ++round) {
    conn.transfer(conn.cwnd() * 1460ull);
    EXPECT_LE(conn.cwnd(), static_cast<std::uint32_t>(prev * 1.5) + 1)
        << "round " << round;
    prev = conn.cwnd();
  }
}

TEST(CubicTest, EventuallyProbesBeyondWmax) {
  TcpConnection conn(cubic_config(), clean_path(), sim::Rng(4));
  establish_loss_at(conn, 160);
  for (int round = 0; round < 600 && conn.cwnd() <= 170; ++round) {
    conn.transfer(conn.cwnd() * 1460ull);
  }
  EXPECT_GT(conn.cwnd(), 170u) << "convex region must probe past W_max";
}

TEST(CubicTest, FriendlyRegionKeepsUpWithRenoEarly) {
  // Right after the backoff, CUBIC must not be slower than the Reno
  // equivalent (the RFC 8312 TCP-friendly region).
  TcpConnection cubic(cubic_config(), clean_path(), sim::Rng(5));
  TcpConnection reno(TcpConfig{}, clean_path(), sim::Rng(5));
  establish_loss_at(cubic, 160);
  establish_loss_at(reno, 160);
  const std::uint32_t cubic_start = cubic.cwnd();
  const std::uint32_t reno_start = reno.cwnd();
  for (int round = 0; round < 30; ++round) {
    cubic.transfer(cubic.cwnd() * 1460ull);
    reno.transfer(reno.cwnd() * 1460ull);
  }
  // Both grew; cubic's absolute gain is at least ~half reno's (it starts
  // from a higher floor: beta = 0.7 vs reno's 0.5).
  EXPECT_GT(cubic.cwnd(), cubic_start);
  EXPECT_GE(cubic.cwnd() - cubic_start, (reno.cwnd() - reno_start) / 2);
  EXPECT_GT(cubic.cwnd(), reno.cwnd());  // higher floor + curve
}

TEST(CubicTest, SlowStartUnchanged) {
  TcpConnection conn(cubic_config(), clean_path(), sim::Rng(6));
  EXPECT_EQ(conn.cwnd(), 10u);
  conn.transfer(10 * 1460);
  EXPECT_EQ(conn.cwnd(), 20u);  // doubling still applies before any loss
}

TEST(CubicTest, DeterministicForSeed) {
  PathConfig path = clean_path();
  path.random_loss = 0.01;
  TcpConnection a(cubic_config(), path, sim::Rng(77));
  TcpConnection b(cubic_config(), path, sim::Rng(77));
  for (int i = 0; i < 20; ++i) {
    const TransferResult ra = a.transfer(300'000);
    const TransferResult rb = b.transfer(300'000);
    ASSERT_DOUBLE_EQ(ra.duration_ms, rb.duration_ms);
    ASSERT_EQ(a.cwnd(), b.cwnd());
  }
}

}  // namespace
}  // namespace vstream::net
