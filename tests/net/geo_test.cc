#include "net/geo.h"

#include <gtest/gtest.h>

namespace vstream::net {
namespace {

TEST(GeoTest, HaversineZeroForSamePoint) {
  const GeoPoint p{40.71, -74.01};
  EXPECT_NEAR(haversine_km(p, p), 0.0, 1e-9);
}

TEST(GeoTest, HaversineSymmetric) {
  const GeoPoint a{40.71, -74.01};
  const GeoPoint b{34.05, -118.24};
  EXPECT_NEAR(haversine_km(a, b), haversine_km(b, a), 1e-9);
}

TEST(GeoTest, KnownDistanceNycToLa) {
  // Great-circle NYC <-> LA is ~3,940 km.
  const GeoPoint nyc{40.71, -74.01};
  const GeoPoint la{34.05, -118.24};
  EXPECT_NEAR(haversine_km(nyc, la), 3'940.0, 60.0);
}

TEST(GeoTest, KnownDistanceNycToLondon) {
  const GeoPoint nyc{40.71, -74.01};
  const GeoPoint london{51.51, -0.13};
  EXPECT_NEAR(haversine_km(nyc, london), 5'570.0, 80.0);
}

TEST(GeoTest, AntipodalIsHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), 20'015.0, 30.0);
}

TEST(GeoTest, PropagationRttScalesWithDistance) {
  EXPECT_DOUBLE_EQ(propagation_rtt_ms(0.0), 0.0);
  EXPECT_NEAR(propagation_rtt_ms(100.0), 1.0, 1e-9);
  EXPECT_NEAR(propagation_rtt_ms(4'000.0), 40.0, 1e-9);
}

TEST(GeoTest, CityTablesNonEmptyAndLabelled) {
  ASSERT_FALSE(us_cities().empty());
  ASSERT_FALSE(world_cities().empty());
  for (const City& c : us_cities()) {
    EXPECT_EQ(c.country, "US");
    EXPECT_FALSE(c.name.empty());
  }
  for (const City& c : world_cities()) {
    EXPECT_NE(c.country, "US");
  }
}

TEST(GeoTest, CityCoordinatesPlausible) {
  for (const City& c : us_cities()) {
    EXPECT_GT(c.location.lat_deg, 24.0);   // south of Miami
    EXPECT_LT(c.location.lat_deg, 50.0);   // north of Seattle
    EXPECT_LT(c.location.lon_deg, -66.0);  // east coast
    EXPECT_GT(c.location.lon_deg, -125.0); // west coast
  }
}

}  // namespace
}  // namespace vstream::net
