#include "net/tcp_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vstream::net {
namespace {

PathConfig clean_path() {
  PathConfig p;
  p.base_rtt_ms = 40.0;
  p.jitter_median_ms = 0.01;
  p.jitter_sigma = 0.01;
  p.random_loss = 0.0;
  p.spike_prob_per_round = 0.0;
  p.bottleneck_kbps = 1'000'000.0;  // effectively unconstrained
  return p;
}

TEST(TcpModelTest, ZeroByteTransferIsNoop) {
  TcpConnection conn(TcpConfig{}, clean_path(), sim::Rng(1));
  const TransferResult r = conn.transfer(0);
  EXPECT_EQ(r.segments, 0u);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_DOUBLE_EQ(r.duration_ms, 0.0);
}

TEST(TcpModelTest, SmallTransferTakesOneRound) {
  TcpConfig config;
  config.initial_window = 10;
  TcpConnection conn(config, clean_path(), sim::Rng(1));
  // 5 segments fit in IW10.
  const TransferResult r = conn.transfer(5 * 1460);
  EXPECT_EQ(r.segments, 5u);
  EXPECT_EQ(r.rounds, 1u);
  EXPECT_NEAR(r.duration_ms, 40.0, 2.0);
  // Last byte trails the first by exactly the serialization tail.
  EXPECT_NEAR(r.duration_ms - r.first_byte_ms, 5.0 * 1460 * 8 / 1'000'000.0,
              1e-9);
}

TEST(TcpModelTest, SegmentsMatchBytes) {
  TcpConnection conn(TcpConfig{}, clean_path(), sim::Rng(1));
  EXPECT_EQ(conn.transfer(1).segments, 1u);          // partial segment
  EXPECT_EQ(conn.transfer(1460).segments, 1u);       // exact
  EXPECT_EQ(conn.transfer(1461).segments, 2u);       // spill
  EXPECT_EQ(conn.transfer(146'000).segments, 100u);
}

TEST(TcpModelTest, SlowStartDoublesWindow) {
  TcpConfig config;
  config.initial_window = 10;
  TcpConnection conn(config, clean_path(), sim::Rng(1));
  EXPECT_EQ(conn.cwnd(), 10u);
  EXPECT_TRUE(conn.in_slow_start());
  conn.transfer(10 * 1460);  // one clean round
  EXPECT_EQ(conn.cwnd(), 20u);
  conn.transfer(20 * 1460);
  EXPECT_EQ(conn.cwnd(), 40u);
}

TEST(TcpModelTest, LossHalvesWindowAndExitsSlowStart) {
  PathConfig path = clean_path();
  path.random_loss = 1.0;  // force loss on every segment of the next round
  TcpConfig config;
  config.initial_window = 16;
  TcpConnection conn(config, path, sim::Rng(1));
  conn.mutable_path().set_random_loss(1.0);
  conn.transfer(16 * 1460);
  EXPECT_FALSE(conn.in_slow_start());
  EXPECT_EQ(conn.cwnd(), 8u);
}

TEST(TcpModelTest, RetransmissionsCounted) {
  PathConfig path = clean_path();
  path.random_loss = 0.5;
  TcpConnection conn(TcpConfig{}, path, sim::Rng(42));
  const TransferResult r = conn.transfer(200 * 1460);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_EQ(conn.info().total_retrans, r.retransmissions);
}

TEST(TcpModelTest, CumulativeCountersMonotone) {
  PathConfig path = clean_path();
  path.random_loss = 0.02;
  TcpConnection conn(TcpConfig{}, path, sim::Rng(9));
  std::uint64_t prev_retrans = 0, prev_segments = 0;
  for (int i = 0; i < 20; ++i) {
    conn.transfer(50 * 1460);
    const TcpInfo info = conn.info();
    EXPECT_GE(info.total_retrans, prev_retrans);
    EXPECT_GT(info.segments_out, prev_segments);
    prev_retrans = info.total_retrans;
    prev_segments = info.segments_out;
  }
}

TEST(TcpModelTest, SrttConvergesToPathRtt) {
  TcpConnection conn(TcpConfig{}, clean_path(), sim::Rng(3));
  for (int i = 0; i < 50; ++i) conn.transfer(10 * 1460);
  EXPECT_NEAR(conn.info().srtt_ms, 40.0, 4.0);
}

TEST(TcpModelTest, FirstRttInitializesSrttExactly) {
  TcpConnection conn(TcpConfig{}, clean_path(), sim::Rng(3));
  conn.transfer(1460);
  const TcpInfo info = conn.info();
  // RFC 6298: srtt = R, rttvar = R/2 after the first measurement.
  EXPECT_NEAR(info.rttvar_ms, info.srtt_ms / 2.0, 1e-6);
}

TEST(TcpModelTest, RtoRespectsFloor) {
  TcpConnection conn(TcpConfig{}, clean_path(), sim::Rng(3));
  conn.transfer(10 * 1460);
  EXPECT_GE(conn.rto_ms(), 200.0);
}

TEST(TcpModelTest, RtoUsesVariance) {
  TcpConfig config;
  config.min_rto_ms = 0.0;
  TcpConnection conn(config, clean_path(), sim::Rng(3));
  conn.transfer(1460);
  const TcpInfo info = conn.info();
  EXPECT_NEAR(conn.rto_ms(), info.srtt_ms + 4.0 * info.rttvar_ms, 1e-9);
}

TEST(TcpModelTest, InfoSnapshotConsistent) {
  TcpConnection conn(TcpConfig{}, clean_path(), sim::Rng(5));
  conn.transfer(30 * 1460);
  const TcpInfo info = conn.info();
  EXPECT_EQ(info.mss_bytes, 1460u);
  EXPECT_EQ(info.cwnd_segments, conn.cwnd());
  EXPECT_EQ(info.in_slow_start, conn.in_slow_start());
  EXPECT_GT(info.bytes_acked, 0u);
}

TEST(TcpModelTest, ThroughputEstimateFormula) {
  TcpInfo info;
  info.mss_bytes = 1460;
  info.cwnd_segments = 20;
  info.srtt_ms = 50.0;
  // Eq. 3: MSS * CWND / SRTT = 1460 * 20 * 8 bits / 50 ms = 4672 kbps.
  EXPECT_NEAR(info.throughput_estimate_kbps(), 4'672.0, 1e-6);
  info.srtt_ms = 0.0;
  EXPECT_DOUBLE_EQ(info.throughput_estimate_kbps(), 0.0);
}

TEST(TcpModelTest, RoundSamplesCoverTransfer) {
  TcpConnection conn(TcpConfig{}, clean_path(), sim::Rng(7));
  std::vector<RoundSample> rounds;
  const TransferResult r = conn.transfer(100 * 1460, &rounds);
  ASSERT_EQ(rounds.size(), r.rounds);
  // Samples are time ordered and end at the transfer duration.
  for (std::size_t i = 1; i < rounds.size(); ++i) {
    EXPECT_GE(rounds[i].at_ms, rounds[i - 1].at_ms);
  }
  EXPECT_NEAR(rounds.back().at_ms, r.duration_ms, 1e-9);
}

TEST(TcpModelTest, BottleneckCapsThroughput) {
  PathConfig path = clean_path();
  path.bottleneck_kbps = 4'000.0;  // 4 Mbps
  TcpConnection conn(TcpConfig{}, path, sim::Rng(11));
  const std::uint64_t bytes = 2'000'000;  // 16 Mbit
  const TransferResult r = conn.transfer(bytes);
  const double tp_kbps = static_cast<double>(bytes) * 8.0 / r.duration_ms;
  EXPECT_LE(tp_kbps, 4'400.0);  // within ~10% of the bottleneck
}

TEST(TcpModelTest, PacingSuppressesOvershootLosses) {
  // §4.2-3 take-away: pacing avoids the end-of-slow-start burst (modelled
  // as clamping to the pipe instead of overflowing the bottleneck buffer).
  PathConfig path = clean_path();
  path.bottleneck_kbps = 3'000.0;
  path.max_queue_ms = 60.0;

  TcpConfig paced;
  paced.pacing = true;
  TcpConfig unpaced;
  unpaced.pacing = false;

  std::uint64_t paced_retx = 0, unpaced_retx = 0;
  for (int trial = 0; trial < 30; ++trial) {
    TcpConnection a(paced, path, sim::Rng(100 + trial));
    TcpConnection b(unpaced, path, sim::Rng(100 + trial));
    paced_retx += a.transfer(500 * 1460).retransmissions;
    unpaced_retx += b.transfer(500 * 1460).retransmissions;
  }
  EXPECT_EQ(paced_retx, 0u);
  EXPECT_GT(unpaced_retx, 0u);
}

TEST(TcpModelTest, IdlePastRtoResetsWindowKeepsSsthresh) {
  // RFC 2861 congestion-window validation.
  PathConfig path = clean_path();
  TcpConnection conn(TcpConfig{}, path, sim::Rng(55));
  for (int i = 0; i < 5; ++i) conn.transfer(100 * 1460);
  ASSERT_GT(conn.cwnd(), 100u);
  const std::uint32_t ssthresh_before = conn.info().ssthresh_segments;
  conn.idle(50.0);  // shorter than RTO: no reset
  EXPECT_GT(conn.cwnd(), 100u);
  conn.idle(10'000.0);  // way past RTO: reset to IW
  EXPECT_EQ(conn.cwnd(), 10u);
  EXPECT_EQ(conn.info().ssthresh_segments, ssthresh_before);
}

TEST(TcpModelTest, FirstChunkSeesMoreRetransmissions) {
  // Fig. 15: slow start's doubling overshoots the pipe on the first chunk;
  // later chunks ride congestion avoidance with only trickle losses.
  PathConfig path = clean_path();
  path.bottleneck_kbps = 5'000.0;
  path.random_loss = 0.001;
  path.max_queue_ms = 60.0;

  double first = 0.0, later = 0.0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    TcpConnection conn(TcpConfig{}, path, sim::Rng(t));
    const std::uint64_t chunk = 1'500'000;
    const TransferResult c0 = conn.transfer(chunk);
    first += static_cast<double>(c0.retransmissions) / c0.segments;
    for (int c = 1; c < 5; ++c) {
      const TransferResult ci = conn.transfer(chunk);
      later += static_cast<double>(ci.retransmissions) / ci.segments / 4.0;
    }
  }
  EXPECT_GT(first / trials, later / trials);
}

TEST(TcpModelTest, DurationPositiveAndFirstByteLeqDuration) {
  PathConfig path = clean_path();
  path.random_loss = 0.05;
  TcpConnection conn(TcpConfig{}, path, sim::Rng(21));
  for (int i = 0; i < 50; ++i) {
    const TransferResult r = conn.transfer(20'000 + 1'000 * i);
    EXPECT_GT(r.duration_ms, 0.0);
    EXPECT_GT(r.first_byte_ms, 0.0);
    EXPECT_LE(r.first_byte_ms, r.duration_ms + 1e-9);
  }
}

// Parameterized determinism sweep: same seed -> identical outcome across
// transfer sizes and loss rates.
class TcpDeterminismTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(TcpDeterminismTest, SameSeedSameResult) {
  const auto [bytes, loss] = GetParam();
  PathConfig path = clean_path();
  path.random_loss = loss;
  TcpConnection a(TcpConfig{}, path, sim::Rng(77));
  TcpConnection b(TcpConfig{}, path, sim::Rng(77));
  const TransferResult ra = a.transfer(bytes);
  const TransferResult rb = b.transfer(bytes);
  EXPECT_DOUBLE_EQ(ra.duration_ms, rb.duration_ms);
  EXPECT_EQ(ra.retransmissions, rb.retransmissions);
  EXPECT_EQ(ra.rounds, rb.rounds);
  EXPECT_DOUBLE_EQ(a.info().srtt_ms, b.info().srtt_ms);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TcpDeterminismTest,
    ::testing::Combine(::testing::Values(1'460ull, 146'000ull, 1'460'000ull),
                       ::testing::Values(0.0, 0.01, 0.2)));

}  // namespace
}  // namespace vstream::net
