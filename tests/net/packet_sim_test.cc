#include "net/packet_sim.h"

#include <gtest/gtest.h>

#include "net/tcp_model.h"

namespace vstream::net {
namespace {

PacketSimConfig wide_pipe() {
  PacketSimConfig c;
  c.bottleneck_kbps = 1'000'000.0;
  c.one_way_prop_ms = 20.0;
  c.max_queue_ms = 100.0;
  return c;
}

TEST(PacketSimTest, ZeroBytesIsNoop) {
  const PacketSimResult r = simulate_packet_transfer(0, wide_pipe());
  EXPECT_EQ(r.segments, 0u);
  EXPECT_DOUBLE_EQ(r.duration_ms, 0.0);
}

TEST(PacketSimTest, SingleWindowTransferTakesOneRtt) {
  // 5 segments fit in IW10: request up (20 ms) + data down (20 ms + tiny
  // serialization).
  const PacketSimResult r = simulate_packet_transfer(5 * 1460, wide_pipe());
  EXPECT_EQ(r.segments, 5u);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_NEAR(r.first_byte_ms, 40.0, 1.0);
  EXPECT_NEAR(r.duration_ms, 40.0, 2.0);
}

TEST(PacketSimTest, CleanTransferHasNoLosses) {
  PacketSimConfig c = wide_pipe();
  const PacketSimResult r = simulate_packet_transfer(2'000'000, c);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.timeouts, 0u);
  EXPECT_GT(r.duration_ms, 0.0);
}

TEST(PacketSimTest, ThroughputBoundedByBottleneck) {
  PacketSimConfig c;
  c.bottleneck_kbps = 8'000.0;
  c.one_way_prop_ms = 15.0;
  c.max_queue_ms = 100.0;
  const std::uint64_t bytes = 4'000'000;  // 32 Mbit -> >= 4 s at 8 Mbps
  const PacketSimResult r = simulate_packet_transfer(bytes, c);
  const double tp_kbps = static_cast<double>(bytes) * 8.0 / r.duration_ms;
  EXPECT_LE(tp_kbps, 8'100.0);
  EXPECT_GE(tp_kbps, 5'000.0);  // and reasonably efficient
}

TEST(PacketSimTest, SmallBufferForcesDropTailLosses) {
  PacketSimConfig c;
  c.bottleneck_kbps = 4'000.0;
  c.one_way_prop_ms = 25.0;
  c.max_queue_ms = 20.0;  // shallow buffer: slow start must overflow
  const PacketSimResult r = simulate_packet_transfer(1'500'000, c);
  EXPECT_GT(r.retransmissions, 0u);
  // Recovery still completes the transfer.
  EXPECT_GT(r.duration_ms, 0.0);
}

TEST(PacketSimTest, DeterministicByConstruction) {
  PacketSimConfig c;
  c.bottleneck_kbps = 6'000.0;
  c.max_queue_ms = 40.0;
  const PacketSimResult a = simulate_packet_transfer(2'000'000, c);
  const PacketSimResult b = simulate_packet_transfer(2'000'000, c);
  EXPECT_DOUBLE_EQ(a.duration_ms, b.duration_ms);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
}

TEST(PacketSimTest, DeepEnoughBufferAbsorbsAShortTransfer) {
  // A transfer smaller than the pipe (BDP + buffer) never overflows when
  // the buffer is deep; a shallow buffer drops parts of the slow-start
  // burst.
  PacketSimConfig shallow;
  shallow.bottleneck_kbps = 6'000.0;
  shallow.one_way_prop_ms = 15.0;
  shallow.max_queue_ms = 10.0;
  PacketSimConfig deep = shallow;
  deep.max_queue_ms = 400.0;  // pipe ~220 packets > the 206-packet transfer
  const PacketSimResult a = simulate_packet_transfer(300'000, shallow);
  const PacketSimResult b = simulate_packet_transfer(300'000, deep);
  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_EQ(b.retransmissions, 0u);
}

// The validation property this module exists for: the round-based model's
// transfer duration stays within a factor of the packet-level reference
// across a broad parameter grid (clean paths: no random loss/jitter, same
// drop-tail physics).
class ModelAgreementTest
    : public ::testing::TestWithParam<
          std::tuple<double, double, double, std::uint64_t>> {};

TEST_P(ModelAgreementTest, RoundModelWithinFactorOfPacketLevel) {
  const auto [bw_kbps, prop_ms, queue_ms, bytes] = GetParam();

  PacketSimConfig packet;
  packet.bottleneck_kbps = bw_kbps;
  packet.one_way_prop_ms = prop_ms;
  packet.max_queue_ms = queue_ms;
  const PacketSimResult reference = simulate_packet_transfer(bytes, packet);

  PathConfig path;
  path.bottleneck_kbps = bw_kbps;
  path.base_rtt_ms = 2.0 * prop_ms;
  path.max_queue_ms = queue_ms;
  path.jitter_median_ms = 0.01;
  path.jitter_sigma = 0.01;
  path.random_loss = 0.0;
  path.spike_prob_per_round = 0.0;
  TcpConfig tcp;
  tcp.hystart_success_prob = 0.0;  // packet reference has no HyStart
  TcpConnection conn(tcp, path, sim::Rng(1));
  const TransferResult model = conn.transfer(bytes);

  ASSERT_GT(reference.duration_ms, 0.0);
  const double ratio = model.duration_ms / reference.duration_ms;
  EXPECT_GT(ratio, 0.4) << "round model too fast vs packet-level";
  EXPECT_LT(ratio, 2.5) << "round model too slow vs packet-level";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelAgreementTest,
    ::testing::Combine(::testing::Values(3'000.0, 12'000.0, 50'000.0),
                       ::testing::Values(10.0, 40.0),
                       ::testing::Values(50.0, 150.0),
                       ::testing::Values(450'000ull, 1'875'000ull)));

}  // namespace
}  // namespace vstream::net
