#include "workload/session_generator.h"

#include <gtest/gtest.h>

#include "workload/scenario.h"

namespace vstream::workload {
namespace {

struct Fixture {
  sim::Rng rng{1};
  CatalogConfig catalog_config{.video_count = 1'000};
  PopulationConfig population_config{.prefix_count = 200};
  VideoCatalog catalog{catalog_config, rng};
  Population population{population_config, rng};
};

TEST(SessionGeneratorTest, IdsAreSequentialAndUnique) {
  Fixture f;
  SessionGenerator gen({}, f.catalog, f.population);
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const SessionSpec spec = gen.next(f.rng);
    EXPECT_GT(spec.session_id, prev);
    prev = spec.session_id;
  }
}

TEST(SessionGeneratorTest, ArrivalsMonotone) {
  Fixture f;
  SessionGenerator gen({}, f.catalog, f.population);
  double prev = -1.0;
  for (int i = 0; i < 200; ++i) {
    const SessionSpec spec = gen.next(f.rng);
    EXPECT_GT(spec.start_time_ms, prev);
    prev = spec.start_time_ms;
  }
}

TEST(SessionGeneratorTest, MeanInterarrivalRoughlyConfigured) {
  Fixture f;
  SessionGeneratorConfig config;
  config.mean_interarrival_ms = 25.0;
  SessionGenerator gen(config, f.catalog, f.population);
  double last = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) last = gen.next(f.rng).start_time_ms;
  EXPECT_NEAR(last / n, 25.0, 1.0);
}

TEST(SessionGeneratorTest, ChunkCountWithinVideoBounds) {
  Fixture f;
  SessionGenerator gen({}, f.catalog, f.population);
  for (int i = 0; i < 2'000; ++i) {
    const SessionSpec spec = gen.next(f.rng);
    const VideoMeta& meta = f.catalog.video(spec.video_id);
    EXPECT_GE(spec.chunk_count, 1u);
    EXPECT_LE(spec.chunk_count, meta.chunk_count);
    EXPECT_EQ(spec.video_rank, f.catalog.rank_of(spec.video_id));
    EXPECT_DOUBLE_EQ(spec.video_duration_s, meta.duration_s);
  }
}

TEST(SessionGeneratorTest, AbandonmentProducesPartialSessions) {
  Fixture f;
  SessionGeneratorConfig config;
  config.abandon_probability = 1.0;  // everyone abandons
  SessionGenerator gen(config, f.catalog, f.population);
  int partial = 0, total = 0;
  for (int i = 0; i < 2'000; ++i) {
    const SessionSpec spec = gen.next(f.rng);
    const VideoMeta& meta = f.catalog.video(spec.video_id);
    if (meta.chunk_count >= 4) {  // short videos can't show partiality
      ++total;
      if (spec.chunk_count < meta.chunk_count) ++partial;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(partial, total / 2);
}

TEST(SessionGeneratorTest, NoAbandonmentWatchesFully) {
  Fixture f;
  SessionGeneratorConfig config;
  config.abandon_probability = 0.0;
  SessionGenerator gen(config, f.catalog, f.population);
  for (int i = 0; i < 500; ++i) {
    const SessionSpec spec = gen.next(f.rng);
    EXPECT_EQ(spec.chunk_count, f.catalog.video(spec.video_id).chunk_count);
  }
}

TEST(ScenarioTest, PresetsAreConsistent) {
  const Scenario paper = paper_scenario();
  EXPECT_GT(paper.session_count, 0u);
  EXPECT_GT(paper.catalog.video_count, 0u);
  EXPECT_GT(paper.fleet.pop_count, 0u);
  EXPECT_DOUBLE_EQ(paper.tcp_sample_interval_ms, 500.0);  // §2.1

  const Scenario test = test_scenario();
  EXPECT_LT(test.session_count, paper.session_count);
  EXPECT_LT(test.catalog.video_count, paper.catalog.video_count);
}

}  // namespace
}  // namespace vstream::workload
