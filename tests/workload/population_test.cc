#include "workload/population.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace vstream::workload {
namespace {

Population make_population(std::size_t prefixes = 2'000, std::uint64_t seed = 1) {
  PopulationConfig config;
  config.prefix_count = prefixes;
  sim::Rng rng(seed);
  return Population(config, rng);
}

TEST(PopulationTest, PrefixCountRespected) {
  const Population pop = make_population(500);
  EXPECT_EQ(pop.prefixes().size(), 500u);
}

TEST(PopulationTest, PrefixesAreUniqueSlash24s) {
  const Population pop = make_population(3'000);
  std::set<net::Prefix24> seen;
  for (const PrefixProfile& p : pop.prefixes()) {
    EXPECT_EQ(p.prefix & 0xFFu, 0u) << "host bits must be zero";
    EXPECT_TRUE(seen.insert(p.prefix).second) << "duplicate prefix";
  }
}

TEST(PopulationTest, UsShareMatchesConfig) {
  // §3: >93% of clients in North America.
  const Population pop = make_population(5'000, 2);
  std::size_t us = 0;
  for (const PrefixProfile& p : pop.prefixes()) {
    if (p.country == "US") ++us;
  }
  EXPECT_NEAR(us / 5'000.0, 0.93, 0.02);
}

TEST(PopulationTest, AccessTypesConsistentWithGeography) {
  const Population pop = make_population(5'000, 3);
  for (const PrefixProfile& p : pop.prefixes()) {
    if (p.country == "US") {
      EXPECT_NE(p.access, net::AccessType::kInternational);
    } else {
      EXPECT_EQ(p.access, net::AccessType::kInternational);
    }
    EXPECT_FALSE(p.org.empty());
    EXPECT_FALSE(p.city.empty());
    EXPECT_GE(p.bandwidth_kbps, 1'200.0);
  }
}

TEST(PopulationTest, EnterpriseShareRoughlyConfigured) {
  const Population pop = make_population(5'000, 4);
  std::size_t enterprise = 0, us = 0;
  for (const PrefixProfile& p : pop.prefixes()) {
    if (p.country != "US") continue;
    ++us;
    if (p.access == net::AccessType::kEnterprise) ++enterprise;
  }
  ASSERT_GT(us, 0u);
  EXPECT_NEAR(enterprise / static_cast<double>(us), 0.12, 0.02);
}

TEST(PopulationTest, SampleIpBelongsToPrefix) {
  const Population pop = make_population(100, 5);
  sim::Rng rng(6);
  for (int i = 0; i < 1'000; ++i) {
    const ClientProfile c = pop.sample(rng);
    ASSERT_NE(c.prefix, nullptr);
    EXPECT_EQ(net::prefix24_of(c.ip), c.prefix->prefix);
    const std::uint32_t host = c.ip & 0xFFu;
    EXPECT_GE(host, 1u);
    EXPECT_LE(host, 254u);
  }
}

TEST(PopulationTest, BrowserMixMatchesPaper) {
  // §3: 43% Chrome, 37% Firefox, 13% IE, 6% Safari, ~2% other.
  const Population pop = make_population(200, 7);
  sim::Rng rng(8);
  std::map<client::Browser, int> counts;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) ++counts[pop.sample(rng).ua.browser];
  EXPECT_NEAR(counts[client::Browser::kChrome] / static_cast<double>(n), 0.43, 0.02);
  EXPECT_NEAR(counts[client::Browser::kFirefox] / static_cast<double>(n), 0.37, 0.02);
  double other = 0.0;
  for (const client::Browser b :
       {client::Browser::kOpera, client::Browser::kYandex,
        client::Browser::kVivaldi, client::Browser::kSeaMonkey}) {
    other += counts[b];
  }
  EXPECT_NEAR(other / n, 0.02, 0.01);
}

TEST(PopulationTest, OsMixMatchesPaper) {
  // §3: 88.5% Windows, 9.4% OS X.  (Safari platform correction shifts a
  // little mass from Windows to Mac.)
  const Population pop = make_population(200, 9);
  sim::Rng rng(10);
  int windows = 0, mac = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const client::Os os = pop.sample(rng).ua.os;
    if (os == client::Os::kWindows) ++windows;
    if (os == client::Os::kMacOs) ++mac;
  }
  EXPECT_NEAR(windows / static_cast<double>(n), 0.885, 0.04);
  EXPECT_NEAR(mac / static_cast<double>(n), 0.094, 0.04);
}

TEST(PopulationTest, PlatformCoherence) {
  // IE/Edge never appear off Windows.
  const Population pop = make_population(200, 11);
  sim::Rng rng(12);
  for (int i = 0; i < 20'000; ++i) {
    const client::UserAgent ua = pop.sample(rng).ua;
    if (ua.browser == client::Browser::kInternetExplorer ||
        ua.browser == client::Browser::kEdge) {
      EXPECT_EQ(ua.os, client::Os::kWindows);
    }
  }
}

TEST(PopulationTest, SafariOnWindowsExistsButRare) {
  // The pathological Table 5 / Fig. 22 case must exist in the population.
  const Population pop = make_population(200, 13);
  sim::Rng rng(14);
  int safari_win = 0, safari = 0;
  for (int i = 0; i < 100'000; ++i) {
    const client::UserAgent ua = pop.sample(rng).ua;
    if (ua.browser == client::Browser::kSafari) {
      ++safari;
      if (ua.os == client::Os::kWindows) ++safari_win;
    }
  }
  EXPECT_GT(safari_win, 0);
  EXPECT_LT(safari_win, safari);  // most Safari is on Mac
}

TEST(PopulationTest, ProxyShareMatchesConfig) {
  PopulationConfig config;
  config.prefix_count = 200;
  config.proxy_fraction = 0.10;
  sim::Rng seed_rng(15);
  const Population pop(config, seed_rng);
  sim::Rng rng(16);
  int proxied = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (pop.sample(rng).behind_proxy) ++proxied;
  }
  EXPECT_NEAR(proxied / static_cast<double>(n), 0.10, 0.01);
}

TEST(PopulationTest, CpuLoadBounded) {
  const Population pop = make_population(100, 17);
  sim::Rng rng(18);
  for (int i = 0; i < 10'000; ++i) {
    const double load = pop.sample(rng).cpu_load;
    EXPECT_GE(load, 0.0);
    EXPECT_LE(load, 0.98);
  }
}

}  // namespace
}  // namespace vstream::workload
