#include "workload/catalog.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vstream::workload {
namespace {

TEST(CatalogTest, SizesAndIds) {
  CatalogConfig config;
  config.video_count = 500;
  sim::Rng rng(1);
  const VideoCatalog catalog(config, rng);
  EXPECT_EQ(catalog.size(), 500u);
  for (std::uint32_t id = 0; id < 500; ++id) {
    EXPECT_EQ(catalog.video(id).id, id);
    EXPECT_EQ(catalog.rank_of(id), id + 1u);
  }
}

TEST(CatalogTest, DurationsClamped) {
  CatalogConfig config;
  config.video_count = 5'000;
  config.min_duration_s = 10.0;
  config.max_duration_s = 600.0;
  sim::Rng rng(2);
  const VideoCatalog catalog(config, rng);
  for (std::uint32_t id = 0; id < catalog.size(); ++id) {
    const VideoMeta& v = catalog.video(id);
    EXPECT_GE(v.duration_s, 10.0);
    EXPECT_LE(v.duration_s, 600.0);
  }
}

TEST(CatalogTest, ChunkCountCoversDuration) {
  CatalogConfig config;
  config.video_count = 2'000;
  sim::Rng rng(3);
  const VideoCatalog catalog(config, rng);
  for (std::uint32_t id = 0; id < catalog.size(); ++id) {
    const VideoMeta& v = catalog.video(id);
    EXPECT_GE(v.chunk_count * config.chunk_duration_s, v.duration_s);
    EXPECT_LT((v.chunk_count - 1) * config.chunk_duration_s, v.duration_s);
  }
}

TEST(CatalogTest, DefaultSkewMatchesPaper) {
  // §3 / Fig. 3b: top 10% of videos -> ~66% of playbacks.
  CatalogConfig config;
  config.video_count = 5'000;
  sim::Rng rng(4);
  const VideoCatalog catalog(config, rng);
  EXPECT_NEAR(catalog.popularity().share_of_top(500), 0.66, 0.02);
}

TEST(CatalogTest, ExplicitAlphaRespected) {
  CatalogConfig config;
  config.video_count = 1'000;
  config.zipf_alpha = 1.0;
  sim::Rng rng(5);
  const VideoCatalog catalog(config, rng);
  EXPECT_DOUBLE_EQ(catalog.popularity().alpha(), 1.0);
}

TEST(CatalogTest, SampleSkewedTowardHead) {
  CatalogConfig config;
  config.video_count = 1'000;
  sim::Rng rng(6);
  const VideoCatalog catalog(config, rng);
  std::size_t head_draws = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    if (catalog.rank_of(catalog.sample_video(rng)) <= 100) ++head_draws;
  }
  EXPECT_NEAR(head_draws / static_cast<double>(n), 0.66, 0.03);
}

TEST(CatalogTest, DurationMedianRoughlyConfigured) {
  CatalogConfig config;
  config.video_count = 20'000;
  config.duration_median_s = 120.0;
  sim::Rng rng(7);
  const VideoCatalog catalog(config, rng);
  std::vector<double> durations;
  durations.reserve(catalog.size());
  for (std::uint32_t id = 0; id < catalog.size(); ++id) {
    durations.push_back(catalog.video(id).duration_s);
  }
  std::nth_element(durations.begin(), durations.begin() + durations.size() / 2,
                   durations.end());
  EXPECT_NEAR(durations[durations.size() / 2], 120.0, 8.0);
}

TEST(CatalogTest, DeterministicForSeed) {
  CatalogConfig config;
  config.video_count = 300;
  sim::Rng rng_a(9), rng_b(9);
  const VideoCatalog a(config, rng_a), b(config, rng_b);
  for (std::uint32_t id = 0; id < 300; ++id) {
    EXPECT_DOUBLE_EQ(a.video(id).duration_s, b.video(id).duration_s);
  }
}

}  // namespace
}  // namespace vstream::workload
