#include "client/playback_buffer.h"

#include <gtest/gtest.h>

#include "sim/time.h"

namespace vstream::client {
namespace {

PlaybackBufferConfig config(double startup = 2.0, double resume = 2.0,
                            double max = 60.0) {
  return PlaybackBufferConfig{startup, resume, max};
}

TEST(PlaybackBufferTest, InitialState) {
  PlaybackBuffer buffer(config());
  EXPECT_DOUBLE_EQ(buffer.level_s(), 0.0);
  EXPECT_FALSE(buffer.playing());
  EXPECT_FALSE(buffer.started());
}

TEST(PlaybackBufferTest, PlaybackStartsAtThreshold) {
  PlaybackBuffer buffer(config(5.0));
  buffer.add_chunk(4.0);
  EXPECT_FALSE(buffer.playing());
  buffer.add_chunk(1.5);
  EXPECT_TRUE(buffer.playing());
  EXPECT_TRUE(buffer.started());
}

TEST(PlaybackBufferTest, StartupDelayIsWallClockAtStart) {
  PlaybackBuffer buffer(config(2.0));
  buffer.advance(sim::seconds(1.2));  // download time of the first chunk
  buffer.add_chunk(6.0);
  EXPECT_TRUE(buffer.started());
  EXPECT_NEAR(buffer.startup_ms(), 1'200.0, 1e-9);
}

TEST(PlaybackBufferTest, WaitingBeforeStartIsNotRebuffering) {
  PlaybackBuffer buffer(config());
  const DrainResult r = buffer.advance(sim::seconds(3.0));
  EXPECT_DOUBLE_EQ(r.stalled_ms, 0.0);
  EXPECT_EQ(r.stall_events, 0u);
}

TEST(PlaybackBufferTest, PlayingDrainsBuffer) {
  PlaybackBuffer buffer(config(2.0));
  buffer.add_chunk(6.0);
  ASSERT_TRUE(buffer.playing());
  buffer.advance(sim::seconds(2.5));
  EXPECT_NEAR(buffer.level_s(), 3.5, 1e-9);
}

TEST(PlaybackBufferTest, UnderrunStallsAndCounts) {
  PlaybackBuffer buffer(config(2.0));
  buffer.add_chunk(6.0);
  const DrainResult r = buffer.advance(sim::seconds(10.0));
  EXPECT_EQ(r.stall_events, 1u);
  EXPECT_NEAR(r.stalled_ms, sim::seconds(4.0), 1e-9);
  EXPECT_FALSE(buffer.playing());
  EXPECT_DOUBLE_EQ(buffer.level_s(), 0.0);
}

TEST(PlaybackBufferTest, ResumeAfterStallNeedsThreshold) {
  PlaybackBuffer buffer(config(2.0, 4.0));
  buffer.add_chunk(6.0);
  buffer.advance(sim::seconds(10.0));  // stall
  buffer.add_chunk(3.0);               // below resume threshold
  EXPECT_FALSE(buffer.playing());
  buffer.add_chunk(1.5);
  EXPECT_TRUE(buffer.playing());
}

TEST(PlaybackBufferTest, StallTimeKeepsAccumulatingWhileStalled) {
  PlaybackBuffer buffer(config(2.0));
  buffer.add_chunk(6.0);
  buffer.advance(sim::seconds(6.0));  // exact drain, enters stall
  const DrainResult r = buffer.advance(sim::seconds(2.0));
  EXPECT_NEAR(r.stalled_ms, sim::seconds(2.0), 1e-9);
  EXPECT_EQ(r.stall_events, 0u);  // not a *new* stall
}

TEST(PlaybackBufferTest, HeadroomTracksCeiling) {
  PlaybackBuffer buffer(config(2.0, 2.0, 30.0));
  EXPECT_DOUBLE_EQ(buffer.headroom_s(), 30.0);
  buffer.add_chunk(12.0);
  EXPECT_DOUBLE_EQ(buffer.headroom_s(), 18.0);
  buffer.add_chunk(24.0);
  EXPECT_DOUBLE_EQ(buffer.headroom_s(), 0.0);  // clamped
}

TEST(PlaybackBufferTest, ZeroAndNegativeAdvanceAreNoops) {
  PlaybackBuffer buffer(config(2.0));
  buffer.add_chunk(6.0);
  const DrainResult r0 = buffer.advance(0.0);
  const DrainResult rn = buffer.advance(-5.0);
  EXPECT_DOUBLE_EQ(r0.stalled_ms + rn.stalled_ms, 0.0);
  EXPECT_NEAR(buffer.level_s(), 6.0, 1e-9);
}

TEST(PlaybackBufferTest, MultipleStallsCounted) {
  PlaybackBuffer buffer(config(2.0, 2.0));
  buffer.add_chunk(3.0);
  std::uint32_t stalls = 0;
  for (int i = 0; i < 3; ++i) {
    stalls += buffer.advance(sim::seconds(5.0)).stall_events;
    buffer.add_chunk(3.0);
  }
  EXPECT_EQ(stalls, 3u);
}

TEST(PlaybackBufferTest, StartupAccountedOnlyOnce) {
  PlaybackBuffer buffer(config(2.0));
  buffer.advance(sim::seconds(1.0));
  buffer.add_chunk(6.0);
  const sim::Ms first_startup = buffer.startup_ms();
  buffer.advance(sim::seconds(10.0));  // stall
  buffer.advance(sim::seconds(5.0));
  buffer.add_chunk(6.0);  // resume
  EXPECT_DOUBLE_EQ(buffer.startup_ms(), first_startup);
}

}  // namespace
}  // namespace vstream::client
