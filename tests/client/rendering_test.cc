#include "client/rendering.h"

#include <gtest/gtest.h>

namespace vstream::client {
namespace {

constexpr UserAgent kChromeWin{Os::kWindows, Browser::kChrome};

double mean_drop_fraction(const RenderingPath& path, double rate,
                          std::uint32_t bitrate, double buffered_s, int n,
                          std::uint64_t seed) {
  sim::Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += path.render_chunk(6.0, bitrate, rate, buffered_s, rng)
               .dropped_fraction();
  }
  return sum / n;
}

TEST(RenderingTest, FrameCountMatchesDuration) {
  const RenderingPath path(RenderConfig{.gpu = true}, kChromeWin);
  sim::Rng rng(1);
  EXPECT_EQ(path.render_chunk(6.0, 1500, 3.0, 10.0, rng).total_frames, 180u);
  EXPECT_EQ(path.render_chunk(2.0, 1500, 3.0, 10.0, rng).total_frames, 60u);
  EXPECT_EQ(path.render_chunk(0.0, 1500, 3.0, 10.0, rng).total_frames, 0u);
}

TEST(RenderingTest, GpuRendersNearlyEverything) {
  // Fig. 20, first bar: hardware rendering drops ~nothing even under load.
  const RenderingPath path(RenderConfig{.gpu = true, .cpu_load = 0.9},
                           kChromeWin);
  EXPECT_LT(mean_drop_fraction(path, 3.0, 4000, 20.0, 2'000, 2), 0.02);
}

TEST(RenderingTest, HiddenPlayerDropsDeliberately) {
  const RenderingPath path(
      RenderConfig{.gpu = true, .cpu_load = 0.0, .visible = false},
      kChromeWin);
  EXPECT_GT(mean_drop_fraction(path, 3.0, 1500, 20.0, 2'000, 3), 0.5);
}

TEST(RenderingTest, SlowArrivalDropsFrames) {
  // Fig. 19: below 1.5 s/s the drop rate climbs steeply.
  const RenderingPath path(RenderConfig{.gpu = false, .cpu_load = 0.1},
                           kChromeWin);
  const double at_03 = mean_drop_fraction(path, 0.3, 1500, 0.0, 2'000, 4);
  const double at_10 = mean_drop_fraction(path, 1.0, 1500, 0.0, 2'000, 5);
  const double at_15 = mean_drop_fraction(path, 1.5, 1500, 0.0, 2'000, 6);
  const double at_30 = mean_drop_fraction(path, 3.0, 1500, 0.0, 2'000, 7);
  EXPECT_GT(at_03, at_10);
  EXPECT_GT(at_10, at_15 + 0.05);
  // The paper's knee: past 1.5 s/s more speed does not help.
  EXPECT_NEAR(at_15, at_30, 0.02);
  EXPECT_LT(at_30, 0.05);
}

TEST(RenderingTest, BufferHidesSlowArrival) {
  // §4.4-1: "5.7% of chunks have low rates but good rendering, which can be
  // explained by the buffered video frames".
  const RenderingPath path(RenderConfig{.gpu = false, .cpu_load = 0.1},
                           kChromeWin);
  const double empty_buffer = mean_drop_fraction(path, 0.8, 1500, 0.0, 2'000, 8);
  const double deep_buffer = mean_drop_fraction(path, 0.8, 1500, 30.0, 2'000, 9);
  EXPECT_GT(empty_buffer, 2.0 * deep_buffer);
}

TEST(RenderingTest, CpuLoadDegradesSoftwareRendering) {
  // Fig. 20: each extra loaded core raises the drop rate.
  double prev = -1.0;
  for (const double load : {0.0, 0.5, 0.75, 0.9, 0.97}) {
    const RenderingPath path(RenderConfig{.gpu = false, .cpu_load = load},
                             kChromeWin);
    const double drop = mean_drop_fraction(path, 3.0, 4000, 20.0, 2'000, 10);
    EXPECT_GE(drop, prev - 0.01) << "load " << load;
    prev = drop;
  }
  const RenderingPath loaded(RenderConfig{.gpu = false, .cpu_load = 0.97},
                             kChromeWin);
  EXPECT_GT(mean_drop_fraction(loaded, 3.0, 4000, 20.0, 2'000, 11), 0.2);
}

TEST(RenderingTest, EfficiencyOrderingMatchesPaper) {
  // Figs. 21-22: Chrome and Safari-on-Mac lead; unpopular browsers trail;
  // Safari off Mac is among the worst.
  const double safari_mac =
      rendering_efficiency(UserAgent{Os::kMacOs, Browser::kSafari});
  const double chrome = rendering_efficiency(kChromeWin);
  const double firefox =
      rendering_efficiency(UserAgent{Os::kWindows, Browser::kFirefox});
  const double yandex =
      rendering_efficiency(UserAgent{Os::kWindows, Browser::kYandex});
  const double safari_win =
      rendering_efficiency(UserAgent{Os::kWindows, Browser::kSafari});
  EXPECT_GT(safari_mac, firefox);
  EXPECT_GT(chrome, firefox);
  EXPECT_GT(firefox, yandex);
  EXPECT_GT(firefox, safari_win);
}

TEST(RenderingTest, InefficienBrowserDropsMoreUnderSameConditions) {
  const RenderingPath chrome(RenderConfig{.gpu = false, .cpu_load = 0.5},
                             kChromeWin);
  const RenderingPath yandex(RenderConfig{.gpu = false, .cpu_load = 0.5},
                             UserAgent{Os::kWindows, Browser::kYandex});
  EXPECT_GT(mean_drop_fraction(yandex, 3.0, 4000, 20.0, 2'000, 12),
            mean_drop_fraction(chrome, 3.0, 4000, 20.0, 2'000, 13));
}

TEST(RenderingTest, AvgFpsConsistentWithDrops) {
  const RenderingPath path(RenderConfig{.gpu = false, .cpu_load = 0.2},
                           kChromeWin);
  sim::Rng rng(14);
  const RenderResult r = path.render_chunk(6.0, 1500, 2.0, 10.0, rng);
  EXPECT_NEAR(r.avg_fps, 30.0 * (1.0 - r.dropped_fraction()), 1e-6);
  EXPECT_LE(r.dropped_frames, r.total_frames);
}

// Property sweep: dropped fraction is always within [0, 1] across the
// whole parameter grid.
class RenderSweepTest
    : public ::testing::TestWithParam<
          std::tuple<bool, double, double, std::uint32_t>> {};

TEST_P(RenderSweepTest, DropFractionInRange) {
  const auto [gpu, load, rate, bitrate] = GetParam();
  const RenderingPath path(RenderConfig{.gpu = gpu, .cpu_load = load},
                           kChromeWin);
  sim::Rng rng(15);
  for (int i = 0; i < 200; ++i) {
    const RenderResult r = path.render_chunk(6.0, bitrate, rate, 5.0, rng);
    EXPECT_GE(r.dropped_fraction(), 0.0);
    EXPECT_LE(r.dropped_fraction(), 1.0);
    EXPECT_GE(r.avg_fps, 0.0);
    EXPECT_LE(r.avg_fps, 30.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RenderSweepTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values(0.0, 0.6, 0.95),
                       ::testing::Values(0.2, 1.0, 2.0, 5.0),
                       ::testing::Values(300u, 1500u, 6000u)));

}  // namespace
}  // namespace vstream::client
