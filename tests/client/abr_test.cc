#include "client/abr.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace vstream::client {
namespace {

AbrContext context(double buffer_s, double smoothed_kbps,
                   std::uint32_t chunk = 3) {
  AbrContext ctx;
  ctx.chunk_index = chunk;
  ctx.buffer_s = buffer_s;
  ctx.smoothed_throughput_kbps = smoothed_kbps;
  ctx.last_throughput_kbps = smoothed_kbps;
  return ctx;
}

bool on_ladder(std::uint32_t rate) {
  const auto ladder = default_bitrate_ladder();
  return std::find(ladder.begin(), ladder.end(), rate) != ladder.end();
}

TEST(LadderTest, AscendingAndNonEmpty) {
  const auto ladder = default_bitrate_ladder();
  ASSERT_GE(ladder.size(), 3u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i], ladder[i - 1]);
  }
}

TEST(FixedAbrTest, ClampsToLadder) {
  FixedAbr abr(1'500);
  EXPECT_EQ(abr.choose(context(10, 5'000), default_bitrate_ladder()), 1'500u);
  FixedAbr odd(2'000);  // not a rung: highest rung below
  EXPECT_EQ(odd.choose(context(10, 5'000), default_bitrate_ladder()), 1'500u);
  FixedAbr tiny(10);  // below the ladder: lowest rung
  EXPECT_EQ(tiny.choose(context(10, 5'000), default_bitrate_ladder()), 300u);
}

TEST(RateBasedAbrTest, StartsConservatively) {
  RateBasedAbr abr;
  const std::uint32_t first =
      abr.choose(context(0.0, 0.0, 0), default_bitrate_ladder());
  EXPECT_EQ(first, default_bitrate_ladder()[1]);
}

TEST(RateBasedAbrTest, TracksThroughputWithSafetyMargin) {
  RateBasedAbr abr(0.8);
  // 0.8 * 5000 = 4000: exactly the 4000 rung.
  EXPECT_EQ(abr.choose(context(10, 5'000), default_bitrate_ladder()), 4'000u);
  // 0.8 * 4999 = 3999: just below, drop to 2500.
  EXPECT_EQ(abr.choose(context(10, 4'999), default_bitrate_ladder()), 2'500u);
  // Very low throughput: floor of the ladder.
  EXPECT_EQ(abr.choose(context(10, 100), default_bitrate_ladder()), 300u);
  // Huge throughput: ceiling.
  EXPECT_EQ(abr.choose(context(10, 100'000), default_bitrate_ladder()), 6'000u);
}

TEST(BufferBasedAbrTest, ReservoirPinsToFloor) {
  BufferBasedAbr abr(5.0, 30.0);
  EXPECT_EQ(abr.choose(context(0.0, 50'000), default_bitrate_ladder()), 300u);
  EXPECT_EQ(abr.choose(context(5.0, 50'000), default_bitrate_ladder()), 300u);
}

TEST(BufferBasedAbrTest, CushionPinsToCeiling) {
  BufferBasedAbr abr(5.0, 30.0);
  EXPECT_EQ(abr.choose(context(30.0, 100), default_bitrate_ladder()), 6'000u);
  EXPECT_EQ(abr.choose(context(60.0, 100), default_bitrate_ladder()), 6'000u);
}

TEST(BufferBasedAbrTest, MonotoneInBufferLevel) {
  BufferBasedAbr abr(5.0, 30.0);
  std::uint32_t prev = 0;
  for (double level = 0.0; level <= 35.0; level += 1.0) {
    const std::uint32_t pick =
        abr.choose(context(level, 1'000), default_bitrate_ladder());
    EXPECT_GE(pick, prev) << "level " << level;
    EXPECT_TRUE(on_ladder(pick));
    prev = pick;
  }
}

TEST(HybridAbrTest, DeepBufferLiftsAboveRatePick) {
  HybridAbr abr;
  // Rate alone picks 700 (0.9 * 1000 = 900); a deep buffer lifts it, but
  // never beyond 2x the rate pick.
  const std::uint32_t pick =
      abr.choose(context(60.0, 1'000), default_bitrate_ladder());
  EXPECT_GT(pick, 700u);
  EXPECT_LE(pick, 1'500u);
  EXPECT_TRUE(on_ladder(pick));
}

TEST(HybridAbrTest, EmptyBufferFollowsConservativeSide) {
  HybridAbr abr;
  const std::uint32_t pick =
      abr.choose(context(2.0, 20'000), default_bitrate_ladder());
  // Buffer in reservoir -> buffer-based says floor; rate says ceiling; the
  // hybrid takes the max bounded by rate: the rate pick wins.
  EXPECT_EQ(pick, 6'000u);
}

TEST(AbrFactoryTest, MakesAllKinds) {
  EXPECT_EQ(make_abr(AbrKind::kFixed)->name(), "fixed");
  EXPECT_EQ(make_abr(AbrKind::kRateBased)->name(), "rate-based");
  EXPECT_EQ(make_abr(AbrKind::kBufferBased)->name(), "buffer-based");
  EXPECT_EQ(make_abr(AbrKind::kHybrid)->name(), "hybrid");
  EXPECT_EQ(make_abr(AbrKind::kMpc)->name(), "mpc");
  EXPECT_STREQ(to_string(AbrKind::kHybrid), "hybrid");
  EXPECT_STREQ(to_string(AbrKind::kMpc), "mpc");
}

TEST(MpcAbrTest, StarvedThroughputPicksTheFloor) {
  MpcAbr abr;
  // 400 kbps of throughput and an empty buffer: anything above the floor
  // stalls immediately and the re-buffering penalty dominates.
  EXPECT_EQ(abr.choose(context(0.5, 400.0), default_bitrate_ladder()), 300u);
}

TEST(MpcAbrTest, AbundantThroughputPicksTheCeiling) {
  MpcAbr abr;
  EXPECT_EQ(abr.choose(context(20.0, 50'000.0), default_bitrate_ladder()),
            6'000u);
}

TEST(MpcAbrTest, DeepBufferToleratesHigherRungThanRateAlone) {
  MpcAbr abr;
  // Throughput sustains ~2,200 kbps; a deep buffer lets MPC plan through a
  // temporarily slow download without stalling, picking at least the rung a
  // 0.9-discounted rate pick would.
  const std::uint32_t shallow =
      abr.choose(context(1.0, 2'400.0), default_bitrate_ladder());
  const std::uint32_t deep =
      abr.choose(context(25.0, 2'400.0), default_bitrate_ladder());
  EXPECT_GE(deep, shallow);
  EXPECT_GE(deep, 1'500u);
}

TEST(MpcAbrTest, SwitchPenaltyStabilizesBorderlineChoices) {
  MpcAbr abr;
  // Throughput right at a rung boundary: whatever the previous bitrate
  // was, MPC should not jump multiple rungs for a marginal gain.
  AbrContext ctx = context(12.0, 2'700.0);
  ctx.last_bitrate_kbps = 2'500;
  const std::uint32_t pick = abr.choose(ctx, default_bitrate_ladder());
  EXPECT_GE(pick, 1'500u);
  EXPECT_LE(pick, 2'500u);
}

TEST(MpcAbrTest, ColdStartMatchesRateBasedFamily) {
  MpcAbr abr;
  AbrContext ctx = context(0.0, 0.0, 0);
  EXPECT_EQ(abr.choose(ctx, default_bitrate_ladder()),
            default_bitrate_ladder()[1]);
  ctx.known_bad_prefix = true;
  EXPECT_EQ(abr.choose(ctx, default_bitrate_ladder()),
            default_bitrate_ladder()[0]);
}

TEST(AbrTest, EmptyLadderRejected) {
  RateBasedAbr abr;
  EXPECT_THROW(abr.choose(context(10, 1'000), {}), std::invalid_argument);
}

// Property: every algorithm returns a ladder rung for any context.
class AbrPropertyTest : public ::testing::TestWithParam<AbrKind> {};

TEST_P(AbrPropertyTest, AlwaysOnLadder) {
  const auto abr = make_abr(GetParam());
  for (double buffer = 0.0; buffer <= 60.0; buffer += 7.3) {
    for (double tp : {0.0, 150.0, 900.0, 2'800.0, 12'000.0, 1e6}) {
      for (std::uint32_t chunk : {0u, 1u, 50u}) {
        const std::uint32_t pick =
            abr->choose(context(buffer, tp, chunk), default_bitrate_ladder());
        EXPECT_TRUE(on_ladder(pick))
            << abr->name() << " returned off-ladder " << pick;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AbrPropertyTest,
                         ::testing::Values(AbrKind::kFixed, AbrKind::kRateBased,
                                           AbrKind::kBufferBased,
                                           AbrKind::kHybrid, AbrKind::kMpc));

}  // namespace
}  // namespace vstream::client
