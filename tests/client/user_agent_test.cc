#include "client/user_agent.h"

#include <gtest/gtest.h>

namespace vstream::client {
namespace {

TEST(UserAgentTest, ToStringCoversAll) {
  EXPECT_STREQ(to_string(Os::kWindows), "Windows");
  EXPECT_STREQ(to_string(Os::kMacOs), "Mac");
  EXPECT_STREQ(to_string(Os::kLinux), "Linux");
  EXPECT_STREQ(to_string(Browser::kChrome), "Chrome");
  EXPECT_STREQ(to_string(Browser::kSeaMonkey), "SeaMonkey");
}

TEST(UserAgentTest, PopularityClassification) {
  EXPECT_TRUE(is_popular(Browser::kChrome));
  EXPECT_TRUE(is_popular(Browser::kFirefox));
  EXPECT_TRUE(is_popular(Browser::kInternetExplorer));
  EXPECT_TRUE(is_popular(Browser::kEdge));
  EXPECT_TRUE(is_popular(Browser::kSafari));
  EXPECT_FALSE(is_popular(Browser::kOpera));
  EXPECT_FALSE(is_popular(Browser::kYandex));
  EXPECT_FALSE(is_popular(Browser::kVivaldi));
  EXPECT_FALSE(is_popular(Browser::kSeaMonkey));
}

TEST(UserAgentTest, BrowserLabelGroupsUnpopularAsOther) {
  EXPECT_EQ(browser_label(Browser::kChrome), "Chrome");
  EXPECT_EQ(browser_label(Browser::kYandex), "Other");
  EXPECT_EQ(browser_label(Browser::kOpera), "Other");
}

TEST(UserAgentTest, UserAgentStringEncodesBoth) {
  const UserAgent ua{Os::kWindows, Browser::kFirefox};
  EXPECT_EQ(user_agent_string(ua), "Firefox/Windows");
  const UserAgent mac{Os::kMacOs, Browser::kSafari};
  EXPECT_EQ(user_agent_string(mac), "Safari/Mac");
}

TEST(UserAgentTest, Equality) {
  const UserAgent a{Os::kWindows, Browser::kChrome};
  const UserAgent b{Os::kWindows, Browser::kChrome};
  const UserAgent c{Os::kMacOs, Browser::kChrome};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace vstream::client
