#include "client/download_stack.h"

#include <gtest/gtest.h>

#include <vector>

namespace vstream::client {
namespace {

double mean_ds(const DownloadStack& stack, std::uint32_t chunk_index, int n,
               std::uint64_t seed) {
  sim::Rng rng(seed);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += stack.sample(chunk_index, rng).ds_ms;
  return sum / n;
}

TEST(DownloadStackTest, SamplesAreNonNegative) {
  const DownloadStack stack(UserAgent{Os::kWindows, Browser::kChrome});
  sim::Rng rng(1);
  for (int i = 0; i < 1'000; ++i) {
    const DownloadStackSample s = stack.sample(3, rng);
    EXPECT_GE(s.ds_ms, 0.0);
    EXPECT_GE(s.hold_ms, 0.0);
  }
}

TEST(DownloadStackTest, FirstChunkHasHigherLatency) {
  // Fig. 18: first chunks carry the data-path setup cost (~300 ms median).
  const DownloadStack stack(UserAgent{Os::kWindows, Browser::kChrome});
  const double first = mean_ds(stack, 0, 4'000, 2);
  const double later = mean_ds(stack, 5, 4'000, 3);
  EXPECT_GT(first, later + 150.0);
}

TEST(DownloadStackTest, SafariOffMacIsPathological) {
  // Table 5: Safari on Windows/Linux mean DS ~1 s, far above mainstream.
  const DownloadStack bad(UserAgent{Os::kWindows, Browser::kSafari});
  const DownloadStack good(UserAgent{Os::kMacOs, Browser::kSafari});
  EXPECT_GT(mean_ds(bad, 5, 6'000, 4), 4.0 * mean_ds(good, 5, 6'000, 5));
}

TEST(DownloadStackTest, UnpopularBrowsersWorseThanMainstream) {
  const DownloadStack yandex(UserAgent{Os::kWindows, Browser::kYandex});
  const DownloadStack chrome(UserAgent{Os::kWindows, Browser::kChrome});
  EXPECT_GT(mean_ds(yandex, 5, 6'000, 6), mean_ds(chrome, 5, 6'000, 7));
}

TEST(DownloadStackTest, AnomalyRateMatchesProfile) {
  DownloadStackProfile profile;
  profile.anomaly_probability = 0.05;
  const DownloadStack stack(profile);
  sim::Rng rng(8);
  int anomalies = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    if (stack.sample(3, rng).buffered_anomaly) ++anomalies;
  }
  EXPECT_NEAR(anomalies / static_cast<double>(n), 0.05, 0.006);
}

TEST(DownloadStackTest, AnomalyCarriesHoldTime) {
  DownloadStackProfile profile;
  profile.anomaly_probability = 1.0;
  const DownloadStack stack(profile);
  sim::Rng rng(9);
  const DownloadStackSample s = stack.sample(3, rng);
  EXPECT_TRUE(s.buffered_anomaly);
  EXPECT_GT(s.hold_ms, 100.0);
}

TEST(DownloadStackTest, ZeroAnomalyProbabilityNeverFires) {
  DownloadStackProfile profile;
  profile.anomaly_probability = 0.0;
  const DownloadStack stack(profile);
  sim::Rng rng(10);
  for (int i = 0; i < 5'000; ++i) {
    EXPECT_FALSE(stack.sample(i % 20, rng).buffered_anomaly);
  }
}

TEST(DownloadStackProfileTest, MainstreamPairsAreMild) {
  for (const Browser b : {Browser::kChrome, Browser::kFirefox,
                          Browser::kInternetExplorer, Browser::kEdge}) {
    const DownloadStackProfile p = profile_for(UserAgent{Os::kWindows, b});
    EXPECT_LE(p.extra_probability, 0.2) << to_string(b);
    EXPECT_LE(p.extra_median_ms, 300.0) << to_string(b);
  }
}

TEST(DownloadStackProfileTest, ChromeBeatsFirefox) {
  // In-process Flash (Chrome) vs protected-mode Firefox (§4.3-2).
  const DownloadStackProfile chrome =
      profile_for(UserAgent{Os::kWindows, Browser::kChrome});
  const DownloadStackProfile firefox =
      profile_for(UserAgent{Os::kWindows, Browser::kFirefox});
  EXPECT_LT(chrome.extra_median_ms, firefox.extra_median_ms);
}

// Property sweep: every platform yields valid profiles.
class ProfileSweepTest
    : public ::testing::TestWithParam<std::tuple<Os, Browser>> {};

TEST_P(ProfileSweepTest, ProfileSane) {
  const auto [os, browser] = GetParam();
  const DownloadStackProfile p = profile_for(UserAgent{os, browser});
  EXPECT_GT(p.base_median_ms, 0.0);
  EXPECT_GE(p.extra_probability, 0.0);
  EXPECT_LE(p.extra_probability, 1.0);
  EXPECT_GT(p.extra_median_ms, 0.0);
  EXPECT_GE(p.anomaly_probability, 0.0);
  EXPECT_LT(p.anomaly_probability, 0.05);
  EXPECT_GT(p.first_chunk_median_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, ProfileSweepTest,
    ::testing::Combine(::testing::Values(Os::kWindows, Os::kMacOs, Os::kLinux),
                       ::testing::Values(Browser::kChrome, Browser::kFirefox,
                                         Browser::kInternetExplorer,
                                         Browser::kEdge, Browser::kSafari,
                                         Browser::kOpera, Browser::kYandex,
                                         Browser::kVivaldi,
                                         Browser::kSeaMonkey)));

}  // namespace
}  // namespace vstream::client
