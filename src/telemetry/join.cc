#include "telemetry/join.h"

#include <algorithm>
#include <unordered_map>

namespace vstream::telemetry {

namespace {

/// (session, chunk) composite key for the chunk-level join.
struct JoinKey {
  std::uint64_t session;
  std::uint32_t chunk;
  friend bool operator==(const JoinKey&, const JoinKey&) = default;
};

struct JoinKeyHash {
  std::size_t operator()(const JoinKey& k) const {
    return std::hash<std::uint64_t>()(k.session * 1'000'003ull + k.chunk);
  }
};

}  // namespace

std::uint64_t JoinedSession::total_retransmissions() const {
  std::uint64_t total = 0;
  for (const JoinedChunk& c : chunks) total += c.retransmissions;
  return total;
}

std::uint64_t JoinedSession::total_segments() const {
  std::uint64_t total = 0;
  for (const JoinedChunk& c : chunks) total += c.segments;
  return total;
}

double JoinedSession::retx_rate() const {
  const std::uint64_t segs = total_segments();
  return segs == 0 ? 0.0
                   : static_cast<double>(total_retransmissions()) /
                         static_cast<double>(segs);
}

sim::Ms JoinedSession::total_rebuffer_ms() const {
  sim::Ms total = 0.0;
  for (const JoinedChunk& c : chunks) {
    if (c.player != nullptr) total += c.player->rebuffer_ms;
  }
  return total;
}

double JoinedSession::rebuffer_rate_percent() const {
  const sim::Ms span = duration_ms();
  if (span <= 0.0) return 0.0;
  return 100.0 * total_rebuffer_ms() / span;
}

double JoinedSession::avg_bitrate_kbps() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const JoinedChunk& c : chunks) {
    if (c.player != nullptr) {
      sum += c.player->bitrate_kbps;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

sim::Ms JoinedSession::duration_ms() const {
  sim::Ms last = 0.0;
  for (const JoinedChunk& c : chunks) {
    if (c.player != nullptr) {
      last = std::max(last, c.player->request_sent_ms + c.player->dfb_ms +
                                c.player->dlb_ms);
    }
  }
  return last;
}

void finalize_joined_session(JoinedSession& session) {
  std::sort(session.chunks.begin(), session.chunks.end(),
            [](const JoinedChunk& a, const JoinedChunk& b) {
              return a.player->chunk_id < b.player->chunk_id;
            });
  std::sort(session.snapshots.begin(), session.snapshots.end(),
            [](const TcpSnapshotRecord* a, const TcpSnapshotRecord* b) {
              return a->at_ms < b->at_ms;
            });

  // Per-chunk counter deltas and "last snapshot of chunk" context, from
  // the cumulative connection counters.
  std::uint64_t prev_retrans = 0;
  std::uint64_t prev_segments = 0;
  for (JoinedChunk& chunk : session.chunks) {
    const TcpSnapshotRecord* last = nullptr;
    for (const TcpSnapshotRecord* snap : session.snapshots) {
      if (snap->chunk_id == chunk.player->chunk_id) last = snap;
    }
    chunk.last_snapshot = last;
    if (last != nullptr) {
      chunk.retransmissions = last->info.total_retrans - prev_retrans;
      chunk.segments = last->info.segments_out - prev_segments;
      prev_retrans = last->info.total_retrans;
      prev_segments = last->info.segments_out;
    }
  }
}

JoinedDataset JoinedDataset::build(const Dataset& data,
                                   const ProxyFilterResult* proxies) {
  JoinedDataset joined;

  std::unordered_map<std::uint64_t, JoinedSession> by_session;
  by_session.reserve(data.player_sessions.size());

  for (const PlayerSessionRecord& r : data.player_sessions) {
    by_session[r.session_id].session_id = r.session_id;
    by_session[r.session_id].player = &r;
  }
  for (const CdnSessionRecord& r : data.cdn_sessions) {
    by_session[r.session_id].session_id = r.session_id;
    by_session[r.session_id].cdn = &r;
  }

  // Chunk-level join: index CDN chunks by (session, chunk).
  std::unordered_map<JoinKey, const CdnChunkRecord*, JoinKeyHash> cdn_chunks;
  cdn_chunks.reserve(data.cdn_chunks.size());
  for (const CdnChunkRecord& r : data.cdn_chunks) {
    cdn_chunks.emplace(JoinKey{r.session_id, r.chunk_id}, &r);
  }

  for (const PlayerChunkRecord& r : data.player_chunks) {
    auto it = by_session.find(r.session_id);
    if (it == by_session.end()) continue;
    JoinedChunk chunk;
    chunk.player = &r;
    const auto cit = cdn_chunks.find(JoinKey{r.session_id, r.chunk_id});
    if (cit != cdn_chunks.end()) chunk.cdn = cit->second;
    it->second.chunks.push_back(chunk);
  }

  for (const TcpSnapshotRecord& r : data.tcp_snapshots) {
    auto it = by_session.find(r.session_id);
    if (it != by_session.end()) it->second.snapshots.push_back(&r);
  }

  for (auto& [id, session] : by_session) {
    if (session.player == nullptr || session.cdn == nullptr) {
      ++joined.dropped_incomplete_;
      continue;
    }
    if (proxies != nullptr && proxies->is_proxy(id)) {
      ++joined.dropped_as_proxy_;
      continue;
    }
    finalize_joined_session(session);
    joined.sessions_.push_back(std::move(session));
  }

  std::sort(joined.sessions_.begin(), joined.sessions_.end(),
            [](const JoinedSession& a, const JoinedSession& b) {
              return a.session_id < b.session_id;
            });
  return joined;
}

std::size_t JoinedDataset::chunk_count() const {
  std::size_t n = 0;
  for (const JoinedSession& s : sessions_) n += s.chunks.size();
  return n;
}

}  // namespace vstream::telemetry
