#include "telemetry/collector.h"

namespace vstream::telemetry {

void Collector::reserve(std::size_t expected_sessions,
                        std::size_t expected_chunks) {
  next_sample_at_ms_.reserve(expected_sessions);
  if (sink_ != nullptr) return;  // the Dataset is bypassed entirely
  data_.player_sessions.reserve(expected_sessions);
  data_.cdn_sessions.reserve(expected_sessions);
  data_.player_chunks.reserve(expected_chunks);
  data_.cdn_chunks.reserve(expected_chunks);
  // At least one snapshot per chunk; long transfers add a few more on the
  // 500 ms cadence, which the growth policy absorbs from this base.
  data_.tcp_snapshots.reserve(expected_chunks);
}

void Collector::sample_transfer(std::uint64_t session_id,
                                std::uint32_t chunk_id,
                                sim::Ms transfer_start_ms,
                                const std::vector<net::RoundSample>& rounds) {
  if (rounds.empty()) return;
  // The sampling clock is per-session (each connection has its own timer).
  sim::Ms& next_at =
      next_sample_at_ms_
          .try_emplace(session_id, transfer_start_ms + tcp_sample_interval_ms_)
          .first->second;

  sim::Ms last_sampled_at = -1.0;
  for (const net::RoundSample& round : rounds) {
    const sim::Ms at = transfer_start_ms + round.at_ms;
    if (at >= next_at) {
      record(TcpSnapshotRecord{session_id, chunk_id, at, round.info});
      last_sampled_at = at;
      while (next_at <= at) {
        next_at += tcp_sample_interval_ms_;
      }
    }
  }
  // The CDN service also samples when it finishes writing the chunk, so
  // every chunk carries at least one snapshot and the cumulative counters
  // (retransmissions, segments) can be attributed per chunk exactly.
  const net::RoundSample& last = rounds.back();
  const sim::Ms end_at = transfer_start_ms + last.at_ms;
  if (last_sampled_at < end_at) {
    record(TcpSnapshotRecord{session_id, chunk_id, end_at, last.info});
  }
}

void Collector::session_complete(std::uint64_t session_id) {
  next_sample_at_ms_.erase(session_id);
  if (sink_ != nullptr) sink_->session_complete(session_id);
}

Dataset Collector::take() {
  next_sample_at_ms_.clear();
  Dataset out = std::move(data_);
  data_ = Dataset{};
  return out;
}

}  // namespace vstream::telemetry
