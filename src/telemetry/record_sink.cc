#include "telemetry/record_sink.h"

namespace vstream::telemetry {

RecordSink::~RecordSink() = default;

Dataset MemorySink::take() {
  Dataset out = std::move(data_);
  data_ = Dataset{};
  return out;
}

}  // namespace vstream::telemetry
