// Session record groups: one session's slice of all five record streams.
//
// The streaming pipeline moves telemetry around in per-session units —
// the natural grain, because sessions complete atomically on one shard
// and every analysis in §4 is a fold over per-session values.  A
// SessionGroupStream yields groups in ascending session-id order, which
// is exactly the canonical merged-dataset order, so anything computed by
// folding a stream (CSV export, joins, aggregates) matches the
// materialized path byte for byte.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "telemetry/record_sink.h"

namespace vstream::telemetry {

/// Every record of one session, in emission order per stream (chunks in
/// chunk order, snapshots in time order) — the same order the canonical
/// Dataset holds them in.
struct SessionRecordGroup {
  std::uint64_t session_id = 0;
  std::vector<PlayerSessionRecord> player_sessions;
  std::vector<CdnSessionRecord> cdn_sessions;
  std::vector<PlayerChunkRecord> player_chunks;
  std::vector<CdnChunkRecord> cdn_chunks;
  std::vector<TcpSnapshotRecord> tcp_snapshots;

  bool empty() const {
    return player_sessions.empty() && cdn_sessions.empty() &&
           player_chunks.empty() && cdn_chunks.empty() &&
           tcp_snapshots.empty();
  }
  std::size_t record_count() const {
    return player_sessions.size() + cdn_sessions.size() +
           player_chunks.size() + cdn_chunks.size() + tcp_snapshots.size();
  }

  /// Concatenate another group for the same session onto this one (a
  /// session whose records were split across sinks — the caller appends in
  /// sink order, mirroring the canonical merge's stable sort).
  void append(SessionRecordGroup&& other);
};

/// Pull-based stream of session groups in strictly ascending session-id
/// order (one group per id).
class SessionGroupStream {
 public:
  virtual ~SessionGroupStream();
  /// The next session's records; nullopt at end of stream.
  virtual std::optional<SessionRecordGroup> next() = 0;
};

/// Streams a canonical (session-id-sorted) Dataset as session groups, by
/// walking the five record vectors in lockstep.  The view copies records
/// into each group; the Dataset must outlive the stream.
class DatasetGroupStream final : public SessionGroupStream {
 public:
  explicit DatasetGroupStream(const Dataset& data) : data_(&data) {}
  std::optional<SessionRecordGroup> next() override;

 private:
  const Dataset* data_;
  std::size_t ps_ = 0, cs_ = 0, pc_ = 0, cc_ = 0, ts_ = 0;  // stream cursors
};

}  // namespace vstream::telemetry
