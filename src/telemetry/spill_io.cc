#include "telemetry/spill_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "sim/env_util.h"
#include "sim/host_error.h"

namespace vstream::telemetry {

namespace {

std::atomic<std::uint64_t> g_spill_stall_us{0};

/// Strict {0,1} env switch: unset falls back, anything else throws.
bool binary_env(const char* name, bool fallback) {
  const std::string raw = sim::nonempty_env(name, fallback ? "1" : "0");
  if (raw == "0") return false;
  if (raw == "1") return true;
  throw std::runtime_error(std::string(name) + " must be 0 or 1 (got \"" +
                           raw + "\")");
}

}  // namespace

std::uint64_t spill_write_stall_us() {
  return g_spill_stall_us.load(std::memory_order_relaxed);
}

void add_spill_write_stall_us(std::uint64_t us) {
  g_spill_stall_us.fetch_add(us, std::memory_order_relaxed);
}

bool resolve_spill_async() { return binary_env("VSTREAM_SPILL_ASYNC", true); }

// --------------------------------------------------------------- read side

namespace {

/// mmap-backed source: the kernel pages the file in as the scan walks it
/// (MADV_SEQUENTIAL primes readahead); view() is a straight pointer into
/// the mapping, so decode and CRC never copy.
class MmapSource final : public SpillByteSource {
 public:
  MmapSource(void* base, std::uint64_t size) : base_(base) { size_ = size; }
  ~MmapSource() override {
    if (base_ != nullptr) ::munmap(base_, size_);
  }
  void read(std::uint64_t off, char* dst, std::size_t n) override {
    std::memcpy(dst, static_cast<const char*>(base_) + off, n);
  }
  const char* view(std::uint64_t off, std::size_t) override {
    return static_cast<const char*>(base_) + off;
  }

 private:
  void* base_;
};

/// pread fallback: no views, callers copy into their scratch buffer.
class PreadSource final : public SpillByteSource {
 public:
  PreadSource(int fd, std::uint64_t size, std::filesystem::path path)
      : fd_(fd), path_(std::move(path)) {
    size_ = size;
  }
  ~PreadSource() override { ::close(fd_); }
  void read(std::uint64_t off, char* dst, std::size_t n) override {
    std::size_t done = 0;
    while (done < n) {
      const ::ssize_t got = ::pread(fd_, dst + done, n - done,
                                    static_cast<::off_t>(off + done));
      if (got <= 0) {
        // Size was fixed at open, so a short read inside it is an
        // environmental failure, not data damage.
        throw sim::HostIoError("spill: read failed in " + path_.string());
      }
      done += static_cast<std::size_t>(got);
    }
  }
  const char* view(std::uint64_t, std::size_t) override { return nullptr; }

 private:
  int fd_;
  std::filesystem::path path_;
};

}  // namespace

std::unique_ptr<SpillByteSource> open_spill_source(
    const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("spill: cannot open " + path.string());
  }
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("spill: cannot stat " + path.string());
  }
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  if (binary_env("VSTREAM_SPILL_MMAP", true) && size > 0) {
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      ::madvise(base, size, MADV_SEQUENTIAL);
      ::close(fd);  // the mapping keeps the file alive
      return std::make_unique<MmapSource>(base, size);
    }
    // Fall through to pread (e.g. a filesystem without mmap support).
  }
  return std::make_unique<PreadSource>(fd, size, path);
}

// -------------------------------------------------------------- write side

SpillFileBackend::SpillFileBackend(const std::filesystem::path& path,
                                   bool truncate, bool async)
    : out_(path, std::ios::binary | (truncate ? std::ios::trunc
                                              : std::ios::app)),
      async_(async) {
  if (!out_) {
    throw sim::HostIoError("spill: cannot open " + path.string() +
                           " for writing");
  }
  front_.reserve(kSpillIoBufferBytes + kSpillIoBufferBytes / 4);
  if (async_) {
    back_.reserve(kSpillIoBufferBytes + kSpillIoBufferBytes / 4);
    io_ = std::thread([this] { io_thread(); });
  }
}

SpillFileBackend::~SpillFileBackend() { close(); }

void SpillFileBackend::drain_sync() {
  if (front_.empty()) return;
  out_.write(front_.data(), static_cast<std::streamsize>(front_.size()));
  front_.clear();
  if (out_.fail()) error_.store(true, std::memory_order_release);
}

void SpillFileBackend::submit_front() {
  if (front_.empty()) return;
  std::unique_lock<std::mutex> lock(m_);
  if (back_full_) {
    // The disk is behind: this is the only place the encoder blocks, and
    // the time is accounted so the bench can see writer-side stalls.
    const auto t0 = std::chrono::steady_clock::now();
    cv_room_.wait(lock, [this] { return !back_full_; });
    add_spill_write_stall_us(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  front_.swap(back_);
  back_full_ = true;
  front_.clear();
  cv_work_.notify_one();
}

void SpillFileBackend::io_thread() {
  std::string local;
  for (;;) {
    std::unique_lock<std::mutex> lock(m_);
    cv_work_.wait(lock,
                  [this] { return back_full_ || flush_req_ || stop_; });
    if (back_full_) {
      io_busy_ = true;
      local.swap(back_);
      back_full_ = false;
      cv_room_.notify_all();
      lock.unlock();
      out_.write(local.data(), static_cast<std::streamsize>(local.size()));
      const bool bad = out_.fail();
      local.clear();
      lock.lock();
      if (bad) error_.store(true, std::memory_order_release);
      io_busy_ = false;
      cv_room_.notify_all();
      continue;  // re-check for queued work before sleeping
    }
    if (flush_req_) {
      out_.flush();
      if (out_.fail()) error_.store(true, std::memory_order_release);
      flush_req_ = false;
      flush_done_ = true;
      cv_room_.notify_all();
      continue;
    }
    break;  // stop_ and no pending work
  }
}

void SpillFileBackend::append(const char* data, std::size_t n) {
  front_.append(data, n);
  if (front_.size() < kSpillIoBufferBytes) return;
  if (async_) {
    submit_front();
  } else {
    drain_sync();
  }
}

void SpillFileBackend::flush() {
  if (closed_) return;
  if (!async_) {
    drain_sync();
    out_.flush();
    if (out_.fail()) error_.store(true, std::memory_order_release);
    return;
  }
  submit_front();
  std::unique_lock<std::mutex> lock(m_);
  const auto t0 = std::chrono::steady_clock::now();
  flush_req_ = true;
  flush_done_ = false;
  cv_work_.notify_one();
  // flush_done_ implies the flush ran after the back buffer drained (the
  // writer thread prefers buffered work), so everything staged so far is
  // in the OS when this returns — the checkpoint ordering contract.
  cv_room_.wait(lock, [this] {
    return flush_done_ && !back_full_ && !io_busy_;
  });
  add_spill_write_stall_us(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count()));
}

void SpillFileBackend::close() {
  if (closed_) return;
  closed_ = true;
  if (async_) {
    submit_front();
    {
      std::unique_lock<std::mutex> lock(m_);
      stop_ = true;
      cv_work_.notify_one();
    }
    io_.join();
  } else {
    drain_sync();
  }
  out_.close();
  if (out_.fail()) error_.store(true, std::memory_order_release);
}

}  // namespace vstream::telemetry
