#include "telemetry/record_group.h"

#include <algorithm>
#include <iterator>

namespace vstream::telemetry {

SessionGroupStream::~SessionGroupStream() = default;

namespace {

template <typename Record>
void append_vec(std::vector<Record>& into, std::vector<Record>&& from) {
  if (into.empty()) {
    into = std::move(from);
    return;
  }
  into.insert(into.end(), std::make_move_iterator(from.begin()),
              std::make_move_iterator(from.end()));
}

/// Copy the run of records for `id` at the head of `records` into `out`,
/// advancing `cursor` past it.
template <typename Record>
void collect_run(const std::vector<Record>& records, std::size_t& cursor,
                 std::uint64_t id, std::vector<Record>& out) {
  while (cursor < records.size() && records[cursor].session_id == id) {
    out.push_back(records[cursor]);
    ++cursor;
  }
}

}  // namespace

void SessionRecordGroup::append(SessionRecordGroup&& other) {
  append_vec(player_sessions, std::move(other.player_sessions));
  append_vec(cdn_sessions, std::move(other.cdn_sessions));
  append_vec(player_chunks, std::move(other.player_chunks));
  append_vec(cdn_chunks, std::move(other.cdn_chunks));
  append_vec(tcp_snapshots, std::move(other.tcp_snapshots));
}

std::optional<SessionRecordGroup> DatasetGroupStream::next() {
  const Dataset& d = *data_;
  // The next session id is the smallest id at any stream head — streams
  // are individually sorted, so this walks ids in ascending order and
  // naturally yields groups for sessions present in only some streams
  // (orphan records).
  std::uint64_t id = 0;
  bool found = false;
  const auto consider = [&](const auto& records, std::size_t cursor) {
    if (cursor < records.size() &&
        (!found || records[cursor].session_id < id)) {
      id = records[cursor].session_id;
      found = true;
    }
  };
  consider(d.player_sessions, ps_);
  consider(d.cdn_sessions, cs_);
  consider(d.player_chunks, pc_);
  consider(d.cdn_chunks, cc_);
  consider(d.tcp_snapshots, ts_);
  if (!found) return std::nullopt;

  SessionRecordGroup group;
  group.session_id = id;
  collect_run(d.player_sessions, ps_, id, group.player_sessions);
  collect_run(d.cdn_sessions, cs_, id, group.cdn_sessions);
  collect_run(d.player_chunks, pc_, id, group.player_chunks);
  collect_run(d.cdn_chunks, cc_, id, group.cdn_chunks);
  collect_run(d.tcp_snapshots, ts_, id, group.tcp_snapshots);
  return group;
}

}  // namespace vstream::telemetry
