// SpillSink: a RecordSink that bounds record memory by spilling each
// completed session's record group to disk.
//
// Records buffer in RAM only while their session is live; the collector's
// session_complete() notification (driven by the engine as each session
// finishes) serializes the group as one spill block and frees it.  Peak
// record memory is therefore proportional to the number of concurrently
// *live* sessions — independent of how many chunks the run produces —
// which is the whole point of the streaming telemetry pipeline.
#pragma once

#include <map>

#include "telemetry/record_sink.h"
#include "telemetry/spill_format.h"

namespace vstream::telemetry {

class SpillSink final : public RecordSink {
 public:
  /// Creates/truncates the spill file.  Throws when it cannot be opened.
  explicit SpillSink(const std::filesystem::path& path);

  void record(PlayerSessionRecord r) override;
  void record(CdnSessionRecord r) override;
  void record(PlayerChunkRecord r) override;
  void record(CdnChunkRecord r) override;
  void record(TcpSnapshotRecord r) override;

  /// Serialize the session's buffered group as one block and drop it.
  void session_complete(std::uint64_t session_id) override;

  /// Spill any sessions still live (abandoned sessions) in ascending
  /// session-id order — a deterministic epilogue — then flush and close
  /// the file, throwing on write errors.
  void finish() override;

  const std::filesystem::path& path() const { return path_; }
  std::size_t live_sessions() const { return live_.size(); }
  std::size_t peak_live_sessions() const { return peak_live_; }

 private:
  SessionRecordGroup& group_for(std::uint64_t session_id);

  std::filesystem::path path_;
  SpillWriter writer_;
  /// Ordered so finish() can flush leftovers in ascending-id order without
  /// a sort; the live set is small (concurrent sessions), so the log-n
  /// lookup is noise next to record construction.
  std::map<std::uint64_t, SessionRecordGroup> live_;
  std::size_t peak_live_ = 0;
};

}  // namespace vstream::telemetry
