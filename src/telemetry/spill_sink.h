// SpillSink: a RecordSink that bounds record memory by spilling each
// completed session's record group to disk.
//
// Records buffer in RAM only while their session is live; the collector's
// session_complete() notification (driven by the engine as each session
// finishes) serializes the group as one spill block and frees it.  Peak
// record memory is therefore proportional to the number of concurrently
// *live* sessions — independent of how many chunks the run produces —
// which is the whole point of the streaming telemetry pipeline.
#pragma once

#include <map>

#include "telemetry/record_sink.h"
#include "telemetry/spill_format.h"

namespace vstream::telemetry {

class SpillSink final : public RecordSink {
 public:
  /// Creates/truncates the spill file.  `format` is resolved via
  /// resolve_spill_format (0 = environment/default).  Throws when the
  /// file cannot be opened.
  explicit SpillSink(const std::filesystem::path& path,
                     std::uint32_t format = 0);

  /// Resume an existing spill file at a checkpointed committed offset:
  /// uncommitted tail frames are truncated and appending continues.
  /// Throws on a missing/short/incompatible file.
  SpillSink(const std::filesystem::path& path, std::uint64_t committed_bytes,
            std::uint64_t blocks_already_written);

  void record(PlayerSessionRecord r) override;
  void record(CdnSessionRecord r) override;
  void record(PlayerChunkRecord r) override;
  void record(CdnChunkRecord r) override;
  void record(TcpSnapshotRecord r) override;

  /// Serialize the session's buffered group as one block and drop it.
  void session_complete(std::uint64_t session_id) override;

  /// Spill any sessions still live (abandoned sessions) in ascending
  /// session-id order — a deterministic epilogue — then flush and close
  /// the file, throwing on write errors.
  void finish() override;

  /// The finish() epilogue without the close: spill still-live sessions in
  /// ascending-id order and keep appending.  A checkpointed run calls this
  /// at every batch boundary so no session's records are hostage to the
  /// in-memory buffer when the batch is declared committed.
  void flush_live();

  /// Flush written frames and return the committed byte offset for a
  /// checkpoint (see SpillWriter::flush_committed).  Throws on I/O errors.
  std::uint64_t flush_committed() { return writer_.flush_committed(); }

  const std::filesystem::path& path() const { return path_; }
  std::size_t live_sessions() const { return live_.size(); }
  std::size_t peak_live_sessions() const { return peak_live_; }
  std::uint64_t blocks_written() const { return writer_.blocks_written(); }
  std::uint64_t committed_bytes() const { return writer_.committed_bytes(); }
  std::uint32_t format_version() const { return writer_.format_version(); }

 private:
  SessionRecordGroup& group_for(std::uint64_t session_id);

  std::filesystem::path path_;
  SpillWriter writer_;
  /// Ordered so finish() can flush leftovers in ascending-id order without
  /// a sort; the live set is small (concurrent sessions), so the log-n
  /// lookup is noise next to record construction.
  std::map<std::uint64_t, SessionRecordGroup> live_;
  std::size_t peak_live_ = 0;
};

}  // namespace vstream::telemetry
