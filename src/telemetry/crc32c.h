// CRC32C (Castagnoli, polynomial 0x1EDC6F41) — the checksum guarding the
// durable on-disk artifacts: spill-file frames (spill_format.h) and engine
// checkpoint sidecars (engine/checkpoint.h).
//
// CRC32C is the iSCSI/ext4/LevelDB checksum: its error-detection
// properties over short frames are well studied, and RFC 3720 §B.4
// publishes known-answer vectors (see tests/telemetry/crc32c_test.cc), so
// the implementation can be verified against an external ground truth
// rather than only against itself.  Software slicing-by-8 — no hardware
// intrinsics, so results are identical on every build and platform.
//
// Convention: crc32c(data, n) is the finalized (pre- and post-inverted)
// checksum, matching the RFC 3720 vectors.  The extend() form chains
// incremental computation over discontiguous buffers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace vstream::telemetry {

/// Extend a running CRC32C with `n` bytes.  Seed with `kCrc32cInit`, pass
/// the previous return value for subsequent pieces, and finalize with
/// crc32c_finalize() — or use the one-shot crc32c() below.
inline constexpr std::uint32_t kCrc32cInit = 0xFFFFFFFFu;

std::uint32_t crc32c_extend(std::uint32_t state, const void* data,
                            std::size_t n);

inline std::uint32_t crc32c_finalize(std::uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot finalized CRC32C of a buffer (the RFC 3720 convention).
inline std::uint32_t crc32c(const void* data, std::size_t n) {
  return crc32c_finalize(crc32c_extend(kCrc32cInit, data, n));
}

inline std::uint32_t crc32c(std::string_view s) {
  return crc32c(s.data(), s.size());
}

}  // namespace vstream::telemetry
