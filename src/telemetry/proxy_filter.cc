#include "telemetry/proxy_filter.h"

#include <unordered_map>

namespace vstream::telemetry {

ProxyFilterResult detect_proxies(const Dataset& data,
                                 const ProxyFilterConfig& config) {
  ProxyFilterResult result;

  // Index the beacon (player) view by session.
  std::unordered_map<std::uint64_t, const PlayerSessionRecord*> beacons;
  beacons.reserve(data.player_sessions.size());
  for (const PlayerSessionRecord& r : data.player_sessions) {
    beacons.emplace(r.session_id, &r);
  }

  // Rule (ii) bookkeeping: sessions per CDN-observed IP.
  std::unordered_map<net::IpV4, std::size_t> sessions_per_ip;
  for (const CdnSessionRecord& r : data.cdn_sessions) {
    ++sessions_per_ip[r.observed_ip];
  }

  for (const CdnSessionRecord& cdn : data.cdn_sessions) {
    const auto it = beacons.find(cdn.session_id);
    bool proxy = false;
    if (it != beacons.end()) {
      const PlayerSessionRecord& beacon = *it->second;
      // Rule (i): IP or UA mismatch between HTTP (CDN) view and beacon.
      if (beacon.client_ip != cdn.observed_ip ||
          beacon.user_agent != cdn.observed_user_agent) {
        proxy = true;
        ++result.mismatch_detections;
      }
    }
    if (!proxy &&
        sessions_per_ip[cdn.observed_ip] > config.max_sessions_per_ip) {
      proxy = true;
      ++result.volume_detections;
    }
    if (proxy) result.proxy_sessions.insert(cdn.session_id);
  }
  return result;
}

}  // namespace vstream::telemetry
