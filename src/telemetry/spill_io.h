// Byte-level I/O backends for the spill format (spill_format.h):
//
//   * SpillByteSource — read side.  The default backend maps the file
//     read-only (mmap + madvise(MADV_SEQUENTIAL)) so parse and CRC work
//     straight out of the page cache with zero copies; a plain pread
//     backend is the fallback for platforms/filesystems where mmap fails
//     and is selectable explicitly via VSTREAM_SPILL_MMAP=0 (strict
//     {0,1} contract, sim/env_util.h) so tests cover both paths.
//
//   * SpillFileBackend — write side.  Appends are staged in a buffer and
//     drained as one contiguous write per ~256 KiB (one syscall per many
//     blocks instead of three per block).  With async enabled (default;
//     VSTREAM_SPILL_ASYNC=0 forces synchronous drains) a dedicated
//     writer thread flushes the back buffer while the shard thread keeps
//     encoding into the front buffer — the serving hot loop only blocks
//     when it outruns the disk, and that stall time is accounted (see
//     spill_write_stall_us) so the bench can report it.
//
// Error model: write errors are *sticky*.  The backend never throws;
// failed() reports the first error and SpillWriter turns it into the
// documented sim::HostIoError at the next write()/flush/close — the
// same fail-fast surface the synchronous writer had.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace vstream::telemetry {

/// Buffer size at which staged writes drain to the OS.
inline constexpr std::size_t kSpillIoBufferBytes = 256 * 1024;

/// Process-wide count of microseconds shard threads spent blocked on the
/// spill writer (waiting for buffer room or a flush).  Monotone; the
/// telemetry bench reads it to report spill_write_stall_ms.
std::uint64_t spill_write_stall_us();
void add_spill_write_stall_us(std::uint64_t us);

/// True when VSTREAM_SPILL_ASYNC enables the writer thread (default on;
/// strict {0,1} parse — anything else throws std::runtime_error).
bool resolve_spill_async();

// --------------------------------------------------------------- read side

/// Random-access, read-only view of one spill file.  Offsets are bounds-
/// checked by the caller against size(); backends may assume validity.
class SpillByteSource {
 public:
  virtual ~SpillByteSource() = default;
  std::uint64_t size() const { return size_; }

  /// Copy `n` bytes at `off` into `dst`.  Throws sim::HostIoError on an
  /// environmental read failure (never on data content).
  virtual void read(std::uint64_t off, char* dst, std::size_t n) = 0;

  /// Zero-copy pointer to [off, off+n), or nullptr when the backend
  /// cannot provide one (pread fallback) — callers then read() into
  /// scratch.
  virtual const char* view(std::uint64_t off, std::size_t n) = 0;

 protected:
  std::uint64_t size_ = 0;
};

/// Open `path` with the configured backend (mmap unless disabled or
/// unavailable, else pread).  Throws std::runtime_error when the file
/// cannot be opened.
std::unique_ptr<SpillByteSource> open_spill_source(
    const std::filesystem::path& path);

// -------------------------------------------------------------- write side

/// Buffered appender for one spill file; optionally double-buffered with
/// a dedicated writer thread.  Not thread-safe externally (one shard owns
/// one backend); internally the front/back buffer hand-off is the only
/// shared state.
class SpillFileBackend {
 public:
  /// Opens `path` (truncating or appending).  Throws sim::HostIoError
  /// when the file cannot be opened.  `async` normally comes from
  /// resolve_spill_async().
  SpillFileBackend(const std::filesystem::path& path, bool truncate,
                   bool async);

  /// Drains and closes best-effort (errors stay reported via failed()).
  ~SpillFileBackend();

  SpillFileBackend(const SpillFileBackend&) = delete;
  SpillFileBackend& operator=(const SpillFileBackend&) = delete;

  /// Stage `n` bytes; drains a full buffer (hand-off to the writer
  /// thread, or a direct write when synchronous).
  void append(const char* data, std::size_t n);

  /// Drain everything staged and flush the stream to the OS.
  void flush();

  /// Drain, flush and close the file.  Idempotent.
  void close();

  /// Sticky: true once any write/flush failed.
  bool failed() const { return error_.load(std::memory_order_acquire); }

 private:
  void submit_front();          // hand front_ to the writer thread
  void drain_sync();            // synchronous path: write front_ now
  void io_thread();

  std::ofstream out_;
  bool async_ = false;
  bool closed_ = false;
  std::string front_;           // encoder-side staging buffer
  std::atomic<bool> error_{false};

  // Async-only state below; guarded by m_.
  std::thread io_;
  std::mutex m_;
  std::condition_variable cv_work_;   // wakes the writer thread
  std::condition_variable cv_room_;   // wakes a stalled encoder
  std::string back_;
  bool back_full_ = false;
  bool io_busy_ = false;
  bool flush_req_ = false;
  bool flush_done_ = false;
  bool stop_ = false;
};

}  // namespace vstream::telemetry
