// Buffered CSV writing with integer-path number formatting.
//
// The stream writers in export.cc emit millions of small fields; going
// through std::ostream's locale-aware num_put for each one dominates
// export time.  WriteBuffer batches bytes into one flat buffer (flushed
// with a single out.write per chunk) and formats numbers directly:
//
//   * append_u64 — classic backward digit loop,
//   * append_double_g6 — byte-identical to the default `ostream << double`
//     (printf %.6g) output: integer and short-fixed-point fast paths for
//     the values telemetry actually produces, std::to_chars general-6 for
//     everything else (verified byte-identical against %.6g in
//     tests/telemetry/fast_format_test.cc),
//   * append_ip — dotted quad, matching net::format_ip.
//
// Byte-identity with the previous formatter is load-bearing: the
// determinism suite compares exported CSVs across shard counts and runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace vstream::telemetry {

class WriteBuffer {
 public:
  explicit WriteBuffer(std::ostream& out, std::size_t capacity = 1 << 16);
  ~WriteBuffer();  // flushes

  WriteBuffer(const WriteBuffer&) = delete;
  WriteBuffer& operator=(const WriteBuffer&) = delete;

  void append(char c) {
    if (size_ + 1 > buffer_.size()) flush();
    buffer_[size_++] = c;
  }
  void append(std::string_view text);

  void append_u64(std::uint64_t value);
  /// '1' or '0' — the CSV encoding of flags.
  void append_bool01(bool value) { append(value ? '1' : '0'); }
  /// Exactly what `out << value` writes for a double at default precision.
  void append_double_g6(double value);
  /// Dotted quad, identical to net::format_ip.
  void append_ip(std::uint32_t ip);

  void flush();

 private:
  /// Reserve `need` contiguous bytes and return the write cursor.
  char* cursor(std::size_t need) {
    if (size_ + need > buffer_.size()) flush();
    return buffer_.data() + size_;
  }

  std::ostream& out_;
  std::vector<char> buffer_;
  std::size_t size_ = 0;
};

}  // namespace vstream::telemetry
