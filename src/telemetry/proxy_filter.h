// Proxy detection and filtering (paper §3, "Data preprocessing to filter
// proxies").
//
// HTTP proxies terminate the CDN's TCP connection, so server-side network
// measurements describe the server-proxy path, not the client.  The paper
// filters a session when (i) the client IP or user agent differs between
// the HTTP requests (CDN view) and the client-side beacons, or (ii) the
// client IP appears in implausibly many sessions ("more minutes of video
// per day than there are minutes in a day").
#pragma once

#include <cstdint>
#include <unordered_set>

#include "telemetry/collector.h"

namespace vstream::telemetry {

struct ProxyFilterConfig {
  /// A single IP observed across more sessions than this (per dataset) is
  /// treated as a mega-proxy.  Stand-in for the paper's minutes-per-day
  /// volume rule, scaled to synthetic dataset sizes.
  std::size_t max_sessions_per_ip = 50;
};

struct ProxyFilterResult {
  std::unordered_set<std::uint64_t> proxy_sessions;
  std::size_t mismatch_detections = 0;  ///< rule (i) hits
  std::size_t volume_detections = 0;    ///< rule (ii) hits

  bool is_proxy(std::uint64_t session_id) const {
    return proxy_sessions.contains(session_id);
  }
};

/// Identify proxy sessions from the raw (un-joined) dataset.
ProxyFilterResult detect_proxies(const Dataset& data,
                                 const ProxyFilterConfig& config = {});

}  // namespace vstream::telemetry
