// Streaming player/CDN join: one session at a time.
//
// JoinedDataset::build() (join.h) materializes the whole dataset before
// joining.  The StreamingJoiner consumes SessionRecordGroups instead —
// typically pulled off a SessionGroupStream in ascending session-id order
// — and emits each JoinedSession as its group arrives, so the join never
// holds more than one session's records.  Per-session semantics are
// identical to the batch join (same last-wins/first-wins rules, same
// finalize), so folding the stream reproduces the batch join's sessions
// in the same order with the same drop accounting.
#pragma once

#include <cstdint>
#include <optional>

#include "telemetry/join.h"
#include "telemetry/record_group.h"
#include "telemetry/proxy_filter.h"

namespace vstream::telemetry {

class StreamingJoiner {
 public:
  /// `proxies` may be null (no proxy filtering); if set it must outlive
  /// the joiner.
  explicit StreamingJoiner(const ProxyFilterResult* proxies = nullptr)
      : proxies_(proxies) {}

  /// Join one completed session's records.  The returned session's
  /// pointers alias `group`, which must stay alive and unmoved while the
  /// result is used — process it, then discard both.
  ///
  /// nullopt when the session is dropped, mirroring the batch join:
  /// groups with no session-level record on either side are ignored
  /// silently (pure orphan records never enter the batch join's session
  /// table), groups missing one side count as dropped_incomplete, and
  /// proxy-flagged sessions count as dropped_as_proxy.
  std::optional<JoinedSession> join(const SessionRecordGroup& group);

  std::size_t sessions_joined() const { return sessions_joined_; }
  std::size_t dropped_as_proxy() const { return dropped_as_proxy_; }
  std::size_t dropped_incomplete() const { return dropped_incomplete_; }

 private:
  const ProxyFilterResult* proxies_;
  std::size_t sessions_joined_ = 0;
  std::size_t dropped_as_proxy_ = 0;
  std::size_t dropped_incomplete_ = 0;
};

}  // namespace vstream::telemetry
