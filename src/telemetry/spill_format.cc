#include "telemetry/spill_format.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace vstream::telemetry {

namespace {

// --------------------------------------------------------------- encoding

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.append(bytes, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.append(bytes, 8);
}

void put_f64(std::string& out, double v) {
  // Raw IEEE-754 bits: the round trip is bit-exact, so CSV re-export of a
  // spilled dataset is byte-identical to the in-memory path.
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_bool(std::string& out, bool v) { put_u8(out, v ? 1 : 0); }

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked read cursor over one block payload.
struct Cursor {
  const char* p;
  const char* end;
  const std::filesystem::path& path;

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      throw std::runtime_error("spill: truncated block payload in " +
                               path.string());
    }
  }
  std::uint32_t get_u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    p += 4;
    return v;
  }
  std::uint64_t get_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    p += 8;
    return v;
  }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  std::uint8_t get_u8() {
    need(1);
    return static_cast<std::uint8_t>(*p++);
  }
  bool get_bool() { return get_u8() != 0; }
  std::string get_str() {
    const std::uint32_t len = get_u32();
    need(len);
    std::string s(p, len);
    p += len;
    return s;
  }
};

// ------------------------------------------------------ record serializers
// Field order mirrors the struct declarations in records.h; session_id is
// block-level and omitted.

void put_record(std::string& out, const PlayerSessionRecord& r) {
  put_u32(out, r.client_ip);
  put_str(out, r.user_agent);
  put_f64(out, r.video_duration_s);
  put_f64(out, r.start_time_ms);
  put_f64(out, r.startup_ms);
  put_u32(out, r.chunks_requested);
  put_bool(out, r.completed);
}

PlayerSessionRecord get_player_session(Cursor& c, std::uint64_t id) {
  PlayerSessionRecord r;
  r.session_id = id;
  r.client_ip = c.get_u32();
  r.user_agent = c.get_str();
  r.video_duration_s = c.get_f64();
  r.start_time_ms = c.get_f64();
  r.startup_ms = c.get_f64();
  r.chunks_requested = c.get_u32();
  r.completed = c.get_bool();
  return r;
}

void put_record(std::string& out, const CdnSessionRecord& r) {
  put_u32(out, r.observed_ip);
  put_str(out, r.observed_user_agent);
  put_u32(out, r.pop);
  put_u32(out, r.server);
  put_str(out, r.org);
  put_u8(out, static_cast<std::uint8_t>(r.access));
  put_str(out, r.city);
  put_str(out, r.country);
  put_f64(out, r.client_distance_km);
}

CdnSessionRecord get_cdn_session(Cursor& c, std::uint64_t id) {
  CdnSessionRecord r;
  r.session_id = id;
  r.observed_ip = c.get_u32();
  r.observed_user_agent = c.get_str();
  r.pop = c.get_u32();
  r.server = c.get_u32();
  r.org = c.get_str();
  r.access = static_cast<net::AccessType>(c.get_u8());
  r.city = c.get_str();
  r.country = c.get_str();
  r.client_distance_km = c.get_f64();
  return r;
}

void put_record(std::string& out, const PlayerChunkRecord& r) {
  put_u32(out, r.chunk_id);
  put_f64(out, r.request_sent_ms);
  put_f64(out, r.dfb_ms);
  put_f64(out, r.dlb_ms);
  put_u32(out, r.bitrate_kbps);
  put_f64(out, r.rebuffer_ms);
  put_u32(out, r.rebuffer_count);
  put_bool(out, r.visible);
  put_f64(out, r.avg_fps);
  put_u32(out, r.dropped_frames);
  put_u32(out, r.total_frames);
  put_u32(out, r.retries);
  put_u32(out, r.timeouts);
  put_bool(out, r.failed_over);
  put_f64(out, r.recovery_ms);
}

PlayerChunkRecord get_player_chunk(Cursor& c, std::uint64_t id) {
  PlayerChunkRecord r;
  r.session_id = id;
  r.chunk_id = c.get_u32();
  r.request_sent_ms = c.get_f64();
  r.dfb_ms = c.get_f64();
  r.dlb_ms = c.get_f64();
  r.bitrate_kbps = c.get_u32();
  r.rebuffer_ms = c.get_f64();
  r.rebuffer_count = c.get_u32();
  r.visible = c.get_bool();
  r.avg_fps = c.get_f64();
  r.dropped_frames = c.get_u32();
  r.total_frames = c.get_u32();
  r.retries = c.get_u32();
  r.timeouts = c.get_u32();
  r.failed_over = c.get_bool();
  r.recovery_ms = c.get_f64();
  return r;
}

void put_record(std::string& out, const CdnChunkRecord& r) {
  put_u32(out, r.chunk_id);
  put_f64(out, r.dwait_ms);
  put_f64(out, r.dopen_ms);
  put_f64(out, r.dread_ms);
  put_f64(out, r.dbe_ms);
  put_u8(out, static_cast<std::uint8_t>(r.cache_level));
  put_u64(out, r.chunk_bytes);
  put_u32(out, r.pop);
  put_u32(out, r.server);
  put_bool(out, r.served_stale);
  put_bool(out, r.shed);
  put_bool(out, r.hedged);
  put_bool(out, r.hedge_won);
  put_bool(out, r.budget_denied);
  put_bool(out, r.served_swr);
  put_u8(out, static_cast<std::uint8_t>(r.breaker));
}

CdnChunkRecord get_cdn_chunk(Cursor& c, std::uint64_t id) {
  CdnChunkRecord r;
  r.session_id = id;
  r.chunk_id = c.get_u32();
  r.dwait_ms = c.get_f64();
  r.dopen_ms = c.get_f64();
  r.dread_ms = c.get_f64();
  r.dbe_ms = c.get_f64();
  r.cache_level = static_cast<cdn::CacheLevel>(c.get_u8());
  r.chunk_bytes = c.get_u64();
  r.pop = c.get_u32();
  r.server = c.get_u32();
  r.served_stale = c.get_bool();
  r.shed = c.get_bool();
  r.hedged = c.get_bool();
  r.hedge_won = c.get_bool();
  r.budget_denied = c.get_bool();
  r.served_swr = c.get_bool();
  r.breaker = static_cast<cdn::BreakerState>(c.get_u8());
  return r;
}

void put_record(std::string& out, const TcpSnapshotRecord& r) {
  put_u32(out, r.chunk_id);
  put_f64(out, r.at_ms);
  put_f64(out, r.info.srtt_ms);
  put_f64(out, r.info.rttvar_ms);
  put_u32(out, r.info.cwnd_segments);
  put_u32(out, r.info.ssthresh_segments);
  put_u32(out, r.info.mss_bytes);
  put_u64(out, r.info.total_retrans);
  put_u64(out, r.info.segments_out);
  put_u64(out, r.info.bytes_acked);
  put_bool(out, r.info.in_slow_start);
}

TcpSnapshotRecord get_tcp_snapshot(Cursor& c, std::uint64_t id) {
  TcpSnapshotRecord r;
  r.session_id = id;
  r.chunk_id = c.get_u32();
  r.at_ms = c.get_f64();
  r.info.srtt_ms = c.get_f64();
  r.info.rttvar_ms = c.get_f64();
  r.info.cwnd_segments = c.get_u32();
  r.info.ssthresh_segments = c.get_u32();
  r.info.mss_bytes = c.get_u32();
  r.info.total_retrans = c.get_u64();
  r.info.segments_out = c.get_u64();
  r.info.bytes_acked = c.get_u64();
  r.info.in_slow_start = c.get_bool();
  return r;
}

SessionRecordGroup decode_payload(const std::string& payload,
                                  std::uint64_t session_id,
                                  const std::filesystem::path& path) {
  Cursor c{payload.data(), payload.data() + payload.size(), path};
  SessionRecordGroup group;
  group.session_id = session_id;
  const std::uint32_t n_ps = c.get_u32();
  const std::uint32_t n_cs = c.get_u32();
  const std::uint32_t n_pc = c.get_u32();
  const std::uint32_t n_cc = c.get_u32();
  const std::uint32_t n_ts = c.get_u32();
  group.player_sessions.reserve(n_ps);
  group.cdn_sessions.reserve(n_cs);
  group.player_chunks.reserve(n_pc);
  group.cdn_chunks.reserve(n_cc);
  group.tcp_snapshots.reserve(n_ts);
  for (std::uint32_t i = 0; i < n_ps; ++i) {
    group.player_sessions.push_back(get_player_session(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_cs; ++i) {
    group.cdn_sessions.push_back(get_cdn_session(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_pc; ++i) {
    group.player_chunks.push_back(get_player_chunk(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_cc; ++i) {
    group.cdn_chunks.push_back(get_cdn_chunk(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_ts; ++i) {
    group.tcp_snapshots.push_back(get_tcp_snapshot(c, session_id));
  }
  if (c.p != c.end) {
    throw std::runtime_error("spill: trailing bytes in block payload in " +
                             path.string());
  }
  return group;
}

}  // namespace

// -------------------------------------------------------------- SpillWriter

SpillWriter::SpillWriter(const std::filesystem::path& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) {
    throw std::runtime_error("spill: cannot open " + path.string() +
                             " for writing");
  }
  std::string header;
  put_u32(header, kSpillMagic);
  put_u32(header, kSpillVersion);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
}

SpillWriter::~SpillWriter() {
  if (out_.is_open()) out_.close();
}

void SpillWriter::write(const SessionRecordGroup& group) {
  scratch_.clear();
  put_u32(scratch_, static_cast<std::uint32_t>(group.player_sessions.size()));
  put_u32(scratch_, static_cast<std::uint32_t>(group.cdn_sessions.size()));
  put_u32(scratch_, static_cast<std::uint32_t>(group.player_chunks.size()));
  put_u32(scratch_, static_cast<std::uint32_t>(group.cdn_chunks.size()));
  put_u32(scratch_, static_cast<std::uint32_t>(group.tcp_snapshots.size()));
  for (const auto& r : group.player_sessions) put_record(scratch_, r);
  for (const auto& r : group.cdn_sessions) put_record(scratch_, r);
  for (const auto& r : group.player_chunks) put_record(scratch_, r);
  for (const auto& r : group.cdn_chunks) put_record(scratch_, r);
  for (const auto& r : group.tcp_snapshots) put_record(scratch_, r);

  std::string header;
  put_u64(header, group.session_id);
  put_u64(header, scratch_.size());
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  out_.write(scratch_.data(), static_cast<std::streamsize>(scratch_.size()));
  ++blocks_written_;
}

void SpillWriter::close() {
  if (!out_.is_open()) return;
  out_.close();
  if (out_.fail()) {
    throw std::runtime_error("spill: error writing " + path_.string());
  }
}

// -------------------------------------------------------------- SpillReader

SpillReader::SpillReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) {
    throw std::runtime_error("spill: cannot open " + path.string());
  }
  char raw[8];
  if (!in_.read(raw, 8)) {
    throw std::runtime_error("spill: truncated header in " + path.string());
  }
  std::string header(raw, 8);
  Cursor c{header.data(), header.data() + header.size(), path_};
  if (c.get_u32() != kSpillMagic) {
    throw std::runtime_error("spill: bad magic in " + path.string());
  }
  if (const std::uint32_t version = c.get_u32(); version != kSpillVersion) {
    throw std::runtime_error("spill: unsupported version " +
                             std::to_string(version) + " in " + path.string());
  }
}

std::optional<SessionRecordGroup> SpillReader::next() {
  char raw[16];
  if (!in_.read(raw, 16)) {
    if (in_.gcount() == 0) return std::nullopt;  // clean end of file
    throw std::runtime_error("spill: truncated block header in " +
                             path_.string());
  }
  std::string header(raw, 16);
  Cursor c{header.data(), header.data() + header.size(), path_};
  const std::uint64_t session_id = c.get_u64();
  const std::uint64_t payload_size = c.get_u64();
  scratch_.resize(payload_size);
  if (!in_.read(scratch_.data(),
                static_cast<std::streamsize>(payload_size))) {
    throw std::runtime_error("spill: truncated block payload in " +
                             path_.string());
  }
  return decode_payload(scratch_, session_id, path_);
}

std::vector<SpillBlockRef> SpillReader::index() {
  in_.clear();
  in_.seekg(8, std::ios::beg);  // past the file header
  std::vector<SpillBlockRef> refs;
  for (;;) {
    const std::uint64_t offset = static_cast<std::uint64_t>(in_.tellg());
    char raw[16];
    if (!in_.read(raw, 16)) {
      if (in_.gcount() == 0) break;
      throw std::runtime_error("spill: truncated block header in " +
                               path_.string());
    }
    std::string header(raw, 16);
    Cursor c{header.data(), header.data() + header.size(), path_};
    SpillBlockRef ref;
    ref.session_id = c.get_u64();
    ref.offset = offset;
    const std::uint64_t payload_size = c.get_u64();
    in_.seekg(static_cast<std::streamoff>(payload_size), std::ios::cur);
    refs.push_back(ref);
  }
  in_.clear();
  return refs;
}

SessionRecordGroup SpillReader::read_at(const SpillBlockRef& ref) {
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(ref.offset), std::ios::beg);
  std::optional<SessionRecordGroup> group = next();
  if (!group) {
    throw std::runtime_error("spill: no block at offset " +
                             std::to_string(ref.offset) + " in " +
                             path_.string());
  }
  return *std::move(group);
}

// ----------------------------------------------------------------- SpillSet

namespace {

/// Merged ascending-session-id stream over a set of spill files, driven by
/// a pre-sorted (session_id, file, offset) index.  Blocks for the same
/// session across files are concatenated in file order — the canonical
/// merge's tie-break.
class SpillSetStream final : public SessionGroupStream {
 public:
  explicit SpillSetStream(const std::vector<std::filesystem::path>& files) {
    readers_.reserve(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      readers_.push_back(std::make_unique<SpillReader>(files[i]));
      for (const SpillBlockRef& ref : readers_.back()->index()) {
        entries_.push_back(Entry{ref.session_id, i, ref.offset});
      }
    }
    std::sort(entries_.begin(), entries_.end(), [](const Entry& a,
                                                   const Entry& b) {
      if (a.session_id != b.session_id) return a.session_id < b.session_id;
      if (a.file != b.file) return a.file < b.file;
      return a.offset < b.offset;
    });
  }

  std::optional<SessionRecordGroup> next() override {
    if (cursor_ >= entries_.size()) return std::nullopt;
    const std::uint64_t id = entries_[cursor_].session_id;
    SessionRecordGroup group = read_entry(entries_[cursor_++]);
    while (cursor_ < entries_.size() &&
           entries_[cursor_].session_id == id) {
      group.append(read_entry(entries_[cursor_++]));
    }
    return group;
  }

 private:
  struct Entry {
    std::uint64_t session_id;
    std::size_t file;
    std::uint64_t offset;
  };

  SessionRecordGroup read_entry(const Entry& e) {
    return readers_[e.file]->read_at(
        SpillBlockRef{e.session_id, e.offset});
  }

  std::vector<std::unique_ptr<SpillReader>> readers_;
  std::vector<Entry> entries_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::unique_ptr<SessionGroupStream> SpillSet::open() const {
  return std::make_unique<SpillSetStream>(files_);
}

Dataset SpillSet::load() const {
  Dataset data;
  std::unique_ptr<SessionGroupStream> stream = open();
  while (std::optional<SessionRecordGroup> group = stream->next()) {
    for (auto& r : group->player_sessions) {
      data.player_sessions.push_back(std::move(r));
    }
    for (auto& r : group->cdn_sessions) {
      data.cdn_sessions.push_back(std::move(r));
    }
    for (auto& r : group->player_chunks) {
      data.player_chunks.push_back(std::move(r));
    }
    for (auto& r : group->cdn_chunks) {
      data.cdn_chunks.push_back(std::move(r));
    }
    for (auto& r : group->tcp_snapshots) {
      data.tcp_snapshots.push_back(std::move(r));
    }
  }
  return data;
}

}  // namespace vstream::telemetry
