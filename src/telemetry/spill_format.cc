#include "telemetry/spill_format.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "failpoints/failpoint.h"
#include "sim/host_error.h"
#include "telemetry/crc32c.h"

namespace vstream::telemetry {

namespace {

// --------------------------------------------------------------- encoding

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.append(bytes, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.append(bytes, 8);
}

void put_f64(std::string& out, double v) {
  // Raw IEEE-754 bits: the round trip is bit-exact, so CSV re-export of a
  // spilled dataset is byte-identical to the in-memory path.
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_bool(std::string& out, bool v) { put_u8(out, v ? 1 : 0); }

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

/// Bounds-checked read cursor over one block payload.
struct Cursor {
  const char* p;
  const char* end;
  const std::filesystem::path& path;

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      throw std::runtime_error("spill: truncated block payload in " +
                               path.string());
    }
  }
  std::uint32_t get_u32() {
    need(4);
    const std::uint32_t v = load_u32(p);
    p += 4;
    return v;
  }
  std::uint64_t get_u64() {
    need(8);
    const std::uint64_t v = load_u64(p);
    p += 8;
    return v;
  }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  std::uint8_t get_u8() {
    need(1);
    return static_cast<std::uint8_t>(*p++);
  }
  bool get_bool() { return get_u8() != 0; }
  std::string get_str() {
    const std::uint32_t len = get_u32();
    need(len);
    std::string s(p, len);
    p += len;
    return s;
  }
};

// ------------------------------------------------------ record serializers
// Field order mirrors the struct declarations in records.h; session_id is
// block-level and omitted.

void put_record(std::string& out, const PlayerSessionRecord& r) {
  put_u32(out, r.client_ip);
  put_str(out, r.user_agent);
  put_f64(out, r.video_duration_s);
  put_f64(out, r.start_time_ms);
  put_f64(out, r.startup_ms);
  put_u32(out, r.chunks_requested);
  put_bool(out, r.completed);
}

PlayerSessionRecord get_player_session(Cursor& c, std::uint64_t id) {
  PlayerSessionRecord r;
  r.session_id = id;
  r.client_ip = c.get_u32();
  r.user_agent = c.get_str();
  r.video_duration_s = c.get_f64();
  r.start_time_ms = c.get_f64();
  r.startup_ms = c.get_f64();
  r.chunks_requested = c.get_u32();
  r.completed = c.get_bool();
  return r;
}

void put_record(std::string& out, const CdnSessionRecord& r) {
  put_u32(out, r.observed_ip);
  put_str(out, r.observed_user_agent);
  put_u32(out, r.pop);
  put_u32(out, r.server);
  put_str(out, r.org);
  put_u8(out, static_cast<std::uint8_t>(r.access));
  put_str(out, r.city);
  put_str(out, r.country);
  put_f64(out, r.client_distance_km);
}

CdnSessionRecord get_cdn_session(Cursor& c, std::uint64_t id) {
  CdnSessionRecord r;
  r.session_id = id;
  r.observed_ip = c.get_u32();
  r.observed_user_agent = c.get_str();
  r.pop = c.get_u32();
  r.server = c.get_u32();
  r.org = c.get_str();
  r.access = static_cast<net::AccessType>(c.get_u8());
  r.city = c.get_str();
  r.country = c.get_str();
  r.client_distance_km = c.get_f64();
  return r;
}

void put_record(std::string& out, const PlayerChunkRecord& r) {
  put_u32(out, r.chunk_id);
  put_f64(out, r.request_sent_ms);
  put_f64(out, r.dfb_ms);
  put_f64(out, r.dlb_ms);
  put_u32(out, r.bitrate_kbps);
  put_f64(out, r.rebuffer_ms);
  put_u32(out, r.rebuffer_count);
  put_bool(out, r.visible);
  put_f64(out, r.avg_fps);
  put_u32(out, r.dropped_frames);
  put_u32(out, r.total_frames);
  put_u32(out, r.retries);
  put_u32(out, r.timeouts);
  put_bool(out, r.failed_over);
  put_f64(out, r.recovery_ms);
}

PlayerChunkRecord get_player_chunk(Cursor& c, std::uint64_t id) {
  PlayerChunkRecord r;
  r.session_id = id;
  r.chunk_id = c.get_u32();
  r.request_sent_ms = c.get_f64();
  r.dfb_ms = c.get_f64();
  r.dlb_ms = c.get_f64();
  r.bitrate_kbps = c.get_u32();
  r.rebuffer_ms = c.get_f64();
  r.rebuffer_count = c.get_u32();
  r.visible = c.get_bool();
  r.avg_fps = c.get_f64();
  r.dropped_frames = c.get_u32();
  r.total_frames = c.get_u32();
  r.retries = c.get_u32();
  r.timeouts = c.get_u32();
  r.failed_over = c.get_bool();
  r.recovery_ms = c.get_f64();
  return r;
}

void put_record(std::string& out, const CdnChunkRecord& r) {
  put_u32(out, r.chunk_id);
  put_f64(out, r.dwait_ms);
  put_f64(out, r.dopen_ms);
  put_f64(out, r.dread_ms);
  put_f64(out, r.dbe_ms);
  put_u8(out, static_cast<std::uint8_t>(r.cache_level));
  put_u64(out, r.chunk_bytes);
  put_u32(out, r.pop);
  put_u32(out, r.server);
  put_bool(out, r.served_stale);
  put_bool(out, r.shed);
  put_bool(out, r.hedged);
  put_bool(out, r.hedge_won);
  put_bool(out, r.budget_denied);
  put_bool(out, r.served_swr);
  put_u8(out, static_cast<std::uint8_t>(r.breaker));
}

CdnChunkRecord get_cdn_chunk(Cursor& c, std::uint64_t id) {
  CdnChunkRecord r;
  r.session_id = id;
  r.chunk_id = c.get_u32();
  r.dwait_ms = c.get_f64();
  r.dopen_ms = c.get_f64();
  r.dread_ms = c.get_f64();
  r.dbe_ms = c.get_f64();
  r.cache_level = static_cast<cdn::CacheLevel>(c.get_u8());
  r.chunk_bytes = c.get_u64();
  r.pop = c.get_u32();
  r.server = c.get_u32();
  r.served_stale = c.get_bool();
  r.shed = c.get_bool();
  r.hedged = c.get_bool();
  r.hedge_won = c.get_bool();
  r.budget_denied = c.get_bool();
  r.served_swr = c.get_bool();
  r.breaker = static_cast<cdn::BreakerState>(c.get_u8());
  return r;
}

void put_record(std::string& out, const TcpSnapshotRecord& r) {
  put_u32(out, r.chunk_id);
  put_f64(out, r.at_ms);
  put_f64(out, r.info.srtt_ms);
  put_f64(out, r.info.rttvar_ms);
  put_u32(out, r.info.cwnd_segments);
  put_u32(out, r.info.ssthresh_segments);
  put_u32(out, r.info.mss_bytes);
  put_u64(out, r.info.total_retrans);
  put_u64(out, r.info.segments_out);
  put_u64(out, r.info.bytes_acked);
  put_bool(out, r.info.in_slow_start);
}

TcpSnapshotRecord get_tcp_snapshot(Cursor& c, std::uint64_t id) {
  TcpSnapshotRecord r;
  r.session_id = id;
  r.chunk_id = c.get_u32();
  r.at_ms = c.get_f64();
  r.info.srtt_ms = c.get_f64();
  r.info.rttvar_ms = c.get_f64();
  r.info.cwnd_segments = c.get_u32();
  r.info.ssthresh_segments = c.get_u32();
  r.info.mss_bytes = c.get_u32();
  r.info.total_retrans = c.get_u64();
  r.info.segments_out = c.get_u64();
  r.info.bytes_acked = c.get_u64();
  r.info.in_slow_start = c.get_bool();
  return r;
}

SessionRecordGroup decode_payload(const std::string& payload,
                                  std::uint64_t session_id,
                                  const std::filesystem::path& path) {
  Cursor c{payload.data(), payload.data() + payload.size(), path};
  SessionRecordGroup group;
  group.session_id = session_id;
  const std::uint32_t n_ps = c.get_u32();
  const std::uint32_t n_cs = c.get_u32();
  const std::uint32_t n_pc = c.get_u32();
  const std::uint32_t n_cc = c.get_u32();
  const std::uint32_t n_ts = c.get_u32();
  group.player_sessions.reserve(n_ps);
  group.cdn_sessions.reserve(n_cs);
  group.player_chunks.reserve(n_pc);
  group.cdn_chunks.reserve(n_cc);
  group.tcp_snapshots.reserve(n_ts);
  for (std::uint32_t i = 0; i < n_ps; ++i) {
    group.player_sessions.push_back(get_player_session(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_cs; ++i) {
    group.cdn_sessions.push_back(get_cdn_session(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_pc; ++i) {
    group.player_chunks.push_back(get_player_chunk(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_cc; ++i) {
    group.cdn_chunks.push_back(get_cdn_chunk(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_ts; ++i) {
    group.tcp_snapshots.push_back(get_tcp_snapshot(c, session_id));
  }
  if (c.p != c.end) {
    throw std::runtime_error("spill: trailing bytes in block payload in " +
                             path.string());
  }
  return group;
}

constexpr std::uint64_t kFileHeaderBytes = 8;    // magic + version
constexpr std::uint64_t kBlockHeaderBytes = 24;  // marker+id+size+crc
constexpr std::uint64_t kBlockTrailerBytes = 4;  // payload crc
constexpr std::uint64_t kCommitFrameBytes = 16;  // marker+count+crc

/// Validate a spill file header read into `raw` (8 bytes); throws on a
/// foreign or future file.
void check_file_header(const char* raw, const std::filesystem::path& path) {
  if (load_u32(raw) != kSpillMagic) {
    throw std::runtime_error("spill: bad magic in " + path.string());
  }
  const std::uint32_t version = load_u32(raw + 4);
  if (version != kSpillVersion) {
    throw std::runtime_error("spill: unsupported version " +
                             std::to_string(version) + " in " + path.string());
  }
}

}  // namespace

// -------------------------------------------------------------- SpillWriter

SpillWriter::SpillWriter(const std::filesystem::path& path)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  if (!out_) {
    throw sim::HostIoError("spill: cannot open " + path.string() +
                           " for writing");
  }
  std::string header;
  put_u32(header, kSpillMagic);
  put_u32(header, kSpillVersion);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  offset_ = kFileHeaderBytes;
}

SpillWriter::SpillWriter(const std::filesystem::path& path,
                         std::uint64_t committed_bytes,
                         std::uint64_t blocks_already_written)
    : path_(path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw sim::HostIoError("spill: cannot resume missing file " +
                           path.string());
  }
  if (committed_bytes < kFileHeaderBytes || size < committed_bytes) {
    throw std::runtime_error(
        "spill: committed offset " + std::to_string(committed_bytes) +
        " is not inside " + path.string() + " (size " + std::to_string(size) +
        ") — checkpoint and spill file disagree");
  }
  {
    std::ifstream in(path, std::ios::binary);
    char raw[kFileHeaderBytes];
    if (!in.read(raw, kFileHeaderBytes)) {
      throw std::runtime_error("spill: truncated header in " + path.string());
    }
    check_file_header(raw, path);
  }
  // Everything past the committed offset is uncommitted work from a
  // crashed writer; drop it so the resumed run re-emits those sessions.
  std::filesystem::resize_file(path, committed_bytes);
  out_.open(path, std::ios::binary | std::ios::app);
  if (!out_) {
    throw sim::HostIoError("spill: cannot reopen " + path.string() +
                           " for append");
  }
  offset_ = committed_bytes;
  blocks_written_ = blocks_already_written;
}

SpillWriter::~SpillWriter() {
  if (out_.is_open()) out_.close();
}

void SpillWriter::write(const SessionRecordGroup& group) {
  // Failpoint spill.write: an injected host failure takes the same road
  // as a real one — fail the stream, let the post-write check throw.
  if (failpoints::should_fail(failpoints::Site::kSpillWrite)) {
    out_.setstate(std::ios::badbit);
  }
  scratch_.clear();
  put_u32(scratch_, static_cast<std::uint32_t>(group.player_sessions.size()));
  put_u32(scratch_, static_cast<std::uint32_t>(group.cdn_sessions.size()));
  put_u32(scratch_, static_cast<std::uint32_t>(group.player_chunks.size()));
  put_u32(scratch_, static_cast<std::uint32_t>(group.cdn_chunks.size()));
  put_u32(scratch_, static_cast<std::uint32_t>(group.tcp_snapshots.size()));
  for (const auto& r : group.player_sessions) put_record(scratch_, r);
  for (const auto& r : group.cdn_sessions) put_record(scratch_, r);
  for (const auto& r : group.player_chunks) put_record(scratch_, r);
  for (const auto& r : group.cdn_chunks) put_record(scratch_, r);
  for (const auto& r : group.tcp_snapshots) put_record(scratch_, r);

  frame_.clear();
  put_u32(frame_, kSpillBlockMarker);
  put_u64(frame_, group.session_id);
  put_u64(frame_, scratch_.size());
  put_u32(frame_, crc32c(frame_.data(), frame_.size()));  // header CRC
  put_u32(frame_, crc32c(scratch_.data(), scratch_.size()));
  // Header (incl. both CRCs staged back to back): write header bytes,
  // payload, then the payload CRC that was staged after the header.
  out_.write(frame_.data(), static_cast<std::streamsize>(kBlockHeaderBytes));
  out_.write(scratch_.data(), static_cast<std::streamsize>(scratch_.size()));
  out_.write(frame_.data() + kBlockHeaderBytes,
             static_cast<std::streamsize>(kBlockTrailerBytes));
  ++blocks_written_;

  // Commit record: the group above is fully written; a recovery scan that
  // sees this frame knows every prior byte belongs to complete blocks.
  frame_.clear();
  put_u32(frame_, kSpillCommitMarker);
  put_u64(frame_, blocks_written_);
  put_u32(frame_, crc32c(frame_.data(), frame_.size()));
  out_.write(frame_.data(), static_cast<std::streamsize>(frame_.size()));

  // Fail fast on a write error: nothing after a failed block can commit,
  // and the committed prefix stays salvageable for --resume / analyze.
  if (out_.fail()) {
    throw sim::HostIoError("spill: error writing " + path_.string());
  }

  offset_ += kBlockHeaderBytes + scratch_.size() + kBlockTrailerBytes +
             kCommitFrameBytes;
}

std::uint64_t SpillWriter::flush_committed() {
  if (failpoints::should_fail(failpoints::Site::kSpillFlush)) {
    out_.setstate(std::ios::badbit);
  }
  out_.flush();
  if (out_.fail()) {
    throw sim::HostIoError("spill: error writing " + path_.string());
  }
  return offset_;
}

void SpillWriter::close() {
  if (!out_.is_open()) return;
  out_.close();
  if (out_.fail()) {
    throw sim::HostIoError("spill: error writing " + path_.string());
  }
}

// -------------------------------------------------------------- SpillReader

SpillReader::SpillReader(const std::filesystem::path& path,
                         SpillReadStats* stats)
    : in_(path, std::ios::binary), path_(path), external_stats_(stats) {
  if (!in_) {
    throw std::runtime_error("spill: cannot open " + path.string());
  }
  in_.seekg(0, std::ios::end);
  file_size_ = static_cast<std::uint64_t>(in_.tellg());
  in_.seekg(0, std::ios::beg);
  char raw[kFileHeaderBytes];
  if (!in_.read(raw, kFileHeaderBytes)) {
    throw std::runtime_error("spill: truncated header in " + path.string());
  }
  check_file_header(raw, path_);
}

void SpillReader::bump(std::uint64_t SpillReadStats::* counter,
                       std::uint64_t n) {
  stats_.*counter += n;
  if (external_stats_ != nullptr) external_stats_->*counter += n;
}

SpillReader::FrameKind SpillReader::parse_frame(
    bool decode, std::optional<SessionRecordGroup>* out, SpillBlockRef* ref) {
  const std::uint64_t pos = static_cast<std::uint64_t>(in_.tellg());
  if (pos >= file_size_) return FrameKind::kEnd;
  const std::uint64_t remaining = file_size_ - pos;

  const auto torn_tail = [&]() {
    bump(&SpillReadStats::torn_tail_bytes, remaining);
    in_.clear();
    in_.seekg(0, std::ios::end);
    return FrameKind::kEnd;
  };
  const auto resync = [&]() {
    bump(&SpillReadStats::bytes_skipped, 1);
    in_.clear();
    in_.seekg(static_cast<std::streamoff>(pos + 1), std::ios::beg);
    return FrameKind::kSkip;
  };

  char head[kBlockHeaderBytes];
  if (remaining < 4) return torn_tail();
  if (!in_.read(head, 4)) return torn_tail();
  const std::uint32_t marker = load_u32(head);

  if (marker == kSpillCommitMarker) {
    if (remaining < kCommitFrameBytes) return torn_tail();
    if (!in_.read(head + 4, kCommitFrameBytes - 4)) return torn_tail();
    if (crc32c(head, kCommitFrameBytes - 4) !=
        load_u32(head + kCommitFrameBytes - 4)) {
      return resync();
    }
    bump(&SpillReadStats::commit_frames, 1);
    return FrameKind::kCommit;
  }
  if (marker != kSpillBlockMarker) return resync();

  if (remaining < kBlockHeaderBytes) return torn_tail();
  if (!in_.read(head + 4, kBlockHeaderBytes - 4)) return torn_tail();
  if (crc32c(head, 20) != load_u32(head + 20)) return resync();
  const std::uint64_t session_id = load_u64(head + 4);
  const std::uint64_t payload_size = load_u64(head + 12);
  const std::uint64_t frame_bytes =
      kBlockHeaderBytes + payload_size + kBlockTrailerBytes;
  // The size field is CRC-protected, so a frame that does not fit in the
  // remaining bytes means the writer died mid-block: a torn tail.
  if (remaining < frame_bytes) return torn_tail();

  if (!decode) {
    if (ref != nullptr) {
      ref->session_id = session_id;
      ref->offset = pos;
    }
    in_.seekg(static_cast<std::streamoff>(payload_size + kBlockTrailerBytes),
              std::ios::cur);
    return FrameKind::kBlock;
  }

  scratch_.resize(payload_size);
  char trailer[kBlockTrailerBytes];
  if (!in_.read(scratch_.data(),
                static_cast<std::streamsize>(payload_size)) ||
      !in_.read(trailer, kBlockTrailerBytes)) {
    return torn_tail();
  }
  out->reset();
  if (crc32c(scratch_.data(), scratch_.size()) != load_u32(trailer)) {
    bump(&SpillReadStats::blocks_skipped, 1);
    bump(&SpillReadStats::bytes_skipped, frame_bytes);
    return FrameKind::kBlock;
  }
  try {
    *out = decode_payload(scratch_, session_id, path_);
  } catch (const std::exception&) {
    // CRC-valid but undecodable: a writer bug or an adversarial file —
    // either way skip the block rather than abort the analysis.
    bump(&SpillReadStats::blocks_skipped, 1);
    bump(&SpillReadStats::bytes_skipped, frame_bytes);
    return FrameKind::kBlock;
  }
  bump(&SpillReadStats::blocks_ok, 1);
  bump(&SpillReadStats::bytes_salvaged, payload_size);
  return FrameKind::kBlock;
}

std::optional<SessionRecordGroup> SpillReader::next() {
  for (;;) {
    std::optional<SessionRecordGroup> group;
    switch (parse_frame(/*decode=*/true, &group, nullptr)) {
      case FrameKind::kBlock:
        if (group.has_value()) return group;
        break;  // corrupt block skipped; keep scanning
      case FrameKind::kCommit:
      case FrameKind::kSkip:
        break;
      case FrameKind::kEnd:
        return std::nullopt;
    }
  }
}

std::vector<SpillBlockRef> SpillReader::index() {
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(kFileHeaderBytes), std::ios::beg);
  std::vector<SpillBlockRef> refs;
  for (;;) {
    SpillBlockRef ref;
    switch (parse_frame(/*decode=*/false, nullptr, &ref)) {
      case FrameKind::kBlock:
        refs.push_back(ref);
        break;
      case FrameKind::kCommit:
      case FrameKind::kSkip:
        break;
      case FrameKind::kEnd:
        in_.clear();
        return refs;
    }
  }
}

std::optional<SessionRecordGroup> SpillReader::read_at(
    const SpillBlockRef& ref) {
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(ref.offset), std::ios::beg);
  std::optional<SessionRecordGroup> group;
  parse_frame(/*decode=*/true, &group, nullptr);
  return group;
}

// ----------------------------------------------------------------- SpillSet

namespace {

/// Merged ascending-session-id stream over a set of spill files, driven by
/// a pre-sorted (session_id, file, offset) index.  Blocks for the same
/// session across files are concatenated in file order — the canonical
/// merge's tie-break.  Corrupt blocks are skipped (accounted in `stats`);
/// a session whose every block is corrupt is absent from the stream.
class SpillSetStream final : public SessionGroupStream {
 public:
  SpillSetStream(const std::vector<std::filesystem::path>& files,
                 SpillReadStats* stats) {
    readers_.reserve(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      readers_.push_back(std::make_unique<SpillReader>(files[i], stats));
      for (const SpillBlockRef& ref : readers_.back()->index()) {
        entries_.push_back(Entry{ref.session_id, i, ref.offset});
      }
    }
    std::sort(entries_.begin(), entries_.end(), [](const Entry& a,
                                                   const Entry& b) {
      if (a.session_id != b.session_id) return a.session_id < b.session_id;
      if (a.file != b.file) return a.file < b.file;
      return a.offset < b.offset;
    });
  }

  std::optional<SessionRecordGroup> next() override {
    while (cursor_ < entries_.size()) {
      const std::uint64_t id = entries_[cursor_].session_id;
      std::optional<SessionRecordGroup> group;
      while (cursor_ < entries_.size() &&
             entries_[cursor_].session_id == id) {
        std::optional<SessionRecordGroup> piece =
            read_entry(entries_[cursor_++]);
        if (!piece.has_value()) continue;  // corrupt block: salvage the rest
        if (!group.has_value()) {
          group = std::move(piece);
        } else {
          group->append(std::move(*piece));
        }
      }
      if (group.has_value()) return group;
    }
    return std::nullopt;
  }

 private:
  struct Entry {
    std::uint64_t session_id;
    std::size_t file;
    std::uint64_t offset;
  };

  std::optional<SessionRecordGroup> read_entry(const Entry& e) {
    return readers_[e.file]->read_at(SpillBlockRef{e.session_id, e.offset});
  }

  std::vector<std::unique_ptr<SpillReader>> readers_;
  std::vector<Entry> entries_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::unique_ptr<SessionGroupStream> SpillSet::open(
    SpillReadStats* stats) const {
  return std::make_unique<SpillSetStream>(files_, stats);
}

Dataset SpillSet::load(SpillReadStats* stats) const {
  Dataset data;
  std::unique_ptr<SessionGroupStream> stream = open(stats);
  while (std::optional<SessionRecordGroup> group = stream->next()) {
    for (auto& r : group->player_sessions) {
      data.player_sessions.push_back(std::move(r));
    }
    for (auto& r : group->cdn_sessions) {
      data.cdn_sessions.push_back(std::move(r));
    }
    for (auto& r : group->player_chunks) {
      data.player_chunks.push_back(std::move(r));
    }
    for (auto& r : group->cdn_chunks) {
      data.cdn_chunks.push_back(std::move(r));
    }
    for (auto& r : group->tcp_snapshots) {
      data.tcp_snapshots.push_back(std::move(r));
    }
  }
  return data;
}

}  // namespace vstream::telemetry
