#include "telemetry/spill_format.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "failpoints/failpoint.h"
#include "sim/env_util.h"
#include "sim/host_error.h"
#include "telemetry/crc32c.h"
#include "telemetry/spill_codec.h"

namespace vstream::telemetry {

namespace {

// --------------------------------------------------------------- encoding

void put_u32(std::string& out, std::uint32_t v) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.append(bytes, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  out.append(bytes, 8);
}

void put_f64(std::string& out, double v) {
  // Raw IEEE-754 bits: the round trip is bit-exact, so CSV re-export of a
  // spilled dataset is byte-identical to the in-memory path.
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_bool(std::string& out, bool v) { put_u8(out, v ? 1 : 0); }

void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::uint32_t load_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

std::uint64_t load_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

/// Bounds-checked read cursor over one v2 block payload.
struct Cursor {
  const char* p;
  const char* end;
  const std::filesystem::path& path;

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      throw std::runtime_error("spill: truncated block payload in " +
                               path.string());
    }
  }
  std::uint32_t get_u32() {
    need(4);
    const std::uint32_t v = load_u32(p);
    p += 4;
    return v;
  }
  std::uint64_t get_u64() {
    need(8);
    const std::uint64_t v = load_u64(p);
    p += 8;
    return v;
  }
  double get_f64() { return std::bit_cast<double>(get_u64()); }
  std::uint8_t get_u8() {
    need(1);
    return static_cast<std::uint8_t>(*p++);
  }
  bool get_bool() { return get_u8() != 0; }
  std::string get_str() {
    const std::uint32_t len = get_u32();
    need(len);
    std::string s(p, len);
    p += len;
    return s;
  }
};

// --------------------------------------------- v2 (row) record serializers
// Field order mirrors the struct declarations in records.h; session_id is
// block-level and omitted.

void put_record(std::string& out, const PlayerSessionRecord& r) {
  put_u32(out, r.client_ip);
  put_str(out, r.user_agent);
  put_f64(out, r.video_duration_s);
  put_f64(out, r.start_time_ms);
  put_f64(out, r.startup_ms);
  put_u32(out, r.chunks_requested);
  put_bool(out, r.completed);
}

PlayerSessionRecord get_player_session(Cursor& c, std::uint64_t id) {
  PlayerSessionRecord r;
  r.session_id = id;
  r.client_ip = c.get_u32();
  r.user_agent = c.get_str();
  r.video_duration_s = c.get_f64();
  r.start_time_ms = c.get_f64();
  r.startup_ms = c.get_f64();
  r.chunks_requested = c.get_u32();
  r.completed = c.get_bool();
  return r;
}

void put_record(std::string& out, const CdnSessionRecord& r) {
  put_u32(out, r.observed_ip);
  put_str(out, r.observed_user_agent);
  put_u32(out, r.pop);
  put_u32(out, r.server);
  put_str(out, r.org);
  put_u8(out, static_cast<std::uint8_t>(r.access));
  put_str(out, r.city);
  put_str(out, r.country);
  put_f64(out, r.client_distance_km);
}

CdnSessionRecord get_cdn_session(Cursor& c, std::uint64_t id) {
  CdnSessionRecord r;
  r.session_id = id;
  r.observed_ip = c.get_u32();
  r.observed_user_agent = c.get_str();
  r.pop = c.get_u32();
  r.server = c.get_u32();
  r.org = c.get_str();
  r.access = static_cast<net::AccessType>(c.get_u8());
  r.city = c.get_str();
  r.country = c.get_str();
  r.client_distance_km = c.get_f64();
  return r;
}

void put_record(std::string& out, const PlayerChunkRecord& r) {
  put_u32(out, r.chunk_id);
  put_f64(out, r.request_sent_ms);
  put_f64(out, r.dfb_ms);
  put_f64(out, r.dlb_ms);
  put_u32(out, r.bitrate_kbps);
  put_f64(out, r.rebuffer_ms);
  put_u32(out, r.rebuffer_count);
  put_bool(out, r.visible);
  put_f64(out, r.avg_fps);
  put_u32(out, r.dropped_frames);
  put_u32(out, r.total_frames);
  put_u32(out, r.retries);
  put_u32(out, r.timeouts);
  put_bool(out, r.failed_over);
  put_f64(out, r.recovery_ms);
}

PlayerChunkRecord get_player_chunk(Cursor& c, std::uint64_t id) {
  PlayerChunkRecord r;
  r.session_id = id;
  r.chunk_id = c.get_u32();
  r.request_sent_ms = c.get_f64();
  r.dfb_ms = c.get_f64();
  r.dlb_ms = c.get_f64();
  r.bitrate_kbps = c.get_u32();
  r.rebuffer_ms = c.get_f64();
  r.rebuffer_count = c.get_u32();
  r.visible = c.get_bool();
  r.avg_fps = c.get_f64();
  r.dropped_frames = c.get_u32();
  r.total_frames = c.get_u32();
  r.retries = c.get_u32();
  r.timeouts = c.get_u32();
  r.failed_over = c.get_bool();
  r.recovery_ms = c.get_f64();
  return r;
}

void put_record(std::string& out, const CdnChunkRecord& r) {
  put_u32(out, r.chunk_id);
  put_f64(out, r.dwait_ms);
  put_f64(out, r.dopen_ms);
  put_f64(out, r.dread_ms);
  put_f64(out, r.dbe_ms);
  put_u8(out, static_cast<std::uint8_t>(r.cache_level));
  put_u64(out, r.chunk_bytes);
  put_u32(out, r.pop);
  put_u32(out, r.server);
  put_bool(out, r.served_stale);
  put_bool(out, r.shed);
  put_bool(out, r.hedged);
  put_bool(out, r.hedge_won);
  put_bool(out, r.budget_denied);
  put_bool(out, r.served_swr);
  put_u8(out, static_cast<std::uint8_t>(r.breaker));
}

CdnChunkRecord get_cdn_chunk(Cursor& c, std::uint64_t id) {
  CdnChunkRecord r;
  r.session_id = id;
  r.chunk_id = c.get_u32();
  r.dwait_ms = c.get_f64();
  r.dopen_ms = c.get_f64();
  r.dread_ms = c.get_f64();
  r.dbe_ms = c.get_f64();
  r.cache_level = static_cast<cdn::CacheLevel>(c.get_u8());
  r.chunk_bytes = c.get_u64();
  r.pop = c.get_u32();
  r.server = c.get_u32();
  r.served_stale = c.get_bool();
  r.shed = c.get_bool();
  r.hedged = c.get_bool();
  r.hedge_won = c.get_bool();
  r.budget_denied = c.get_bool();
  r.served_swr = c.get_bool();
  r.breaker = static_cast<cdn::BreakerState>(c.get_u8());
  return r;
}

void put_record(std::string& out, const TcpSnapshotRecord& r) {
  put_u32(out, r.chunk_id);
  put_f64(out, r.at_ms);
  put_f64(out, r.info.srtt_ms);
  put_f64(out, r.info.rttvar_ms);
  put_u32(out, r.info.cwnd_segments);
  put_u32(out, r.info.ssthresh_segments);
  put_u32(out, r.info.mss_bytes);
  put_u64(out, r.info.total_retrans);
  put_u64(out, r.info.segments_out);
  put_u64(out, r.info.bytes_acked);
  put_bool(out, r.info.in_slow_start);
}

TcpSnapshotRecord get_tcp_snapshot(Cursor& c, std::uint64_t id) {
  TcpSnapshotRecord r;
  r.session_id = id;
  r.chunk_id = c.get_u32();
  r.at_ms = c.get_f64();
  r.info.srtt_ms = c.get_f64();
  r.info.rttvar_ms = c.get_f64();
  r.info.cwnd_segments = c.get_u32();
  r.info.ssthresh_segments = c.get_u32();
  r.info.mss_bytes = c.get_u32();
  r.info.total_retrans = c.get_u64();
  r.info.segments_out = c.get_u64();
  r.info.bytes_acked = c.get_u64();
  r.info.in_slow_start = c.get_bool();
  return r;
}

void encode_payload_v2(std::string& out, const SessionRecordGroup& group) {
  put_u32(out, static_cast<std::uint32_t>(group.player_sessions.size()));
  put_u32(out, static_cast<std::uint32_t>(group.cdn_sessions.size()));
  put_u32(out, static_cast<std::uint32_t>(group.player_chunks.size()));
  put_u32(out, static_cast<std::uint32_t>(group.cdn_chunks.size()));
  put_u32(out, static_cast<std::uint32_t>(group.tcp_snapshots.size()));
  for (const auto& r : group.player_sessions) put_record(out, r);
  for (const auto& r : group.cdn_sessions) put_record(out, r);
  for (const auto& r : group.player_chunks) put_record(out, r);
  for (const auto& r : group.cdn_chunks) put_record(out, r);
  for (const auto& r : group.tcp_snapshots) put_record(out, r);
}

SessionRecordGroup decode_payload_v2(const char* data, std::size_t size,
                                     std::uint64_t session_id,
                                     const std::filesystem::path& path) {
  Cursor c{data, data + size, path};
  SessionRecordGroup group;
  group.session_id = session_id;
  const std::uint32_t n_ps = c.get_u32();
  const std::uint32_t n_cs = c.get_u32();
  const std::uint32_t n_pc = c.get_u32();
  const std::uint32_t n_cc = c.get_u32();
  const std::uint32_t n_ts = c.get_u32();
  group.player_sessions.reserve(n_ps);
  group.cdn_sessions.reserve(n_cs);
  group.player_chunks.reserve(n_pc);
  group.cdn_chunks.reserve(n_cc);
  group.tcp_snapshots.reserve(n_ts);
  for (std::uint32_t i = 0; i < n_ps; ++i) {
    group.player_sessions.push_back(get_player_session(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_cs; ++i) {
    group.cdn_sessions.push_back(get_cdn_session(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_pc; ++i) {
    group.player_chunks.push_back(get_player_chunk(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_cc; ++i) {
    group.cdn_chunks.push_back(get_cdn_chunk(c, session_id));
  }
  for (std::uint32_t i = 0; i < n_ts; ++i) {
    group.tcp_snapshots.push_back(get_tcp_snapshot(c, session_id));
  }
  if (c.p != c.end) {
    throw std::runtime_error("spill: trailing bytes in block payload in " +
                             path.string());
  }
  return group;
}

// ------------------------------------------------- v3 (columnar) payloads
// Column order within each stream is the struct declaration order —
// exactly the v2 field order, transposed.  Encoding per column lives in
// spill_codec.h; the helpers below just gather/scatter fields.

/// Decode-bomb guard: a block holds one session's records, so any count
/// beyond this is a writer bug or adversarial input, rejected before any
/// allocation is sized from it.
constexpr std::uint64_t kMaxBlockRecords = std::uint64_t{1} << 24;

template <typename Rec, typename Get>
void int_col(std::string& out, const std::vector<Rec>& recs,
             std::vector<std::uint64_t>& tmp, Get get) {
  tmp.clear();
  tmp.reserve(recs.size());
  for (const Rec& r : recs) {
    tmp.push_back(static_cast<std::uint64_t>(get(r)));
  }
  codec::encode_int_column(out, tmp);
}

template <typename Rec, typename Get>
void f64_col(std::string& out, const std::vector<Rec>& recs,
             std::vector<std::uint64_t>& tmp, Get get) {
  tmp.clear();
  tmp.reserve(recs.size());
  for (const Rec& r : recs) {
    tmp.push_back(std::bit_cast<std::uint64_t>(static_cast<double>(get(r))));
  }
  codec::encode_f64_column(out, tmp);
}

template <typename Rec, typename Get>
void bool_col(std::string& out, const std::vector<Rec>& recs,
              std::vector<std::uint8_t>& tmp, Get get) {
  tmp.clear();
  tmp.reserve(recs.size());
  for (const Rec& r : recs) {
    tmp.push_back(get(r) ? 1 : 0);
  }
  codec::encode_bool_column(out, tmp);
}

template <typename Rec, typename Set>
void get_int_col(codec::Reader& r, std::vector<Rec>& recs,
                 std::vector<std::uint64_t>& tmp, std::uint64_t max,
                 Set set) {
  codec::decode_int_column(r, recs.size(), tmp);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (tmp[i] > max) codec::fail("integer column value out of range");
    set(recs[i], tmp[i]);
  }
}

template <typename Rec, typename Set>
void get_f64_col(codec::Reader& r, std::vector<Rec>& recs,
                 std::vector<std::uint64_t>& tmp, Set set) {
  codec::decode_f64_column(r, recs.size(), tmp);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    set(recs[i], std::bit_cast<double>(tmp[i]));
  }
}

template <typename Rec, typename Set>
void get_bool_col(codec::Reader& r, std::vector<Rec>& recs,
                  std::vector<std::uint8_t>& tmp, Set set) {
  codec::decode_bool_column(r, recs.size(), tmp);
  for (std::size_t i = 0; i < recs.size(); ++i) {
    set(recs[i], tmp[i] != 0);
  }
}

constexpr std::uint64_t kMaxU32 = 0xFFFFFFFFull;
constexpr std::uint64_t kMaxU64 = ~std::uint64_t{0};
constexpr std::uint64_t kMaxU8 = 0xFFull;

void encode_payload_v3(std::string& out, const SessionRecordGroup& g,
                       std::vector<std::uint64_t>& tmp,
                       std::vector<std::uint8_t>& btmp) {
  codec::put_varint(out, g.player_sessions.size());
  codec::put_varint(out, g.cdn_sessions.size());
  codec::put_varint(out, g.player_chunks.size());
  codec::put_varint(out, g.cdn_chunks.size());
  codec::put_varint(out, g.tcp_snapshots.size());

  const auto& ps = g.player_sessions;
  int_col(out, ps, tmp, [](const auto& r) { return r.client_ip; });
  for (const auto& r : ps) codec::put_string(out, r.user_agent);
  f64_col(out, ps, tmp, [](const auto& r) { return r.video_duration_s; });
  f64_col(out, ps, tmp, [](const auto& r) { return r.start_time_ms; });
  f64_col(out, ps, tmp, [](const auto& r) { return r.startup_ms; });
  int_col(out, ps, tmp, [](const auto& r) { return r.chunks_requested; });
  bool_col(out, ps, btmp, [](const auto& r) { return r.completed; });

  const auto& cs = g.cdn_sessions;
  int_col(out, cs, tmp, [](const auto& r) { return r.observed_ip; });
  for (const auto& r : cs) codec::put_string(out, r.observed_user_agent);
  int_col(out, cs, tmp, [](const auto& r) { return r.pop; });
  int_col(out, cs, tmp, [](const auto& r) { return r.server; });
  for (const auto& r : cs) codec::put_string(out, r.org);
  int_col(out, cs, tmp, [](const auto& r) {
    return static_cast<std::uint8_t>(r.access);
  });
  for (const auto& r : cs) codec::put_string(out, r.city);
  for (const auto& r : cs) codec::put_string(out, r.country);
  f64_col(out, cs, tmp, [](const auto& r) { return r.client_distance_km; });

  const auto& pc = g.player_chunks;
  int_col(out, pc, tmp, [](const auto& r) { return r.chunk_id; });
  f64_col(out, pc, tmp, [](const auto& r) { return r.request_sent_ms; });
  f64_col(out, pc, tmp, [](const auto& r) { return r.dfb_ms; });
  f64_col(out, pc, tmp, [](const auto& r) { return r.dlb_ms; });
  int_col(out, pc, tmp, [](const auto& r) { return r.bitrate_kbps; });
  f64_col(out, pc, tmp, [](const auto& r) { return r.rebuffer_ms; });
  int_col(out, pc, tmp, [](const auto& r) { return r.rebuffer_count; });
  bool_col(out, pc, btmp, [](const auto& r) { return r.visible; });
  f64_col(out, pc, tmp, [](const auto& r) { return r.avg_fps; });
  int_col(out, pc, tmp, [](const auto& r) { return r.dropped_frames; });
  int_col(out, pc, tmp, [](const auto& r) { return r.total_frames; });
  int_col(out, pc, tmp, [](const auto& r) { return r.retries; });
  int_col(out, pc, tmp, [](const auto& r) { return r.timeouts; });
  bool_col(out, pc, btmp, [](const auto& r) { return r.failed_over; });
  f64_col(out, pc, tmp, [](const auto& r) { return r.recovery_ms; });

  const auto& cc = g.cdn_chunks;
  int_col(out, cc, tmp, [](const auto& r) { return r.chunk_id; });
  f64_col(out, cc, tmp, [](const auto& r) { return r.dwait_ms; });
  f64_col(out, cc, tmp, [](const auto& r) { return r.dopen_ms; });
  f64_col(out, cc, tmp, [](const auto& r) { return r.dread_ms; });
  f64_col(out, cc, tmp, [](const auto& r) { return r.dbe_ms; });
  int_col(out, cc, tmp, [](const auto& r) {
    return static_cast<std::uint8_t>(r.cache_level);
  });
  int_col(out, cc, tmp, [](const auto& r) { return r.chunk_bytes; });
  int_col(out, cc, tmp, [](const auto& r) { return r.pop; });
  int_col(out, cc, tmp, [](const auto& r) { return r.server; });
  bool_col(out, cc, btmp, [](const auto& r) { return r.served_stale; });
  bool_col(out, cc, btmp, [](const auto& r) { return r.shed; });
  bool_col(out, cc, btmp, [](const auto& r) { return r.hedged; });
  bool_col(out, cc, btmp, [](const auto& r) { return r.hedge_won; });
  bool_col(out, cc, btmp, [](const auto& r) { return r.budget_denied; });
  bool_col(out, cc, btmp, [](const auto& r) { return r.served_swr; });
  int_col(out, cc, tmp, [](const auto& r) {
    return static_cast<std::uint8_t>(r.breaker);
  });

  const auto& ts = g.tcp_snapshots;
  int_col(out, ts, tmp, [](const auto& r) { return r.chunk_id; });
  f64_col(out, ts, tmp, [](const auto& r) { return r.at_ms; });
  f64_col(out, ts, tmp, [](const auto& r) { return r.info.srtt_ms; });
  f64_col(out, ts, tmp, [](const auto& r) { return r.info.rttvar_ms; });
  int_col(out, ts, tmp, [](const auto& r) { return r.info.cwnd_segments; });
  int_col(out, ts, tmp,
          [](const auto& r) { return r.info.ssthresh_segments; });
  int_col(out, ts, tmp, [](const auto& r) { return r.info.mss_bytes; });
  int_col(out, ts, tmp, [](const auto& r) { return r.info.total_retrans; });
  int_col(out, ts, tmp, [](const auto& r) { return r.info.segments_out; });
  int_col(out, ts, tmp, [](const auto& r) { return r.info.bytes_acked; });
  bool_col(out, ts, btmp, [](const auto& r) { return r.info.in_slow_start; });
}

SessionRecordGroup decode_payload_v3(const char* data, std::size_t size,
                                     std::uint64_t session_id,
                                     std::vector<std::uint64_t>& tmp,
                                     std::vector<std::uint8_t>& btmp) {
  codec::Reader r{data, data + size};
  SessionRecordGroup g;
  g.session_id = session_id;
  const std::uint64_t n_ps = codec::get_varint(r);
  const std::uint64_t n_cs = codec::get_varint(r);
  const std::uint64_t n_pc = codec::get_varint(r);
  const std::uint64_t n_cc = codec::get_varint(r);
  const std::uint64_t n_ts = codec::get_varint(r);
  if (n_ps > kMaxBlockRecords || n_cs > kMaxBlockRecords ||
      n_pc > kMaxBlockRecords || n_cc > kMaxBlockRecords ||
      n_ts > kMaxBlockRecords) {
    codec::fail("implausible record count in block");
  }

  auto& ps = g.player_sessions;
  ps.resize(n_ps);
  for (auto& rec : ps) rec.session_id = session_id;
  get_int_col(r, ps, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.client_ip = static_cast<std::uint32_t>(v);
              });
  for (auto& rec : ps) rec.user_agent = codec::get_string(r);
  get_f64_col(r, ps, tmp,
              [](auto& rec, double v) { rec.video_duration_s = v; });
  get_f64_col(r, ps, tmp, [](auto& rec, double v) { rec.start_time_ms = v; });
  get_f64_col(r, ps, tmp, [](auto& rec, double v) { rec.startup_ms = v; });
  get_int_col(r, ps, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.chunks_requested = static_cast<std::uint32_t>(v);
              });
  get_bool_col(r, ps, btmp, [](auto& rec, bool v) { rec.completed = v; });

  auto& cs = g.cdn_sessions;
  cs.resize(n_cs);
  for (auto& rec : cs) rec.session_id = session_id;
  get_int_col(r, cs, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.observed_ip = static_cast<std::uint32_t>(v);
              });
  for (auto& rec : cs) rec.observed_user_agent = codec::get_string(r);
  get_int_col(r, cs, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.pop = static_cast<std::uint32_t>(v);
              });
  get_int_col(r, cs, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.server = static_cast<std::uint32_t>(v);
              });
  for (auto& rec : cs) rec.org = codec::get_string(r);
  get_int_col(r, cs, tmp, kMaxU8,
              [](auto& rec, std::uint64_t v) {
                rec.access = static_cast<net::AccessType>(v);
              });
  for (auto& rec : cs) rec.city = codec::get_string(r);
  for (auto& rec : cs) rec.country = codec::get_string(r);
  get_f64_col(r, cs, tmp,
              [](auto& rec, double v) { rec.client_distance_km = v; });

  auto& pc = g.player_chunks;
  pc.resize(n_pc);
  for (auto& rec : pc) rec.session_id = session_id;
  get_int_col(r, pc, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.chunk_id = static_cast<std::uint32_t>(v);
              });
  get_f64_col(r, pc, tmp,
              [](auto& rec, double v) { rec.request_sent_ms = v; });
  get_f64_col(r, pc, tmp, [](auto& rec, double v) { rec.dfb_ms = v; });
  get_f64_col(r, pc, tmp, [](auto& rec, double v) { rec.dlb_ms = v; });
  get_int_col(r, pc, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.bitrate_kbps = static_cast<std::uint32_t>(v);
              });
  get_f64_col(r, pc, tmp, [](auto& rec, double v) { rec.rebuffer_ms = v; });
  get_int_col(r, pc, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.rebuffer_count = static_cast<std::uint32_t>(v);
              });
  get_bool_col(r, pc, btmp, [](auto& rec, bool v) { rec.visible = v; });
  get_f64_col(r, pc, tmp, [](auto& rec, double v) { rec.avg_fps = v; });
  get_int_col(r, pc, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.dropped_frames = static_cast<std::uint32_t>(v);
              });
  get_int_col(r, pc, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.total_frames = static_cast<std::uint32_t>(v);
              });
  get_int_col(r, pc, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.retries = static_cast<std::uint32_t>(v);
              });
  get_int_col(r, pc, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.timeouts = static_cast<std::uint32_t>(v);
              });
  get_bool_col(r, pc, btmp, [](auto& rec, bool v) { rec.failed_over = v; });
  get_f64_col(r, pc, tmp, [](auto& rec, double v) { rec.recovery_ms = v; });

  auto& cc = g.cdn_chunks;
  cc.resize(n_cc);
  for (auto& rec : cc) rec.session_id = session_id;
  get_int_col(r, cc, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.chunk_id = static_cast<std::uint32_t>(v);
              });
  get_f64_col(r, cc, tmp, [](auto& rec, double v) { rec.dwait_ms = v; });
  get_f64_col(r, cc, tmp, [](auto& rec, double v) { rec.dopen_ms = v; });
  get_f64_col(r, cc, tmp, [](auto& rec, double v) { rec.dread_ms = v; });
  get_f64_col(r, cc, tmp, [](auto& rec, double v) { rec.dbe_ms = v; });
  get_int_col(r, cc, tmp, kMaxU8,
              [](auto& rec, std::uint64_t v) {
                rec.cache_level = static_cast<cdn::CacheLevel>(v);
              });
  get_int_col(r, cc, tmp, kMaxU64,
              [](auto& rec, std::uint64_t v) { rec.chunk_bytes = v; });
  get_int_col(r, cc, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.pop = static_cast<std::uint32_t>(v);
              });
  get_int_col(r, cc, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.server = static_cast<std::uint32_t>(v);
              });
  get_bool_col(r, cc, btmp, [](auto& rec, bool v) { rec.served_stale = v; });
  get_bool_col(r, cc, btmp, [](auto& rec, bool v) { rec.shed = v; });
  get_bool_col(r, cc, btmp, [](auto& rec, bool v) { rec.hedged = v; });
  get_bool_col(r, cc, btmp, [](auto& rec, bool v) { rec.hedge_won = v; });
  get_bool_col(r, cc, btmp,
               [](auto& rec, bool v) { rec.budget_denied = v; });
  get_bool_col(r, cc, btmp, [](auto& rec, bool v) { rec.served_swr = v; });
  get_int_col(r, cc, tmp, kMaxU8,
              [](auto& rec, std::uint64_t v) {
                rec.breaker = static_cast<cdn::BreakerState>(v);
              });

  auto& ts = g.tcp_snapshots;
  ts.resize(n_ts);
  for (auto& rec : ts) rec.session_id = session_id;
  get_int_col(r, ts, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.chunk_id = static_cast<std::uint32_t>(v);
              });
  get_f64_col(r, ts, tmp, [](auto& rec, double v) { rec.at_ms = v; });
  get_f64_col(r, ts, tmp, [](auto& rec, double v) { rec.info.srtt_ms = v; });
  get_f64_col(r, ts, tmp,
              [](auto& rec, double v) { rec.info.rttvar_ms = v; });
  get_int_col(r, ts, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.info.cwnd_segments = static_cast<std::uint32_t>(v);
              });
  get_int_col(r, ts, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.info.ssthresh_segments = static_cast<std::uint32_t>(v);
              });
  get_int_col(r, ts, tmp, kMaxU32,
              [](auto& rec, std::uint64_t v) {
                rec.info.mss_bytes = static_cast<std::uint32_t>(v);
              });
  get_int_col(r, ts, tmp, kMaxU64,
              [](auto& rec, std::uint64_t v) { rec.info.total_retrans = v; });
  get_int_col(r, ts, tmp, kMaxU64,
              [](auto& rec, std::uint64_t v) { rec.info.segments_out = v; });
  get_int_col(r, ts, tmp, kMaxU64,
              [](auto& rec, std::uint64_t v) { rec.info.bytes_acked = v; });
  get_bool_col(r, ts, btmp,
               [](auto& rec, bool v) { rec.info.in_slow_start = v; });

  if (r.p != r.end) codec::fail("trailing bytes in block payload");
  return g;
}

/// The v2 row encoding size of a group, computed without encoding it —
/// the "logical" size behind SpillReadStats::logical_bytes, so the
/// compression ratio of a v3 file is measurable from the file alone.
std::uint64_t v2_payload_bytes(const SessionRecordGroup& g) {
  std::uint64_t b = 20;  // five u32 counts
  for (const auto& r : g.player_sessions) b += 37 + r.user_agent.size();
  for (const auto& r : g.cdn_sessions) {
    b += 37 + r.observed_user_agent.size() + r.org.size() + r.city.size() +
         r.country.size();
  }
  b += 78 * g.player_chunks.size();
  b += 60 * g.cdn_chunks.size();
  b += 65 * g.tcp_snapshots.size();
  return b;
}

constexpr std::uint64_t kFileHeaderBytes = 8;    // magic + version
constexpr std::uint64_t kBlockHeaderBytes = 24;  // marker+id+size+crc
constexpr std::uint64_t kBlockTrailerBytes = 4;  // payload crc
constexpr std::uint64_t kCommitFrameBytes = 16;  // marker+count+crc

/// Validate a spill file header read into `raw` (8 bytes) and return its
/// version; throws on a foreign or future file.
std::uint32_t check_file_header(const char* raw,
                                const std::filesystem::path& path) {
  if (load_u32(raw) != kSpillMagic) {
    throw std::runtime_error("spill: bad magic in " + path.string());
  }
  const std::uint32_t version = load_u32(raw + 4);
  if (version != kSpillVersionV2 && version != kSpillVersionV3) {
    throw std::runtime_error("spill: unsupported version " +
                             std::to_string(version) + " in " + path.string());
  }
  return version;
}

}  // namespace

std::uint32_t resolve_spill_format(std::uint32_t requested) {
  if (requested == 0) {
    const std::string raw = sim::nonempty_env("VSTREAM_SPILL_FORMAT", "");
    if (raw.empty()) return kSpillVersionDefault;
    if (raw == "2") return kSpillVersionV2;
    if (raw == "3") return kSpillVersionV3;
    throw std::runtime_error("VSTREAM_SPILL_FORMAT must be 2 or 3 (got \"" +
                             raw + "\")");
  }
  if (requested != kSpillVersionV2 && requested != kSpillVersionV3) {
    throw std::runtime_error("spill: unsupported format request " +
                             std::to_string(requested));
  }
  return requested;
}

// -------------------------------------------------------------- SpillWriter

void SpillWriter::write_file_header() {
  frame_.clear();
  put_u32(frame_, kSpillMagic);
  put_u32(frame_, version_);
  io_->append(frame_.data(), frame_.size());
  offset_ = kFileHeaderBytes;
}

SpillWriter::SpillWriter(const std::filesystem::path& path,
                         std::uint32_t format)
    : path_(path), version_(resolve_spill_format(format)) {
  io_ = std::make_unique<SpillFileBackend>(path, /*truncate=*/true,
                                           resolve_spill_async());
  write_file_header();
}

SpillWriter::SpillWriter(const std::filesystem::path& path,
                         std::uint64_t committed_bytes,
                         std::uint64_t blocks_already_written)
    : path_(path) {
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw sim::HostIoError("spill: cannot resume missing file " +
                           path.string());
  }
  if (committed_bytes < kFileHeaderBytes || size < committed_bytes) {
    throw std::runtime_error(
        "spill: committed offset " + std::to_string(committed_bytes) +
        " is not inside " + path.string() + " (size " + std::to_string(size) +
        ") — checkpoint and spill file disagree");
  }
  {
    std::ifstream in(path, std::ios::binary);
    char raw[kFileHeaderBytes];
    if (!in.read(raw, kFileHeaderBytes)) {
      throw std::runtime_error("spill: truncated header in " + path.string());
    }
    // A resumed writer appends in the file's version, not the configured
    // one: a run that started as v2 stays v2 across a crash.
    version_ = check_file_header(raw, path);
  }
  // Everything past the committed offset is uncommitted work from a
  // crashed writer; drop it so the resumed run re-emits those sessions.
  std::filesystem::resize_file(path, committed_bytes);
  io_ = std::make_unique<SpillFileBackend>(path, /*truncate=*/false,
                                           resolve_spill_async());
  offset_ = committed_bytes;
  blocks_written_ = blocks_already_written;
}

SpillWriter::~SpillWriter() = default;  // backend drains + closes best-effort

void SpillWriter::write(const SessionRecordGroup& group) {
  // Failpoint spill.write: an injected host failure takes the same road
  // as a real one — poison the writer, throw from this very call.  Frames
  // staged before the failure still drain (they are complete and
  // committed), matching the pre-async behavior where earlier blocks
  // survived in the stream buffer.
  if (failpoints::should_fail(failpoints::Site::kSpillWrite)) {
    poisoned_ = true;
  }
  if (poisoned_ || io_->failed()) {
    throw sim::HostIoError("spill: error writing " + path_.string());
  }
  scratch_.clear();
  if (version_ == kSpillVersionV3) {
    encode_payload_v3(scratch_, group, col_, bcol_);
  } else {
    encode_payload_v2(scratch_, group);
  }

  // One contiguous frame image: block header (incl. both CRCs staged
  // back to back), payload, payload CRC, then the commit frame.  The
  // backend staged-buffer drain turns many frames into one write(2).
  frame_.clear();
  put_u32(frame_, kSpillBlockMarker);
  put_u64(frame_, group.session_id);
  put_u64(frame_, scratch_.size());
  put_u32(frame_, crc32c(frame_.data(), frame_.size()));  // header CRC
  put_u32(frame_, crc32c(scratch_.data(), scratch_.size()));
  io_->append(frame_.data(), kBlockHeaderBytes);
  io_->append(scratch_.data(), scratch_.size());
  io_->append(frame_.data() + kBlockHeaderBytes, kBlockTrailerBytes);
  ++blocks_written_;

  // Commit record: the group above is fully written; a recovery scan that
  // sees this frame knows every prior byte belongs to complete blocks.
  frame_.clear();
  put_u32(frame_, kSpillCommitMarker);
  put_u64(frame_, blocks_written_);
  put_u32(frame_, crc32c(frame_.data(), frame_.size()));
  io_->append(frame_.data(), frame_.size());

  // Fail fast on a write error: nothing after a failed block can commit,
  // and the committed prefix stays salvageable for --resume / analyze.
  if (io_->failed()) {
    throw sim::HostIoError("spill: error writing " + path_.string());
  }

  offset_ += kBlockHeaderBytes + scratch_.size() + kBlockTrailerBytes +
             kCommitFrameBytes;
}

std::uint64_t SpillWriter::flush_committed() {
  if (failpoints::should_fail(failpoints::Site::kSpillFlush)) {
    poisoned_ = true;
  }
  if (poisoned_) {
    throw sim::HostIoError("spill: error writing " + path_.string());
  }
  io_->flush();
  if (io_->failed()) {
    throw sim::HostIoError("spill: error writing " + path_.string());
  }
  return offset_;
}

void SpillWriter::close() {
  if (closed_) return;
  closed_ = true;
  io_->close();
  if (poisoned_ || io_->failed()) {
    throw sim::HostIoError("spill: error writing " + path_.string());
  }
}

// -------------------------------------------------------------- SpillReader

SpillReader::SpillReader(const std::filesystem::path& path,
                         SpillReadStats* stats)
    : src_(open_spill_source(path)), path_(path), external_stats_(stats) {
  file_size_ = src_->size();
  char raw[kFileHeaderBytes];
  if (file_size_ < kFileHeaderBytes) {
    throw std::runtime_error("spill: truncated header in " + path.string());
  }
  src_->read(0, raw, kFileHeaderBytes);
  version_ = check_file_header(raw, path_);
  pos_ = kFileHeaderBytes;
}

void SpillReader::bump(std::uint64_t SpillReadStats::* counter,
                       std::uint64_t n) {
  stats_.*counter += n;
  if (external_stats_ != nullptr) external_stats_->*counter += n;
}

SpillReader::FrameKind SpillReader::parse_frame(
    bool decode, std::optional<SessionRecordGroup>* out, SpillBlockRef* ref) {
  const std::uint64_t pos = pos_;
  if (pos >= file_size_) return FrameKind::kEnd;
  const std::uint64_t remaining = file_size_ - pos;

  const auto torn_tail = [&]() {
    bump(&SpillReadStats::torn_tail_bytes, remaining);
    pos_ = file_size_;
    return FrameKind::kEnd;
  };
  const auto resync = [&]() {
    bump(&SpillReadStats::bytes_skipped, 1);
    pos_ = pos + 1;
    return FrameKind::kSkip;
  };

  char head[kBlockHeaderBytes];
  if (remaining < 4) return torn_tail();
  src_->read(pos, head, 4);
  const std::uint32_t marker = load_u32(head);

  if (marker == kSpillCommitMarker) {
    if (remaining < kCommitFrameBytes) return torn_tail();
    src_->read(pos + 4, head + 4, kCommitFrameBytes - 4);
    if (crc32c(head, kCommitFrameBytes - 4) !=
        load_u32(head + kCommitFrameBytes - 4)) {
      return resync();
    }
    bump(&SpillReadStats::commit_frames, 1);
    pos_ = pos + kCommitFrameBytes;
    return FrameKind::kCommit;
  }
  if (marker != kSpillBlockMarker) return resync();

  if (remaining < kBlockHeaderBytes) return torn_tail();
  src_->read(pos + 4, head + 4, kBlockHeaderBytes - 4);
  if (crc32c(head, 20) != load_u32(head + 20)) return resync();
  const std::uint64_t session_id = load_u64(head + 4);
  const std::uint64_t payload_size = load_u64(head + 12);
  const std::uint64_t frame_bytes =
      kBlockHeaderBytes + payload_size + kBlockTrailerBytes;
  // The size field is CRC-protected, so a frame that does not fit in the
  // remaining bytes means the writer died mid-block: a torn tail.
  if (remaining < frame_bytes) return torn_tail();

  if (!decode) {
    if (ref != nullptr) {
      ref->session_id = session_id;
      ref->offset = pos;
    }
    pos_ = pos + frame_bytes;
    return FrameKind::kBlock;
  }

  // Decode straight from the mapping when the source supports views; the
  // pread fallback copies into the reader's reusable scratch buffer.
  const char* payload = src_->view(pos + kBlockHeaderBytes, payload_size);
  if (payload == nullptr) {
    scratch_.resize(payload_size);
    src_->read(pos + kBlockHeaderBytes, scratch_.data(), payload_size);
    payload = scratch_.data();
  }
  char trailer[kBlockTrailerBytes];
  src_->read(pos + kBlockHeaderBytes + payload_size, trailer,
             kBlockTrailerBytes);
  pos_ = pos + frame_bytes;
  out->reset();
  if (crc32c(payload, payload_size) != load_u32(trailer)) {
    bump(&SpillReadStats::blocks_skipped, 1);
    bump(&SpillReadStats::bytes_skipped, frame_bytes);
    return FrameKind::kBlock;
  }
  try {
    *out = version_ == kSpillVersionV3
               ? decode_payload_v3(payload, payload_size, session_id, col_,
                                   bcol_)
               : decode_payload_v2(payload, payload_size, session_id, path_);
  } catch (const std::exception&) {
    // CRC-valid but undecodable: a writer bug or an adversarial file —
    // either way skip the block rather than abort the analysis.
    out->reset();
    bump(&SpillReadStats::blocks_skipped, 1);
    bump(&SpillReadStats::bytes_skipped, frame_bytes);
    return FrameKind::kBlock;
  }
  bump(&SpillReadStats::blocks_ok, 1);
  bump(&SpillReadStats::bytes_salvaged, payload_size);
  bump(&SpillReadStats::logical_bytes, v2_payload_bytes(**out));
  return FrameKind::kBlock;
}

std::optional<SessionRecordGroup> SpillReader::next() {
  for (;;) {
    std::optional<SessionRecordGroup> group;
    switch (parse_frame(/*decode=*/true, &group, nullptr)) {
      case FrameKind::kBlock:
        if (group.has_value()) return group;
        break;  // corrupt block skipped; keep scanning
      case FrameKind::kCommit:
      case FrameKind::kSkip:
        break;
      case FrameKind::kEnd:
        return std::nullopt;
    }
  }
}

std::vector<SpillBlockRef> SpillReader::index() {
  pos_ = kFileHeaderBytes;
  std::vector<SpillBlockRef> refs;
  for (;;) {
    SpillBlockRef ref;
    switch (parse_frame(/*decode=*/false, nullptr, &ref)) {
      case FrameKind::kBlock:
        refs.push_back(ref);
        break;
      case FrameKind::kCommit:
      case FrameKind::kSkip:
        break;
      case FrameKind::kEnd:
        return refs;
    }
  }
}

std::optional<SessionRecordGroup> SpillReader::read_at(
    const SpillBlockRef& ref) {
  pos_ = ref.offset;
  std::optional<SessionRecordGroup> group;
  parse_frame(/*decode=*/true, &group, nullptr);
  return group;
}

// ----------------------------------------------------------------- SpillSet

namespace {

/// Merged ascending-session-id stream over a set of spill files, driven by
/// a pre-sorted (session_id, file, offset) index.  Blocks for the same
/// session across files are concatenated in file order — the canonical
/// merge's tie-break.  Corrupt blocks are skipped (accounted in `stats`);
/// a session whose every block is corrupt is absent from the stream.
class SpillSetStream final : public SessionGroupStream {
 public:
  SpillSetStream(const std::vector<std::filesystem::path>& files,
                 SpillReadStats* stats) {
    readers_.reserve(files.size());
    for (std::size_t i = 0; i < files.size(); ++i) {
      readers_.push_back(std::make_unique<SpillReader>(files[i], stats));
      for (const SpillBlockRef& ref : readers_.back()->index()) {
        entries_.push_back(Entry{ref.session_id, i, ref.offset});
      }
    }
    std::sort(entries_.begin(), entries_.end(), [](const Entry& a,
                                                   const Entry& b) {
      if (a.session_id != b.session_id) return a.session_id < b.session_id;
      if (a.file != b.file) return a.file < b.file;
      return a.offset < b.offset;
    });
  }

  std::optional<SessionRecordGroup> next() override {
    while (cursor_ < entries_.size()) {
      const std::uint64_t id = entries_[cursor_].session_id;
      std::optional<SessionRecordGroup> group;
      while (cursor_ < entries_.size() &&
             entries_[cursor_].session_id == id) {
        std::optional<SessionRecordGroup> piece =
            read_entry(entries_[cursor_++]);
        if (!piece.has_value()) continue;  // corrupt block: salvage the rest
        if (!group.has_value()) {
          group = std::move(piece);
        } else {
          group->append(std::move(*piece));
        }
      }
      if (group.has_value()) return group;
    }
    return std::nullopt;
  }

 private:
  struct Entry {
    std::uint64_t session_id;
    std::size_t file;
    std::uint64_t offset;
  };

  std::optional<SessionRecordGroup> read_entry(const Entry& e) {
    return readers_[e.file]->read_at(SpillBlockRef{e.session_id, e.offset});
  }

  std::vector<std::unique_ptr<SpillReader>> readers_;
  std::vector<Entry> entries_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::unique_ptr<SessionGroupStream> SpillSet::open(
    SpillReadStats* stats) const {
  return std::make_unique<SpillSetStream>(files_, stats);
}

Dataset SpillSet::load(SpillReadStats* stats) const {
  Dataset data;
  std::unique_ptr<SessionGroupStream> stream = open(stats);
  while (std::optional<SessionRecordGroup> group = stream->next()) {
    for (auto& r : group->player_sessions) {
      data.player_sessions.push_back(std::move(r));
    }
    for (auto& r : group->cdn_sessions) {
      data.cdn_sessions.push_back(std::move(r));
    }
    for (auto& r : group->player_chunks) {
      data.player_chunks.push_back(std::move(r));
    }
    for (auto& r : group->cdn_chunks) {
      data.cdn_chunks.push_back(std::move(r));
    }
    for (auto& r : group->tcp_snapshots) {
      data.tcp_snapshots.push_back(std::move(r));
    }
  }
  return data;
}

}  // namespace vstream::telemetry
