#include "telemetry/crc32c.h"

#include <array>

namespace vstream::telemetry {

namespace {

// Reflected CRC32C polynomial (bit-reversed 0x1EDC6F41).
constexpr std::uint32_t kPoly = 0x82F63B78u;

/// 8 tables of 256 entries: table[0] is the classic byte-at-a-time table,
/// table[k][b] is the CRC of byte b followed by k zero bytes — the
/// slicing-by-8 construction, built once at static-init time.
struct Tables {
  std::uint32_t t[8][256];

  constexpr Tables() : t{} {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      for (int k = 1; k < 8; ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
      }
    }
  }
};

constexpr Tables kTables{};

inline std::uint32_t load_le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32c_extend(std::uint32_t state, const void* data,
                            std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = state;

  while (n >= 8) {
    const std::uint32_t lo = load_le32(p) ^ crc;
    const std::uint32_t hi = load_le32(p + 4);
    crc = kTables.t[7][lo & 0xFFu] ^ kTables.t[6][(lo >> 8) & 0xFFu] ^
          kTables.t[5][(lo >> 16) & 0xFFu] ^ kTables.t[4][lo >> 24] ^
          kTables.t[3][hi & 0xFFu] ^ kTables.t[2][(hi >> 8) & 0xFFu] ^
          kTables.t[1][(hi >> 16) & 0xFFu] ^ kTables.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
  }
  return crc;
}

}  // namespace vstream::telemetry
