// Joining the two measurement sides.
//
// "A key to end-to-end analysis is to trace session performance from the
// player through the CDN (at the granularity of chunks).  We implement
// tracing by using a globally unique session ID and per-session chunk IDs."
// (§2.2).  JoinedDataset::build() performs that join and optionally drops
// proxy sessions (§3 preprocessing).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "telemetry/collector.h"
#include "telemetry/proxy_filter.h"

namespace vstream::telemetry {

/// Both views of one chunk, plus TCP context.
struct JoinedChunk {
  const PlayerChunkRecord* player = nullptr;
  const CdnChunkRecord* cdn = nullptr;
  /// Last tcp_info snapshot taken while this chunk was being served (the
  /// per-chunk SRTT/CWND context of Table 2); null if none.
  const TcpSnapshotRecord* last_snapshot = nullptr;

  // Per-chunk deltas of the cumulative connection counters, derived from
  // consecutive snapshots at join time.
  std::uint64_t retransmissions = 0;
  std::uint64_t segments = 0;

  /// Per-chunk retransmission rate (Fig. 13/15).
  double retx_rate() const {
    return segments == 0 ? 0.0
                         : static_cast<double>(retransmissions) /
                               static_cast<double>(segments);
  }
};

/// One session after the join.
struct JoinedSession {
  std::uint64_t session_id = 0;
  const PlayerSessionRecord* player = nullptr;
  const CdnSessionRecord* cdn = nullptr;
  std::vector<JoinedChunk> chunks;                    // chunk-id order
  std::vector<const TcpSnapshotRecord*> snapshots;    // time order

  // -- convenience aggregates used all over §4 --

  std::uint64_t total_retransmissions() const;
  std::uint64_t total_segments() const;
  /// Session retransmission rate; >90% of sessions are below 10% (§4.2-3).
  double retx_rate() const;
  bool has_loss() const { return total_retransmissions() > 0; }

  sim::Ms total_rebuffer_ms() const;
  /// Re-buffering rate: stall time over session wall time (%).
  double rebuffer_rate_percent() const;

  double avg_bitrate_kbps() const;

  /// Wall-clock span of the session at the player (first request to end of
  /// last chunk's arrival).
  sim::Ms duration_ms() const;
};

/// Per-session finalize shared by the batch join below and the streaming
/// joiner (streaming_join.h): sort chunks into chunk-id order and
/// snapshots into time order, attach each chunk's last tcp_info snapshot,
/// and derive the per-chunk retransmission/segment deltas from the
/// cumulative connection counters.  `session.chunks`/`session.snapshots`
/// must be populated (any order); pointers are left untouched.
void finalize_joined_session(JoinedSession& session);

class JoinedDataset {
 public:
  /// Join player and CDN views by (sessionID, chunkID).  Sessions flagged
  /// by `proxies` (if provided) are dropped, as are sessions missing either
  /// side.  The Dataset must outlive the JoinedDataset.
  static JoinedDataset build(const Dataset& data,
                             const ProxyFilterResult* proxies = nullptr);

  const std::vector<JoinedSession>& sessions() const { return sessions_; }
  std::size_t dropped_as_proxy() const { return dropped_as_proxy_; }
  std::size_t dropped_incomplete() const { return dropped_incomplete_; }

  /// Total chunk count across sessions.
  std::size_t chunk_count() const;

 private:
  std::vector<JoinedSession> sessions_;
  std::size_t dropped_as_proxy_ = 0;
  std::size_t dropped_incomplete_ = 0;
};

}  // namespace vstream::telemetry
