#include "telemetry/fast_format.h"

#include <charconv>
#include <cmath>
#include <cstring>
#include <ostream>

namespace vstream::telemetry {

namespace {

/// Backward digit loop; returns the end of the written text.
char* write_u64(char* p, std::uint64_t value) {
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  while (n > 0) *p++ = tmp[--n];
  return p;
}

constexpr double kPow10[6] = {1.0, 10.0, 100.0, 1e3, 1e4, 1e5};
constexpr std::uint64_t kPow10U[6] = {1, 10, 100, 1000, 10000, 100000};

/// Longest field we format in place: %.6g output (max ~13 chars) and
/// 20-digit u64, with slack.
constexpr std::size_t kMaxField = 40;

}  // namespace

WriteBuffer::WriteBuffer(std::ostream& out, std::size_t capacity)
    : out_(out), buffer_(capacity < 2 * kMaxField ? 2 * kMaxField : capacity) {}

WriteBuffer::~WriteBuffer() { flush(); }

void WriteBuffer::flush() {
  if (size_ > 0) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(size_));
    size_ = 0;
  }
}

void WriteBuffer::append(std::string_view text) {
  if (text.size() > buffer_.size()) {  // larger than the whole buffer
    flush();
    out_.write(text.data(), static_cast<std::streamsize>(text.size()));
    return;
  }
  char* p = cursor(text.size());
  std::memcpy(p, text.data(), text.size());
  size_ += text.size();
}

void WriteBuffer::append_u64(std::uint64_t value) {
  char* const p = cursor(kMaxField);
  size_ += static_cast<std::size_t>(write_u64(p, value) - p);
}

void WriteBuffer::append_ip(std::uint32_t ip) {
  char* const p0 = cursor(16);
  char* p = write_u64(p0, (ip >> 24) & 0xFF);
  *p++ = '.';
  p = write_u64(p, (ip >> 16) & 0xFF);
  *p++ = '.';
  p = write_u64(p, (ip >> 8) & 0xFF);
  *p++ = '.';
  p = write_u64(p, ip & 0xFF);
  size_ += static_cast<std::size_t>(p - p0);
}

void WriteBuffer::append_double_g6(double value) {
  char* const p0 = cursor(kMaxField);
  char* p = p0;
  if (std::isfinite(value)) {
    const double av = std::abs(value);
    if (av < 1e6) {
      if (std::signbit(value)) *p++ = '-';
      if (av == std::floor(av)) {
        // At most six significant digits: %g prints a plain integer
        // (including "-0" for negative zero, as ostream does).
        size_ +=
            static_cast<std::size_t>(write_u64(p, static_cast<std::uint64_t>(av)) - p0);
        return;
      }
      if (av >= 1.0) {
        // Fixed-point with 6 significant digits.  Only taken when the
        // decimal is *exact* (rounded/scale == av), in which case those
        // digits are the correctly rounded %.6g output by definition;
        // anything inexact falls through to to_chars.
        const int int_digits = av >= 1e5   ? 6
                               : av >= 1e4 ? 5
                               : av >= 1e3 ? 4
                               : av >= 100 ? 3
                               : av >= 10  ? 2
                                           : 1;
        const int frac = 6 - int_digits;
        const double rounded = std::nearbyint(av * kPow10[frac]);
        if (rounded / kPow10[frac] == av) {
          const auto units = static_cast<std::uint64_t>(rounded);
          const std::uint64_t den = kPow10U[frac];
          p = write_u64(p, units / den);
          std::uint64_t rem = units % den;
          if (rem != 0) {
            char digits[6];
            for (int i = frac - 1; i >= 0; --i) {
              digits[i] = static_cast<char>('0' + rem % 10);
              rem /= 10;
            }
            int len = frac;
            while (digits[len - 1] == '0') --len;  // %g strips trailing zeros
            *p++ = '.';
            std::memcpy(p, digits, static_cast<std::size_t>(len));
            p += len;
          }
          size_ += static_cast<std::size_t>(p - p0);
          return;
        }
      }
    }
  }
  // General case (sub-1 fractions, >=1e6, inexact decimals, inf/nan):
  // to_chars general-6 is specified to produce printf %.6g output.
  const auto result =
      std::to_chars(p0, p0 + kMaxField, value, std::chars_format::general, 6);
  size_ += static_cast<std::size_t>(result.ptr - p0);
}

}  // namespace vstream::telemetry
