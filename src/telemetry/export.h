// CSV export/import of the raw telemetry streams.
//
// Production measurement systems land their logs in files and join them
// offline; this module emits the five record streams (Tables 2 and 3 plus
// the tcp_info snapshots) as CSV with stable headers, and loads them back,
// so datasets can be generated once and analysed elsewhere (or inspected
// with standard tooling).
//
// Format notes: one file per stream, first line is the header, fields are
// comma-separated; strings (user agents, orgs, cities) are written
// verbatim — they never contain commas by construction, and the loader
// rejects rows with the wrong field count rather than guessing.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "telemetry/collector.h"
#include "telemetry/record_group.h"

namespace vstream::runtime {
class Executor;
}

namespace vstream::telemetry {

class WriteBuffer;

// ---- row appenders ----
// One CSV row (with trailing newline), no header — the shared formatting
// core of the batch writers below and the streaming exporter, so both
// paths are byte-identical by construction.

void append_csv_row(WriteBuffer& buf, const PlayerSessionRecord& r);
void append_csv_row(WriteBuffer& buf, const CdnSessionRecord& r);
void append_csv_row(WriteBuffer& buf, const PlayerChunkRecord& r);
void append_csv_row(WriteBuffer& buf, const CdnChunkRecord& r);
void append_csv_row(WriteBuffer& buf, const TcpSnapshotRecord& r);

// ---- stream writers (stable column order, documented in the header row) --

void write_player_sessions_csv(std::ostream& out,
                               const std::vector<PlayerSessionRecord>& records);
void write_cdn_sessions_csv(std::ostream& out,
                            const std::vector<CdnSessionRecord>& records);
void write_player_chunks_csv(std::ostream& out,
                             const std::vector<PlayerChunkRecord>& records);
void write_cdn_chunks_csv(std::ostream& out,
                          const std::vector<CdnChunkRecord>& records);
void write_tcp_snapshots_csv(std::ostream& out,
                             const std::vector<TcpSnapshotRecord>& records);

// ---- stream readers ----
// Throw std::runtime_error on malformed headers or rows.

std::vector<PlayerSessionRecord> read_player_sessions_csv(std::istream& in);
std::vector<CdnSessionRecord> read_cdn_sessions_csv(std::istream& in);
std::vector<PlayerChunkRecord> read_player_chunks_csv(std::istream& in);
std::vector<CdnChunkRecord> read_cdn_chunks_csv(std::istream& in);
std::vector<TcpSnapshotRecord> read_tcp_snapshots_csv(std::istream& in);

/// Write all five streams into `directory` (created if missing) as
/// player_sessions.csv, cdn_sessions.csv, player_chunks.csv,
/// cdn_chunks.csv, tcp_snapshots.csv.  `executor` non-null writes the
/// five files as five independent tasks (distinct files — no shared
/// mutable state); the bytes of every file are identical either way.
/// Every file's stream state is checked after its final flush: a short
/// write (full disk, or the export.open/export.write failpoints) throws
/// sim::HostIoError — a truncated CSV never goes unreported.
void export_dataset(const Dataset& data,
                    const std::filesystem::path& directory,
                    runtime::Executor* executor = nullptr);

/// Load a dataset previously written by export_dataset().
Dataset import_dataset(const std::filesystem::path& directory);

/// Stream session groups into the same five CSV files as export_dataset()
/// without materializing a Dataset.  When `groups` yields sessions in
/// canonical order (ascending session id, per-session emission order —
/// what SpillSet::open() and DatasetGroupStream produce), the files are
/// byte-identical to export_dataset() on the equivalent merged dataset.
///
/// `executor` non-null formats in windows: groups are pulled serially
/// into a bounded window, then each of the five streams formats the
/// whole window into its own file as an independent task.  Rows keep
/// stream order within each file, so the output is byte-identical to
/// the serial path.
void export_stream(SessionGroupStream& groups,
                   const std::filesystem::path& directory,
                   runtime::Executor* executor = nullptr);

}  // namespace vstream::telemetry
