// Record sinks: where the collector's five record streams land.
//
// The collector historically appended every record into in-RAM vectors
// (the Dataset below) and handed the whole thing over at the end of a run.
// That materialize-everything model is still the default — and still
// byte-identical to the old behaviour — but the RecordSink interface lets
// a run route records elsewhere instead: SpillSink (spill_sink.h) streams
// each completed session's record group to a compact binary file so peak
// record memory is bounded by the number of *concurrently live* sessions,
// not by the total chunk count.
//
// Contract: record() calls for one session arrive in emission order
// (chunk order for chunk records, time order for snapshots — the same
// order the Dataset vectors would hold them in), and session_complete(id)
// is called exactly once per session after its last record.  finish()
// ends the stream; no calls may follow it.
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/records.h"

namespace vstream::telemetry {

/// Raw (un-joined) measurement data, as it would land in the two logging
/// systems.
struct Dataset {
  std::vector<PlayerSessionRecord> player_sessions;
  std::vector<CdnSessionRecord> cdn_sessions;
  std::vector<PlayerChunkRecord> player_chunks;
  std::vector<CdnChunkRecord> cdn_chunks;
  std::vector<TcpSnapshotRecord> tcp_snapshots;
};

class RecordSink {
 public:
  virtual ~RecordSink();

  virtual void record(PlayerSessionRecord r) = 0;
  virtual void record(CdnSessionRecord r) = 0;
  virtual void record(PlayerChunkRecord r) = 0;
  virtual void record(CdnChunkRecord r) = 0;
  virtual void record(TcpSnapshotRecord r) = 0;

  /// All records for `session_id` have been emitted.
  virtual void session_complete(std::uint64_t session_id) = 0;

  /// End of stream: flush buffered state.  Called once, after the last
  /// record; implementations must tolerate sessions that never saw a
  /// session_complete (a run can abandon sessions).
  virtual void finish() = 0;
};

/// The materialize-in-RAM sink: appends into a Dataset, exactly like the
/// sink-less collector.  Useful for composing the streaming machinery in
/// tests and tools against the classic storage model.
class MemorySink final : public RecordSink {
 public:
  void record(PlayerSessionRecord r) override {
    data_.player_sessions.push_back(std::move(r));
  }
  void record(CdnSessionRecord r) override {
    data_.cdn_sessions.push_back(std::move(r));
  }
  void record(PlayerChunkRecord r) override {
    data_.player_chunks.push_back(std::move(r));
  }
  void record(CdnChunkRecord r) override {
    data_.cdn_chunks.push_back(std::move(r));
  }
  void record(TcpSnapshotRecord r) override {
    data_.tcp_snapshots.push_back(std::move(r));
  }
  void session_complete(std::uint64_t /*session_id*/) override {}
  void finish() override {}

  const Dataset& data() const { return data_; }
  /// Move the collected data out, leaving the sink empty and reusable.
  Dataset take();

 private:
  Dataset data_;
};

}  // namespace vstream::telemetry
