// Collector: the two independent log streams (player-side beacons and
// CDN-side logs) plus the periodic tcp_info sampler.
//
// Where the records land is pluggable (see record_sink.h): with no sink
// the collector materializes everything in its own Dataset — the classic
// in-RAM model, byte-for-byte what it always produced — and with a sink
// every record is forwarded as it is emitted, so a spilling sink can bound
// peak record memory by the live-session count instead of the chunk count.
#pragma once

#include <unordered_map>

#include "net/tcp_model.h"
#include "telemetry/record_sink.h"

namespace vstream::telemetry {

class Collector {
 public:
  /// `sink` is optional and not owned; it must outlive the collector.
  /// Null sink: records accumulate in the internal Dataset (data()/take()).
  explicit Collector(sim::Ms tcp_sample_interval_ms = 500.0,
                     RecordSink* sink = nullptr)
      : tcp_sample_interval_ms_(tcp_sample_interval_ms), sink_(sink) {}

  void record(PlayerSessionRecord r) {
    if (sink_ != nullptr) sink_->record(std::move(r));
    else data_.player_sessions.push_back(std::move(r));
  }
  void record(CdnSessionRecord r) {
    if (sink_ != nullptr) sink_->record(std::move(r));
    else data_.cdn_sessions.push_back(std::move(r));
  }
  void record(PlayerChunkRecord r) {
    if (sink_ != nullptr) sink_->record(std::move(r));
    else data_.player_chunks.push_back(std::move(r));
  }
  void record(CdnChunkRecord r) {
    if (sink_ != nullptr) sink_->record(std::move(r));
    else data_.cdn_chunks.push_back(std::move(r));
  }
  void record(TcpSnapshotRecord r) {
    if (sink_ != nullptr) sink_->record(std::move(r));
    else data_.tcp_snapshots.push_back(std::move(r));
  }

  /// Downsample a transfer's per-round snapshot timeline to the production
  /// sampling cadence (every 500 ms of session time, §2.1), while always
  /// keeping at least one sample per chunk ("we snapshot TCP variables ...
  /// at least once per-chunk").  `transfer_start_ms` is session-relative.
  void sample_transfer(std::uint64_t session_id, std::uint32_t chunk_id,
                       sim::Ms transfer_start_ms,
                       const std::vector<net::RoundSample>& rounds);

  /// The session emitted its last record: retire its sampling clock and
  /// notify the sink (a spilling sink serializes the session here).
  void session_complete(std::uint64_t session_id);

  /// Pre-size every record stream for a run of `expected_sessions` sessions
  /// requesting `expected_chunks` chunks in total (upper bounds: abandoned
  /// sessions request fewer).  Steady-state recording then appends into
  /// reserved capacity instead of growing through reallocation.  With a
  /// sink attached only the sampling clocks are pre-sized — the record
  /// vectors are unused.
  void reserve(std::size_t expected_sessions, std::size_t expected_chunks);

  const Dataset& data() const { return data_; }

  /// Move the collected data out and reset the collector to its
  /// freshly-constructed state — including the per-session sampling
  /// clocks, so a reused collector restarts every session's tcp_info
  /// cadence instead of resuming stale timers.
  Dataset take();

 private:
  sim::Ms tcp_sample_interval_ms_;
  RecordSink* sink_ = nullptr;
  /// Per-session sampling clocks (each connection has its own timer), so
  /// the cadence is independent of how sessions interleave — a requirement
  /// for the sharded engine's shard-count-invariant output.  Entries are
  /// retired by session_complete(), bounding the map by live sessions.
  std::unordered_map<std::uint64_t, sim::Ms> next_sample_at_ms_;
  Dataset data_;
};

}  // namespace vstream::telemetry
