// Collector: the two independent log streams (player-side beacons and
// CDN-side logs) plus the periodic tcp_info sampler.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/tcp_model.h"
#include "telemetry/records.h"

namespace vstream::telemetry {

/// Raw (un-joined) measurement data, as it would land in the two logging
/// systems.
struct Dataset {
  std::vector<PlayerSessionRecord> player_sessions;
  std::vector<CdnSessionRecord> cdn_sessions;
  std::vector<PlayerChunkRecord> player_chunks;
  std::vector<CdnChunkRecord> cdn_chunks;
  std::vector<TcpSnapshotRecord> tcp_snapshots;
};

class Collector {
 public:
  explicit Collector(sim::Ms tcp_sample_interval_ms = 500.0)
      : tcp_sample_interval_ms_(tcp_sample_interval_ms) {}

  void record(PlayerSessionRecord r) { data_.player_sessions.push_back(std::move(r)); }
  void record(CdnSessionRecord r) { data_.cdn_sessions.push_back(std::move(r)); }
  void record(PlayerChunkRecord r) { data_.player_chunks.push_back(std::move(r)); }
  void record(CdnChunkRecord r) { data_.cdn_chunks.push_back(std::move(r)); }
  void record(TcpSnapshotRecord r) { data_.tcp_snapshots.push_back(std::move(r)); }

  /// Downsample a transfer's per-round snapshot timeline to the production
  /// sampling cadence (every 500 ms of session time, §2.1), while always
  /// keeping at least one sample per chunk ("we snapshot TCP variables ...
  /// at least once per-chunk").  `transfer_start_ms` is session-relative.
  void sample_transfer(std::uint64_t session_id, std::uint32_t chunk_id,
                       sim::Ms transfer_start_ms,
                       const std::vector<net::RoundSample>& rounds);

  /// Pre-size every record stream for a run of `expected_sessions` sessions
  /// requesting `expected_chunks` chunks in total (upper bounds: abandoned
  /// sessions request fewer).  Steady-state recording then appends into
  /// reserved capacity instead of growing through reallocation.
  void reserve(std::size_t expected_sessions, std::size_t expected_chunks);

  const Dataset& data() const { return data_; }
  Dataset&& take() { return std::move(data_); }

 private:
  sim::Ms tcp_sample_interval_ms_;
  /// Per-session sampling clocks (each connection has its own timer), so
  /// the cadence is independent of how sessions interleave — a requirement
  /// for the sharded engine's shard-count-invariant output.
  std::unordered_map<std::uint64_t, sim::Ms> next_sample_at_ms_;
  Dataset data_;
};

}  // namespace vstream::telemetry
