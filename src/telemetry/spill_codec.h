// Columnar encoding primitives for spill format v3 (spill_format.h).
//
// A v3 block payload stores each record field as one *column* with a
// 1-byte mode prefix, chosen per column by exact cost comparison at
// encode time (deterministic: equal costs break toward the lower mode
// number).  The primitives here are value codecs only — framing, CRCs
// and the column order live in spill_format.cc:
//
//   varint    LEB128, 7 bits per byte, little-endian groups, <= 10 bytes
//   zigzag    maps two's-complement deltas to small unsigned varints
//   int col   mode 0 "const": every value equal, one varint
//             mode 1 "delta": zigzag(v[i] - v[i-1]) varints (v[-1] = 0)
//   f64 col   mode 0 "const": one raw IEEE-754 little-endian u64
//             mode 1 "xor":   per value x = bits ^ prev; ctrl byte 0 when
//                             x == 0, else 1 + 8*tz + (sig-1) followed by
//                             the sig significant bytes of x >> 8*tz
//                             (tz = trailing zero bytes, sig = non-zero
//                             span in bytes)
//             mode 2 "exp":   sign+exponent (top 12 bits) as a zigzag-
//                             delta varint stream, then every 52-bit
//                             mantissa bit-packed LSB-first — wins on
//                             full-entropy mantissas where xor degrades
//                             to ~9 bytes/value
//   bool col  mode 0 "const": one byte
//             mode 1 "pack":  ceil(n/8) bytes, LSB-first
//
// All decoders are bounds-checked and throw std::runtime_error on any
// malformed input (truncation, unknown mode, out-of-range exponent,
// varint overflow) — never UB.  The corruption fuzz runs them under
// ASan+UBSan on every 1-byte mutation of real files.  Every encoder/
// decoder pair round-trips bit-exactly, including NaN payloads, ±inf
// and denormals: doubles only ever move as raw bit patterns.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace vstream::telemetry::codec {

inline constexpr std::uint8_t kModeConst = 0;
inline constexpr std::uint8_t kModeDelta = 1;  ///< int columns
inline constexpr std::uint8_t kModeXor = 1;    ///< f64 columns
inline constexpr std::uint8_t kModeExp = 2;    ///< f64 columns
inline constexpr std::uint8_t kModePack = 1;   ///< bool columns

[[noreturn]] inline void fail(const char* what) {
  throw std::runtime_error(std::string("spill: ") + what);
}

/// Bounds-checked read cursor over one encoded column region.
struct Reader {
  const char* p;
  const char* end;

  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      fail("truncated column data");
    }
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(*p++);
  }
  std::uint64_t raw_u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    p += 8;
    return v;
  }
};

// ----------------------------------------------------------------- varint

inline void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

inline std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

inline std::uint64_t get_varint(Reader& r) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 10; ++i) {
    const std::uint8_t b = r.u8();
    if (i == 9 && b > 1) fail("varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(b & 0x7F) << (7 * i);
    if ((b & 0x80) == 0) return v;
  }
  fail("unterminated varint");
}

// ----------------------------------------------------------------- zigzag
// `u` is a difference computed in wrapping unsigned arithmetic, i.e. the
// two's-complement bit pattern of the signed delta; both directions are
// pure unsigned ops so there is no signed-overflow UB anywhere.

inline std::uint64_t zigzag(std::uint64_t u) {
  return (u << 1) ^ (0 - (u >> 63));
}

inline std::uint64_t unzigzag(std::uint64_t z) {
  return (z >> 1) ^ (0 - (z & 1));
}

// ------------------------------------------------------------ int columns

inline void encode_int_column(std::string& out,
                              const std::vector<std::uint64_t>& v) {
  if (v.empty()) return;
  bool all_equal = true;
  for (const std::uint64_t x : v) {
    if (x != v[0]) {
      all_equal = false;
      break;
    }
  }
  if (all_equal) {
    out.push_back(static_cast<char>(kModeConst));
    put_varint(out, v[0]);
    return;
  }
  out.push_back(static_cast<char>(kModeDelta));
  std::uint64_t prev = 0;
  for (const std::uint64_t x : v) {
    put_varint(out, zigzag(x - prev));
    prev = x;
  }
}

inline void decode_int_column(Reader& r, std::size_t n,
                              std::vector<std::uint64_t>& out) {
  out.clear();
  if (n == 0) return;
  const std::uint8_t mode = r.u8();
  if (mode == kModeConst) {
    out.assign(n, get_varint(r));
    return;
  }
  if (mode != kModeDelta) fail("unknown int column mode");
  out.reserve(n);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev += unzigzag(get_varint(r));
    out.push_back(prev);
  }
}

// ------------------------------------------------------------ f64 columns
// Values travel as raw IEEE-754 bit patterns (std::bit_cast at the call
// site), so NaN payloads and signed zeros survive the round trip.

namespace detail {

inline unsigned trailing_zero_bytes(std::uint64_t x) {
  unsigned n = 0;
  while ((x & 0xFF) == 0) {
    x >>= 8;
    ++n;
  }
  return n;  // x != 0 guaranteed by caller
}

inline unsigned significant_bytes(std::uint64_t x) {
  unsigned n = 0;
  while (x != 0) {
    x >>= 8;
    ++n;
  }
  return n;
}

/// Bit-packing writer for 52-bit mantissas (LSB-first within bytes).
struct BitWriter {
  std::string& out;
  std::uint64_t acc = 0;
  unsigned nbits = 0;

  explicit BitWriter(std::string& o) : out(o) {}
  void put(std::uint64_t v, unsigned bits) {
    acc |= v << nbits;
    nbits += bits;
    while (nbits >= 8) {
      out.push_back(static_cast<char>(acc & 0xFF));
      acc >>= 8;
      nbits -= 8;
    }
  }
  void finish() {
    if (nbits > 0) out.push_back(static_cast<char>(acc & 0xFF));
    acc = 0;
    nbits = 0;
  }
};

struct BitReader {
  Reader& r;
  std::uint64_t acc = 0;
  unsigned nbits = 0;

  explicit BitReader(Reader& rd) : r(rd) {}
  std::uint64_t get(unsigned bits) {
    while (nbits < bits) {
      acc |= static_cast<std::uint64_t>(r.u8()) << nbits;
      nbits += 8;
    }
    const std::uint64_t v =
        bits == 64 ? acc : acc & ((std::uint64_t{1} << bits) - 1);
    acc >>= bits;
    nbits -= bits;
    return v;
  }
};

inline constexpr std::uint64_t kMantissaMask =
    (std::uint64_t{1} << 52) - 1;

inline std::size_t xor_cost(const std::vector<std::uint64_t>& bits) {
  std::size_t cost = 0;
  std::uint64_t prev = 0;
  for (const std::uint64_t b : bits) {
    const std::uint64_t x = b ^ prev;
    prev = b;
    cost += x == 0 ? 1 : 1 + significant_bytes(x >> (8 * trailing_zero_bytes(x)));
  }
  return cost;
}

inline std::size_t exp_cost(const std::vector<std::uint64_t>& bits) {
  std::size_t cost = (52 * bits.size() + 7) / 8;
  std::uint64_t prev = 0;
  for (const std::uint64_t b : bits) {
    const std::uint64_t se = b >> 52;
    cost += varint_size(zigzag(se - prev));
    prev = se;
  }
  return cost;
}

}  // namespace detail

inline void encode_f64_column(std::string& out,
                              const std::vector<std::uint64_t>& bits) {
  if (bits.empty()) return;
  bool all_equal = true;
  for (const std::uint64_t b : bits) {
    if (b != bits[0]) {
      all_equal = false;
      break;
    }
  }
  if (all_equal) {
    out.push_back(static_cast<char>(kModeConst));
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>(bits[0] >> (8 * i)));
    }
    return;
  }
  if (detail::xor_cost(bits) <= detail::exp_cost(bits)) {
    out.push_back(static_cast<char>(kModeXor));
    std::uint64_t prev = 0;
    for (const std::uint64_t b : bits) {
      const std::uint64_t x = b ^ prev;
      prev = b;
      if (x == 0) {
        out.push_back(0);
        continue;
      }
      const unsigned tz = detail::trailing_zero_bytes(x);
      const std::uint64_t val = x >> (8 * tz);
      const unsigned sig = detail::significant_bytes(val);
      out.push_back(static_cast<char>(1 + 8 * tz + (sig - 1)));
      for (unsigned i = 0; i < sig; ++i) {
        out.push_back(static_cast<char>(val >> (8 * i)));
      }
    }
    return;
  }
  out.push_back(static_cast<char>(kModeExp));
  std::uint64_t prev = 0;
  for (const std::uint64_t b : bits) {
    const std::uint64_t se = b >> 52;
    put_varint(out, zigzag(se - prev));
    prev = se;
  }
  detail::BitWriter packer(out);
  for (const std::uint64_t b : bits) {
    packer.put(b & detail::kMantissaMask, 52);
  }
  packer.finish();
}

inline void decode_f64_column(Reader& r, std::size_t n,
                              std::vector<std::uint64_t>& out) {
  out.clear();
  if (n == 0) return;
  const std::uint8_t mode = r.u8();
  if (mode == kModeConst) {
    out.assign(n, r.raw_u64());
    return;
  }
  out.reserve(n);
  if (mode == kModeXor) {
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t ctrl = r.u8();
      std::uint64_t x = 0;
      if (ctrl != 0) {
        const unsigned c = ctrl - 1;
        const unsigned tz = c >> 3;
        const unsigned sig = (c & 7) + 1;
        if (tz + sig > 8) fail("xor control byte out of range");
        std::uint64_t val = 0;
        for (unsigned b = 0; b < sig; ++b) {
          val |= static_cast<std::uint64_t>(r.u8()) << (8 * b);
        }
        x = val << (8 * tz);
      }
      prev ^= x;
      out.push_back(prev);
    }
    return;
  }
  if (mode != kModeExp) fail("unknown f64 column mode");
  std::vector<std::uint64_t> sign_exp;
  sign_exp.reserve(n);
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prev += unzigzag(get_varint(r));
    if (prev >= 4096) fail("sign+exponent out of range");
    sign_exp.push_back(prev);
  }
  detail::BitReader packer(r);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back((sign_exp[i] << 52) | packer.get(52));
  }
}

// ----------------------------------------------------------- bool columns

inline void encode_bool_column(std::string& out,
                               const std::vector<std::uint8_t>& v) {
  if (v.empty()) return;
  bool all_equal = true;
  for (const std::uint8_t x : v) {
    if (x != v[0]) {
      all_equal = false;
      break;
    }
  }
  if (all_equal) {
    out.push_back(static_cast<char>(kModeConst));
    out.push_back(static_cast<char>(v[0] != 0 ? 1 : 0));
    return;
  }
  out.push_back(static_cast<char>(kModePack));
  std::uint8_t acc = 0;
  unsigned nbits = 0;
  for (const std::uint8_t x : v) {
    acc |= static_cast<std::uint8_t>((x != 0 ? 1 : 0) << nbits);
    if (++nbits == 8) {
      out.push_back(static_cast<char>(acc));
      acc = 0;
      nbits = 0;
    }
  }
  if (nbits > 0) out.push_back(static_cast<char>(acc));
}

inline void decode_bool_column(Reader& r, std::size_t n,
                               std::vector<std::uint8_t>& out) {
  out.clear();
  if (n == 0) return;
  const std::uint8_t mode = r.u8();
  if (mode == kModeConst) {
    out.assign(n, static_cast<std::uint8_t>(r.u8() != 0 ? 1 : 0));
    return;
  }
  if (mode != kModePack) fail("unknown bool column mode");
  out.reserve(n);
  std::uint8_t acc = 0;
  unsigned nbits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (nbits == 0) {
      acc = r.u8();
      nbits = 8;
    }
    out.push_back(acc & 1);
    acc >>= 1;
    --nbits;
  }
}

// --------------------------------------------------------- string columns
// Strings do not benefit from a mode byte: length varint + raw bytes.

inline void put_string(std::string& out, const std::string& s) {
  put_varint(out, s.size());
  out.append(s);
}

inline std::string get_string(Reader& r) {
  const std::uint64_t len = get_varint(r);
  r.need(len);
  std::string s(r.p, len);
  r.p += len;
  return s;
}

}  // namespace vstream::telemetry::codec
