// Instrumentation records — the library's equivalent of the paper's
// Tables 2 and 3.
//
// Player side and CDN side are logged independently (as in production,
// where they are separate logging systems joined offline by sessionID and
// chunkID).  Analyses must only use what these records expose; simulator
// ground truth stays out of them.
#pragma once

#include <cstdint>
#include <string>

#include "cdn/cache.h"
#include "cdn/overload.h"
#include "client/user_agent.h"
#include "net/path_model.h"
#include "net/prefix.h"
#include "net/tcp_info.h"
#include "sim/time.h"

namespace vstream::telemetry {

/// Table 2, "Player (Delivery)" + "Player (Rendering)" rows.
struct PlayerChunkRecord {
  std::uint64_t session_id = 0;
  std::uint32_t chunk_id = 0;
  sim::Ms request_sent_ms = 0.0;  ///< when the HTTP GET left the player
                                  ///< (session-relative clock)
  sim::Ms dfb_ms = 0.0;           ///< first-byte delay D_FB
  sim::Ms dlb_ms = 0.0;           ///< last-byte delay D_LB
  std::uint32_t bitrate_kbps = 0;

  // Playout / rendering.
  sim::Ms rebuffer_ms = 0.0;        ///< bufdur: stall time during this chunk
  std::uint32_t rebuffer_count = 0; ///< bufcount
  bool visible = true;              ///< vis
  double avg_fps = 0.0;             ///< avgfr
  std::uint32_t dropped_frames = 0; ///< dropfr
  std::uint32_t total_frames = 0;

  // Failure recovery (player-side request machinery).  dfb_ms includes
  // recovery_ms: the player measures first-byte delay from the *first*
  // request it sent for the chunk.
  std::uint32_t retries = 0;     ///< re-issued requests for this chunk
  std::uint32_t timeouts = 0;    ///< attempts abandoned at the request timeout
  bool failed_over = false;      ///< the chunk switched serving server
  sim::Ms recovery_ms = 0.0;     ///< time burned in timeouts + backoff

  /// Client-observed download rate in seconds-of-video per second:
  /// tau / (D_FB + D_LB)  (§4.4-1).
  double download_rate(double chunk_duration_s) const {
    const sim::Ms total = dfb_ms + dlb_ms;
    return total <= 0.0 ? 0.0 : sim::seconds(chunk_duration_s) / total;
  }
};

/// Table 2, "CDN (App layer)" row.
struct CdnChunkRecord {
  std::uint64_t session_id = 0;
  std::uint32_t chunk_id = 0;
  sim::Ms dwait_ms = 0.0;
  sim::Ms dopen_ms = 0.0;
  sim::Ms dread_ms = 0.0;
  sim::Ms dbe_ms = 0.0;  ///< 0 unless cache miss
  cdn::CacheLevel cache_level = cdn::CacheLevel::kMiss;
  std::uint64_t chunk_bytes = 0;
  /// Serving server of the successful attempt.  Differs from the session
  /// record's assignment after a mid-session failover.
  std::uint32_t pop = 0;
  std::uint32_t server = 0;
  /// Served from cache while the origin was unreachable (degraded mode).
  bool served_stale = false;

  // Overload protection (see cdn/overload.h).  shed/budget_denied are
  // sticky over the chunk's failed attempts; the rest describe the
  // delivering serve.
  bool shed = false;           ///< an attempt was load-shed (local 503)
  bool hedged = false;         ///< a hedge fetch raced a second replica
  bool hedge_won = false;      ///< the hedge's first byte won
  bool budget_denied = false;  ///< a retry was denied a backend re-fetch
  bool served_swr = false;     ///< stale-while-revalidate (open breaker)
  /// Serving server's breaker state observed by the delivering serve.
  cdn::BreakerState breaker = cdn::BreakerState::kClosed;

  bool cache_hit() const { return cache_level != cdn::CacheLevel::kMiss; }
  /// Total server-side latency (Fig. 5 "total").
  sim::Ms server_total_ms() const { return dwait_ms + dopen_ms + dread_ms; }
  /// D_CDN of Eq. 1 (server latency excluding the backend share).
  sim::Ms dcdn_ms() const { return server_total_ms() - dbe_ms; }
};

/// Table 2, "CDN (TCP layer)" row: one tcp_info sample with chunk context.
struct TcpSnapshotRecord {
  std::uint64_t session_id = 0;
  std::uint32_t chunk_id = 0;  ///< chunk being served when sampled
  sim::Ms at_ms = 0.0;         ///< session-relative sample time
  net::TcpInfo info;
};

/// Table 3, player row.
struct PlayerSessionRecord {
  std::uint64_t session_id = 0;
  net::IpV4 client_ip = 0;   ///< as reported by the client-side beacon
  std::string user_agent;
  double video_duration_s = 0.0;
  sim::Ms start_time_ms = 0.0;    ///< session arrival on the fleet clock
  sim::Ms startup_ms = 0.0;       ///< time to first frame
  std::uint32_t chunks_requested = 0;
  /// False when the player gave up on an unrecoverable chunk (every retry
  /// and failover exhausted) and ended the session early.
  bool completed = true;
};

/// Table 3, CDN row.
struct CdnSessionRecord {
  std::uint64_t session_id = 0;
  net::IpV4 observed_ip = 0;  ///< source IP of the HTTP connection — the
                              ///< proxy's IP when one is in the way
  std::string observed_user_agent;
  std::uint32_t pop = 0;
  std::uint32_t server = 0;
  std::string org;  ///< AS / ISP / organization
  net::AccessType access = net::AccessType::kResidential;
  std::string city;
  std::string country;
  double client_distance_km = 0.0;  ///< geo-located client <-> PoP distance
};

}  // namespace vstream::telemetry
