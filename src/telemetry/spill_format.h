// Binary on-disk spill format for session record groups (versions 2 and
// 3: CRC32C-framed, crash- and corruption-tolerant).
//
// Layout (all integers little-endian, fixed width):
//
//   file   := magic:u32 ("VSPL", 0x4C505356) version:u32 (2|3) frame*
//   frame  := block | commit
//   block  := bmark:u32 ("VBLK") session_id:u64 payload_size:u64
//             header_crc:u32 payload payload_crc:u32
//   commit := cmark:u32 ("VCMT") blocks_committed:u64 commit_crc:u32
//
// header_crc is CRC32C over the 20 bytes bmark..payload_size, payload_crc
// over the payload, commit_crc over cmark+blocks_committed.  A commit
// frame is written only after its record group's block is fully written,
// so the last commit frame bounds the file's consistent prefix: anything
// after it is at best unflushed work from a crashed writer.  Framing is
// identical in both versions — only the payload encoding differs, so the
// recovery scan, indexing and salvage accounting are version-blind.
//
// v2 payload: count:u32 x5 (player_sessions, cdn_sessions, player_chunks,
// cdn_chunks, tcp_snapshots) then the five record groups row by row,
// field-by-field in the declared struct order.  Doubles are raw IEEE-754
// bits (u64) so the round trip is bit-exact; bools and enums are one
// byte; strings are u32 length + bytes.
//
// v3 payload (the default): count:varint x5, then the same five groups
// *columnar* — for each stream, each struct field in declaration order
// becomes one column encoded by spill_codec.h (const/zigzag-delta
// varints for integers, const/xor-prev/exponent-split for doubles,
// const/bit-packed for bools, varint-length strings).  Same counts, same
// field order, same bit-exact doubles — just fewer bytes.  The format is
// selected by SpillWriter's `format` argument with 0 deferring to
// VSTREAM_SPILL_FORMAT (strict {2,3}; default 3); readers dispatch on
// the file header, so mixed-version spill sets work and resumed writers
// adopt the existing file's version regardless of the environment.
//
// The per-record session_id is NOT stored in either version — it is
// block-level and re-applied on read.  `payload_size` makes blocks
// skippable without decoding, which is how SpillSet builds its per-file
// index: one header scan, then random-access reads in ascending
// session-id order regardless of write order.
//
// Byte path: writers stage frames in a buffer drained as one contiguous
// write per ~256 KiB, by default on a dedicated writer thread so the
// shard's serving loop never blocks on write() (spill_io.h; sync mode
// via VSTREAM_SPILL_ASYNC=0 is byte-identical).  Readers map the file
// read-only (madvise SEQUENTIAL) and decode straight from the page
// cache; VSTREAM_SPILL_MMAP=0 selects the plain pread fallback.
//
// Failure model: readers never throw on data damage.  A torn tail (the
// writer was killed mid-frame) is truncated; a block whose header or
// payload CRC fails is skipped, resynchronizing on the next frame marker;
// every salvage decision is accounted in SpillReadStats so callers can
// distinguish a clean read (stats.corrupted() == false) from a degraded
// one.  Only environmental errors still throw: unopenable files, a wrong
// magic, or an unsupported version.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/record_group.h"
#include "telemetry/spill_io.h"

namespace vstream::telemetry {

inline constexpr std::uint32_t kSpillMagic = 0x4C505356;    // "VSPL"
inline constexpr std::uint32_t kSpillVersionV2 = 2;
inline constexpr std::uint32_t kSpillVersionV3 = 3;
inline constexpr std::uint32_t kSpillVersionDefault = kSpillVersionV3;
inline constexpr std::uint32_t kSpillBlockMarker = 0x4B4C4256;   // "VBLK"
inline constexpr std::uint32_t kSpillCommitMarker = 0x544D4356;  // "VCMT"

/// Resolve a spill format request: 2 and 3 pass through, 0 defers to
/// VSTREAM_SPILL_FORMAT (strict: unset means kSpillVersionDefault, any
/// value other than "2"/"3" throws std::runtime_error naming the knob).
std::uint32_t resolve_spill_format(std::uint32_t requested = 0);

/// Salvage accounting for one reader (or an aggregate over a SpillSet).
/// All-zero except blocks_ok/bytes_salvaged/commit_frames/logical_bytes
/// on a clean file.
struct SpillReadStats {
  std::uint64_t blocks_ok = 0;       ///< blocks read and decoded intact
  std::uint64_t blocks_skipped = 0;  ///< CRC-failed or undecodable blocks
  std::uint64_t bytes_salvaged = 0;  ///< payload bytes of the intact blocks
  std::uint64_t bytes_skipped = 0;   ///< corrupt bytes scanned past (resync)
  std::uint64_t torn_tail_bytes = 0; ///< incomplete trailing frame dropped
  std::uint64_t commit_frames = 0;   ///< commit records seen
  /// v2-equivalent payload bytes of the decoded blocks: what the same
  /// records would occupy row-encoded.  logical_bytes / bytes_salvaged is
  /// the realized compression ratio (1.0 for v2 files by construction).
  std::uint64_t logical_bytes = 0;

  /// True when any damage was encountered (skips, resyncs, torn tail).
  bool corrupted() const {
    return blocks_skipped != 0 || bytes_skipped != 0 || torn_tail_bytes != 0;
  }
  SpillReadStats& operator+=(const SpillReadStats& other) {
    blocks_ok += other.blocks_ok;
    blocks_skipped += other.blocks_skipped;
    bytes_salvaged += other.bytes_salvaged;
    bytes_skipped += other.bytes_skipped;
    torn_tail_bytes += other.torn_tail_bytes;
    commit_frames += other.commit_frames;
    logical_bytes += other.logical_bytes;
    return *this;
  }
};

/// Appends session blocks to one spill file.  Not thread-safe; in the
/// sharded engine each shard owns one writer.  Frames are staged and
/// written through SpillFileBackend (buffered, async by default); write
/// errors — real or failpoint-injected — surface as sim::HostIoError
/// from the write()/flush_committed()/close() call that observes them
/// and poison the writer for good.
class SpillWriter {
 public:
  /// Creates/truncates `path` and writes the file header.  `format` is
  /// resolved via resolve_spill_format (0 = environment/default).
  /// Throws std::runtime_error when the file cannot be opened or the
  /// format request is invalid.
  explicit SpillWriter(const std::filesystem::path& path,
                       std::uint32_t format = 0);

  /// Resume an existing spill file at a previously committed offset (see
  /// committed_bytes()): validates the header, truncates everything past
  /// `committed_bytes` (uncommitted work from a crashed run), and appends
  /// from there — in the *file's* header version, so a resume is format-
  /// stable even when the environment changed.  `blocks_already_written`
  /// restores the commit counter.  Throws std::runtime_error on a
  /// missing/short/incompatible file.
  SpillWriter(const std::filesystem::path& path,
              std::uint64_t committed_bytes,
              std::uint64_t blocks_already_written);

  ~SpillWriter();  // closes (without the error check close() performs)

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Serialize one session's records as a block and its commit frame.  The
  /// group's vectors are written in their current order (emission order,
  /// for byte-identical CSV re-export).
  void write(const SessionRecordGroup& group);

  /// Drain staged frames to the OS and return the committed byte offset —
  /// the value a checkpoint must record for a later resume.  Throws on
  /// write errors.
  std::uint64_t flush_committed();

  /// Flush and close, throwing on write errors.  Idempotent.
  void close();

  std::uint64_t blocks_written() const { return blocks_written_; }
  /// File offset after the last fully written frame.
  std::uint64_t committed_bytes() const { return offset_; }
  std::uint32_t format_version() const { return version_; }

 private:
  void write_file_header();

  std::filesystem::path path_;
  std::uint32_t version_ = kSpillVersionDefault;
  std::unique_ptr<SpillFileBackend> io_;
  std::string scratch_;  ///< reused payload buffer
  std::string frame_;    ///< reused frame-header/commit buffer
  std::vector<std::uint64_t> col_;   ///< reused v3 column scratch
  std::vector<std::uint8_t> bcol_;   ///< reused v3 bool column scratch
  std::uint64_t blocks_written_ = 0;
  std::uint64_t offset_ = 0;  ///< bytes written so far (header + frames)
  bool poisoned_ = false;     ///< sticky failpoint-injected failure
  bool closed_ = false;
};

/// One block's location inside a spill file.
struct SpillBlockRef {
  std::uint64_t session_id = 0;
  std::uint64_t offset = 0;  ///< file offset of the block frame
};

/// Reads one spill file: sequentially, or random-access via an index.
/// The constructor throws std::runtime_error on an unopenable file, bad
/// magic or unsupported version; after that, damage never throws — torn
/// tails are truncated and corrupt blocks skipped, accounted in stats()
/// (and mirrored into the optional external `stats` accumulator, which
/// lets a SpillSet aggregate salvage over many readers).  Decode scratch
/// is owned per reader, so one reader per thread scales without shared
/// state.
class SpillReader {
 public:
  explicit SpillReader(const std::filesystem::path& path,
                       SpillReadStats* stats = nullptr);

  /// Next intact block in file order; nullopt at end of file.
  std::optional<SessionRecordGroup> next();

  /// Scan every frame header (payloads skipped, not CRC-checked) and
  /// return the structurally valid block refs in file order.  Leaves the
  /// sequential cursor at end of file.
  std::vector<SpillBlockRef> index();

  /// Read the block at `ref.offset` (moves the sequential cursor).
  /// nullopt when the block is corrupt (accounted in stats()).
  std::optional<SessionRecordGroup> read_at(const SpillBlockRef& ref);

  const SpillReadStats& stats() const { return stats_; }
  /// The file header's format version (2 or 3).
  std::uint32_t format_version() const { return version_; }
  /// Total file size in bytes.
  std::uint64_t file_bytes() const { return file_size_; }

 private:
  /// Parse one frame at the cursor; decode_payload controls whether block
  /// payloads are read+verified (next/read_at) or skipped (index).
  enum class FrameKind { kBlock, kCommit, kSkip, kEnd };
  FrameKind parse_frame(bool decode, std::optional<SessionRecordGroup>* out,
                        SpillBlockRef* ref);
  void bump(std::uint64_t SpillReadStats::* counter, std::uint64_t n);

  std::unique_ptr<SpillByteSource> src_;
  std::filesystem::path path_;
  std::string scratch_;              ///< payload copy (pread fallback only)
  std::vector<std::uint64_t> col_;   ///< reused v3 column scratch
  std::vector<std::uint8_t> bcol_;   ///< reused v3 bool column scratch
  std::uint64_t pos_ = 0;
  std::uint64_t file_size_ = 0;
  std::uint32_t version_ = kSpillVersionV2;
  SpillReadStats stats_;
  SpillReadStats* external_stats_ = nullptr;
};

class SpillGroupStream;

/// A set of spill files (one per shard) that together hold one run's
/// telemetry.  Files are kept in shard order: when a session's blocks
/// appear in several files, the merged stream concatenates them in file
/// order — the same tie-break the canonical in-memory merge applies.
class SpillSet {
 public:
  SpillSet() = default;

  void add_file(std::filesystem::path path) {
    files_.push_back(std::move(path));
  }
  const std::vector<std::filesystem::path>& files() const { return files_; }
  bool empty() const { return files_.empty(); }

  /// Open a merged stream over all files in ascending session-id order.
  /// When `stats` is non-null it accumulates salvage accounting across
  /// every file as the stream is consumed (final once the stream returns
  /// nullopt).  Corrupt blocks are skipped; a session whose every block is
  /// corrupt disappears from the stream.
  std::unique_ptr<SessionGroupStream> open(
      SpillReadStats* stats = nullptr) const;

  /// Materialize every record back into one canonical Dataset (ascending
  /// session id, per-session emission order) — byte-equivalent to the
  /// in-memory run's merged dataset.
  Dataset load(SpillReadStats* stats = nullptr) const;

 private:
  std::vector<std::filesystem::path> files_;
};

}  // namespace vstream::telemetry
