// Binary on-disk spill format for session record groups (version 2:
// CRC32C-framed, crash- and corruption-tolerant).
//
// Layout (all integers little-endian, fixed width):
//
//   file   := magic:u32 ("VSPL", 0x4C505356) version:u32 (2) frame*
//   frame  := block | commit
//   block  := bmark:u32 ("VBLK") session_id:u64 payload_size:u64
//             header_crc:u32 payload payload_crc:u32
//   commit := cmark:u32 ("VCMT") blocks_committed:u64 commit_crc:u32
//   payload:= count:u32 x5 (player_sessions, cdn_sessions, player_chunks,
//             cdn_chunks, tcp_snapshots) then the five record groups as
//             contiguous column groups, each record field-by-field in the
//             declared struct order
//
// header_crc is CRC32C over the 20 bytes bmark..payload_size, payload_crc
// over the payload, commit_crc over cmark+blocks_committed.  A commit
// frame is written only after its record group's block is fully written,
// so the last commit frame bounds the file's consistent prefix: anything
// after it is at best unflushed work from a crashed writer.
//
// Scalars: doubles are raw IEEE-754 bits (u64), so a write/read round
// trip is bit-exact and CSV re-export stays byte-identical; bools and
// enums are one byte; strings are u32 length + bytes.  The per-record
// session_id is NOT stored — it is block-level and re-applied on read.
//
// `payload_size` makes blocks skippable without decoding, which is how
// SpillSet builds its per-file index: one header scan, then random-access
// reads in ascending session-id order regardless of the completion order
// the blocks were written in.
//
// Failure model: readers never throw on data damage.  A torn tail (the
// writer was killed mid-frame) is truncated; a block whose header or
// payload CRC fails is skipped, resynchronizing on the next frame marker;
// every salvage decision is accounted in SpillReadStats so callers can
// distinguish a clean read (stats.corrupted() == false) from a degraded
// one.  Only environmental errors still throw: unopenable files, a wrong
// magic, or an unsupported version.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/record_group.h"

namespace vstream::telemetry {

inline constexpr std::uint32_t kSpillMagic = 0x4C505356;    // "VSPL"
inline constexpr std::uint32_t kSpillVersion = 2;
inline constexpr std::uint32_t kSpillBlockMarker = 0x4B4C4256;   // "VBLK"
inline constexpr std::uint32_t kSpillCommitMarker = 0x544D4356;  // "VCMT"

/// Salvage accounting for one reader (or an aggregate over a SpillSet).
/// All-zero except blocks_ok/bytes_salvaged/commit_frames on a clean file.
struct SpillReadStats {
  std::uint64_t blocks_ok = 0;       ///< blocks read and decoded intact
  std::uint64_t blocks_skipped = 0;  ///< CRC-failed or undecodable blocks
  std::uint64_t bytes_salvaged = 0;  ///< payload bytes of the intact blocks
  std::uint64_t bytes_skipped = 0;   ///< corrupt bytes scanned past (resync)
  std::uint64_t torn_tail_bytes = 0; ///< incomplete trailing frame dropped
  std::uint64_t commit_frames = 0;   ///< commit records seen

  /// True when any damage was encountered (skips, resyncs, torn tail).
  bool corrupted() const {
    return blocks_skipped != 0 || bytes_skipped != 0 || torn_tail_bytes != 0;
  }
  SpillReadStats& operator+=(const SpillReadStats& other) {
    blocks_ok += other.blocks_ok;
    blocks_skipped += other.blocks_skipped;
    bytes_salvaged += other.bytes_salvaged;
    bytes_skipped += other.bytes_skipped;
    torn_tail_bytes += other.torn_tail_bytes;
    commit_frames += other.commit_frames;
    return *this;
  }
};

/// Appends session blocks to one spill file.  Not thread-safe; in the
/// sharded engine each shard owns one writer.
class SpillWriter {
 public:
  /// Creates/truncates `path` and writes the file header.  Throws
  /// std::runtime_error when the file cannot be opened.
  explicit SpillWriter(const std::filesystem::path& path);

  /// Resume an existing spill file at a previously committed offset (see
  /// committed_bytes()): validates the header, truncates everything past
  /// `committed_bytes` (uncommitted work from a crashed run), and appends
  /// from there.  `blocks_already_written` restores the commit counter.
  /// Throws std::runtime_error on a missing/short/incompatible file.
  SpillWriter(const std::filesystem::path& path,
              std::uint64_t committed_bytes,
              std::uint64_t blocks_already_written);

  ~SpillWriter();  // closes (without the error check close() performs)

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Serialize one session's records as a block and its commit frame.  The
  /// group's vectors are written in their current order (emission order,
  /// for byte-identical CSV re-export).
  void write(const SessionRecordGroup& group);

  /// Push buffered frames to the OS and return the committed byte offset —
  /// the value a checkpoint must record for a later resume.  Throws on
  /// write errors.
  std::uint64_t flush_committed();

  /// Flush and close, throwing on write errors.  Idempotent.
  void close();

  std::uint64_t blocks_written() const { return blocks_written_; }
  /// File offset after the last fully written frame.
  std::uint64_t committed_bytes() const { return offset_; }

 private:
  std::ofstream out_;
  std::filesystem::path path_;
  std::string scratch_;  ///< reused payload buffer
  std::string frame_;    ///< reused frame-header/commit buffer
  std::uint64_t blocks_written_ = 0;
  std::uint64_t offset_ = 0;  ///< bytes written so far (header + frames)
};

/// One block's location inside a spill file.
struct SpillBlockRef {
  std::uint64_t session_id = 0;
  std::uint64_t offset = 0;  ///< file offset of the block frame
};

/// Reads one spill file: sequentially, or random-access via an index.
/// The constructor throws std::runtime_error on an unopenable file, bad
/// magic or unsupported version; after that, damage never throws — torn
/// tails are truncated and corrupt blocks skipped, accounted in stats()
/// (and mirrored into the optional external `stats` accumulator, which
/// lets a SpillSet aggregate salvage over many readers).
class SpillReader {
 public:
  explicit SpillReader(const std::filesystem::path& path,
                       SpillReadStats* stats = nullptr);

  /// Next intact block in file order; nullopt at end of file.
  std::optional<SessionRecordGroup> next();

  /// Scan every frame header (payloads skipped, not CRC-checked) and
  /// return the structurally valid block refs in file order.  Leaves the
  /// sequential cursor at end of file.
  std::vector<SpillBlockRef> index();

  /// Read the block at `ref.offset` (moves the sequential cursor).
  /// nullopt when the block is corrupt (accounted in stats()).
  std::optional<SessionRecordGroup> read_at(const SpillBlockRef& ref);

  const SpillReadStats& stats() const { return stats_; }

 private:
  /// Parse one frame at the cursor; decode_payload controls whether block
  /// payloads are read+verified (next/read_at) or skipped (index).
  enum class FrameKind { kBlock, kCommit, kSkip, kEnd };
  FrameKind parse_frame(bool decode, std::optional<SessionRecordGroup>* out,
                        SpillBlockRef* ref);
  void bump(std::uint64_t SpillReadStats::* counter, std::uint64_t n);

  std::ifstream in_;
  std::filesystem::path path_;
  std::string scratch_;
  std::uint64_t file_size_ = 0;
  SpillReadStats stats_;
  SpillReadStats* external_stats_ = nullptr;
};

class SpillGroupStream;

/// A set of spill files (one per shard) that together hold one run's
/// telemetry.  Files are kept in shard order: when a session's blocks
/// appear in several files, the merged stream concatenates them in file
/// order — the same tie-break the canonical in-memory merge applies.
class SpillSet {
 public:
  SpillSet() = default;

  void add_file(std::filesystem::path path) {
    files_.push_back(std::move(path));
  }
  const std::vector<std::filesystem::path>& files() const { return files_; }
  bool empty() const { return files_.empty(); }

  /// Open a merged stream over all files in ascending session-id order.
  /// When `stats` is non-null it accumulates salvage accounting across
  /// every file as the stream is consumed (final once the stream returns
  /// nullopt).  Corrupt blocks are skipped; a session whose every block is
  /// corrupt disappears from the stream.
  std::unique_ptr<SessionGroupStream> open(
      SpillReadStats* stats = nullptr) const;

  /// Materialize every record back into one canonical Dataset (ascending
  /// session id, per-session emission order) — byte-equivalent to the
  /// in-memory run's merged dataset.
  Dataset load(SpillReadStats* stats = nullptr) const;

 private:
  std::vector<std::filesystem::path> files_;
};

}  // namespace vstream::telemetry
