// Binary on-disk spill format for session record groups.
//
// Layout (all integers little-endian, fixed width):
//
//   file   := magic:u32 ("VSPL", 0x4C505356) version:u32 (1) block*
//   block  := session_id:u64 payload_size:u64 payload
//   payload:= count:u32 x5 (player_sessions, cdn_sessions, player_chunks,
//             cdn_chunks, tcp_snapshots) then the five record groups as
//             contiguous column groups, each record field-by-field in the
//             declared struct order
//
// Scalars: doubles are raw IEEE-754 bits (u64), so a write/read round
// trip is bit-exact and CSV re-export stays byte-identical; bools and
// enums are one byte; strings are u32 length + bytes.  The per-record
// session_id is NOT stored — it is block-level and re-applied on read.
//
// `payload_size` makes blocks skippable without decoding, which is how
// SpillSet builds its per-file index: one header scan, then random-access
// reads in ascending session-id order regardless of the completion order
// the blocks were written in.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/record_group.h"

namespace vstream::telemetry {

inline constexpr std::uint32_t kSpillMagic = 0x4C505356;  // "VSPL"
inline constexpr std::uint32_t kSpillVersion = 1;

/// Appends session blocks to one spill file.  Not thread-safe; in the
/// sharded engine each shard owns one writer.
class SpillWriter {
 public:
  /// Creates/truncates `path` and writes the file header.  Throws
  /// std::runtime_error when the file cannot be opened.
  explicit SpillWriter(const std::filesystem::path& path);
  ~SpillWriter();  // closes (without the error check close() performs)

  SpillWriter(const SpillWriter&) = delete;
  SpillWriter& operator=(const SpillWriter&) = delete;

  /// Serialize one session's records as a block.  The group's vectors are
  /// written in their current order (emission order, for byte-identical
  /// CSV re-export).
  void write(const SessionRecordGroup& group);

  /// Flush and close, throwing on write errors.  Idempotent.
  void close();

  std::uint64_t blocks_written() const { return blocks_written_; }

 private:
  std::ofstream out_;
  std::filesystem::path path_;
  std::string scratch_;  ///< reused payload buffer
  std::uint64_t blocks_written_ = 0;
};

/// One block's location inside a spill file.
struct SpillBlockRef {
  std::uint64_t session_id = 0;
  std::uint64_t offset = 0;  ///< file offset of the block header
};

/// Reads one spill file: sequentially, or random-access via an index.
/// Throws std::runtime_error on bad magic/version or truncated data.
class SpillReader {
 public:
  explicit SpillReader(const std::filesystem::path& path);

  /// Next block in file order; nullopt at end of file.
  std::optional<SessionRecordGroup> next();

  /// Scan every block header (payloads skipped) and return the refs in
  /// file order.  Leaves the sequential cursor at end of file.
  std::vector<SpillBlockRef> index();

  /// Read the block at `ref.offset` (moves the sequential cursor).
  SessionRecordGroup read_at(const SpillBlockRef& ref);

 private:
  std::ifstream in_;
  std::filesystem::path path_;
  std::string scratch_;
};

class SpillGroupStream;

/// A set of spill files (one per shard) that together hold one run's
/// telemetry.  Files are kept in shard order: when a session's blocks
/// appear in several files, the merged stream concatenates them in file
/// order — the same tie-break the canonical in-memory merge applies.
class SpillSet {
 public:
  SpillSet() = default;

  void add_file(std::filesystem::path path) {
    files_.push_back(std::move(path));
  }
  const std::vector<std::filesystem::path>& files() const { return files_; }
  bool empty() const { return files_.empty(); }

  /// Open a merged stream over all files in ascending session-id order.
  std::unique_ptr<SessionGroupStream> open() const;

  /// Materialize every record back into one canonical Dataset (ascending
  /// session id, per-session emission order) — byte-equivalent to the
  /// in-memory run's merged dataset.
  Dataset load() const;

 private:
  std::vector<std::filesystem::path> files_;
};

}  // namespace vstream::telemetry
