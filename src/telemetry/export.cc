#include "telemetry/export.h"

#include <array>
#include <fstream>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "failpoints/failpoint.h"
#include "runtime/executor.h"
#include "sim/host_error.h"
#include "telemetry/fast_format.h"

namespace vstream::telemetry {

namespace {

// ------------------------------------------------------------------ util

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

void expect_header(std::istream& in, const std::string& expected,
                   const char* stream_name) {
  std::string line;
  if (!std::getline(in, line) || line != expected) {
    throw std::runtime_error(std::string("csv: bad header for ") +
                             stream_name + ": got '" + line + "'");
  }
}

void expect_fields(const std::vector<std::string>& fields, std::size_t n,
                   const char* stream_name) {
  if (fields.size() != n) {
    throw std::runtime_error(std::string("csv: wrong field count in ") +
                             stream_name + ": expected " + std::to_string(n) +
                             ", got " + std::to_string(fields.size()));
  }
}

const char* cache_level_token(cdn::CacheLevel level) {
  return cdn::to_string(level);  // "ram-hit" / "disk-hit" / "miss"
}

cdn::CacheLevel parse_cache_level(const std::string& token) {
  if (token == "ram-hit") return cdn::CacheLevel::kRam;
  if (token == "disk-hit") return cdn::CacheLevel::kDisk;
  if (token == "miss") return cdn::CacheLevel::kMiss;
  throw std::runtime_error("csv: unknown cache level '" + token + "'");
}

const char* access_token(net::AccessType access) {
  return net::to_string(access);
}

cdn::BreakerState parse_breaker_state(const std::string& token) {
  if (token == "closed") return cdn::BreakerState::kClosed;
  if (token == "open") return cdn::BreakerState::kOpen;
  if (token == "half-open") return cdn::BreakerState::kHalfOpen;
  throw std::runtime_error("csv: unknown breaker state '" + token + "'");
}

net::AccessType parse_access(const std::string& token) {
  if (token == "residential") return net::AccessType::kResidential;
  if (token == "enterprise") return net::AccessType::kEnterprise;
  if (token == "international") return net::AccessType::kInternational;
  throw std::runtime_error("csv: unknown access type '" + token + "'");
}

}  // namespace

// --------------------------------------------------------- player sessions

namespace {
constexpr const char* kPlayerSessionHeader =
    "session_id,client_ip,user_agent,video_duration_s,start_time_ms,"
    "startup_ms,chunks_requested,completed";
}

void append_csv_row(WriteBuffer& buf, const PlayerSessionRecord& r) {
  buf.append_u64(r.session_id);
  buf.append(',');
  buf.append_ip(r.client_ip);
  buf.append(',');
  buf.append(r.user_agent);
  buf.append(',');
  buf.append_double_g6(r.video_duration_s);
  buf.append(',');
  buf.append_double_g6(r.start_time_ms);
  buf.append(',');
  buf.append_double_g6(r.startup_ms);
  buf.append(',');
  buf.append_u64(r.chunks_requested);
  buf.append(',');
  buf.append_bool01(r.completed);
  buf.append('\n');
}

void write_player_sessions_csv(std::ostream& out,
                               const std::vector<PlayerSessionRecord>& records) {
  WriteBuffer buf(out);
  buf.append(kPlayerSessionHeader);
  buf.append('\n');
  for (const PlayerSessionRecord& r : records) append_csv_row(buf, r);
}

std::vector<PlayerSessionRecord> read_player_sessions_csv(std::istream& in) {
  expect_header(in, kPlayerSessionHeader, "player_sessions");
  std::vector<PlayerSessionRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    expect_fields(f, 8, "player_sessions");
    PlayerSessionRecord r;
    r.session_id = std::stoull(f[0]);
    r.client_ip = net::parse_ip(f[1]);
    r.user_agent = f[2];
    r.video_duration_s = std::stod(f[3]);
    r.start_time_ms = std::stod(f[4]);
    r.startup_ms = std::stod(f[5]);
    r.chunks_requested = static_cast<std::uint32_t>(std::stoul(f[6]));
    r.completed = f[7] == "1";
    records.push_back(std::move(r));
  }
  return records;
}

// ------------------------------------------------------------ cdn sessions

namespace {
constexpr const char* kCdnSessionHeader =
    "session_id,observed_ip,observed_user_agent,pop,server,org,access,city,"
    "country,client_distance_km";
}

void append_csv_row(WriteBuffer& buf, const CdnSessionRecord& r) {
  buf.append_u64(r.session_id);
  buf.append(',');
  buf.append_ip(r.observed_ip);
  buf.append(',');
  buf.append(r.observed_user_agent);
  buf.append(',');
  buf.append_u64(r.pop);
  buf.append(',');
  buf.append_u64(r.server);
  buf.append(',');
  buf.append(r.org);
  buf.append(',');
  buf.append(access_token(r.access));
  buf.append(',');
  buf.append(r.city);
  buf.append(',');
  buf.append(r.country);
  buf.append(',');
  buf.append_double_g6(r.client_distance_km);
  buf.append('\n');
}

void write_cdn_sessions_csv(std::ostream& out,
                            const std::vector<CdnSessionRecord>& records) {
  WriteBuffer buf(out);
  buf.append(kCdnSessionHeader);
  buf.append('\n');
  for (const CdnSessionRecord& r : records) append_csv_row(buf, r);
}

std::vector<CdnSessionRecord> read_cdn_sessions_csv(std::istream& in) {
  expect_header(in, kCdnSessionHeader, "cdn_sessions");
  std::vector<CdnSessionRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    expect_fields(f, 10, "cdn_sessions");
    CdnSessionRecord r;
    r.session_id = std::stoull(f[0]);
    r.observed_ip = net::parse_ip(f[1]);
    r.observed_user_agent = f[2];
    r.pop = static_cast<std::uint32_t>(std::stoul(f[3]));
    r.server = static_cast<std::uint32_t>(std::stoul(f[4]));
    r.org = f[5];
    r.access = parse_access(f[6]);
    r.city = f[7];
    r.country = f[8];
    r.client_distance_km = std::stod(f[9]);
    records.push_back(std::move(r));
  }
  return records;
}

// ------------------------------------------------------------ player chunks

namespace {
constexpr const char* kPlayerChunkHeader =
    "session_id,chunk_id,request_sent_ms,dfb_ms,dlb_ms,bitrate_kbps,"
    "rebuffer_ms,rebuffer_count,visible,avg_fps,dropped_frames,total_frames,"
    "retries,timeouts,failed_over,recovery_ms";
}

void append_csv_row(WriteBuffer& buf, const PlayerChunkRecord& r) {
  buf.append_u64(r.session_id);
  buf.append(',');
  buf.append_u64(r.chunk_id);
  buf.append(',');
  buf.append_double_g6(r.request_sent_ms);
  buf.append(',');
  buf.append_double_g6(r.dfb_ms);
  buf.append(',');
  buf.append_double_g6(r.dlb_ms);
  buf.append(',');
  buf.append_u64(r.bitrate_kbps);
  buf.append(',');
  buf.append_double_g6(r.rebuffer_ms);
  buf.append(',');
  buf.append_u64(r.rebuffer_count);
  buf.append(',');
  buf.append_bool01(r.visible);
  buf.append(',');
  buf.append_double_g6(r.avg_fps);
  buf.append(',');
  buf.append_u64(r.dropped_frames);
  buf.append(',');
  buf.append_u64(r.total_frames);
  buf.append(',');
  buf.append_u64(r.retries);
  buf.append(',');
  buf.append_u64(r.timeouts);
  buf.append(',');
  buf.append_bool01(r.failed_over);
  buf.append(',');
  buf.append_double_g6(r.recovery_ms);
  buf.append('\n');
}

void write_player_chunks_csv(std::ostream& out,
                             const std::vector<PlayerChunkRecord>& records) {
  WriteBuffer buf(out);
  buf.append(kPlayerChunkHeader);
  buf.append('\n');
  for (const PlayerChunkRecord& r : records) append_csv_row(buf, r);
}

std::vector<PlayerChunkRecord> read_player_chunks_csv(std::istream& in) {
  expect_header(in, kPlayerChunkHeader, "player_chunks");
  std::vector<PlayerChunkRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    expect_fields(f, 16, "player_chunks");
    PlayerChunkRecord r;
    r.session_id = std::stoull(f[0]);
    r.chunk_id = static_cast<std::uint32_t>(std::stoul(f[1]));
    r.request_sent_ms = std::stod(f[2]);
    r.dfb_ms = std::stod(f[3]);
    r.dlb_ms = std::stod(f[4]);
    r.bitrate_kbps = static_cast<std::uint32_t>(std::stoul(f[5]));
    r.rebuffer_ms = std::stod(f[6]);
    r.rebuffer_count = static_cast<std::uint32_t>(std::stoul(f[7]));
    r.visible = f[8] == "1";
    r.avg_fps = std::stod(f[9]);
    r.dropped_frames = static_cast<std::uint32_t>(std::stoul(f[10]));
    r.total_frames = static_cast<std::uint32_t>(std::stoul(f[11]));
    r.retries = static_cast<std::uint32_t>(std::stoul(f[12]));
    r.timeouts = static_cast<std::uint32_t>(std::stoul(f[13]));
    r.failed_over = f[14] == "1";
    r.recovery_ms = std::stod(f[15]);
    records.push_back(r);
  }
  return records;
}

// --------------------------------------------------------------- cdn chunks

namespace {
constexpr const char* kCdnChunkHeader =
    "session_id,chunk_id,dwait_ms,dopen_ms,dread_ms,dbe_ms,cache_level,"
    "chunk_bytes,pop,server,served_stale,shed,hedged,hedge_won,breaker,"
    "budget_denied,served_swr";
}

void append_csv_row(WriteBuffer& buf, const CdnChunkRecord& r) {
  buf.append_u64(r.session_id);
  buf.append(',');
  buf.append_u64(r.chunk_id);
  buf.append(',');
  buf.append_double_g6(r.dwait_ms);
  buf.append(',');
  buf.append_double_g6(r.dopen_ms);
  buf.append(',');
  buf.append_double_g6(r.dread_ms);
  buf.append(',');
  buf.append_double_g6(r.dbe_ms);
  buf.append(',');
  buf.append(cache_level_token(r.cache_level));
  buf.append(',');
  buf.append_u64(r.chunk_bytes);
  buf.append(',');
  buf.append_u64(r.pop);
  buf.append(',');
  buf.append_u64(r.server);
  buf.append(',');
  buf.append_bool01(r.served_stale);
  buf.append(',');
  buf.append_bool01(r.shed);
  buf.append(',');
  buf.append_bool01(r.hedged);
  buf.append(',');
  buf.append_bool01(r.hedge_won);
  buf.append(',');
  buf.append(cdn::to_string(r.breaker));
  buf.append(',');
  buf.append_bool01(r.budget_denied);
  buf.append(',');
  buf.append_bool01(r.served_swr);
  buf.append('\n');
}

void write_cdn_chunks_csv(std::ostream& out,
                          const std::vector<CdnChunkRecord>& records) {
  WriteBuffer buf(out);
  buf.append(kCdnChunkHeader);
  buf.append('\n');
  for (const CdnChunkRecord& r : records) append_csv_row(buf, r);
}

std::vector<CdnChunkRecord> read_cdn_chunks_csv(std::istream& in) {
  expect_header(in, kCdnChunkHeader, "cdn_chunks");
  std::vector<CdnChunkRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    expect_fields(f, 17, "cdn_chunks");
    CdnChunkRecord r;
    r.session_id = std::stoull(f[0]);
    r.chunk_id = static_cast<std::uint32_t>(std::stoul(f[1]));
    r.dwait_ms = std::stod(f[2]);
    r.dopen_ms = std::stod(f[3]);
    r.dread_ms = std::stod(f[4]);
    r.dbe_ms = std::stod(f[5]);
    r.cache_level = parse_cache_level(f[6]);
    r.chunk_bytes = std::stoull(f[7]);
    r.pop = static_cast<std::uint32_t>(std::stoul(f[8]));
    r.server = static_cast<std::uint32_t>(std::stoul(f[9]));
    r.served_stale = f[10] == "1";
    r.shed = f[11] == "1";
    r.hedged = f[12] == "1";
    r.hedge_won = f[13] == "1";
    r.breaker = parse_breaker_state(f[14]);
    r.budget_denied = f[15] == "1";
    r.served_swr = f[16] == "1";
    records.push_back(r);
  }
  return records;
}

// ------------------------------------------------------------ tcp snapshots

namespace {
constexpr const char* kTcpSnapshotHeader =
    "session_id,chunk_id,at_ms,srtt_ms,rttvar_ms,cwnd_segments,"
    "ssthresh_segments,mss_bytes,total_retrans,segments_out,bytes_acked,"
    "in_slow_start";
}

void append_csv_row(WriteBuffer& buf, const TcpSnapshotRecord& r) {
  buf.append_u64(r.session_id);
  buf.append(',');
  buf.append_u64(r.chunk_id);
  buf.append(',');
  buf.append_double_g6(r.at_ms);
  buf.append(',');
  buf.append_double_g6(r.info.srtt_ms);
  buf.append(',');
  buf.append_double_g6(r.info.rttvar_ms);
  buf.append(',');
  buf.append_u64(r.info.cwnd_segments);
  buf.append(',');
  buf.append_u64(r.info.ssthresh_segments);
  buf.append(',');
  buf.append_u64(r.info.mss_bytes);
  buf.append(',');
  buf.append_u64(r.info.total_retrans);
  buf.append(',');
  buf.append_u64(r.info.segments_out);
  buf.append(',');
  buf.append_u64(r.info.bytes_acked);
  buf.append(',');
  buf.append_bool01(r.info.in_slow_start);
  buf.append('\n');
}

void write_tcp_snapshots_csv(std::ostream& out,
                             const std::vector<TcpSnapshotRecord>& records) {
  WriteBuffer buf(out);
  buf.append(kTcpSnapshotHeader);
  buf.append('\n');
  for (const TcpSnapshotRecord& r : records) append_csv_row(buf, r);
}

std::vector<TcpSnapshotRecord> read_tcp_snapshots_csv(std::istream& in) {
  expect_header(in, kTcpSnapshotHeader, "tcp_snapshots");
  std::vector<TcpSnapshotRecord> records;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = split_csv_line(line);
    expect_fields(f, 12, "tcp_snapshots");
    TcpSnapshotRecord r;
    r.session_id = std::stoull(f[0]);
    r.chunk_id = static_cast<std::uint32_t>(std::stoul(f[1]));
    r.at_ms = std::stod(f[2]);
    r.info.srtt_ms = std::stod(f[3]);
    r.info.rttvar_ms = std::stod(f[4]);
    r.info.cwnd_segments = static_cast<std::uint32_t>(std::stoul(f[5]));
    r.info.ssthresh_segments = static_cast<std::uint32_t>(std::stoul(f[6]));
    r.info.mss_bytes = static_cast<std::uint32_t>(std::stoul(f[7]));
    r.info.total_retrans = std::stoull(f[8]);
    r.info.segments_out = std::stoull(f[9]);
    r.info.bytes_acked = std::stoull(f[10]);
    r.info.in_slow_start = f[11] == "1";
    records.push_back(r);
  }
  return records;
}

// ---------------------------------------------------------------- directory

namespace {

/// Open failure, real or injected (export.open): sim::HostIoError.
void check_open(std::ofstream& out, const std::filesystem::path& path) {
  if (failpoints::should_fail(failpoints::Site::kExportOpen)) {
    out.setstate(std::ios::badbit);
  }
  if (!out) throw sim::HostIoError("csv: cannot open " + path.string());
}

/// Per-file completion check: a short write (full disk) latches the
/// stream's badbit; detect it after the final flush so the tool exits
/// nonzero instead of leaving a truncated CSV behind with exit 0.
void check_written(std::ofstream& out, const std::filesystem::path& path) {
  if (failpoints::should_fail(failpoints::Site::kExportWrite)) {
    out.setstate(std::ios::badbit);
  }
  out.flush();
  if (out.fail()) {
    throw sim::HostIoError("csv: error writing " + path.string());
  }
}

template <typename Writer>
void write_file(const std::filesystem::path& path, Writer&& writer) {
  std::ofstream out(path);
  check_open(out, path);
  writer(out);
  check_written(out, path);
}

template <typename Reader>
auto read_file(const std::filesystem::path& path, Reader&& reader) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("csv: cannot open " + path.string());
  return reader(in);
}

}  // namespace

void export_dataset(const Dataset& data,
                    const std::filesystem::path& directory,
                    runtime::Executor* executor) {
  std::filesystem::create_directories(directory);
  // Five independent files: each task owns one path and reads one
  // record vector, so parallel execution shares nothing mutable.
  const std::array<std::function<void()>, 5> writers = {
      [&] {
        write_file(directory / "player_sessions.csv", [&](std::ostream& out) {
          write_player_sessions_csv(out, data.player_sessions);
        });
      },
      [&] {
        write_file(directory / "cdn_sessions.csv", [&](std::ostream& out) {
          write_cdn_sessions_csv(out, data.cdn_sessions);
        });
      },
      [&] {
        write_file(directory / "player_chunks.csv", [&](std::ostream& out) {
          write_player_chunks_csv(out, data.player_chunks);
        });
      },
      [&] {
        write_file(directory / "cdn_chunks.csv", [&](std::ostream& out) {
          write_cdn_chunks_csv(out, data.cdn_chunks);
        });
      },
      [&] {
        write_file(directory / "tcp_snapshots.csv", [&](std::ostream& out) {
          write_tcp_snapshots_csv(out, data.tcp_snapshots);
        });
      },
  };
  if (executor != nullptr && executor->workers() > 1) {
    executor->parallel_for(writers.size(),
                           [&](std::size_t i) { writers[i](); });
  } else {
    for (const auto& writer : writers) writer();
  }
}

void export_stream(SessionGroupStream& groups,
                   const std::filesystem::path& directory,
                   runtime::Executor* executor) {
  std::filesystem::create_directories(directory);
  const auto open = [&](const char* name) {
    std::ofstream out(directory / name);
    check_open(out, directory / name);
    return out;
  };
  std::ofstream ps_out = open("player_sessions.csv");
  std::ofstream cs_out = open("cdn_sessions.csv");
  std::ofstream pc_out = open("player_chunks.csv");
  std::ofstream cc_out = open("cdn_chunks.csv");
  std::ofstream ts_out = open("tcp_snapshots.csv");
  // One failure check covering all five streams, evaluated after every
  // drained window (fail fast on a mid-export disk error — badbit
  // latches even while rows are still buffered) and once after the
  // final buffer flush.  The export.write failpoint fails all five, the
  // shape a full disk actually has.
  const std::array<std::pair<std::ofstream*, const char*>, 5> streams = {{
      {&ps_out, "player_sessions.csv"},
      {&cs_out, "cdn_sessions.csv"},
      {&pc_out, "player_chunks.csv"},
      {&cc_out, "cdn_chunks.csv"},
      {&ts_out, "tcp_snapshots.csv"},
  }};
  const auto check_streams = [&] {
    if (failpoints::should_fail(failpoints::Site::kExportWrite)) {
      for (const auto& [out, name] : streams) out->setstate(std::ios::badbit);
    }
    for (const auto& [out, name] : streams) {
      if (out->fail()) {
        throw sim::HostIoError("csv: error writing " +
                               (directory / name).string());
      }
    }
  };
  {
    WriteBuffer ps(ps_out), cs(cs_out), pc(pc_out), cc(cc_out), ts(ts_out);
    ps.append(kPlayerSessionHeader);
    ps.append('\n');
    cs.append(kCdnSessionHeader);
    cs.append('\n');
    pc.append(kPlayerChunkHeader);
    pc.append('\n');
    cc.append(kCdnChunkHeader);
    cc.append('\n');
    ts.append(kTcpSnapshotHeader);
    ts.append('\n');

    // The group stream is a serial pull source, but formatting dominates:
    // pull a window of groups, then drain each of the five streams over
    // the whole window as an independent task (each task touches only its
    // own buffer + file).  Rows keep stream order per file, so the bytes
    // match the serial loop exactly.
    constexpr std::size_t kWindowGroups = 256;
    std::vector<SessionRecordGroup> window;
    window.reserve(kWindowGroups);
    const std::array<std::function<void()>, 5> drains = {
        [&] {
          for (const auto& g : window) {
            for (const auto& r : g.player_sessions) append_csv_row(ps, r);
          }
        },
        [&] {
          for (const auto& g : window) {
            for (const auto& r : g.cdn_sessions) append_csv_row(cs, r);
          }
        },
        [&] {
          for (const auto& g : window) {
            for (const auto& r : g.player_chunks) append_csv_row(pc, r);
          }
        },
        [&] {
          for (const auto& g : window) {
            for (const auto& r : g.cdn_chunks) append_csv_row(cc, r);
          }
        },
        [&] {
          for (const auto& g : window) {
            for (const auto& r : g.tcp_snapshots) append_csv_row(ts, r);
          }
        },
    };
    const auto drain_window = [&] {
      if (window.empty()) return;
      if (executor != nullptr && executor->workers() > 1) {
        executor->parallel_for(drains.size(),
                               [&](std::size_t i) { drains[i](); });
      } else {
        for (const auto& drain : drains) drain();
      }
      window.clear();
      check_streams();
    };
    while (std::optional<SessionRecordGroup> group = groups.next()) {
      window.push_back(std::move(*group));
      if (window.size() >= kWindowGroups) drain_window();
    }
    drain_window();
  }  // buffers flush before the streams close
  for (const auto& [out, name] : streams) out->flush();
  check_streams();
}

Dataset import_dataset(const std::filesystem::path& directory) {
  Dataset data;
  data.player_sessions = read_file(directory / "player_sessions.csv",
                                   read_player_sessions_csv);
  data.cdn_sessions =
      read_file(directory / "cdn_sessions.csv", read_cdn_sessions_csv);
  data.player_chunks =
      read_file(directory / "player_chunks.csv", read_player_chunks_csv);
  data.cdn_chunks = read_file(directory / "cdn_chunks.csv", read_cdn_chunks_csv);
  data.tcp_snapshots =
      read_file(directory / "tcp_snapshots.csv", read_tcp_snapshots_csv);
  return data;
}

}  // namespace vstream::telemetry
