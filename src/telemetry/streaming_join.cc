#include "telemetry/streaming_join.h"

#include <unordered_map>

namespace vstream::telemetry {

std::optional<JoinedSession> StreamingJoiner::join(
    const SessionRecordGroup& group) {
  JoinedSession session;
  session.session_id = group.session_id;

  // Session-level last-wins, as in the batch join's overwrite semantics
  // (duplicate session records keep the one later in the stream).
  for (const PlayerSessionRecord& r : group.player_sessions) {
    session.player = &r;
  }
  for (const CdnSessionRecord& r : group.cdn_sessions) {
    session.cdn = &r;
  }

  if (session.player == nullptr && session.cdn == nullptr) {
    // Orphan chunk/snapshot records with no session-level context: the
    // batch join never creates a session entry for these, so they are not
    // counted as dropped either.
    return std::nullopt;
  }
  if (session.player == nullptr || session.cdn == nullptr) {
    ++dropped_incomplete_;
    return std::nullopt;
  }
  if (proxies_ != nullptr && proxies_->is_proxy(group.session_id)) {
    ++dropped_as_proxy_;
    return std::nullopt;
  }

  // Chunk-level join: first-wins on duplicate (session, chunk) CDN
  // records, matching the batch join's emplace() semantics.
  std::unordered_map<std::uint32_t, const CdnChunkRecord*> cdn_by_chunk;
  cdn_by_chunk.reserve(group.cdn_chunks.size());
  for (const CdnChunkRecord& r : group.cdn_chunks) {
    cdn_by_chunk.emplace(r.chunk_id, &r);
  }
  session.chunks.reserve(group.player_chunks.size());
  for (const PlayerChunkRecord& r : group.player_chunks) {
    JoinedChunk chunk;
    chunk.player = &r;
    const auto it = cdn_by_chunk.find(r.chunk_id);
    if (it != cdn_by_chunk.end()) chunk.cdn = it->second;
    session.chunks.push_back(chunk);
  }

  session.snapshots.reserve(group.tcp_snapshots.size());
  for (const TcpSnapshotRecord& r : group.tcp_snapshots) {
    session.snapshots.push_back(&r);
  }

  finalize_joined_session(session);
  ++sessions_joined_;
  return session;
}

}  // namespace vstream::telemetry
