#include "telemetry/spill_sink.h"

#include <algorithm>

namespace vstream::telemetry {

SpillSink::SpillSink(const std::filesystem::path& path, std::uint32_t format)
    : path_(path), writer_(path, format) {}

SpillSink::SpillSink(const std::filesystem::path& path,
                     std::uint64_t committed_bytes,
                     std::uint64_t blocks_already_written)
    : path_(path), writer_(path, committed_bytes, blocks_already_written) {}

SessionRecordGroup& SpillSink::group_for(std::uint64_t session_id) {
  auto [it, inserted] = live_.try_emplace(session_id);
  if (inserted) {
    it->second.session_id = session_id;
    peak_live_ = std::max(peak_live_, live_.size());
  }
  return it->second;
}

void SpillSink::record(PlayerSessionRecord r) {
  group_for(r.session_id).player_sessions.push_back(std::move(r));
}

void SpillSink::record(CdnSessionRecord r) {
  group_for(r.session_id).cdn_sessions.push_back(std::move(r));
}

void SpillSink::record(PlayerChunkRecord r) {
  group_for(r.session_id).player_chunks.push_back(std::move(r));
}

void SpillSink::record(CdnChunkRecord r) {
  group_for(r.session_id).cdn_chunks.push_back(std::move(r));
}

void SpillSink::record(TcpSnapshotRecord r) {
  group_for(r.session_id).tcp_snapshots.push_back(std::move(r));
}

void SpillSink::session_complete(std::uint64_t session_id) {
  const auto it = live_.find(session_id);
  if (it == live_.end()) return;  // a session may legitimately emit nothing
  writer_.write(it->second);
  live_.erase(it);
}

void SpillSink::flush_live() {
  for (const auto& [id, group] : live_) writer_.write(group);
  live_.clear();
}

void SpillSink::finish() {
  flush_live();
  writer_.close();
}

}  // namespace vstream::telemetry
