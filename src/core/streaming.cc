#include "core/streaming.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>

#include "runtime/executor.h"
#include "telemetry/streaming_join.h"

namespace vstream::core {

namespace {

/// The shared two-pass fold; `open` must return a fresh canonical-order
/// stream each call.
template <typename OpenStream>
StreamingAnalysis analyze_impl(const OpenStream& open,
                               double chunk_duration_s,
                               const telemetry::ProxyFilterConfig& proxy_config) {
  StreamingAnalysis out;

  // Pass 1: proxy detection sees only the two session-level streams, so a
  // session-only dataset — O(sessions), no chunk records — reproduces
  // detect_proxies on the full dataset exactly.
  {
    telemetry::Dataset session_level;
    auto stream = open();
    while (auto group = stream->next()) {
      for (auto& r : group->player_sessions) {
        session_level.player_sessions.push_back(std::move(r));
      }
      for (auto& r : group->cdn_sessions) {
        session_level.cdn_sessions.push_back(std::move(r));
      }
    }
    out.proxies = telemetry::detect_proxies(session_level, proxy_config);
  }

  // Pass 2: join + accumulate, one session resident at a time.
  telemetry::StreamingJoiner joiner(&out.proxies);
  analysis::QoeAccumulator qoe;
  analysis::PrefixRollupAccumulator prefixes;
  analysis::PerfScoreAccumulator perf(chunk_duration_s);
  analysis::RecoveryImpactAccumulator recovery;
  {
    auto stream = open();
    while (auto group = stream->next()) {
      const auto joined = joiner.join(*group);
      if (!joined) continue;
      qoe.add(*joined);
      prefixes.add(*joined);
      perf.add(*joined);
      recovery.add(*joined);
    }
  }
  out.sessions_joined = joiner.sessions_joined();
  out.dropped_as_proxy = joiner.dropped_as_proxy();
  out.dropped_incomplete = joiner.dropped_incomplete();
  out.qoe = std::move(qoe).finalize();
  out.prefixes = std::move(prefixes).finalize();
  out.perf = std::move(perf).finalize();
  out.recovery = std::move(recovery).finalize();
  return out;
}

/// Stable-sort a session-level record stream by session id — turns the
/// concatenation of per-file (ascending-id) record runs into exactly the
/// sequence the merged SpillSet stream would have produced: ascending id,
/// ties broken by file order, per-file emission order preserved.
template <typename Record>
void sort_by_session(std::vector<Record>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.session_id < b.session_id;
                   });
}

/// The parallel spill fold: per-file tasks on `executor`, merged in file
/// order.  Bit-identical to the serial analyze_impl fold (see the header
/// doc for why).
StreamingAnalysis analyze_spill_parallel(
    const telemetry::SpillSet& spill, double chunk_duration_s,
    const telemetry::ProxyFilterConfig& proxy_config,
    runtime::Executor& executor) {
  const std::vector<std::filesystem::path>& files = spill.files();
  StreamingAnalysis out;

  // Pass 1, per file: the session-level records (all proxy detection
  // needs) plus every block's session id (for cross-file session
  // detection), each file read by one task into its own slot.
  struct FileScan {
    telemetry::Dataset session_level;
    std::vector<std::uint64_t> ids;  ///< ascending; one per session group
    telemetry::SpillReadStats stats;
  };
  std::vector<FileScan> scans(files.size());
  executor.parallel_for(files.size(), [&](std::size_t f) {
    FileScan& scan = scans[f];
    telemetry::SpillSet one;
    one.add_file(files[f]);
    auto stream = one.open(&scan.stats);
    while (auto group = stream->next()) {
      scan.ids.push_back(group->session_id);
      for (auto& r : group->player_sessions) {
        scan.session_level.player_sessions.push_back(std::move(r));
      }
      for (auto& r : group->cdn_sessions) {
        scan.session_level.cdn_sessions.push_back(std::move(r));
      }
    }
  });

  // Salvage accounting comes from pass 1 only (the serial path likewise
  // accounts only its first scan); the per-file counters sum to exactly
  // the merged stream's totals.
  for (const FileScan& scan : scans) out.spill += scan.stats;

  // Rebuild the merged-stream record order from the per-file runs, then
  // detect proxies on it — identical input to the serial path's pass 1.
  {
    telemetry::Dataset session_level;
    std::size_t players = 0, cdns = 0;
    for (const FileScan& scan : scans) {
      players += scan.session_level.player_sessions.size();
      cdns += scan.session_level.cdn_sessions.size();
    }
    session_level.player_sessions.reserve(players);
    session_level.cdn_sessions.reserve(cdns);
    for (FileScan& scan : scans) {
      for (auto& r : scan.session_level.player_sessions) {
        session_level.player_sessions.push_back(std::move(r));
      }
      for (auto& r : scan.session_level.cdn_sessions) {
        session_level.cdn_sessions.push_back(std::move(r));
      }
      scan.session_level = telemetry::Dataset{};
    }
    sort_by_session(session_level.player_sessions);
    sort_by_session(session_level.cdn_sessions);
    out.proxies = telemetry::detect_proxies(session_level, proxy_config);
  }

  // Sessions whose blocks live in more than one file must be joined from
  // the *merged* group (the per-file fold would see torn halves and
  // mis-count them as incomplete).  The engine never produces them — a
  // session completes wholly on one shard — but analyze_spill accepts
  // arbitrary file sets.
  std::unordered_set<std::uint64_t> cross_file;
  {
    std::vector<std::uint64_t> all_ids;
    std::size_t total = 0;
    for (const FileScan& scan : scans) total += scan.ids.size();
    all_ids.reserve(total);
    for (const FileScan& scan : scans) {
      all_ids.insert(all_ids.end(), scan.ids.begin(), scan.ids.end());
    }
    std::sort(all_ids.begin(), all_ids.end());
    for (std::size_t i = 1; i < all_ids.size(); ++i) {
      if (all_ids[i] == all_ids[i - 1]) cross_file.insert(all_ids[i]);
    }
  }

  // Pass 2, per file: join + accumulate into per-file accumulators.
  struct FileFold {
    std::size_t joined = 0;
    std::size_t as_proxy = 0;
    std::size_t incomplete = 0;
    analysis::QoeAccumulator qoe;
    analysis::PrefixRollupAccumulator prefixes;
    std::optional<analysis::PerfScoreAccumulator> perf;
    analysis::RecoveryImpactAccumulator recovery;
  };
  std::vector<FileFold> folds(files.size());
  executor.parallel_for(files.size(), [&](std::size_t f) {
    FileFold& fold = folds[f];
    fold.perf.emplace(chunk_duration_s);
    telemetry::StreamingJoiner joiner(&out.proxies);
    telemetry::SpillSet one;
    one.add_file(files[f]);
    auto stream = one.open();  // salvage was accounted in pass 1
    while (auto group = stream->next()) {
      if (cross_file.count(group->session_id) != 0) continue;
      const auto joined = joiner.join(*group);
      if (!joined) continue;
      fold.qoe.add(*joined);
      fold.prefixes.add(*joined);
      fold.perf->add(*joined);
      fold.recovery.add(*joined);
    }
    fold.joined = joiner.sessions_joined();
    fold.as_proxy = joiner.dropped_as_proxy();
    fold.incomplete = joiner.dropped_incomplete();
  });

  // Merge in file order; finalize() sorts by session id, so the merge
  // grouping is invisible in the result.
  analysis::QoeAccumulator qoe;
  analysis::PrefixRollupAccumulator prefixes;
  analysis::PerfScoreAccumulator perf(chunk_duration_s);
  analysis::RecoveryImpactAccumulator recovery;
  for (FileFold& fold : folds) {
    out.sessions_joined += fold.joined;
    out.dropped_as_proxy += fold.as_proxy;
    out.dropped_incomplete += fold.incomplete;
    qoe.merge(std::move(fold.qoe));
    prefixes.merge(std::move(fold.prefixes));
    perf.merge(std::move(*fold.perf));
    recovery.merge(std::move(fold.recovery));
  }

  if (!cross_file.empty()) {
    // Final serial pass: the merged stream concatenates a cross-file
    // session's blocks in file order before the join sees them.
    telemetry::StreamingJoiner joiner(&out.proxies);
    auto stream = spill.open();
    while (auto group = stream->next()) {
      if (cross_file.count(group->session_id) == 0) continue;
      const auto joined = joiner.join(*group);
      if (!joined) continue;
      qoe.add(*joined);
      prefixes.add(*joined);
      perf.add(*joined);
      recovery.add(*joined);
    }
    out.sessions_joined += joiner.sessions_joined();
    out.dropped_as_proxy += joiner.dropped_as_proxy();
    out.dropped_incomplete += joiner.dropped_incomplete();
  }

  out.qoe = std::move(qoe).finalize();
  out.prefixes = std::move(prefixes).finalize();
  out.perf = std::move(perf).finalize();
  out.recovery = std::move(recovery).finalize();
  return out;
}

}  // namespace

StreamingAnalysis analyze_spill(const telemetry::SpillSet& spill,
                                double chunk_duration_s,
                                const telemetry::ProxyFilterConfig& proxy_config,
                                std::size_t threads) {
  const std::size_t workers =
      threads == 1 ? 1 : runtime::resolve_thread_count(threads);
  if (workers > 1 && spill.files().size() > 1) {
    runtime::Executor executor(workers);
    return analyze_spill_parallel(spill, chunk_duration_s, proxy_config,
                                  executor);
  }

  // Both passes re-open (and re-scan) the files; account salvage once, on
  // the first pass, or every counter would double.
  telemetry::SpillReadStats stats;
  bool first_pass = true;
  StreamingAnalysis out = analyze_impl(
      [&] {
        auto stream = spill.open(first_pass ? &stats : nullptr);
        first_pass = false;
        return stream;
      },
      chunk_duration_s, proxy_config);
  out.spill = stats;
  return out;
}

StreamingAnalysis analyze_dataset(const telemetry::Dataset& data,
                                  double chunk_duration_s,
                                  const telemetry::ProxyFilterConfig& proxy_config) {
  return analyze_impl(
      [&] { return std::make_unique<telemetry::DatasetGroupStream>(data); },
      chunk_duration_s, proxy_config);
}

}  // namespace vstream::core
