#include "core/streaming.h"

#include <memory>
#include <utility>

#include "telemetry/streaming_join.h"

namespace vstream::core {

namespace {

/// The shared two-pass fold; `open` must return a fresh canonical-order
/// stream each call.
template <typename OpenStream>
StreamingAnalysis analyze_impl(const OpenStream& open,
                               double chunk_duration_s,
                               const telemetry::ProxyFilterConfig& proxy_config) {
  StreamingAnalysis out;

  // Pass 1: proxy detection sees only the two session-level streams, so a
  // session-only dataset — O(sessions), no chunk records — reproduces
  // detect_proxies on the full dataset exactly.
  {
    telemetry::Dataset session_level;
    auto stream = open();
    while (auto group = stream->next()) {
      for (auto& r : group->player_sessions) {
        session_level.player_sessions.push_back(std::move(r));
      }
      for (auto& r : group->cdn_sessions) {
        session_level.cdn_sessions.push_back(std::move(r));
      }
    }
    out.proxies = telemetry::detect_proxies(session_level, proxy_config);
  }

  // Pass 2: join + accumulate, one session resident at a time.
  telemetry::StreamingJoiner joiner(&out.proxies);
  analysis::QoeAccumulator qoe;
  analysis::PrefixRollupAccumulator prefixes;
  analysis::PerfScoreAccumulator perf(chunk_duration_s);
  analysis::RecoveryImpactAccumulator recovery;
  {
    auto stream = open();
    while (auto group = stream->next()) {
      const auto joined = joiner.join(*group);
      if (!joined) continue;
      qoe.add(*joined);
      prefixes.add(*joined);
      perf.add(*joined);
      recovery.add(*joined);
    }
  }
  out.sessions_joined = joiner.sessions_joined();
  out.dropped_as_proxy = joiner.dropped_as_proxy();
  out.dropped_incomplete = joiner.dropped_incomplete();
  out.qoe = std::move(qoe).finalize();
  out.prefixes = std::move(prefixes).finalize();
  out.perf = std::move(perf).finalize();
  out.recovery = std::move(recovery).finalize();
  return out;
}

}  // namespace

StreamingAnalysis analyze_spill(const telemetry::SpillSet& spill,
                                double chunk_duration_s,
                                const telemetry::ProxyFilterConfig& proxy_config) {
  // Both passes re-open (and re-scan) the files; account salvage once, on
  // the first pass, or every counter would double.
  telemetry::SpillReadStats stats;
  bool first_pass = true;
  StreamingAnalysis out = analyze_impl(
      [&] {
        auto stream = spill.open(first_pass ? &stats : nullptr);
        first_pass = false;
        return stream;
      },
      chunk_duration_s, proxy_config);
  out.spill = stats;
  return out;
}

StreamingAnalysis analyze_dataset(const telemetry::Dataset& data,
                                  double chunk_duration_s,
                                  const telemetry::ProxyFilterConfig& proxy_config) {
  return analyze_impl(
      [&] { return std::make_unique<telemetry::DatasetGroupStream>(data); },
      chunk_duration_s, proxy_config);
}

}  // namespace vstream::core
