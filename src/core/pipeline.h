// The end-to-end measurement pipeline — the paper's primary contribution,
// as a library.
//
// Pipeline wires every subsystem together per session: the workload
// generator picks a viewer, video and platform; traffic engineering routes
// the session to a PoP/server; each chunk then flows ABR -> HTTP GET ->
// ATS server (cache hierarchy, retry timer, backend) -> TCP transfer over
// the client's path -> download stack -> playback buffer -> rendering
// path.  Both sides log independently (telemetry::Collector), with
// tcp_info sampled every 500 ms, and the join happens offline
// (telemetry::JoinedDataset), exactly mirroring §2 of the paper.
//
// Since the engine refactor, Pipeline is a thin facade over the layered
// engine: sessions run as engine::SessionRuntime state machines against
// this pipeline's RunContext in *coupled* mode — one live fleet whose
// caches, queues and recency evolve across sessions.  For sharded parallel
// execution with the session-isolated serve semantics, use
// engine::run_simulation() (src/engine/engine.h) instead.
//
// The pipeline also keeps *ground truth* (which chunks were DS-buffered,
// which sessions sat behind proxies) so tests can score the paper's
// detectors — something the paper itself could not do.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "cdn/fleet.h"
#include "engine/ground_truth.h"
#include "engine/overrides.h"
#include "engine/run_context.h"
#include "engine/session_runtime.h"
#include "faults/fault_injector.h"
#include "sim/event_queue.h"
#include "telemetry/collector.h"
#include "workload/scenario.h"

namespace vstream::core {

/// Simulator ground truth for validation (shared with the engine layer).
using GroundTruth = engine::GroundTruth;

/// Per-session knobs for scripted experiments (case studies, ablations).
using SessionOverrides = engine::SessionOverrides;

class Pipeline {
 public:
  explicit Pipeline(workload::Scenario scenario);

  // RunContext binds sessions to this object's members by address.
  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Pre-populate server caches in popularity order, emulating servers
  /// that have been running for weeks (the paper measures steady state:
  /// ~2% session-chunk miss rate).  `disk_fill` is the fraction of disk
  /// capacity to fill.  `universal_head` additionally pins the first few
  /// chunks of *every* video — the §4.3-3 take-away ("cache the first
  /// chunk of every video ... to reduce the startup delay").
  void warm_caches(double disk_fill = 0.92, bool universal_head = false);

  /// Run all scenario.session_count sessions, event-driven: sessions
  /// overlap in simulated time exactly as their chunk requests would hit
  /// the servers, so cache recency, server load and the per-server request
  /// interleaving evolve in true timestamp order.
  void run();

  /// Run one extra session with scripted overrides; returns its session id.
  std::uint64_t run_session(const SessionOverrides& overrides);

  /// Attach a fault schedule before run(): epochs are replayed onto the
  /// fleet through the event queue, so components fail and recover *during*
  /// the run while sessions retry, back off, and fail over around them.
  /// The schedule is also recorded in ground_truth().injected_faults.
  /// Scripted run_session() calls bypass the event queue, so fleet-side
  /// epochs do not advance during them (loss bursts still apply by time).
  void inject_faults(faults::FaultSchedule schedule);

  /// Mark /24 prefixes as having known persistent network problems; ABRs
  /// of later sessions from these prefixes receive the a-priori hint
  /// (§4.2-1 take-away).  Typically fed from a previous measurement
  /// round's analysis::persistent_tail_prefixes().
  void set_bad_prefixes(std::unordered_set<net::Prefix24> prefixes) {
    bad_prefixes_ = std::move(prefixes);
  }

  const workload::Scenario& scenario() const { return scenario_; }
  const workload::VideoCatalog& catalog() const { return *catalog_; }
  const workload::Population& population() const { return *population_; }
  cdn::Fleet& fleet() { return *fleet_; }
  const cdn::Fleet& fleet() const { return *fleet_; }
  /// Null until inject_faults() is called.
  const faults::FaultInjector* injector() const { return injector_.get(); }
  const telemetry::Dataset& dataset() const { return collector_.data(); }
  /// Move the collected dataset out (invalidates dataset()).
  telemetry::Dataset take_dataset() { return collector_.take(); }
  const GroundTruth& ground_truth() const { return ground_truth_; }

 private:
  void step_event(engine::SessionRuntime* runtime);

  workload::Scenario scenario_;
  sim::Rng rng_;
  std::unique_ptr<workload::VideoCatalog> catalog_;
  std::unique_ptr<workload::Population> population_;
  std::unique_ptr<workload::SessionGenerator> generator_;
  std::unique_ptr<cdn::Fleet> fleet_;
  sim::EventQueue queue_;
  telemetry::Collector collector_;
  std::unique_ptr<faults::FaultInjector> injector_;
  GroundTruth ground_truth_;
  std::unordered_set<net::Prefix24> bad_prefixes_;
  /// Shared per-round sample buffer (sessions step sequentially).
  std::vector<net::RoundSample> round_scratch_;
  engine::RunContext ctx_;
  double extra_session_clock_ms_ = 0.0;
};

/// Convenience: build, warm, run, and return the raw dataset for a
/// scenario (the common bench preamble).  Since the engine refactor this
/// delegates to engine::run_simulation(), i.e. it runs the sharded
/// session-isolated semantics.
telemetry::Dataset run_scenario(const workload::Scenario& scenario);

}  // namespace vstream::core
