// Incremental analysis over streamed telemetry.
//
// The classic pipeline materializes every record, joins, then analyzes.
// analyze_stream() folds the same analyses over a SessionGroupStream in
// two passes instead:
//
//   pass 1  session-level records only -> proxy detection (the §3 filter
//           needs nothing chunk-grained), O(sessions) memory
//   pass 2  StreamingJoiner + the mergeable accumulators of
//           analysis/accumulators.h, one session resident at a time
//
// Because the stream yields sessions in canonical (ascending session-id)
// order and the accumulators fold in that same order, the result is a
// pure function of the per-session records: analyze_spill on a spilled
// run and analyze_dataset on the equivalent in-memory run agree exactly,
// shard count and all.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/accumulators.h"
#include "telemetry/proxy_filter.h"
#include "telemetry/record_group.h"
#include "telemetry/spill_format.h"

namespace vstream::core {

struct StreamingAnalysis {
  telemetry::ProxyFilterResult proxies;
  std::size_t sessions_joined = 0;
  std::size_t dropped_as_proxy = 0;
  std::size_t dropped_incomplete = 0;
  analysis::QoeAggregate qoe;
  analysis::RecoveryImpact recovery;
  analysis::PerfScoreSummary perf;  ///< Eq. 2 roll-up over joined chunks
  std::vector<analysis::PrefixRollup> prefixes;
  /// Spill-path salvage accounting: all-damage-counters-zero on a clean
  /// read (spill.corrupted() == false).  A degraded spill still analyzes
  /// — corrupt blocks are skipped, torn tails truncated — and this is
  /// where the caller learns how much survived.  Always clean for
  /// analyze_dataset (no disk involved).
  telemetry::SpillReadStats spill;
};

/// Analyze a spilled run (engine::RunResult::spill).  `chunk_duration_s`
/// is Eq. 2's tau — workload::VideoCatalog::chunk_duration_s().
///
/// `threads` > 1 folds the per-shard spill files as parallel tasks on a
/// work-stealing pool (runtime::Executor) and merges the per-file
/// accumulators in file order; 0 resolves via
/// runtime::resolve_thread_count (VSTREAM_THREADS, else hardware
/// concurrency); 1 — the default — keeps the serial merged-stream fold.
/// Every value produces a bit-identical StreamingAnalysis: finalize()
/// sorts by session id, so the fold partition is invisible, and proxy
/// detection sees the records in exactly the merged-stream order either
/// way.  Sessions whose blocks span several files (never produced by the
/// engine, where a session completes wholly on one shard) are detected
/// and joined in a final cross-file pass so their groups are never split.
StreamingAnalysis analyze_spill(const telemetry::SpillSet& spill,
                                double chunk_duration_s,
                                const telemetry::ProxyFilterConfig& proxy_config = {},
                                std::size_t threads = 1);

/// Same analysis over a canonical in-memory dataset, streamed through
/// DatasetGroupStream — the equivalence oracle for the spill path, and a
/// bounded-peak-memory alternative to the batch join for big datasets.
StreamingAnalysis analyze_dataset(const telemetry::Dataset& data,
                                  double chunk_duration_s,
                                  const telemetry::ProxyFilterConfig& proxy_config = {});

}  // namespace vstream::core
