// Plain-text reporting helpers shared by the bench binaries: every bench
// prints the series/rows of one paper figure or table in a uniform,
// greppable format, plus a PAPER: reference line for EXPERIMENTS.md.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "analysis/stats.h"

namespace vstream::core {

/// Section banner: "== Figure 5: CDN latency breakdown ==".
void print_header(const std::string& title);

/// One "series <name>: x=<x> y=<y>" line per point.
void print_cdf(const std::string& name,
               std::span<const analysis::CdfPoint> points);

/// Binned series with mean/median/IQR per bin (the bar+errorbar figures).
void print_bins(const std::string& name,
                std::span<const analysis::Bin> bins);

/// "metric <name> = <value>" line.
void print_metric(const std::string& name, double value);
void print_metric(const std::string& name, const std::string& value);

/// "PAPER: <claim>" reference line (what the paper reports, for
/// paper-vs-measured comparison in EXPERIMENTS.md).
void print_paper_reference(const std::string& claim);

/// Simple fixed-width table.
class Table {
 public:
  explicit Table(std::vector<std::string> columns);
  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: fixed decimals.
std::string fmt(double value, int decimals = 2);

/// When the environment variable VSTREAM_SERIES_DIR is set, print_cdf and
/// print_bins additionally write gnuplot-ready two/seven-column .dat files
/// (<dir>/<name>.dat) so the regenerated figures can be plotted directly.
/// Returns the active directory, or an empty string when disabled.
std::string series_export_dir();

}  // namespace vstream::core
