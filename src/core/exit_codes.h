// The exit-code contract shared by vstream-sim, vstream-analyze, and
// vstream-chaos (documented for operators in README.md).
//
// Before this header both tools collapsed every failure to exit 2, so a
// script could not tell "you passed a bad flag" from "the disk filled
// mid-run" — and the latter is resumable (--resume picks up from the
// last checkpoint; committed spill blocks salvage what already ran)
// while the former needs a human.  The codes:
//
//   0  success
//   1  chaos invariant violation (vstream-chaos only: a campaign run
//      produced non-identical CSVs, an undocumented exit, or a hang)
//   2  usage / configuration error — bad flag, malformed VSTREAM_*
//      variable, checkpoint fingerprint mismatch; fix the invocation
//   3  host I/O failure — full disk, unwritable directory, failed
//      rename, or an injected failpoint equivalent; the run aborted
//      cleanly and is typically resumable
//   4  salvage-incomplete analysis — the run/analysis completed but the
//      spill data had corruption (torn tail, damaged blocks); results
//      cover the salvaged subset only
//   5  watchdog abort — a task exceeded the VSTREAM_WATCHDOG_MS
//      deadline with VSTREAM_WATCHDOG_FATAL=1 armed
#pragma once

#include <exception>
#include <filesystem>

#include "sim/host_error.h"

namespace vstream::core {

enum ExitCode : int {
  kExitOk = 0,
  kExitChaosViolation = 1,
  kExitConfig = 2,
  kExitHostIo = 3,
  kExitSalvageIncomplete = 4,
  kExitWatchdog = 5,
};

/// Map a catch-at-main exception to its documented exit code: host I/O
/// failures (ours or the standard library's filesystem errors) are 3,
/// everything else is a usage/config error (2).
inline int exit_code_for(const std::exception& error) {
  if (dynamic_cast<const sim::HostIoError*>(&error) != nullptr) {
    return kExitHostIo;
  }
  if (dynamic_cast<const std::filesystem::filesystem_error*>(&error) !=
      nullptr) {
    return kExitHostIo;
  }
  return kExitConfig;
}

}  // namespace vstream::core
