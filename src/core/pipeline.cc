#include "core/pipeline.h"

#include <algorithm>

#include "engine/engine.h"
#include "engine/warmup.h"

namespace vstream::core {

Pipeline::Pipeline(workload::Scenario scenario)
    : scenario_(scenario),
      rng_(scenario.seed),
      collector_(scenario.tcp_sample_interval_ms) {
  catalog_ = std::make_unique<workload::VideoCatalog>(scenario_.catalog, rng_);
  population_ = std::make_unique<workload::Population>(scenario_.population, rng_);
  generator_ = std::make_unique<workload::SessionGenerator>(
      scenario_.sessions, *catalog_, *population_);
  fleet_ = std::make_unique<cdn::Fleet>(scenario_.fleet, catalog_->size());

  // Coupled mode: one live fleet shared by all sessions, no warm archive
  // (caches are warmed in place), no per-server stats sink.
  ctx_.scenario = &scenario_;
  ctx_.catalog = catalog_.get();
  ctx_.fleet = fleet_.get();
  ctx_.collector = &collector_;
  ctx_.ground_truth = &ground_truth_;
  ctx_.bad_prefixes = &bad_prefixes_;
  ctx_.round_scratch = &round_scratch_;
}

void Pipeline::warm_caches(double disk_fill, bool universal_head) {
  engine::warm_fleet(*fleet_, *catalog_, disk_fill, universal_head);
}

void Pipeline::run() {
  // Materialize the whole arrival schedule first, then let the event queue
  // interleave the sessions: every chunk request hits its server in true
  // timestamp order, as in production.  Master-RNG consumption per session
  // (generator draw, then substream fork) matches engine::admit_sessions.
  std::vector<std::unique_ptr<engine::SessionRuntime>> sessions;
  sessions.reserve(scenario_.session_count);
  std::size_t expected_chunks = 0;
  for (std::size_t i = 0; i < scenario_.session_count; ++i) {
    const workload::SessionSpec spec = generator_->next(rng_);
    extra_session_clock_ms_ =
        std::max(extra_session_clock_ms_, spec.start_time_ms);
    expected_chunks += spec.chunk_count;
    sessions.push_back(std::make_unique<engine::SessionRuntime>(
        ctx_, spec, rng_.fork(), nullptr));
    engine::SessionRuntime* runtime = sessions.back().get();
    queue_.schedule_at(spec.start_time_ms, [this, runtime] {
      step_event(runtime);
    });
  }
  collector_.reserve(scenario_.session_count, expected_chunks);
  queue_.run_all();
}

void Pipeline::inject_faults(faults::FaultSchedule schedule) {
  ground_truth_.injected_faults = schedule.events();
  injector_ = std::make_unique<faults::FaultInjector>(*fleet_, queue_,
                                                      std::move(schedule));
  injector_->arm();
  ctx_.injector = injector_.get();
}

void Pipeline::step_event(engine::SessionRuntime* runtime) {
  const sim::Ms wall_ms = runtime->step(queue_.now());
  if (runtime->has_more()) {
    queue_.schedule_in(wall_ms, [this, runtime] { step_event(runtime); });
  } else {
    runtime->finish();
  }
}

std::uint64_t Pipeline::run_session(const SessionOverrides& overrides) {
  workload::SessionSpec spec = generator_->next(rng_);
  if (overrides.chunk_count) {
    // Scripted sessions may stream a fixed chunk count regardless of the
    // sampled video's length (the case-study benches need equal-length
    // sessions for comparability).
    spec.chunk_count = std::max<std::uint32_t>(1, *overrides.chunk_count);
  }
  // Scripted sessions run synchronously (no interleaving with other
  // traffic; the case studies want isolation).
  engine::SessionRuntime runtime(ctx_, spec, rng_.fork(), &overrides);
  sim::Ms now = std::max(spec.start_time_ms, extra_session_clock_ms_);
  while (runtime.has_more()) now += runtime.step(now);
  runtime.finish();
  return spec.session_id;
}

telemetry::Dataset run_scenario(const workload::Scenario& scenario) {
  return engine::run_simulation(scenario).dataset;
}

}  // namespace vstream::core
