#include "core/report.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/env_util.h"

namespace vstream::core {

namespace {

/// Open <VSTREAM_SERIES_DIR>/<name>.dat for writing; null stream when the
/// feature is disabled or the directory cannot be created.
std::ofstream open_series_file(const std::string& name) {
  const std::string dir = series_export_dir();
  if (dir.empty()) return {};
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  return std::ofstream(std::filesystem::path(dir) / (name + ".dat"));
}

}  // namespace

std::string series_export_dir() {
  // Empty (set or unset) disables the feature; see sim/env_util.h for the
  // shared VSTREAM_* parsing contract.
  return sim::string_env("VSTREAM_SERIES_DIR");
}

void print_header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

void print_cdf(const std::string& name,
               std::span<const analysis::CdfPoint> points) {
  std::ofstream dat = open_series_file(name);
  if (dat) dat << "# x p\n";
  for (const analysis::CdfPoint& p : points) {
    std::printf("series %s: x=%.4f p=%.4f\n", name.c_str(), p.x, p.p);
    if (dat) dat << p.x << ' ' << p.p << '\n';
  }
}

void print_bins(const std::string& name,
                std::span<const analysis::Bin> bins) {
  std::ofstream dat = open_series_file(name);
  if (dat) dat << "# x n mean median p25 p75 p95\n";
  for (const analysis::Bin& b : bins) {
    std::printf(
        "bins %s: x=%.2f n=%zu mean=%.3f median=%.3f p25=%.3f p75=%.3f\n",
        name.c_str(), b.center, b.stats.n, b.stats.mean, b.stats.median,
        b.stats.p25, b.stats.p75);
    if (dat) {
      dat << b.center << ' ' << b.stats.n << ' ' << b.stats.mean << ' '
          << b.stats.median << ' ' << b.stats.p25 << ' ' << b.stats.p75 << ' '
          << b.stats.p95 << '\n';
    }
  }
}

void print_metric(const std::string& name, double value) {
  std::printf("metric %s = %.4f\n", name.c_str(), value);
}

void print_metric(const std::string& name, const std::string& value) {
  std::printf("metric %s = %s\n", name.c_str(), value.c_str());
}

void print_paper_reference(const std::string& claim) {
  std::printf("PAPER: %s\n", claim.c_str());
}

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : "";
      std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace vstream::core
