// Bit-exact reimplementation of std::mt19937_64 with a faster refill.
//
// mersenne_twister_engine is fully specified by the C++ standard ([rand.eng
// .mers]): the same seed produces the same stream on every conforming
// implementation, so this class is a drop-in replacement for
// std::mt19937_64 — tests/sim/rng_test.cc pins the equivalence draw by
// draw.  The win is in the state refill: libstdc++'s _M_gen_rand walks the
// 312-word state one word at a time with a data-dependent branch per word;
// here the twist is branchless (arithmetic mask instead of a conditional)
// and unrolled 4-wide, which measures ~3.4x faster per draw at -O2 on the
// bench host.  The refill is the dominant cost of the per-segment loss
// draws in net::TcpConnection::transfer (~70 draws per TCP round).
#pragma once

#include <cstdint>

namespace vstream::sim {

class Mt64 {
 public:
  using result_type = std::uint64_t;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  static constexpr result_type default_seed = 5489u;

  explicit Mt64(result_type value = default_seed) { seed(value); }

  /// Standard single-value seeding: mt[0] = seed, then the LCG expansion
  /// mt[i] = 6364136223846793005 * (mt[i-1] ^ (mt[i-1] >> 62)) + i.
  void seed(result_type value) {
    mt_[0] = value;
    for (std::uint32_t i = 1; i < kN; ++i) {
      mt_[i] = 6364136223846793005ULL * (mt_[i - 1] ^ (mt_[i - 1] >> 62)) + i;
    }
    index_ = kN;
  }

  result_type operator()() {
    if (index_ >= kN) refill();
    result_type y = mt_[index_++];
    // Standard mt19937_64 tempering.
    y ^= (y >> 29) & 0x5555555555555555ULL;
    y ^= (y << 17) & 0x71D67FFFEDA60000ULL;
    y ^= (y << 37) & 0xFFF7EEE000000000ULL;
    y ^= y >> 43;
    return y;
  }

  friend bool operator==(const Mt64& a, const Mt64& b) {
    if (a.index_ != b.index_) return false;
    for (std::uint32_t i = 0; i < kN; ++i) {
      if (a.mt_[i] != b.mt_[i]) return false;
    }
    return true;
  }

 private:
  static constexpr std::uint32_t kN = 312;
  static constexpr std::uint32_t kM = 156;
  static constexpr std::uint64_t kMatrixA = 0xB5026F5AA96619E9ULL;
  static constexpr std::uint64_t kUpperMask = 0xFFFFFFFF80000000ULL;
  static constexpr std::uint64_t kLowerMask = 0x7FFFFFFFULL;

  static std::uint64_t twist(std::uint64_t u, std::uint64_t v,
                             std::uint64_t w) {
    const std::uint64_t x = (u & kUpperMask) | (v & kLowerMask);
    return w ^ (x >> 1) ^ (-(x & 1) & kMatrixA);
  }

  void refill() {
    std::uint64_t* mt = mt_;
    std::uint32_t i = 0;
    for (; i + 4 <= kN - kM; i += 4) {
      mt[i] = twist(mt[i], mt[i + 1], mt[i + kM]);
      mt[i + 1] = twist(mt[i + 1], mt[i + 2], mt[i + kM + 1]);
      mt[i + 2] = twist(mt[i + 2], mt[i + 3], mt[i + kM + 2]);
      mt[i + 3] = twist(mt[i + 3], mt[i + 4], mt[i + kM + 3]);
    }
    for (; i < kN - kM; ++i) mt[i] = twist(mt[i], mt[i + 1], mt[i + kM]);
    for (; i + 4 <= kN - 1; i += 4) {
      mt[i] = twist(mt[i], mt[i + 1], mt[i + kM - kN]);
      mt[i + 1] = twist(mt[i + 1], mt[i + 2], mt[i + kM - kN + 1]);
      mt[i + 2] = twist(mt[i + 2], mt[i + 3], mt[i + kM - kN + 2]);
      mt[i + 3] = twist(mt[i + 3], mt[i + 4], mt[i + kM - kN + 3]);
    }
    for (; i < kN - 1; ++i) mt[i] = twist(mt[i], mt[i + 1], mt[i + kM - kN]);
    mt[kN - 1] = twist(mt[kN - 1], mt[0], mt[kM - 1]);
    index_ = 0;
  }

  std::uint64_t mt_[kN];
  std::uint32_t index_;
};

}  // namespace vstream::sim
