// Simulation time primitives.
//
// The whole library measures time in milliseconds, matching the paper's
// instrumentation (D_FB, D_LB, SRTT, ... are all reported in ms).  We use a
// double so sub-millisecond server-side latencies (Fig. 5 starts at 0.1 ms)
// are representable without a separate unit type.
#pragma once

namespace vstream::sim {

/// Milliseconds of simulated time (duration or absolute clock reading).
using Ms = double;

/// Seconds -> milliseconds.
constexpr Ms seconds(double s) { return s * 1000.0; }

/// Milliseconds -> seconds.
constexpr double to_seconds(Ms ms) { return ms / 1000.0; }

}  // namespace vstream::sim
