// Strict VSTREAM_* environment-variable parsing, shared by every layer.
//
// One contract everywhere: an *unset* variable falls back silently; a
// variable that is set but does not parse (empty, non-numeric, zero,
// negative, trailing garbage) throws std::runtime_error naming the
// variable — a run never silently ignores an operator's knob.  The
// numeric helpers started life in engine/engine.cc and the same strict
// semantics were re-described in core/report.h and cdn/overload.h; this
// header is now the single home (engine/engine.h keeps thin forwarders
// for source compatibility).
#pragma once

#include <cstddef>
#include <string>

namespace vstream::sim {

/// Parse `name` as a strictly positive integer.  Unset: returns
/// `fallback`.  Set but empty, non-numeric, zero, negative, or trailing
/// garbage: throws std::runtime_error naming the variable.
std::size_t positive_env(const char* name, std::size_t fallback);

/// Same contract for a strictly positive real number.
double positive_env_double(const char* name, double fallback);

/// Read `name` as a string.  Unset returns `fallback`; set (including
/// empty) returns the raw value.  For knobs where an empty string is a
/// valid "disabled" state (e.g. VSTREAM_SERIES_DIR).
std::string string_env(const char* name, const std::string& fallback = "");

/// Read `name` as a string that must be non-empty when set: unset returns
/// `fallback`, set-but-empty throws std::runtime_error naming the variable
/// (the strict flavour, e.g. VSTREAM_TELEMETRY_SPILL).
std::string nonempty_env(const char* name, const std::string& fallback = "");

}  // namespace vstream::sim
