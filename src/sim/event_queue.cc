#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace vstream::sim {

void EventQueue::schedule_at(Ms at, Callback cb) {
  queue_.push(Entry{std::max(at, now_), next_seq_++, std::move(cb)});
}

void EventQueue::schedule_in(Ms delay, Callback cb) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(cb));
}

std::size_t EventQueue::run(Ms until) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    if (until >= 0.0 && queue_.top().at > until) break;
    // Move the callback out before popping so it may schedule new events.
    Entry top = queue_.top();
    queue_.pop();
    now_ = top.at;
    top.cb();
    ++executed;
  }
  if (until >= 0.0) now_ = std::max(now_, until);
  return executed;
}

void EventQueue::clear() {
  queue_ = {};
}

}  // namespace vstream::sim
