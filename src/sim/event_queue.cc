#include "sim/event_queue.h"

#include <limits>

namespace vstream::sim {

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ == kNoSlot) {
    // Grow by one slab; existing slots never move (stable addresses are
    // what lets callbacks run in place while the pool grows under them).
    const auto base = static_cast<std::uint32_t>(slabs_.size() * kSlabSlots);
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSlots));
    // Thread the new slab onto the free list, last slot first, so slots
    // are handed out in ascending index order.
    for (std::uint32_t i = kSlabSlots; i-- > 0;) {
      slabs_.back()[i].next_free = free_head_;
      free_head_ = base + i;
    }
  }
  const std::uint32_t index = free_head_;
  free_head_ = slot(index).next_free;
  return index;
}

void EventQueue::destroy_slot(std::uint32_t index) {
  Slot& s = slot(index);
  if (s.destroy != nullptr) s.destroy(s.storage);
  s.invoke = nullptr;
  s.destroy = nullptr;
  s.next_free = free_head_;
  free_head_ = index;
}

void EventQueue::push_node(Ms at, std::uint32_t index) {
  // 4-ary sift-up: parent of i is (i - 1) / 4.
  Node node{at, next_seq_++, index};
  std::size_t i = heap_.size();
  heap_.push_back(node);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    const Node& p = heap_[parent];
    if (p.at < node.at || (p.at == node.at && p.seq < node.seq)) break;
    heap_[i] = p;
    i = parent;
  }
  heap_[i] = node;
}

EventQueue::Node EventQueue::pop_min() {
  const Node top = heap_.front();
  const Node last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return top;
  // 4-ary sift-down of `last` from the root: children of i are 4i+1..4i+4.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      const Node& a = heap_[c];
      const Node& b = heap_[best];
      if (a.at < b.at || (a.at == b.at && a.seq < b.seq)) best = c;
    }
    const Node& child = heap_[best];
    if (last.at < child.at || (last.at == child.at && last.seq < child.seq)) {
      break;
    }
    heap_[i] = child;
    i = best;
  }
  heap_[i] = last;
  return top;
}

std::size_t EventQueue::drain(Ms until, bool bounded) {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    if (bounded && heap_.front().at > until) break;
    const Node top = pop_min();
    now_ = top.at;
    // The slot was unlinked from the heap before invoking, so a callback
    // may clear() the queue or schedule new events without touching it;
    // its memory stays put until the destroy below.
    Slot& s = slot(top.slot);
    s.invoke(s.storage);
    destroy_slot(top.slot);
    ++executed;
  }
  if (bounded && now_ < until) now_ = until;
  return executed;
}

std::size_t EventQueue::run_all() {
  return drain(std::numeric_limits<Ms>::infinity(), false);
}

std::size_t EventQueue::run_until(Ms until) { return drain(until, true); }

void EventQueue::clear() {
  for (const Node& node : heap_) destroy_slot(node.slot);
  heap_.clear();
}

void EventQueue::reset() {
  clear();
  now_ = 0.0;
  next_seq_ = 0;
}

std::size_t EventQueue::pool_free() const {
  std::size_t count = 0;
  for (std::uint32_t index = free_head_; index != kNoSlot;) {
    ++count;
    index = slabs_[index / kSlabSlots][index % kSlabSlots].next_free;
  }
  return count;
}

}  // namespace vstream::sim
