// Zipf(alpha) sampler over ranks 1..n.
//
// Video popularity in the paper's dataset is heavily skewed: the top 10% of
// videos receive ~66% of all playbacks (Fig. 3b).  A Zipf law P(rank r)
// proportional to r^-alpha reproduces that skew; Zipf::share_of_top() lets
// callers (and tests) check the top-k mass directly.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/rng.h"

namespace vstream::sim {

class Zipf {
 public:
  /// Distribution over ranks 1..n with weight r^-alpha.
  Zipf(std::size_t n, double alpha);

  /// Sample a rank in [1, n] (rank 1 is the most popular item).
  std::size_t sample(Rng& rng) const;

  /// Probability mass of an individual rank (1-based).
  double pmf(std::size_t rank) const;

  /// Total probability mass of the top `k` ranks.
  double share_of_top(std::size_t k) const;

  std::size_t size() const { return cdf_.size(); }
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i + 1)
};

/// Find the Zipf alpha for which the top `top_fraction` of n ranks carry
/// `target_share` of the mass (bisection; used to match the paper's
/// "top 10% -> 66% of playbacks").
double fit_zipf_alpha(std::size_t n, double top_fraction, double target_share);

}  // namespace vstream::sim
