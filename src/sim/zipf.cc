#include "sim/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vstream::sim {

Zipf::Zipf(std::size_t n, double alpha) : alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("Zipf: n must be > 0");
  if (alpha < 0.0) throw std::invalid_argument("Zipf: alpha must be >= 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t r = 1; r <= n; ++r) {
    acc += std::pow(static_cast<double>(r), -alpha);
    cdf_[r - 1] = acc;
  }
  for (double& c : cdf_) c /= acc;
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double Zipf::pmf(std::size_t rank) const {
  if (rank == 0 || rank > cdf_.size()) return 0.0;
  const double hi = cdf_[rank - 1];
  const double lo = rank >= 2 ? cdf_[rank - 2] : 0.0;
  return hi - lo;
}

double Zipf::share_of_top(std::size_t k) const {
  if (k == 0) return 0.0;
  k = std::min(k, cdf_.size());
  return cdf_[k - 1];
}

double fit_zipf_alpha(std::size_t n, double top_fraction, double target_share) {
  if (n == 0 || top_fraction <= 0.0 || top_fraction >= 1.0 ||
      target_share <= top_fraction || target_share >= 1.0) {
    throw std::invalid_argument("fit_zipf_alpha: infeasible target");
  }
  const auto k = std::max<std::size_t>(1, static_cast<std::size_t>(
                                              top_fraction * static_cast<double>(n)));
  double lo = 0.0, hi = 4.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double share = Zipf(n, mid).share_of_top(k);
    if (share < target_share) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace vstream::sim
