#include "sim/env_util.h"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace vstream::sim {

std::size_t positive_env(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || errno == ERANGE || parsed == 0 ||
      raw[0] == '-') {
    throw std::runtime_error(std::string(name) + " must be a positive " +
                             "integer, got \"" + raw + "\"");
  }
  return static_cast<std::size_t>(parsed);
}

double positive_env_double(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || errno == ERANGE || !(parsed > 0.0)) {
    throw std::runtime_error(std::string(name) + " must be a positive " +
                             "number, got \"" + raw + "\"");
  }
  return parsed;
}

std::string string_env(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw != nullptr ? std::string(raw) : fallback;
}

std::string nonempty_env(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  if (*raw == '\0') {
    throw std::runtime_error(std::string(name) +
                             " must be a non-empty string when set");
  }
  return raw;
}

}  // namespace vstream::sim
