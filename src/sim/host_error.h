// HostIoError: the exception class for *host* I/O failures — a write
// that hit a full disk, an unwritable directory, a failed rename, or a
// deterministically injected equivalent (src/failpoints).
//
// The distinction matters for the exit-code contract (core/exit_codes.h):
// a bad flag or a mis-set VSTREAM_* variable is the operator's problem
// (exit 2, fix the invocation and rerun), while a host I/O failure is the
// machine's problem (exit 3, the run may be resumable from its last
// checkpoint and the spill files salvage what was committed).  Every
// layer that touches the filesystem on behalf of a run — SpillWriter,
// checkpoint sidecars, CSV export — throws this type so the tools can
// tell the two apart at catch-at-main time.
//
// Lives in sim/ (the dependency-free bottom layer) so telemetry, engine,
// runtime, and failpoints can all throw it without a new link edge.
#pragma once

#include <stdexcept>
#include <string>

namespace vstream::sim {

class HostIoError : public std::runtime_error {
 public:
  explicit HostIoError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace vstream::sim
