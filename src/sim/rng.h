// Seeded random number generation for deterministic simulations.
//
// Every stochastic component in the library draws from an explicitly passed
// Rng so that a simulation run is a pure function of (scenario, seed).  The
// helpers cover the distributions the workload and path models need:
// uniform, Bernoulli, exponential, normal, log-normal, Pareto and discrete.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "sim/mt64.h"

namespace vstream::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  ///
  /// Inline replication of libstdc++'s generate_canonical<double, 53>
  /// over mt19937_64 — one engine draw scaled by 2^-64 (exact, a power of
  /// two) with the >= 1.0 guard — so it returns bit-identical values to
  /// std::uniform_real_distribution<double>(0, 1) on the same engine state
  /// while skipping the per-call distribution machinery (~2x cheaper on
  /// the per-segment loss path, which draws ~70 times per TCP round).
  /// tests/sim/rng_test.cc pins the equivalence.
  double uniform01() { return canonical(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return canonical() * (hi - lo) + lo;
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// True with probability p (clamped to [0, 1]).  p <= 0 and p >= 1
  /// short-circuit without consuming engine state, as before.
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return canonical() < p;
  }

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal parameterized by the *median* and the shape sigma of the
  /// underlying normal.  median = exp(mu), so mu = ln(median).
  double lognormal_median(double median, double sigma);

  /// Pareto with scale x_m (minimum) and shape alpha.
  double pareto(double x_m, double alpha);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  std::size_t discrete(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Derive an independent child generator (for parallel components).
  Rng fork();

  /// Draw the seed a fork() child would be built from (consumes exactly the
  /// same master state as fork()).  Lets callers defer child construction —
  /// e.g. ship the seed to a worker thread — while keeping the master
  /// sequence identical to an immediate fork().
  std::uint64_t fork_seed() { return engine_(); }

  Mt64& engine() { return engine_; }

 private:
  /// One engine draw mapped onto [0, 1) exactly as libstdc++'s
  /// generate_canonical does for a 64-bit engine: round the draw to double
  /// (53-bit mantissa), scale by 2^-64 (exact — power-of-two scaling never
  /// rounds), and clamp the half-ulp overflow case back under 1.0.
  double canonical() {
    const double r = static_cast<double>(engine_()) * 0x1p-64;
    if (r >= 1.0) [[unlikely]] {
      return 0x1.fffffffffffffp-1;  // nextafter(1.0, 0.0)
    }
    return r;
  }

  // Bit-exact mt19937_64 replacement with a faster refill (sim/mt64.h);
  // the std distribution templates above accept it like any URBG and draw
  // the same values they would from std::mt19937_64.
  Mt64 engine_;
};

}  // namespace vstream::sim
